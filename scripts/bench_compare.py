#!/usr/bin/env python3
"""Diff two google-benchmark JSON result files and flag regressions.

Usage:
    bench_compare.py BASELINE.json CURRENT.json [--threshold 0.10]
    bench_compare.py --self-test

Benchmarks are matched by name. For each pair the wall time (`real_time`)
and throughput (`items_per_second`, when present) are compared against the
baseline; a benchmark whose wall time grew — or whose throughput shrank —
by more than the threshold (default 10%) is a REGRESSION and the script
exits 1. Improvements and within-noise drift are reported but never fail.
Benchmarks present on only one side are listed as added/removed, not
failed, so the baseline does not have to be regenerated in the same PR
that adds a benchmark.

The committed baselines live at the repo root (BENCH_*.json), produced by
    bench_micro --benchmark_filter=BM_EndToEnd \
                --benchmark_format=json --benchmark_out=BENCH_new.json
"""

import argparse
import json
import sys


def load_benchmarks(path):
    """name -> {"real_time": float, "items_per_second": float | None}."""
    with open(path, encoding="utf-8") as handle:
        data = json.load(handle)
    benchmarks = {}
    for entry in data.get("benchmarks", []):
        if entry.get("run_type") == "aggregate":
            continue  # compare raw runs, not mean/median/stddev rows
        benchmarks[entry["name"]] = {
            "real_time": float(entry["real_time"]),
            "items_per_second": (
                float(entry["items_per_second"])
                if "items_per_second" in entry
                else None
            ),
        }
    return benchmarks


def compare(baseline, current, threshold):
    """Returns (report_lines, regression_names)."""
    lines = []
    regressions = []
    for name in sorted(set(baseline) | set(current)):
        if name not in baseline:
            lines.append(f"  ADDED      {name}")
            continue
        if name not in current:
            lines.append(f"  REMOVED    {name}")
            continue
        base, cur = baseline[name], current[name]
        time_ratio = cur["real_time"] / base["real_time"]
        reasons = []
        if time_ratio > 1.0 + threshold:
            reasons.append(f"wall time x{time_ratio:.2f}")
        if base["items_per_second"] and cur["items_per_second"]:
            rate_ratio = cur["items_per_second"] / base["items_per_second"]
            if rate_ratio < 1.0 - threshold:
                reasons.append(f"throughput x{rate_ratio:.2f}")
        if reasons:
            regressions.append(name)
            lines.append(f"  REGRESSION {name}: " + ", ".join(reasons))
        elif time_ratio < 1.0 - threshold:
            lines.append(f"  improved   {name}: wall time x{time_ratio:.2f}")
        else:
            lines.append(f"  ok         {name}: wall time x{time_ratio:.2f}")
    return lines, regressions


def self_test():
    """Exercises the comparison logic on synthetic results."""
    baseline = {
        "steady": {"real_time": 100.0, "items_per_second": 1000.0},
        "slower": {"real_time": 100.0, "items_per_second": 1000.0},
        "starved": {"real_time": 100.0, "items_per_second": 1000.0},
        "faster": {"real_time": 100.0, "items_per_second": 1000.0},
        "timeonly": {"real_time": 100.0, "items_per_second": None},
        "removed": {"real_time": 100.0, "items_per_second": 1000.0},
    }
    current = {
        "steady": {"real_time": 105.0, "items_per_second": 952.0},
        "slower": {"real_time": 125.0, "items_per_second": 800.0},
        "starved": {"real_time": 104.0, "items_per_second": 850.0},
        "faster": {"real_time": 50.0, "items_per_second": 2000.0},
        "timeonly": {"real_time": 150.0, "items_per_second": None},
        "added": {"real_time": 1.0, "items_per_second": 1.0},
    }
    _, regressions = compare(baseline, current, threshold=0.10)
    expected = ["slower", "starved", "timeonly"]
    checks = [
        (regressions == expected,
         f"expected {expected}, got {regressions}"),
        (compare(baseline, baseline, 0.10)[1] == [],
         "identical results must not regress"),
        (compare({}, current, 0.10)[1] == [],
         "an empty baseline must not regress"),
    ]
    failed = [message for ok, message in checks if not ok]
    for message in failed:
        print(f"bench_compare self-test FAILED: {message}")
    if not failed:
        print("bench_compare self-test passed")
    return 1 if failed else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", nargs="?", help="baseline BENCH json")
    parser.add_argument("current", nargs="?", help="candidate BENCH json")
    parser.add_argument(
        "--threshold", type=float, default=0.10,
        help="fractional regression tolerance (default 0.10 = 10%%)")
    parser.add_argument(
        "--self-test", action="store_true",
        help="verify the comparison logic on synthetic data and exit")
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    if not args.baseline or not args.current:
        parser.error("BASELINE and CURRENT are required (or --self-test)")

    baseline = load_benchmarks(args.baseline)
    current = load_benchmarks(args.current)
    lines, regressions = compare(baseline, current, args.threshold)
    print(f"bench_compare: {args.baseline} -> {args.current} "
          f"(threshold {args.threshold:.0%})")
    for line in lines:
        print(line)
    if regressions:
        print(f"bench_compare: {len(regressions)} regression(s) beyond "
              f"{args.threshold:.0%}")
        return 1
    print("bench_compare: no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
