#include "util/log.hpp"

#include <atomic>
#include <cstdio>

#include "util/thread_annotations.hpp"

namespace moela::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};
/// Serializes whole lines onto stderr (a shared stream, not a field — so
/// nothing is MOELA_GUARDED_BY it; holding it around fprintf is the
/// protocol).
Mutex g_mutex;

const char* tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    default:
      return "?????";
  }
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

void log_line(LogLevel level, const std::string& msg) {
  if (level < g_level.load()) return;
  MutexLock lock(g_mutex);
  std::fprintf(stderr, "[%s] %s\n", tag(level), msg.c_str());
}

}  // namespace moela::util
