// Locale-independent numeric formatting and parsing (std::to_chars /
// std::from_chars). Every value that crosses a determinism boundary — cache
// keys, the hexfloat disk tier, the line-JSON wire protocol, run logs —
// must be rendered and parsed through these helpers, never through the
// printf/strtod family: C formatting honors LC_NUMERIC, so a daemon started
// under de_DE would write "0x1,8p+1" and fail to read back its own cache.
// scripts/moela_lint.py enforces this in the wire files.
//
// hexfloat() is byte-identical to glibc's "%a" under the C locale
// (including subnormals and signed zero), so cache keys and disk files
// written by earlier printf-based builds keep their exact bytes.
#pragma once

#include <charconv>
#include <cmath>
#include <cstdint>
#include <string>
#include <string_view>
#include <system_error>
#include <type_traits>

namespace moela::util {

/// Decimal rendering of any integer type. Rejects floating-point arguments
/// at compile time — use hexfloat() (exact) or shortest_double() (display)
/// for those, so a double can never silently pick up decimal formatting.
template <typename T>
std::string dec(T value) {
  static_assert(std::is_integral_v<T>,
                "util::dec is for integers; doubles must go through "
                "hexfloat()/shortest_double()");
  char buffer[24];
  const auto result = std::to_chars(buffer, buffer + sizeof(buffer), value);
  return std::string(buffer, result.ptr);
}

/// Bit-exact hexfloat rendering ("0x1.8p+1"), locale-independent.
inline std::string hexfloat(double value) {
  char buffer[40];
  char* out = buffer;
  double magnitude = value;
  if (std::signbit(value)) {
    *out++ = '-';
    magnitude = -value;
  }
  *out++ = '0';
  *out++ = 'x';
  const auto result = std::to_chars(out, buffer + sizeof(buffer), magnitude,
                                    std::chars_format::hex);
  if (result.ec != std::errc()) return "0x0p+0";  // cannot happen: buffer fits
  return std::string(buffer, result.ptr);
}

/// Shortest decimal string that round-trips the double ("0.1", "1e+300").
/// For human-facing output; exactness-critical paths use hexfloat().
inline std::string shortest_double(double value) {
  char buffer[40];
  const auto result = std::to_chars(buffer, buffer + sizeof(buffer), value);
  return std::string(buffer, result.ptr);
}

/// printf "%.*f" equivalent (fixed notation), locale-independent.
inline std::string fixed_double(double value, int precision) {
  char buffer[512];  // fixed notation of 1e308 needs ~310 digits
  const auto result = std::to_chars(buffer, buffer + sizeof(buffer), value,
                                    std::chars_format::fixed, precision);
  if (result.ec != std::errc()) return "inf";
  return std::string(buffer, result.ptr);
}

/// Full-token double parse, locale-independent. Accepts everything the wire
/// carries: decimal ("1.5", "1e-3"), hexfloat with the 0x prefix
/// ("0x1.8p+1"), optional +/- sign, and inf/nan spellings. Returns false
/// (leaving `out` untouched) on empty input, trailing junk, or overflow.
inline bool parse_double(std::string_view token, double& out) {
  if (token.empty()) return false;
  bool negative = false;
  if (token.front() == '+' || token.front() == '-') {
    negative = token.front() == '-';
    token.remove_prefix(1);
    if (token.empty()) return false;
  }
  auto format = std::chars_format::general;
  if (token.size() > 2 && token[0] == '0' &&
      (token[1] == 'x' || token[1] == 'X')) {
    format = std::chars_format::hex;
    token.remove_prefix(2);
  }
  double magnitude = 0.0;
  const auto result =
      std::from_chars(token.data(), token.data() + token.size(), magnitude,
                      format);
  if (result.ec != std::errc() || result.ptr != token.data() + token.size()) {
    return false;
  }
  out = negative ? -magnitude : magnitude;
  return true;
}

/// Full-token base-10 unsigned parse. No sign, no whitespace, no suffix.
inline bool parse_u64(std::string_view token, std::uint64_t& out) {
  if (token.empty()) return false;
  std::uint64_t value = 0;
  const auto result =
      std::from_chars(token.data(), token.data() + token.size(), value, 10);
  if (result.ec != std::errc() || result.ptr != token.data() + token.size()) {
    return false;
  }
  out = value;
  return true;
}

}  // namespace moela::util
