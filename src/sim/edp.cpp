#include "sim/edp.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace moela::sim {

EdpResult estimate_edp(const noc::PlatformSpec& spec,
                       const noc::NocDesign& design,
                       const noc::Workload& workload,
                       const AppArchetype& arch,
                       const noc::NocObjectiveParams& obj_params,
                       const EdpModelParams& model) {
  noc::EvaluationDetail detail;
  const noc::NocObjectives obj =
      noc::evaluate_objectives(spec, design, workload, obj_params, &detail);

  // CPU-bound share: runtime grows linearly with average CPU-LLC latency.
  const double cpu_stretch = 1.0 + obj.cpu_latency / model.latency_ref;

  // GPU-bound share: contention factor 1 / (1 - rho) with rho derived from
  // mean + weighted-sigma link utilization, saturating smoothly.
  const double sigma = std::sqrt(obj.traffic_variance);
  const double load = obj.traffic_mean + model.sigma_weight * sigma;
  const double rho = std::min(load / model.link_capacity, 0.95);
  const double gpu_stretch = 1.0 / (1.0 - rho);

  const double exec_time =
      model.base_runtime *
      (arch.cpu_fraction * cpu_stretch + (1.0 - arch.cpu_fraction) * gpu_stretch);

  // Energy: PE power integrated over runtime + communication energy.
  const double pe_power = std::accumulate(workload.core_power.begin(),
                                          workload.core_power.end(), 0.0);
  const double comm_energy =
      obj.energy * model.comm_energy_scale * exec_time / model.base_runtime;
  const double energy = pe_power * exec_time + comm_energy;

  EdpResult result;
  result.exec_time = exec_time;
  result.energy = energy;
  result.edp = energy * exec_time;
  result.peak_temperature = detail.peak_temperature;
  return result;
}

}  // namespace moela::sim
