// Component-level tests for MOELA's building blocks: the decomposition
// population, the Eval model, the context bookkeeping, and the guide modes.
#include <gtest/gtest.h>

#include "core/decomposition.hpp"
#include "core/eval_context.hpp"
#include "core/eval_model.hpp"
#include "core/moela.hpp"
#include "problems/zdt.hpp"
#include "util/rng.hpp"

namespace moela::core {
namespace {

using problems::Zdt;
using problems::ZdtVariant;

TEST(EvalContext, CountsEvaluationsAndBudget) {
  Zdt problem(ZdtVariant::kZdt1, 6);
  EvalContext<Zdt> ctx(problem, 1, 10);
  util::Rng rng(1);
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(ctx.exhausted());
    ctx.evaluate(problem.random_design(ctx.rng()));
  }
  EXPECT_TRUE(ctx.exhausted());
  EXPECT_EQ(ctx.evaluations(), 10u);
}

TEST(EvalContext, WallClockBudgetBinds) {
  Zdt problem(ZdtVariant::kZdt1, 6);
  // 0-second wall budget: exhausted as soon as the timer ticks.
  EvalContext<Zdt> ctx(problem, 1, 1000000, 0, 1e-9);
  ctx.evaluate(problem.random_design(ctx.rng()));
  EXPECT_TRUE(ctx.exhausted());
  EXPECT_LT(ctx.evaluations(), 1000000u);
}

TEST(EvalContext, SnapshotsFollowCadence) {
  Zdt problem(ZdtVariant::kZdt1, 6);
  EvalContext<Zdt> ctx(problem, 2, 100, /*snapshot_interval=*/25);
  while (!ctx.exhausted()) {
    ctx.evaluate(problem.random_design(ctx.rng()));
  }
  ctx.take_snapshot();
  ASSERT_GE(ctx.snapshots().size(), 4u);
  for (std::size_t i = 1; i < ctx.snapshots().size(); ++i) {
    EXPECT_GT(ctx.snapshots()[i].evaluations,
              ctx.snapshots()[i - 1].evaluations);
  }
}

TEST(EvalContext, SolutionSetProviderDrivesSnapshots) {
  Zdt problem(ZdtVariant::kZdt1, 6);
  EvalContext<Zdt> ctx(problem, 3, 50);
  const std::vector<moo::ObjectiveVector> fixed{{0.25, 0.25}};
  ctx.set_solution_set_provider([&] { return fixed; });
  ctx.evaluate(problem.random_design(ctx.rng()));
  ctx.take_snapshot();
  ASSERT_FALSE(ctx.snapshots().empty());
  EXPECT_EQ(ctx.snapshots().back().front, fixed);
  // Clearing the provider falls back to the archive front.
  ctx.set_solution_set_provider(nullptr);
  ctx.take_snapshot();
  EXPECT_NE(ctx.snapshots().back().front, fixed);
}

TEST(EvalContext, ArchiveTracksNonDominated) {
  Zdt problem(ZdtVariant::kZdt1, 6);
  EvalContext<Zdt> ctx(problem, 4, 200);
  while (!ctx.exhausted()) {
    ctx.evaluate(problem.random_design(ctx.rng()));
  }
  const auto points = ctx.archive().objective_set();
  for (std::size_t i = 0; i < points.size(); ++i) {
    for (std::size_t j = 0; j < points.size(); ++j) {
      if (i != j) {
        EXPECT_FALSE(moo::dominates(points[i], points[j]));
      }
    }
  }
}

TEST(DecompositionPopulation, InitializeFillsAllSubproblems) {
  Zdt problem(ZdtVariant::kZdt1, 8);
  EvalContext<Zdt> ctx(problem, 5, 1000);
  DecompositionPopulation<Zdt> pop(12, 2, 4);
  pop.initialize(ctx);
  EXPECT_EQ(pop.size(), 12u);
  EXPECT_EQ(ctx.evaluations(), 12u);
  for (std::size_t i = 0; i < pop.size(); ++i) {
    EXPECT_EQ(pop.objectives(i).size(), 2u);
    EXPECT_EQ(pop.weight(i).size(), 2u);
  }
}

TEST(DecompositionPopulation, ReferencePointIsComponentMinimum) {
  Zdt problem(ZdtVariant::kZdt1, 8);
  EvalContext<Zdt> ctx(problem, 6, 1000);
  DecompositionPopulation<Zdt> pop(10, 2, 3);
  pop.initialize(ctx);
  const auto& z = pop.reference_point();
  for (std::size_t i = 0; i < pop.size(); ++i) {
    for (std::size_t k = 0; k < 2; ++k) {
      EXPECT_LE(z[k], pop.objectives(i)[k]);
    }
  }
}

TEST(DecompositionPopulation, ObjectiveScaleIsIdealToNadirRange) {
  Zdt problem(ZdtVariant::kZdt1, 8);
  EvalContext<Zdt> ctx(problem, 7, 1000);
  DecompositionPopulation<Zdt> pop(10, 2, 3);
  pop.initialize(ctx);
  const auto scale = pop.objective_scale();
  ASSERT_EQ(scale.size(), 2u);
  for (double s : scale) EXPECT_GT(s, 0.0);
  // Scale covers the population: every deviation is within [0, scale].
  const auto& z = pop.reference_point();
  for (std::size_t i = 0; i < pop.size(); ++i) {
    for (std::size_t k = 0; k < 2; ++k) {
      EXPECT_LE(pop.objectives(i)[k] - z[k], scale[k] + 1e-12);
    }
  }
}

TEST(DecompositionPopulation, UpdateReplacesOnlyImprovedSubproblems) {
  Zdt problem(ZdtVariant::kZdt1, 8);
  EvalContext<Zdt> ctx(problem, 8, 1000);
  DecompositionPopulation<Zdt> pop(10, 2, 3);
  pop.initialize(ctx);
  // A candidate dominating everything must replace (up to the cap).
  const moo::ObjectiveVector ideal_obj{0.0, 0.0};
  std::vector<std::size_t> pool(pop.size());
  std::iota(pool.begin(), pool.end(), std::size_t{0});
  const auto replaced =
      pop.update(problem.random_design(ctx.rng()), ideal_obj, pool, 3);
  EXPECT_EQ(replaced, 3u);
  // A candidate worse than everything must replace nothing.
  const moo::ObjectiveVector bad{100.0, 100.0};
  EXPECT_EQ(pop.update(problem.random_design(ctx.rng()), bad, pool, 3), 0u);
}

TEST(DecompositionPopulation, MaxReplacementCapHolds) {
  Zdt problem(ZdtVariant::kZdt1, 8);
  EvalContext<Zdt> ctx(problem, 9, 1000);
  DecompositionPopulation<Zdt> pop(10, 2, 3);
  pop.initialize(ctx);
  std::vector<std::size_t> pool(pop.size());
  std::iota(pool.begin(), pool.end(), std::size_t{0});
  const auto replaced =
      pop.update(problem.random_design(ctx.rng()), {0.0, 0.0}, pool, 1);
  EXPECT_EQ(replaced, 1u);
}

TEST(EvalModel, TrainsAndPredictsAfterSamples) {
  EvalModel model(3, 2, 100);
  EXPECT_FALSE(model.trained());
  util::Rng rng(10);
  // Target = sum of design features; objectives/weights constant.
  for (int i = 0; i < 200; ++i) {
    std::vector<double> f{rng.uniform(), rng.uniform(), rng.uniform()};
    const double target = f[0] + f[1] + f[2];
    model.add_sample(f, {0.5, 0.5}, {0.5, 0.5}, target);
  }
  model.train(rng);
  ASSERT_TRUE(model.trained());
  const double lo = model.predict({0.1, 0.1, 0.1}, {0.5, 0.5}, {0.5, 0.5});
  const double hi = model.predict({0.9, 0.9, 0.9}, {0.5, 0.5}, {0.5, 0.5});
  EXPECT_LT(lo, hi);
}

TEST(EvalModel, CapacityBoundsSamples) {
  EvalModel model(1, 1, 5);
  for (int i = 0; i < 20; ++i) {
    model.add_sample({static_cast<double>(i)}, {0.0}, {1.0}, 0.0);
  }
  EXPECT_EQ(model.num_samples(), 5u);
}

TEST(EvalModel, TrainOnEmptyIsNoop) {
  EvalModel model(2, 2);
  util::Rng rng(11);
  model.train(rng);
  EXPECT_FALSE(model.trained());
}

TEST(Moela, GuideModesBothRun) {
  Zdt problem(ZdtVariant::kZdt1, 8);
  for (GuideMode mode : {GuideMode::kFinalValue, GuideMode::kImprovement}) {
    MoelaConfig c;
    c.population_size = 12;
    c.n_local = 3;
    c.iter_early = 1;
    c.forest.num_trees = 4;
    c.forest.max_depth = 5;
    c.local_search.max_evaluations = 20;
    c.guide_mode = mode;
    EvalContext<Zdt> ctx(problem, 12, 800);
    Moela<Zdt> algo(c);
    const auto pop = algo.run(ctx);
    EXPECT_EQ(pop.size(), 12u);
    EXPECT_GE(ctx.evaluations(), 700u);
  }
}

TEST(Moela, TrainIntervalReducesTrainingWithoutBreaking) {
  Zdt problem(ZdtVariant::kZdt1, 8);
  MoelaConfig c;
  c.population_size = 12;
  c.n_local = 2;
  c.train_interval = 4;
  c.forest.num_trees = 4;
  c.local_search.max_evaluations = 20;
  EvalContext<Zdt> ctx(problem, 13, 1000);
  Moela<Zdt> algo(c);
  EXPECT_NO_THROW(algo.run(ctx));
}

TEST(Moela, WallClockBudgetStopsTheRun) {
  Zdt problem(ZdtVariant::kZdt1, 8);
  MoelaConfig c;
  c.population_size = 10;
  EvalContext<Zdt> ctx(problem, 14, 1000000, 0, /*max_seconds=*/0.2);
  Moela<Zdt> algo(c);
  algo.run(ctx);
  EXPECT_LT(ctx.evaluations(), 1000000u);
  EXPECT_GE(ctx.elapsed_seconds(), 0.2);
}

class GuideSweep : public ::testing::TestWithParam<std::size_t> {};

// The learned guide must at minimum produce valid start selections
// (distinct indices within range) across population sizes.
TEST_P(GuideSweep, SelectionsAreValidAcrossSizes) {
  const std::size_t n = GetParam();
  Zdt problem(ZdtVariant::kZdt2, 8);
  MoelaConfig c;
  c.population_size = n;
  c.n_local = 3;
  c.iter_early = 1;
  c.forest.num_trees = 4;
  c.local_search.max_evaluations = 15;
  EvalContext<Zdt> ctx(problem, 20 + n, 600);
  Moela<Zdt> algo(c);
  const auto pop = algo.run(ctx);
  EXPECT_EQ(pop.size(), n);
}

INSTANTIATE_TEST_SUITE_P(Sizes, GuideSweep, ::testing::Values(4, 9, 16, 30));

}  // namespace
}  // namespace moela::core
