// A candidate solution of the design problem: a core placement plus a link
// placement.
#pragma once

#include <cstddef>
#include <vector>

#include "noc/link.hpp"
#include "noc/platform.hpp"

namespace moela::noc {

/// The decision variables of Sec. III: which core occupies each tile and
/// where the L links are placed. Kept deliberately plain (a value type);
/// feasibility logic lives in constraints.hpp and the generator.
struct NocDesign {
  /// placement[tile] == core id occupying that tile (a permutation of
  /// 0..num_cores-1).
  std::vector<CoreId> placement;
  /// Canonical (sorted, unique) link set, planar and vertical mixed.
  std::vector<Link> links;

  /// tile_of[core] — inverse of `placement`.
  std::vector<TileId> tile_of_core() const;

  /// Sorts and dedupes `links` into canonical form.
  void canonicalize();

  friend bool operator==(const NocDesign&, const NocDesign&) = default;
};

/// Adjacency view of a design's link set; built once per evaluation.
class Adjacency {
 public:
  Adjacency(const PlatformSpec& spec, const std::vector<Link>& links);

  /// Neighbors of tile t, ascending (deterministic routing depends on this).
  const std::vector<TileId>& neighbors(TileId t) const { return adj_[t]; }
  /// Router degree (= port count toward other routers).
  std::size_t degree(TileId t) const { return adj_[t].size(); }
  std::size_t num_tiles() const { return adj_.size(); }

  /// True if every tile can reach every other tile.
  bool connected() const;

 private:
  std::vector<std::vector<TileId>> adj_;
};

/// Splits a design's links into planar / vertical subsets.
struct LinkSplit {
  std::vector<Link> planar;
  std::vector<Link> vertical;
};
LinkSplit split_links(const PlatformSpec& spec, const std::vector<Link>& links);

}  // namespace moela::noc
