#include "moo/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace moela::moo {
namespace {

TEST(Igd, ZeroWhenApproxCoversFront) {
  const std::vector<ObjectiveVector> front{{0.0, 1.0}, {1.0, 0.0}};
  EXPECT_DOUBLE_EQ(igd(front, front), 0.0);
}

TEST(Igd, KnownDistance) {
  const std::vector<ObjectiveVector> front{{0.0, 0.0}};
  const std::vector<ObjectiveVector> approx{{3.0, 4.0}};
  EXPECT_DOUBLE_EQ(igd(approx, front), 5.0);
}

TEST(Igd, EmptyApproxIsInfinite) {
  const std::vector<ObjectiveVector> front{{0.0, 0.0}};
  EXPECT_TRUE(std::isinf(igd({}, front)));
}

TEST(Igd, ImprovesWithCloserApproximation) {
  const std::vector<ObjectiveVector> front{{0.0, 1.0}, {0.5, 0.5}, {1.0, 0.0}};
  const std::vector<ObjectiveVector> far{{2.0, 2.0}};
  const std::vector<ObjectiveVector> near{{0.6, 0.6}};
  EXPECT_LT(igd(near, front), igd(far, front));
}

ConvergenceTrace make_trace(std::initializer_list<double> phvs,
                            std::size_t step = 100) {
  ConvergenceTrace t;
  std::size_t e = step;
  for (double p : phvs) {
    t.push_back({e, 0.0, p});
    e += step;
  }
  return t;
}

TEST(ConvergenceIndex, DetectsPlateau) {
  // Rises then flattens at index 3.
  const auto trace =
      make_trace({0.1, 0.3, 0.5, 0.7, 0.701, 0.702, 0.702, 0.703, 0.703});
  const auto idx = convergence_index(trace);
  ASSERT_TRUE(idx.has_value());
  EXPECT_EQ(*idx, 3u);
}

TEST(ConvergenceIndex, NeverSettlesFallsBackToEnd) {
  // Keeps improving by 10% each step; window never fits.
  ConvergenceTrace trace;
  double phv = 1.0;
  for (int i = 0; i < 10; ++i) {
    trace.push_back({static_cast<std::size_t>(100 * (i + 1)), 0.0, phv});
    phv *= 1.1;
  }
  const auto idx = convergence_index(trace);
  ASSERT_TRUE(idx.has_value());
  EXPECT_EQ(*idx, trace.size() - 1);
}

TEST(ConvergenceIndex, EmptyTraceIsNull) {
  EXPECT_FALSE(convergence_index({}).has_value());
}

TEST(EvaluationsToReach, InterpolatesBetweenSamples) {
  const auto trace = make_trace({0.0, 1.0});  // evals 100, 200
  const auto e = evaluations_to_reach(trace, 0.5);
  ASSERT_TRUE(e.has_value());
  EXPECT_NEAR(*e, 150.0, 1e-9);
}

TEST(EvaluationsToReach, TargetNeverReachedIsNull) {
  const auto trace = make_trace({0.1, 0.2, 0.3});
  EXPECT_FALSE(evaluations_to_reach(trace, 0.9).has_value());
}

TEST(EvaluationsToReach, FirstSampleAlreadyReaches) {
  const auto trace = make_trace({0.8, 0.9});
  const auto e = evaluations_to_reach(trace, 0.5);
  ASSERT_TRUE(e.has_value());
  EXPECT_DOUBLE_EQ(*e, 100.0);
}

TEST(SpeedupFactor, FasterAlgorithmScoresAboveOne) {
  // "other" converges to 0.7 at eval 800; "ours" reaches 0.7 at ~eval 300.
  const auto other =
      make_trace({0.1, 0.3, 0.5, 0.6, 0.65, 0.7, 0.701, 0.701, 0.701, 0.701,
                  0.701, 0.701});
  const auto ours = make_trace({0.2, 0.5, 0.7, 0.8, 0.85});
  const auto s = speedup_factor(ours, other);
  ASSERT_TRUE(s.has_value());
  EXPECT_GT(*s, 1.0);
}

TEST(SpeedupFactor, NullWhenOursNeverReaches) {
  const auto other = make_trace({0.5, 0.9, 0.901, 0.901, 0.901, 0.901, 0.901,
                                 0.901});
  const auto ours = make_trace({0.1, 0.2, 0.3});
  EXPECT_FALSE(speedup_factor(ours, other).has_value());
}

TEST(SpeedupFactor, SymmetricBaselineIsAboutOne) {
  const auto t = make_trace({0.1, 0.4, 0.6, 0.7, 0.702, 0.703, 0.703, 0.703,
                             0.703, 0.703});
  const auto s = speedup_factor(t, t);
  ASSERT_TRUE(s.has_value());
  EXPECT_NEAR(*s, 1.0, 0.35);  // interpolation can shift slightly
}

}  // namespace
}  // namespace moela::moo
