#include "noc/generator.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "noc/constraints.hpp"

namespace moela::noc {

namespace {

/// Union-find over tiles for the budgeted Kruskal construction.
class DisjointSet {
 public:
  explicit DisjointSet(std::size_t n) : parent_(n), rank_(n, 0) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  bool unite(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    if (rank_[a] < rank_[b]) std::swap(a, b);
    parent_[b] = a;
    if (rank_[a] == rank_[b]) ++rank_[a];
    return true;
  }

 private:
  std::vector<std::size_t> parent_;
  std::vector<std::size_t> rank_;
};

/// Removing `link`, is the graph still connected? O(V + E) BFS.

}  // namespace

std::vector<CoreId> DesignOps::random_placement(util::Rng& rng) const {
  const auto& spec = *spec_;
  std::vector<CoreId> placement(spec.num_tiles(),
                                static_cast<CoreId>(spec.num_cores()));
  auto llcs = spec.cores_of_type(PeType::kLlc);
  auto edge = spec.edge_tiles();
  rng.shuffle(edge);
  for (std::size_t i = 0; i < llcs.size(); ++i) {
    placement[edge[i]] = llcs[i];
  }
  std::vector<CoreId> rest;
  for (CoreId c = 0; c < spec.num_cores(); ++c) {
    if (spec.core_type(c) != PeType::kLlc) rest.push_back(c);
  }
  rng.shuffle(rest);
  std::size_t next = 0;
  for (TileId t = 0; t < spec.num_tiles(); ++t) {
    if (placement[t] == spec.num_cores()) placement[t] = rest[next++];
  }
  return placement;
}

std::vector<Link> DesignOps::build_links(
    const std::vector<std::vector<Link>>& planar_pools,
    const std::vector<std::vector<Link>>& vertical_pools,
    util::Rng& rng) const {
  const auto& spec = *spec_;
  const auto max_degree =
      static_cast<std::size_t>(spec.max_router_degree());

  for (int attempt = 0; attempt < 32; ++attempt) {
    std::vector<Link> chosen;
    std::vector<std::size_t> degree(spec.num_tiles(), 0);
    std::vector<bool> planar_class;  // parallel to `chosen`
    std::size_t planar_used = 0, vertical_used = 0;
    DisjointSet dsu(spec.num_tiles());
    std::size_t components = spec.num_tiles();

    auto in_chosen = [&](const Link& l) {
      return std::find(chosen.begin(), chosen.end(), l) != chosen.end();
    };
    auto try_add = [&](const Link& l, bool is_planar, bool tree_only) {
      if (is_planar ? planar_used >= spec.num_planar_links()
                    : vertical_used >= spec.num_vertical_links()) {
        return false;
      }
      if (degree[l.a] >= max_degree || degree[l.b] >= max_degree) return false;
      if (in_chosen(l)) return false;
      if (tree_only && dsu.find(l.a) == dsu.find(l.b)) return false;
      if (dsu.unite(l.a, l.b)) --components;
      chosen.push_back(l);
      planar_class.push_back(is_planar);
      ++degree[l.a];
      ++degree[l.b];
      (is_planar ? planar_used : vertical_used) += 1;
      return true;
    };

    // Phase 0 — when the vertical budget equals the candidate count (the
    // paper's 48-TSV setup), every vertical link is mandatory: place them
    // all first so planar fills cannot saturate router degrees and make a
    // mandatory TSV unplaceable.
    if (spec.num_vertical_links() == spec.vertical_candidates().size()) {
      for (const Link& l : spec.vertical_candidates()) {
        try_add(l, /*is_planar=*/false, /*tree_only=*/false);
      }
    }

    // Phase 1 — spanning tree: sweep pools in preference order, shuffled
    // within each pool, accepting only component-joining edges. Planar and
    // vertical pools are interleaved per preference level so the tree can
    // use TSVs to cross layers.
    const std::size_t levels =
        std::max(planar_pools.size(), vertical_pools.size());
    for (std::size_t level = 0; level < levels && components > 1; ++level) {
      std::vector<std::pair<Link, bool>> pool;
      if (level < planar_pools.size()) {
        for (const Link& l : planar_pools[level]) pool.push_back({l, true});
      }
      if (level < vertical_pools.size()) {
        for (const Link& l : vertical_pools[level]) pool.push_back({l, false});
      }
      rng.shuffle(pool);
      for (const auto& [link, is_planar] : pool) {
        if (components == 1) break;
        try_add(link, is_planar, /*tree_only=*/true);
      }
    }
    if (components > 1) continue;  // retry with fresh shuffles

    // Phase 2 — budget fill: same preference order, no tree restriction.
    for (std::size_t level = 0; level < levels; ++level) {
      if (level < planar_pools.size()) {
        auto pool = planar_pools[level];
        rng.shuffle(pool);
        for (const Link& l : pool) try_add(l, true, false);
      }
      if (level < vertical_pools.size()) {
        auto pool = vertical_pools[level];
        rng.shuffle(pool);
        for (const Link& l : pool) try_add(l, false, false);
      }
    }
    if (planar_used == spec.num_planar_links() &&
        vertical_used == spec.num_vertical_links()) {
      std::sort(chosen.begin(), chosen.end());
      return chosen;
    }
  }
  throw std::runtime_error("DesignOps::build_links: budget unsatisfiable");
}

NocDesign DesignOps::random_design(util::Rng& rng) const {
  NocDesign d;
  d.placement = random_placement(rng);
  d.links = build_links({spec_->planar_candidates()},
                        {spec_->vertical_candidates()}, rng);
  return d;
}

bool DesignOps::swap_cores(NocDesign& d, util::Rng& rng) const {
  const auto& spec = *spec_;
  for (int attempt = 0; attempt < 16; ++attempt) {
    const TileId t1 = static_cast<TileId>(rng.below(spec.num_tiles()));
    TileId t2;
    if (spec.core_type(d.placement[t1]) == PeType::kLlc) {
      // LLC must land on an edge tile.
      t2 = rng.pick(spec.edge_tiles());
    } else {
      t2 = static_cast<TileId>(rng.below(spec.num_tiles()));
    }
    if (t1 == t2) continue;
    // If t2 hosts an LLC it must move to t1, so t1 must be an edge tile.
    if (spec.core_type(d.placement[t2]) == PeType::kLlc &&
        !spec.is_edge_tile(t1)) {
      continue;
    }
    std::swap(d.placement[t1], d.placement[t2]);
    return true;
  }
  return false;
}

bool DesignOps::move_planar_link(NocDesign& d, util::Rng& rng) const {
  const auto& spec = *spec_;
  auto split = split_links(spec, d.links);
  if (split.planar.empty()) return false;
  const auto max_degree = static_cast<std::size_t>(spec.max_router_degree());

  Adjacency adj(spec, d.links);
  for (int attempt = 0; attempt < 24; ++attempt) {
    const Link victim = rng.pick(split.planar);
    const Link incoming = rng.pick(spec.planar_candidates());
    if (incoming == victim) continue;
    if (std::binary_search(d.links.begin(), d.links.end(), incoming)) continue;
    // Degree after the exchange (the victim's endpoints lose one).
    auto deg_after = [&](TileId t) {
      std::size_t deg = adj.degree(t);
      if (t == victim.a || t == victim.b) --deg;
      if (t == incoming.a || t == incoming.b) ++deg;
      return deg;
    };
    if (deg_after(incoming.a) > max_degree ||
        deg_after(incoming.b) > max_degree) {
      continue;
    }
    std::vector<Link> candidate = d.links;
    std::erase(candidate, victim);
    candidate.push_back(incoming);
    std::sort(candidate.begin(), candidate.end());
    if (!Adjacency(spec, candidate).connected()) continue;
    d.links = std::move(candidate);
    return true;
  }
  return false;
}

bool DesignOps::move_vertical_link(NocDesign& d, util::Rng& rng) const {
  const auto& spec = *spec_;
  // When the budget equals the candidate count every TSV slot is occupied
  // (the paper's 48/48 setup) and there is nothing to move.
  if (spec.num_vertical_links() >= spec.vertical_candidates().size()) {
    return false;
  }
  auto split = split_links(spec, d.links);
  if (split.vertical.empty()) return false;
  const auto max_degree = static_cast<std::size_t>(spec.max_router_degree());

  Adjacency adj(spec, d.links);
  for (int attempt = 0; attempt < 24; ++attempt) {
    const Link victim = rng.pick(split.vertical);
    const Link incoming = rng.pick(spec.vertical_candidates());
    if (incoming == victim) continue;
    if (std::binary_search(d.links.begin(), d.links.end(), incoming)) continue;
    auto deg_after = [&](TileId t) {
      std::size_t deg = adj.degree(t);
      if (t == victim.a || t == victim.b) --deg;
      if (t == incoming.a || t == incoming.b) ++deg;
      return deg;
    };
    if (deg_after(incoming.a) > max_degree ||
        deg_after(incoming.b) > max_degree) {
      continue;
    }
    std::vector<Link> candidate = d.links;
    std::erase(candidate, victim);
    candidate.push_back(incoming);
    std::sort(candidate.begin(), candidate.end());
    if (!Adjacency(spec, candidate).connected()) continue;
    d.links = std::move(candidate);
    return true;
  }
  return false;
}

NocDesign DesignOps::random_neighbor(const NocDesign& d,
                                     util::Rng& rng) const {
  NocDesign out = d;
  // Three move kinds; vertical moves are only meaningful when TSV slots are
  // not saturated. Fall back across kinds so a neighbor is always produced.
  const bool tsv_movable =
      spec_->num_vertical_links() < spec_->vertical_candidates().size();
  const std::uint64_t kinds = tsv_movable ? 3 : 2;
  switch (rng.below(kinds)) {
    case 0:
      if (swap_cores(out, rng)) return out;
      break;
    case 1:
      if (move_planar_link(out, rng)) return out;
      break;
    default:
      if (move_vertical_link(out, rng)) return out;
      break;
  }
  // Fallbacks: a core swap virtually never fails.
  if (move_planar_link(out, rng)) return out;
  swap_cores(out, rng);
  return out;
}

NocDesign DesignOps::crossover(const NocDesign& a, const NocDesign& b,
                               util::Rng& rng) const {
  const auto& spec = *spec_;
  NocDesign child;

  // --- Placement: cycle crossover over tile positions. Each cycle is taken
  // wholesale from one parent, so every position holds that parent's core
  // and feasibility (LLC on edge) is inherited.
  const std::size_t n = a.placement.size();
  child.placement.assign(n, static_cast<CoreId>(spec.num_cores()));
  std::vector<TileId> tile_of_core_a(n);
  for (TileId t = 0; t < n; ++t) tile_of_core_a[a.placement[t]] = t;
  std::vector<bool> visited(n, false);
  for (TileId start = 0; start < n; ++start) {
    if (visited[start]) continue;
    // Collect the cycle through position `start`.
    std::vector<TileId> cycle;
    TileId t = start;
    do {
      visited[t] = true;
      cycle.push_back(t);
      t = tile_of_core_a[b.placement[t]];
    } while (t != start);
    const bool from_a = rng.chance(0.5);
    for (TileId pos : cycle) {
      child.placement[pos] = from_a ? a.placement[pos] : b.placement[pos];
    }
  }

  // --- Links: draw from the parents' union, then the global pool.
  const auto sa = split_links(spec, a.links);
  const auto sb = split_links(spec, b.links);
  auto merged = [](const std::vector<Link>& x, const std::vector<Link>& y) {
    std::vector<Link> out;
    std::set_union(x.begin(), x.end(), y.begin(), y.end(),
                   std::back_inserter(out));
    return out;
  };
  // Generic-strength link recombination: the child's links are drawn from
  // the parents' union (then the global pool if budgets demand), WITHOUT
  // preferring links common to both parents. Preferring common links makes
  // the crossover memetic-strength and collapses the evolutionary/local-
  // search trade-off the paper studies (see DESIGN.md, "operator
  // calibration").
  child.links = build_links(
      {merged(sa.planar, sb.planar), spec.planar_candidates()},
      {merged(sa.vertical, sb.vertical), spec.vertical_candidates()},
      rng);
  return child;
}

NocDesign DesignOps::mutate(const NocDesign& d, util::Rng& rng) const {
  NocDesign out = random_neighbor(d, rng);
  int extra = 0;
  while (extra < 2 && rng.chance(0.3)) {
    out = random_neighbor(out, rng);
    ++extra;
  }
  return out;
}

}  // namespace moela::noc
