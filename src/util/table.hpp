// Plain-text table rendering for benchmark output. The bench harness prints
// the same rows the paper's tables report; this keeps the formatting in one
// place.
#pragma once

#include <string>
#include <vector>

namespace moela::util {

/// A simple column-aligned text table with an optional title, rendered in
/// GitHub-flavored-markdown style (usable both in terminals and docs).
class Table {
 public:
  explicit Table(std::string title = {}) : title_(std::move(title)) {}

  /// Sets the header row. Must be called before any add_row.
  void set_header(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  /// Convenience: formats doubles with the given precision.
  void add_row_numeric(const std::string& label,
                       const std::vector<double>& values, int precision = 2);

  std::size_t num_rows() const { return rows_.size(); }

  /// Renders the table as markdown.
  std::string to_string() const;

  /// Renders rows as CSV (header first), no title.
  std::string to_csv() const;

  /// Prints to stdout.
  void print() const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (helper for table cells).
std::string fmt(double v, int precision = 2);
/// Formats as a multiplicative factor, e.g. "12.3x".
std::string fmt_factor(double v, int precision = 2);
/// Formats as a percentage, e.g. "42%". `v` is a fraction (0.42 -> "42%").
std::string fmt_percent(double v, int precision = 0);

}  // namespace moela::util
