// JSON (de)serialization for the batched-execution value types — the wire
// schema of the serving protocol (src/serve/) and the per-run structured
// logs. The JSON field names map 1:1 onto the C++ members, so a request
// hand-written against api/request.hpp works unchanged over the socket.
//
// Exactness contract: every double that feeds results or cache keys
// (objective values, seconds, knob values) travels as a hexfloat string
// (util::exact_number), so a RunReport deserialized from the wire is
// bit-identical to the in-process one. Deserializers also accept plain
// JSON numbers for human-written requests.
//
// RunRequest limitations: only keyed problems serialize — a request whose
// problem is bound directly (RunRequest::bound_problem) has no stable
// description and request_from_json never produces one.
#pragma once

#include <string>

#include "api/optimizer.hpp"
#include "api/request.hpp"
#include "util/json.hpp"

namespace moela::api {

/// Request → JSON. Fields: problem, problem_options{objectives, variables,
/// seed, app, small_platform}, algorithm, options{evals, seconds, snapshot,
/// seed, pop, n_local, knobs{}}, need_designs, label, trace, checkpoint,
/// and (only when present) a resume snapshot (api/snapshot.hpp). Defaults
/// are written explicitly so the wire form is self-contained.
util::Json request_to_json(const RunRequest& request);

/// JSON → request. Unknown fields are ignored (forward compatibility);
/// absent fields keep their C++ defaults. Throws util::JsonError on a
/// type mismatch or a missing required field (problem, algorithm).
RunRequest request_from_json(const util::Json& json);

/// Report → JSON. Includes snapshots, the final front/objectives, the
/// type-erased designs (real / binary / noc kinds; other design types
/// serialize as kind "none" and drop the payload, mirroring the result
/// cache's codec), and provenance.
util::Json report_to_json(const RunReport& report);

/// JSON → report. Throws util::JsonError on malformed input.
RunReport report_from_json(const util::Json& json);

}  // namespace moela::api
