// NSGA-II baseline (Deb et al. 2002, reference [4] of the paper): elitist
// non-dominated sorting GA with crowding-distance diversity. Included as an
// extension baseline (the paper discusses it as the classic EA for computer
// system design problems).
#pragma once

#include <algorithm>
#include <cstddef>
#include <limits>
#include <vector>

#include "core/eval_context.hpp"
#include "moo/pareto.hpp"
#include "moo/problem.hpp"

namespace moela::baselines {

struct Nsga2Config {
  std::size_t population_size = 50;
  std::size_t max_generations = 1000;
};

template <moo::MooProblem P>
class Nsga2 {
 public:
  using Design = typename P::Design;

  struct Individual {
    Design design;
    moo::ObjectiveVector objectives;
  };

  explicit Nsga2(Nsga2Config config = {}) : config_(config) {}

  std::vector<Individual> run(core::EvalContext<P>& ctx) {
    std::vector<Individual> pop;
    ctx.set_solution_set_provider([&pop] {
      std::vector<moo::ObjectiveVector> out;
      out.reserve(pop.size());
      for (const auto& ind : pop) out.push_back(ind.objectives);
      return out;
    });
    pop.reserve(config_.population_size);
    for (std::size_t i = 0;
         i < config_.population_size && !ctx.exhausted(); ++i) {
      Design d = ctx.problem().random_design(ctx.rng());
      moo::ObjectiveVector obj = ctx.evaluate(d);
      pop.push_back({std::move(d), std::move(obj)});
    }

    for (std::size_t gen = 0;
         gen < config_.max_generations && !ctx.exhausted(); ++gen) {
      // Rank + crowding of the current population for tournament selection.
      auto [rank, crowd] = rank_and_crowding(pop);

      std::vector<Individual> offspring;
      offspring.reserve(pop.size());
      while (offspring.size() < pop.size() && !ctx.exhausted()) {
        const std::size_t p1 = tournament(ctx, rank, crowd);
        const std::size_t p2 = tournament(ctx, rank, crowd);
        Design child = ctx.problem().crossover(pop[p1].design, pop[p2].design,
                                               ctx.rng());
        child = ctx.problem().mutate(child, ctx.rng());
        moo::ObjectiveVector obj = ctx.evaluate(child);
        offspring.push_back({std::move(child), std::move(obj)});
      }

      // Elitist (mu + lambda) survival by front then crowding.
      for (auto& ind : offspring) pop.push_back(std::move(ind));
      pop = survive(std::move(pop), config_.population_size);
    }
    ctx.set_solution_set_provider(nullptr);
    return pop;
  }

  const Nsga2Config& config() const { return config_; }

 private:
  static std::pair<std::vector<std::size_t>, std::vector<double>>
  rank_and_crowding(const std::vector<Individual>& pop) {
    std::vector<moo::ObjectiveVector> points;
    points.reserve(pop.size());
    for (const auto& ind : pop) points.push_back(ind.objectives);
    const auto fronts = moo::non_dominated_sort(points);
    std::vector<std::size_t> rank(pop.size(), 0);
    std::vector<double> crowd(pop.size(), 0.0);
    for (std::size_t f = 0; f < fronts.size(); ++f) {
      const auto dist = moo::crowding_distance(points, fronts[f]);
      for (std::size_t k = 0; k < fronts[f].size(); ++k) {
        rank[fronts[f][k]] = f;
        crowd[fronts[f][k]] = dist[k];
      }
    }
    return {std::move(rank), std::move(crowd)};
  }

  std::size_t tournament(core::EvalContext<P>& ctx,
                         const std::vector<std::size_t>& rank,
                         const std::vector<double>& crowd) const {
    const std::size_t a = ctx.rng().below(rank.size());
    const std::size_t b = ctx.rng().below(rank.size());
    if (rank[a] != rank[b]) return rank[a] < rank[b] ? a : b;
    return crowd[a] >= crowd[b] ? a : b;
  }

  static std::vector<Individual> survive(std::vector<Individual> merged,
                                         std::size_t target) {
    std::vector<moo::ObjectiveVector> points;
    points.reserve(merged.size());
    for (const auto& ind : merged) points.push_back(ind.objectives);
    const auto fronts = moo::non_dominated_sort(points);

    std::vector<Individual> next;
    next.reserve(target);
    for (const auto& front : fronts) {
      if (next.size() + front.size() <= target) {
        for (std::size_t i : front) next.push_back(std::move(merged[i]));
      } else {
        // Partial front: keep the most crowded-distant members.
        const auto dist = moo::crowding_distance(points, front);
        std::vector<std::size_t> order(front.size());
        for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
        std::sort(order.begin(), order.end(),
                  [&](std::size_t x, std::size_t y) {
                    return dist[x] > dist[y];
                  });
        for (std::size_t k = 0; k < order.size() && next.size() < target;
             ++k) {
          next.push_back(std::move(merged[front[order[k]]]));
        }
      }
      if (next.size() >= target) break;
    }
    return next;
  }

  Nsga2Config config_;
};

}  // namespace moela::baselines
