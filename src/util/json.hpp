// Minimal dependency-free JSON: one value type, a compact one-line writer,
// and a strict recursive-descent parser. Built for the serving protocol
// (src/serve/) and the per-run structured logs — both are line-delimited
// JSON, so dump() always emits a single line (control characters in strings
// are escaped, objects iterate in sorted key order for deterministic
// output).
//
// Exactness: JSON number literals are decimal, so bit-exact doubles travel
// as hexfloat STRINGS ("0x1.8p+1") via exact_number() and are read back
// with exact_to_double(), which accepts either representation. Unsigned
// 64-bit integers (seeds, budgets) are a distinct storage form so they
// round-trip without passing through a double.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace moela::util {

class Json;
using JsonArray = std::vector<Json>;
/// std::map keeps dump() output key-sorted and deterministic.
using JsonObject = std::map<std::string, Json>;

/// Thrown by the typed accessors on a kind mismatch and by parse() on
/// malformed input (the message carries the byte offset).
class JsonError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Json {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}
  Json(bool value) : value_(value) {}
  Json(double value) : value_(value) {}
  Json(int value) : value_(static_cast<double>(value)) {}
  Json(std::uint64_t value) : value_(value) {}
  Json(const char* value) : value_(std::string(value)) {}
  Json(std::string value) : value_(std::move(value)) {}
  Json(JsonArray value) : value_(std::move(value)) {}
  Json(JsonObject value) : value_(std::move(value)) {}

  static Json array() { return Json(JsonArray{}); }
  static Json object() { return Json(JsonObject{}); }

  Kind kind() const {
    // The variant stores numbers in two alternatives (double and u64), so
    // the index does not map 1:1 onto Kind.
    switch (value_.index()) {
      case 0: return Kind::kNull;
      case 1: return Kind::kBool;
      case 2:
      case 3: return Kind::kNumber;
      case 4: return Kind::kString;
      case 5: return Kind::kArray;
      default: return Kind::kObject;
    }
  }
  bool is_null() const { return kind() == Kind::kNull; }
  bool is_bool() const { return kind() == Kind::kBool; }
  bool is_number() const {
    return std::holds_alternative<double>(value_) ||
           std::holds_alternative<std::uint64_t>(value_);
  }
  /// True when the number is stored as an exact u64 (not via a double).
  bool holds_u64() const {
    return std::holds_alternative<std::uint64_t>(value_);
  }
  bool is_string() const { return kind() == Kind::kString; }
  bool is_array() const { return kind() == Kind::kArray; }
  bool is_object() const { return kind() == Kind::kObject; }

  bool as_bool() const;
  /// Any number (u64 storage is converted; may round above 2^53).
  double as_double() const;
  /// Exact unsigned integer: u64 storage, or a double that is integral and
  /// in range. Anything else throws.
  std::uint64_t as_u64() const;
  const std::string& as_string() const;
  const JsonArray& as_array() const;
  const JsonObject& as_object() const;

  /// Object field access; nullptr when absent (or not an object: the
  /// callers' "missing field" handling covers both).
  const Json* find(const std::string& key) const;

  /// Object/array builders, chainable: o.set("a", 1).set("b", "x").
  Json& set(const std::string& key, Json value);
  Json& append(Json value);

  /// Compact single-line rendering. Non-finite doubles (no JSON literal
  /// exists) render as null — exactness-critical doubles travel as
  /// exact_number() strings instead.
  std::string dump() const;

  /// Strict parse of exactly one JSON value (trailing garbage is an
  /// error). Throws JsonError with a byte offset; nesting is capped to
  /// keep adversarial input from overflowing the stack.
  static Json parse(std::string_view text);
  /// Non-throwing parse; on failure returns nullopt and fills `error`.
  static std::optional<Json> try_parse(std::string_view text,
                                       std::string* error = nullptr);

  bool operator==(const Json& other) const { return value_ == other.value_; }

 private:
  std::variant<std::nullptr_t, bool, double, std::uint64_t, std::string,
               JsonArray, JsonObject>
      value_;
};

/// Defensive object-field readers for version-skew-tolerant consumers
/// (protocol events from a daemon of another build): a missing or
/// mistyped field yields the fallback instead of throwing.
std::uint64_t u64_field_or(const Json& object, const std::string& key,
                           std::uint64_t fallback);
double double_field_or(const Json& object, const std::string& key,
                       double fallback);
std::string string_field_or(const Json& object, const std::string& key,
                            std::string fallback = {});

/// Bit-exact double carrier: a hexfloat string value (util::hexfloat
/// rendering, the same one used by the result cache's disk tier and cache
/// keys).
Json exact_number(double value);
/// Reads a double back from exact_number() output — or from a plain JSON
/// number, so hand-written requests can use ordinary literals.
double exact_to_double(const Json& value);

}  // namespace moela::util
