// NocProblem: the Sec. III design problem packaged behind the MooProblem
// concept so every algorithm in the library can explore it.
#pragma once

#include <cstddef>
#include <memory>

#include "moo/objective.hpp"
#include "noc/design.hpp"
#include "noc/generator.hpp"
#include "noc/objectives.hpp"
#include "noc/platform.hpp"
#include "noc/workload.hpp"
#include "moo/problem.hpp"
#include "util/rng.hpp"

namespace moela::noc {

/// Adapts (platform, workload, params, m) into the MooProblem interface.
/// `m` selects the paper's scenario: 3-obj (objectives 1-3), 4-obj (1-4),
/// or 5-obj (1-5).
class NocProblem {
 public:
  using Design = NocDesign;

  NocProblem(PlatformSpec spec, Workload workload, std::size_t num_objectives,
             NocObjectiveParams params = {})
      : spec_(std::make_shared<const PlatformSpec>(std::move(spec))),
        workload_(std::make_shared<const Workload>(std::move(workload))),
        params_(params),
        num_objectives_(num_objectives),
        ops_(*spec_) {
    if (num_objectives_ < 2 || num_objectives_ > 5) {
      throw std::invalid_argument("NocProblem: 2..5 objectives supported");
    }
  }

  std::size_t num_objectives() const { return num_objectives_; }

  moo::ObjectiveVector evaluate(const Design& d) const {
    return evaluate_objectives(*spec_, d, *workload_, params_)
        .first(num_objectives_);
  }

  /// Full five-objective evaluation with intermediate detail (used by the
  /// EDP model and the Fig. 3 selection rule regardless of `m`).
  NocObjectives evaluate_full(const Design& d,
                              EvaluationDetail* detail = nullptr) const {
    return evaluate_objectives(*spec_, d, *workload_, params_, detail);
  }

  Design random_design(util::Rng& rng) const { return ops_.random_design(rng); }
  Design random_neighbor(const Design& d, util::Rng& rng) const {
    return ops_.random_neighbor(d, rng);
  }
  Design crossover(const Design& a, const Design& b, util::Rng& rng) const {
    return ops_.crossover(a, b, rng);
  }
  Design mutate(const Design& d, util::Rng& rng) const {
    return ops_.mutate(d, rng);
  }

  /// Fixed-width numeric encoding for the learned Eval model:
  ///  * one-hot PE type per tile (3 x num_tiles),
  ///  * router degree per tile (num_tiles),
  ///  * planar link count per layer (nz),
  ///  * vertical link count per layer boundary (nz - 1).
  /// Cheap to compute (no routing) yet captures both decision dimensions.
  std::vector<double> features(const Design& d) const;
  std::size_t num_features() const {
    return 4 * spec_->num_tiles() + 2 * static_cast<std::size_t>(spec_->nz()) -
           1;
  }

  const PlatformSpec& spec() const { return *spec_; }
  const Workload& workload() const { return *workload_; }
  const NocObjectiveParams& params() const { return params_; }
  const DesignOps& ops() const { return ops_; }

 private:
  std::shared_ptr<const PlatformSpec> spec_;
  std::shared_ptr<const Workload> workload_;
  NocObjectiveParams params_;
  std::size_t num_objectives_;
  DesignOps ops_;
};

static_assert(moo::MooProblem<NocProblem>);

}  // namespace moela::noc
