// Fixture: a properly annotated waiver must suppress the finding.
#include <string>
std::string label(int i) {
  // moela-lint: allow(hexfloat-wire) integer label, no double involved
  return std::to_string(i);
}
