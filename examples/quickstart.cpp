// Quickstart: explore the paper's 4x4x4 heterogeneous manycore platform
// with MOELA on one Rodinia-like workload and print the Pareto front.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "core/eval_context.hpp"
#include "core/moela.hpp"
#include "exp/analysis.hpp"
#include "noc/constraints.hpp"
#include "noc/problem.hpp"
#include "sim/rodinia.hpp"
#include "util/table.hpp"

using namespace moela;

int main() {
  // 1. The platform of Sec. V.A: 8 CPUs + 40 GPUs + 16 LLCs on a 4x4x4
  //    grid, 96 planar links + 48 TSVs.
  noc::PlatformSpec spec = noc::PlatformSpec::paper_4x4x4();
  std::printf("Platform: %s\n", spec.describe().c_str());

  // 2. A synthetic Rodinia-like workload (traffic + power profile).
  noc::Workload workload =
      sim::make_workload(spec, sim::RodiniaApp::kBfs, /*seed=*/7);
  std::printf("Workload: %s, total traffic %.1f flits/kcycle\n",
              workload.name.c_str(), workload.traffic.total());

  // 3. The 5-objective design problem (traffic mean/variance, CPU latency,
  //    energy, thermal).
  noc::NocProblem problem(spec, workload, /*num_objectives=*/5);

  // 4. Run MOELA with a small evaluation budget.
  core::MoelaConfig config;
  config.population_size = 30;
  config.n_local = 4;
  config.train_capacity = 2000;
  config.forest.num_trees = 8;
  config.forest.max_depth = 10;
  config.forest.max_features = 24;
  core::Moela<noc::NocProblem> moela(config);

  core::EvalContext<noc::NocProblem> ctx(problem, /*seed=*/42,
                                         /*max_evaluations=*/4000,
                                         /*snapshot_interval=*/500);
  auto population = moela.run(ctx);

  std::printf("\nRan %zu evaluations in %.2f s; archive holds %zu "
              "non-dominated designs.\n",
              ctx.evaluations(), ctx.elapsed_seconds(),
              ctx.archive().size());

  // 5. Verify and display a few population members.
  util::Table table("Final population (first 10 sub-problems)");
  table.set_header({"subproblem", "mean util", "var util", "CPU latency",
                    "energy", "thermal", "feasible"});
  for (std::size_t i = 0; i < population.size() && i < 10; ++i) {
    const auto& obj = population.objectives(i);
    const bool ok = noc::is_feasible(spec, population.design(i));
    table.add_row({std::to_string(i), util::fmt(obj[0], 2),
                   util::fmt(obj[1], 2), util::fmt(obj[2], 1),
                   util::fmt(obj[3], 0), util::fmt(obj[4], 2),
                   ok ? "yes" : "NO"});
  }
  table.print();

  // 6. Anytime quality: PHV trace of this run.
  exp::SnapshotSet runs{ctx.snapshots()};
  const auto bounds = exp::global_bounds(runs);
  const auto traces = exp::phv_traces(runs, bounds);
  std::printf("\nAnytime PHV (normalized):\n");
  for (const auto& p : traces[0]) {
    std::printf("  evals %6zu  phv %.4f\n", p.evaluations, p.phv);
  }
  return 0;
}
