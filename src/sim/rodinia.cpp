#include "sim/rodinia.hpp"

#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace moela::sim {

const std::vector<RodiniaApp>& all_rodinia_apps() {
  static const std::vector<RodiniaApp> apps = {
      RodiniaApp::kBfs,          RodiniaApp::kBackprop,
      RodiniaApp::kGaussian,     RodiniaApp::kHotspot3D,
      RodiniaApp::kPathfinder,   RodiniaApp::kSrad,
      RodiniaApp::kStreamcluster};
  return apps;
}

std::string app_name(RodiniaApp app) {
  switch (app) {
    case RodiniaApp::kBackprop:
      return "BP";
    case RodiniaApp::kBfs:
      return "BFS";
    case RodiniaApp::kGaussian:
      return "GAU";
    case RodiniaApp::kHotspot3D:
      return "HOT";
    case RodiniaApp::kPathfinder:
      return "PF";
    case RodiniaApp::kStreamcluster:
      return "SC";
    case RodiniaApp::kSrad:
      return "SRAD";
  }
  throw std::invalid_argument("app_name: unknown app");
}

AppArchetype archetype(RodiniaApp app) {
  AppArchetype a;
  switch (app) {
    case RodiniaApp::kBackprop:
      // Layered ML training: heavy GPU<->LLC for weights, real CPU phase
      // for weight updates, moderate GPU sharing between layers.
      a = {.cpu_llc = 2.0,
           .gpu_llc = 3.0,
           .gpu_gpu = 0.8,
           .cpu_cpu = 0.10,
           .llc_skew = 0.4,
           .gpu_locality = 0.7,
           .cpu_activity = 0.9,
           .gpu_activity = 0.9,
           .llc_activity = 0.8,
           .cpu_fraction = 0.45};
      break;
    case RodiniaApp::kBfs:
      // Irregular graph traversal: latency-bound, uniform (poor locality)
      // LLC access, low compute activity, CPU-driven frontier.
      a = {.cpu_llc = 3.5,
           .gpu_llc = 2.0,
           .gpu_gpu = 0.15,
           .cpu_cpu = 0.20,
           .llc_skew = 0.1,
           .gpu_locality = 0.1,
           .cpu_activity = 0.8,
           .gpu_activity = 0.5,
           .llc_activity = 1.0,
           .cpu_fraction = 0.60};
      break;
    case RodiniaApp::kGaussian:
      // Dense elimination: pivot-row broadcast creates strongly skewed
      // (hotspot) LLC popularity and high GPU activity.
      a = {.cpu_llc = 1.5,
           .gpu_llc = 3.5,
           .gpu_gpu = 0.5,
           .cpu_cpu = 0.05,
           .llc_skew = 1.2,
           .gpu_locality = 0.4,
           .cpu_activity = 0.7,
           .gpu_activity = 1.1,
           .llc_activity = 0.9,
           .cpu_fraction = 0.30};
      break;
    case RodiniaApp::kHotspot3D:
      // 3D stencil: strong neighbor sharing between GPUs, hot compute.
      a = {.cpu_llc = 1.0,
           .gpu_llc = 2.5,
           .gpu_gpu = 1.5,
           .cpu_cpu = 0.05,
           .llc_skew = 0.3,
           .gpu_locality = 0.9,
           .cpu_activity = 0.6,
           .gpu_activity = 1.2,
           .llc_activity = 0.7,
           .cpu_fraction = 0.20};
      break;
    case RodiniaApp::kPathfinder:
      // Wavefront DP: row-to-row sharing, moderate memory traffic.
      a = {.cpu_llc = 1.2,
           .gpu_llc = 2.2,
           .gpu_gpu = 1.0,
           .cpu_cpu = 0.08,
           .llc_skew = 0.5,
           .gpu_locality = 0.8,
           .cpu_activity = 0.7,
           .gpu_activity = 0.9,
           .llc_activity = 0.7,
           .cpu_fraction = 0.35};
      break;
    case RodiniaApp::kStreamcluster:
      // Streaming clustering: bandwidth-bound, every GPU streams from LLCs,
      // little inter-GPU traffic, high LLC activity.
      a = {.cpu_llc = 1.8,
           .gpu_llc = 4.5,
           .gpu_gpu = 0.10,
           .cpu_cpu = 0.05,
           .llc_skew = 0.2,
           .gpu_locality = 0.2,
           .cpu_activity = 0.8,
           .gpu_activity = 1.0,
           .llc_activity = 1.2,
           .cpu_fraction = 0.40};
      break;
    case RodiniaApp::kSrad:
      // Image stencil with reductions: streaming plus neighbor sharing and a
      // CPU-visible reduction phase.
      a = {.cpu_llc = 1.6,
           .gpu_llc = 3.8,
           .gpu_gpu = 0.9,
           .cpu_cpu = 0.10,
           .llc_skew = 0.3,
           .gpu_locality = 0.8,
           .cpu_activity = 0.8,
           .gpu_activity = 1.1,
           .llc_activity = 1.0,
           .cpu_fraction = 0.30};
      break;
  }
  return a;
}

namespace {

/// Zipf-like popularity weights over `n` items with exponent `s`,
/// normalized to mean 1.
std::vector<double> zipf_weights(std::size_t n, double s) {
  std::vector<double> w(n);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    w[i] = 1.0 / std::pow(static_cast<double>(i + 1), s);
    total += w[i];
  }
  for (auto& v : w) v *= static_cast<double>(n) / total;
  return w;
}

}  // namespace

noc::Workload make_workload(const noc::PlatformSpec& spec, RodiniaApp app,
                            std::uint64_t seed, const PowerModel& power) {
  return make_workload(spec, archetype(app), app_name(app), seed, power);
}

noc::Workload make_workload(const noc::PlatformSpec& spec,
                            const AppArchetype& arch, const std::string& name,
                            std::uint64_t seed, const PowerModel& power) {
  util::Rng rng(seed ^ 0xa5a5a5a5ULL);
  const auto cpus = spec.cores_of_type(noc::PeType::kCpu);
  const auto gpus = spec.cores_of_type(noc::PeType::kGpu);
  const auto llcs = spec.cores_of_type(noc::PeType::kLlc);

  noc::Workload w;
  w.name = name;
  w.traffic = noc::TrafficMatrix(spec.num_cores());

  // LLC popularity: Zipf-skewed, randomly permuted so the hot slice is not
  // always core 0 (the permutation is part of the deterministic profile).
  auto llc_pop = zipf_weights(llcs.size(), arch.llc_skew);
  rng.shuffle(llc_pop);

  // Jitter multiplies each pair weight by U(0.75, 1.25): models input-set
  // variation without disturbing the archetype structure.
  auto jitter = [&rng]() { return rng.uniform(0.75, 1.25); };

  // CPU <-> LLC request/response traffic (requests j->llc, responses back).
  for (auto c : cpus) {
    for (std::size_t li = 0; li < llcs.size(); ++li) {
      const double f = arch.cpu_llc * llc_pop[li] * jitter();
      w.traffic(c, llcs[li]) += 0.4 * f;   // requests
      w.traffic(llcs[li], c) += 0.6 * f;   // larger response payloads
    }
  }

  // GPU <-> LLC streaming traffic.
  for (auto g : gpus) {
    for (std::size_t li = 0; li < llcs.size(); ++li) {
      const double f = arch.gpu_llc * llc_pop[li] * jitter();
      w.traffic(g, llcs[li]) += 0.3 * f;
      w.traffic(llcs[li], g) += 0.7 * f;  // read-dominated streams
    }
  }

  // GPU <-> GPU sharing. With locality, partners are adjacent in core-id
  // order (stencil halos); without, partners are arbitrary.
  if (!gpus.empty() && arch.gpu_gpu > 0.0) {
    const std::size_t partners = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::llround(
               2.0 + 4.0 * (1.0 - arch.gpu_locality))));
    for (std::size_t gi = 0; gi < gpus.size(); ++gi) {
      for (std::size_t p = 1; p <= partners; ++p) {
        std::size_t pj;
        if (rng.uniform() < arch.gpu_locality) {
          pj = (gi + p) % gpus.size();  // neighbor in the logical ring
        } else {
          pj = rng.below(gpus.size());
          if (pj == gi) pj = (pj + 1) % gpus.size();
        }
        const double f =
            arch.gpu_gpu * jitter() / static_cast<double>(partners);
        w.traffic(gpus[gi], gpus[pj]) += f;
        w.traffic(gpus[pj], gpus[gi]) += f;
      }
    }
  }

  // CPU <-> CPU coherence chatter (all pairs, light).
  for (auto c1 : cpus) {
    for (auto c2 : cpus) {
      if (c1 == c2) continue;
      w.traffic(c1, c2) += arch.cpu_cpu * jitter() /
                           static_cast<double>(cpus.size());
    }
  }

  // Average power per core (McPAT/GPUWattch stand-in): class base power
  // times the application activity factor, with small per-core variation
  // (process/DVFS spread).
  w.core_power.assign(spec.num_cores(), 0.0);
  for (noc::CoreId c = 0; c < spec.num_cores(); ++c) {
    double base = 0.0, act = 1.0;
    switch (spec.core_type(c)) {
      case noc::PeType::kCpu:
        base = power.cpu_watts;
        act = arch.cpu_activity;
        break;
      case noc::PeType::kGpu:
        base = power.gpu_watts;
        act = arch.gpu_activity;
        break;
      case noc::PeType::kLlc:
        base = power.llc_watts;
        act = arch.llc_activity;
        break;
    }
    w.core_power[c] = base * act * rng.uniform(0.9, 1.1);
  }
  return w;
}

}  // namespace moela::sim
