// Microbenchmarks (google-benchmark) for the cost centers the paper
// discusses: hypervolume computation versus objective count (the overhead
// MOELA's decomposition-based local search avoids, Sec. IV.B), routing and
// objective evaluation (the evaluation cost), random-forest training and
// prediction (the Eval model), and the variation operators — plus an
// end-to-end algorithm x problem suite (BM_EndToEnd/*) whose wall time and
// evals_per_sec counter feed the committed BENCH_*.json baselines that
// scripts/bench_compare.py diffs for regressions:
//
//   bench_micro --benchmark_filter=BM_EndToEnd
//               --benchmark_format=json --benchmark_out=BENCH_new.json
//   scripts/bench_compare.py BENCH_7.json BENCH_new.json
#include <benchmark/benchmark.h>

#include "api/any_problem.hpp"
#include "api/executor.hpp"
#include "api/request.hpp"
#include "ml/random_forest.hpp"
#include "moo/hypervolume.hpp"
#include "moo/scalarize.hpp"
#include "noc/generator.hpp"
#include "noc/objectives.hpp"
#include "noc/problem.hpp"
#include "noc/routing.hpp"
#include "sim/rodinia.hpp"
#include "util/rng.hpp"

using namespace moela;

namespace {

std::vector<moo::ObjectiveVector> random_front(std::size_t n, std::size_t m,
                                               std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<moo::ObjectiveVector> points;
  points.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    moo::ObjectiveVector p(m);
    double s = 0.0;
    for (auto& v : p) {
      v = -std::log(1.0 - rng.uniform());
      s += v;
    }
    for (auto& v : p) v = v / s + 0.02 * rng.uniform();
    points.push_back(std::move(p));
  }
  return points;
}

// Hypervolume cost grows steeply with objective count — the PHV-in-the-
// inner-loop overhead of MOOS/MOO-STAGE.
void BM_HypervolumeByObjectives(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto points = random_front(50, m, 7);
  const moo::ObjectiveVector ref(m, 1.1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(moo::hypervolume(points, ref));
  }
}
BENCHMARK(BM_HypervolumeByObjectives)->DenseRange(2, 6);

void BM_HypervolumeByFrontSize(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto points = random_front(n, 5, 11);
  const moo::ObjectiveVector ref(5, 1.1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(moo::hypervolume(points, ref));
  }
}
BENCHMARK(BM_HypervolumeByFrontSize)->Arg(25)->Arg(50)->Arg(100)->Arg(200);

// The Eq. (8) scalarization MOELA uses instead — constant in M for
// practical purposes.
void BM_WeightedDistance(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const moo::ObjectiveVector obj(m, 0.4);
  const moo::ObjectiveVector w(m, 1.0 / static_cast<double>(m));
  const moo::ObjectiveVector z(m, 0.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(moo::weighted_distance(obj, w, z));
  }
}
BENCHMARK(BM_WeightedDistance)->DenseRange(2, 6);

struct NocFixture {
  noc::PlatformSpec spec = noc::PlatformSpec::paper_4x4x4();
  noc::Workload workload = sim::make_workload(spec, sim::RodiniaApp::kBfs, 1);
  noc::DesignOps ops{spec};
  util::Rng rng{42};
  noc::NocDesign design = ops.random_design(rng);
};

void BM_RoutingTableBuild(benchmark::State& state) {
  NocFixture f;
  for (auto _ : state) {
    noc::RoutingTable routes(f.spec, f.design);
    benchmark::DoNotOptimize(routes.hops(0, 63));
  }
}
BENCHMARK(BM_RoutingTableBuild);

void BM_FullObjectiveEvaluation(benchmark::State& state) {
  NocFixture f;
  const noc::NocObjectiveParams params;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        noc::evaluate_objectives(f.spec, f.design, f.workload, params));
  }
}
BENCHMARK(BM_FullObjectiveEvaluation);

void BM_RandomDesign(benchmark::State& state) {
  NocFixture f;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.ops.random_design(f.rng));
  }
}
BENCHMARK(BM_RandomDesign);

void BM_RandomNeighbor(benchmark::State& state) {
  NocFixture f;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.ops.random_neighbor(f.design, f.rng));
  }
}
BENCHMARK(BM_RandomNeighbor);

void BM_Crossover(benchmark::State& state) {
  NocFixture f;
  const noc::NocDesign other = f.ops.random_design(f.rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.ops.crossover(f.design, other, f.rng));
  }
}
BENCHMARK(BM_Crossover);

ml::Dataset eval_style_dataset(std::size_t samples, std::size_t features) {
  util::Rng rng(3);
  ml::Dataset d(features);
  for (std::size_t i = 0; i < samples; ++i) {
    std::vector<double> x(features);
    for (auto& v : x) v = rng.uniform();
    d.add(std::move(x), rng.uniform());
  }
  return d;
}

void BM_ForestTrain(benchmark::State& state) {
  const auto d =
      eval_style_dataset(static_cast<std::size_t>(state.range(0)), 260);
  ml::ForestConfig config;
  config.num_trees = 10;
  config.max_depth = 10;
  config.max_features = 24;
  config.subsample = 0.7;
  util::Rng rng(5);
  for (auto _ : state) {
    ml::RandomForest forest(config);
    forest.fit(d, rng);
    benchmark::DoNotOptimize(forest.num_trees());
  }
}
BENCHMARK(BM_ForestTrain)->Arg(500)->Arg(2000)->Arg(4000);

void BM_ForestPredict(benchmark::State& state) {
  const auto d = eval_style_dataset(2000, 260);
  ml::ForestConfig config;
  config.num_trees = 10;
  config.max_depth = 10;
  config.max_features = 24;
  util::Rng rng(5);
  ml::RandomForest forest(config);
  forest.fit(d, rng);
  std::vector<double> x(260, 0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(forest.predict(x));
  }
}
BENCHMARK(BM_ForestPredict);

void BM_FeatureExtraction(benchmark::State& state) {
  noc::PlatformSpec spec = noc::PlatformSpec::paper_4x4x4();
  auto workload = sim::make_workload(spec, sim::RodiniaApp::kBfs, 1);
  noc::NocProblem problem(spec, workload, 5);
  util::Rng rng(7);
  const auto d = problem.random_design(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(problem.features(d));
  }
}
BENCHMARK(BM_FeatureExtraction);

// Cost of the api::AnyProblem type-erasure layer on the hottest call
// (objective evaluation): one virtual dispatch + AnyDesign unwrap per call,
// which must stay negligible against the evaluation itself for the
// runtime-composition front-end to be free in practice.
void BM_EvaluateDirect(benchmark::State& state) {
  NocFixture f;
  noc::NocProblem problem(f.spec, f.workload, 5);
  const auto d = problem.random_design(f.rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(problem.evaluate(d));
  }
}
BENCHMARK(BM_EvaluateDirect);

void BM_EvaluateTypeErased(benchmark::State& state) {
  NocFixture f;
  api::AnyProblem problem(noc::NocProblem(f.spec, f.workload, 5));
  const auto d = problem.random_design(f.rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(problem.evaluate(d));
  }
}
BENCHMARK(BM_EvaluateTypeErased);

// The cheapest concept operation, where the erasure overhead (an AnyDesign
// heap allocation per returned design) is most visible.
void BM_NeighborTypeErased(benchmark::State& state) {
  NocFixture f;
  api::AnyProblem problem(noc::NocProblem(f.spec, f.workload, 5));
  const auto d = problem.random_design(f.rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(problem.random_neighbor(d, f.rng));
  }
}
BENCHMARK(BM_NeighborTypeErased);

// End-to-end algorithm x problem runs through the api layer: each
// iteration is one full fixed-seed optimization, so real_time is the wall
// time per run and the evals_per_sec counter is the throughput number the
// committed BENCH_*.json baselines track across PRs.
void BM_EndToEnd(benchmark::State& state, const char* problem,
                 const char* algorithm) {
  api::RunRequest request;
  request.problem = problem;
  request.algorithm = algorithm;
  request.options.max_evaluations = 2000;
  request.options.snapshot_interval = 1000;
  request.options.seed = 1;
  request.options.population_size = 24;
  request.options.n_local = 3;
  std::size_t evaluations = 0;
  for (auto _ : state) {
    api::Executor executor({.jobs = 1});
    const api::RunReport report = executor.run_all({request}).front();
    evaluations += report.evaluations;
    benchmark::DoNotOptimize(report.evaluations);
  }
  // SetItemsProcessed (total evals over total elapsed) rather than a raw
  // rate counter: items_per_second is computed identically across
  // google-benchmark versions.
  state.SetItemsProcessed(static_cast<std::int64_t>(evaluations));
  state.counters["evals_per_run"] = benchmark::Counter(
      static_cast<double>(evaluations), benchmark::Counter::kAvgIterations);
}

// UseRealTime: the optimization runs on the Executor's pool thread, so the
// timing thread's cpu_time is meaningless — wall time is the measurement.
#define MOELA_END_TO_END(problem, algorithm)                       \
  BENCHMARK_CAPTURE(BM_EndToEnd, problem##_##algorithm, #problem,  \
                    #algorithm)                                    \
      ->UseRealTime()

MOELA_END_TO_END(zdt1, moela);
MOELA_END_TO_END(zdt1, nsga2);
MOELA_END_TO_END(zdt1, moead);
MOELA_END_TO_END(zdt1, moos);
MOELA_END_TO_END(dtlz2, moela);
MOELA_END_TO_END(dtlz2, nsga2);
MOELA_END_TO_END(dtlz2, moead);
MOELA_END_TO_END(dtlz2, moos);
MOELA_END_TO_END(knapsack, moela);
MOELA_END_TO_END(knapsack, nsga2);
MOELA_END_TO_END(knapsack, moead);
MOELA_END_TO_END(knapsack, moos);

#undef MOELA_END_TO_END

}  // namespace

BENCHMARK_MAIN();
