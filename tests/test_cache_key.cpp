// Golden tests for RunRequest::cache_key(): the EXACT key strings for
// representative requests are pinned here, so any change to the key schema
// — a renamed field, a reordered segment, a forgotten version bump — fails
// loudly instead of silently invalidating (or worse, ALIASING) every
// cached result on users' disks.
//
// When a change to the key schema is intentional: bump
// api::kCacheSchemaVersion in api/request.hpp and re-pin these strings in
// the same commit.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "api/request.hpp"
#include "api/snapshot.hpp"

namespace moela::api {
namespace {

TEST(CacheKeyGolden, VersionSaltLeadsTheKey) {
  RunRequest request;
  request.problem = "zdt1";
  request.algorithm = "moela";
  const std::string prefix =
      "moela-run-v" + std::to_string(kCacheSchemaVersion) + "|";
  EXPECT_EQ(request.cache_key().rfind(prefix, 0), 0u)
      << "cache keys must start with the schema-version salt";
  // The salt itself is pinned: bumping it intentionally means updating the
  // golden strings below in the same commit.
  EXPECT_EQ(kCacheSchemaVersion, 2u);
}

TEST(CacheKeyGolden, DefaultOptionsKey) {
  RunRequest request;
  request.problem = "zdt1";
  request.algorithm = "moela";
  EXPECT_EQ(request.cache_key(),
            "moela-run-v2|problem=zdt1|objectives=0|variables=0|"
            "instance_seed=1|app=BFS|small=0|algorithm=moela|evals=20000|"
            "seconds=0x0p+0|snapshot=500|seed=1|pop=50|n_local=5|knobs=");
}

TEST(CacheKeyGolden, FullyLoadedNocKey) {
  RunRequest request;
  request.problem = "noc";
  request.problem_options.num_objectives = 5;
  request.problem_options.seed = 3;
  request.problem_options.app = "SRAD";
  request.problem_options.small_platform = true;
  request.algorithm = "moos";
  request.options.max_evaluations = 4000;
  request.options.max_seconds = 2.5;
  request.options.snapshot_interval = 250;
  request.options.seed = 11;
  request.options.population_size = 24;
  request.options.n_local = 4;
  request.options.knobs.set("moos.temperature", 0.75).set("moos.alpha", 2);
  // Knobs render sorted, doubles as hexfloat — both pinned here.
  EXPECT_EQ(request.cache_key(),
            "moela-run-v2|problem=noc|objectives=5|variables=0|"
            "instance_seed=3|app=SRAD|small=1|algorithm=moos|evals=4000|"
            "seconds=0x1.4p+1|snapshot=250|seed=11|pop=24|n_local=4|"
            "knobs=moos.alpha=0x1p+1,moos.temperature=0x1.8p-1");
}

TEST(CacheKeyGolden, KnapsackVariablesKey) {
  RunRequest request;
  request.problem = "knapsack";
  request.problem_options.num_variables = 64;
  request.algorithm = "nsga2";
  request.options.seed = 9;
  request.options.knobs.set("nsga2.max_generations", 120);
  EXPECT_EQ(request.cache_key(),
            "moela-run-v2|problem=knapsack|objectives=0|variables=64|"
            "instance_seed=1|app=BFS|small=0|algorithm=nsga2|evals=20000|"
            "seconds=0x0p+0|snapshot=500|seed=9|pop=50|n_local=5|"
            "knobs=nsga2.max_generations=0x1.ep+6");
}

TEST(CacheKeyGolden, EveryFieldSeparatesKeys) {
  // Complements the golden strings: each field must actually feed the key
  // (a dropped segment would alias distinct requests onto one entry).
  RunRequest base;
  base.problem = "zdt1";
  base.algorithm = "moela";
  const std::string base_key = base.cache_key();

  auto differs = [&](auto&& mutate) {
    RunRequest other = base;
    mutate(other);
    return other.cache_key() != base_key;
  };
  EXPECT_TRUE(differs([](RunRequest& r) { r.problem = "zdt2"; }));
  EXPECT_TRUE(differs([](RunRequest& r) { r.algorithm = "nsga2"; }));
  EXPECT_TRUE(differs([](RunRequest& r) {
    r.problem_options.num_objectives = 3;
  }));
  EXPECT_TRUE(differs([](RunRequest& r) {
    r.problem_options.num_variables = 5;
  }));
  EXPECT_TRUE(differs([](RunRequest& r) { r.problem_options.seed = 2; }));
  EXPECT_TRUE(differs([](RunRequest& r) { r.problem_options.app = "PF"; }));
  EXPECT_TRUE(differs([](RunRequest& r) {
    r.problem_options.small_platform = true;
  }));
  EXPECT_TRUE(differs([](RunRequest& r) {
    r.options.max_evaluations = 1;
  }));
  EXPECT_TRUE(differs([](RunRequest& r) { r.options.max_seconds = 1.0; }));
  EXPECT_TRUE(differs([](RunRequest& r) {
    r.options.snapshot_interval = 1;
  }));
  EXPECT_TRUE(differs([](RunRequest& r) { r.options.seed = 2; }));
  EXPECT_TRUE(differs([](RunRequest& r) {
    r.options.population_size = 1;
  }));
  EXPECT_TRUE(differs([](RunRequest& r) { r.options.n_local = 1; }));
  EXPECT_TRUE(differs([](RunRequest& r) { r.options.knobs.set("k", 1); }));
  // The label is display-only and must NOT feed the key.
  RunRequest labeled = base;
  labeled.label = "pretty name";
  EXPECT_EQ(labeled.cache_key(), base_key);
  // The trace id is transport provenance: two requests differing only in
  // trace are the SAME work, so it must never feed the key (a per-invocation
  // id in the key would defeat the cache entirely).
  RunRequest traced = base;
  traced.trace_id = "00deadbeef00cafe";
  EXPECT_EQ(traced.cache_key(), base_key);
  // Checkpointing is execution mechanics, not work identity: a resumed run
  // is bit-identical to the uninterrupted one, so neither the checkpoint
  // flag nor an attached resume snapshot may feed the key (they would
  // split one run's cache entry in two — and snapshots must never feed
  // cache_key() back, the fingerprint is deliberately one-way).
  RunRequest checkpointed = base;
  checkpointed.checkpoint = true;
  EXPECT_EQ(checkpointed.cache_key(), base_key);
  auto snapshot = std::make_shared<RunSnapshot>();
  snapshot->fingerprint = snapshot_fingerprint(base);
  snapshot->journal = {{0.5, 0.25}};
  snapshot->evaluations = 1;
  checkpointed.resume = snapshot;
  EXPECT_EQ(checkpointed.cache_key(), base_key);
}

}  // namespace
}  // namespace moela::api
