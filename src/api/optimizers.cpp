// Built-in Optimizer adapters: the algorithm templates of core/ and
// baselines/, instantiated once with P = AnyProblem and adapted to the
// uniform Optimizer interface. This file READS the knob keys; the
// deprecated-shim mapping in exp/experiment.cpp (to_run_options) WRITES
// them. Unknown keys are ignored by design, so keep the two in sync — the
// ShimEquivalence test pins every mapped key with a non-default value and
// fails on any drift.
//
// Knob keys recognized here (all optional; fallbacks are the library
// defaults, population sizing comes from RunOptions):
//   moela.iter_early, moela.delta, moela.neighborhood_size,
//   moela.max_generations, moela.train_capacity, moela.train_interval,
//   moela.max_replacements, moela.guide_mode (0 = final-value,
//   1 = improvement), moela.{use_ml_guide,use_local_search,use_ea}
//   (0 switches the component off; the ablation variants pin theirs),
//   moela.ls.{patience,max_steps,max_evals},
//   moela.forest.{trees,max_features,max_depth,min_samples_leaf,
//                 min_samples_split,subsample}
//   moead.{delta,neighborhood_size,max_generations,max_replacements}
//   moos.{num_directions,max_iterations,temperature,gain_ema},
//   moos.ls.{patience,max_steps,max_evals}
//   stage.{max_iterations,iter_early,meta_candidates,train_capacity},
//   stage.forest.{...}, stage.ls.{max_steps,neighbors_per_step}
//   nsga2.max_generations
#include <memory>
#include <string>
#include <utility>

#include "api/any_problem.hpp"
#include "api/optimizer.hpp"
#include "api/registry.hpp"
#include "baselines/moead.hpp"
#include "baselines/moo_stage.hpp"
#include "baselines/moos.hpp"
#include "baselines/nsga2.hpp"
#include "core/moela.hpp"

namespace moela::api {
namespace {

core::LocalSearchConfig local_search_knobs(const KnobBag& k,
                                           const std::string& prefix,
                                           core::LocalSearchConfig base) {
  base.patience = k.get_or(prefix + ".patience", base.patience);
  base.max_steps = k.get_or(prefix + ".max_steps", base.max_steps);
  base.max_evaluations = k.get_or(prefix + ".max_evals", base.max_evaluations);
  return base;
}

ml::ForestConfig forest_knobs(const KnobBag& k, const std::string& prefix,
                              ml::ForestConfig base) {
  base.num_trees = k.get_or(prefix + ".trees", base.num_trees);
  base.max_features = k.get_or(prefix + ".max_features", base.max_features);
  base.max_depth = k.get_or(prefix + ".max_depth", base.max_depth);
  base.min_samples_leaf =
      k.get_or(prefix + ".min_samples_leaf", base.min_samples_leaf);
  base.min_samples_split =
      k.get_or(prefix + ".min_samples_split", base.min_samples_split);
  base.subsample = k.get_or(prefix + ".subsample", base.subsample);
  return base;
}

void report_population(const core::DecompositionPopulation<AnyProblem>& pop,
                       RunReport& report) {
  for (std::size_t i = 0; i < pop.size(); ++i) {
    report.final_designs.push_back(pop.design(i));
    report.final_objectives.push_back(pop.objectives(i));
  }
}

void report_archive(const baselines::DesignArchive<AnyProblem>& archive,
                    RunReport& report) {
  for (const auto& e : archive.entries()) {
    report.final_designs.push_back(e.design);
    report.final_objectives.push_back(e.objectives);
  }
}

/// MOELA and its three ablation variants (which differ only in the
/// component switches and the display name).
class MoelaOptimizer final : public Optimizer {
 public:
  MoelaOptimizer(AnyProblem problem, std::string display_name, bool ml_guide,
                 bool local_search, bool ea)
      : Optimizer(std::move(problem)),
        display_name_(std::move(display_name)),
        ml_guide_(ml_guide),
        local_search_(local_search),
        ea_(ea) {}

  std::string name() const override { return display_name_; }

 protected:
  void run_body(core::EvalContext<AnyProblem>& ctx, const RunOptions& options,
                RunReport& report) override {
    const KnobBag& k = options.knobs;
    core::MoelaConfig c;
    c.population_size = options.population_size;
    c.n_local = options.n_local;
    c.iter_early = k.get_or("moela.iter_early", c.iter_early);
    c.delta = k.get_or("moela.delta", c.delta);
    c.neighborhood_size =
        k.get_or("moela.neighborhood_size", c.neighborhood_size);
    c.max_generations = k.get_or("moela.max_generations", c.max_generations);
    c.train_capacity = k.get_or("moela.train_capacity", c.train_capacity);
    c.train_interval = k.get_or("moela.train_interval", c.train_interval);
    c.max_replacements =
        k.get_or("moela.max_replacements", c.max_replacements);
    c.local_search = local_search_knobs(k, "moela.ls", c.local_search);
    c.forest = forest_knobs(k, "moela.forest", c.forest);
    c.guide_mode =
        k.get_or("moela.guide_mode",
                 c.guide_mode == core::GuideMode::kImprovement)
            ? core::GuideMode::kImprovement
            : core::GuideMode::kFinalValue;
    // The registered variant fixes which component a knob can still switch
    // OFF (never back on): "moela" honors all three knobs, the ablation
    // variants pin their component regardless — the same semantics the old
    // enum dispatch gave RunConfig.moela's switches.
    c.use_ml_guide = k.get_or("moela.use_ml_guide", true) && ml_guide_;
    c.use_local_search =
        k.get_or("moela.use_local_search", true) && local_search_;
    c.use_ea = k.get_or("moela.use_ea", true) && ea_;

    core::Moela<AnyProblem> algo(c);
    report_population(algo.run(ctx), report);
  }

 private:
  std::string display_name_;
  bool ml_guide_;
  bool local_search_;
  bool ea_;
};

class MoeaDOptimizer final : public Optimizer {
 public:
  using Optimizer::Optimizer;
  std::string name() const override { return "MOEA/D"; }

 protected:
  void run_body(core::EvalContext<AnyProblem>& ctx, const RunOptions& options,
                RunReport& report) override {
    const KnobBag& k = options.knobs;
    baselines::MoeaDConfig c;
    c.population_size = options.population_size;
    c.delta = k.get_or("moead.delta", c.delta);
    c.neighborhood_size =
        k.get_or("moead.neighborhood_size", c.neighborhood_size);
    c.max_generations = k.get_or("moead.max_generations", c.max_generations);
    c.max_replacements =
        k.get_or("moead.max_replacements", c.max_replacements);

    baselines::MoeaD<AnyProblem> algo(c);
    report_population(algo.run(ctx), report);
  }
};

class MoosOptimizer final : public Optimizer {
 public:
  using Optimizer::Optimizer;
  std::string name() const override { return "MOOS"; }

 protected:
  void run_body(core::EvalContext<AnyProblem>& ctx, const RunOptions& options,
                RunReport& report) override {
    const KnobBag& k = options.knobs;
    baselines::MoosConfig c;
    c.archive_capacity = options.population_size;
    c.initial_designs = options.population_size;
    c.num_directions = k.get_or("moos.num_directions", options.population_size);
    c.searches_per_iteration = options.n_local;
    c.max_iterations = k.get_or("moos.max_iterations", c.max_iterations);
    c.temperature = k.get_or("moos.temperature", c.temperature);
    c.gain_ema = k.get_or("moos.gain_ema", c.gain_ema);
    c.search = local_search_knobs(k, "moos.ls", c.search);

    baselines::Moos<AnyProblem> algo(c);
    report_archive(algo.run(ctx), report);
  }
};

class MooStageOptimizer final : public Optimizer {
 public:
  using Optimizer::Optimizer;
  std::string name() const override { return "MOO-STAGE"; }

 protected:
  void run_body(core::EvalContext<AnyProblem>& ctx, const RunOptions& options,
                RunReport& report) override {
    const KnobBag& k = options.knobs;
    baselines::MooStageConfig c;
    c.archive_capacity = options.population_size;
    c.initial_designs = options.population_size;
    c.searches_per_iteration = options.n_local;
    c.max_iterations = k.get_or("stage.max_iterations", c.max_iterations);
    c.iter_early = k.get_or("stage.iter_early", c.iter_early);
    c.meta_candidates = k.get_or("stage.meta_candidates", c.meta_candidates);
    c.train_capacity = k.get_or("stage.train_capacity", c.train_capacity);
    c.forest = forest_knobs(k, "stage.forest", c.forest);
    c.search.max_steps = k.get_or("stage.ls.max_steps", c.search.max_steps);
    c.search.neighbors_per_step =
        k.get_or("stage.ls.neighbors_per_step", c.search.neighbors_per_step);

    baselines::MooStage<AnyProblem> algo(c);
    report_archive(algo.run(ctx), report);
  }
};

class Nsga2Optimizer final : public Optimizer {
 public:
  using Optimizer::Optimizer;
  std::string name() const override { return "NSGA-II"; }

 protected:
  void run_body(core::EvalContext<AnyProblem>& ctx, const RunOptions& options,
                RunReport& report) override {
    baselines::Nsga2Config c;
    c.population_size = options.population_size;
    c.max_generations =
        options.knobs.get_or("nsga2.max_generations", c.max_generations);

    baselines::Nsga2<AnyProblem> algo(c);
    for (const auto& ind : algo.run(ctx)) {
      report.final_designs.push_back(ind.design);
      report.final_objectives.push_back(ind.objectives);
    }
  }
};

}  // namespace

namespace detail {

namespace {

// Declared knob keys, kept literally in sync with the get_or() reads above
// (the registry uses them to flag --knob typos; see
// OptimizerRegistry::unknown_knob_keys).

void append_local_search_keys(std::vector<std::string>& keys,
                              const std::string& prefix) {
  keys.push_back(prefix + ".patience");
  keys.push_back(prefix + ".max_steps");
  keys.push_back(prefix + ".max_evals");
}

void append_forest_keys(std::vector<std::string>& keys,
                        const std::string& prefix) {
  keys.push_back(prefix + ".trees");
  keys.push_back(prefix + ".max_features");
  keys.push_back(prefix + ".max_depth");
  keys.push_back(prefix + ".min_samples_leaf");
  keys.push_back(prefix + ".min_samples_split");
  keys.push_back(prefix + ".subsample");
}

std::vector<std::string> moela_knob_keys() {
  std::vector<std::string> keys{
      "moela.iter_early",       "moela.delta",
      "moela.neighborhood_size", "moela.max_generations",
      "moela.train_capacity",   "moela.train_interval",
      "moela.max_replacements", "moela.guide_mode",
      "moela.use_ml_guide",     "moela.use_local_search",
      "moela.use_ea"};
  append_local_search_keys(keys, "moela.ls");
  append_forest_keys(keys, "moela.forest");
  return keys;
}

std::vector<std::string> moead_knob_keys() {
  return {"moead.delta", "moead.neighborhood_size", "moead.max_generations",
          "moead.max_replacements"};
}

std::vector<std::string> moos_knob_keys() {
  std::vector<std::string> keys{"moos.num_directions", "moos.max_iterations",
                                "moos.temperature", "moos.gain_ema"};
  append_local_search_keys(keys, "moos.ls");
  return keys;
}

std::vector<std::string> stage_knob_keys() {
  std::vector<std::string> keys{"stage.max_iterations", "stage.iter_early",
                                "stage.meta_candidates",
                                "stage.train_capacity"};
  append_forest_keys(keys, "stage.forest");
  keys.push_back("stage.ls.max_steps");
  keys.push_back("stage.ls.neighbors_per_step");
  return keys;
}

}  // namespace

void register_builtin_optimizers(OptimizerRegistry& registry) {
  auto moela_variant = [](std::string display, bool guide, bool ls, bool ea) {
    return [display = std::move(display), guide, ls, ea](AnyProblem p) {
      return std::make_unique<MoelaOptimizer>(std::move(p), display, guide,
                                              ls, ea);
    };
  };
  registry.add("moela", moela_variant("MOELA", true, true, true),
               moela_knob_keys());
  registry.add("moela-noguide",
               moela_variant("MOELA-noguide", false, true, true),
               moela_knob_keys());
  registry.add("moela-ea-only",
               moela_variant("MOELA-EA-only", true, false, true),
               moela_knob_keys());
  registry.add("moela-ls-only",
               moela_variant("MOELA-LS-only", true, true, false),
               moela_knob_keys());
  registry.add(
      "moead",
      [](AnyProblem p) { return std::make_unique<MoeaDOptimizer>(std::move(p)); },
      moead_knob_keys());
  registry.add(
      "moos",
      [](AnyProblem p) { return std::make_unique<MoosOptimizer>(std::move(p)); },
      moos_knob_keys());
  registry.add(
      "moo-stage",
      [](AnyProblem p) {
        return std::make_unique<MooStageOptimizer>(std::move(p));
      },
      stage_knob_keys());
  registry.add(
      "nsga2",
      [](AnyProblem p) { return std::make_unique<Nsga2Optimizer>(std::move(p)); },
      {"nsga2.max_generations"});
}

}  // namespace detail
}  // namespace moela::api
