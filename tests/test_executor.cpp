// Tests for the batched execution layer (src/api/): RunRequest cache keys
// and replicate expansion, the thread-pooled Executor (determinism under
// concurrency, progress, cancellation), and the two-tier ResultCache
// (memory + disk, bit-exact round-trips, design codecs).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "api/executor.hpp"
#include "api/problems.hpp"
#include "api/registry.hpp"
#include "api/request.hpp"
#include "api/result_cache.hpp"
#include "api/run_log.hpp"
#include "noc/design.hpp"
#include "util/json.hpp"
#include "util/thread_annotations.hpp"

namespace moela::api {
namespace {

RunRequest zdt1_request(const std::string& algorithm,
                        std::uint64_t seed = 5) {
  RunRequest request;
  request.problem = "zdt1";
  request.problem_options.num_variables = 10;
  request.algorithm = algorithm;
  request.options.max_evaluations = 600;
  request.options.snapshot_interval = 200;
  request.options.seed = seed;
  request.options.population_size = 12;
  request.options.n_local = 3;
  request.options.knobs.set("moela.forest.trees", 4)
      .set("moela.forest.max_depth", 5)
      .set("moela.ls.max_evals", 30);
  return request;
}

void expect_equal_reports(const RunReport& a, const RunReport& b,
                          const std::string& context) {
  EXPECT_EQ(a.algorithm, b.algorithm) << context;
  EXPECT_EQ(a.final_front, b.final_front) << context;
  EXPECT_EQ(a.final_objectives, b.final_objectives) << context;
  EXPECT_EQ(a.evaluations, b.evaluations) << context;
  ASSERT_EQ(a.snapshots.size(), b.snapshots.size()) << context;
  for (std::size_t i = 0; i < a.snapshots.size(); ++i) {
    EXPECT_EQ(a.snapshots[i].evaluations, b.snapshots[i].evaluations)
        << context;
    EXPECT_EQ(a.snapshots[i].front, b.snapshots[i].front) << context;
  }
}

// --- RunRequest -----------------------------------------------------------

TEST(RunRequest, CacheKeyIsCanonical) {
  RunRequest a = zdt1_request("moela");
  RunRequest b = zdt1_request("moela");
  EXPECT_FALSE(a.cache_key().empty());
  EXPECT_EQ(a.cache_key(), b.cache_key());

  // Knob insertion order must not matter (the bag is a sorted map).
  RunRequest c = zdt1_request("moela");
  c.options.knobs = KnobBag();
  c.options.knobs.set("moela.ls.max_evals", 30)
      .set("moela.forest.max_depth", 5)
      .set("moela.forest.trees", 4);
  EXPECT_EQ(a.cache_key(), c.cache_key());
}

TEST(RunRequest, CacheKeySeparatesDifferingRequests) {
  const RunRequest base = zdt1_request("moela");
  RunRequest other = base;
  other.options.seed = 6;
  EXPECT_NE(base.cache_key(), other.cache_key());
  other = base;
  other.algorithm = "nsga2";
  EXPECT_NE(base.cache_key(), other.cache_key());
  other = base;
  other.options.knobs.set("moela.delta", 0.5);
  EXPECT_NE(base.cache_key(), other.cache_key());
  other = base;
  other.options.max_evaluations = 601;
  EXPECT_NE(base.cache_key(), other.cache_key());
  other = base;
  other.problem_options.num_variables = 12;
  EXPECT_NE(base.cache_key(), other.cache_key());
}

TEST(RunRequest, BoundOnlyProblemIsUncacheable) {
  RunRequest request;
  request.bound_problem = make_problem("zdt1");
  request.algorithm = "nsga2";
  EXPECT_TRUE(request.cache_key().empty());
  EXPECT_EQ(request.label_or_default(), "<custom>:nsga2:1");
}

TEST(RunRequest, ExpandReplicatesDerivesSeeds) {
  const RunRequest base = zdt1_request("nsga2", 7);
  const auto replicas = expand_replicates(base, 3);
  ASSERT_EQ(replicas.size(), 3u);
  EXPECT_EQ(replicas[0].options.seed, 7u);
  EXPECT_EQ(replicas[1].options.seed, 8u);
  EXPECT_EQ(replicas[2].options.seed, 9u);
  for (const auto& r : replicas) {
    EXPECT_EQ(r.algorithm, base.algorithm);
    EXPECT_EQ(r.problem, base.problem);
    // The problem instance seed stays fixed: replicates vary the search.
    EXPECT_EQ(r.problem_options.seed, base.problem_options.seed);
  }
}

// --- Executor: determinism under concurrency ------------------------------

TEST(Executor, ParallelRunsBitIdenticalToSerial) {
  std::vector<RunRequest> requests;
  for (const auto& algorithm : {"moela", "nsga2"}) {
    for (const auto& request : expand_replicates(zdt1_request(algorithm), 2)) {
      requests.push_back(request);
    }
  }

  Executor serial({.jobs = 1});
  Executor parallel({.jobs = 4});
  EXPECT_EQ(serial.jobs(), 1u);
  EXPECT_EQ(parallel.jobs(), 4u);
  const auto serial_reports = serial.run_all(requests);
  const auto parallel_reports = parallel.run_all(requests);

  ASSERT_EQ(serial_reports.size(), requests.size());
  ASSERT_EQ(parallel_reports.size(), requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    expect_equal_reports(serial_reports[i], parallel_reports[i],
                         requests[i].label_or_default());
    EXPECT_FALSE(parallel_reports[i].final_front.empty());
    EXPECT_FALSE(parallel_reports[i].provenance.cache_hit);
  }
}

TEST(Executor, FillsProvenance) {
  Executor executor({.jobs = 2});
  const RunRequest request = zdt1_request("nsga2", 11);
  const auto reports = executor.run_all({request});
  ASSERT_EQ(reports.size(), 1u);
  const RunProvenance& p = reports[0].provenance;
  EXPECT_EQ(p.problem, "zdt1");
  EXPECT_EQ(p.algorithm_key, "nsga2");
  EXPECT_EQ(p.seed, 11u);
  EXPECT_EQ(p.cache_key, request.cache_key());
  EXPECT_FALSE(p.cache_hit);
  EXPECT_FALSE(p.cancelled);
  EXPECT_EQ(p.knobs, request.options.knobs.values());
}

TEST(Executor, BadRequestSurfacesFromTheFuture) {
  Executor executor({.jobs = 2});
  RunRequest bad = zdt1_request("nsga2");
  bad.problem = "no-such-problem";
  auto futures = executor.submit({bad});
  ASSERT_EQ(futures.size(), 1u);
  EXPECT_THROW(futures[0].get(), std::out_of_range);
}

// --- Executor: progress + cancellation ------------------------------------

TEST(Executor, ProgressEventsCoverTheBatch) {
  std::vector<RunRequest> requests{zdt1_request("nsga2", 1),
                                   zdt1_request("nsga2", 2),
                                   zdt1_request("nsga2", 3)};
  util::Mutex mutex;
  std::vector<RunProgress> finished;
  std::size_t cadence_events = 0;
  RunControl control;
  control.on_progress([&](const RunProgress& progress) {
    util::MutexLock lock(mutex);
    if (progress.finished) {
      finished.push_back(progress);
    } else {
      ++cadence_events;
      EXPECT_GT(progress.evaluations, 0u);
      EXPECT_EQ(progress.max_evaluations, 600u);
    }
  });

  Executor executor({.jobs = 2});
  executor.run_all(requests, &control);

  ASSERT_EQ(finished.size(), requests.size());
  EXPECT_GT(cadence_events, 0u);  // snapshot_interval = 200 < 600 evals
  std::set<std::size_t> completed, indices;
  for (const auto& progress : finished) {
    completed.insert(progress.completed);
    indices.insert(progress.batch_index);
    EXPECT_EQ(progress.batch_size, requests.size());
    EXPECT_TRUE(progress.finished);
  }
  // `completed` counts 1..N, each exactly once; every index reported.
  EXPECT_EQ(completed, (std::set<std::size_t>{1, 2, 3}));
  EXPECT_EQ(indices, (std::set<std::size_t>{0, 1, 2}));
}

TEST(Executor, StopBeforeStartYieldsCancelledReports) {
  RunControl control;
  control.request_stop();
  Executor executor({.jobs = 2});
  const auto reports = executor.run_all({zdt1_request("nsga2")}, &control);
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_TRUE(reports[0].provenance.cancelled);
  EXPECT_EQ(reports[0].evaluations, 0u);
  EXPECT_TRUE(reports[0].final_front.empty());
}

TEST(Executor, MidRunStopEndsEarlyWithPartialReport) {
  RunRequest request = zdt1_request("nsga2");
  request.options.max_evaluations = 4000000;  // would take far too long
  request.options.snapshot_interval = 200;

  RunControl control;
  control.on_progress([&control](const RunProgress& progress) {
    if (!progress.finished && progress.evaluations >= 200) {
      control.request_stop();  // cancel at the first cadence event
    }
  });
  Executor executor({.jobs = 1});
  const auto reports = executor.run_all({request}, &control);
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_TRUE(reports[0].provenance.cancelled);
  EXPECT_GE(reports[0].evaluations, 200u);
  EXPECT_LT(reports[0].evaluations, request.options.max_evaluations);
  // A cancelled run still reports the work done so far.
  EXPECT_FALSE(reports[0].final_front.empty());
}

// --- ResultCache ----------------------------------------------------------

TEST(ResultCache, MemoryTierServesRepeatsWithEqualReports) {
  ResultCache cache;  // memory only
  Executor executor({.jobs = 2, .cache = &cache});
  const RunRequest request = zdt1_request("moela");

  const auto first = executor.run_all({request});
  ASSERT_EQ(first.size(), 1u);
  EXPECT_FALSE(first[0].provenance.cache_hit);

  const auto second = executor.run_all({request});
  ASSERT_EQ(second.size(), 1u);
  EXPECT_TRUE(second[0].provenance.cache_hit);
  expect_equal_reports(first[0], second[0], "memory cache hit");
  EXPECT_EQ(first[0].final_designs.size(), second[0].final_designs.size());
  EXPECT_EQ(cache.stats().memory_hits, 1u);
  EXPECT_EQ(cache.stats().stores, 1u);
}

TEST(ResultCache, DiskTierSurvivesAcrossCacheInstances) {
  const std::filesystem::path dir =
      std::filesystem::path(testing::TempDir()) / "moela-disk-cache";
  std::filesystem::remove_all(dir);

  const RunRequest request = zdt1_request("nsga2");
  RunReport original;
  {
    ResultCache cache(dir.string());
    Executor executor({.jobs = 1, .cache = &cache});
    original = executor.run_all({request})[0];
    EXPECT_FALSE(original.provenance.cache_hit);
  }

  // A fresh cache (fresh process, in effect) must hit from disk,
  // bit-exactly — hexfloat serialization loses nothing.
  ResultCache cache(dir.string());
  Executor executor({.jobs = 1, .cache = &cache});
  const auto cached = executor.run_all({request})[0];
  EXPECT_TRUE(cached.provenance.cache_hit);
  EXPECT_EQ(cache.stats().disk_hits, 1u);
  expect_equal_reports(original, cached, "disk cache hit");
  EXPECT_DOUBLE_EQ(original.seconds, cached.seconds);
  // ZDT designs are real vectors: the codec round-trips them exactly.
  ASSERT_EQ(original.final_designs.size(), cached.final_designs.size());
  for (std::size_t i = 0; i < original.final_designs.size(); ++i) {
    EXPECT_EQ(original.final_designs[i].as<std::vector<double>>(),
              cached.final_designs[i].as<std::vector<double>>());
  }
  EXPECT_EQ(original.provenance.knobs, cached.provenance.knobs);
  std::filesystem::remove_all(dir);
}

TEST(ResultCache, NocDesignsRoundTripThroughDisk) {
  const std::filesystem::path dir =
      std::filesystem::path(testing::TempDir()) / "moela-noc-cache";
  std::filesystem::remove_all(dir);

  RunRequest request;
  request.problem = "noc";
  request.problem_options.app = "BFS";
  request.problem_options.num_objectives = 3;
  request.problem_options.small_platform = true;
  request.algorithm = "nsga2";
  request.options.max_evaluations = 150;
  request.options.snapshot_interval = 0;
  request.options.population_size = 8;
  request.need_designs = true;

  RunReport original;
  {
    ResultCache cache(dir.string());
    Executor executor({.jobs = 1, .cache = &cache});
    original = executor.run_all({request})[0];
  }
  ResultCache cache(dir.string());
  Executor executor({.jobs = 1, .cache = &cache});
  const auto cached = executor.run_all({request})[0];
  EXPECT_TRUE(cached.provenance.cache_hit);
  expect_equal_reports(original, cached, "noc disk cache hit");
  const auto original_designs = original.designs_as<noc::NocDesign>();
  const auto cached_designs = cached.designs_as<noc::NocDesign>();
  ASSERT_EQ(original_designs.size(), cached_designs.size());
  ASSERT_FALSE(cached_designs.empty());
  for (std::size_t i = 0; i < original_designs.size(); ++i) {
    EXPECT_EQ(original_designs[i], cached_designs[i]);
  }
  std::filesystem::remove_all(dir);
}

TEST(ResultCache, NeedDesignsRejectsDisklossEntries) {
  // A report whose design type has no codec serializes as "designs none";
  // a need_designs lookup from a fresh (memory-empty) cache must treat it
  // as a miss, while a plain lookup serves the front/trace data.
  const std::filesystem::path dir =
      std::filesystem::path(testing::TempDir()) / "moela-none-cache";
  std::filesystem::remove_all(dir);

  RunReport report;
  report.algorithm = "custom";
  report.evaluations = 10;
  report.final_front = {{1.0, 2.0}};
  report.final_objectives = {{1.0, 2.0}};
  report.final_designs.push_back(AnyDesign::wrap<int>(7));  // no codec

  const std::string key = "custom-key";
  {
    ResultCache cache(dir.string());
    cache.store(key, report);
    // The memory tier still holds the original, designs included.
    auto hit = cache.lookup(key, /*need_designs=*/true);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->final_designs.size(), 1u);
  }
  ResultCache fresh(dir.string());
  EXPECT_FALSE(fresh.lookup(key, /*need_designs=*/true).has_value());
  auto partial = fresh.lookup(key, /*need_designs=*/false);
  ASSERT_TRUE(partial.has_value());
  EXPECT_TRUE(partial->final_designs.empty());
  EXPECT_EQ(partial->final_front, report.final_front);
  // The plain lookup promoted the designs-less disk entry into the memory
  // tier; a need_designs lookup must still treat it as a miss.
  EXPECT_FALSE(fresh.lookup(key, /*need_designs=*/true).has_value());
  std::filesystem::remove_all(dir);
}

TEST(ResultCache, SkipsCancelledReportsAndEmptyKeys) {
  ResultCache cache;
  RunReport cancelled;
  cancelled.provenance.cancelled = true;
  cache.store("some-key", cancelled);
  EXPECT_FALSE(cache.lookup("some-key").has_value());
  RunReport fine;
  cache.store("", fine);
  EXPECT_FALSE(cache.lookup("").has_value());
  EXPECT_EQ(cache.stats().stores, 0u);
}

TEST(ResultCacheSerialization, RoundTripsAwkwardDoubles) {
  RunReport report;
  report.algorithm = "Name With Spaces";
  report.evaluations = 42;
  report.seconds = 1.0 / 3.0;
  report.provenance.seed = 9;
  report.provenance.knobs["a.b"] = 0.1;  // not exactly representable
  report.provenance.knobs["c"] = 5e-324;  // smallest denormal
  core::ArchiveSnapshot snapshot;
  snapshot.evaluations = 21;
  snapshot.seconds = 0.123456789123456789;
  snapshot.front = {{1.0 / 7.0, -2.5e300}};
  report.snapshots.push_back(snapshot);
  report.final_front = {{0.1 + 0.2, 3.0}};
  report.final_objectives = {{0.1 + 0.2, 3.0}};

  std::stringstream stream;
  detail::write_report(stream, "k", report);
  const auto back = detail::read_report(stream, "k");
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->algorithm, report.algorithm);
  EXPECT_EQ(back->evaluations, report.evaluations);
  EXPECT_EQ(back->seconds, report.seconds);  // bit-exact, not approximate
  EXPECT_EQ(back->provenance.knobs, report.provenance.knobs);
  ASSERT_EQ(back->snapshots.size(), 1u);
  EXPECT_EQ(back->snapshots[0].front, report.snapshots[0].front);
  EXPECT_EQ(back->final_front, report.final_front);

  // A different key (hash collision in disguise) reads as a miss.
  std::stringstream again(stream.str());
  EXPECT_FALSE(detail::read_report(again, "other-key").has_value());
}

// --- Knob-key declarations ------------------------------------------------

TEST(KnobKeys, BuiltinsDeclareTheirKeys) {
  const auto moela_keys = registry().knob_keys("moela");
  EXPECT_NE(std::find(moela_keys.begin(), moela_keys.end(), "moela.delta"),
            moela_keys.end());
  EXPECT_NE(std::find(moela_keys.begin(), moela_keys.end(),
                      "moela.forest.trees"),
            moela_keys.end());
  for (const auto& name : registry().names()) {
    EXPECT_FALSE(registry().knob_keys(name).empty()) << name;
  }
}

TEST(KnobKeys, UnknownKnobKeysFlagsTyposOnly) {
  KnobBag knobs;
  knobs.set("moela.delta", 0.9)          // recognized by moela
      .set("nsga2.max_generations", 50)  // recognized by nsga2
      .set("moela.detla", 0.5);          // typo: recognized by nobody
  const auto unknown =
      registry().unknown_knob_keys(knobs, {"moela", "nsga2"});
  EXPECT_EQ(unknown, std::vector<std::string>{"moela.detla"});
}

TEST(KnobKeys, UndeclaredOptimizerSuppressesWarnings) {
  // An optimizer registered without declared keys may accept anything, so
  // the check must stay silent rather than cry wolf.
  registry().add("test-undeclared-opt", [](AnyProblem p) {
    return registry().create("nsga2", std::move(p));
  });
  KnobBag knobs;
  knobs.set("whatever.key", 1.0);
  EXPECT_TRUE(
      registry().unknown_knob_keys(knobs, {"test-undeclared-opt"}).empty());
}

// --- ResultCache: disk size cap / LRU eviction ----------------------------

TEST(ResultCache, DiskTierEvictsLeastRecentlyUsed) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::path(testing::TempDir()) / "moela-lru-cache";
  fs::remove_all(dir);

  RunReport report;
  report.algorithm = "X";
  report.final_front = {{1.0, 2.0}};
  report.final_objectives = {{1.0, 2.0}};
  report.evaluations = 10;

  ResultCache writer(dir.string());
  writer.set_max_disk_bytes(0);  // no cap while seeding
  writer.store("key-a", report);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  writer.store("key-b", report);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  const auto entry_bytes = fs::file_size(
      dir / (ResultCache::hash_key("key-a") + ".moela"));

  // Touch key-a from a FRESH cache (disk hit → recency bump); the memory
  // tier of `writer` would otherwise satisfy the lookup without touching
  // the file.
  {
    ResultCache reader(dir.string());
    EXPECT_TRUE(reader.lookup("key-a").has_value());
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(30));

  // Cap fits two entries; storing the third must evict the least recently
  // USED one — key-b, not the just-bumped key-a.
  writer.set_max_disk_bytes(entry_bytes * 2 + entry_bytes / 2);
  writer.store("key-c", report);
  EXPECT_GE(writer.stats().evictions, 1u);

  ResultCache reader(dir.string());
  EXPECT_TRUE(reader.lookup("key-a").has_value());
  EXPECT_FALSE(reader.lookup("key-b").has_value());
  EXPECT_TRUE(reader.lookup("key-c").has_value());
}

TEST(ResultCache, OversizedSingleEntryEvictsWithoutLooping) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::path(testing::TempDir()) / "moela-oversize-cache";
  fs::remove_all(dir);

  RunReport report;
  report.algorithm = "X";
  report.final_front = {{1.0, 2.0}, {3.0, 4.0}};
  report.final_objectives = {{1.0, 2.0}, {3.0, 4.0}};
  report.evaluations = 10;

  ResultCache cache(dir.string());
  cache.set_max_disk_bytes(1);  // any real entry busts the cap by itself
  // Must terminate (the "keep the just-written entry" rule yields to a
  // cap the entry alone exceeds — no retry/eviction loop) and must count
  // exactly the one eviction.
  cache.store("too-big", report);
  EXPECT_EQ(cache.stats().stores, 1u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_FALSE(
      fs::exists(dir / (ResultCache::hash_key("too-big") + ".moela")));

  // The memory tier is uncapped: the report is still served in-process.
  EXPECT_TRUE(cache.lookup("too-big").has_value());
  // A fresh cache (disk only) correctly misses.
  ResultCache reader(dir.string());
  EXPECT_FALSE(reader.lookup("too-big").has_value());

  // Repeated oversized stores keep evicting one file each, never more.
  cache.store("too-big-2", report);
  EXPECT_EQ(cache.stats().evictions, 2u);
}

TEST(ResultCache, ZeroCapDisablesEvictionEntirely) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::path(testing::TempDir()) / "moela-nocap-cache";
  fs::remove_all(dir);

  RunReport report;
  report.algorithm = "X";
  report.final_front = {{1.0, 2.0}};
  report.final_objectives = {{1.0, 2.0}};
  report.evaluations = 10;

  ResultCache cache(dir.string());
  cache.set_max_disk_bytes(0);  // 0 = no cap, NOT "evict everything"
  for (int i = 0; i < 5; ++i) {
    cache.store("key-" + std::to_string(i), report);
  }
  EXPECT_EQ(cache.stats().stores, 5u);
  EXPECT_EQ(cache.stats().evictions, 0u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(fs::exists(
        dir / (ResultCache::hash_key("key-" + std::to_string(i)) +
               ".moela")))
        << i;
  }
}

// --- Executor: per-run structured logs ------------------------------------

TEST(Executor, RunLogWritesOneJsonlRecordPerRun) {
  namespace fs = std::filesystem;
  const fs::path path = fs::path(testing::TempDir()) / "moela-run-log.jsonl";
  fs::remove(path);

  RunLogger logger(path.string());
  ASSERT_TRUE(logger.ok());
  std::vector<RunRequest> requests = {zdt1_request("moela", 5),
                                      zdt1_request("nsga2", 6)};
  RunRequest bad = zdt1_request("moela", 7);
  bad.algorithm = "no-such-algorithm";
  requests.push_back(bad);
  for (RunRequest& request : requests) {
    request.trace_id = "00deadbeef00cafe";
  }

  ExecutorConfig config;
  config.jobs = 2;
  config.run_log = &logger;
  Executor executor(config);
  auto futures = executor.submit(std::move(requests));
  EXPECT_NO_THROW(futures[0].get());
  EXPECT_NO_THROW(futures[1].get());
  EXPECT_THROW(futures[2].get(), std::exception);

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::string line;
  std::size_t ok_records = 0, error_records = 0;
  while (std::getline(in, line)) {
    const util::Json record = util::Json::parse(line);  // valid JSON/line
    // Every record is versioned, timestamped (ISO-8601), and — when the
    // request carried one — trace-correlated, ok and error alike.
    EXPECT_EQ(record.find("v")->as_u64(), 1u);
    const std::string time = record.find("time")->as_string();
    EXPECT_EQ(time.size(), std::string("2026-01-01T00:00:00Z").size());
    EXPECT_EQ(time.back(), 'Z');
    ASSERT_NE(record.find("trace"), nullptr);
    EXPECT_EQ(record.find("trace")->as_string(), "00deadbeef00cafe");
    const std::string status = record.find("status")->as_string();
    if (status == "ok") {
      ++ok_records;
      EXPECT_EQ(record.find("evaluations")->as_u64(), 600u);
      EXPECT_FALSE(record.find("cache_hit")->as_bool());
      EXPECT_FALSE(record.find("label")->as_string().empty());
    } else {
      ++error_records;
      EXPECT_EQ(status, "error");
      EXPECT_NE(record.find("error")->as_string().find("no-such-algorithm"),
                std::string::npos);
    }
  }
  EXPECT_EQ(ok_records, 2u);
  EXPECT_EQ(error_records, 1u);
}

}  // namespace
}  // namespace moela::api
