#include "serve/sched/scheduler.hpp"

#include <algorithm>
#include <utility>

#include "util/timer.hpp"

namespace moela::serve::sched {
namespace {

std::size_t class_index(Priority priority) {
  return static_cast<std::size_t>(priority);
}

/// Everything one queued run needs to execute and answer its future. Held
/// by shared_ptr because QueueItem::work is a copyable std::function.
struct Job {
  api::RunRequest request;
  api::RunControl* control = nullptr;
  std::size_t index = 0;
  std::shared_ptr<api::Executor::BatchState> batch;
  std::promise<api::RunReport> promise;
  /// Started at admission; read when a worker dequeues the run, so the
  /// per-class queue-wait histogram measures time spent waiting, not
  /// running.
  util::Timer queued_at;
};

}  // namespace

Scheduler::Scheduler(api::Executor& executor, SchedulerConfig config)
    : config_(config), executor_(executor), queue_(config.weights) {
  if (config_.metrics != nullptr) {
    for (std::size_t cls = 0; cls < kNumClasses; ++cls) {
      queue_wait_[cls] = &config_.metrics->histogram(
          "moela_sched_queue_wait_seconds",
          "Admission-to-dispatch wait of scheduled runs by priority class",
          util::exponential_bounds(0.001, 4.0, 12),
          {{"class", priority_name(static_cast<Priority>(cls))}});
    }
  }
  std::size_t workers = config_.workers;
  if (workers == 0) {
    workers = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

Scheduler::~Scheduler() {
  {
    util::MutexLock lock(mutex_);
    shutting_down_ = true;
  }
  wake_.notify_all();
  for (auto& worker : workers_) worker.join();
}

std::uint64_t Scheduler::retry_after_hint(std::size_t queue_depth) const {
  const std::size_t workers = std::max<std::size_t>(1, workers_.size());
  const std::uint64_t hint = 50 * (1 + queue_depth / workers);
  return std::min<std::uint64_t>(hint, 5000);
}

Scheduler::Admission Scheduler::submit(std::vector<api::RunRequest> requests,
                                       Priority priority, std::uint64_t lane,
                                       api::RunControl* control) {
  const std::size_t n = requests.size();
  const std::size_t cls = class_index(priority);
  Admission admission;
  auto batch = std::make_shared<api::Executor::BatchState>();
  batch->total = n;
  admission.futures.reserve(n);
  {
    util::MutexLock lock(mutex_);
    // Admission is all-or-nothing ON THE QUEUED BACKLOG: work in flight
    // is capacity being used, not load waiting, so it does not count
    // against the bound.
    if (queue_.size() + n > config_.max_queued) {
      admission.queue_depth = queue_.size();
      admission.retry_after_ms = retry_after_hint(queue_.size());
      admission.futures.clear();
      counters_[cls].shed += n;
      return admission;
    }
    for (std::size_t i = 0; i < n; ++i) {
      auto job = std::make_shared<Job>();
      job->request = std::move(requests[i]);
      job->control = control;
      job->index = i;
      job->batch = batch;
      admission.futures.push_back(job->promise.get_future());
      QueueItem item;
      item.tag = i;
      // The counters settle BEFORE the promise: a caller that has seen its
      // report must never read a snapshot still counting that run as
      // running — the health verb is how clients observe the scheduler.
      item.work = [this, job, cls] {
        if (queue_wait_[cls] != nullptr) {
          queue_wait_[cls]->observe(job->queued_at.elapsed_seconds());
        }
        try {
          api::RunReport report = executor_.execute_one(
              job->request, job->control, job->index, job->batch);
          retire(cls);
          job->promise.set_value(std::move(report));
        } catch (...) {
          retire(cls);
          job->promise.set_exception(std::current_exception());
        }
      };
      queue_.push(priority, lane, std::move(item));
    }
    admission.admitted = true;
    admission.queue_depth = queue_.size();
  }
  wake_.notify_all();
  return admission;
}

void Scheduler::retire(std::size_t cls) {
  util::MutexLock lock(mutex_);
  --counters_[cls].running;
  ++counters_[cls].completed;
}

void Scheduler::worker_loop() {
  for (;;) {
    Priority priority = Priority::kNormal;
    QueueItem item;
    {
      util::MutexLock lock(mutex_);
      while (!shutting_down_ && queue_.empty()) wake_.wait(lock);
      if (queue_.empty()) return;  // shutting down and drained
      queue_.pop(priority, item);
      ++counters_[class_index(priority)].running;
    }
    item.work();  // settles the counters; exceptions land in the promise
  }
}

ClassCounters Scheduler::counters(Priority priority) const {
  util::MutexLock lock(mutex_);
  ClassCounters out = counters_[class_index(priority)];
  out.queued = queue_.size(priority);
  return out;
}

std::size_t Scheduler::queued_total() const {
  util::MutexLock lock(mutex_);
  return queue_.size();
}

std::size_t Scheduler::running_total() const {
  util::MutexLock lock(mutex_);
  std::size_t running = 0;
  for (const ClassCounters& counters : counters_) {
    running += counters.running;
  }
  return running;
}

}  // namespace moela::serve::sched
