// MOELA's greedy-descent local search (Sec. IV.B).
//
// From a starting design, repeatedly samples a batch of feasible neighbors,
// moves to the best one if it improves the Eq. (8) weighted distance
//     g(Obj | w, z) = sum_i w_i |Obj_i - z_i|,
// and stops when no sampled neighbor improves (or budgets run out). Every
// design visited is recorded; the caller labels the whole trajectory with
// the final g value and appends it to the Eval training set, exactly as
// STAGE does.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "core/eval_context.hpp"
#include "moo/objective.hpp"
#include "moo/problem.hpp"
#include "moo/scalarize.hpp"
#include "moo/weights.hpp"

namespace moela::core {

struct LocalSearchConfig {
  /// Consecutive non-improving neighbor samples before the search stops
  /// (first-improvement descent: any improving neighbor is accepted
  /// immediately).
  std::size_t patience = 8;
  /// Hard cap on accepted steps.
  std::size_t max_steps = 40;
  /// Hard cap on objective evaluations spent by one search.
  std::size_t max_evaluations = 120;
};

template <moo::MooProblem P>
struct LocalSearchResult {
  using Design = typename P::Design;

  /// One visited design on the descent path: its problem features and its
  /// (already computed) objective vector. The Eval training set uses both —
  /// every trajectory member was evaluated during the search, so its
  /// objectives are free information for the regressor.
  struct Visit {
    Design design;
    std::vector<double> features;
    moo::ObjectiveVector objectives;
    /// Scaled Eq. (8) value of this design at visit time.
    double g = 0.0;
  };

  Design best;
  moo::ObjectiveVector best_objectives;
  double best_g = 0.0;
  /// Start + each accepted step; the training target for all is `best_g`.
  std::vector<Visit> trajectory;
  std::size_t steps_taken = 0;
};

/// Runs the greedy descent from (`start`, `start_obj`) for weight `w` toward
/// reference point `z`, with per-objective normalization `scale` (the
/// population's ideal-to-nadir ranges; see scalarize.hpp). Never exceeds the
/// context's evaluation budget: the search ends early if the budget runs out
/// mid-step.
template <moo::MooProblem P>
LocalSearchResult<P> local_search(EvalContext<P>& ctx,
                                  const typename P::Design& start,
                                  const moo::ObjectiveVector& start_obj,
                                  const moo::WeightVector& w,
                                  const moo::ObjectiveVector& z,
                                  const moo::ObjectiveVector& scale,
                                  const LocalSearchConfig& config = {}) {
  LocalSearchResult<P> result;
  result.best = start;
  result.best_objectives = start_obj;
  result.best_g = moo::weighted_distance_scaled(start_obj, w, z, scale);
  result.trajectory.push_back(
      {start, ctx.problem().features(start), start_obj, result.best_g});

  std::size_t stale = 0;       // consecutive non-improving samples
  std::size_t spent = 0;       // evaluations consumed by this search
  while (result.steps_taken < config.max_steps &&
         stale < config.patience && spent < config.max_evaluations) {
    if (ctx.exhausted()) break;
    typename P::Design n =
        ctx.problem().random_neighbor(result.best, ctx.rng());
    moo::ObjectiveVector obj = ctx.evaluate(n);
    ++spent;
    const double g = moo::weighted_distance_scaled(obj, w, z, scale);
    if (g < result.best_g) {
      // First improvement: accept immediately and continue from there.
      result.best = std::move(n);
      result.best_objectives = obj;
      result.best_g = g;
      result.trajectory.push_back(
          {result.best, ctx.problem().features(result.best), std::move(obj),
           g});
      ++result.steps_taken;
      stale = 0;
    } else {
      ++stale;
    }
  }
  return result;
}

}  // namespace moela::core
