// Analytical performance/energy model — the substitution for the paper's
// final gem5-gpu EDP simulations (Fig. 3).
//
// The model converts a design's NoC figures into application execution time
// and total energy:
//  * the CPU-bound runtime share scales with the average CPU-LLC latency
//    (objective 3) — CPUs stall on memory;
//  * the GPU-bound share scales with NoC congestion, modeled from the mean
//    and variance of link utilization (objectives 1-2) via an M/M/1-style
//    contention factor — GPUs are throughput-limited;
//  * energy = communication energy (objective 4, scaled per unit time) plus
//    the integral of PE power over the execution time.
// EDP = energy x delay. All algorithms are scored by the same model, so the
// relative comparison the paper reports is preserved.
#pragma once

#include "noc/design.hpp"
#include "noc/objectives.hpp"
#include "noc/platform.hpp"
#include "noc/workload.hpp"
#include "sim/rodinia.hpp"

namespace moela::sim {

struct EdpModelParams {
  /// Nominal kernel runtime at zero NoC overhead, seconds.
  double base_runtime = 1.0;
  /// Reference latency (Eq. 3 units) at which CPU stalls double runtime.
  double latency_ref = 400.0;
  /// Link capacity in the utilization units of the traffic matrix: the
  /// mean+sigma utilization at which contention diverges.
  double link_capacity = 60.0;
  /// Weight of the variance term in the congestion estimate (hotspots hurt
  /// more than average load).
  double sigma_weight = 1.0;
  /// Communication energy scale: joules per (Eq. 4 unit x second).
  double comm_energy_scale = 1e-4;
};

struct EdpResult {
  double exec_time = 0.0;   // seconds
  double energy = 0.0;      // joules
  double edp = 0.0;         // joule-seconds
  double peak_temperature = 0.0;  // max T_n,k of the thermal model
};

/// Scores one design under one application. `arch.cpu_fraction` splits the
/// nominal runtime into a CPU-latency-bound part and a GPU-throughput-bound
/// part.
EdpResult estimate_edp(const noc::PlatformSpec& spec,
                       const noc::NocDesign& design,
                       const noc::Workload& workload,
                       const AppArchetype& arch,
                       const noc::NocObjectiveParams& obj_params = {},
                       const EdpModelParams& model = {});

}  // namespace moela::sim
