// moela_serve wire protocol: line-delimited JSON over TCP, one object per
// line in each direction. Shared by the server (serve/server.hpp) and the
// client (serve/client.hpp); the full reference (framing, error envelopes,
// worked examples) lives in docs/protocol.md.
//
// Client → server, each line an object with a client-chosen "id" (echoed
// back on every response line) and a "verb":
//
//   {"id":1,"verb":"ping"}
//   {"id":2,"verb":"list_algorithms"}
//   {"id":3,"verb":"list_problems"}
//   {"id":4,"verb":"cache_stats"}
//   {"id":5,"verb":"run","requests":[<RunRequest JSON, api/serde.hpp>,...],
//    "progress":true}
//                                — a request may set "checkpoint":true
//                                  (stream RunSnapshots; persist them when
//                                  the daemon has --snapshot-dir) and/or
//                                  carry a "resume" snapshot
//                                  (api/snapshot.hpp) to continue an
//                                  interrupted run bit-identically. A
//                                  malformed resume payload rejects the
//                                  batch whole.
//   {"id":6,"verb":"health"}     — load snapshot (jobs, inflight,
//                                  runs_handled, runs_cancelled,
//                                  runs_resumed, snapshots_written,
//                                  accepting, cache counters);
//                                  api::ShardedExecutor probes it for
//                                  placement
//   {"id":9,"verb":"metrics"}    — full telemetry snapshot (the
//                                  MetricsRegistry's JSON form: per-verb
//                                  request counters/latency, per-class
//                                  queue waits, cache and shard counters,
//                                  per-algorithm run times) plus
//                                  uptime_seconds and version. The same
//                                  numbers scrape as Prometheus text via
//                                  moela_serve --metrics-dump.
//   {"id":7,"verb":"cancel","target":5}
//                                — stop the in-flight "run" batch submitted
//                                  with id 5 ON THIS CONNECTION. Idempotent
//                                  and race-free: an unknown or already-
//                                  finished target answers
//                                  {"ok":true,"cancelled":false}. Cancelled
//                                  runs still deliver the batch's final
//                                  response, unfinished entries marked
//                                  provenance.cancelled — the same reports
//                                  an inline Executor stop produces.
//   {"id":8,"verb":"shutdown"}
//
// Server → client, every line tagged with the request's "id":
//
//   * streamed events while a "run" is in flight (an "event" field is
//     present; "progress" fires at the snapshot cadence only when the
//     request asked for it, "finished" fires once per completed run).
//     Every event carries "elapsed_ms" (server-side monotonic time since
//     the batch was admitted, so clients can spot a stalled run without
//     local bookkeeping) and, when the submitting client minted one, the
//     batch's "trace" id. A checkpointing run's cadence events also carry
//     a "snapshot" object (api/snapshot.hpp JSON form) — streamed even
//     when "progress" was not requested, since the resume payload is the
//     point of checkpointing:
//       {"id":5,"event":"progress","label":...,"algorithm":...,
//        "evaluations":...,"max_evaluations":...,"seconds":...,
//        "elapsed_ms":...,"trace":"9f2c..."}
//       {"id":5,"event":"finished","label":...,"completed":k,"total":n,
//        "evaluations":...,"seconds":...,"cache_hit":false,
//        "elapsed_ms":...,"trace":"9f2c..."}
//   * exactly one final response ("ok" present, no "event"):
//       {"id":5,"ok":true,"reports":[<RunReport JSON>|{"error":...},...]}
//       {"id":5,"ok":false,"error":"..."}
//
// Verbs on one connection may be answered out of submission order ("run"
// executes asynchronously; everything else answers inline) — the "id" is
// the correlation, not the line order. Requests are capped at
// kMaxLineBytes per line; a connection that exceeds it is dropped.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "util/json.hpp"

namespace moela::serve {

/// Default TCP port of moela_serve.
inline constexpr int kDefaultPort = 7313;

/// Protocol revision, reported by the "ping" verb. Bump on breaking wire
/// changes.
inline constexpr int kProtocolVersion = 1;

/// Build/schema version string, reported by the "health" and "metrics"
/// verbs so an operator can tell which build a long-lived daemon runs.
/// Tracks the PR sequence growing this repo, not kProtocolVersion (which
/// only moves on breaking wire changes).
inline constexpr const char* kServerVersion = "0.9.0";

/// Upper bound on one framed line (requests can carry whole batches, and
/// responses whole report sets, so this is generous).
inline constexpr std::size_t kMaxLineBytes = 64u << 20;

/// Buffered '\n'-framed reads over a socket/pipe fd.
class LineReader {
 public:
  explicit LineReader(int fd, std::size_t max_line_bytes = kMaxLineBytes)
      : fd_(fd), max_line_bytes_(max_line_bytes) {}

  /// Outcome of a bounded read: a whole line, nothing yet (only with a
  /// timeout), or a closed/oversized/errored conversation.
  enum class ReadResult { kLine, kTimeout, kClosed };

  /// Reads one line into `out` (terminator stripped). Returns false on
  /// EOF, a read error, or an over-long line — all of which end the
  /// conversation.
  bool read_line(std::string& out) {
    return read_line_for(out, -1) == ReadResult::kLine;
  }

  /// As read_line, but gives up after `timeout_ms` without data so the
  /// caller can interleave a send (e.g. a cancel verb) on the same
  /// conversation. `timeout_ms` < 0 blocks indefinitely. Buffered lines
  /// are returned without touching the socket.
  ReadResult read_line_for(std::string& out, int timeout_ms);

 private:
  int fd_;
  std::size_t max_line_bytes_;
  std::string buffer_;
  std::size_t scanned_ = 0;
};

/// Writes `line` + '\n' fully (handles short writes; suppresses SIGPIPE).
/// Returns false once the peer is gone.
bool send_line(int fd, const std::string& line);

/// Serializes and sends one protocol object.
inline bool send_json(int fd, const util::Json& json) {
  return send_line(fd, json.dump());
}

/// Parses "host:port" / ":port" / "host" / "port". Empty host means
/// 127.0.0.1; a missing port means kDefaultPort. Returns false on a
/// malformed port.
bool parse_host_port(const std::string& spec, std::string& host, int& port);

/// Protocol message builders (id-tagged).
util::Json make_error(std::uint64_t id, const std::string& message);
util::Json make_ok(std::uint64_t id);

}  // namespace moela::serve
