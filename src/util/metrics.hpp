// Dependency-free telemetry registry: labeled counters, gauges, and
// fixed-bucket histograms with deterministic bounds, plus trace-id minting
// for cross-process run correlation (docs/observability.md).
//
// Design constraints, in order:
//   1. The increment path is hot (per-verb, per-run, per-cache-lookup), so
//      Counter/Gauge/Histogram mutate through std::atomic with relaxed
//      ordering — no locks, no allocation. The registry mutex guards only
//      metric CREATION and SNAPSHOTS; callers resolve handles once (at
//      construction/startup) and hold the returned reference.
//   2. Snapshots must be deterministic functions of the observations:
//      histogram bucket bounds are fixed at registration (log-scale bounds
//      come from exponential_bounds(), computed by repeated multiply so
//      every build agrees bit-for-bit), and the histogram sum is kept as an
//      integer nanocount so concurrent observes commute — no floating-point
//      accumulation order to vary under TSan.
//   3. Telemetry NEVER feeds back into results: nothing here is consulted
//      by cache_key(), serde, or report content. Metrics observe the run;
//      they must not perturb it (enforced by tests/test_serve.cpp's
//      bit-identity round-trips).
//
// Exposition: snapshot_json() for the `metrics` wire verb, and
// prometheus_text() (# HELP / # TYPE / cumulative le-buckets) for scraping
// and the daemon's --metrics-dump flag.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/json.hpp"
#include "util/thread_annotations.hpp"

namespace moela::util {

/// Label set for one time series, e.g. {{"verb", "run"}}. Stored sorted by
/// key so equal sets always name the same series.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Instantaneous signed level (queue depth, inflight connections).
class Gauge {
 public:
  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  void sub(std::int64_t n = 1) {
    value_.fetch_sub(n, std::memory_order_relaxed);
  }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket histogram with Prometheus le-semantics: an observation
/// lands in the first bucket whose upper bound is >= the value; values
/// above every bound land in the implicit +Inf bucket. The sum is held as
/// integer nanounits (round(v * 1e9)) so concurrent observes are exact and
/// order-independent.
class Histogram {
 public:
  /// `bounds` are the finite upper bounds, strictly increasing; the +Inf
  /// bucket is implicit. An empty bounds list leaves only +Inf.
  explicit Histogram(std::vector<double> bounds);

  void observe(double value);

  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket (non-cumulative) counts; size() == bounds().size() + 1,
  /// last entry is the +Inf bucket.
  std::vector<std::uint64_t> bucket_counts() const;
  std::uint64_t count() const;
  /// Sum of observations in nanounits (exact integer).
  std::int64_t sum_nano() const {
    return sum_nano_.load(std::memory_order_relaxed);
  }
  /// Sum of observations (derived from the exact nanocount).
  double sum() const { return static_cast<double>(sum_nano()) * 1e-9; }

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::int64_t> sum_nano_{0};
};

/// Log-scale bucket bounds: count values starting at `lo`, each `factor`
/// times the last. Computed by repeated multiply — no pow(), so every
/// platform and build produces bit-identical bounds and therefore stable
/// snapshot text.
std::vector<double> exponential_bounds(double lo, double factor,
                                       std::size_t count);

/// Mints a 16-hex-digit trace id. Entropy comes from the monotonic and
/// wall clocks, the pid, and a process-local counter, mixed through
/// SplitMix64 — the project's sanctioned generator (moela_lint bans
/// std::random_device). Uniqueness per mint is guaranteed by the counter
/// even when two mints share a clock tick.
std::string mint_trace_id();

/// The registry: named families of counters/gauges/histograms, each family
/// fanning out into label-keyed series. Creation and snapshotting lock;
/// the returned references stay valid (and lock-free) for the registry's
/// lifetime.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Gets or creates. `help` is recorded on first creation of the family;
  /// registering the same (name, labels) twice returns the same object.
  Counter& counter(const std::string& name, const std::string& help,
                   MetricLabels labels = {});
  Gauge& gauge(const std::string& name, const std::string& help,
               MetricLabels labels = {});
  /// `bounds` applies on family creation; later calls for the same family
  /// reuse the family's bounds (per-family bounds keep exposition sane).
  Histogram& histogram(const std::string& name, const std::string& help,
                       std::vector<double> bounds, MetricLabels labels = {});

  /// JSON snapshot, deterministic given the observations: families and
  /// series in sorted order, counts as exact integers.
  Json snapshot_json() const;

  /// Prometheus text exposition: # HELP / # TYPE headers, cumulative
  /// le-buckets, _sum/_count. Deterministic given the observations.
  std::string prometheus_text() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };

  struct Series {
    MetricLabels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  struct Family {
    Kind kind = Kind::kCounter;
    std::string help;
    std::vector<double> bounds;  // histograms only
    /// Keyed by the canonical label rendering so lookup and sorted
    /// exposition share one order.
    std::map<std::string, Series> series;
  };

  Series& resolve(const std::string& name, const std::string& help,
                  Kind kind, MetricLabels labels,
                  const std::vector<double>* bounds);

  mutable util::Mutex mutex_;
  /// Guarded for CREATION and iteration only; the Counter/Gauge/Histogram
  /// objects a Series owns are lock-free by design (design constraint 1
  /// above: relaxed atomics on the increment path), stable-addressed via
  /// unique_ptr, and deliberately mutate without this capability.
  std::map<std::string, Family> families_ MOELA_GUARDED_BY(mutex_);
};

}  // namespace moela::util
