#include "exp/scenario.hpp"

#include <algorithm>
#include <cstdlib>
#include <string>

#include "api/registry.hpp"
#include "moo/metrics.hpp"
#include "util/log.hpp"

namespace moela::exp {

namespace {

std::size_t env_size_t(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
}

bool env_flag(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr && std::string(v) == "1";
}

}  // namespace

PaperBenchConfig paper_bench_config_from_env() {
  PaperBenchConfig config;
  config.max_evaluations = env_size_t("MOELA_BENCH_EVALS", 40000);
  config.seed = env_size_t("MOELA_BENCH_SEED", 1);
  config.small_platform = env_flag("MOELA_BENCH_SMALL");
  const char* secs = std::getenv("MOELA_BENCH_SECONDS");
  if (secs != nullptr && *secs != '\0') {
    config.max_seconds = std::strtod(secs, nullptr);
  }
  config.snapshot_interval = 200;
  return config;
}

RunConfig tuned_run_config(const PaperBenchConfig& config) {
  RunConfig run;
  run.max_evaluations = config.max_evaluations;
  run.max_seconds = config.max_seconds;
  run.snapshot_interval = config.snapshot_interval;
  run.seed = config.seed;
  // The paper's algorithm parameters (Sec. V.B): N = 50, n_local = 5,
  // delta = 0.9, iter_early = 2, |S_train| <= 10K.
  run.population_size = 50;
  run.n_local = 5;
  run.moela.delta = 0.9;
  run.moela.iter_early = 2;
  // Forest sizing tuned for the NoC feature width (~250 features) and a
  // retrain cadence of every 3 iterations so the training wall-time stays a
  // small fraction of evaluation cost (the guide's value is wall-clock
  // efficiency; see EXPERIMENTS.md notes).
  run.moela.train_capacity = 2000;
  run.moela.train_interval = 3;
  run.moela.forest.num_trees = 6;
  run.moela.forest.max_depth = 8;
  run.moela.forest.max_features = 16;
  run.moela.forest.subsample = 0.7;
  run.moela.guide_mode = core::GuideMode::kImprovement;
  run.stage.forest = run.moela.forest;
  run.stage.train_capacity = 2000;
  // Local-search budget per iteration: short descents keep the EA stage a
  // substantial share of the evaluation budget (the paper's 48-hour budget
  // runs every algorithm to convergence; at bench scale the split matters).
  run.moela.local_search.max_steps = 20;
  run.moela.local_search.patience = 8;
  run.moela.local_search.max_evaluations = 60;
  run.moos.search = run.moela.local_search;
  run.stage.search.max_steps = 20;
  run.stage.search.neighbors_per_step = 4;
  return run;
}

api::RunOptions tuned_run_options(const PaperBenchConfig& config) {
  return to_run_options(tuned_run_config(config));
}

noc::PlatformSpec bench_platform(const PaperBenchConfig& config) {
  return config.small_platform ? noc::PlatformSpec::small_3x3x3()
                               : noc::PlatformSpec::paper_4x4x4();
}

AppScenarioResult run_app_scenario(sim::RodiniaApp app,
                                   std::size_t num_objectives,
                                   const PaperBenchConfig& config) {
  AppScenarioResult result;
  result.app = app;
  result.num_objectives = num_objectives;

  noc::PlatformSpec spec = bench_platform(config);
  noc::Workload workload = sim::make_workload(spec, app, config.seed);
  const api::AnyProblem problem(noc::NocProblem(
      std::move(spec), std::move(workload), num_objectives));
  const api::RunOptions options = tuned_run_options(config);

  for (const std::string& key : config.algorithms) {
    auto optimizer = api::registry().create(key, problem);
    util::log_info() << sim::app_name(app) << " " << num_objectives
                     << "-obj: running " << optimizer->name() << " ("
                     << options.max_evaluations << " evals)";
    result.algorithm_names.push_back(optimizer->name());
    result.runs.push_back(optimizer->run(options));
  }

  SnapshotSet snapshots;
  for (const auto& run : result.runs) snapshots.push_back(run.snapshots);
  result.bounds = global_bounds(snapshots);
  result.traces = phv_traces(snapshots, result.bounds);
  // T_stop: every algorithm received the same wall-clock budget; compare
  // at the earliest final-trace timestamp so every run has a sample at or
  // before the comparison point.
  result.common_stop_seconds = result.traces.front().back().seconds;
  for (const auto& trace : result.traces) {
    result.common_stop_seconds =
        std::min(result.common_stop_seconds, trace.back().seconds);
  }
  for (const auto& trace : result.traces) {
    result.final_phv.push_back(
        moo::phv_at_time(trace, result.common_stop_seconds));
  }
  return result;
}

}  // namespace moela::exp
