// Tests for the RunRequest / RunReport JSON serde (api/serde.hpp): full
// field round-trips (including knobs, problem options, provenance and the
// three design codecs), bit-exact doubles through the wire form, and the
// validation errors for malformed requests.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "api/executor.hpp"
#include "api/serde.hpp"
#include "noc/design.hpp"
#include "noc/generator.hpp"
#include "noc/platform.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace moela::api {
namespace {

using util::Json;

RunRequest sample_request() {
  RunRequest request;
  request.problem = "noc";
  request.problem_options.num_objectives = 5;
  request.problem_options.num_variables = 7;
  request.problem_options.seed = 3;
  request.problem_options.app = "SRAD";
  request.problem_options.small_platform = true;
  request.algorithm = "moela";
  request.options.max_evaluations = 1234;
  request.options.max_seconds = 1.0 / 3.0;  // not representable in decimal
  request.options.snapshot_interval = 77;
  request.options.seed = (1ull << 60) + 9;  // above double's exact range
  request.options.population_size = 24;
  request.options.n_local = 4;
  request.options.knobs.set("moela.delta", 0.9).set("moela.forest.trees", 8);
  request.need_designs = true;
  request.label = "unit:test";
  return request;
}

TEST(RequestSerde, RoundTripsEveryField) {
  const RunRequest original = sample_request();
  const RunRequest back =
      request_from_json(Json::parse(request_to_json(original).dump()));

  EXPECT_EQ(back.problem, original.problem);
  EXPECT_EQ(back.algorithm, original.algorithm);
  EXPECT_EQ(back.problem_options.num_objectives,
            original.problem_options.num_objectives);
  EXPECT_EQ(back.problem_options.num_variables,
            original.problem_options.num_variables);
  EXPECT_EQ(back.problem_options.seed, original.problem_options.seed);
  EXPECT_EQ(back.problem_options.app, original.problem_options.app);
  EXPECT_EQ(back.problem_options.small_platform,
            original.problem_options.small_platform);
  EXPECT_EQ(back.options.max_evaluations, original.options.max_evaluations);
  EXPECT_EQ(back.options.max_seconds, original.options.max_seconds);
  EXPECT_EQ(back.options.snapshot_interval,
            original.options.snapshot_interval);
  EXPECT_EQ(back.options.seed, original.options.seed);
  EXPECT_EQ(back.options.population_size, original.options.population_size);
  EXPECT_EQ(back.options.n_local, original.options.n_local);
  EXPECT_EQ(back.options.knobs.values(), original.options.knobs.values());
  EXPECT_EQ(back.need_designs, original.need_designs);
  EXPECT_EQ(back.label, original.label);

  // The decisive invariant: identical cache keys, so a request routed
  // through the daemon hits the same cache entries as an inline one.
  EXPECT_EQ(back.cache_key(), original.cache_key());
}

TEST(RequestSerde, DefaultsApplyForAbsentFields) {
  const RunRequest back = request_from_json(
      Json::parse(R"({"problem":"zdt1","algorithm":"nsga2"})"));
  const RunRequest defaults;
  EXPECT_EQ(back.options.max_evaluations, defaults.options.max_evaluations);
  EXPECT_EQ(back.options.seed, defaults.options.seed);
  EXPECT_EQ(back.problem_options.app, defaults.problem_options.app);
  EXPECT_FALSE(back.need_designs);
}

TEST(RequestSerde, PlainDecimalNumbersAreAccepted) {
  // Hand-written requests use ordinary literals, not hexfloat strings.
  const RunRequest back = request_from_json(Json::parse(
      R"({"problem":"zdt1","algorithm":"moela",
          "options":{"seconds":1.5,"knobs":{"moela.delta":0.25}}})"));
  EXPECT_EQ(back.options.max_seconds, 1.5);
  EXPECT_EQ(back.options.knobs.get_or("moela.delta", 0.0), 0.25);
}

TEST(RequestSerde, RejectsMissingProblemOrAlgorithm) {
  EXPECT_THROW(request_from_json(Json::parse(R"({"algorithm":"x"})")),
               util::JsonError);
  EXPECT_THROW(request_from_json(Json::parse(R"({"problem":"zdt1"})")),
               util::JsonError);
  EXPECT_THROW(
      request_from_json(Json::parse(
          R"({"problem":"zdt1","algorithm":"x","options":{"evals":"NaN"}})")),
      util::JsonError);
}

TEST(ReportSerde, PriorityProvenanceRoundTripsAndDefaults) {
  RunReport original;
  original.algorithm = "hand-built";
  original.provenance.priority = "interactive";
  const RunReport back =
      report_from_json(Json::parse(report_to_json(original).dump()));
  EXPECT_EQ(back.provenance.priority, "interactive");

  // A report from a peer predating the scheduler carries no priority
  // field: the default class stands instead of an empty string.
  const RunReport legacy = report_from_json(
      Json::parse(R"({"algorithm":"x","provenance":{"seed":1}})"));
  EXPECT_EQ(legacy.provenance.priority, "normal");
}

void expect_bit_identical(const RunReport& a, const RunReport& b) {
  EXPECT_EQ(a.algorithm, b.algorithm);
  EXPECT_EQ(a.final_front, b.final_front);
  EXPECT_EQ(a.final_objectives, b.final_objectives);
  EXPECT_EQ(a.evaluations, b.evaluations);
  EXPECT_EQ(a.seconds, b.seconds);
  ASSERT_EQ(a.snapshots.size(), b.snapshots.size());
  for (std::size_t i = 0; i < a.snapshots.size(); ++i) {
    EXPECT_EQ(a.snapshots[i].evaluations, b.snapshots[i].evaluations);
    EXPECT_EQ(a.snapshots[i].seconds, b.snapshots[i].seconds);
    EXPECT_EQ(a.snapshots[i].front, b.snapshots[i].front);
  }
  EXPECT_EQ(a.provenance.problem, b.provenance.problem);
  EXPECT_EQ(a.provenance.algorithm_key, b.provenance.algorithm_key);
  EXPECT_EQ(a.provenance.seed, b.provenance.seed);
  EXPECT_EQ(a.provenance.knobs, b.provenance.knobs);
  EXPECT_EQ(a.provenance.cache_key, b.provenance.cache_key);
  EXPECT_EQ(a.provenance.cache_hit, b.provenance.cache_hit);
  EXPECT_EQ(a.provenance.cancelled, b.provenance.cancelled);
  EXPECT_EQ(a.provenance.priority, b.provenance.priority);
}

/// Runs a real optimizer so the report carries genuine snapshots, fronts
/// and designs of the given problem family.
RunReport run_report(const std::string& problem, const std::string& algo) {
  RunRequest request;
  request.problem = problem;
  request.algorithm = algo;
  request.options.max_evaluations = 400;
  request.options.snapshot_interval = 100;
  request.options.population_size = 12;
  request.options.n_local = 2;
  Executor executor({.jobs = 1});
  return executor.run_all({request}).front();
}

TEST(ReportSerde, RealDesignsRoundTripBitIdentical) {
  const RunReport original = run_report("zdt1", "nsga2");
  ASSERT_FALSE(original.final_designs.empty());
  const RunReport back =
      report_from_json(Json::parse(report_to_json(original).dump()));
  expect_bit_identical(original, back);
  EXPECT_EQ(back.designs_as<std::vector<double>>(),
            original.designs_as<std::vector<double>>());
}

TEST(ReportSerde, BinaryDesignsRoundTrip) {
  const RunReport original = run_report("knapsack", "nsga2");
  ASSERT_FALSE(original.final_designs.empty());
  const RunReport back =
      report_from_json(Json::parse(report_to_json(original).dump()));
  expect_bit_identical(original, back);
  EXPECT_EQ(back.designs_as<std::vector<std::uint8_t>>(),
            original.designs_as<std::vector<std::uint8_t>>());
}

TEST(ReportSerde, NocDesignsRoundTrip) {
  RunReport original;
  original.algorithm = "hand-built";
  const noc::PlatformSpec spec = noc::PlatformSpec::small_3x3x3();
  const noc::DesignOps ops(spec);
  util::Rng rng(7);
  original.final_designs.push_back(
      AnyDesign::wrap<noc::NocDesign>(ops.random_design(rng)));
  original.final_objectives.push_back({1.0, 2.0});
  const RunReport back =
      report_from_json(Json::parse(report_to_json(original).dump()));
  ASSERT_EQ(back.final_designs.size(), 1u);
  EXPECT_EQ(back.designs_as<noc::NocDesign>().front(),
            original.designs_as<noc::NocDesign>().front());
}

TEST(ReportSerde, UnknownDesignTypeDegradesToNone) {
  RunReport original;
  original.algorithm = "custom";
  original.final_designs.push_back(AnyDesign::wrap<int>(7));
  const RunReport back =
      report_from_json(Json::parse(report_to_json(original).dump()));
  EXPECT_TRUE(back.final_designs.empty());  // payload dropped, not garbled
  EXPECT_EQ(back.algorithm, "custom");
}

}  // namespace
}  // namespace moela::api
