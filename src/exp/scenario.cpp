#include "exp/scenario.hpp"

#include <algorithm>
#include <atomic>
#include <csignal>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <utility>

#include "api/executor.hpp"
#include "api/request.hpp"
#include "api/result_cache.hpp"
#include "api/sharded_executor.hpp"
#include "moo/metrics.hpp"
#include "util/log.hpp"
#include "util/numeric.hpp"

namespace moela::exp {

namespace {

std::size_t env_size_t(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  std::uint64_t parsed = 0;
  if (!util::parse_u64(v, parsed)) return fallback;
  return static_cast<std::size_t>(parsed);
}

bool env_flag(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr && std::string(v) == "1";
}

// Ctrl-C during a bench grid: the same contract as moela_cli — request a
// graceful stop on the batch's RunControl; a second Ctrl-C falls through
// to the default disposition. Under MOELA_BENCH_SHARDS the stop crosses
// the wire as the protocol's cancel verb, so daemon-side in-flight work
// halts too instead of burning fleet CPU after the bench died. Handlers
// may only touch lock-free atomics, hence the atomic pointer.
std::atomic<api::RunControl*> g_scenario_control{nullptr};

void scenario_handle_sigint(int) {
  if (auto* control = g_scenario_control.load()) control->request_stop();
  std::signal(SIGINT, SIG_DFL);
}

/// Installs the handler for the duration of one grid and restores the
/// previous disposition after, so library callers keep their own signal
/// setup.
struct ScenarioSignalGuard {
  explicit ScenarioSignalGuard(api::RunControl& control) {
    g_scenario_control.store(&control);
    previous = std::signal(SIGINT, scenario_handle_sigint);
  }
  ~ScenarioSignalGuard() {
    std::signal(SIGINT, previous == SIG_ERR ? SIG_DFL : previous);
    g_scenario_control.store(nullptr);
  }
  void (*previous)(int) = nullptr;
};

}  // namespace

PaperBenchConfig paper_bench_config_from_env() {
  PaperBenchConfig config;
  config.max_evaluations = env_size_t("MOELA_BENCH_EVALS", 40000);
  config.seed = env_size_t("MOELA_BENCH_SEED", 1);
  config.small_platform = env_flag("MOELA_BENCH_SMALL");
  const char* secs = std::getenv("MOELA_BENCH_SECONDS");
  if (secs != nullptr && *secs != '\0') {
    double parsed = 0.0;
    if (util::parse_double(secs, parsed)) config.max_seconds = parsed;
  }
  config.snapshot_interval = 200;
  config.jobs = env_size_t("MOELA_BENCH_JOBS", 1);
  const char* cache = std::getenv("MOELA_BENCH_CACHE");
  if (cache != nullptr && *cache != '\0') {
    config.cache_dir = std::string(cache) == "1"
                           ? api::ResultCache::default_disk_dir()
                           : cache;
  }
  if (const char* shards = std::getenv("MOELA_BENCH_SHARDS");
      shards != nullptr && *shards != '\0') {
    std::string spec(shards);
    std::size_t begin = 0;
    while (begin <= spec.size()) {
      const std::size_t comma = spec.find(',', begin);
      std::string endpoint = spec.substr(
          begin, comma == std::string::npos ? std::string::npos
                                            : comma - begin);
      // Trim whitespace: "host1:7313, host2:7313" must not turn the
      // second entry into an unresolvable " host2".
      const std::size_t first = endpoint.find_first_not_of(" \t");
      const std::size_t last = endpoint.find_last_not_of(" \t");
      endpoint = first == std::string::npos
                     ? std::string()
                     : endpoint.substr(first, last - first + 1);
      if (!endpoint.empty()) {
        config.shard_endpoints.push_back(std::move(endpoint));
      }
      if (comma == std::string::npos) break;
      begin = comma + 1;
    }
  }
  return config;
}

RunConfig tuned_run_config(const PaperBenchConfig& config) {
  RunConfig run;
  run.max_evaluations = config.max_evaluations;
  run.max_seconds = config.max_seconds;
  run.snapshot_interval = config.snapshot_interval;
  run.seed = config.seed;
  // The paper's algorithm parameters (Sec. V.B): N = 50, n_local = 5,
  // delta = 0.9, iter_early = 2, |S_train| <= 10K.
  run.population_size = 50;
  run.n_local = 5;
  run.moela.delta = 0.9;
  run.moela.iter_early = 2;
  // Forest sizing tuned for the NoC feature width (~250 features) and a
  // retrain cadence of every 3 iterations so the training wall-time stays a
  // small fraction of evaluation cost (the guide's value is wall-clock
  // efficiency; see EXPERIMENTS.md notes).
  run.moela.train_capacity = 2000;
  run.moela.train_interval = 3;
  run.moela.forest.num_trees = 6;
  run.moela.forest.max_depth = 8;
  run.moela.forest.max_features = 16;
  run.moela.forest.subsample = 0.7;
  run.moela.guide_mode = core::GuideMode::kImprovement;
  run.stage.forest = run.moela.forest;
  run.stage.train_capacity = 2000;
  // Local-search budget per iteration: short descents keep the EA stage a
  // substantial share of the evaluation budget (the paper's 48-hour budget
  // runs every algorithm to convergence; at bench scale the split matters).
  run.moela.local_search.max_steps = 20;
  run.moela.local_search.patience = 8;
  run.moela.local_search.max_evaluations = 60;
  run.moos.search = run.moela.local_search;
  run.stage.search.max_steps = 20;
  run.stage.search.neighbors_per_step = 4;
  return run;
}

api::RunOptions tuned_run_options(const PaperBenchConfig& config) {
  return to_run_options(tuned_run_config(config));
}

noc::PlatformSpec bench_platform(const PaperBenchConfig& config) {
  return config.small_platform ? noc::PlatformSpec::small_3x3x3()
                               : noc::PlatformSpec::paper_4x4x4();
}

std::vector<AppScenarioResult> run_app_scenarios(
    const std::vector<ScenarioCell>& cells, const PaperBenchConfig& config) {
  const api::RunOptions options = tuned_run_options(config);
  const std::size_t per_cell = config.algorithms.size();

  // The whole grid as one batch: cells x algorithms, index-aligned so cell
  // ci's runs are requests [ci * per_cell, (ci + 1) * per_cell).
  std::vector<api::RunRequest> requests;
  requests.reserve(cells.size() * per_cell);
  for (const ScenarioCell& cell : cells) {
    for (const std::string& algorithm : config.algorithms) {
      api::RunRequest request;
      request.problem = "noc";
      request.problem_options.app = sim::app_name(cell.app);
      request.problem_options.num_objectives = cell.num_objectives;
      request.problem_options.seed = config.seed;
      request.problem_options.small_platform = config.small_platform;
      request.algorithm = algorithm;
      request.options = options;
      // Benches unwrap designs_as<NocDesign>() (e.g. the Fig. 3 EDP
      // selection), so cache hits must carry designs.
      request.need_designs = true;
      request.label = std::string(sim::app_name(cell.app)) + " " +
                      std::to_string(cell.num_objectives) + "-obj " +
                      algorithm;
      requests.push_back(std::move(request));
    }
  }

  api::RunControl control;
  const ScenarioSignalGuard signal_guard(control);
  control.on_progress([&requests](const api::RunProgress& progress) {
    if (!progress.finished) return;  // in-run cadence events stay quiet
    util::log_info() << requests[progress.batch_index].label << ": done ("
                     << progress.evaluations << " evals, "
                     << progress.seconds << " s"
                     << (progress.cache_hit ? ", cached" : "") << ") ["
                     << progress.completed << "/" << progress.batch_size
                     << "]";
  });

  std::vector<api::RunReport> reports;
  if (!config.shard_endpoints.empty()) {
    // $MOELA_BENCH_SHARDS: fan the grid across a moela_serve fleet.
    // JOBS/CACHE are daemon-side settings over there; reports come back
    // bit-identical to the in-process path for fixed seeds.
    api::ShardedExecutorConfig sharded_config;
    for (const std::string& spec : config.shard_endpoints) {
      api::ShardEndpoint endpoint;
      if (!api::parse_shard_endpoint(spec, endpoint)) {
        throw std::runtime_error("MOELA_BENCH_SHARDS: bad endpoint '" +
                                 spec + "'");
      }
      sharded_config.endpoints.push_back(std::move(endpoint));
    }
    // A bench sweep is throughput work: run it under the batch class so a
    // shared fleet keeps answering interactive submissions promptly.
    // Scheduling only — the merged reports stay bit-identical.
    sharded_config.priority = serve::sched::Priority::kBatch;
    util::log_info() << "sharding " << requests.size() << " runs ("
                     << cells.size() << " cells x " << per_cell
                     << " algorithms) across "
                     << sharded_config.endpoints.size()
                     << " daemon(s), evals<=" << options.max_evaluations;
    api::ShardedExecutor sharded(std::move(sharded_config));
    reports = sharded.run_all(requests, &control);
    for (const api::ShardStats& shard : sharded.shard_stats()) {
      if (!shard.healthy || shard.failures > 0) {
        util::log_warn() << "shard " << shard.endpoint << ": "
                         << shard.completed << " run(s), "
                         << shard.failures << " failure(s)"
                         << (shard.error.empty() ? "" : " — ")
                         << shard.error;
      }
    }
  } else {
    api::ResultCache cache(config.cache_dir);
    api::ExecutorConfig executor_config;
    executor_config.jobs = config.jobs;
    executor_config.cache = config.cache_dir.empty() ? nullptr : &cache;
    api::Executor executor(executor_config);

    util::log_info() << "scheduling " << requests.size() << " runs ("
                     << cells.size() << " cells x " << per_cell
                     << " algorithms) on " << executor.jobs()
                     << " worker(s), evals<=" << options.max_evaluations;

    reports = executor.run_all(requests, &control);
  }

  std::vector<AppScenarioResult> results;
  results.reserve(cells.size());
  for (std::size_t ci = 0; ci < cells.size(); ++ci) {
    AppScenarioResult result;
    result.app = cells[ci].app;
    result.num_objectives = cells[ci].num_objectives;
    for (std::size_t ai = 0; ai < per_cell; ++ai) {
      result.runs.push_back(std::move(reports[ci * per_cell + ai]));
      result.algorithm_names.push_back(result.runs.back().algorithm);
    }

    SnapshotSet snapshots;
    for (const auto& run : result.runs) snapshots.push_back(run.snapshots);
    result.bounds = global_bounds(snapshots);
    result.traces = phv_traces(snapshots, result.bounds);
    // T_stop: every algorithm received the same wall-clock budget; compare
    // at the earliest final-trace timestamp so every run has a sample at or
    // before the comparison point. A Ctrl-C'd grid can leave cancelled
    // runs with EMPTY traces — those are skipped here (and score PHV 0)
    // so the bench reports its partial tables instead of crashing.
    result.common_stop_seconds = 0.0;
    bool have_stop = false;
    for (const auto& trace : result.traces) {
      if (trace.empty()) continue;
      result.common_stop_seconds =
          have_stop
              ? std::min(result.common_stop_seconds, trace.back().seconds)
              : trace.back().seconds;
      have_stop = true;
    }
    for (const auto& trace : result.traces) {
      result.final_phv.push_back(
          trace.empty()
              ? 0.0
              : moo::phv_at_time(trace, result.common_stop_seconds));
    }
    results.push_back(std::move(result));
  }
  return results;
}

AppScenarioResult run_app_scenario(sim::RodiniaApp app,
                                   std::size_t num_objectives,
                                   const PaperBenchConfig& config) {
  return std::move(
      run_app_scenarios({ScenarioCell{app, num_objectives}}, config).front());
}

}  // namespace moela::exp
