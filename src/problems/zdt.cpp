#include "problems/zdt.hpp"

#include <cmath>
#include <numbers>

#include "moo/pareto.hpp"

namespace moela::problems {

moo::ObjectiveVector Zdt::evaluate(const Design& x) const {
  const double f1 = x[0];
  double g = 0.0;
  for (std::size_t i = 1; i < x.size(); ++i) g += x[i];
  g = 1.0 + 9.0 * g / static_cast<double>(x.size() - 1);
  const double ratio = f1 / g;
  double h = 0.0;
  switch (variant_) {
    case ZdtVariant::kZdt1:
      h = 1.0 - std::sqrt(ratio);
      break;
    case ZdtVariant::kZdt2:
      h = 1.0 - ratio * ratio;
      break;
    case ZdtVariant::kZdt3:
      h = 1.0 - std::sqrt(ratio) -
          ratio * std::sin(10.0 * std::numbers::pi * f1);
      break;
  }
  return {f1, g * h};
}

double Zdt::front_f2(ZdtVariant variant, double f1) {
  switch (variant) {
    case ZdtVariant::kZdt1:
      return 1.0 - std::sqrt(f1);
    case ZdtVariant::kZdt2:
      return 1.0 - f1 * f1;
    case ZdtVariant::kZdt3:
      return 1.0 - std::sqrt(f1) -
             f1 * std::sin(10.0 * std::numbers::pi * f1);
  }
  return 0.0;
}

std::vector<moo::ObjectiveVector> Zdt::pareto_front_samples(
    std::size_t n) const {
  std::vector<moo::ObjectiveVector> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double f1 =
        n > 1 ? static_cast<double>(i) / static_cast<double>(n - 1) : 0.0;
    out.push_back({f1, front_f2(variant_, f1)});
  }
  if (variant_ == ZdtVariant::kZdt3) {
    // ZDT3's envelope is only partially Pareto-optimal; keep the
    // non-dominated subset.
    const auto keep = moo::pareto_filter(out);
    std::vector<moo::ObjectiveVector> filtered;
    filtered.reserve(keep.size());
    for (std::size_t i : keep) filtered.push_back(out[i]);
    return filtered;
  }
  return out;
}

}  // namespace moela::problems
