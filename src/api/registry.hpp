// Runtime composition layer, part 3: the string-keyed optimizer registry.
//
// Algorithms register a factory under a stable key ("moela", "nsga2", ...)
// and callers compose algorithm x problem at runtime:
//
//   for (const auto& name : api::registry().names()) {
//     auto report = api::registry().create(name, problem)->run(options);
//   }
//
// The library's eight algorithms (MOELA + 3 ablation variants + 4
// baselines) self-register from api/optimizers.cpp on first registry
// access; applications can add their own optimizers with add().
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "api/any_problem.hpp"
#include "api/optimizer.hpp"

namespace moela::api {

class OptimizerRegistry {
 public:
  using Factory = std::function<std::unique_ptr<Optimizer>(AnyProblem)>;

  /// Registers a factory under `name`. Throws std::invalid_argument when
  /// the key is already taken (keys are unique, lookup must be unambiguous).
  /// `knob_keys` declares the KnobBag keys the optimizer's adapter reads
  /// (unknown_knob_keys() uses them to flag typos); omit it and the
  /// optimizer counts as accepting any key.
  void add(const std::string& name, Factory factory,
           std::vector<std::string> knob_keys = {});

  bool contains(const std::string& name) const {
    return factories_.count(name) > 0;
  }

  /// Registered keys, sorted.
  std::vector<std::string> names() const;

  /// The knob keys `name` declared at registration (empty when the
  /// optimizer declared none, i.e. accepts anything, or is unknown).
  std::vector<std::string> knob_keys(const std::string& name) const;

  /// The keys in `knobs` that NO optimizer in `algorithms` recognizes —
  /// likely typos, since unrecognized keys are silently ignored at run
  /// time. Conservative: if any selected optimizer did not declare its
  /// keys, nothing is reported.
  std::vector<std::string> unknown_knob_keys(
      const KnobBag& knobs, const std::vector<std::string>& algorithms) const;

  /// Instantiates the optimizer registered under `name`, bound to
  /// `problem`. Throws std::out_of_range for an unknown name (the message
  /// lists the registered keys).
  std::unique_ptr<Optimizer> create(const std::string& name,
                                    AnyProblem problem) const;

 private:
  struct Entry {
    Factory factory;
    /// Declared KnobBag keys; empty = accepts anything.
    std::vector<std::string> knob_keys;
  };
  std::map<std::string, Entry> factories_;
};

/// The process-wide registry, with the library's built-in algorithms
/// already registered.
OptimizerRegistry& registry();

}  // namespace moela::api
