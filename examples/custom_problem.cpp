// Using MOELA on YOUR OWN problem: anything satisfying the MooProblem
// concept plugs into every algorithm in the library — wrap it in
// api::AnyProblem once and pick algorithms from the registry by name.
//
// The example problem is a small multi-objective server-rack placement toy:
// place K services onto R racks to minimize (1) total inter-service network
// distance, (2) peak rack power, and (3) cooling imbalance. It demonstrates
// the full contract — evaluate / random_design / random_neighbor /
// crossover / mutate / features — on a discrete encoding that is NOT part
// of the library.
#include <algorithm>
#include <cstdio>
#include <string_view>
#include <vector>

#include "api/registry.hpp"
#include "moo/problem.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using moela::moo::ObjectiveVector;
using moela::util::Rng;

class RackPlacementProblem {
 public:
  /// Design: rack index per service.
  using Design = std::vector<std::uint16_t>;

  RackPlacementProblem(std::size_t services, std::size_t racks,
                       std::uint64_t seed)
      : services_(services), racks_(racks) {
    Rng rng(seed);
    // Symmetric traffic between services, power per service.
    traffic_.assign(services * services, 0.0);
    for (std::size_t i = 0; i < services; ++i) {
      for (std::size_t j = i + 1; j < services; ++j) {
        const double f = rng.chance(0.3) ? rng.uniform(1.0, 10.0) : 0.0;
        traffic_[i * services + j] = f;
        traffic_[j * services + i] = f;
      }
    }
    power_.resize(services);
    for (auto& p : power_) p = rng.uniform(0.2, 2.0);
  }

  std::size_t num_objectives() const { return 3; }

  ObjectiveVector evaluate(const Design& d) const {
    // (1) network cost: traffic-weighted rack distance (|r_i - r_j| as a
    //     proxy for row distance).
    double network = 0.0;
    for (std::size_t i = 0; i < services_; ++i) {
      for (std::size_t j = i + 1; j < services_; ++j) {
        const double f = traffic_[i * services_ + j];
        if (f > 0.0) {
          network += f * std::abs(static_cast<int>(d[i]) -
                                  static_cast<int>(d[j]));
        }
      }
    }
    // (2) peak rack power, (3) cooling imbalance (max - min rack power).
    std::vector<double> rack_power(racks_, 0.0);
    for (std::size_t i = 0; i < services_; ++i) rack_power[d[i]] += power_[i];
    const double peak =
        *std::max_element(rack_power.begin(), rack_power.end());
    const double low =
        *std::min_element(rack_power.begin(), rack_power.end());
    return {network, peak, peak - low};
  }

  Design random_design(Rng& rng) const {
    Design d(services_);
    for (auto& r : d) r = static_cast<std::uint16_t>(rng.below(racks_));
    return d;
  }
  Design random_neighbor(const Design& d, Rng& rng) const {
    Design out = d;
    out[rng.below(services_)] = static_cast<std::uint16_t>(rng.below(racks_));
    return out;
  }
  Design crossover(const Design& a, const Design& b, Rng& rng) const {
    Design child(a.size());
    for (std::size_t i = 0; i < child.size(); ++i) {
      child[i] = rng.chance(0.5) ? a[i] : b[i];
    }
    return child;
  }
  Design mutate(const Design& d, Rng& rng) const {
    Design out = d;
    const double p = 1.0 / static_cast<double>(services_);
    for (auto& r : out) {
      if (rng.chance(p)) r = static_cast<std::uint16_t>(rng.below(racks_));
    }
    return out;
  }
  std::vector<double> features(const Design& d) const {
    std::vector<double> f(d.begin(), d.end());
    return f;
  }
  std::size_t num_features() const { return services_; }

 private:
  std::size_t services_;
  std::size_t racks_;
  std::vector<double> traffic_;
  std::vector<double> power_;
};

// Compile-time proof that the custom type fulfills the contract.
static_assert(moela::moo::MooProblem<RackPlacementProblem>);

}  // namespace

int main() {
  // Wrap the custom problem once; every algorithm in the registry can now
  // run it without this file naming a single algorithm type.
  moela::api::AnyProblem problem(
      RackPlacementProblem(/*services=*/40, /*racks=*/8, /*seed=*/3));

  moela::api::RunOptions options;
  options.max_evaluations = 8000;
  options.seed = 1;
  options.population_size = 30;
  options.n_local = 4;
  options.knobs.set("moela.forest.trees", 8).set("moela.ls.max_evals", 40);

  // Any algorithm, same call. Compare MOELA against NSGA-II on the custom
  // problem purely through the string-keyed registry.
  moela::api::RunReport moela_report;
  for (const char* key : {"moela", "nsga2"}) {
    auto report = moela::api::registry().create(key, problem)->run(options);
    std::printf("%-7s explored %zu placements; front holds %zu options.\n",
                report.algorithm.c_str(), report.evaluations,
                report.final_front.size());
    if (std::string_view(key) == "moela") moela_report = std::move(report);
  }
  const auto& front = moela_report.final_front;

  moela::util::Table table("Sample trade-offs (all minimized)");
  table.set_header({"network cost", "peak rack power", "cooling imbalance"});
  for (std::size_t i = 0; i < front.size(); i += std::max<std::size_t>(
                                               1, front.size() / 10)) {
    table.add_row({moela::util::fmt(front[i][0], 1),
                   moela::util::fmt(front[i][1], 2),
                   moela::util::fmt(front[i][2], 2)});
  }
  table.print();
  return 0;
}
