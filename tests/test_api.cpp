// Tests for the runtime-composition layer (src/api/): the type-erased
// AnyProblem, the Optimizer interface, the string-keyed registry, the knob
// bag, the problem factory, and the equivalence between the deprecated
// exp::run_algorithm shim and the registry path.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "api/any_problem.hpp"
#include "api/optimizer.hpp"
#include "api/problems.hpp"
#include "api/registry.hpp"
#include "exp/experiment.hpp"
#include "problems/dtlz.hpp"
#include "problems/zdt.hpp"
#include "util/rng.hpp"

namespace moela::api {
namespace {

using problems::Zdt;
using problems::ZdtVariant;

AnyProblem zdt1(std::size_t num_variables = 10) {
  return AnyProblem(Zdt(ZdtVariant::kZdt1, num_variables));
}

RunOptions small_options() {
  RunOptions o;
  o.max_evaluations = 800;
  o.snapshot_interval = 200;
  o.seed = 5;
  o.population_size = 12;
  o.n_local = 3;
  // Keep the ML-assisted variants cheap.
  o.knobs.set("moela.forest.trees", 4)
      .set("moela.forest.max_depth", 5)
      .set("moela.ls.max_evals", 30)
      .set("moos.ls.max_evals", 30)
      .set("stage.forest.trees", 4)
      .set("stage.forest.max_depth", 5)
      .set("stage.ls.max_steps", 6);
  return o;
}

// --- AnyDesign / AnyProblem ----------------------------------------------

TEST(AnyDesign, WrapsAndUnwraps) {
  const auto d = AnyDesign::wrap<std::vector<double>>({1.0, 2.0});
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d.as<std::vector<double>>(), (std::vector<double>{1.0, 2.0}));
}

TEST(AnyDesign, WrongTypeThrows) {
  const auto d = AnyDesign::wrap<int>(7);
  EXPECT_THROW(d.as<double>(), std::runtime_error);
  EXPECT_THROW(AnyDesign().as<int>(), std::runtime_error);
}

TEST(AnyDesign, CopySharesPayload) {
  const auto a = AnyDesign::wrap<std::vector<double>>({3.0});
  const AnyDesign b = a;  // O(1): shares the immutable payload
  EXPECT_EQ(&a.as<std::vector<double>>(), &b.as<std::vector<double>>());
}

TEST(AnyProblem, ForwardsTheFullConcept) {
  const AnyProblem p = zdt1(8);
  const Zdt direct(ZdtVariant::kZdt1, 8);
  EXPECT_EQ(p.num_objectives(), 2u);
  EXPECT_EQ(p.num_features(), direct.num_features());

  util::Rng rng_any(3), rng_direct(3);
  const AnyDesign d = p.random_design(rng_any);
  const auto d_direct = direct.random_design(rng_direct);
  // Same seed, same draws: the erased path is bitwise-faithful.
  EXPECT_EQ(d.as<Zdt::Design>(), d_direct);
  EXPECT_EQ(p.evaluate(d), direct.evaluate(d_direct));
  EXPECT_EQ(p.features(d), direct.features(d_direct));
  EXPECT_EQ(p.random_neighbor(d, rng_any).as<Zdt::Design>(),
            direct.random_neighbor(d_direct, rng_direct));
  EXPECT_EQ(p.mutate(d, rng_any).as<Zdt::Design>(),
            direct.mutate(d_direct, rng_direct));
  EXPECT_EQ(p.crossover(d, d, rng_any).as<Zdt::Design>(),
            direct.crossover(d_direct, d_direct, rng_direct));
}

TEST(AnyProblem, TargetDowncast) {
  const AnyProblem p = zdt1();
  ASSERT_NE(p.target<Zdt>(), nullptr);
  EXPECT_EQ(p.target<Zdt>()->variant(), ZdtVariant::kZdt1);
  EXPECT_EQ(p.target<problems::Dtlz2>(), nullptr);
}

TEST(AnyProblem, EmptyThrows) {
  const AnyProblem p;
  EXPECT_FALSE(p.has_value());
  EXPECT_THROW(p.num_objectives(), std::runtime_error);
}

// --- KnobBag --------------------------------------------------------------

TEST(KnobBag, GetOrFallsBack) {
  KnobBag k;
  k.set("a", 2.5);
  EXPECT_DOUBLE_EQ(k.get_or("a", 0.0), 2.5);
  EXPECT_DOUBLE_EQ(k.get_or("missing", 7.0), 7.0);
  EXPECT_EQ(k.get_or("a", std::size_t{9}), 2u);
  EXPECT_TRUE(k.get_or("a", false));
  EXPECT_FALSE(k.get_or("missing", false));
}

TEST(KnobBag, NegativeValueForCountKnobFallsBack) {
  KnobBag k;
  k.set("count", -1.0);
  // Casting a negative double to size_t is UB; the bag must fall back.
  EXPECT_EQ(k.get_or("count", std::size_t{7}), 7u);
}

TEST(KnobBag, ParseAssignment) {
  KnobBag k;
  EXPECT_TRUE(k.parse_assignment("moela.delta=0.7"));
  EXPECT_DOUBLE_EQ(k.get_or("moela.delta", 0.0), 0.7);
  EXPECT_FALSE(k.parse_assignment("no-equals"));
  EXPECT_FALSE(k.parse_assignment("=1"));
  EXPECT_FALSE(k.parse_assignment("x="));
  EXPECT_FALSE(k.parse_assignment("x=abc"));
}

// --- Registry -------------------------------------------------------------

TEST(Registry, ListsAllEightBuiltins) {
  const auto names = registry().names();
  const std::set<std::string> got(names.begin(), names.end());
  const std::set<std::string> want{
      "moela",        "moela-noguide", "moela-ea-only", "moela-ls-only",
      "moead",        "moos",          "moo-stage",     "nsga2"};
  for (const auto& name : want) {
    EXPECT_TRUE(got.count(name)) << "missing optimizer: " << name;
  }
  EXPECT_GE(got.size(), 8u);
}

TEST(Registry, UnknownNameThrows) {
  EXPECT_THROW(registry().create("does-not-exist", zdt1()),
               std::out_of_range);
}

TEST(Registry, DuplicateRegistrationThrows) {
  EXPECT_THROW(registry().add("moela",
                              [](AnyProblem) -> std::unique_ptr<Optimizer> {
                                return nullptr;
                              }),
               std::invalid_argument);
}

TEST(Registry, EveryOptimizerSmokeRunsOnZdt1Deterministically) {
  const RunOptions options = small_options();
  for (const auto& name : registry().names()) {
    const RunReport a = registry().create(name, zdt1())->run(options);
    EXPECT_FALSE(a.algorithm.empty());
    EXPECT_GE(a.evaluations, options.max_evaluations) << name;
    EXPECT_FALSE(a.snapshots.empty()) << name;
    EXPECT_FALSE(a.final_front.empty()) << name;
    EXPECT_FALSE(a.final_designs.empty()) << name;
    EXPECT_EQ(a.final_designs.size(), a.final_objectives.size()) << name;
    // Designs round-trip to the concrete type.
    EXPECT_EQ(a.designs_as<Zdt::Design>().size(), a.final_designs.size());

    // Same seed => identical report (no wall-clock budget involved).
    const RunReport b = registry().create(name, zdt1())->run(options);
    EXPECT_EQ(a.final_front, b.final_front) << name;
    EXPECT_EQ(a.final_objectives, b.final_objectives) << name;
    EXPECT_EQ(a.evaluations, b.evaluations) << name;
  }
}

TEST(Registry, KnobsChangeBehavior) {
  RunOptions options = small_options();
  const RunReport base = registry().create("moead", zdt1())->run(options);
  options.knobs.set("moead.delta", 0.1).set("moead.neighborhood_size", 3);
  const RunReport tweaked = registry().create("moead", zdt1())->run(options);
  // Different mating behavior must change the search trajectory.
  EXPECT_NE(base.final_objectives, tweaked.final_objectives);
}

// --- Problem factory ------------------------------------------------------

TEST(ProblemFactory, BuildsEveryListedProblem) {
  for (const auto& name : problem_names()) {
    ProblemOptions options;
    options.small_platform = true;  // keep the NoC instance small
    const AnyProblem p = make_problem(name, options);
    ASSERT_TRUE(p.has_value()) << name;
    util::Rng rng(1);
    const AnyDesign d = p.random_design(rng);
    const auto obj = p.evaluate(d);
    EXPECT_EQ(obj.size(), p.num_objectives()) << name;
    EXPECT_EQ(p.features(d).size(), p.num_features()) << name;
  }
}

TEST(ProblemFactory, UnknownProblemThrows) {
  EXPECT_THROW(make_problem("no-such-problem"), std::out_of_range);
}

TEST(ProblemFactory, HonorsInstanceOptions) {
  ProblemOptions options;
  options.num_objectives = 4;
  EXPECT_EQ(make_problem("dtlz2", options).num_objectives(), 4u);
  options.num_objectives = 3;
  EXPECT_EQ(make_problem("knapsack", options).num_objectives(), 3u);
  EXPECT_THROW(make_problem("zdt1", options), std::invalid_argument);
}

TEST(Registry, AblationSwitchKnobsMatchTheirVariants) {
  // Turning a component off via knob on "moela" must reproduce the
  // dedicated ablation variant (the old enum dispatch honored
  // RunConfig.moela's switches the same way).
  RunOptions options = small_options();
  options.knobs.set("moela.use_ea", 0.0);
  const RunReport via_knob = registry().create("moela", zdt1())->run(options);
  const RunReport via_variant =
      registry().create("moela-ls-only", zdt1())->run(small_options());
  EXPECT_EQ(via_knob.final_objectives, via_variant.final_objectives);
  // And the variant pins its component: the knob cannot switch it back on.
  RunOptions force_on = small_options();
  force_on.knobs.set("moela.use_ea", 1.0);
  const RunReport pinned =
      registry().create("moela-ls-only", zdt1())->run(force_on);
  EXPECT_EQ(pinned.final_objectives, via_variant.final_objectives);
}

// --- Shim equivalence -----------------------------------------------------

TEST(ShimEquivalence, RunAlgorithmMatchesRegistryPath) {
  // Every field to_run_options() maps is set to a NON-default value: the
  // knob keys are string literals on both sides (exp/experiment.cpp writes
  // them, api/optimizers.cpp reads them), and a renamed or mistyped key
  // silently falls back to the library default — which this test then
  // catches as a result divergence.
  exp::RunConfig config;
  config.max_evaluations = 800;
  config.snapshot_interval = 200;
  config.seed = 11;
  config.population_size = 12;
  config.n_local = 3;
  config.moela.iter_early = 3;
  config.moela.delta = 0.8;
  config.moela.neighborhood_size = 5;
  config.moela.max_generations = 900;
  config.moela.train_capacity = 900;
  config.moela.train_interval = 2;
  config.moela.max_replacements = 1;
  config.moela.guide_mode = core::GuideMode::kImprovement;
  config.moela.local_search.patience = 4;
  config.moela.local_search.max_steps = 12;
  config.moela.local_search.max_evaluations = 30;
  config.moela.forest.num_trees = 4;
  config.moela.forest.max_features = 3;
  config.moela.forest.max_depth = 5;
  config.moela.forest.min_samples_leaf = 3;
  config.moela.forest.min_samples_split = 5;
  config.moela.forest.subsample = 0.8;
  config.moos.max_iterations = 900;
  config.moos.temperature = 0.2;
  config.moos.gain_ema = 0.4;
  config.moos.search.patience = 3;
  config.moos.search.max_steps = 7;
  config.moos.search.max_evaluations = 25;
  config.stage.max_iterations = 900;
  config.stage.iter_early = 3;
  config.stage.meta_candidates = 16;
  config.stage.train_capacity = 800;
  config.stage.forest.num_trees = 4;
  config.stage.forest.max_features = 3;
  config.stage.forest.max_depth = 5;
  config.stage.forest.min_samples_leaf = 3;
  config.stage.forest.min_samples_split = 5;
  config.stage.forest.subsample = 0.8;
  config.stage.search.max_steps = 6;
  config.stage.search.neighbors_per_step = 3;

  const Zdt problem(ZdtVariant::kZdt1, 10);
  for (exp::Algorithm a :
       {exp::Algorithm::kMoela, exp::Algorithm::kMoeaD, exp::Algorithm::kMoos,
        exp::Algorithm::kMooStage, exp::Algorithm::kNsga2}) {
    const auto shim = exp::run_algorithm(a, problem, config);
    const RunReport direct =
        registry()
            .create(exp::algorithm_key(a), AnyProblem(problem))
            ->run(exp::to_run_options(config));
    EXPECT_EQ(shim.final_front, direct.final_front)
        << exp::algorithm_name(a);
    EXPECT_EQ(shim.final_objectives, direct.final_objectives)
        << exp::algorithm_name(a);
    EXPECT_EQ(shim.evaluations, direct.evaluations) << exp::algorithm_name(a);
    ASSERT_EQ(shim.snapshots.size(), direct.snapshots.size());
    for (std::size_t i = 0; i < shim.snapshots.size(); ++i) {
      EXPECT_EQ(shim.snapshots[i].front, direct.snapshots[i].front);
    }
  }
}

}  // namespace
}  // namespace moela::api
