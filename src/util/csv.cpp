#include "util/csv.hpp"

#include <stdexcept>

namespace moela::util {

CsvWriter::CsvWriter(const std::string& path,
                     std::vector<std::string> header)
    : out_(path), width_(header.size()) {
  if (!out_) return;
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (i) out_ << ',';
    out_ << header[i];
  }
  out_ << '\n';
}

void CsvWriter::write_row(const std::vector<double>& values) {
  if (values.size() != width_) {
    throw std::invalid_argument("CsvWriter row width mismatch");
  }
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) out_ << ',';
    out_ << values[i];
  }
  out_ << '\n';
}

void CsvWriter::write_row(const std::vector<std::string>& values) {
  if (values.size() != width_) {
    throw std::invalid_argument("CsvWriter row width mismatch");
  }
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) out_ << ',';
    out_ << values[i];
  }
  out_ << '\n';
}

void CsvWriter::flush() { out_.flush(); }

}  // namespace moela::util
