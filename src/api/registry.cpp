#include "api/registry.hpp"

#include <stdexcept>
#include <utility>

namespace moela::api {

namespace detail {
// Defined in api/optimizers.cpp. Called from registry() so the linker can
// never drop the built-in registrations from a static-library build (the
// classic self-registration pitfall).
void register_builtin_optimizers(OptimizerRegistry& registry);
}  // namespace detail

void OptimizerRegistry::add(const std::string& name, Factory factory) {
  if (!factory) {
    throw std::invalid_argument("OptimizerRegistry: null factory for '" +
                                name + "'");
  }
  if (!factories_.emplace(name, std::move(factory)).second) {
    throw std::invalid_argument("OptimizerRegistry: duplicate key '" + name +
                                "'");
  }
}

std::vector<std::string> OptimizerRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, _] : factories_) out.push_back(name);
  return out;  // std::map iterates in sorted key order
}

std::unique_ptr<Optimizer> OptimizerRegistry::create(
    const std::string& name, AnyProblem problem) const {
  auto it = factories_.find(name);
  if (it == factories_.end()) {
    std::string known;
    for (const auto& n : names()) {
      if (!known.empty()) known += ", ";
      known += n;
    }
    throw std::out_of_range("OptimizerRegistry: unknown optimizer '" + name +
                            "' (registered: " + known + ")");
  }
  return it->second(std::move(problem));
}

OptimizerRegistry& registry() {
  static OptimizerRegistry* instance = [] {
    auto* r = new OptimizerRegistry();
    detail::register_builtin_optimizers(*r);
    return r;
  }();
  return *instance;
}

}  // namespace moela::api
