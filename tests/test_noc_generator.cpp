#include "noc/generator.hpp"

#include <gtest/gtest.h>

#include "noc/constraints.hpp"
#include "util/rng.hpp"

namespace moela::noc {
namespace {

struct GenCase {
  const char* name;
  PlatformSpec (*make)();
};

class GeneratorSweep
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {
 protected:
  PlatformSpec make_spec() const {
    return std::get<0>(GetParam()) == 0 ? PlatformSpec::small_3x3x3()
                                        : PlatformSpec::paper_4x4x4();
  }
  std::uint64_t seed() const { return std::get<1>(GetParam()); }
};

TEST_P(GeneratorSweep, RandomDesignIsFeasible) {
  const auto spec = make_spec();
  DesignOps ops(spec);
  util::Rng rng(seed());
  for (int i = 0; i < 5; ++i) {
    const NocDesign d = ops.random_design(rng);
    const auto report = validate(spec, d);
    EXPECT_TRUE(report.ok())
        << (report.violations.empty() ? "ok" : report.violations.front());
  }
}

TEST_P(GeneratorSweep, NeighborsAreFeasibleAndUsuallyDifferent) {
  const auto spec = make_spec();
  DesignOps ops(spec);
  util::Rng rng(seed() + 100);
  const NocDesign d = ops.random_design(rng);
  int different = 0;
  for (int i = 0; i < 20; ++i) {
    const NocDesign n = ops.random_neighbor(d, rng);
    EXPECT_TRUE(is_feasible(spec, n));
    if (!(n == d)) ++different;
  }
  EXPECT_GE(different, 18);
}

TEST_P(GeneratorSweep, CrossoverIsFeasible) {
  const auto spec = make_spec();
  DesignOps ops(spec);
  util::Rng rng(seed() + 200);
  const NocDesign a = ops.random_design(rng);
  const NocDesign b = ops.random_design(rng);
  for (int i = 0; i < 10; ++i) {
    const NocDesign child = ops.crossover(a, b, rng);
    const auto report = validate(spec, child);
    EXPECT_TRUE(report.ok());
  }
}

TEST_P(GeneratorSweep, MutateIsFeasible) {
  const auto spec = make_spec();
  DesignOps ops(spec);
  util::Rng rng(seed() + 300);
  NocDesign d = ops.random_design(rng);
  for (int i = 0; i < 10; ++i) {
    d = ops.mutate(d, rng);
    EXPECT_TRUE(is_feasible(spec, d));
  }
}

INSTANTIATE_TEST_SUITE_P(
    PlatformsAndSeeds, GeneratorSweep,
    ::testing::Combine(::testing::Values(0, 1),
                       ::testing::Values(1u, 2u, 3u, 17u, 91u)));

TEST(Generator, RandomDesignsDiffer) {
  const auto spec = PlatformSpec::small_3x3x3();
  DesignOps ops(spec);
  util::Rng rng(5);
  const NocDesign a = ops.random_design(rng);
  const NocDesign b = ops.random_design(rng);
  EXPECT_FALSE(a == b);
}

TEST(Generator, DeterministicGivenSeed) {
  const auto spec = PlatformSpec::small_3x3x3();
  DesignOps ops(spec);
  util::Rng r1(7), r2(7);
  EXPECT_EQ(ops.random_design(r1), ops.random_design(r2));
}

TEST(Generator, SwapCoresPreservesPermutationAndLlcRule) {
  const auto spec = PlatformSpec::paper_4x4x4();
  DesignOps ops(spec);
  util::Rng rng(11);
  NocDesign d = ops.random_design(rng);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(ops.swap_cores(d, rng));
    const auto report = validate(spec, d);
    ASSERT_TRUE(report.placement_is_permutation);
    ASSERT_TRUE(report.llcs_on_edge);
  }
}

TEST(Generator, MovePlanarLinkKeepsBudgetAndConnectivity) {
  const auto spec = PlatformSpec::paper_4x4x4();
  DesignOps ops(spec);
  util::Rng rng(13);
  NocDesign d = ops.random_design(rng);
  int moved = 0;
  for (int i = 0; i < 50; ++i) {
    if (ops.move_planar_link(d, rng)) {
      ++moved;
      ASSERT_TRUE(is_feasible(spec, d));
    }
  }
  EXPECT_GT(moved, 40);  // the move should almost always succeed
}

TEST(Generator, MoveVerticalLinkNoopWhenSaturated) {
  // paper_4x4x4 uses all 48 TSV slots; vertical moves must be rejected.
  const auto spec = PlatformSpec::paper_4x4x4();
  DesignOps ops(spec);
  util::Rng rng(17);
  NocDesign d = ops.random_design(rng);
  const NocDesign before = d;
  EXPECT_FALSE(ops.move_vertical_link(d, rng));
  EXPECT_EQ(d, before);
}

TEST(Generator, MoveVerticalLinkWorksWhenUnsaturated) {
  // A platform with TSV budget below the candidate count.
  std::vector<PeType> cores;
  cores.insert(cores.end(), 4, PeType::kCpu);
  cores.insert(cores.end(), 15, PeType::kGpu);
  cores.insert(cores.end(), 8, PeType::kLlc);
  const PlatformSpec spec(3, 3, 3, std::move(cores), 36, 12);
  DesignOps ops(spec);
  util::Rng rng(19);
  NocDesign d = ops.random_design(rng);
  int moved = 0;
  for (int i = 0; i < 30; ++i) {
    if (ops.move_vertical_link(d, rng)) {
      ++moved;
      ASSERT_TRUE(is_feasible(spec, d));
    }
  }
  EXPECT_GT(moved, 15);
}

TEST(Generator, CrossoverInheritsParentStructure) {
  const auto spec = PlatformSpec::small_3x3x3();
  DesignOps ops(spec);
  util::Rng rng(23);
  const NocDesign a = ops.random_design(rng);
  const NocDesign b = ops.random_design(rng);
  const NocDesign child = ops.crossover(a, b, rng);
  // Every placement position comes from one of the parents (CX property).
  for (TileId t = 0; t < spec.num_tiles(); ++t) {
    EXPECT_TRUE(child.placement[t] == a.placement[t] ||
                child.placement[t] == b.placement[t])
        << "tile " << t;
  }
  // Links common to both parents are strongly preferred: count inherited.
  std::vector<Link> common;
  std::set_intersection(a.links.begin(), a.links.end(), b.links.begin(),
                        b.links.end(), std::back_inserter(common));
  std::size_t kept = 0;
  for (const Link& l : common) {
    if (std::binary_search(child.links.begin(), child.links.end(), l)) ++kept;
  }
  // All common links fit within budget (they are a subset of each parent's
  // feasible set), so nearly all should be kept; allow slack for degree
  // interactions during tree construction.
  EXPECT_GE(kept * 10, common.size() * 8);
}

TEST(Generator, CrossoverOfIdenticalParentsKeepsPlacement) {
  const auto spec = PlatformSpec::small_3x3x3();
  DesignOps ops(spec);
  util::Rng rng(29);
  const NocDesign a = ops.random_design(rng);
  const NocDesign child = ops.crossover(a, a, rng);
  EXPECT_EQ(child.placement, a.placement);
  EXPECT_EQ(child.links, a.links);  // all links are "common"
}

}  // namespace
}  // namespace moela::noc
