// Pareto archive of objective vectors with user payload ids.
//
// Algorithms use the archive to track every non-dominated point seen over a
// run. The harness computes anytime-PHV from archive snapshots; MOOS and
// MOO-STAGE run their local searches over the archive itself.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "moo/objective.hpp"

namespace moela::moo {

/// A non-dominated set with an optional capacity bound. Each entry carries an
/// opaque `id` so callers can map archive members back to designs.
class ParetoArchive {
 public:
  struct Entry {
    ObjectiveVector objectives;
    std::size_t id = 0;
  };

  /// `capacity` == 0 means unbounded. When bounded and full, the entry with
  /// the smallest crowding distance is evicted to preserve spread.
  explicit ParetoArchive(std::size_t capacity = 0) : capacity_(capacity) {}

  /// Attempts to insert. Returns true iff the point enters the archive
  /// (i.e. it is not dominated by, nor equal to, an existing entry).
  /// Dominated incumbents are removed.
  bool insert(ObjectiveVector objectives, std::size_t id);

  /// True if `obj` would be accepted (non-dominated vs. current content).
  bool would_accept(const ObjectiveVector& obj) const;

  const std::vector<Entry>& entries() const { return entries_; }
  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  void clear() { entries_.clear(); }

  /// All objective vectors (for metrics computation).
  std::vector<ObjectiveVector> objective_set() const;

 private:
  void evict_most_crowded();

  std::size_t capacity_;
  std::vector<Entry> entries_;
};

}  // namespace moela::moo
