#include "serve/server.hpp"

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include "api/problems.hpp"
#include "api/registry.hpp"
#include "api/serde.hpp"
#include "api/snapshot.hpp"
#include "util/log.hpp"
#include "util/numeric.hpp"

namespace moela::serve {
namespace {

using util::Json;

/// Best-effort id extraction so even a malformed verb object gets a
/// correlated error response.
std::uint64_t message_id(const Json& message) {
  if (const Json* id = message.find("id")) {
    try {
      return id->as_u64();
    } catch (const util::JsonError&) {
    }
  }
  return 0;
}

void close_fd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

/// The cache-counter block shared by the cache_stats and health verbs
/// (one source of truth so the two views cannot drift).
Json cache_counters_json(bool enabled, const api::ResultCache* cache) {
  Json out = Json::object();
  out.set("enabled", enabled);
  if (enabled && cache != nullptr) {
    const api::ResultCache::Stats stats = cache->stats();
    out.set("memory_hits", stats.memory_hits)
        .set("disk_hits", stats.disk_hits)
        .set("misses", stats.misses)
        .set("stores", stats.stores)
        .set("evictions", stats.evictions);
  }
  return out;
}

}  // namespace

Server::Server(ServeConfig config)
    : config_(std::move(config)),
      cache_(config_.use_cache
                 ? (config_.cache_dir.empty()
                        ? api::ResultCache::default_disk_dir()
                        : config_.cache_dir)
                 : std::string()) {
  api::ExecutorConfig executor_config;
  executor_config.jobs = config_.jobs;
  executor_config.cache = config_.use_cache ? &cache_ : nullptr;
  executor_config.run_log = config_.run_log;
  executor_config.metrics = &metrics_;
  executor_config.snapshot_dir = config_.snapshot_dir;
  // The scheduler brings the worker pool; the Executor contributes its
  // execute path (cache, run-log, provenance) through execute_one.
  executor_config.pool = false;
  executor_ = std::make_unique<api::Executor>(executor_config);
  if (config_.use_cache) cache_.set_metrics(&metrics_);
  sched::SchedulerConfig sched_config;
  sched_config.workers = executor_->jobs();
  sched_config.weights = config_.weights;
  sched_config.max_queued = config_.max_queued;
  sched_config.metrics = &metrics_;
  scheduler_ = std::make_unique<sched::Scheduler>(*executor_, sched_config);

  // Pre-resolve the per-verb dispatch telemetry for the protocol's fixed
  // verb set; handle_line then only touches atomics. Anything else (typos,
  // garbage lines) shares the "other" series so clients cannot grow label
  // cardinality.
  const char* request_help = "Protocol requests handled by verb";
  const char* latency_help = "Line-handling latency by verb, seconds (for "
                             "'run': admission + dispatch, not run time)";
  const std::vector<double> latency_bounds =
      util::exponential_bounds(1e-5, 4.0, 12);
  for (const char* verb :
       {"ping", "list_algorithms", "list_problems", "cache_stats", "health",
        "metrics", "run", "cancel", "shutdown", "other"}) {
    VerbMetrics vm;
    vm.requests =
        &metrics_.counter("moela_requests_total", request_help,
                          {{"verb", verb}});
    vm.seconds = &metrics_.histogram("moela_request_seconds", latency_help,
                                     latency_bounds, {{"verb", verb}});
    if (std::string(verb) == "other") {
      other_verb_metrics_ = vm;
    } else {
      verb_metrics_.emplace(verb, vm);
    }
  }

  // Alias the Executor's checkpoint counters (same name + help resolve to
  // the same series) so the health verb reads them without a name lookup.
  runs_resumed_counter_ = &metrics_.counter(
      "moela_runs_resumed_total",
      "Runs resumed from a RunSnapshot instead of starting fresh");
  snapshots_written_counter_ = &metrics_.counter(
      "moela_snapshots_written_total",
      "RunSnapshots persisted to the snapshot directory");
}

Server::~Server() {
  request_shutdown();
  wait();
}

void Server::start() {
  if (started_) throw std::runtime_error("moela_serve: already started");

  if (::pipe(signal_pipe_) != 0) {
    throw std::runtime_error("moela_serve: pipe() failed");
  }
  ::fcntl(signal_pipe_[0], F_SETFD, FD_CLOEXEC);
  ::fcntl(signal_pipe_[1], F_SETFD, FD_CLOEXEC);

  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* resolved = nullptr;
  const std::string port_text = util::dec(config_.port);
  if (::getaddrinfo(config_.host.c_str(), port_text.c_str(), &hints,
                    &resolved) != 0 ||
      resolved == nullptr) {
    throw std::runtime_error("moela_serve: cannot resolve host '" + config_.host +
                             "'");
  }
  listen_fd_ = ::socket(resolved->ai_family, resolved->ai_socktype,
                        resolved->ai_protocol);
  if (listen_fd_ < 0) {
    ::freeaddrinfo(resolved);
    throw std::runtime_error("moela_serve: socket() failed");
  }
  const int enable = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &enable,
               sizeof(enable));
  const int bind_rc =
      ::bind(listen_fd_, resolved->ai_addr, resolved->ai_addrlen);
  ::freeaddrinfo(resolved);
  if (bind_rc != 0 || ::listen(listen_fd_, 128) != 0) {
    const std::string what = std::strerror(errno);
    close_fd(listen_fd_);
    throw std::runtime_error("moela_serve: cannot listen on " + config_.host +
                             ":" + port_text + " (" + what + ")");
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0) {
    port_ = ntohs(bound.sin_port);
  } else {
    port_ = config_.port;
  }

  started_ = true;
  started_at_.reset();  // uptime counts from a successful bind
  accept_thread_ = std::thread([this] { accept_loop(); });
  watcher_thread_ = std::thread([this] { watcher_loop(); });
}

void Server::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener shut down (drain) or fatal error
    }
    if (shutdown_requested()) {
      ::close(fd);
      break;
    }
    reap_connections();
    auto connection = std::make_shared<Connection>(
        fd, next_lane_.fetch_add(1, std::memory_order_relaxed));
    util::MutexLock lock(conn_mutex_);
    connections_.emplace_back(connection, std::thread([this, connection] {
                                serve_connection(connection);
                              }));
    if (shutdown_requested()) {
      // begin_drain() may have run between accept() and the emplace above
      // and missed this connection; nudge its reader ourselves (stop_ is
      // set before the watcher drains, so one of the two always sees it).
      ::shutdown(connection->fd, SHUT_RD);
    }
  }
}

void Server::watcher_loop() {
  for (;;) {
    char wakeups[64];
    ssize_t n;
    do {
      n = ::read(signal_pipe_[0], wakeups, sizeof(wakeups));
    } while (n < 0 && errno == EINTR);
    if (n <= 0 || watcher_exit_.load(std::memory_order_relaxed)) return;
    if (shutdown_requested()) begin_drain();
    if (hard_stop_.load(std::memory_order_relaxed)) {
      util::MutexLock lock(control_mutex_);
      for (api::RunControl* control : active_controls_) {
        control->request_stop();
      }
    }
  }
}

void Server::begin_drain() {
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  util::MutexLock lock(conn_mutex_);
  for (auto& [connection, thread] : connections_) {
    // Nudge idle readers; batch responses still flow (write side stays
    // open) and each reader exits once its batches are joined.
    if (!connection->done.load(std::memory_order_relaxed)) {
      ::shutdown(connection->fd, SHUT_RD);
    }
  }
}

void Server::reap_connections() {
  util::MutexLock lock(conn_mutex_);
  for (auto it = connections_.begin(); it != connections_.end();) {
    if (it->first->done.load(std::memory_order_acquire) &&
        it->second.joinable()) {
      it->second.join();
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void Server::wait() {
  util::MutexLock lock(wait_mutex_);
  if (!started_ || joined_) return;
  if (accept_thread_.joinable()) accept_thread_.join();
  // Re-issue the drain nudge now that the accept loop is gone: the
  // watcher's begin_drain() and the accept loop's own nudge cover the
  // registration window between them, but a reader parked in recv() can
  // still miss its SHUT_RD wake in that instant; nudging again here is
  // idempotent and guarantees every reader unblocks before the joins
  // below.
  begin_drain();
  // No new connections can appear past this point.
  std::vector<std::pair<std::shared_ptr<Connection>, std::thread>> remaining;
  {
    util::MutexLock conn_lock(conn_mutex_);
    remaining.swap(connections_);
  }
  for (auto& [connection, thread] : remaining) {
    if (thread.joinable()) thread.join();
  }
  watcher_exit_.store(true, std::memory_order_relaxed);
  const char byte = 'x';
  [[maybe_unused]] ssize_t ignored = ::write(signal_pipe_[1], &byte, 1);
  if (watcher_thread_.joinable()) watcher_thread_.join();
  close_fd(listen_fd_);
  close_fd(signal_pipe_[0]);
  close_fd(signal_pipe_[1]);
  joined_ = true;
}

void Server::request_shutdown() { signal_shutdown(); }

void Server::signal_shutdown() {
  stop_.store(true, std::memory_order_relaxed);
  if (signal_pipe_[1] >= 0) {
    const char byte = 's';
    [[maybe_unused]] ssize_t ignored = ::write(signal_pipe_[1], &byte, 1);
  }
}

void Server::signal_hard_stop() {
  hard_stop_.store(true, std::memory_order_relaxed);
  signal_shutdown();
}

void Server::serve_connection(const std::shared_ptr<Connection>& connection) {
  LineReader reader(connection->fd);
  std::string line;
  while (reader.read_line(line)) {
    if (line.empty()) continue;
    handle_line(connection, line);
  }
  // Reader is done (EOF, error, or drain nudge): finish in-flight batches
  // so their responses go out, then close.
  std::vector<std::pair<std::shared_ptr<std::atomic<bool>>, std::thread>>
      batches;
  {
    util::MutexLock lock(connection->batch_mutex);
    batches.swap(connection->batches);
  }
  for (auto& [done, thread] : batches) {
    if (thread.joinable()) thread.join();
  }
  // Close under conn_mutex_ so begin_drain() can never shutdown() an fd
  // number the OS has already reused.
  util::MutexLock lock(conn_mutex_);
  ::close(connection->fd);
  connection->done.store(true, std::memory_order_release);
}

void Server::handle_line(const std::shared_ptr<Connection>& connection,
                         const std::string& line) {
  util::Timer verb_timer;
  auto observe = [&](const VerbMetrics& vm) {
    if (vm.requests != nullptr) vm.requests->add();
    if (vm.seconds != nullptr) vm.seconds->observe(verb_timer.elapsed_seconds());
  };
  std::string parse_error;
  const auto message = Json::try_parse(line, &parse_error);
  auto respond = [&](const Json& response) {
    util::MutexLock lock(connection->write_mutex);
    send_json(connection->fd, response);
  };
  if (!message.has_value()) {
    respond(make_error(0, "bad JSON: " + parse_error));
    observe(other_verb_metrics_);
    return;
  }
  const std::uint64_t id = message_id(*message);
  if (!message->is_object()) {
    respond(make_error(id, "request must be a JSON object"));
    observe(other_verb_metrics_);
    return;
  }
  std::string verb;
  if (const Json* v = message->find("verb"); v != nullptr && v->is_string()) {
    verb = v->as_string();
  }
  // Latency is observed on EVERY exit path below (the guard fires on
  // return); for "run" it measures admission + dispatch — run wall time
  // has its own histogram (moela_run_seconds).
  const auto vm_it = verb_metrics_.find(verb);
  const VerbMetrics& vm =
      vm_it == verb_metrics_.end() ? other_verb_metrics_ : vm_it->second;
  struct LatencyGuard {
    decltype(observe)& fire;
    const VerbMetrics& vm;
    ~LatencyGuard() { fire(vm); }
  } latency_guard{observe, vm};

  if (verb == "ping") {
    Json response = make_ok(id);
    response.set("server", "moela_serve")
        .set("protocol", kProtocolVersion)
        .set("jobs", executor_->jobs());
    respond(response);
  } else if (verb == "list_algorithms") {
    Json algorithms = Json::array();
    for (const auto& name : api::registry().names()) {
      Json entry = Json::object();
      Json knobs = Json::array();
      for (const auto& knob : api::registry().knob_keys(name)) {
        knobs.append(knob);
      }
      entry.set("name", name).set("knobs", std::move(knobs));
      algorithms.append(std::move(entry));
    }
    Json response = make_ok(id);
    response.set("algorithms", std::move(algorithms));
    respond(response);
  } else if (verb == "list_problems") {
    Json problems = Json::array();
    for (const auto& name : api::problem_names()) problems.append(name);
    Json response = make_ok(id);
    response.set("problems", std::move(problems));
    respond(response);
  } else if (verb == "cache_stats") {
    Json cache = cache_counters_json(config_.use_cache, &cache_);
    if (config_.use_cache) {
      cache.set("dir", cache_.disk_dir())
          .set("max_disk_bytes",
               static_cast<std::uint64_t>(cache_.max_disk_bytes()));
    }
    Json response = make_ok(id);
    response.set("cache", std::move(cache))
        .set("runs_handled", runs_handled());
    respond(response);
  } else if (verb == "health") {
    // One-line load snapshot for shard placement (api::ShardedExecutor
    // probes this before partitioning a batch): capacity, current load,
    // scheduler backlog (total and per class), lifetime counters, and
    // whether new runs would be accepted.
    Json cache = cache_counters_json(config_.use_cache, &cache_);
    Json response = make_ok(id);
    response.set("server", "moela_serve")
        .set("protocol", kProtocolVersion)
        .set("version", kServerVersion)
        .set("uptime_seconds", uptime_seconds())
        .set("jobs", static_cast<std::uint64_t>(executor_->jobs()))
        .set("inflight", static_cast<std::uint64_t>(inflight_total()))
        .set("max_inflight",
             static_cast<std::uint64_t>(config_.max_inflight))
        .set("queued", static_cast<std::uint64_t>(scheduler_->queued_total()))
        .set("running",
             static_cast<std::uint64_t>(scheduler_->running_total()))
        .set("max_queued", static_cast<std::uint64_t>(config_.max_queued))
        .set("classes", sched_classes_json())
        .set("runs_handled", runs_handled())
        .set("runs_cancelled", runs_cancelled())
        .set("runs_resumed", runs_resumed_counter_->value())
        .set("snapshots_written", snapshots_written_counter_->value())
        .set("accepting", !shutdown_requested())
        .set("cache", std::move(cache));
    respond(response);
  } else if (verb == "metrics") {
    // The registry's JSON snapshot, plus the same identity/uptime header
    // as health so one verb suffices for a scraper.
    Json response = make_ok(id);
    response.set("server", "moela_serve")
        .set("protocol", kProtocolVersion)
        .set("version", kServerVersion)
        .set("uptime_seconds", uptime_seconds())
        .set("metrics", metrics_.snapshot_json());
    respond(response);
  } else if (verb == "run") {
    handle_run(connection, id, *message);
  } else if (verb == "cancel") {
    handle_cancel(connection, id, *message);
  } else if (verb == "shutdown") {
    Json response = make_ok(id);
    response.set("shutting_down", true);
    respond(response);
    util::log_info() << "moela_serve: shutdown requested by client";
    request_shutdown();
  } else {
    respond(make_error(id, verb.empty() ? "missing verb"
                                        : "unknown verb '" + verb + "'"));
  }
}

Json Server::sched_classes_json() const {
  Json classes = Json::object();
  for (std::size_t c = 0; c < sched::kNumClasses; ++c) {
    const auto priority = static_cast<sched::Priority>(c);
    const sched::ClassCounters counters = scheduler_->counters(priority);
    Json entry = Json::object();
    entry.set("queued", counters.queued)
        .set("running", counters.running)
        .set("completed", counters.completed)
        .set("shed", counters.shed);
    classes.set(sched::priority_name(priority), std::move(entry));
  }
  return classes;
}

void Server::handle_run(const std::shared_ptr<Connection>& connection,
                        std::uint64_t id, const Json& message) {
  auto respond_error = [&](const std::string& error) {
    util::MutexLock lock(connection->write_mutex);
    send_json(connection->fd, make_error(id, error));
  };
  if (shutdown_requested()) {
    respond_error("server is shutting down");
    return;
  }
  const Json* requests_json = message.find("requests");
  if (requests_json == nullptr || !requests_json->is_array() ||
      requests_json->as_array().empty()) {
    respond_error("run: 'requests' must be a non-empty array");
    return;
  }
  std::vector<api::RunRequest> requests;
  requests.reserve(requests_json->as_array().size());
  try {
    for (const auto& entry : requests_json->as_array()) {
      requests.push_back(api::request_from_json(entry));
    }
  } catch (const util::JsonError& e) {
    respond_error(std::string("run: ") + e.what());
    return;
  }
  // Validate algorithm keys up front: one typo should fail the batch with
  // a clear error, not surface as N identical per-report errors.
  for (const auto& request : requests) {
    if (!api::registry().contains(request.algorithm)) {
      respond_error("run: unknown algorithm '" + request.algorithm + "'");
      return;
    }
  }
  bool stream_progress = false;
  if (const Json* p = message.find("progress");
      p != nullptr && p->is_bool()) {
    stream_progress = p->as_bool();
  }
  // The batch's scheduling class. Optional and additive on the wire:
  // absent means normal, a typo is an error (misclassifying a request is
  // worse than rejecting it).
  sched::Priority priority = sched::Priority::kNormal;
  if (const Json* p = message.find("priority")) {
    if (!p->is_string() || !sched::parse_priority(p->as_string(), priority)) {
      respond_error("run: bad priority '" +
                    (p->is_string() ? p->as_string()
                                    : std::string("<non-string>")) +
                    "' (expected interactive | normal | batch)");
      return;
    }
  }

  // The per-connection in-flight bound: reserve slots or reject.
  const std::size_t batch_size = requests.size();
  std::size_t inflight = connection->inflight.load(std::memory_order_relaxed);
  for (;;) {
    if (inflight + batch_size > config_.max_inflight) {
      respond_error("run: in-flight limit exceeded (" +
                    util::dec(inflight) + " queued + " +
                    util::dec(batch_size) + " requested > " +
                    util::dec(config_.max_inflight) + ")");
      return;
    }
    if (connection->inflight.compare_exchange_weak(
            inflight, inflight + batch_size, std::memory_order_relaxed)) {
      break;
    }
  }
  inflight_total_.fetch_add(batch_size, std::memory_order_relaxed);

  // Labels ride with the progress callback (owned: the callback outlives
  // this frame inside the control).
  auto labels = std::make_shared<std::vector<std::string>>();
  labels->reserve(batch_size);
  for (const auto& request : requests) {
    labels->push_back(request.label_or_default());
  }

  util::MutexLock lock(connection->batch_mutex);
  // Reap finished collector threads so a long-lived connection does not
  // accumulate them.
  for (auto it = connection->batches.begin();
       it != connection->batches.end();) {
    if (it->first->load(std::memory_order_acquire) && it->second.joinable()) {
      it->second.join();
      it = connection->batches.erase(it);
    } else {
      ++it;
    }
  }
  // Register the batch's control under its id BEFORE the scheduler can
  // start (or a collector thread exists): a client may fire the cancel
  // verb immediately after the run line, and the reader must find the
  // control no matter how the threads interleave.
  auto control = std::make_shared<api::RunControl>();
  // The batch's trace id (every request in a batch carries the same one)
  // and admission clock, echoed on every streamed event: "trace" lets an
  // operator grep a sweep across the fleet, "elapsed_ms" (server-side,
  // monotonic) lets a client spot a stalled run without local bookkeeping.
  const std::string trace = requests.front().trace_id;
  auto admitted = std::make_shared<util::Timer>();
  // The progress callback likewise goes in BEFORE the first run can
  // start, or early events would be lost.
  control->on_progress([connection, id, labels, stream_progress, trace,
                        admitted](const api::RunProgress& progress) {
    // Snapshot-bearing events always go out: a checkpointing client that
    // did not ask for progress streaming still needs the resume payload.
    if (!progress.finished && !stream_progress &&
        progress.snapshot == nullptr) {
      return;
    }
    Json event = Json::object();
    event.set("id", id)
        .set("event", progress.finished ? "finished" : "progress")
        .set("index", progress.batch_index)
        .set("label", progress.batch_index < labels->size()
                          ? (*labels)[progress.batch_index]
                          : std::string())
        .set("algorithm", progress.algorithm)
        .set("evaluations", progress.evaluations)
        .set("max_evaluations", progress.max_evaluations)
        .set("seconds", progress.seconds)
        .set("elapsed_ms", admitted->elapsed_ms());
    if (!trace.empty()) event.set("trace", trace);
    if (progress.snapshot != nullptr) {
      event.set("snapshot", api::snapshot_to_json(*progress.snapshot));
    }
    if (progress.finished) {
      event.set("completed", progress.completed)
          .set("total", progress.batch_size)
          .set("cache_hit", progress.cache_hit);
    }
    util::MutexLock write_lock(connection->write_mutex);
    send_json(connection->fd, event);
  });
  {
    util::MutexLock run_lock(connection->run_mutex);
    connection->active_runs.emplace(id, control);
  }
  {
    util::MutexLock control_lock(control_mutex_);
    active_controls_.insert(control.get());
    if (hard_stop_.load(std::memory_order_relaxed)) control->request_stop();
  }

  sched::Scheduler::Admission admission = scheduler_->submit(
      std::move(requests), priority, connection->lane, control.get());
  if (!admission.admitted) {
    // Shed: unwind every registration this frame made (no slot may leak),
    // then answer with the structured overload facts so the client can
    // back off instead of guessing.
    {
      util::MutexLock run_lock(connection->run_mutex);
      auto [begin, end] = connection->active_runs.equal_range(id);
      for (auto it = begin; it != end; ++it) {
        if (it->second == control) {
          connection->active_runs.erase(it);
          break;
        }
      }
    }
    {
      util::MutexLock control_lock(control_mutex_);
      active_controls_.erase(control.get());
    }
    connection->inflight.fetch_sub(batch_size, std::memory_order_relaxed);
    inflight_total_.fetch_sub(batch_size, std::memory_order_relaxed);
    Json error = make_error(
        id, "overloaded: " + util::dec(admission.queue_depth) +
                " run(s) queued + " + util::dec(batch_size) +
                " requested > max_queued " + util::dec(config_.max_queued) +
                "; retry after " + util::dec(admission.retry_after_ms) +
                "ms");
    error.set("overloaded", true)
        .set("queued", static_cast<std::uint64_t>(admission.queue_depth))
        .set("max_queued", static_cast<std::uint64_t>(config_.max_queued))
        .set("retry_after_ms", admission.retry_after_ms);
    util::MutexLock write_lock(connection->write_mutex);
    send_json(connection->fd, error);
    return;
  }

  auto done = std::make_shared<std::atomic<bool>>(false);
  std::thread collector([this, connection, id,
                         futures = std::move(admission.futures), priority,
                         control, done]() mutable {
    run_batch(connection, id, std::move(futures), priority,
              std::move(control));
    done->store(true, std::memory_order_release);
  });
  connection->batches.emplace_back(std::move(done), std::move(collector));
}

void Server::handle_cancel(const std::shared_ptr<Connection>& connection,
                           std::uint64_t id, const Json& message) {
  auto respond = [&](const Json& response) {
    util::MutexLock lock(connection->write_mutex);
    send_json(connection->fd, response);
  };
  const Json* target_json = message.find("target");
  std::uint64_t target = 0;
  if (target_json != nullptr) {
    try {
      target = target_json->as_u64();
    } catch (const util::JsonError&) {
      target_json = nullptr;
    }
  }
  if (target_json == nullptr) {
    respond(make_error(id, "cancel: 'target' must be a run id"));
    return;
  }
  // Flip every in-flight batch submitted under the target id ON THIS
  // connection (ids are per-connection). An unknown or already-finished
  // target is a benign race, not an error: cancel is idempotent and
  // answers "cancelled": false so the client can tell a no-op from a hit.
  bool cancelled = false;
  {
    util::MutexLock lock(connection->run_mutex);
    auto [begin, end] = connection->active_runs.equal_range(target);
    for (auto it = begin; it != end; ++it) {
      it->second->request_stop();
      cancelled = true;
    }
  }
  Json response = make_ok(id);
  response.set("cancelled", cancelled);
  respond(response);
}

void Server::run_batch(std::shared_ptr<Connection> connection,
                       std::uint64_t id,
                       std::vector<std::future<api::RunReport>> futures,
                       sched::Priority priority,
                       std::shared_ptr<api::RunControl> control_ptr) {
  const std::size_t batch_size = futures.size();
  const std::string priority_name = sched::priority_name(priority);
  Json reports = Json::array();
  std::uint64_t cancelled_runs = 0;
  for (auto& future : futures) {
    try {
      api::RunReport report = future.get();
      if (report.provenance.cancelled) ++cancelled_runs;
      // Echo the class that carried the run — overwriting whatever a
      // cache hit replayed, so the echo always describes THIS request.
      report.provenance.priority = priority_name;
      reports.append(api::report_to_json(report));
    } catch (const std::exception& e) {
      Json error = Json::object();
      error.set("error", e.what());
      reports.append(std::move(error));
    }
  }

  // The batch has answered (reports collected): retire it from the
  // cancel registry — a later cancel for this id is the benign no-op.
  {
    util::MutexLock lock(connection->run_mutex);
    auto [begin, end] = connection->active_runs.equal_range(id);
    for (auto it = begin; it != end; ++it) {
      if (it->second == control_ptr) {
        connection->active_runs.erase(it);
        break;
      }
    }
  }
  {
    util::MutexLock lock(control_mutex_);
    active_controls_.erase(control_ptr.get());
  }

  runs_handled_.fetch_add(batch_size, std::memory_order_relaxed);
  if (cancelled_runs > 0) {
    runs_cancelled_.fetch_add(cancelled_runs, std::memory_order_relaxed);
  }
  // Release the in-flight slots BEFORE the final response goes out, so a
  // client that reads the response and immediately asks `health` never
  // observes its own finished batch as load.
  connection->inflight.fetch_sub(batch_size, std::memory_order_relaxed);
  inflight_total_.fetch_sub(batch_size, std::memory_order_relaxed);
  Json response = make_ok(id);
  response.set("reports", std::move(reports));
  {
    util::MutexLock lock(connection->write_mutex);
    send_json(connection->fd, response);
  }
}

}  // namespace moela::serve
