// Fixture: a clean header — comments may mention rand() and time() and
// strtod freely; string literals like "rand(" below are not code either.
#pragma once
#include <string>
namespace moela::fixture {
inline std::string describe() { return "rand( time( %g strtod"; }
inline double scaled(double v) { return v * 2.0; }
}  // namespace moela::fixture
