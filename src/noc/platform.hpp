// Platform specification for the 3D NoC heterogeneous manycore design
// problem (Sec. III of the paper).
//
// The platform is an N x N x Y grid of tiles; each tile hosts exactly one
// core (PE): a CPU, a GPU, or an LLC slice with memory controller. Tiles are
// interconnected by a budgeted set of planar links (same layer, routed
// length <= max_planar_length units) and vertical TSV links (same (x, y),
// adjacent layers). The *design* — which core sits on which tile and where
// the links go — lives in design.hpp; this header describes the fixed
// geometry, the core inventory, and the candidate-link enumeration.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "noc/link.hpp"

namespace moela::noc {

/// Processing-element classes of the heterogeneous platform.
enum class PeType : std::uint8_t { kCpu = 0, kGpu = 1, kLlc = 2 };

const char* to_string(PeType type);

using TileId = std::uint16_t;
using CoreId = std::uint16_t;

/// Immutable description of a 3D tiled platform instance.
class PlatformSpec {
 public:
  /// `core_types[c]` is the type of core c; there must be exactly
  /// nx*ny*nz cores. `num_planar_links`/`num_vertical_links` are the link
  /// budgets L of Sec. III (planar + TSV).
  PlatformSpec(int nx, int ny, int nz, std::vector<PeType> core_types,
               std::size_t num_planar_links, std::size_t num_vertical_links,
               int max_planar_length = 5, int max_router_degree = 7);

  int nx() const { return nx_; }
  int ny() const { return ny_; }
  int nz() const { return nz_; }
  std::size_t num_tiles() const { return core_types_.size(); }
  std::size_t num_cores() const { return core_types_.size(); }

  std::size_t num_planar_links() const { return num_planar_links_; }
  std::size_t num_vertical_links() const { return num_vertical_links_; }
  std::size_t total_links() const {
    return num_planar_links_ + num_vertical_links_;
  }
  int max_planar_length() const { return max_planar_length_; }
  int max_router_degree() const { return max_router_degree_; }

  PeType core_type(CoreId c) const { return core_types_[c]; }
  const std::vector<PeType>& core_types() const { return core_types_; }
  std::size_t count_type(PeType type) const;
  /// Core ids of the given type, ascending.
  std::vector<CoreId> cores_of_type(PeType type) const;

  // --- Tile geometry ------------------------------------------------------
  TileId tile_at(int x, int y, int z) const {
    return static_cast<TileId>(x + nx_ * (y + ny_ * z));
  }
  int x_of(TileId t) const { return static_cast<int>(t) % nx_; }
  int y_of(TileId t) const { return (static_cast<int>(t) / nx_) % ny_; }
  int z_of(TileId t) const { return static_cast<int>(t) / (nx_ * ny_); }

  /// Routed (Manhattan) length of a planar link between same-layer tiles,
  /// in units of adjacent-tile spacing.
  int planar_length(TileId a, TileId b) const;

  /// True if tile `t` lies on the perimeter of its layer (where tiles with
  /// memory controllers — LLCs — must be placed).
  bool is_edge_tile(TileId t) const;
  /// All edge tiles, ascending.
  const std::vector<TileId>& edge_tiles() const { return edge_tiles_; }

  // --- Candidate links ----------------------------------------------------
  /// All legal planar links: same layer, 1 <= length <= max_planar_length.
  const std::vector<Link>& planar_candidates() const {
    return planar_candidates_;
  }
  /// All legal vertical links: same (x, y), adjacent layers. The Sec. III
  /// constraint "at most 1 vertical link between adjacent tiles" holds by
  /// construction since each candidate is unique.
  const std::vector<Link>& vertical_candidates() const {
    return vertical_candidates_;
  }

  /// True if the link is geometrically legal on this platform.
  bool link_is_legal(const Link& link) const;

  std::string describe() const;

  // --- Canonical instances ------------------------------------------------
  /// The paper's evaluation platform: 4x4x4 = 64 tiles, 8 CPUs + 40 GPUs +
  /// 16 LLCs, 96 planar links (the 3D-mesh-equivalent count) + 48 TSVs.
  static PlatformSpec paper_4x4x4();

  /// A reduced 3x3x3 = 27-tile platform (4 CPU + 15 GPU + 8 LLC, 36 planar
  /// + 18 TSV) matching Fig. 1; used by unit tests for speed.
  static PlatformSpec small_3x3x3();

 private:
  int nx_, ny_, nz_;
  std::vector<PeType> core_types_;
  std::size_t num_planar_links_;
  std::size_t num_vertical_links_;
  int max_planar_length_;
  int max_router_degree_;
  std::vector<TileId> edge_tiles_;
  std::vector<Link> planar_candidates_;
  std::vector<Link> vertical_candidates_;
};

}  // namespace moela::noc
