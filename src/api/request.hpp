// Batched execution layer, part 1: RunRequest, the schedulable unit of
// work. Where Optimizer::run is an inline call, a RunRequest is a VALUE
// describing one (problem x algorithm x options) cell — it can sit in a
// queue, be hashed into a cache key, be replicated across seeds, and be
// executed by any worker thread. The Executor (api/executor.hpp) schedules
// vectors of them; the ResultCache (api/result_cache.hpp) keys on them.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "api/any_problem.hpp"
#include "api/optimizer.hpp"
#include "api/problems.hpp"
#include "util/numeric.hpp"

namespace moela::api {

/// Version salt folded into every cache_key(). Bump it whenever the key
/// schema, the report serialization, or any algorithm's search behavior
/// changes in a way that makes old cached reports wrong — stale entries
/// written by older binaries then read as misses instead of being served
/// (or, worse, aliased). History: v1 = PR 2 initial schema; v2 = PR 3
/// (serve daemon; report schema gained the JSON wire form).
inline constexpr unsigned kCacheSchemaVersion = 2;

/// One schedulable run: which problem, which algorithm, which budgets.
/// A plain value — copying is cheap (the bound problem, if any, is shared).
struct RunRequest {
  /// make_problem() key ("zdt1", "noc", ...). May be empty when
  /// `bound_problem` is set.
  std::string problem;
  /// Instance parameters for make_problem (app / objectives / seed / ...).
  ProblemOptions problem_options;
  /// Registry key of the algorithm ("moela", "nsga2", ...). Required.
  std::string algorithm;
  /// Budgets, sizing, seed, and the per-algorithm knob bag.
  RunOptions options;
  /// Optional pre-built problem; when set it is used instead of
  /// make_problem(problem, problem_options). If `problem` is ALSO set, the
  /// caller asserts the key + options describe this instance (they feed the
  /// cache key); with an empty `problem` the request is simply uncacheable.
  AnyProblem bound_problem;
  /// When true, a disk-cache hit whose stored report lacks designs (design
  /// type without a serializer) is rejected and the run is recomputed, so
  /// callers that unwrap designs_as<D>() always get them.
  bool need_designs = false;
  /// Optional display label for progress/logs; label_or_default() falls
  /// back to "problem:algorithm:seed".
  std::string label;
  /// Correlation id minted by the submitting CLI/coordinator
  /// (util::mint_trace_id) and echoed through provenance, run logs, and
  /// progress events. Transport metadata only: two requests differing only
  /// in trace_id are the SAME work, so it is deliberately absent from
  /// cache_key() and never alters report content.
  std::string trace_id;
  /// Opt-in checkpointing: the run records its evaluation journal and
  /// emits RunSnapshots at the snapshot cadence (streamed on progress
  /// events; persisted by an Executor with a snapshot_dir). Run-durability
  /// metadata only: a checkpointed run produces the same report as an
  /// uncheckpointed one, so like label/trace_id this is deliberately absent
  /// from cache_key().
  bool checkpoint = false;
  /// Optional snapshot to resume from (shared, immutable — copying the
  /// request is still cheap). Consumers validate the fingerprint against
  /// snapshot_fingerprint(*this) and silently run fresh on a mismatch;
  /// a valid resume replays to a report bit-identical to the
  /// uninterrupted run, which is exactly why it must never feed
  /// cache_key(): resumed and fresh are the SAME work.
  std::shared_ptr<const RunSnapshot> resume;

  /// Canonical content key of this request: identical requests — same
  /// problem instance, algorithm, budgets, seed, and knob values — map to
  /// the same string, and any differing field changes it. Doubles are
  /// rendered as hexfloats so the key is exact, not rounded. Returns ""
  /// (uncacheable) when the problem is only bound, not keyed.
  std::string cache_key() const;

  std::string label_or_default() const {
    if (!label.empty()) return label;
    return (problem.empty() ? std::string("<custom>") : problem) + ":" +
           algorithm + ":" + util::dec(options.seed);
  }
};

/// Expands `base` into `replicates` requests differing only in the run
/// seed: replicate i runs with seed base.options.seed + i (the problem
/// instance seed stays fixed — replicates vary the search, not the
/// instance). expand_replicates(r, 1) == {r}.
std::vector<RunRequest> expand_replicates(const RunRequest& base,
                                          std::size_t replicates);

namespace detail {
/// Exact, locale-independent rendering of a double (hexfloat). Kept as an
/// alias so cache-key call sites read as "the exact rendering".
inline std::string exact_double(double value) {
  return util::hexfloat(value);
}
}  // namespace detail

inline std::string RunRequest::cache_key() const {
  if (problem.empty()) return {};
  std::string key = "moela-run-v" + util::dec(kCacheSchemaVersion);
  key += "|problem=" + problem;
  key += "|objectives=" + util::dec(problem_options.num_objectives);
  key += "|variables=" + util::dec(problem_options.num_variables);
  key += "|instance_seed=" + util::dec(problem_options.seed);
  key += "|app=" + problem_options.app;
  key += std::string("|small=") + (problem_options.small_platform ? "1" : "0");
  key += "|algorithm=" + algorithm;
  key += "|evals=" + util::dec(options.max_evaluations);
  key += "|seconds=" + detail::exact_double(options.max_seconds);
  key += "|snapshot=" + util::dec(options.snapshot_interval);
  key += "|seed=" + util::dec(options.seed);
  key += "|pop=" + util::dec(options.population_size);
  key += "|n_local=" + util::dec(options.n_local);
  key += "|knobs=";
  bool first = true;
  // std::map iterates in sorted key order, so knob insertion order cannot
  // change the key.
  for (const auto& [name, value] : options.knobs.values()) {
    if (!first) key += ",";
    first = false;
    key += name + "=" + detail::exact_double(value);
  }
  return key;
}

inline std::vector<RunRequest> expand_replicates(const RunRequest& base,
                                                 std::size_t replicates) {
  std::vector<RunRequest> out;
  out.reserve(replicates);
  for (std::size_t i = 0; i < replicates; ++i) {
    RunRequest r = base;
    r.options.seed = base.options.seed + i;
    out.push_back(std::move(r));
  }
  return out;
}

}  // namespace moela::api
