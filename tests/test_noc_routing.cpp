#include "noc/routing.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "noc/generator.hpp"
#include "noc/platform.hpp"
#include "util/rng.hpp"

namespace moela::noc {
namespace {

NocDesign mesh_design(const PlatformSpec& spec) {
  NocDesign d;
  d.placement.resize(spec.num_tiles());
  std::iota(d.placement.begin(), d.placement.end(), CoreId{0});
  for (TileId t = 0; t < spec.num_tiles(); ++t) {
    const int x = spec.x_of(t), y = spec.y_of(t), z = spec.z_of(t);
    if (x + 1 < spec.nx()) d.links.emplace_back(t, spec.tile_at(x + 1, y, z));
    if (y + 1 < spec.ny()) d.links.emplace_back(t, spec.tile_at(x, y + 1, z));
    if (z + 1 < spec.nz()) d.links.emplace_back(t, spec.tile_at(x, y, z + 1));
  }
  d.canonicalize();
  return d;
}

TEST(Routing, MeshHopsAreManhattan3D) {
  const auto spec = PlatformSpec::small_3x3x3();
  const RoutingTable routes(spec, mesh_design(spec));
  for (TileId s = 0; s < spec.num_tiles(); ++s) {
    for (TileId t = 0; t < spec.num_tiles(); ++t) {
      const int expected = std::abs(spec.x_of(s) - spec.x_of(t)) +
                           std::abs(spec.y_of(s) - spec.y_of(t)) +
                           std::abs(spec.z_of(s) - spec.z_of(t));
      EXPECT_EQ(routes.hops(s, t), expected) << s << "->" << t;
    }
  }
}

TEST(Routing, HopsSymmetricOnUndirectedGraph) {
  const auto spec = PlatformSpec::paper_4x4x4();
  DesignOps ops(spec);
  util::Rng rng(3);
  const NocDesign d = ops.random_design(rng);
  const RoutingTable routes(spec, d);
  for (TileId s = 0; s < spec.num_tiles(); s += 5) {
    for (TileId t = 0; t < spec.num_tiles(); t += 3) {
      EXPECT_EQ(routes.hops(s, t), routes.hops(t, s));
    }
  }
}

TEST(Routing, PathEndpointsAndLength) {
  const auto spec = PlatformSpec::small_3x3x3();
  const RoutingTable routes(spec, mesh_design(spec));
  const TileId s = spec.tile_at(0, 0, 0);
  const TileId t = spec.tile_at(2, 2, 2);
  const auto path = routes.path(s, t);
  ASSERT_GE(path.size(), 2u);
  EXPECT_EQ(path.front(), s);
  EXPECT_EQ(path.back(), t);
  EXPECT_EQ(static_cast<int>(path.size()) - 1, routes.hops(s, t));
}

TEST(Routing, PathToSelfIsSingleton) {
  const auto spec = PlatformSpec::small_3x3x3();
  const RoutingTable routes(spec, mesh_design(spec));
  const auto path = routes.path(4, 4);
  ASSERT_EQ(path.size(), 1u);
  EXPECT_EQ(path[0], 4);
}

TEST(Routing, ConsecutivePathTilesAreLinked) {
  const auto spec = PlatformSpec::paper_4x4x4();
  DesignOps ops(spec);
  util::Rng rng(7);
  const NocDesign d = ops.random_design(rng);
  const RoutingTable routes(spec, d);
  for (TileId s = 0; s < spec.num_tiles(); s += 7) {
    for (TileId t = 0; t < spec.num_tiles(); t += 11) {
      const auto path = routes.path(s, t);
      for (std::size_t i = 1; i < path.size(); ++i) {
        const Link hop(path[i - 1], path[i]);
        EXPECT_TRUE(
            std::binary_search(d.links.begin(), d.links.end(), hop))
            << "missing link on path " << s << "->" << t;
      }
    }
  }
}

TEST(Routing, ForEachHopMatchesPath) {
  const auto spec = PlatformSpec::small_3x3x3();
  const RoutingTable routes(spec, mesh_design(spec));
  const TileId s = spec.tile_at(0, 1, 0);
  const TileId t = spec.tile_at(2, 0, 2);
  const auto path = routes.path(s, t);
  std::size_t hops = 0;
  routes.for_each_hop(s, t, [&](TileId a, TileId b) {
    // for_each_hop walks backwards from t; every reported pair must be a
    // consecutive pair of `path`.
    bool found = false;
    for (std::size_t i = 1; i < path.size(); ++i) {
      if (path[i - 1] == a && path[i] == b) found = true;
    }
    EXPECT_TRUE(found);
    ++hops;
  });
  EXPECT_EQ(hops, path.size() - 1);
}

TEST(Routing, DeterministicAcrossRebuilds) {
  const auto spec = PlatformSpec::paper_4x4x4();
  DesignOps ops(spec);
  util::Rng rng(11);
  const NocDesign d = ops.random_design(rng);
  const RoutingTable r1(spec, d);
  const RoutingTable r2(spec, d);
  for (TileId s = 0; s < spec.num_tiles(); s += 3) {
    for (TileId t = 0; t < spec.num_tiles(); t += 5) {
      EXPECT_EQ(r1.path(s, t), r2.path(s, t));
    }
  }
}

TEST(Routing, ShortestOverRandomTopologies) {
  // Property: BFS distance <= any explicitly enumerated 2-hop alternative.
  const auto spec = PlatformSpec::small_3x3x3();
  DesignOps ops(spec);
  util::Rng rng(13);
  for (int trial = 0; trial < 5; ++trial) {
    const NocDesign d = ops.random_design(rng);
    const RoutingTable routes(spec, d);
    const Adjacency adj(spec, d.links);
    for (TileId s = 0; s < spec.num_tiles(); ++s) {
      for (TileId v : adj.neighbors(s)) {
        for (TileId t = 0; t < spec.num_tiles(); ++t) {
          EXPECT_LE(routes.hops(s, t), 1 + routes.hops(v, t))
              << "triangle inequality violated";
        }
      }
    }
  }
}

TEST(LinkIndex, FindsEveryLink) {
  const auto spec = PlatformSpec::small_3x3x3();
  const NocDesign d = mesh_design(spec);
  const LinkIndex index(d.links);
  for (std::size_t k = 0; k < d.links.size(); ++k) {
    EXPECT_EQ(index.of(d.links[k].a, d.links[k].b), k);
    EXPECT_EQ(index.of(d.links[k].b, d.links[k].a), k);  // order-insensitive
  }
}

TEST(LinkIndex, MissingLinkThrows) {
  const auto spec = PlatformSpec::small_3x3x3();
  const NocDesign d = mesh_design(spec);
  const LinkIndex index(d.links);
  // (0,0,0)-(2,0,0) is a legal candidate but not a mesh link.
  EXPECT_THROW(index.of(spec.tile_at(0, 0, 0), spec.tile_at(2, 0, 0)),
               std::logic_error);
}

}  // namespace
}  // namespace moela::noc
