// Application workload abstraction: the inputs the design problem consumes.
//
// From application profiling, the paper obtains (Sec. III) the communication
// frequency f_ij between cores and the average power of each PE. In this
// repository those come from the synthetic profiler in src/sim (the
// gem5-gpu / GPGPU-Sim / McPAT / GPUWattch stand-in); the objective code here
// only sees this structure.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace moela::noc {

/// Dense core-to-core communication-frequency matrix (flits per kilo-cycle).
/// Indexed by CORE id, not tile: traffic follows the logical core when the
/// placement moves it.
class TrafficMatrix {
 public:
  TrafficMatrix() = default;
  explicit TrafficMatrix(std::size_t num_cores)
      : n_(num_cores), data_(num_cores * num_cores, 0.0) {}

  std::size_t num_cores() const { return n_; }

  double operator()(std::size_t i, std::size_t j) const {
    return data_[i * n_ + j];
  }
  double& operator()(std::size_t i, std::size_t j) { return data_[i * n_ + j]; }

  /// Sum of all entries (total injected traffic).
  double total() const;

  /// Scales all entries by `factor`.
  void scale(double factor);

 private:
  std::size_t n_ = 0;
  std::vector<double> data_;
};

/// Everything the objectives need to score a design for one application.
struct Workload {
  std::string name;
  TrafficMatrix traffic;            // f_ij between cores
  std::vector<double> core_power;   // average power per core, watts
};

}  // namespace moela::noc
