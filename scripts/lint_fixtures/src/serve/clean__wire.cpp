// Fixture: a clean wire file — util/numeric-style formatting only, integer
// printf conversions allowed.
#include <cstdio>
void render(char* out, unsigned long long n) {
  std::snprintf(out, 64, "%016llx", n);
}
