// String-keyed problem construction for the runtime-composition front-end:
// the problem-side counterpart of the optimizer registry. Used by moela_cli
// and anything else that picks a workload without recompiling.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "api/any_problem.hpp"

namespace moela::api {

/// Instance parameters shared by the built-in problems; each problem reads
/// the subset that applies to it.
struct ProblemOptions {
  /// 0 = the problem's default (ZDT is fixed at 2; DTLZ defaults to 3,
  /// knapsack to 2, the NoC design problem to 5).
  std::size_t num_objectives = 0;
  /// 0 = the problem's default. ZDT: decision variables (30). DTLZ:
  /// distance variables k (5 for DTLZ1, 10 for DTLZ2). Knapsack: items
  /// (100). Ignored by the NoC problem.
  std::size_t num_variables = 0;
  /// Instance seed (knapsack profits/weights, NoC workload synthesis).
  std::uint64_t seed = 1;
  /// NoC only: Rodinia-like application tag ("BP", "BFS", "GAU", "HOT",
  /// "PF", "SC", "SRAD"; case-insensitive).
  std::string app = "BFS";
  /// NoC only: 3x3x3 platform instead of the paper's 4x4x4.
  bool small_platform = false;
};

/// Names accepted by make_problem(): zdt1, zdt2, zdt3, dtlz1, dtlz2,
/// knapsack, noc.
std::vector<std::string> problem_names();

/// Builds the named problem. Throws std::out_of_range for an unknown name
/// and std::invalid_argument for invalid options.
AnyProblem make_problem(const std::string& name,
                        const ProblemOptions& options = {});

}  // namespace moela::api
