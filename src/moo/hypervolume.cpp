#include "moo/hypervolume.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "moo/pareto.hpp"

namespace moela::moo {

namespace {

using PointSet = std::vector<ObjectiveVector>;

/// 1-D hypervolume: the best (smallest) value's gap to the reference.
double hv1(const PointSet& ps, double ref) {
  double best = ref;
  for (const auto& p : ps) best = std::min(best, p[0]);
  return std::max(0.0, ref - best);
}

/// 2-D hypervolume in O(n log n): sweep points by first coordinate.
double hv2(PointSet ps, const ObjectiveVector& ref) {
  // Clip away points that do not dominate the reference point at all.
  std::erase_if(ps, [&](const ObjectiveVector& p) {
    return p[0] >= ref[0] || p[1] >= ref[1];
  });
  if (ps.empty()) return 0.0;
  std::sort(ps.begin(), ps.end(), [](const auto& a, const auto& b) {
    if (a[0] != b[0]) return a[0] < b[0];
    return a[1] < b[1];
  });
  double volume = 0.0;
  double prev_y = ref[1];
  for (const auto& p : ps) {
    if (p[1] < prev_y) {
      volume += (ref[0] - p[0]) * (prev_y - p[1]);
      prev_y = p[1];
    }
  }
  return volume;
}

/// Inclusive hypervolume of a single point: volume of the box [p, ref].
double inclusive_hv(const ObjectiveVector& p, const ObjectiveVector& ref) {
  double v = 1.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    const double side = ref[i] - p[i];
    if (side <= 0.0) return 0.0;
    v *= side;
  }
  return v;
}

/// "limit set" of WFG: each remaining point is worsened (component-wise max)
/// with p; dominated members of the result are pruned before recursion.
PointSet limit_set(const PointSet& ps, std::size_t begin,
                   const ObjectiveVector& p) {
  PointSet out;
  out.reserve(ps.size() - begin);
  for (std::size_t j = begin; j < ps.size(); ++j) {
    ObjectiveVector q(p.size());
    for (std::size_t k = 0; k < p.size(); ++k) {
      q[k] = std::max(ps[j][k], p[k]);
    }
    out.push_back(std::move(q));
  }
  // Prune dominated points: they contribute nothing to the union volume and
  // shrinking the set is where WFG gets its speed.
  PointSet pruned;
  for (std::size_t i = 0; i < out.size(); ++i) {
    bool keep = true;
    for (std::size_t j = 0; j < out.size() && keep; ++j) {
      if (i == j) continue;
      const Dominance d = compare(out[j], out[i]);
      if (d == Dominance::kDominates ||
          (d == Dominance::kEqual && j < i)) {
        keep = false;
      }
    }
    if (keep) pruned.push_back(out[i]);
  }
  return pruned;
}

double wfg(PointSet ps, const ObjectiveVector& ref);

/// Exclusive hypervolume of ps[i] w.r.t. ps[i+1..]: inclusive volume minus
/// the part already covered by the rest.
double exclusive_hv(const PointSet& ps, std::size_t i,
                    const ObjectiveVector& ref) {
  const double inc = inclusive_hv(ps[i], ref);
  if (inc == 0.0 || i + 1 == ps.size()) return inc;
  return inc - wfg(limit_set(ps, i + 1, ps[i]), ref);
}

double wfg(PointSet ps, const ObjectiveVector& ref) {
  if (ps.empty()) return 0.0;
  const std::size_t m = ref.size();
  if (m == 1) return hv1(ps, ref[0]);
  if (m == 2) return hv2(std::move(ps), ref);
  // Sorting by the last objective (descending contribution order) keeps the
  // limit sets small.
  std::sort(ps.begin(), ps.end(), [m](const auto& a, const auto& b) {
    return a[m - 1] > b[m - 1];
  });
  double volume = 0.0;
  for (std::size_t i = 0; i < ps.size(); ++i) {
    volume += exclusive_hv(ps, i, ref);
  }
  return volume;
}

}  // namespace

double hypervolume(const std::vector<ObjectiveVector>& points,
                   const ObjectiveVector& ref) {
  if (points.empty()) return 0.0;
  const std::size_t m = ref.size();
  PointSet clipped;
  clipped.reserve(points.size());
  for (const auto& p : points) {
    if (p.size() != m) {
      throw std::invalid_argument("hypervolume: dimension mismatch");
    }
    if (inclusive_hv(p, ref) > 0.0) clipped.push_back(p);
  }
  if (clipped.empty()) return 0.0;
  // Reduce to the non-dominated subset first; dominated points are redundant.
  const auto keep = pareto_filter(clipped);
  PointSet front;
  front.reserve(keep.size());
  for (std::size_t i : keep) front.push_back(clipped[i]);
  return wfg(std::move(front), ref);
}

double normalized_hypervolume(const std::vector<ObjectiveVector>& points,
                              const ObjectiveVector& ideal,
                              const ObjectiveVector& nadir,
                              double ref_coordinate) {
  if (points.empty()) return 0.0;
  const auto norm = normalize(points, ideal, nadir);
  const ObjectiveVector ref(ideal.size(), ref_coordinate);
  return hypervolume(norm, ref);
}

}  // namespace moela::moo
