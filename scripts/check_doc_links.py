#!/usr/bin/env python3
"""Fail on dead relative links in the repo's markdown docs.

Scans README.md, ROADMAP.md, CHANGES.md, and docs/*.md for markdown links
and inline `path` references of the form [text](target). External targets
(http/https/mailto) and pure in-page anchors (#...) are skipped; everything
else must resolve to an existing file or directory relative to the linking
file. CI runs this so README/docs/ cross-references cannot rot silently.
"""

import pathlib
import re
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def files_to_check():
    for name in ("README.md", "ROADMAP.md", "CHANGES.md"):
        path = ROOT / name
        if path.exists():
            yield path
    docs = ROOT / "docs"
    if docs.is_dir():
        yield from sorted(docs.glob("*.md"))


def main() -> int:
    dead = []
    for md in files_to_check():
        for match in LINK.finditer(md.read_text(encoding="utf-8")):
            target = match.group(1)
            if target.startswith(SKIP_PREFIXES):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            if not (md.parent / path).exists():
                dead.append(f"{md.relative_to(ROOT)}: dead link '{target}'")
    for entry in dead:
        print(entry)
    if not dead:
        print(f"checked {sum(1 for _ in files_to_check())} file(s): "
              "all relative links resolve")
    return 1 if dead else 0


if __name__ == "__main__":
    sys.exit(main())
