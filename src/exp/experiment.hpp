// Experiment runner: executes one algorithm on one problem under a fixed
// evaluation budget and returns everything the Sec. V metrics need —
// archive snapshots (for anytime-PHV traces), the final population designs
// and objectives (for the Fig. 3 EDP selection), and counters.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "baselines/moead.hpp"
#include "baselines/moo_stage.hpp"
#include "baselines/moos.hpp"
#include "baselines/nsga2.hpp"
#include "core/eval_context.hpp"
#include "core/moela.hpp"
#include "moo/problem.hpp"

namespace moela::exp {

enum class Algorithm {
  kMoela,
  kMoeaD,
  kMoos,
  kMooStage,
  kNsga2,
  // Ablation variants of MOELA:
  kMoelaNoMlGuide,     // local-search starts stay random
  kMoelaEaOnly,        // no local search at all
  kMoelaLocalOnly,     // no EA stage
};

std::string algorithm_name(Algorithm a);

struct RunConfig {
  std::size_t max_evaluations = 20000;
  /// Wall-clock budget in seconds; 0 disables it. When set, a run stops at
  /// whichever budget binds first (the paper's T_stop is wall-clock).
  double max_seconds = 0.0;
  std::size_t snapshot_interval = 500;
  std::uint64_t seed = 1;
  /// Population / archive size shared by every algorithm (fairness).
  std::size_t population_size = 50;
  /// Local searches per iteration for the LS-based methods (n_local).
  std::size_t n_local = 5;
  core::MoelaConfig moela;          // further MOELA knobs
  baselines::MoosConfig moos;       // further MOOS knobs
  baselines::MooStageConfig stage;  // further MOO-STAGE knobs
};

template <moo::MooProblem P>
struct RunResult {
  Algorithm algorithm{};
  std::vector<core::ArchiveSnapshot> snapshots;
  /// The all-time Pareto front of the run (objective vectors).
  std::vector<moo::ObjectiveVector> final_front;
  /// Final population/archive (designs + objectives), for design selection.
  std::vector<typename P::Design> final_designs;
  std::vector<moo::ObjectiveVector> final_objectives;
  std::size_t evaluations = 0;
  double seconds = 0.0;
};

/// Runs `algorithm` on `problem`. All algorithms receive the same budget,
/// population sizing, and a seed derived from config.seed.
template <moo::MooProblem P>
RunResult<P> run_algorithm(Algorithm algorithm, const P& problem,
                           const RunConfig& config) {
  core::EvalContext<P> ctx(problem, config.seed, config.max_evaluations,
                           config.snapshot_interval, config.max_seconds);
  RunResult<P> result;
  result.algorithm = algorithm;

  auto from_decomposition = [&](const core::DecompositionPopulation<P>& pop) {
    for (std::size_t i = 0; i < pop.size(); ++i) {
      result.final_designs.push_back(pop.design(i));
      result.final_objectives.push_back(pop.objectives(i));
    }
  };

  switch (algorithm) {
    case Algorithm::kMoela:
    case Algorithm::kMoelaNoMlGuide:
    case Algorithm::kMoelaEaOnly:
    case Algorithm::kMoelaLocalOnly: {
      core::MoelaConfig mc = config.moela;
      mc.population_size = config.population_size;
      mc.n_local = config.n_local;
      if (algorithm == Algorithm::kMoelaNoMlGuide) mc.use_ml_guide = false;
      if (algorithm == Algorithm::kMoelaEaOnly) mc.use_local_search = false;
      if (algorithm == Algorithm::kMoelaLocalOnly) mc.use_ea = false;
      core::Moela<P> algo(mc);
      from_decomposition(algo.run(ctx));
      break;
    }
    case Algorithm::kMoeaD: {
      baselines::MoeaDConfig mc;
      mc.population_size = config.population_size;
      core::MoelaConfig defaults;
      mc.delta = defaults.delta;
      baselines::MoeaD<P> algo(mc);
      from_decomposition(algo.run(ctx));
      break;
    }
    case Algorithm::kMoos: {
      baselines::MoosConfig mc = config.moos;
      mc.archive_capacity = config.population_size;
      mc.initial_designs = config.population_size;
      mc.num_directions = config.population_size;
      mc.searches_per_iteration = config.n_local;
      baselines::Moos<P> algo(mc);
      const auto archive = algo.run(ctx);
      for (const auto& e : archive.entries()) {
        result.final_designs.push_back(e.design);
        result.final_objectives.push_back(e.objectives);
      }
      break;
    }
    case Algorithm::kMooStage: {
      baselines::MooStageConfig mc = config.stage;
      mc.archive_capacity = config.population_size;
      mc.initial_designs = config.population_size;
      mc.searches_per_iteration = config.n_local;
      baselines::MooStage<P> algo(mc);
      const auto archive = algo.run(ctx);
      for (const auto& e : archive.entries()) {
        result.final_designs.push_back(e.design);
        result.final_objectives.push_back(e.objectives);
      }
      break;
    }
    case Algorithm::kNsga2: {
      baselines::Nsga2Config mc;
      mc.population_size = config.population_size;
      baselines::Nsga2<P> algo(mc);
      const auto pop = algo.run(ctx);
      for (const auto& ind : pop) {
        result.final_designs.push_back(ind.design);
        result.final_objectives.push_back(ind.objectives);
      }
      break;
    }
  }

  ctx.take_snapshot();  // final state
  result.snapshots = ctx.snapshots();
  result.final_front = ctx.archive().objective_set();
  result.evaluations = ctx.evaluations();
  result.seconds = ctx.elapsed_seconds();
  return result;
}

}  // namespace moela::exp
