// Scalarization functions for decomposition-based search.
//
// Two scalarizations appear in the paper:
//  * Eq. (9): the Tchebycheff function used by the decomposition EA:
//        g(x | w, z) = max_i  w_i * |Obj_i(x) - z_i|
//  * Eq. (8): the weighted-sum distance used by MOELA's local search:
//        g(Obj | w, z) = sum_i  w_i * |Obj_i - z_i|
// In both, z is the reference point — the component-wise minimum over all
// objective values seen so far — so |Obj_i - z_i| measures the distance from
// the best-known value of each (minimized) objective.
#pragma once

#include <algorithm>
#include <cmath>
#include <limits>
#include <span>

#include "moo/objective.hpp"

namespace moela::moo {

/// Eq. (9): Tchebycheff scalarization (minimization).
inline double tchebycheff(std::span<const double> obj,
                          std::span<const double> weight,
                          std::span<const double> ref) {
  double g = 0.0;
  for (std::size_t i = 0; i < obj.size(); ++i) {
    // A zero weight would make the sub-problem indifferent to objective i;
    // MOEA/D conventionally substitutes a tiny weight so the corner
    // sub-problems still rank designs on every axis.
    const double w = std::max(weight[i], 1e-6);
    g = std::max(g, w * std::abs(obj[i] - ref[i]));
  }
  return g;
}

/// Eq. (8): weighted-sum distance to the reference point, the minimization
/// target of MOELA's ML-guided local search.
inline double weighted_distance(std::span<const double> obj,
                                std::span<const double> weight,
                                std::span<const double> ref) {
  double g = 0.0;
  for (std::size_t i = 0; i < obj.size(); ++i) {
    g += weight[i] * std::abs(obj[i] - ref[i]);
  }
  return g;
}

/// Scaled variants: real platform objectives live on wildly different
/// scales (communication energy is ~10^3 times CPU latency on the paper's
/// platform), so both scalarizations are applied to range-normalized
/// deviations |Obj_i - z_i| / scale_i, where scale_i is the population's
/// ideal-to-nadir range of objective i (the conventional MOEA/D objective
/// normalization). scale entries are clamped away from zero.

inline double tchebycheff_scaled(std::span<const double> obj,
                                 std::span<const double> weight,
                                 std::span<const double> ref,
                                 std::span<const double> scale) {
  double g = 0.0;
  for (std::size_t i = 0; i < obj.size(); ++i) {
    const double w = std::max(weight[i], 1e-6);
    const double s = std::max(scale[i], 1e-12);
    g = std::max(g, w * std::abs(obj[i] - ref[i]) / s);
  }
  return g;
}

inline double weighted_distance_scaled(std::span<const double> obj,
                                       std::span<const double> weight,
                                       std::span<const double> ref,
                                       std::span<const double> scale) {
  double g = 0.0;
  for (std::size_t i = 0; i < obj.size(); ++i) {
    const double s = std::max(scale[i], 1e-12);
    g += weight[i] * std::abs(obj[i] - ref[i]) / s;
  }
  return g;
}

/// Maintains the reference point z as the component-wise minimum of every
/// objective vector observed (Sec. IV.C).
class ReferencePoint {
 public:
  explicit ReferencePoint(std::size_t num_objectives)
      : z_(num_objectives, std::numeric_limits<double>::infinity()) {}

  /// Lowers z where `obj` improves on it. Returns true if z changed.
  bool update(std::span<const double> obj) {
    bool changed = false;
    for (std::size_t i = 0; i < z_.size(); ++i) {
      if (obj[i] < z_[i]) {
        z_[i] = obj[i];
        changed = true;
      }
    }
    return changed;
  }

  const ObjectiveVector& value() const { return z_; }
  std::size_t size() const { return z_.size(); }

 private:
  ObjectiveVector z_;
};

}  // namespace moela::moo
