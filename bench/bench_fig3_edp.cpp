// Reproduces FIG. 3 of the paper: EDP overhead of MOEA/D's and MOOS's
// selected designs relative to MOELA's, per application, for the
// 5-objective scenario.
//
// Selection rule (Sec. V.D): per application, find the lowest peak
// temperature over every algorithm's final population, set the threshold 5%
// above it, and pick each algorithm's lowest-EDP design within the
// threshold (falling back to its coolest design). The EDP comes from the
// analytical performance model in src/sim (the gem5 stand-in).
//
// Environment knobs: MOELA_BENCH_EVALS, MOELA_BENCH_SMALL, MOELA_BENCH_SEED.
#include <cstdio>
#include <vector>

#include "exp/edp_selection.hpp"
#include "exp/scenario.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace moela;

int main() {
  const auto config = exp::paper_bench_config_from_env();
  const auto& apps = sim::all_rodinia_apps();

  util::Table table(
      "FIG. 3: EDP overhead of MOEA/D and MOOS vs MOELA (5-obj designs)");
  table.set_header(
      {"App", "MOELA EDP (J*s)", "MOEA/D overhead", "MOOS overhead"});

  // All seven applications as ONE Executor batch (MOELA_BENCH_JOBS
  // workers), index-aligned with `apps`.
  std::vector<exp::ScenarioCell> grid;
  for (auto app : apps) grid.push_back({app, 5});
  const auto results = exp::run_app_scenarios(grid, config);

  util::OnlineStats moead_stats, moos_stats;
  for (std::size_t gi = 0; gi < apps.size(); ++gi) {
    const auto app = apps[gi];
    const auto& r = results[gi];

    const auto spec = exp::bench_platform(config);
    const auto workload = sim::make_workload(spec, app, config.seed);
    const auto arch = sim::archetype(app);

    std::vector<std::vector<exp::ScoredDesign>> populations;
    for (const auto& run : r.runs) {
      populations.push_back(exp::score_population(
          spec, run.designs_as<noc::NocDesign>(), workload, arch));
    }
    const auto selections = exp::select_by_edp(populations);
    const auto overheads = exp::edp_overheads(selections, /*baseline=*/0);

    table.add_row({sim::app_name(app),
                   util::fmt(selections[0].chosen.score.edp, 2),
                   util::fmt_percent(overheads[1], 1),
                   util::fmt_percent(overheads[2], 1)});
    moead_stats.add(overheads[1]);
    moos_stats.add(overheads[2]);
  }
  table.add_row({"Average", "-", util::fmt_percent(moead_stats.mean(), 1),
                 util::fmt_percent(moos_stats.mean(), 1)});
  table.print();

  std::printf("\nExpected shape (paper): overheads mostly >= 0 (MOELA's "
              "designs have the lowest EDP), up to ~7.7%%; paper averages "
              "~4%% (MOEA/D) and ~3%% (MOOS).\n");
  return 0;
}
