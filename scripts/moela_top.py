#!/usr/bin/env python3
"""One-screen fleet monitor for moela_serve daemons (stdlib only).

Polls each endpoint's `health` and `metrics` verbs over the line-delimited
JSON protocol (docs/protocol.md) and renders a one-line-per-daemon table:
version, uptime, in-flight load, queue depth per priority class, runs
handled, cache hit rate, and request throughput. One shot by default;
--watch N redraws every N seconds until Ctrl-C.

    scripts/moela_top.py :7313
    scripts/moela_top.py host1:7313 host2:7313 --watch 2

Unreachable daemons render as "down" rows instead of aborting, so the
monitor stays useful while part of the fleet restarts.
"""

import argparse
import json
import socket
import sys
import time


def parse_endpoint(spec):
    """'host:port' / ':port' / 'host' / 'port' -> (host, port)."""
    host, port = "127.0.0.1", 7313
    if spec.isdigit():
        return host, int(spec)
    if ":" in spec:
        head, _, tail = spec.rpartition(":")
        if head:
            host = head
        if tail:
            port = int(tail)
    elif spec:
        host = spec
    return host, port


def ask(host, port, verb, timeout):
    """One verb round-trip on a fresh connection; returns the parsed reply."""
    with socket.create_connection((host, port), timeout=timeout) as sock:
        sock.sendall((json.dumps({"id": 1, "verb": verb}) + "\n").encode())
        buf = b""
        while not buf.endswith(b"\n"):
            chunk = sock.recv(65536)
            if not chunk:
                raise ConnectionError("connection closed mid-reply")
            buf += chunk
    return json.loads(buf.decode())


def counter_total(metrics, family):
    """Sum of a counter family's series values (0 when it never fired)."""
    series = metrics.get(family, {}).get("series", [])
    return sum(int(entry.get("value", 0)) for entry in series)


def cache_hit_rate(metrics):
    lookups = metrics.get("moela_cache_lookups_total", {}).get("series", [])
    hits = misses = 0
    for entry in lookups:
        value = int(entry.get("value", 0))
        if entry.get("labels", {}).get("result") == "miss":
            misses += value
        else:
            hits += value
    total = hits + misses
    return (100.0 * hits / total) if total else None


def format_uptime(seconds):
    seconds = int(seconds)
    if seconds >= 3600:
        return "%dh%02dm" % (seconds // 3600, seconds % 3600 // 60)
    if seconds >= 60:
        return "%dm%02ds" % (seconds // 60, seconds % 60)
    return "%ds" % seconds


def sample(host, port, timeout):
    health = ask(host, port, "health", timeout)
    snapshot = ask(host, port, "metrics", timeout)
    metrics = snapshot.get("metrics", {})
    classes = health.get("classes", {})
    queued = "/".join(
        str(classes.get(name, {}).get("queued", 0))
        for name in ("interactive", "normal", "batch"))
    rate = cache_hit_rate(metrics)
    return {
        "version": snapshot.get("version", "?"),
        "uptime": format_uptime(snapshot.get("uptime_seconds", 0)),
        "inflight": "%s/%s" % (health.get("inflight", "?"),
                               health.get("max_inflight", "?")),
        "queued": queued,
        "runs": health.get("runs_handled", 0),
        "cache": "%.0f%%" % rate if rate is not None else "-",
        "requests": counter_total(snapshot.get("metrics", {}),
                                  "moela_requests_total"),
        "accepting": health.get("accepting", False),
    }


COLUMNS = ("endpoint", "state", "version", "uptime", "inflight",
           "queued i/n/b", "runs", "cache", "requests")


def render(rows):
    table = [COLUMNS] + rows
    widths = [max(len(str(row[i])) for row in table)
              for i in range(len(COLUMNS))]
    for row in table:
        print("  ".join(str(cell).ljust(width)
                        for cell, width in zip(row, widths)).rstrip())


def snapshot_fleet(endpoints, timeout):
    rows = []
    for host, port in endpoints:
        label = "%s:%d" % (host, port)
        try:
            s = sample(host, port, timeout)
            state = "up" if s["accepting"] else "draining"
            rows.append((label, state, s["version"], s["uptime"],
                         s["inflight"], s["queued"], s["runs"], s["cache"],
                         s["requests"]))
        except (OSError, ValueError, KeyError) as error:
            rows.append((label, "down", "-", "-", "-", "-", "-", "-",
                         str(error)[:40] or "unreachable"))
    return rows


def main():
    parser = argparse.ArgumentParser(
        description="one-screen monitor for a moela_serve fleet")
    parser.add_argument("endpoints", nargs="+", metavar="HOST:PORT",
                        help="daemons to poll (':7313', 'host', 'host:port')")
    parser.add_argument("--watch", type=float, metavar="SECONDS",
                        help="redraw every SECONDS instead of one shot")
    parser.add_argument("--timeout", type=float, default=2.0,
                        help="per-verb socket timeout (default 2s)")
    args = parser.parse_args()
    endpoints = [parse_endpoint(spec) for spec in args.endpoints]

    try:
        while True:
            rows = snapshot_fleet(endpoints, args.timeout)
            if args.watch:
                # ANSI clear+home: a redraw, not a scroll.
                sys.stdout.write("\x1b[2J\x1b[H")
                print(time.strftime("moela_top  %Y-%m-%d %H:%M:%S"))
            render(rows)
            if not args.watch:
                return 0 if all(row[1] != "down" for row in rows) else 1
            sys.stdout.flush()
            time.sleep(args.watch)
    except KeyboardInterrupt:
        return 0


if __name__ == "__main__":
    sys.exit(main())
