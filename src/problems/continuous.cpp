#include "problems/continuous.hpp"

#include <algorithm>
#include <cmath>

namespace moela::problems {

namespace {
double clamp01(double v) { return std::clamp(v, 0.0, 1.0); }
}  // namespace

RealVector sbx_crossover(const RealVector& a, const RealVector& b,
                         util::Rng& rng, double eta, double crossover_prob) {
  RealVector child = a;
  if (!rng.chance(crossover_prob)) return child;
  for (std::size_t i = 0; i < child.size(); ++i) {
    if (!rng.chance(0.5)) {
      child[i] = b[i];
      continue;
    }
    const double u = rng.uniform();
    const double beta =
        u <= 0.5 ? std::pow(2.0 * u, 1.0 / (eta + 1.0))
                 : std::pow(1.0 / (2.0 * (1.0 - u)), 1.0 / (eta + 1.0));
    child[i] = clamp01(0.5 * ((1.0 + beta) * a[i] + (1.0 - beta) * b[i]));
  }
  return child;
}

RealVector polynomial_mutation(const RealVector& x, util::Rng& rng,
                               double eta) {
  RealVector out = x;
  const double gene_prob = 1.0 / static_cast<double>(std::max<std::size_t>(
                                     1, out.size()));
  for (auto& g : out) {
    if (!rng.chance(gene_prob)) continue;
    const double u = rng.uniform();
    double delta;
    if (u < 0.5) {
      delta = std::pow(2.0 * u, 1.0 / (eta + 1.0)) - 1.0;
    } else {
      delta = 1.0 - std::pow(2.0 * (1.0 - u), 1.0 / (eta + 1.0));
    }
    g = clamp01(g + delta);
  }
  return out;
}

RealVector coordinate_step(const RealVector& x, util::Rng& rng, double step) {
  RealVector out = x;
  if (out.empty()) return out;
  const std::size_t i = rng.below(out.size());
  out[i] = clamp01(out[i] + rng.uniform(-step, step));
  return out;
}

RealVector random_unit_vector(std::size_t n, util::Rng& rng) {
  RealVector v(n);
  for (auto& g : v) g = rng.uniform();
  return v;
}

}  // namespace moela::problems
