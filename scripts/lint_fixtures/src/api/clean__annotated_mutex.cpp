// Fixture: the sanctioned way to hold a lock — the annotated wrappers
// from util/thread_annotations.hpp. No raw std synchronization token
// appears, so the naked-mutex rule has nothing to say; the includes all
// point downward, so layer-order is satisfied too.
#include "util/thread_annotations.hpp"

namespace moela::api {

class Fixture {
 public:
  void poke() {
    util::MutexLock lock(mutex_);
    ++value_;
    cv_.notify_one();
  }

 private:
  util::Mutex mutex_;
  util::CondVar cv_;
  int value_ MOELA_GUARDED_BY(mutex_) = 0;
};

}  // namespace moela::api
