// Batch sweep: the batched-execution API end to end. Builds a grid of
// RunRequests (2 problems x 2 algorithms x 2 replicate seeds), schedules
// it on the thread-pooled api::Executor with live progress reporting, then
// re-runs the identical batch to show the result cache serving every cell.
//
// The same machinery powers moela_cli's --jobs/--replicates flags and the
// paper benches' grids (exp::run_app_scenarios).
//
// Build & run:
//   cmake -B build && cmake --build build -j
//   ./build/examples/batch_sweep
#include <cstdio>
#include <string>
#include <vector>

#include "api/executor.hpp"
#include "api/request.hpp"
#include "api/result_cache.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace moela;

namespace {

std::vector<api::RunRequest> build_grid() {
  std::vector<api::RunRequest> requests;
  for (const char* problem : {"zdt1", "dtlz2"}) {
    for (const char* algorithm : {"moela", "nsga2"}) {
      api::RunRequest base;
      base.problem = problem;
      base.algorithm = algorithm;
      base.options.max_evaluations = 3000;
      base.options.snapshot_interval = 500;
      base.options.population_size = 20;
      base.options.seed = 1;
      // One knob bag can configure several algorithms: unknown keys are
      // ignored (and moela_cli would warn about actual typos).
      base.options.knobs.set("moela.forest.trees", 6).set(
          "nsga2.max_generations", 400);
      // 2 replicate seeds per cell: seeds 1 and 2.
      for (auto& request : api::expand_replicates(base, 2)) {
        requests.push_back(std::move(request));
      }
    }
  }
  return requests;
}

double run_batch(api::Executor& executor,
                 const std::vector<api::RunRequest>& requests,
                 std::vector<api::RunReport>& reports) {
  api::RunControl control;
  control.on_progress([](const api::RunProgress& progress) {
    if (!progress.finished) return;  // cadence events also available
    std::printf("  [%zu/%zu] %-8s done: %zu evals in %.2f s%s\n",
                progress.completed, progress.batch_size,
                progress.algorithm.c_str(), progress.evaluations,
                progress.seconds, progress.cache_hit ? " (cached)" : "");
  });
  util::Timer wall;
  reports = executor.run_all(requests, &control);
  return wall.elapsed_seconds();
}

}  // namespace

int main() {
  const std::vector<api::RunRequest> requests = build_grid();
  api::ResultCache cache;  // memory-only; pass a directory to persist
  api::Executor executor({.jobs = 4, .cache = &cache});

  std::printf("Scheduling %zu runs on %zu workers...\n", requests.size(),
              executor.jobs());
  std::vector<api::RunReport> reports;
  const double cold = run_batch(executor, requests, reports);

  util::Table table("Batch results");
  table.set_header({"problem", "algorithm", "seed", "front size", "evals"});
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const auto& p = reports[i].provenance;
    table.add_row({p.problem, reports[i].algorithm, std::to_string(p.seed),
                   std::to_string(reports[i].final_front.size()),
                   std::to_string(reports[i].evaluations)});
  }
  table.print();

  std::printf("\nRe-running the identical batch against the cache...\n");
  std::vector<api::RunReport> cached_reports;
  const double warm = run_batch(executor, requests, cached_reports);

  std::size_t hits = 0;
  bool identical = true;
  for (std::size_t i = 0; i < cached_reports.size(); ++i) {
    hits += cached_reports[i].provenance.cache_hit ? 1 : 0;
    identical = identical &&
                cached_reports[i].final_front == reports[i].final_front;
  }
  std::printf("\nCold batch: %.2f s. Warm batch: %.4f s (%zu/%zu cache "
              "hits, fronts %s).\n",
              cold, warm, hits, cached_reports.size(),
              identical ? "identical" : "DIFFERENT!");
  return identical ? 0 : 1;
}
