#include "api/optimizer.hpp"

#include "util/numeric.hpp"

namespace moela::api {

bool KnobBag::parse_assignment(const std::string& assignment) {
  const auto eq = assignment.find('=');
  if (eq == std::string::npos || eq == 0) return false;
  const std::string name = assignment.substr(0, eq);
  const std::string value = assignment.substr(eq + 1);
  if (value.empty()) return false;
  double parsed = 0.0;
  if (!util::parse_double(value, parsed)) return false;
  set(name, parsed);
  return true;
}

RunReport Optimizer::run(const RunOptions& options, RunControl* control,
                         std::size_t batch_index, std::size_t batch_size,
                         const RunCheckpoint& checkpoint) {
  core::EvalContext<AnyProblem> ctx(problem_, options.seed,
                                    options.max_evaluations,
                                    options.snapshot_interval,
                                    options.max_seconds);
  RunReport report;
  report.algorithm = name();
  if (checkpoint.checkpoint) ctx.record_journal(true);
  if (checkpoint.resume != nullptr) {
    // Replay-based resume: the journal prefix substitutes for the problem,
    // the algorithm re-derives its internal state deterministically, and
    // the budget keeps counting from zero — so the resumed run stops at
    // the same evaluation the uninterrupted one would.
    ctx.resume_from(checkpoint.resume->journal);
  }
  if (control != nullptr || checkpoint.on_snapshot ||
      checkpoint.checkpoint) {
    if (control != nullptr) ctx.set_stop_flag(control->stop_flag());
    ctx.set_progress_hook([&](std::size_t evaluations, double seconds) {
      std::shared_ptr<const RunSnapshot> snapshot;
      if (checkpoint.checkpoint) {
        auto snap = std::make_shared<RunSnapshot>();
        snap->fingerprint = checkpoint.fingerprint;
        snap->evaluations = evaluations;
        snap->journal = ctx.journal();
        if (checkpoint.on_snapshot) checkpoint.on_snapshot(*snap);
        snapshot = std::move(snap);
      }
      if (control == nullptr) return;
      RunProgress progress;
      progress.algorithm = report.algorithm;
      progress.batch_index = batch_index;
      progress.batch_size = batch_size;
      progress.evaluations = evaluations;
      progress.seconds = seconds;
      progress.max_evaluations = options.max_evaluations;
      progress.snapshot = std::move(snapshot);
      control->notify(progress);
    });
  }
  run_body(ctx, options, report);
  ctx.take_snapshot();  // final state
  report.snapshots = ctx.snapshots();
  report.final_front = ctx.archive().objective_set();
  report.evaluations = ctx.evaluations();
  report.seconds = ctx.elapsed_seconds();
  report.provenance.seed = options.seed;
  report.provenance.knobs = options.knobs.values();
  report.provenance.cancelled =
      control != nullptr && control->stop_requested();
  return report;
}

}  // namespace moela::api
