// End-to-end integration: the full MOELA pipeline on the NoC design problem
// (small platform for speed), plus NocProblem's MooProblem conformance.
#include <gtest/gtest.h>

#include "core/eval_context.hpp"
#include "core/moela.hpp"
#include "exp/analysis.hpp"
#include "exp/experiment.hpp"
#include "noc/constraints.hpp"
#include "noc/problem.hpp"
#include "sim/rodinia.hpp"

namespace moela {
namespace {

noc::NocProblem small_problem(std::size_t m, std::uint64_t seed = 1) {
  auto spec = noc::PlatformSpec::small_3x3x3();
  auto workload = sim::make_workload(spec, sim::RodiniaApp::kBfs, seed);
  return noc::NocProblem(std::move(spec), std::move(workload), m);
}

core::MoelaConfig small_config() {
  core::MoelaConfig c;
  c.population_size = 15;
  c.n_local = 3;
  c.neighborhood_size = 5;
  c.train_capacity = 1000;
  c.forest.num_trees = 6;
  c.forest.max_depth = 8;
  c.forest.max_features = 16;
  c.local_search.max_steps = 10;
  c.local_search.patience = 5;
  c.local_search.max_evaluations = 40;
  return c;
}

TEST(NocProblem, SatisfiesConceptContract) {
  const auto problem = small_problem(5);
  util::Rng rng(2);
  const auto d = problem.random_design(rng);
  EXPECT_EQ(problem.num_objectives(), 5u);
  const auto obj = problem.evaluate(d);
  EXPECT_EQ(obj.size(), 5u);
  for (double v : obj) EXPECT_GE(v, 0.0);
  const auto f = problem.features(d);
  EXPECT_EQ(f.size(), problem.num_features());
}

TEST(NocProblem, ObjectiveCountSelectsScenario) {
  for (std::size_t m : {3ul, 4ul, 5ul}) {
    const auto problem = small_problem(m);
    util::Rng rng(3);
    EXPECT_EQ(problem.evaluate(problem.random_design(rng)).size(), m);
  }
  auto spec = noc::PlatformSpec::small_3x3x3();
  auto w = sim::make_workload(spec, sim::RodiniaApp::kBfs, 1);
  EXPECT_THROW(noc::NocProblem(spec, w, 6), std::invalid_argument);
  EXPECT_THROW(noc::NocProblem(spec, w, 1), std::invalid_argument);
}

TEST(NocProblem, EvaluationIsPure) {
  const auto problem = small_problem(5);
  util::Rng rng(5);
  const auto d = problem.random_design(rng);
  EXPECT_EQ(problem.evaluate(d), problem.evaluate(d));
}

TEST(NocProblem, FeaturesDistinguishDesigns) {
  const auto problem = small_problem(3);
  util::Rng rng(7);
  const auto a = problem.random_design(rng);
  const auto b = problem.random_design(rng);
  EXPECT_NE(problem.features(a), problem.features(b));
}

TEST(Integration, MoelaOnNocKeepsAllDesignsFeasible) {
  const auto problem = small_problem(5);
  core::EvalContext<noc::NocProblem> ctx(problem, 11, 1500);
  core::Moela<noc::NocProblem> algo(small_config());
  const auto pop = algo.run(ctx);
  for (std::size_t i = 0; i < pop.size(); ++i) {
    const auto report = noc::validate(problem.spec(), pop.design(i));
    EXPECT_TRUE(report.ok())
        << (report.violations.empty() ? "?" : report.violations.front());
  }
}

TEST(Integration, ArchiveIsNonDominatedAndConsistent) {
  const auto problem = small_problem(3);
  core::EvalContext<noc::NocProblem> ctx(problem, 13, 1200);
  core::Moela<noc::NocProblem> algo(small_config());
  algo.run(ctx);
  const auto points = ctx.archive().objective_set();
  ASSERT_FALSE(points.empty());
  for (std::size_t i = 0; i < points.size(); ++i) {
    for (std::size_t j = 0; j < points.size(); ++j) {
      if (i != j) {
        EXPECT_FALSE(moo::dominates(points[i], points[j]));
      }
    }
  }
}

TEST(Integration, MoelaImprovesOverInitialPopulation) {
  const auto problem = small_problem(5);
  // Initial-quality proxy: PHV of a pure random population of equal size.
  core::EvalContext<noc::NocProblem> random_ctx(problem, 17, 1500);
  while (!random_ctx.exhausted()) {
    random_ctx.evaluate(problem.random_design(random_ctx.rng()));
  }
  core::EvalContext<noc::NocProblem> ctx(problem, 17, 1500);
  core::Moela<noc::NocProblem> algo(small_config());
  algo.run(ctx);

  exp::SnapshotSet runs;
  random_ctx.take_snapshot();
  ctx.take_snapshot();
  runs.push_back(random_ctx.snapshots());
  runs.push_back(ctx.snapshots());
  const auto bounds = exp::global_bounds(runs);
  const double random_phv = exp::final_phv(
      random_ctx.archive().objective_set(), bounds);
  const double moela_phv =
      exp::final_phv(ctx.archive().objective_set(), bounds);
  EXPECT_GT(moela_phv, random_phv);
}

TEST(Integration, FullRunnerOnNocProblem) {
  const auto problem = small_problem(4);
  exp::RunConfig config;
  config.max_evaluations = 1000;
  config.snapshot_interval = 200;
  config.population_size = 12;
  config.n_local = 2;
  config.moela = small_config();
  config.moos.search.max_steps = 8;
  config.moos.search.patience = 4;
  config.moos.search.max_evaluations = 24;
  config.stage.search.max_steps = 8;
  config.stage.search.neighbors_per_step = 3;
  config.stage.forest.num_trees = 4;
  config.stage.forest.max_depth = 6;
  for (exp::Algorithm a : {exp::Algorithm::kMoela, exp::Algorithm::kMoeaD,
                           exp::Algorithm::kMoos}) {
    const auto result = exp::run_algorithm(a, problem, config);
    EXPECT_FALSE(result.final_designs.empty());
    for (const auto& d : result.final_designs) {
      EXPECT_TRUE(noc::is_feasible(problem.spec(), d));
    }
  }
}

TEST(Integration, DeterministicEndToEnd) {
  const auto problem = small_problem(3);
  auto run_once = [&] {
    core::EvalContext<noc::NocProblem> ctx(problem, 23, 800);
    core::Moela<noc::NocProblem> algo(small_config());
    algo.run(ctx);
    return ctx.archive().objective_set();
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace moela
