// Deterministic, splittable random number generation for reproducible DSE runs.
//
// Every stochastic component in the library (population initialization, genetic
// operators, local-search moves, forest bootstrapping) draws from a util::Rng
// that is seeded explicitly. Experiments are reproducible from a single root
// seed; independent streams are derived with Rng::split() so that adding a
// consumer does not perturb the draws seen by existing consumers.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <random>
#include <vector>

namespace moela::util {

/// SplitMix64 — used for seeding and stream derivation.
/// Reference: Steele, Lea, Flood, "Fast splittable pseudorandom number
/// generators", OOPSLA 2014.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 — the library-wide PRNG engine.
/// Satisfies std::uniform_random_bit_generator so it interoperates with
/// <random> distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Constructs a generator whose four words of state are expanded from
  /// `seed` via SplitMix64 (the initialization recommended by the authors).
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  void reseed(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& w : s_) w = sm.next();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Derives an independent child stream. The child's seed mixes this
  /// generator's next output, so repeated splits yield distinct streams.
  Rng split() { return Rng((*this)() ^ 0xd1b54a32d192ed03ULL); }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). Requires n > 0. Uses Lemire's unbiased
  /// multiply-shift rejection method.
  std::uint64_t below(std::uint64_t n) {
    // Debiased integer multiplication (Lemire 2018).
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto l = static_cast<std::uint64_t>(m);
    if (l < n) {
      const std::uint64_t t = (0 - n) % n;
      while (l < t) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * n;
        l = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Bernoulli(p).
  bool chance(double p) { return uniform() < p; }

  /// Standard normal via Marsaglia polar method.
  double normal() {
    if (has_spare_) {
      has_spare_ = false;
      return spare_;
    }
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double f = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * f;
    has_spare_ = true;
    return u * f;
  }

  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[below(i)]);
    }
  }

  /// Picks a uniformly random element. Requires non-empty v.
  template <typename T>
  const T& pick(const std::vector<T>& v) {
    return v[below(v.size())];
  }

  /// Samples k distinct indices from [0, n) (k <= n), in random order.
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k);

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4]{};
  bool has_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace moela::util
