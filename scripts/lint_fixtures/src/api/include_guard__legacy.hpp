// Fixture: seeded violation — legacy #ifndef guard instead of pragma once.
#ifndef MOELA_FIXTURE_LEGACY_H
#define MOELA_FIXTURE_LEGACY_H
inline int forty_two() { return 42; }
#endif
