#include "exp/experiment.hpp"

namespace moela::exp {

std::string algorithm_name(Algorithm a) {
  switch (a) {
    case Algorithm::kMoela:
      return "MOELA";
    case Algorithm::kMoeaD:
      return "MOEA/D";
    case Algorithm::kMoos:
      return "MOOS";
    case Algorithm::kMooStage:
      return "MOO-STAGE";
    case Algorithm::kNsga2:
      return "NSGA-II";
    case Algorithm::kMoelaNoMlGuide:
      return "MOELA-noguide";
    case Algorithm::kMoelaEaOnly:
      return "MOELA-EA-only";
    case Algorithm::kMoelaLocalOnly:
      return "MOELA-LS-only";
  }
  return "unknown";
}

}  // namespace moela::exp
