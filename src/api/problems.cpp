#include "api/problems.hpp"

#include <algorithm>
#include <cctype>
#include <stdexcept>
#include <utility>

#include "noc/problem.hpp"
#include "problems/dtlz.hpp"
#include "problems/knapsack.hpp"
#include "problems/zdt.hpp"
#include "sim/rodinia.hpp"

namespace moela::api {
namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

sim::RodiniaApp parse_app(const std::string& tag) {
  const std::string want = lower(tag);
  for (sim::RodiniaApp app : sim::all_rodinia_apps()) {
    if (lower(sim::app_name(app)) == want) return app;
  }
  throw std::invalid_argument("make_problem: unknown NoC app '" + tag + "'");
}

std::size_t objectives_or(const ProblemOptions& o, std::size_t fallback) {
  return o.num_objectives == 0 ? fallback : o.num_objectives;
}

std::size_t variables_or(const ProblemOptions& o, std::size_t fallback) {
  return o.num_variables == 0 ? fallback : o.num_variables;
}

}  // namespace

std::vector<std::string> problem_names() {
  return {"zdt1", "zdt2", "zdt3", "dtlz1", "dtlz2", "knapsack", "noc"};
}

AnyProblem make_problem(const std::string& name,
                        const ProblemOptions& options) {
  const std::string key = lower(name);
  if (key == "zdt1" || key == "zdt2" || key == "zdt3") {
    if (options.num_objectives != 0 && options.num_objectives != 2) {
      throw std::invalid_argument("make_problem: ZDT problems are 2-objective");
    }
    const problems::ZdtVariant variant =
        key == "zdt1"   ? problems::ZdtVariant::kZdt1
        : key == "zdt2" ? problems::ZdtVariant::kZdt2
                        : problems::ZdtVariant::kZdt3;
    return AnyProblem(problems::Zdt(variant, variables_or(options, 30)));
  }
  if (key == "dtlz1") {
    return AnyProblem(problems::Dtlz1(objectives_or(options, 3),
                                      variables_or(options, 5)));
  }
  if (key == "dtlz2") {
    return AnyProblem(problems::Dtlz2(objectives_or(options, 3),
                                      variables_or(options, 10)));
  }
  if (key == "knapsack") {
    return AnyProblem(problems::MultiObjectiveKnapsack(
        variables_or(options, 100), objectives_or(options, 2), options.seed));
  }
  if (key == "noc") {
    noc::PlatformSpec spec = options.small_platform
                                 ? noc::PlatformSpec::small_3x3x3()
                                 : noc::PlatformSpec::paper_4x4x4();
    noc::Workload workload =
        sim::make_workload(spec, parse_app(options.app), options.seed);
    return AnyProblem(noc::NocProblem(std::move(spec), std::move(workload),
                                      objectives_or(options, 5)));
  }
  std::string known;
  for (const auto& n : problem_names()) {
    if (!known.empty()) known += ", ";
    known += n;
  }
  throw std::out_of_range("make_problem: unknown problem '" + name +
                          "' (known: " + known + ")");
}

}  // namespace moela::api
