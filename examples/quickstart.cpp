// Quickstart: explore the paper's 4x4x4 heterogeneous manycore platform
// with MOELA on one Rodinia-like workload and print the Pareto front —
// through the runtime-composable Optimizer API: the problem is wrapped in
// api::AnyProblem, the algorithm comes from the string-keyed registry, and
// swapping "moela" for "nsga2" (or any other key) is a one-string change.
//
// Build & run:
//   cmake -B build && cmake --build build -j
//   ./build/examples/quickstart
#include <cstdio>

#include "api/problems.hpp"
#include "api/registry.hpp"
#include "exp/analysis.hpp"
#include "noc/constraints.hpp"
#include "noc/problem.hpp"
#include "sim/rodinia.hpp"
#include "util/table.hpp"

using namespace moela;

int main() {
  // 1. The platform of Sec. V.A: 8 CPUs + 40 GPUs + 16 LLCs on a 4x4x4
  //    grid, 96 planar links + 48 TSVs.
  noc::PlatformSpec spec = noc::PlatformSpec::paper_4x4x4();
  std::printf("Platform: %s\n", spec.describe().c_str());

  // 2. A synthetic Rodinia-like workload (traffic + power profile).
  noc::Workload workload =
      sim::make_workload(spec, sim::RodiniaApp::kBfs, /*seed=*/7);
  std::printf("Workload: %s, total traffic %.1f flits/kcycle\n",
              workload.name.c_str(), workload.traffic.total());

  // 3. The 5-objective design problem (traffic mean/variance, CPU latency,
  //    energy, thermal), type-erased so any registered algorithm can run it.
  api::AnyProblem problem(noc::NocProblem(spec, workload,
                                          /*num_objectives=*/5));

  // 4. Pick MOELA from the registry and run it with a small budget. The
  //    knob bag carries the algorithm-specific tuning.
  api::RunOptions options;
  options.max_evaluations = 4000;
  options.snapshot_interval = 500;
  options.seed = 42;
  options.population_size = 30;
  options.n_local = 4;
  options.knobs.set("moela.train_capacity", 2000)
      .set("moela.forest.trees", 8)
      .set("moela.forest.max_depth", 10)
      .set("moela.forest.max_features", 24);

  auto optimizer = api::registry().create("moela", problem);
  const api::RunReport report = optimizer->run(options);

  std::printf("\n%s ran %zu evaluations in %.2f s; the all-time front "
              "holds %zu non-dominated designs.\n",
              report.algorithm.c_str(), report.evaluations, report.seconds,
              report.final_front.size());

  // 5. Verify and display a few population members.
  util::Table table("Final population (first 10 members)");
  table.set_header({"member", "mean util", "var util", "CPU latency",
                    "energy", "thermal", "feasible"});
  for (std::size_t i = 0; i < report.final_designs.size() && i < 10; ++i) {
    const auto& obj = report.final_objectives[i];
    const bool ok = noc::is_feasible(
        spec, report.final_designs[i].as<noc::NocDesign>());
    table.add_row({std::to_string(i), util::fmt(obj[0], 2),
                   util::fmt(obj[1], 2), util::fmt(obj[2], 1),
                   util::fmt(obj[3], 0), util::fmt(obj[4], 2),
                   ok ? "yes" : "NO"});
  }
  table.print();

  // 6. Anytime quality: PHV trace of this run.
  exp::SnapshotSet runs{report.snapshots};
  const auto bounds = exp::global_bounds(runs);
  const auto traces = exp::phv_traces(runs, bounds);
  std::printf("\nAnytime PHV (normalized):\n");
  for (const auto& p : traces[0]) {
    std::printf("  evals %6zu  phv %.4f\n", p.evaluations, p.phv);
  }
  return 0;
}
