// Fixture: an upward include edge — serve/ (rank 4) reaching into exp/
// (rank 5) inverts the layer DAG of docs/architecture.md, so the
// layer-order rule must flag it.
#include "exp/driver.hpp"

namespace moela::serve {

int fixture() { return 0; }

}  // namespace moela::serve
