#include "moo/archive.hpp"

#include <algorithm>
#include <limits>

#include "moo/pareto.hpp"

namespace moela::moo {

bool ParetoArchive::insert(ObjectiveVector objectives, std::size_t id) {
  for (const auto& e : entries_) {
    const Dominance d = compare(e.objectives, objectives);
    if (d == Dominance::kDominates || d == Dominance::kEqual) return false;
  }
  std::erase_if(entries_, [&](const Entry& e) {
    return compare(objectives, e.objectives) == Dominance::kDominates;
  });
  entries_.push_back(Entry{std::move(objectives), id});
  if (capacity_ > 0 && entries_.size() > capacity_) evict_most_crowded();
  return true;
}

bool ParetoArchive::would_accept(const ObjectiveVector& obj) const {
  for (const auto& e : entries_) {
    const Dominance d = compare(e.objectives, obj);
    if (d == Dominance::kDominates || d == Dominance::kEqual) return false;
  }
  return true;
}

std::vector<ObjectiveVector> ParetoArchive::objective_set() const {
  std::vector<ObjectiveVector> out;
  out.reserve(entries_.size());
  for (const auto& e : entries_) out.push_back(e.objectives);
  return out;
}

void ParetoArchive::evict_most_crowded() {
  // Evict the entry with the smallest crowding distance (most redundant).
  const auto points = objective_set();
  std::vector<std::size_t> front(points.size());
  for (std::size_t i = 0; i < front.size(); ++i) front[i] = i;
  const auto dist = crowding_distance(points, front);
  std::size_t victim = 0;
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < dist.size(); ++i) {
    if (dist[i] < best) {
      best = dist[i];
      victim = i;
    }
  }
  entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(victim));
}

}  // namespace moela::moo
