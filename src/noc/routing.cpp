#include "noc/routing.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>

namespace moela::noc {

RoutingTable::RoutingTable(const PlatformSpec& spec, const NocDesign& design)
    : n_(spec.num_tiles()),
      dist_(n_ * n_, -1),
      parent_(n_ * n_, 0) {
  const Adjacency adj(spec, design.links);
  std::deque<TileId> queue;
  for (TileId s = 0; s < n_; ++s) {
    dist_[index(s, s)] = 0;
    parent_[index(s, s)] = s;
    queue.clear();
    queue.push_back(s);
    while (!queue.empty()) {
      const TileId u = queue.front();
      queue.pop_front();
      const int du = dist_[index(s, u)];
      // Ascending neighbor order gives the deterministic tie-break.
      for (TileId v : adj.neighbors(u)) {
        if (dist_[index(s, v)] < 0) {
          dist_[index(s, v)] = du + 1;
          parent_[index(s, v)] = u;
          queue.push_back(v);
        }
      }
    }
  }
}

std::vector<TileId> RoutingTable::path(TileId s, TileId t) const {
  if (dist_[index(s, t)] < 0) {
    throw std::logic_error("RoutingTable::path: unreachable pair");
  }
  std::vector<TileId> out;
  TileId cur = t;
  while (cur != s) {
    out.push_back(cur);
    cur = parent_[index(s, cur)];
  }
  out.push_back(s);
  std::reverse(out.begin(), out.end());
  return out;
}

std::size_t LinkIndex::of(TileId a, TileId b) const {
  const Link key(a, b);
  const auto it = std::lower_bound(links_->begin(), links_->end(), key);
  if (it == links_->end() || !(*it == key)) {
    throw std::logic_error("LinkIndex::of: link not in set");
  }
  return static_cast<std::size_t>(it - links_->begin());
}

}  // namespace moela::noc
