// Edge-regime platform variants: single-layer (pure 2D NoC), tall narrow
// stacks, minimum link budgets (spanning-tree-tight), and unsaturated TSV
// budgets. The generator, routing, objectives, and the full MOELA pipeline
// must work across all of them — these regimes exercise branches the
// paper's 4x4x4 never hits (no vertical links at all, budget == n-1, etc.).
#include <gtest/gtest.h>

#include "core/eval_context.hpp"
#include "core/moela.hpp"
#include "noc/constraints.hpp"
#include "noc/problem.hpp"
#include "sim/rodinia.hpp"
#include "util/rng.hpp"

namespace moela::noc {
namespace {

PlatformSpec single_layer_4x4() {
  // 16 tiles, one layer: a classic 2D NoC. No TSVs exist.
  std::vector<PeType> cores;
  cores.insert(cores.end(), 2, PeType::kCpu);
  cores.insert(cores.end(), 10, PeType::kGpu);
  cores.insert(cores.end(), 4, PeType::kLlc);
  return PlatformSpec(4, 4, 1, std::move(cores), 24, 0);
}

PlatformSpec tall_stack_2x2x4() {
  // 16 tiles in a tall stack; every tile is an edge tile.
  std::vector<PeType> cores;
  cores.insert(cores.end(), 2, PeType::kCpu);
  cores.insert(cores.end(), 10, PeType::kGpu);
  cores.insert(cores.end(), 4, PeType::kLlc);
  return PlatformSpec(2, 2, 4, std::move(cores), 12, 8);
}

PlatformSpec tight_budget_3x3x2() {
  // 18 tiles with the minimum budget that can still connect them:
  // 17 links total (12 planar + 5 vertical).
  std::vector<PeType> cores;
  cores.insert(cores.end(), 2, PeType::kCpu);
  cores.insert(cores.end(), 10, PeType::kGpu);
  cores.insert(cores.end(), 6, PeType::kLlc);
  return PlatformSpec(3, 3, 2, std::move(cores), 12, 5);
}

class VariantSweep : public ::testing::TestWithParam<int> {
 protected:
  PlatformSpec make() const {
    switch (GetParam()) {
      case 0:
        return single_layer_4x4();
      case 1:
        return tall_stack_2x2x4();
      default:
        return tight_budget_3x3x2();
    }
  }
};

TEST_P(VariantSweep, RandomDesignsFeasible) {
  const auto spec = make();
  DesignOps ops(spec);
  util::Rng rng(17);
  for (int i = 0; i < 10; ++i) {
    const auto d = ops.random_design(rng);
    const auto report = validate(spec, d);
    ASSERT_TRUE(report.ok())
        << (report.violations.empty() ? "?" : report.violations.front());
  }
}

TEST_P(VariantSweep, OperatorsPreserveFeasibility) {
  const auto spec = make();
  DesignOps ops(spec);
  util::Rng rng(19);
  auto a = ops.random_design(rng);
  const auto b = ops.random_design(rng);
  for (int i = 0; i < 15; ++i) {
    a = ops.random_neighbor(a, rng);
    ASSERT_TRUE(is_feasible(spec, a));
    const auto child = ops.crossover(a, b, rng);
    ASSERT_TRUE(is_feasible(spec, child));
  }
}

TEST_P(VariantSweep, ObjectivesEvaluateCleanly) {
  const auto spec = make();
  const auto workload = sim::make_workload(spec, sim::RodiniaApp::kSrad, 3);
  DesignOps ops(spec);
  util::Rng rng(23);
  const auto d = ops.random_design(rng);
  const auto obj = evaluate_objectives(spec, d, workload, {});
  EXPECT_GT(obj.traffic_mean, 0.0);
  EXPECT_GE(obj.traffic_variance, 0.0);
  EXPECT_GT(obj.cpu_latency, 0.0);
  EXPECT_GT(obj.energy, 0.0);
  EXPECT_GE(obj.thermal, 0.0);
}

TEST_P(VariantSweep, MoelaRunsEndToEnd) {
  const auto spec = make();
  auto workload = sim::make_workload(spec, sim::RodiniaApp::kBfs, 5);
  NocProblem problem(spec, std::move(workload), 3);
  core::MoelaConfig config;
  config.population_size = 10;
  config.n_local = 2;
  config.forest.num_trees = 4;
  config.local_search.max_evaluations = 15;
  core::EvalContext<NocProblem> ctx(problem, 29, 400);
  core::Moela<NocProblem> algo(config);
  const auto pop = algo.run(ctx);
  for (std::size_t i = 0; i < pop.size(); ++i) {
    EXPECT_TRUE(is_feasible(spec, pop.design(i)));
  }
}

INSTANTIATE_TEST_SUITE_P(Platforms, VariantSweep, ::testing::Values(0, 1, 2));

TEST(SingleLayer, ThermalReducesToBaseResistanceOnly) {
  // With one layer, T_n,1 = P_n,1 * (R_1 + R_b): verify against a direct
  // computation.
  const auto spec = single_layer_4x4();
  DesignOps ops(spec);
  util::Rng rng(31);
  const auto d = ops.random_design(rng);
  Workload w;
  w.name = "t";
  w.traffic = TrafficMatrix(spec.num_cores());
  w.core_power.assign(spec.num_cores(), 0.0);
  w.core_power[d.placement[5]] = 2.0;  // one hot tile
  NocObjectiveParams params;
  params.r_vertical = {0.5};
  params.r_base = 1.5;
  const auto obj = evaluate_objectives(spec, d, w, params);
  // Peak T = 2.0 * (0.5 + 1.5) = 4; dT = 4 - 0; thermal = 16.
  EXPECT_NEAR(obj.thermal, 16.0, 1e-9);
}

TEST(TallStack, VerticalBudgetBelowCandidatesIsMovable) {
  const auto spec = tall_stack_2x2x4();  // 8 of 12 TSV slots used
  EXPECT_LT(spec.num_vertical_links(), spec.vertical_candidates().size());
  DesignOps ops(spec);
  util::Rng rng(37);
  NocDesign d = ops.random_design(rng);
  int moved = 0;
  for (int i = 0; i < 30; ++i) {
    if (ops.move_vertical_link(d, rng)) {
      ++moved;
      ASSERT_TRUE(is_feasible(spec, d));
    }
  }
  EXPECT_GT(moved, 0);
}

TEST(TightBudget, SpanningTreeTightBudgetStillConnects) {
  const auto spec = tight_budget_3x3x2();
  // 18 tiles, 17 links: the link set must be exactly a spanning tree.
  DesignOps ops(spec);
  util::Rng rng(41);
  for (int i = 0; i < 5; ++i) {
    const auto d = ops.random_design(rng);
    EXPECT_EQ(d.links.size(), 17u);
    EXPECT_TRUE(Adjacency(spec, d.links).connected());
  }
}

}  // namespace
}  // namespace moela::noc
