// MOELA (Algorithms 1 and 2 of the paper): a hybrid multi-objective
// evolutionary/learning design-space-exploration algorithm.
//
// Per iteration:
//  1. pick n_local starting sub-problems — uniformly at random during the
//     first iter_early iterations, afterwards by the learned Eval function
//     (MLguide, Algorithm 2: the population members with the lowest
//     predicted final local-search value);
//  2. run a greedy local search (Eq. 8 weighted distance toward the
//     reference point z) from each start; record trajectories into S_train;
//     the improved design replaces the sub-problem incumbent and propagates
//     through the MOEA/D population-update rule;
//  3. retrain Eval (random forest) on S_train;
//  4. run one generation of the decomposition EA (neighborhood mating with
//     probability delta, Tchebycheff population update) over all
//     sub-problems.
//
// The ablation switches (use_ml_guide / use_local_search / use_ea) reduce
// MOELA to its components for the A1 ablation study in DESIGN.md.
#pragma once

#include <algorithm>
#include <cstddef>
#include <numeric>
#include <vector>

#include "core/decomposition.hpp"
#include "core/eval_context.hpp"
#include "core/eval_model.hpp"
#include "core/local_search.hpp"
#include "moo/problem.hpp"

namespace moela::core {

/// How MLguide ranks local-search starting points (Algorithm 2).
enum class GuideMode {
  /// Lowest predicted final Eq. (8) value e_i (Algorithm 2 as printed).
  kFinalValue,
  /// Largest predicted drop e_i - g_i(current) ("how much a design can
  /// improve towards the reference point", Sec. IV.B).
  kImprovement,
};

struct MoelaConfig {
  /// N: population size (= number of sub-problems / weight vectors).
  std::size_t population_size = 50;
  /// iter_early: iterations with random (un-guided) local-search starts.
  std::size_t iter_early = 2;
  /// n_local: local searches per iteration.
  std::size_t n_local = 5;
  /// delta: probability of mating within the weight neighborhood.
  double delta = 0.9;
  /// T: weight-neighborhood size.
  std::size_t neighborhood_size = 10;
  /// Max generations (the evaluation budget usually binds first).
  std::size_t max_generations = 1000;
  /// |S_train| bound (sliding window over trajectory samples).
  std::size_t train_capacity = 10000;
  /// Retrain Eval every k iterations (1 = every iteration, as in Alg. 1).
  std::size_t train_interval = 1;
  /// MOEA/D-style replacement cap per candidate.
  std::size_t max_replacements = 2;
  LocalSearchConfig local_search;
  ml::ForestConfig forest;
  GuideMode guide_mode = GuideMode::kFinalValue;

  // --- Ablation switches (all true = full MOELA) ---
  bool use_ml_guide = true;      // false: starts stay random forever
  bool use_local_search = true;  // false: pure decomposition EA (= MOEA/D)
  bool use_ea = true;            // false: pure ML-guided local search
};

template <moo::MooProblem P>
class Moela {
 public:
  using Design = typename P::Design;

  explicit Moela(MoelaConfig config = {}) : config_(config) {}

  /// Runs until the evaluation budget or max_generations is exhausted.
  /// Returns the final population (the N designs of Algorithm 1).
  DecompositionPopulation<P> run(EvalContext<P>& ctx) {
    const std::size_t m = ctx.problem().num_objectives();
    DecompositionPopulation<P> pop(config_.population_size, m,
                                   config_.neighborhood_size);
    // Snapshots measure the population MOELA maintains (the paper's PHV).
    ctx.set_solution_set_provider([&pop] { return pop.objective_set(); });
    pop.initialize(ctx);

    EvalModel eval_model(ctx.problem().num_features(), m,
                         config_.train_capacity, config_.forest);

    for (std::size_t gen = 0;
         gen < config_.max_generations && !ctx.exhausted(); ++gen) {
      if (config_.use_local_search) {
        run_local_search_stage(ctx, pop, eval_model, gen);
      }
      if (config_.use_ea) {
        decomposition_ea_generation(ctx, pop, config_.delta,
                                    config_.max_replacements);
      }
    }
    ctx.set_solution_set_provider(nullptr);  // pop is about to be moved
    return pop;
  }

  const MoelaConfig& config() const { return config_; }

 private:
  /// Algorithm 1 lines 3-11: start selection, descents, training.
  void run_local_search_stage(EvalContext<P>& ctx,
                              DecompositionPopulation<P>& pop,
                              EvalModel& eval_model, std::size_t gen) {
    const std::vector<std::size_t> starts =
        select_starts(ctx, pop, eval_model, gen);

    const moo::ObjectiveVector scale = pop.objective_scale();
    // Index pool for the population updates below, built once per stage and
    // reshuffled in place per visit. Reshuffling the previous permutation is
    // still uniformly random and draws the same RNG stream, but yields a
    // different (equally valid) permutation sequence than rebuilding from
    // iota — seeded trajectories changed when this O(N) per-visit
    // allocation was hoisted out of the hot path.
    std::vector<std::size_t> pool(pop.size());
    std::iota(pool.begin(), pool.end(), std::size_t{0});
    for (std::size_t s : starts) {
      if (ctx.exhausted()) break;
      LocalSearchResult<P> result =
          local_search(ctx, pop.design(s), pop.objectives(s), pop.weight(s),
                       pop.reference_point(), scale, config_.local_search);
      // Label the trajectory with the search outcome (STAGE). Targets:
      //  * kFinalValue — the final Eq. (8) value (Algorithm 2 as printed);
      //  * kImprovement — the drop from each visit to the final value
      //    ("how much a design can improve towards the reference point").
      for (auto& visit : result.trajectory) {
        const double target =
            config_.guide_mode == GuideMode::kImprovement
                ? visit.g - result.best_g
                : result.best_g;
        eval_model.add_sample(std::move(visit.features), visit.objectives,
                              pop.weight(s), target);
      }
      // The sub-problem's incumbent improves if the search found better.
      const double incumbent = moo::weighted_distance_scaled(
          pop.objectives(s), pop.weight(s), pop.reference_point(), scale);
      if (result.best_g < incumbent) {
        pop.replace(s, result.best, result.best_objectives);
      }
      // Algorithm 1 line 8: P <- updatePopulation(P, p_new, W). Every
      // design the search accepted is a p_new already paid for in
      // evaluations; each one updates the sub-problem whose weight it fits
      // best (full weight set W, one replacement per visit so a single
      // trajectory cannot flood the population).
      for (std::size_t v = 1; v < result.trajectory.size(); ++v) {
        const auto& visit = result.trajectory[v];
        ctx.rng().shuffle(pool);
        pop.update(visit.design, visit.objectives, pool,
                   /*max_replacements=*/1);
      }
    }

    if (config_.use_ml_guide &&
        (gen + 1) % std::max<std::size_t>(1, config_.train_interval) == 0) {
      eval_model.train(ctx.rng());
    }
  }

  /// Algorithm 2 (MLguide) or random selection during warm-up.
  std::vector<std::size_t> select_starts(EvalContext<P>& ctx,
                                         const DecompositionPopulation<P>& pop,
                                         const EvalModel& eval_model,
                                         std::size_t gen) const {
    const std::size_t n_local =
        std::min(config_.n_local, pop.size());
    const bool guided = config_.use_ml_guide && gen >= config_.iter_early &&
                        eval_model.trained();
    if (!guided) {
      return ctx.rng().sample_indices(pop.size(), n_local);
    }
    // e_i = Eval(p_i, w_i) predicts the final Eq. (8) value of a local
    // search from p_i. Raw e_i values are not comparable across
    // sub-problems (each weight has its own g scale), so we rank by the
    // PREDICTED IMPROVEMENT e_i - g_i(current): Sec. IV.B, "the algorithm
    // attempts to learn a regressor that can predict how much a design can
    // improve towards the reference point in a local search". Most-negative
    // scores (largest predicted drops) are the most promising starts.
    const moo::ObjectiveVector scale = pop.objective_scale();
    std::vector<std::pair<double, std::size_t>> scored;
    scored.reserve(pop.size());
    for (std::size_t i = 0; i < pop.size(); ++i) {
      const double e = eval_model.predict(
          ctx.problem().features(pop.design(i)), pop.objectives(i),
          pop.weight(i));
      // kFinalValue: e predicts the final g (lower = better start).
      // kImprovement: e predicts the achievable drop (higher = better
      // start), so negate for the ascending sort.
      const double score =
          config_.guide_mode == GuideMode::kImprovement ? -e : e;
      scored.push_back({score, i});
    }
    std::partial_sort(scored.begin(),
                      scored.begin() + static_cast<std::ptrdiff_t>(n_local),
                      scored.end());
    std::vector<std::size_t> out;
    out.reserve(n_local);
    for (std::size_t k = 0; k < n_local; ++k) out.push_back(scored[k].second);
    return out;
  }

  MoelaConfig config_;
};

}  // namespace moela::core
