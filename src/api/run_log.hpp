// Per-run structured logs: one JSON record per completed (or failed)
// Executor run, appended to a JSONL file. Gives batch jobs and the serving
// daemon a machine-readable audit trail — what ran, with which provenance,
// how long it took, and whether the cache served it — without parsing
// stderr.
//
// Enabling it:
//   * programmatically — ExecutorConfig::run_log = &logger;
//   * by environment  — MOELA_RUN_LOG=<path> makes every Executor whose
//     config left run_log null append there (benches and the CLI get
//     logging for free);
//   * by flag         — moela_cli / moela_serve --run-log PATH.
#pragma once

#include <fstream>
#include <memory>
#include <string>

#include "api/optimizer.hpp"
#include "api/request.hpp"
#include "util/thread_annotations.hpp"

namespace moela::api {

class RunLogger {
 public:
  /// Opens `path` for appending. ok() is false when the open failed
  /// (append() is then a no-op — logging is best-effort, never fatal).
  explicit RunLogger(const std::string& path);

  bool ok() const { return ok_; }
  const std::string& path() const { return path_; }

  /// Appends one record for a finished run. `wall_seconds` is the
  /// Executor-side wall time (includes cache lookup and scheduling, so a
  /// cache hit logs near-zero). Thread-safe.
  void append(const RunRequest& request, const RunReport& report,
              double wall_seconds);

  /// Appends one record for a run that threw instead of reporting.
  void append_error(const RunRequest& request, const std::string& error,
                    double wall_seconds);

  /// The process-wide logger configured by $MOELA_RUN_LOG, or nullptr when
  /// the variable is unset/empty. Built on first use.
  static RunLogger* from_env();

 private:
  void write_line(const std::string& line);

  std::string path_;
  /// Whether the constructor's open succeeded. Immutable afterwards, so
  /// ok() and the write_line() fast path can read it lock-free — unlike
  /// the previous out_.is_open() probe, which touched the guarded stream
  /// outside the lock.
  bool ok_ = false;
  util::Mutex mutex_;
  std::ofstream out_ MOELA_GUARDED_BY(mutex_);
};

}  // namespace moela::api
