#include "noc/platform.hpp"

#include <gtest/gtest.h>

#include <set>

namespace moela::noc {
namespace {

TEST(Platform, Paper4x4x4Inventory) {
  const auto spec = PlatformSpec::paper_4x4x4();
  EXPECT_EQ(spec.num_tiles(), 64u);
  EXPECT_EQ(spec.count_type(PeType::kCpu), 8u);
  EXPECT_EQ(spec.count_type(PeType::kGpu), 40u);
  EXPECT_EQ(spec.count_type(PeType::kLlc), 16u);
  EXPECT_EQ(spec.num_planar_links(), 96u);
  EXPECT_EQ(spec.num_vertical_links(), 48u);
  EXPECT_EQ(spec.max_planar_length(), 5);
  EXPECT_EQ(spec.max_router_degree(), 7);
}

TEST(Platform, Small3x3x3Inventory) {
  const auto spec = PlatformSpec::small_3x3x3();
  EXPECT_EQ(spec.num_tiles(), 27u);
  EXPECT_EQ(spec.count_type(PeType::kCpu) + spec.count_type(PeType::kGpu) +
                spec.count_type(PeType::kLlc),
            27u);
}

TEST(Platform, TileCoordinateRoundTrip) {
  const auto spec = PlatformSpec::paper_4x4x4();
  for (int z = 0; z < 4; ++z) {
    for (int y = 0; y < 4; ++y) {
      for (int x = 0; x < 4; ++x) {
        const TileId t = spec.tile_at(x, y, z);
        EXPECT_EQ(spec.x_of(t), x);
        EXPECT_EQ(spec.y_of(t), y);
        EXPECT_EQ(spec.z_of(t), z);
      }
    }
  }
}

TEST(Platform, PlanarLengthIsManhattan) {
  const auto spec = PlatformSpec::paper_4x4x4();
  const TileId a = spec.tile_at(0, 0, 1);
  const TileId b = spec.tile_at(3, 2, 1);
  EXPECT_EQ(spec.planar_length(a, b), 5);
}

TEST(Platform, EdgeTiles4x4LayerHasTwelve) {
  const auto spec = PlatformSpec::paper_4x4x4();
  // In a 4x4 layer only the 4 interior tiles are non-edge: 12 edge per
  // layer x 4 layers = 48.
  EXPECT_EQ(spec.edge_tiles().size(), 48u);
  for (TileId t : spec.edge_tiles()) EXPECT_TRUE(spec.is_edge_tile(t));
}

TEST(Platform, EdgeTiles3x3OnlyCenterExcluded) {
  const auto spec = PlatformSpec::small_3x3x3();
  EXPECT_EQ(spec.edge_tiles().size(), 24u);  // 8 per layer x 3
  EXPECT_FALSE(spec.is_edge_tile(spec.tile_at(1, 1, 0)));
}

TEST(Platform, VerticalCandidatesAreAllAdjacentPairs) {
  const auto spec = PlatformSpec::paper_4x4x4();
  // 16 (x,y) positions x 3 layer boundaries.
  EXPECT_EQ(spec.vertical_candidates().size(), 48u);
  for (const Link& l : spec.vertical_candidates()) {
    EXPECT_EQ(spec.x_of(l.a), spec.x_of(l.b));
    EXPECT_EQ(spec.y_of(l.a), spec.y_of(l.b));
    EXPECT_EQ(spec.z_of(l.b) - spec.z_of(l.a), 1);
  }
}

TEST(Platform, PlanarCandidatesRespectLengthBound) {
  const auto spec = PlatformSpec::paper_4x4x4();
  for (const Link& l : spec.planar_candidates()) {
    EXPECT_EQ(spec.z_of(l.a), spec.z_of(l.b));
    EXPECT_GE(spec.planar_length(l.a, l.b), 1);
    EXPECT_LE(spec.planar_length(l.a, l.b), 5);
  }
  // 4x4 layer: C(16,2)=120 pairs, minus the 2 corner-to-corner pairs of
  // length 6 -> 118 per layer, x4 layers.
  EXPECT_EQ(spec.planar_candidates().size(), 4u * 118u);
}

TEST(Platform, LinkLegality) {
  const auto spec = PlatformSpec::paper_4x4x4();
  const TileId a = spec.tile_at(0, 0, 0);
  EXPECT_TRUE(spec.link_is_legal(Link(a, spec.tile_at(1, 0, 0))));
  EXPECT_TRUE(spec.link_is_legal(Link(a, spec.tile_at(0, 0, 1))));  // TSV
  // Corner to corner: length 6 > 5.
  EXPECT_FALSE(spec.link_is_legal(Link(a, spec.tile_at(3, 3, 0))));
  // Diagonal vertical is illegal.
  EXPECT_FALSE(spec.link_is_legal(Link(a, spec.tile_at(1, 0, 1))));
  // Skipping a layer is illegal.
  EXPECT_FALSE(spec.link_is_legal(Link(a, spec.tile_at(0, 0, 2))));
  // Self-link illegal.
  EXPECT_FALSE(spec.link_is_legal(Link(a, a)));
}

TEST(Platform, InvalidSpecsThrow) {
  std::vector<PeType> cores(8, PeType::kGpu);
  EXPECT_THROW(PlatformSpec(2, 2, 2, std::vector<PeType>(7, PeType::kGpu), 4,
                            4),
               std::invalid_argument);  // wrong core count
  EXPECT_THROW(PlatformSpec(0, 2, 2, cores, 4, 4), std::invalid_argument);
  // More LLCs than edge tiles is impossible to place.
  std::vector<PeType> all_llc(8, PeType::kLlc);
  EXPECT_NO_THROW(PlatformSpec(2, 2, 2, all_llc, 4, 4));  // 2x2: all edge
  // Budget above candidate count:
  EXPECT_THROW(PlatformSpec(2, 2, 2, cores, 1000, 4), std::invalid_argument);
  EXPECT_THROW(PlatformSpec(2, 2, 2, cores, 4, 1000), std::invalid_argument);
}

TEST(Platform, CoresOfTypeAscending) {
  const auto spec = PlatformSpec::paper_4x4x4();
  const auto cpus = spec.cores_of_type(PeType::kCpu);
  ASSERT_EQ(cpus.size(), 8u);
  for (std::size_t i = 1; i < cpus.size(); ++i) {
    EXPECT_LT(cpus[i - 1], cpus[i]);
  }
  for (CoreId c : cpus) EXPECT_EQ(spec.core_type(c), PeType::kCpu);
}

TEST(Link, CanonicalOrdering) {
  const Link l(5, 2);
  EXPECT_EQ(l.a, 2);
  EXPECT_EQ(l.b, 5);
  EXPECT_EQ(l, Link(2, 5));
  EXPECT_LT(Link(1, 2), Link(1, 3));
  EXPECT_LT(Link(1, 9), Link(2, 3));
}

TEST(PeTypeNames, AllNamed) {
  EXPECT_STREQ(to_string(PeType::kCpu), "CPU");
  EXPECT_STREQ(to_string(PeType::kGpu), "GPU");
  EXPECT_STREQ(to_string(PeType::kLlc), "LLC");
}

}  // namespace
}  // namespace moela::noc
