// Fixture: seeded violation — using namespace in a header.
#pragma once
#include <vector>
using namespace std;
