#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.hpp"

namespace moela::util {
namespace {

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, SingleValue) {
  OnlineStats s;
  s.add(4.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 4.5);
  EXPECT_DOUBLE_EQ(s.max(), 4.5);
}

TEST(OnlineStats, MatchesBatchComputation) {
  Rng rng(7);
  std::vector<double> xs;
  OnlineStats s;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-10, 10);
    xs.push_back(x);
    s.add(x);
  }
  EXPECT_NEAR(s.mean(), mean(xs), 1e-9);
  EXPECT_NEAR(s.variance(), variance(xs), 1e-9);
  EXPECT_DOUBLE_EQ(s.min(), min_of(xs));
  EXPECT_DOUBLE_EQ(s.max(), max_of(xs));
}

TEST(OnlineStats, SampleVarianceUsesNMinusOne) {
  OnlineStats s;
  s.add(1.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 1.0);         // population: /2
  EXPECT_DOUBLE_EQ(s.sample_variance(), 2.0);  // sample: /1
}

TEST(Stats, MeanKnownValues) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
}

TEST(Stats, VarianceKnownValues) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(variance(xs), 4.0);  // classic textbook example
  EXPECT_DOUBLE_EQ(stddev(xs), 2.0);
}

TEST(Stats, VarianceOfConstantIsZero) {
  const std::vector<double> xs(10, 3.3);
  EXPECT_NEAR(variance(xs), 0.0, 1e-12);
}

TEST(Stats, MedianOddEven) {
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 2.0, 3.0}), 2.5);
  EXPECT_DOUBLE_EQ(median({5.0}), 5.0);
  EXPECT_DOUBLE_EQ(median({}), 0.0);
}

TEST(Stats, GeomeanKnownValues) {
  EXPECT_NEAR(geomean(std::vector<double>{2.0, 8.0}), 4.0, 1e-12);
  EXPECT_NEAR(geomean(std::vector<double>{1.0, 1.0, 1.0}), 1.0, 1e-12);
}

TEST(Stats, GeomeanRejectsNonPositive) {
  EXPECT_THROW(geomean(std::vector<double>{1.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(geomean(std::vector<double>{-1.0}), std::invalid_argument);
}

TEST(Stats, PercentileEndpointsAndMiddle) {
  const std::vector<double> xs{10.0, 20.0, 30.0, 40.0, 50.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 50.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 30.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 25), 20.0);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> xs{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 10), 1.0);
}

TEST(Stats, MinMaxEmpty) {
  EXPECT_EQ(min_of(std::vector<double>{}), 0.0);
  EXPECT_EQ(max_of(std::vector<double>{}), 0.0);
}

}  // namespace
}  // namespace moela::util
