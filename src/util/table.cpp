#include "util/table.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "util/numeric.hpp"

namespace moela::util {

void Table::set_header(std::vector<std::string> header) {
  if (!rows_.empty()) {
    throw std::logic_error("Table::set_header after rows were added");
  }
  header_ = std::move(header);
}

void Table::add_row(std::vector<std::string> row) {
  if (!header_.empty() && row.size() != header_.size()) {
    throw std::invalid_argument("Table row width mismatch");
  }
  rows_.push_back(std::move(row));
}

void Table::add_row_numeric(const std::string& label,
                            const std::vector<double>& values, int precision) {
  std::vector<std::string> row;
  row.reserve(values.size() + 1);
  row.push_back(label);
  for (double v : values) row.push_back(fmt(v, precision));
  add_row(std::move(row));
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths;
  auto grow = [&](const std::vector<std::string>& row) {
    if (widths.size() < row.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  grow(header_);
  for (const auto& r : rows_) grow(r);

  auto render_row = [&](const std::vector<std::string>& row) {
    std::ostringstream os;
    os << '|';
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string{};
      os << ' ' << cell << std::string(widths[i] - cell.size(), ' ') << " |";
    }
    os << '\n';
    return os.str();
  };

  std::ostringstream os;
  if (!title_.empty()) os << "### " << title_ << "\n";
  if (!header_.empty()) {
    os << render_row(header_);
    os << '|';
    for (std::size_t w : widths) os << std::string(w + 2, '-') << '|';
    os << '\n';
  }
  for (const auto& r : rows_) os << render_row(r);
  return os.str();
}

std::string Table::to_csv() const {
  auto escape = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char c : s) {
      if (c == '"') out += '"';
      out += c;
    }
    out += '"';
    return out;
  };
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) os << ',';
      os << escape(row[i]);
    }
    os << '\n';
  };
  if (!header_.empty()) emit(header_);
  for (const auto& r : rows_) emit(r);
  return os.str();
}

void Table::print() const { std::fputs(to_string().c_str(), stdout); }

std::string fmt(double v, int precision) {
  // to_chars fixed: same digits as printf "%.*f", immune to LC_NUMERIC.
  return fixed_double(v, precision);
}

std::string fmt_factor(double v, int precision) {
  return fmt(v, precision) + "x";
}

std::string fmt_percent(double v, int precision) {
  return fmt(v * 100.0, precision) + "%";
}

}  // namespace moela::util
