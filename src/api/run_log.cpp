#include "api/run_log.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>

#include "api/result_cache.hpp"
#include "util/json.hpp"

namespace moela::api {
namespace {

using util::Json;

/// UTC wall-clock timestamp ("2026-07-30T12:34:56Z") for the record; run
/// durations come from the caller's monotonic timer, not from this.
std::string timestamp_utc() {
  const std::time_t now =
      std::chrono::system_clock::to_time_t(std::chrono::system_clock::now());
  std::tm tm{};
  gmtime_r(&now, &tm);
  char buffer[32];
  std::strftime(buffer, sizeof(buffer), "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buffer;
}

Json base_record(const RunRequest& request, double wall_seconds) {
  Json record = Json::object();
  // "v" versions the record shape itself: bump it when fields change
  // meaning or type, so log consumers can branch instead of guessing.
  record.set("v", std::uint64_t{1})
      .set("time", timestamp_utc())
      .set("label", request.label_or_default())
      .set("problem", request.problem)
      .set("algorithm", request.algorithm)
      .set("seed", request.options.seed)
      .set("evals_budget", request.options.max_evaluations)
      .set("wall_seconds", wall_seconds);
  if (!request.trace_id.empty()) record.set("trace", request.trace_id);
  return record;
}

}  // namespace

RunLogger::RunLogger(const std::string& path) : path_(path) {
  // No lock needed in the constructor: no other thread can hold a
  // reference yet. ok_ is never written again after this.
  util::MutexLock lock(mutex_);
  out_.open(path, std::ios::app);
  ok_ = static_cast<bool>(out_);
  if (!ok_) {
    // Callers decide severity: tools fail fast on an explicit --run-log,
    // the $MOELA_RUN_LOG fallback just proceeds without logging.
    std::fprintf(stderr, "moela: run log '%s' could not be opened\n",
                 path.c_str());
  }
}

void RunLogger::write_line(const std::string& line) {
  if (!ok_) return;  // immutable post-ctor: safe to check before locking
  util::MutexLock lock(mutex_);
  out_ << line << '\n';
  out_.flush();  // records must survive a daemon kill
}

void RunLogger::append(const RunRequest& request, const RunReport& report,
                       double wall_seconds) {
  Json record = base_record(request, wall_seconds);
  const RunProvenance& p = report.provenance;
  Json knobs = Json::object();
  for (const auto& [name, value] : p.knobs) knobs.set(name, value);
  record.set("status", p.cancelled ? "cancelled" : "ok")
      .set("evaluations", report.evaluations)
      .set("run_seconds", report.seconds)
      .set("cache_hit", p.cache_hit)
      .set("cache_key_hash",
           p.cache_key.empty() ? Json()
                               : Json(ResultCache::hash_key(p.cache_key)))
      .set("knobs", std::move(knobs))
      .set("front_size", report.final_front.size());
  write_line(record.dump());
}

void RunLogger::append_error(const RunRequest& request,
                             const std::string& error, double wall_seconds) {
  Json record = base_record(request, wall_seconds);
  record.set("status", "error").set("error", error);
  write_line(record.dump());
}

RunLogger* RunLogger::from_env() {
  static RunLogger* instance = []() -> RunLogger* {
    const char* path = std::getenv("MOELA_RUN_LOG");
    if (path == nullptr || *path == '\0') return nullptr;
    auto* logger = new RunLogger(path);
    return logger->ok() ? logger : nullptr;
  }();
  return instance;
}

}  // namespace moela::api
