// Evaluation bookkeeping shared by every algorithm in the library.
//
// The number of full objective evaluations is the experiment time axis
// (DESIGN.md, "Key design decisions"): EvalContext counts them, maintains
// the all-time Pareto archive, and records archive snapshots at a fixed
// evaluation cadence so the harness can compute anytime-PHV traces after the
// fact with a globally consistent normalization.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "moo/archive.hpp"
#include "moo/objective.hpp"
#include "moo/problem.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace moela::core {

/// One archive snapshot: the non-dominated objective set after
/// `evaluations` objective evaluations.
struct ArchiveSnapshot {
  std::size_t evaluations = 0;
  double seconds = 0.0;
  std::vector<moo::ObjectiveVector> front;
};

template <moo::MooProblem P>
class EvalContext {
 public:
  using Design = typename P::Design;

  /// `max_evaluations` is the evaluation budget; `snapshot_interval` is the
  /// trace cadence (0 disables snapshots); `max_seconds` > 0 adds a
  /// wall-clock budget (the paper's T_stop runs every algorithm for the
  /// same wall time — the axis on which the baselines pay their
  /// per-candidate overheads).
  EvalContext(const P& problem, std::uint64_t seed,
              std::size_t max_evaluations, std::size_t snapshot_interval = 0,
              double max_seconds = 0.0)
      : problem_(&problem),
        rng_(seed),
        max_evaluations_(max_evaluations),
        snapshot_interval_(snapshot_interval),
        max_seconds_(max_seconds) {}

  /// Evaluates a design, counts it, and folds the result into the archive.
  ///
  /// Replay-based resume: while `evaluations_` is below the replay limit
  /// installed by resume_from(), the objective vector is served from the
  /// journal instead of calling the problem. The algorithm itself still
  /// runs — same RNG draws, same design proposals, same archive folds — so
  /// its internal state after the replayed prefix is bit-identical to the
  /// original run's, at journal-lookup cost instead of evaluation cost.
  moo::ObjectiveVector evaluate(const Design& d) {
    // Replay and journaling live in noinline cold helpers: a plain run
    // (the overwhelming majority) pays two predicted-false branches and
    // nothing else over the pre-checkpoint code. Keeping the helpers'
    // bodies out of this function matters — inlining the vector-growth
    // and replay machinery here pushes evaluate() past the inlining
    // budget of the algorithm loops that call it, a measured double-digit
    // throughput hit on cheap-evaluation problems.
    if (evaluations_ < replay_limit_) [[unlikely]] {
      return evaluate_replayed();
    }
    moo::ObjectiveVector obj = problem_->evaluate(d);
    if (record_journal_) [[unlikely]] {
      record_evaluation(obj);
    }
    ++evaluations_;
    archive_.insert(obj, evaluations_);
    if (snapshot_interval_ > 0 &&
        evaluations_ >= next_snapshot_) {
      take_snapshot();
      next_snapshot_ = evaluations_ + snapshot_interval_;
      if (progress_hook_) progress_hook_(evaluations_, timer_.elapsed_seconds());
    }
    return obj;
  }

  const P& problem() const { return *problem_; }
  util::Rng& rng() { return rng_; }

  std::size_t evaluations() const { return evaluations_; }
  std::size_t max_evaluations() const { return max_evaluations_; }
  bool exhausted() const {
    if (evaluations_ >= max_evaluations_) return true;
    if (external_stop_ != nullptr &&
        external_stop_->load(std::memory_order_relaxed)) {
      return true;
    }
    return max_seconds_ > 0.0 && timer_.elapsed_seconds() >= max_seconds_;
  }
  double elapsed_seconds() const { return timer_.elapsed_seconds(); }

  /// Installs an external stop flag (owned by the caller, e.g. an
  /// api::RunControl); once it reads true the budget counts as exhausted and
  /// the algorithm winds down at its next budget check.
  void set_stop_flag(const std::atomic<bool>* stop) { external_stop_ = stop; }

  /// Installs a progress observer invoked at the snapshot cadence with
  /// (evaluations, elapsed seconds). Called from the run's own thread.
  void set_progress_hook(std::function<void(std::size_t, double)> hook) {
    progress_hook_ = std::move(hook);
  }

  /// Enables the evaluation journal: every objective vector returned by
  /// evaluate() is recorded in evaluation order, the raw material of a
  /// api::RunSnapshot. Off by default — journaling is only paid for by runs
  /// that asked to be checkpointable.
  void record_journal(bool on) { record_journal_ = on; }

  /// The recorded journal (empty unless record_journal(true) or
  /// resume_from() was called). Entry i is the objective vector of
  /// evaluation i+1.
  const std::vector<moo::ObjectiveVector>& journal() const { return journal_; }

  /// Installs a journal prefix for replay-based resume: the first
  /// journal.size() calls to evaluate() are served from it without touching
  /// the problem. Implies journaling (new evaluations append after the
  /// prefix, so later snapshots cover the whole run). Call before the
  /// algorithm starts.
  void resume_from(std::vector<moo::ObjectiveVector> journal) {
    replay_limit_ = journal.size();
    journal_ = std::move(journal);
    record_journal_ = true;
  }

  /// True while evaluate() is still serving the resume prefix.
  bool replaying() const { return evaluations_ < replay_limit_; }

 private:
  /// Journal-recording arm of evaluate(), out of line (see there).
  [[gnu::noinline]] [[gnu::cold]] void record_evaluation(
      const moo::ObjectiveVector& obj) {
    journal_.push_back(obj);
  }

  /// The replay arm of evaluate(): serves the next objective vector from
  /// the journal prefix instead of the problem. Snapshot bookkeeping still
  /// runs (the trace must cover the replayed ground), but progress — and
  /// therefore checkpoint — hooks stay quiet: observers would see a sprint
  /// through old ground, and re-checkpointing evaluations the snapshot
  /// already covers is wasted motion.
  [[gnu::noinline]] [[gnu::cold]] moo::ObjectiveVector evaluate_replayed() {
    moo::ObjectiveVector obj = journal_[evaluations_];
    ++evaluations_;
    archive_.insert(obj, evaluations_);
    if (snapshot_interval_ > 0 && evaluations_ >= next_snapshot_) {
      take_snapshot();
      next_snapshot_ = evaluations_ + snapshot_interval_;
    }
    return obj;
  }

 public:

  /// All-time non-dominated set over every evaluation in this run.
  const moo::ParetoArchive& archive() const { return archive_; }

  const std::vector<ArchiveSnapshot>& snapshots() const { return snapshots_; }

  /// Registers a callback returning the algorithm's CURRENT solution set
  /// (population or bounded archive). Snapshots then record that set — the
  /// paper's PHV is measured on what the algorithm maintains, not on the
  /// union of everything it ever evaluated. Algorithms install this right
  /// after constructing their population; without a provider, snapshots
  /// fall back to the all-time archive front.
  void set_solution_set_provider(
      std::function<std::vector<moo::ObjectiveVector>()> provider) {
    solution_set_provider_ = std::move(provider);
  }

  /// Appends a snapshot of the current solution set (harness calls this
  /// once a run finishes; evaluate() calls it at the snapshot cadence).
  void take_snapshot() {
    std::vector<moo::ObjectiveVector> front;
    if (solution_set_provider_) front = solution_set_provider_();
    if (front.empty()) front = archive_.objective_set();
    snapshots_.push_back(
        {evaluations_, timer_.elapsed_seconds(), std::move(front)});
  }

 private:
  const P* problem_;
  util::Rng rng_;
  std::size_t max_evaluations_;
  std::size_t snapshot_interval_;
  double max_seconds_ = 0.0;
  std::size_t next_snapshot_ = 1;
  std::size_t evaluations_ = 0;
  /// Evaluation journal: objective vectors in evaluation order. Doubles as
  /// the replay source on resume (entries below replay_limit_) and the
  /// recording target afterwards.
  std::vector<moo::ObjectiveVector> journal_;
  std::size_t replay_limit_ = 0;
  bool record_journal_ = false;
  moo::ParetoArchive archive_;
  std::vector<ArchiveSnapshot> snapshots_;
  std::function<std::vector<moo::ObjectiveVector>()> solution_set_provider_;
  const std::atomic<bool>* external_stop_ = nullptr;
  std::function<void(std::size_t, double)> progress_hook_;
  util::Timer timer_;
};

}  // namespace moela::core
