// Full design-space-exploration flow on the paper's platform: run MOELA,
// MOEA/D and MOOS on one Rodinia-like application under the same wall-clock
// budget, compare anytime PHV, and apply the Fig. 3 temperature-constrained
// EDP selection to pick one design per algorithm.
//
//   ./build/examples/noc_dse [seconds_budget]
#include <cstdio>
#include <cstdlib>

#include "exp/edp_selection.hpp"
#include "exp/scenario.hpp"
#include "moo/metrics.hpp"
#include "noc/constraints.hpp"
#include "util/table.hpp"

using namespace moela;

int main(int argc, char** argv) {
  exp::PaperBenchConfig config;
  config.max_seconds = argc > 1 ? std::atof(argv[1]) : 4.0;
  config.max_evaluations = 40000;

  const auto app = sim::RodiniaApp::kStreamcluster;
  std::printf("Exploring %s on %s (5 objectives, %.1f s per algorithm)\n",
              sim::app_name(app).c_str(),
              exp::bench_platform(config).describe().c_str(),
              config.max_seconds);

  const auto r = exp::run_app_scenario(app, 5, config);

  // --- Search-quality comparison at the common stop time.
  util::Table quality("Search quality (shared normalization)");
  quality.set_header({"algorithm", "evaluations", "wall (s)", "PHV @ T*"});
  for (std::size_t i = 0; i < config.algorithms.size(); ++i) {
    quality.add_row({r.algorithm_names[i],
                     std::to_string(r.runs[i].evaluations),
                     util::fmt(r.runs[i].seconds, 2),
                     util::fmt(r.final_phv[i], 4)});
  }
  quality.print();

  // --- Fig. 3 rule: pick one deployable design per algorithm.
  const auto spec = exp::bench_platform(config);
  const auto workload = sim::make_workload(spec, app, config.seed);
  const auto arch = sim::archetype(app);
  std::vector<std::vector<exp::ScoredDesign>> populations;
  for (const auto& run : r.runs) {
    populations.push_back(exp::score_population(
        spec, run.designs_as<noc::NocDesign>(), workload, arch));
  }
  const auto selections = exp::select_by_edp(populations);

  util::Table picks("Selected designs (temperature-constrained lowest EDP)");
  picks.set_header({"algorithm", "EDP (J*s)", "exec time (s)", "energy (J)",
                    "peak temp", "within 5% threshold", "feasible"});
  for (std::size_t i = 0; i < selections.size(); ++i) {
    const auto& sel = selections[i];
    const auto& design =
        r.runs[i].final_designs[sel.chosen.index].as<noc::NocDesign>();
    picks.add_row({r.algorithm_names[i],
                   util::fmt(sel.chosen.score.edp, 2),
                   util::fmt(sel.chosen.score.exec_time, 3),
                   util::fmt(sel.chosen.score.energy, 2),
                   util::fmt(sel.chosen.score.peak_temperature, 2),
                   sel.within_threshold ? "yes" : "no (coolest fallback)",
                   noc::is_feasible(spec, design) ? "yes" : "NO"});
  }
  picks.print();

  const auto overheads = exp::edp_overheads(selections, 0);
  std::printf("\nEDP overhead vs MOELA: MOEA/D %+.1f%%, MOOS %+.1f%%\n",
              overheads[1] * 100.0, overheads[2] * 100.0);
  return 0;
}
