// Multi-objective 0/1 knapsack (Zitzler & Thiele 1999 style), the classic
// combinatorial MOO benchmark referenced by the paper's Tchebycheff citation
// [18]. Provides a discrete, constraint-repaired design space — structurally
// closer to the NoC problem than the continuous DTLZ/ZDT suites.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "moo/objective.hpp"
#include "util/rng.hpp"

namespace moela::problems {

class MultiObjectiveKnapsack {
 public:
  using Design = std::vector<std::uint8_t>;  // 1 = item selected

  /// Generates a random instance: `num_items` items, `num_objectives` profit
  /// dimensions, profits/weights uniform in [10, 100] (the standard setup);
  /// capacity = half the total weight.
  MultiObjectiveKnapsack(std::size_t num_items, std::size_t num_objectives,
                         std::uint64_t seed);

  std::size_t num_items() const { return weights_.size(); }
  std::size_t num_objectives() const { return profits_.size(); }

  /// Objectives are NEGATED total profits (library convention: minimize).
  moo::ObjectiveVector evaluate(const Design& d) const;

  Design random_design(util::Rng& rng) const;
  /// Flips one random item, then repairs.
  Design random_neighbor(const Design& d, util::Rng& rng) const;
  /// Uniform crossover + repair.
  Design crossover(const Design& a, const Design& b, util::Rng& rng) const;
  /// Per-item flip with probability 1/n + repair.
  Design mutate(const Design& d, util::Rng& rng) const;

  std::vector<double> features(const Design& d) const;
  std::size_t num_features() const { return num_items(); }

  bool feasible(const Design& d) const;
  double total_weight(const Design& d) const;
  double capacity() const { return capacity_; }

 private:
  /// Greedy repair: removes the items with the worst profit/weight ratio
  /// until the capacity constraint holds (Zitzler-Thiele repair).
  void repair(Design& d) const;

  std::vector<double> weights_;
  // profits_[m][i] = profit of item i in objective m.
  std::vector<std::vector<double>> profits_;
  double capacity_ = 0.0;
  // Items ordered by increasing max-profit/weight ratio (removal order).
  std::vector<std::size_t> removal_order_;
};

}  // namespace moela::problems
