// Tests for api::ShardedExecutor (src/api/sharded_executor.*): real
// in-process moela_serve daemons on ephemeral ports, driven through the
// coordinator. The acceptance property is the ISSUE/ROADMAP one — a
// fixed-seed sweep sharded across >= 2 daemons merges bit-identical to the
// same sweep run inline, in request order, under both placement policies —
// plus the fault paths (tests/fault_injection.hpp): a daemon SIGKILLed
// mid-run whose partial work resumes on the survivor from its streamed
// snapshot, a dead shard's slice retried onto the survivor, exhausted
// attempt caps failing the batch with attributable errors, the local
// fallback, and stop-before-run cancellation.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "api/executor.hpp"
#include "api/request.hpp"
#include "api/sharded_executor.hpp"
#include "fault_injection.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "util/json.hpp"

namespace moela::api {
namespace {

using fault::AcceptAndCloseEndpoint;
using fault::closed_port;

RunRequest zdt1_request(const std::string& algorithm, std::uint64_t seed) {
  RunRequest request;
  request.problem = "zdt1";
  request.problem_options.num_variables = 10;
  request.algorithm = algorithm;
  request.options.max_evaluations = 500;
  request.options.snapshot_interval = 250;
  request.options.seed = seed;
  request.options.population_size = 12;
  request.options.n_local = 3;
  request.label = "zdt1:" + algorithm + ":" + std::to_string(seed);
  return request;
}

std::vector<RunRequest> sweep_requests() {
  std::vector<RunRequest> requests;
  for (const char* algorithm : {"moela", "nsga2"}) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      requests.push_back(zdt1_request(algorithm, seed));
    }
  }
  return requests;
}

/// A cache-less daemon on 127.0.0.1:<ephemeral>.
std::unique_ptr<serve::Server> make_server(std::size_t jobs = 1) {
  serve::ServeConfig config;
  config.host = "127.0.0.1";
  config.port = 0;
  config.jobs = jobs;
  config.use_cache = false;
  auto server = std::make_unique<serve::Server>(std::move(config));
  server->start();
  return server;
}

void expect_equal_modulo_cache(const RunReport& inline_report,
                               const RunReport& sharded_report) {
  EXPECT_EQ(sharded_report.algorithm, inline_report.algorithm);
  EXPECT_EQ(sharded_report.final_front, inline_report.final_front);
  EXPECT_EQ(sharded_report.final_objectives, inline_report.final_objectives);
  EXPECT_EQ(sharded_report.evaluations, inline_report.evaluations);
  ASSERT_EQ(sharded_report.snapshots.size(), inline_report.snapshots.size());
  for (std::size_t i = 0; i < sharded_report.snapshots.size(); ++i) {
    EXPECT_EQ(sharded_report.snapshots[i].evaluations,
              inline_report.snapshots[i].evaluations);
    EXPECT_EQ(sharded_report.snapshots[i].front,
              inline_report.snapshots[i].front);
  }
  EXPECT_EQ(sharded_report.provenance.problem,
            inline_report.provenance.problem);
  EXPECT_EQ(sharded_report.provenance.algorithm_key,
            inline_report.provenance.algorithm_key);
  EXPECT_EQ(sharded_report.provenance.seed, inline_report.provenance.seed);
  EXPECT_EQ(sharded_report.provenance.cache_key,
            inline_report.provenance.cache_key);
  EXPECT_EQ(sharded_report.provenance.cancelled,
            inline_report.provenance.cancelled);
}

std::vector<RunReport> inline_reports(const std::vector<RunRequest>& sweep) {
  Executor direct({.jobs = 2});
  return direct.run_all(sweep);
}

// --- the acceptance property ---------------------------------------------

TEST(ShardedExecutor, RoundRobinBitIdenticalToInline) {
  const std::vector<RunRequest> sweep = sweep_requests();
  const std::vector<RunReport> reference = inline_reports(sweep);

  auto a = make_server();
  auto b = make_server();
  auto c = make_server();
  ShardedExecutorConfig config;
  config.endpoints = {{"127.0.0.1", a->port()},
                      {"127.0.0.1", b->port()},
                      {"127.0.0.1", c->port()}};
  config.policy = ShardPolicy::kRoundRobin;
  ShardedExecutor sharded(config);
  const std::vector<RunReport> merged = sharded.run_all(sweep);

  ASSERT_EQ(merged.size(), reference.size());
  for (std::size_t i = 0; i < merged.size(); ++i) {
    expect_equal_modulo_cache(reference[i], merged[i]);
  }
  // Static placement: 6 requests round-robin over 3 healthy shards.
  std::size_t total = 0;
  for (const ShardStats& shard : sharded.shard_stats()) {
    EXPECT_TRUE(shard.healthy);
    EXPECT_EQ(shard.completed, 2u);
    total += shard.completed;
  }
  EXPECT_EQ(total, sweep.size());
}

TEST(ShardedExecutor, WorkStealingBitIdenticalAndInRequestOrder) {
  const std::vector<RunRequest> sweep = sweep_requests();
  const std::vector<RunReport> reference = inline_reports(sweep);

  // Asymmetric daemons so the fast one steals more of the batch — the
  // merged order must not care.
  auto slow = make_server(1);
  auto fast = make_server(4);
  ShardedExecutorConfig config;
  config.endpoints = {{"127.0.0.1", slow->port()},
                      {"127.0.0.1", fast->port()}};
  config.policy = ShardPolicy::kWorkStealing;
  ShardedExecutor sharded(config);

  RunControl control;
  std::atomic<std::size_t> finished{0};
  control.on_progress([&finished](const RunProgress& progress) {
    if (progress.finished) ++finished;
  });
  const std::vector<RunReport> merged = sharded.run_all(sweep, &control);

  ASSERT_EQ(merged.size(), reference.size());
  for (std::size_t i = 0; i < merged.size(); ++i) {
    // Request order: merged[i] answers sweep[i] (seed is the witness) ...
    EXPECT_EQ(merged[i].provenance.seed, sweep[i].options.seed);
    // ... and the content is bit-identical to the inline run.
    expect_equal_modulo_cache(reference[i], merged[i]);
  }
  EXPECT_EQ(finished.load(), sweep.size());
  std::size_t total = 0;
  for (const ShardStats& shard : sharded.shard_stats()) {
    total += shard.completed;
  }
  EXPECT_EQ(total, sweep.size());
}

TEST(ShardedExecutor, ParseAndNameCoverWeightedPolicy) {
  ShardPolicy policy = ShardPolicy::kRoundRobin;
  EXPECT_TRUE(parse_shard_policy("weighted", policy));
  EXPECT_EQ(policy, ShardPolicy::kWeighted);
  EXPECT_EQ(shard_policy_name(ShardPolicy::kWeighted), "weighted");
  EXPECT_FALSE(parse_shard_policy("weighed", policy));
}

TEST(ShardedExecutor, WeightedPlacementBitIdenticalAndCapacityAware) {
  // Ten requests over a 4-worker and a 1-worker daemon, both idle: the
  // greedy lowest-projected-utilization placement must hand the big
  // daemon 8 and the small one 2 (utilizations 8/4 = 2 and 2/1 = 2) —
  // and the merged reports must not care where anything ran.
  std::vector<RunRequest> sweep;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    sweep.push_back(zdt1_request("nsga2", seed));
  }
  const std::vector<RunReport> reference = inline_reports(sweep);

  auto big = make_server(4);
  auto small = make_server(1);
  ShardedExecutorConfig config;
  config.endpoints = {{"127.0.0.1", big->port()},
                      {"127.0.0.1", small->port()}};
  config.policy = ShardPolicy::kWeighted;
  ShardedExecutor sharded(config);
  const std::vector<RunReport> merged = sharded.run_all(sweep);

  ASSERT_EQ(merged.size(), reference.size());
  for (std::size_t i = 0; i < merged.size(); ++i) {
    EXPECT_EQ(merged[i].provenance.seed, sweep[i].options.seed);
    expect_equal_modulo_cache(reference[i], merged[i]);
  }
  const std::vector<ShardStats>& stats = sharded.shard_stats();
  EXPECT_EQ(stats[0].completed, 8u);
  EXPECT_EQ(stats[1].completed, 2u);
}

TEST(ShardedExecutor, WeightedWithoutProbeDegradesToRoundRobin) {
  const std::vector<RunRequest> sweep = sweep_requests();
  const std::vector<RunReport> reference = inline_reports(sweep);

  auto a = make_server(4);
  auto b = make_server(1);
  ShardedExecutorConfig config;
  config.endpoints = {{"127.0.0.1", a->port()}, {"127.0.0.1", b->port()}};
  config.policy = ShardPolicy::kWeighted;
  // No probe: every shard looks identical (no load, no capacity), so the
  // argmin ties resolve to an even round-robin split.
  config.probe_health = false;
  config.steal_chunk = 1;  // auto chunk sizing needs the probe too
  ShardedExecutor sharded(config);
  const std::vector<RunReport> merged = sharded.run_all(sweep);

  ASSERT_EQ(merged.size(), reference.size());
  for (std::size_t i = 0; i < merged.size(); ++i) {
    expect_equal_modulo_cache(reference[i], merged[i]);
  }
  EXPECT_EQ(sharded.shard_stats()[0].completed, 3u);
  EXPECT_EQ(sharded.shard_stats()[1].completed, 3u);
}

// --- fault paths ----------------------------------------------------------

TEST(ShardedExecutor, DeadShardSliceRetriesOntoSurvivor) {
  const std::vector<RunRequest> sweep = sweep_requests();
  const std::vector<RunReport> reference = inline_reports(sweep);

  auto survivor = make_server();
  ShardedExecutorConfig config;
  config.endpoints = {{"127.0.0.1", closed_port()},
                      {"127.0.0.1", survivor->port()}};
  config.policy = ShardPolicy::kRoundRobin;
  // No placement gate: the dead shard keeps its static slice until its
  // connect fails, so the requeue machinery itself is on the hook.
  config.probe_health = false;
  ShardedExecutor sharded(config);
  const std::vector<RunReport> merged = sharded.run_all(sweep);

  ASSERT_EQ(merged.size(), sweep.size());
  for (std::size_t i = 0; i < merged.size(); ++i) {
    expect_equal_modulo_cache(reference[i], merged[i]);
  }
  const std::vector<ShardStats>& stats = sharded.shard_stats();
  EXPECT_FALSE(stats[0].healthy);  // assumed healthy only until connect fails
  EXPECT_EQ(stats[0].completed, 0u);
  EXPECT_GE(stats[0].failures, 1u);
  EXPECT_FALSE(stats[0].error.empty());
  EXPECT_EQ(stats[1].completed, sweep.size());
}

TEST(ShardedExecutor, MidRunTransportFailureHandsWholeSliceToSurvivor) {
  const std::vector<RunRequest> sweep = sweep_requests();
  const std::vector<RunReport> reference = inline_reports(sweep);

  // The evil endpoint accepts the connection (so it passes the connect,
  // unlike a closed port) and then drops it: its first chunk fails
  // mid-conversation and its WHOLE static slice — not just the in-flight
  // chunk — must migrate to the survivor, or the batch would hang.
  AcceptAndCloseEndpoint evil;
  auto survivor = make_server();
  ShardedExecutorConfig config;
  config.endpoints = {{"127.0.0.1", evil.port},
                      {"127.0.0.1", survivor->port()}};
  config.policy = ShardPolicy::kRoundRobin;
  config.probe_health = false;
  ShardedExecutor sharded(config);
  const std::vector<RunReport> merged = sharded.run_all(sweep);

  ASSERT_EQ(merged.size(), sweep.size());
  for (std::size_t i = 0; i < merged.size(); ++i) {
    expect_equal_modulo_cache(reference[i], merged[i]);
  }
  const std::vector<ShardStats>& stats = sharded.shard_stats();
  EXPECT_EQ(stats[0].completed, 0u);
  EXPECT_GE(stats[0].failures, 1u);
  EXPECT_EQ(stats[1].completed, sweep.size());
}

TEST(ShardedExecutor, DaemonKilledMidRunResumesOnSurvivorBitIdentical) {
  // THE PR 9 acceptance property, end to end: a real moela_serve daemon is
  // SIGKILLed with runs in flight, the coordinator requeues its slice onto
  // the survivor WITH the latest streamed snapshots, the survivor resumes
  // (replays) the partial runs — and the merged batch is bit-identical to
  // an uninterrupted inline sweep. Deterministic: the kill fires on the
  // first snapshot-cadence event from a victim-owned request, which the
  // coordinator harvested BEFORE forwarding, so a resume point provably
  // exists.
  std::vector<RunRequest> sweep;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    RunRequest request = zdt1_request("moela", seed);
    request.options.max_evaluations = 2400;
    request.options.snapshot_interval = 200;
    sweep.push_back(std::move(request));
  }
  const std::vector<RunReport> reference = inline_reports(sweep);

  auto survivor = make_server(2);
  fault::DaemonProcess victim({"--no-cache", "--jobs", "2"});
  ShardedExecutorConfig config;
  config.endpoints = {{"127.0.0.1", survivor->port()},
                      {"127.0.0.1", victim.port()}};
  config.policy = ShardPolicy::kRoundRobin;  // victim owns the odd indices
  config.stream_progress = true;
  ShardedExecutor sharded(config);

  fault::FaultTrigger kill_trigger(1);
  RunControl control;
  control.on_progress([&](const RunProgress& progress) {
    if (!progress.finished && progress.batch_index % 2 == 1 &&
        kill_trigger.fire()) {
      victim.kill();
    }
  });
  const std::vector<RunReport> merged = sharded.run_all(sweep, &control);
  EXPECT_TRUE(kill_trigger.fired());
  EXPECT_FALSE(victim.alive());

  // Bit-identity despite the crash: every report, including the ones that
  // started on the victim and finished on the survivor, matches the
  // uninterrupted inline run.
  ASSERT_EQ(merged.size(), reference.size());
  for (std::size_t i = 0; i < merged.size(); ++i) {
    EXPECT_EQ(merged[i].provenance.seed, sweep[i].options.seed);
    expect_equal_modulo_cache(reference[i], merged[i]);
    EXPECT_FALSE(merged[i].provenance.cancelled) << i;
  }

  // The continuation really was a RESUME, not a re-run: the survivor
  // completed at least one request from a mid-run snapshot, and its daemon
  // counted it.
  const std::vector<ShardStats>& stats = sharded.shard_stats();
  EXPECT_GE(stats[1].failures, 1u);
  EXPECT_FALSE(stats[1].error.empty());
  EXPECT_GE(stats[0].resumed, 1u);
  EXPECT_EQ(stats[0].completed + stats[1].completed, sweep.size());
  serve::Client probe;
  probe.connect("127.0.0.1", survivor->port());
  const util::Json health = probe.health();
  EXPECT_GE(health.find("runs_resumed")->as_u64(), 1u);
}

TEST(ShardedExecutor, TransportDeathBeforeStartDoesNotChargeAttempts) {
  // The PR 9 attempt-accounting fix: a shard that dies before emitting a
  // single event for a request never executed it, so the requeue must not
  // charge the request's attempt cap. With max_attempts = 1 and solo
  // chunks, ANY spurious charge fails the batch — before the fix, this
  // test threw "1 attempt(s)" for the evil shard's whole slice.
  const std::vector<RunRequest> sweep = sweep_requests();
  const std::vector<RunReport> reference = inline_reports(sweep);

  AcceptAndCloseEndpoint evil;
  auto survivor = make_server();
  ShardedExecutorConfig config;
  config.endpoints = {{"127.0.0.1", evil.port},
                      {"127.0.0.1", survivor->port()}};
  config.policy = ShardPolicy::kRoundRobin;
  config.probe_health = false;
  config.steal_chunk = 1;   // size-1 chunks: the per-request charging path
  config.max_attempts = 1;  // zero tolerance for a spurious charge
  ShardedExecutor sharded(config);
  const std::vector<RunReport> merged = sharded.run_all(sweep);

  ASSERT_EQ(merged.size(), sweep.size());
  for (std::size_t i = 0; i < merged.size(); ++i) {
    expect_equal_modulo_cache(reference[i], merged[i]);
  }
  EXPECT_EQ(sharded.shard_stats()[0].completed, 0u);
  EXPECT_EQ(sharded.shard_stats()[1].completed, sweep.size());
}

TEST(ShardedExecutor, HealthProbeLeavesDeadShardOutOfPlacement) {
  auto survivor = make_server();
  const int dead = closed_port();
  ShardedExecutorConfig config;
  config.endpoints = {{"127.0.0.1", dead}, {"127.0.0.1", survivor->port()}};
  ShardedExecutor sharded(config);
  const std::vector<RunReport> merged =
      sharded.run_all({zdt1_request("nsga2", 1), zdt1_request("nsga2", 2)});

  EXPECT_EQ(merged.size(), 2u);
  const std::vector<ShardStats>& stats = sharded.shard_stats();
  EXPECT_FALSE(stats[0].healthy);
  // The probe failure names the dead endpoint (the satellite contract:
  // multi-shard errors are attributable).
  EXPECT_NE(stats[0].error.find(std::to_string(dead)), std::string::npos);
  EXPECT_TRUE(stats[1].healthy);
  EXPECT_EQ(stats[1].completed, 2u);
}

TEST(ShardedExecutor, AllShardsDownThrowsWithEndpoints) {
  const int dead_a = closed_port();
  const int dead_b = closed_port();
  ShardedExecutorConfig config;
  config.endpoints = {{"127.0.0.1", dead_a}, {"127.0.0.1", dead_b}};
  ShardedExecutor sharded(config);
  try {
    sharded.run_all({zdt1_request("nsga2", 1)});
    FAIL() << "expected the batch to fail with no healthy shard";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unserved"), std::string::npos) << what;
    EXPECT_NE(what.find(std::to_string(dead_a)), std::string::npos) << what;
    EXPECT_NE(what.find(std::to_string(dead_b)), std::string::npos) << what;
  }
}

TEST(ShardedExecutor, AllShardsDownFallsBackLocally) {
  const std::vector<RunRequest> sweep = {zdt1_request("nsga2", 1),
                                         zdt1_request("moela", 2)};
  const std::vector<RunReport> reference = inline_reports(sweep);

  ShardedExecutorConfig config;
  config.endpoints = {{"127.0.0.1", closed_port()}};
  config.local_fallback = true;
  config.local_jobs = 1;
  ShardedExecutor sharded(config);
  const std::vector<RunReport> merged = sharded.run_all(sweep);

  ASSERT_EQ(merged.size(), sweep.size());
  for (std::size_t i = 0; i < merged.size(); ++i) {
    expect_equal_modulo_cache(reference[i], merged[i]);
  }
  EXPECT_FALSE(sharded.shard_stats()[0].healthy);
}

TEST(ShardedExecutor, FallbackPoisonFailsBatchNamingOnlyThePoison) {
  // The fallback Executor drains every request even when one of them
  // throws locally too; the aggregate error then names exactly the
  // poison.
  ShardedExecutorConfig config;
  config.endpoints = {{"127.0.0.1", closed_port()}};
  config.local_fallback = true;
  config.local_jobs = 1;
  RunRequest poison = zdt1_request("nsga2", 1);
  poison.algorithm = "no-such-algorithm";
  poison.label = "poison";
  ShardedExecutor sharded(config);
  try {
    sharded.run_all({zdt1_request("nsga2", 2), poison});
    FAIL() << "expected the locally-poison request to fail the batch";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 of 2 request(s) unserved"), std::string::npos)
        << what;
    EXPECT_NE(what.find("'poison'"), std::string::npos) << what;
    EXPECT_NE(what.find("local fallback:"), std::string::npos) << what;
  }
}

TEST(ShardedExecutor, PoisonChunkMatesRetrySoloAndComplete) {
  // One daemon, wire batches of 4: the poison rides with three good
  // requests, the server rejects the whole batch, and the good three must
  // complete on solo retries — only the poison may end up unserved.
  auto server = make_server(4);
  ShardedExecutorConfig config;
  config.endpoints = {{"127.0.0.1", server->port()}};
  config.steal_chunk = 4;
  config.max_attempts = 2;

  std::vector<RunRequest> sweep = {zdt1_request("nsga2", 1),
                                   zdt1_request("nsga2", 2),
                                   zdt1_request("nsga2", 3),
                                   zdt1_request("nsga2", 4)};
  sweep[1].algorithm = "no-such-algorithm";
  sweep[1].label = "poison";
  ShardedExecutor sharded(config);
  try {
    sharded.run_all(sweep);
    FAIL() << "expected the poison request to fail the batch";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    // Exactly the poison is unserved; its chunk-mates were not charged.
    EXPECT_NE(what.find("1 of 4 request(s) unserved"), std::string::npos)
        << what;
    EXPECT_NE(what.find("poison"), std::string::npos) << what;
  }
}

TEST(ShardedExecutor, PoisonRequestExhaustsItsAttemptCap) {
  auto a = make_server();
  auto b = make_server();
  ShardedExecutorConfig config;
  config.endpoints = {{"127.0.0.1", a->port()}, {"127.0.0.1", b->port()}};
  config.max_attempts = 2;

  RunRequest poison = zdt1_request("nsga2", 1);
  poison.algorithm = "no-such-algorithm";
  poison.label = "poison";
  ShardedExecutor sharded(config);
  try {
    sharded.run_all({zdt1_request("nsga2", 1), poison});
    FAIL() << "expected the poison request to fail the batch";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("poison"), std::string::npos) << what;
    EXPECT_NE(what.find("2 attempt(s)"), std::string::npos) << what;
    EXPECT_NE(what.find("no-such-algorithm"), std::string::npos) << what;
  }
}

TEST(ShardedExecutor, StopCancelsInFlightRemoteChunks) {
  // Four effectively-endless runs across two daemons (jobs=1, chunk=1):
  // one in flight per daemon, two still pending coordinator-side. The
  // first streamed progress event requests the stop; the shard threads
  // must send the cancel verb, the daemons must actually stop their
  // in-flight work, and the pending requests come back locally cancelled
  // — no request is ever "abandoned but still burning daemon CPU".
  auto a = make_server(1);
  auto b = make_server(1);
  ShardedExecutorConfig config;
  config.endpoints = {{"127.0.0.1", a->port()}, {"127.0.0.1", b->port()}};
  config.policy = ShardPolicy::kWorkStealing;
  config.stream_progress = true;

  // moela, not nsga2: nsga2's internal generation cap would end the runs
  // naturally and race the cancel on a slow machine.
  std::vector<RunRequest> sweep;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    RunRequest request = zdt1_request("moela", seed);
    request.options.max_evaluations = 50000000;
    request.options.snapshot_interval = 500;
    sweep.push_back(std::move(request));
  }

  RunControl control;
  control.on_progress([&control](const RunProgress& progress) {
    if (!progress.finished) control.request_stop();
  });
  ShardedExecutor sharded(config);
  const std::vector<RunReport> merged = sharded.run_all(sweep, &control);

  ASSERT_EQ(merged.size(), sweep.size());
  std::size_t remote_cancelled = 0;
  for (std::size_t i = 0; i < merged.size(); ++i) {
    EXPECT_TRUE(merged[i].provenance.cancelled) << i;
    EXPECT_LT(merged[i].evaluations, 50000000u) << i;
    // A daemon-side cancel yields a PARTIAL report (the run was really
    // executing); a coordinator-side cancel of never-submitted work
    // yields the empty cancelled report.
    if (merged[i].evaluations > 0) ++remote_cancelled;
  }
  EXPECT_GE(remote_cancelled, 1u);  // in-flight remote work really stopped

  // Cancellation is not a fault: no shard failed, none was retired, and
  // both daemons are still accepting with their slots released.
  for (const ShardStats& shard : sharded.shard_stats()) {
    EXPECT_EQ(shard.failures, 0u) << shard.endpoint;
    EXPECT_TRUE(shard.error.empty()) << shard.error;
  }
  EXPECT_FALSE(a->shutdown_requested());
  EXPECT_FALSE(b->shutdown_requested());
  EXPECT_EQ(a->inflight_total(), 0u);
  EXPECT_EQ(b->inflight_total(), 0u);
  EXPECT_GE(a->runs_cancelled() + b->runs_cancelled(), remote_cancelled);
}

TEST(ShardedExecutor, StopKeepsCompletedReportsBitIdentical) {
  // A short and an endless run in ONE wire chunk on a two-worker daemon.
  // The short run's `finished` event triggers the stop: the endless run
  // must come back cancelled, while the already-completed run's report
  // stays bit-identical to an inline execution.
  const RunRequest short_request = zdt1_request("nsga2", 1);
  RunRequest long_request = zdt1_request("moela", 2);
  long_request.options.max_evaluations = 50000000;
  long_request.options.snapshot_interval = 500;
  const RunReport reference = inline_reports({short_request}).front();

  auto server = make_server(2);
  ShardedExecutorConfig config;
  config.endpoints = {{"127.0.0.1", server->port()}};
  config.steal_chunk = 2;  // both runs ride one chunk, in flight together
  ShardedExecutor sharded(config);

  RunControl control;
  control.on_progress([&control](const RunProgress& progress) {
    if (progress.finished) control.request_stop();
  });
  const std::vector<RunReport> merged =
      sharded.run_all({short_request, long_request}, &control);

  ASSERT_EQ(merged.size(), 2u);
  EXPECT_FALSE(merged[0].provenance.cancelled);
  expect_equal_modulo_cache(reference, merged[0]);
  EXPECT_TRUE(merged[1].provenance.cancelled);
  EXPECT_LT(merged[1].evaluations, 50000000u);
  EXPECT_EQ(sharded.shard_stats()[0].failures, 0u);
  EXPECT_FALSE(server->shutdown_requested());
  EXPECT_EQ(server->inflight_total(), 0u);
  EXPECT_EQ(server->runs_cancelled(), 1u);
}

TEST(ShardedExecutor, StopBeforeRunYieldsCancelledReports) {
  auto server = make_server();
  ShardedExecutorConfig config;
  config.endpoints = {{"127.0.0.1", server->port()}};
  ShardedExecutor sharded(config);

  RunControl control;
  control.request_stop();
  const std::vector<RunReport> merged =
      sharded.run_all(sweep_requests(), &control);
  ASSERT_EQ(merged.size(), 6u);
  for (const RunReport& report : merged) {
    EXPECT_TRUE(report.provenance.cancelled);
    EXPECT_EQ(report.evaluations, 0u);
  }
}

TEST(ShardedExecutor, RejectsEmptyOrDegenerateConfigs) {
  EXPECT_THROW(ShardedExecutor(ShardedExecutorConfig{}),
               std::invalid_argument);
  ShardedExecutorConfig no_attempts;
  no_attempts.endpoints = {{"127.0.0.1", 1}};
  no_attempts.max_attempts = 0;
  EXPECT_THROW(ShardedExecutor{no_attempts}, std::invalid_argument);
}

TEST(ShardedExecutor, ExplicitChunkSizeBatchesTheWire) {
  const std::vector<RunRequest> sweep = sweep_requests();
  const std::vector<RunReport> reference = inline_reports(sweep);

  auto server = make_server(2);
  ShardedExecutorConfig config;
  config.endpoints = {{"127.0.0.1", server->port()}};
  config.steal_chunk = 4;  // two wire batches of 4 + 2 for the 6 requests
  ShardedExecutor sharded(config);
  const std::vector<RunReport> merged = sharded.run_all(sweep);
  ASSERT_EQ(merged.size(), reference.size());
  for (std::size_t i = 0; i < merged.size(); ++i) {
    expect_equal_modulo_cache(reference[i], merged[i]);
  }
}

}  // namespace
}  // namespace moela::api
