// The five design objectives of Sec. III, Eqs. (1)-(7), all minimized:
//   1. Mean link utilization          (Eq. 1)
//   2. Variance of link utilization   (Eq. 2)
//   3. Average CPU-LLC latency        (Eq. 3)
//   4. Communication energy           (Eq. 4)
//   5. Thermal figure (Cong et al. fast 3D-IC model)  (Eqs. 5-7)
#pragma once

#include <cstddef>
#include <vector>

#include "moo/objective.hpp"
#include "noc/design.hpp"
#include "noc/platform.hpp"
#include "noc/routing.hpp"
#include "noc/workload.hpp"

namespace moela::noc {

/// Electrical and thermal constants. Defaults are representative values for
/// a 32 nm-class 3D stack (the paper obtains them from McPAT/GPUWattch and
/// 3D-ICE; see DESIGN.md's substitution notes). Only relative magnitudes
/// matter for the optimization landscape.
struct NocObjectiveParams {
  /// r in Eq. (3): router pipeline stages (cycles per hop).
  double router_stages = 4.0;
  /// Link delay in cycles per unit of planar routed length.
  double delay_per_unit = 1.0;
  /// Traversal delay of one vertical (TSV) link, cycles. TSVs are short.
  double vertical_delay = 1.0;
  /// d_k of a vertical link in length units for the energy model.
  double vertical_length = 0.5;
  /// E_link in Eq. (4): energy per flit per unit link length (pJ).
  double e_link = 1.0;
  /// E_r in Eq. (4): router logic energy per flit per port (pJ).
  double e_router = 0.8;
  /// R_j of Eq. (5): vertical thermal resistance of each die layer (K/W),
  /// indexed from the layer nearest the heat sink. Sized >= nz by resize_
  /// for_layers(); default value per layer below.
  std::vector<double> r_vertical;
  /// Default vertical resistance per layer when r_vertical is empty.
  double default_r_vertical = 0.12;
  /// R_b of Eq. (5): thermal resistance of the base layer (K/W).
  double r_base = 2.4;

  /// Returns r_vertical padded to `layers` entries with the default.
  std::vector<double> vertical_resistances(std::size_t layers) const;
};

/// The five raw objective values of one design under one workload.
struct NocObjectives {
  double traffic_mean = 0.0;
  double traffic_variance = 0.0;
  double cpu_latency = 0.0;
  double energy = 0.0;
  double thermal = 0.0;

  /// The first `m` objectives in paper order (3-obj = 1..3, 4-obj = 1..4,
  /// 5-obj = 1..5).
  moo::ObjectiveVector first(std::size_t m) const;
};

/// Side products of an evaluation that the EDP performance model reuses.
struct EvaluationDetail {
  std::vector<double> link_utilization;  // u_k per design link
  double max_link_utilization = 0.0;
  double mean_hops = 0.0;            // traffic-weighted average hop count
  double peak_temperature = 0.0;     // max_{n,k} T_n,k (before Eq. 7 product)
};

/// Evaluates all five objectives. `detail`, when non-null, receives the
/// intermediate quantities.
NocObjectives evaluate_objectives(const PlatformSpec& spec,
                                  const NocDesign& design,
                                  const Workload& workload,
                                  const NocObjectiveParams& params,
                                  EvaluationDetail* detail = nullptr);

}  // namespace moela::noc
