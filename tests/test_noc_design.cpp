#include "noc/design.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "noc/constraints.hpp"
#include "noc/platform.hpp"

namespace moela::noc {
namespace {

NocDesign mesh_design(const PlatformSpec& spec) {
  // Identity placement + full 3D-mesh links (adjacent planar + all TSVs).
  NocDesign d;
  d.placement.resize(spec.num_tiles());
  std::iota(d.placement.begin(), d.placement.end(), CoreId{0});
  for (TileId t = 0; t < spec.num_tiles(); ++t) {
    const int x = spec.x_of(t), y = spec.y_of(t), z = spec.z_of(t);
    if (x + 1 < spec.nx()) d.links.emplace_back(t, spec.tile_at(x + 1, y, z));
    if (y + 1 < spec.ny()) d.links.emplace_back(t, spec.tile_at(x, y + 1, z));
    if (z + 1 < spec.nz()) d.links.emplace_back(t, spec.tile_at(x, y, z + 1));
  }
  d.canonicalize();
  return d;
}

TEST(Design, TileOfCoreInvertsPlacement) {
  const auto spec = PlatformSpec::small_3x3x3();
  NocDesign d = mesh_design(spec);
  std::swap(d.placement[0], d.placement[5]);
  const auto tiles = d.tile_of_core();
  for (TileId t = 0; t < spec.num_tiles(); ++t) {
    EXPECT_EQ(tiles[d.placement[t]], t);
  }
}

TEST(Design, CanonicalizeSortsAndDedupes) {
  NocDesign d;
  d.links = {Link(3, 1), Link(0, 2), Link(1, 3)};
  d.canonicalize();
  ASSERT_EQ(d.links.size(), 2u);
  EXPECT_EQ(d.links[0], Link(0, 2));
  EXPECT_EQ(d.links[1], Link(1, 3));
}

TEST(Adjacency, NeighborsSortedAndSymmetric) {
  const auto spec = PlatformSpec::small_3x3x3();
  const NocDesign d = mesh_design(spec);
  const Adjacency adj(spec, d.links);
  for (TileId t = 0; t < spec.num_tiles(); ++t) {
    const auto& n = adj.neighbors(t);
    for (std::size_t i = 1; i < n.size(); ++i) EXPECT_LT(n[i - 1], n[i]);
    for (TileId v : n) {
      const auto& back = adj.neighbors(v);
      EXPECT_NE(std::find(back.begin(), back.end(), t), back.end());
    }
  }
}

TEST(Adjacency, MeshDegreeBounds) {
  const auto spec = PlatformSpec::small_3x3x3();
  const Adjacency adj(spec, mesh_design(spec).links);
  for (TileId t = 0; t < spec.num_tiles(); ++t) {
    EXPECT_GE(adj.degree(t), 3u);  // corner of the 3D mesh
    EXPECT_LE(adj.degree(t), 6u);  // center
  }
}

TEST(Adjacency, MeshIsConnected) {
  const auto spec = PlatformSpec::small_3x3x3();
  EXPECT_TRUE(Adjacency(spec, mesh_design(spec).links).connected());
}

TEST(Adjacency, MissingLinksDisconnect) {
  const auto spec = PlatformSpec::small_3x3x3();
  NocDesign d = mesh_design(spec);
  // Keep only links inside layer 0: layers 1-2 become unreachable.
  std::erase_if(d.links, [&](const Link& l) {
    return spec.z_of(l.a) != 0 || spec.z_of(l.b) != 0;
  });
  EXPECT_FALSE(Adjacency(spec, d.links).connected());
}

TEST(Adjacency, EmptyGraphDisconnected) {
  const auto spec = PlatformSpec::small_3x3x3();
  EXPECT_FALSE(Adjacency(spec, {}).connected());
}

TEST(SplitLinks, ClassifiesPlanarVsVertical) {
  const auto spec = PlatformSpec::small_3x3x3();
  const NocDesign d = mesh_design(spec);
  const auto split = split_links(spec, d.links);
  // 3x3 layer mesh: 12 planar per layer x 3; TSVs: 9 x 2.
  EXPECT_EQ(split.planar.size(), 36u);
  EXPECT_EQ(split.vertical.size(), 18u);
  for (const Link& l : split.planar) EXPECT_EQ(spec.z_of(l.a), spec.z_of(l.b));
  for (const Link& l : split.vertical) {
    EXPECT_NE(spec.z_of(l.a), spec.z_of(l.b));
  }
}

TEST(Constraints, MeshEquivalentDesignNeedsLlcPlacementFix) {
  // Identity placement puts LLC cores (the last 8 ids) wherever they fall;
  // validate() must pinpoint exactly the violated rule, if any.
  const auto spec = PlatformSpec::small_3x3x3();
  const NocDesign d = mesh_design(spec);
  const auto report = validate(spec, d);
  EXPECT_TRUE(report.placement_is_permutation);
  EXPECT_TRUE(report.link_budget_respected);
  EXPECT_TRUE(report.links_legal);
  EXPECT_TRUE(report.degree_respected);
  EXPECT_TRUE(report.connected);
}

TEST(Constraints, DetectsNonPermutation) {
  const auto spec = PlatformSpec::small_3x3x3();
  NocDesign d = mesh_design(spec);
  d.placement[0] = d.placement[1];  // duplicate core
  const auto report = validate(spec, d);
  EXPECT_FALSE(report.placement_is_permutation);
  EXPECT_FALSE(report.ok());
}

TEST(Constraints, DetectsLlcOffEdge) {
  const auto spec = PlatformSpec::small_3x3x3();
  NocDesign d = mesh_design(spec);
  // Move an LLC core to the interior tile (1,1,0).
  const TileId interior = spec.tile_at(1, 1, 0);
  const auto llcs = spec.cores_of_type(PeType::kLlc);
  const auto tiles = d.tile_of_core();
  const TileId llc_tile = tiles[llcs[0]];
  std::swap(d.placement[interior], d.placement[llc_tile]);
  const auto report = validate(spec, d);
  EXPECT_FALSE(report.llcs_on_edge);
  EXPECT_FALSE(report.ok());
}

TEST(Constraints, DetectsBudgetViolation) {
  const auto spec = PlatformSpec::small_3x3x3();
  NocDesign d = mesh_design(spec);
  d.links.pop_back();
  const auto report = validate(spec, d);
  EXPECT_FALSE(report.link_budget_respected);
}

TEST(Constraints, DetectsIllegalLink) {
  const auto spec = PlatformSpec::small_3x3x3();
  NocDesign d = mesh_design(spec);
  // Replace a link with a cross-layer diagonal (illegal).
  d.links.back() = Link(spec.tile_at(0, 0, 0), spec.tile_at(1, 0, 1));
  d.canonicalize();
  const auto report = validate(spec, d);
  EXPECT_FALSE(report.links_legal);
}

TEST(Constraints, DetectsDuplicateLinks) {
  const auto spec = PlatformSpec::small_3x3x3();
  NocDesign d = mesh_design(spec);
  d.links.push_back(d.links.front());  // duplicate without canonicalize
  const auto report = validate(spec, d);
  EXPECT_FALSE(report.links_legal);
}

TEST(Constraints, DetectsDisconnection) {
  const auto spec = PlatformSpec::small_3x3x3();
  NocDesign d = mesh_design(spec);
  // Remove all TSVs touching layer 2 and dump the budget elsewhere as
  // duplicates of legality-checked planar candidates to keep counts equal.
  std::vector<Link> removed;
  std::erase_if(d.links, [&](const Link& l) {
    const bool cut = spec.z_of(l.a) == 1 && spec.z_of(l.b) == 2;
    if (cut) removed.push_back(l);
    return cut;
  });
  // Refill vertical budget with links between layers 0-1 (possibly longer
  // list than slots; just take distinct ones not already present).
  for (const Link& cand : spec.vertical_candidates()) {
    if (removed.empty()) break;
    if (spec.z_of(cand.a) == 0 &&
        std::find(d.links.begin(), d.links.end(), cand) == d.links.end()) {
      d.links.push_back(cand);
      removed.pop_back();
    }
  }
  d.canonicalize();
  const auto report = validate(spec, d);
  EXPECT_FALSE(report.connected);
  EXPECT_FALSE(report.ok());
}

}  // namespace
}  // namespace moela::noc
