// Row-major regression dataset used to train MOELA's Eval function.
//
// Each sample is (feature vector, scalar target). MOELA appends local-search
// trajectories here — features encode (design, weight vector), the target is
// the final Eq. (8) value reached by the search — and keeps only the most
// recent `capacity` samples (the paper bounds |S_train| <= 10K).
#pragma once

#include <cstddef>
#include <deque>
#include <span>
#include <vector>

namespace moela::ml {

class Dataset {
 public:
  /// `capacity` == 0 means unbounded. Otherwise the oldest samples are
  /// discarded once the bound is exceeded (sliding window).
  explicit Dataset(std::size_t num_features, std::size_t capacity = 0)
      : num_features_(num_features), capacity_(capacity) {}

  void add(std::vector<double> features, double target);

  std::size_t size() const { return features_.size(); }
  bool empty() const { return features_.empty(); }
  std::size_t num_features() const { return num_features_; }

  std::span<const double> features(std::size_t i) const {
    return features_[i];
  }
  double target(std::size_t i) const { return targets_[i]; }

  const std::deque<std::vector<double>>& all_features() const {
    return features_;
  }
  const std::deque<double>& all_targets() const { return targets_; }

 private:
  std::size_t num_features_;
  std::size_t capacity_;
  std::deque<std::vector<double>> features_;
  std::deque<double> targets_;
};

}  // namespace moela::ml
