// Pareto-set utilities: non-dominated filtering, fast non-dominated sorting
// (Deb et al., NSGA-II), and crowding distance.
#pragma once

#include <cstddef>
#include <vector>

#include "moo/objective.hpp"

namespace moela::moo {

/// Returns the indices of the non-dominated members of `points`
/// (minimization). Duplicated vectors: the first occurrence is kept.
std::vector<std::size_t> pareto_filter(
    const std::vector<ObjectiveVector>& points);

/// Fast non-dominated sort. Returns fronts of indices; fronts[0] is the
/// Pareto-optimal set, fronts[1] the set that becomes non-dominated once
/// fronts[0] is removed, and so on. O(M N^2).
std::vector<std::vector<std::size_t>> non_dominated_sort(
    const std::vector<ObjectiveVector>& points);

/// Crowding distance of each member of a single front (NSGA-II). Boundary
/// points of each objective get +infinity. `front` indexes into `points`.
std::vector<double> crowding_distance(
    const std::vector<ObjectiveVector>& points,
    const std::vector<std::size_t>& front);

/// Component-wise minimum of a set of objective vectors (the ideal point).
/// Requires a non-empty set.
ObjectiveVector ideal_point(const std::vector<ObjectiveVector>& points);

/// Component-wise maximum of a set of objective vectors (the nadir proxy).
/// Requires a non-empty set.
ObjectiveVector nadir_point(const std::vector<ObjectiveVector>& points);

/// Min-max normalizes `points` into [0, 1]^M using the given ideal/nadir.
/// Degenerate dimensions (ideal == nadir) map to 0.
std::vector<ObjectiveVector> normalize(
    const std::vector<ObjectiveVector>& points, const ObjectiveVector& ideal,
    const ObjectiveVector& nadir);

}  // namespace moela::moo
