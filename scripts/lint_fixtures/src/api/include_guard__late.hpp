// Fixture: seeded violation — code precedes #pragma once.
inline int forty_two() { return 42; }
#pragma once
