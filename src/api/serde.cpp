#include "api/serde.hpp"

#include <cstdint>
#include <memory>
#include <sstream>
#include <utility>
#include <vector>

#include "api/snapshot.hpp"
#include "noc/design.hpp"
#include "noc/io.hpp"

namespace moela::api {
namespace {

using util::Json;
using util::JsonArray;
using util::JsonError;

Json rows_to_json(const std::vector<moo::ObjectiveVector>& rows) {
  Json out = Json::array();
  for (const auto& row : rows) {
    Json json_row = Json::array();
    for (double v : row) json_row.append(util::exact_number(v));
    out.append(std::move(json_row));
  }
  return out;
}

std::vector<moo::ObjectiveVector> rows_from_json(const Json& json) {
  std::vector<moo::ObjectiveVector> out;
  out.reserve(json.as_array().size());
  for (const auto& json_row : json.as_array()) {
    moo::ObjectiveVector row;
    row.reserve(json_row.as_array().size());
    for (const auto& v : json_row.as_array()) {
      row.push_back(util::exact_to_double(v));
    }
    out.push_back(std::move(row));
  }
  return out;
}

Json knobs_to_json(const std::map<std::string, double>& knobs) {
  Json out = Json::object();
  for (const auto& [name, value] : knobs) {
    out.set(name, util::exact_number(value));
  }
  return out;
}

std::map<std::string, double> knobs_from_json(const Json& json) {
  std::map<std::string, double> out;
  for (const auto& [name, value] : json.as_object()) {
    out[name] = util::exact_to_double(value);
  }
  return out;
}

// Field readers: absent fields keep the caller's default, present fields
// must have the right type (JsonError otherwise).
void read_u64(const Json& obj, const char* key, std::uint64_t& out) {
  if (const Json* v = obj.find(key)) out = v->as_u64();
}
void read_size(const Json& obj, const char* key, std::size_t& out) {
  if (const Json* v = obj.find(key)) {
    out = static_cast<std::size_t>(v->as_u64());
  }
}
void read_exact(const Json& obj, const char* key, double& out) {
  if (const Json* v = obj.find(key)) out = util::exact_to_double(*v);
}
void read_string(const Json& obj, const char* key, std::string& out) {
  if (const Json* v = obj.find(key)) out = v->as_string();
}
void read_bool(const Json& obj, const char* key, bool& out) {
  if (const Json* v = obj.find(key)) out = v->as_bool();
}

// ---------------------------------------------------------------- designs
// Same three kinds as the result cache's disk codec: real vectors, binary
// vectors, NocDesign (via the noc/io text format, embedded as strings).

Json designs_to_json(const std::vector<AnyDesign>& designs) {
  Json out = Json::object();
  Json payload = Json::array();
  if (designs.empty()) {
    return out.set("kind", "none").set("values", std::move(payload));
  }
  const std::type_info& t = designs.front().type();
  if (t == typeid(std::vector<double>)) {
    for (const auto& d : designs) {
      Json row = Json::array();
      for (double x : d.as<std::vector<double>>()) {
        row.append(util::exact_number(x));
      }
      payload.append(std::move(row));
    }
    return out.set("kind", "real").set("values", std::move(payload));
  }
  if (t == typeid(std::vector<std::uint8_t>)) {
    for (const auto& d : designs) {
      Json row = Json::array();
      for (unsigned x : d.as<std::vector<std::uint8_t>>()) {
        row.append(static_cast<std::uint64_t>(x));
      }
      payload.append(std::move(row));
    }
    return out.set("kind", "binary").set("values", std::move(payload));
  }
  if (t == typeid(noc::NocDesign)) {
    for (const auto& d : designs) {
      std::ostringstream os;
      noc::write_design(os, d.as<noc::NocDesign>());
      payload.append(os.str());
    }
    return out.set("kind", "noc").set("values", std::move(payload));
  }
  return out.set("kind", "none").set("values", std::move(payload));
}

std::vector<AnyDesign> designs_from_json(const Json& json) {
  std::vector<AnyDesign> out;
  std::string kind = "none";
  read_string(json, "kind", kind);
  const Json* values = json.find("values");
  if (kind == "none" || values == nullptr) return out;
  out.reserve(values->as_array().size());
  if (kind == "real") {
    for (const auto& row : values->as_array()) {
      std::vector<double> v;
      v.reserve(row.as_array().size());
      for (const auto& x : row.as_array()) {
        v.push_back(util::exact_to_double(x));
      }
      out.push_back(AnyDesign::wrap<std::vector<double>>(std::move(v)));
    }
    return out;
  }
  if (kind == "binary") {
    for (const auto& row : values->as_array()) {
      std::vector<std::uint8_t> v;
      v.reserve(row.as_array().size());
      for (const auto& x : row.as_array()) {
        v.push_back(static_cast<std::uint8_t>(x.as_u64()));
      }
      out.push_back(AnyDesign::wrap<std::vector<std::uint8_t>>(std::move(v)));
    }
    return out;
  }
  if (kind == "noc") {
    for (const auto& text : values->as_array()) {
      std::istringstream is(text.as_string());
      try {
        out.push_back(AnyDesign::wrap<noc::NocDesign>(noc::read_design(is)));
      } catch (const std::exception& e) {
        throw JsonError(std::string("designs: bad noc payload: ") + e.what());
      }
    }
    return out;
  }
  throw JsonError("designs: unknown kind '" + kind + "'");
}

}  // namespace

Json request_to_json(const RunRequest& request) {
  Json problem_options = Json::object();
  problem_options.set("objectives", request.problem_options.num_objectives)
      .set("variables", request.problem_options.num_variables)
      .set("seed", request.problem_options.seed)
      .set("app", request.problem_options.app)
      .set("small_platform", request.problem_options.small_platform);

  Json options = Json::object();
  options.set("evals", request.options.max_evaluations)
      .set("seconds", util::exact_number(request.options.max_seconds))
      .set("snapshot", request.options.snapshot_interval)
      .set("seed", request.options.seed)
      .set("pop", request.options.population_size)
      .set("n_local", request.options.n_local)
      .set("knobs", knobs_to_json(request.options.knobs.values()));

  Json out = Json::object();
  out.set("problem", request.problem)
      .set("problem_options", std::move(problem_options))
      .set("algorithm", request.algorithm)
      .set("options", std::move(options))
      .set("need_designs", request.need_designs)
      .set("label", request.label)
      .set("trace", request.trace_id)
      .set("checkpoint", request.checkpoint);
  // The resume payload only when present: most requests carry none, and an
  // absent key keeps pre-checkpoint wire peers byte-compatible.
  if (request.resume != nullptr) {
    out.set("resume", snapshot_to_json(*request.resume));
  }
  return out;
}

RunRequest request_from_json(const Json& json) {
  RunRequest request;
  read_string(json, "problem", request.problem);
  read_string(json, "algorithm", request.algorithm);
  if (request.problem.empty()) {
    throw JsonError("request: missing or empty 'problem'");
  }
  if (request.algorithm.empty()) {
    throw JsonError("request: missing or empty 'algorithm'");
  }
  if (const Json* po = json.find("problem_options")) {
    read_size(*po, "objectives", request.problem_options.num_objectives);
    read_size(*po, "variables", request.problem_options.num_variables);
    read_u64(*po, "seed", request.problem_options.seed);
    read_string(*po, "app", request.problem_options.app);
    read_bool(*po, "small_platform", request.problem_options.small_platform);
  }
  if (const Json* ro = json.find("options")) {
    read_size(*ro, "evals", request.options.max_evaluations);
    read_exact(*ro, "seconds", request.options.max_seconds);
    read_size(*ro, "snapshot", request.options.snapshot_interval);
    read_u64(*ro, "seed", request.options.seed);
    read_size(*ro, "pop", request.options.population_size);
    read_size(*ro, "n_local", request.options.n_local);
    if (const Json* knobs = ro->find("knobs")) {
      for (const auto& [name, value] : knobs_from_json(*knobs)) {
        request.options.knobs.set(name, value);
      }
    }
  }
  read_bool(json, "need_designs", request.need_designs);
  read_string(json, "label", request.label);
  // Absent on pre-telemetry wire peers: the empty default stands.
  read_string(json, "trace", request.trace_id);
  // Absent on pre-checkpoint wire peers: both defaults stand. A resume
  // payload is validated strictly (shape, salt, checksum) — a request
  // carrying garbage is rejected whole rather than silently run fresh, so
  // a corrupting middlebox cannot hide.
  read_bool(json, "checkpoint", request.checkpoint);
  if (const Json* resume = json.find("resume")) {
    request.resume =
        std::make_shared<const RunSnapshot>(snapshot_from_json(*resume));
  }
  return request;
}

Json report_to_json(const RunReport& report) {
  Json snapshots = Json::array();
  for (const auto& s : report.snapshots) {
    Json snapshot = Json::object();
    snapshot.set("evaluations", s.evaluations)
        .set("seconds", util::exact_number(s.seconds))
        .set("front", rows_to_json(s.front));
    snapshots.append(std::move(snapshot));
  }

  const RunProvenance& p = report.provenance;
  Json provenance = Json::object();
  provenance.set("problem", p.problem)
      .set("algorithm_key", p.algorithm_key)
      .set("seed", p.seed)
      .set("knobs", knobs_to_json(p.knobs))
      .set("cache_key", p.cache_key)
      .set("cache_hit", p.cache_hit)
      .set("cancelled", p.cancelled)
      .set("priority", p.priority)
      .set("trace", p.trace_id);

  Json out = Json::object();
  out.set("algorithm", report.algorithm)
      .set("snapshots", std::move(snapshots))
      .set("final_front", rows_to_json(report.final_front))
      .set("final_objectives", rows_to_json(report.final_objectives))
      .set("designs", designs_to_json(report.final_designs))
      .set("evaluations", report.evaluations)
      .set("seconds", util::exact_number(report.seconds))
      .set("provenance", std::move(provenance));
  return out;
}

RunReport report_from_json(const Json& json) {
  RunReport report;
  read_string(json, "algorithm", report.algorithm);
  if (const Json* snapshots = json.find("snapshots")) {
    report.snapshots.reserve(snapshots->as_array().size());
    for (const auto& s : snapshots->as_array()) {
      core::ArchiveSnapshot snapshot;
      read_size(s, "evaluations", snapshot.evaluations);
      read_exact(s, "seconds", snapshot.seconds);
      if (const Json* front = s.find("front")) {
        snapshot.front = rows_from_json(*front);
      }
      report.snapshots.push_back(std::move(snapshot));
    }
  }
  if (const Json* front = json.find("final_front")) {
    report.final_front = rows_from_json(*front);
  }
  if (const Json* objectives = json.find("final_objectives")) {
    report.final_objectives = rows_from_json(*objectives);
  }
  if (const Json* designs = json.find("designs")) {
    report.final_designs = designs_from_json(*designs);
  }
  read_size(json, "evaluations", report.evaluations);
  read_exact(json, "seconds", report.seconds);
  if (const Json* provenance = json.find("provenance")) {
    RunProvenance& p = report.provenance;
    read_string(*provenance, "problem", p.problem);
    read_string(*provenance, "algorithm_key", p.algorithm_key);
    read_u64(*provenance, "seed", p.seed);
    if (const Json* knobs = provenance->find("knobs")) {
      p.knobs = knobs_from_json(*knobs);
    }
    read_string(*provenance, "cache_key", p.cache_key);
    read_bool(*provenance, "cache_hit", p.cache_hit);
    read_bool(*provenance, "cancelled", p.cancelled);
    // Absent on pre-scheduler wire peers: the default ("normal") stands.
    read_string(*provenance, "priority", p.priority);
    // Absent on pre-telemetry wire peers: the empty default stands.
    read_string(*provenance, "trace", p.trace_id);
  }
  return report;
}

}  // namespace moela::api
