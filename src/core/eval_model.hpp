// The learned evaluation function Eval (Sec. IV.B).
//
// Eval maps (design features, weight vector) -> predicted final Eq. (8)
// value of a greedy local search launched from that design with that weight.
// Lower predictions identify the most promising local-search starting
// points (Algorithm 2, MLguide). The model is a random forest over the
// aggregated trajectory set S_train, bounded to the most recent `capacity`
// samples (the paper uses |S_train| <= 10K).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "ml/dataset.hpp"
#include "ml/random_forest.hpp"
#include "moo/weights.hpp"
#include "util/rng.hpp"

namespace moela::core {

class EvalModel {
 public:
  /// `design_features` is the problem's feature width. Every sample is the
  /// concatenation [design features | objective vector | weight vector]:
  /// all trajectory designs were evaluated during the search, and Eval is
  /// only ever queried on (already evaluated) population members, so the
  /// objective vector is free information that makes the final-g regression
  /// far better conditioned than structural features alone.
  EvalModel(std::size_t design_features, std::size_t num_objectives,
            std::size_t capacity = 10000, ml::ForestConfig forest = {})
      : num_objectives_(num_objectives),
        dataset_(design_features + 2 * num_objectives, capacity),
        forest_config_(forest) {}

  /// Appends one labeled trajectory sample.
  void add_sample(std::vector<double> design_features,
                  const moo::ObjectiveVector& objectives,
                  const moo::WeightVector& weight, double final_g) {
    design_features.insert(design_features.end(), objectives.begin(),
                           objectives.end());
    design_features.insert(design_features.end(), weight.begin(),
                           weight.end());
    dataset_.add(std::move(design_features), final_g);
  }

  std::size_t num_samples() const { return dataset_.size(); }

  /// (Re)trains the forest on the current window. No-op on an empty set.
  void train(util::Rng& rng) {
    if (dataset_.empty()) return;
    forest_ = ml::RandomForest(forest_config_);
    forest_.fit(dataset_, rng);
    trained_ = true;
  }

  bool trained() const { return trained_; }

  /// Predicted final local-search value from this (design, weight) start.
  double predict(std::vector<double> design_features,
                 const moo::ObjectiveVector& objectives,
                 const moo::WeightVector& weight) const {
    design_features.insert(design_features.end(), objectives.begin(),
                           objectives.end());
    design_features.insert(design_features.end(), weight.begin(),
                           weight.end());
    return forest_.predict(design_features);
  }

  const ml::Dataset& dataset() const { return dataset_; }

 private:
  std::size_t num_objectives_;
  ml::Dataset dataset_;
  ml::ForestConfig forest_config_;
  ml::RandomForest forest_;
  bool trained_ = false;
};

}  // namespace moela::core
