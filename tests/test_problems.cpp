#include <gtest/gtest.h>

#include <cmath>

#include "moo/pareto.hpp"
#include "moo/problem.hpp"
#include "problems/continuous.hpp"
#include "problems/dtlz.hpp"
#include "problems/knapsack.hpp"
#include "problems/zdt.hpp"
#include "util/rng.hpp"

namespace moela::problems {
namespace {

// The test problems must satisfy the library-wide problem concept.
static_assert(moo::MooProblem<Dtlz1>);
static_assert(moo::MooProblem<Dtlz2>);
static_assert(moo::MooProblem<Dtlz7>);
static_assert(moo::MooProblem<Zdt>);
static_assert(moo::MooProblem<MultiObjectiveKnapsack>);

TEST(Continuous, SbxChildWithinBounds) {
  util::Rng rng(1);
  const RealVector a{0.1, 0.9, 0.5};
  const RealVector b{0.8, 0.2, 0.5};
  for (int i = 0; i < 200; ++i) {
    const auto child = sbx_crossover(a, b, rng);
    ASSERT_EQ(child.size(), 3u);
    for (double g : child) {
      EXPECT_GE(g, 0.0);
      EXPECT_LE(g, 1.0);
    }
  }
}

TEST(Continuous, MutationStaysInBounds) {
  util::Rng rng(2);
  RealVector x{0.0, 1.0, 0.5};
  for (int i = 0; i < 200; ++i) {
    const auto m = polynomial_mutation(x, rng);
    for (double g : m) {
      EXPECT_GE(g, 0.0);
      EXPECT_LE(g, 1.0);
    }
  }
}

TEST(Continuous, CoordinateStepChangesAtMostOneGene) {
  util::Rng rng(3);
  const RealVector x{0.5, 0.5, 0.5, 0.5};
  for (int i = 0; i < 100; ++i) {
    const auto n = coordinate_step(x, rng);
    int changed = 0;
    for (std::size_t k = 0; k < x.size(); ++k) {
      if (n[k] != x[k]) ++changed;
    }
    EXPECT_LE(changed, 1);
  }
}

TEST(Dtlz2, OptimalPointEvaluatesOntoUnitSphere) {
  Dtlz2 problem(3);
  // Distance variables at 0.5 -> g = 0 -> sum f_i^2 == 1.
  RealVector x(problem.num_variables(), 0.5);
  x[0] = 0.3;
  x[1] = 0.7;
  const auto f = problem.evaluate(x);
  double s = 0.0;
  for (double v : f) s += v * v;
  EXPECT_NEAR(s, 1.0, 1e-9);
}

TEST(Dtlz2, PerturbedDistanceVariablesMoveOffFront) {
  Dtlz2 problem(3);
  RealVector x(problem.num_variables(), 0.5);
  x[problem.num_variables() - 1] = 0.9;  // g > 0
  const auto f = problem.evaluate(x);
  double s = 0.0;
  for (double v : f) s += v * v;
  EXPECT_GT(s, 1.0);
}

TEST(Dtlz2, FrontSamplesOnSphere) {
  Dtlz2 problem(4);
  util::Rng rng(4);
  for (const auto& f : problem.pareto_front_samples(100, rng)) {
    double s = 0.0;
    for (double v : f) s += v * v;
    EXPECT_NEAR(s, 1.0, 1e-9);
  }
}

TEST(Dtlz1, OptimalPointsOnLinearFront) {
  Dtlz1 problem(3);
  RealVector x(problem.num_variables(), 0.5);  // g = 0
  x[0] = 0.2;
  x[1] = 0.6;
  const auto f = problem.evaluate(x);
  double s = 0.0;
  for (double v : f) s += v;
  EXPECT_NEAR(s, 0.5, 1e-9);
}

TEST(Dtlz1, FrontSamplesSumToHalf) {
  Dtlz1 problem(5);
  util::Rng rng(5);
  for (const auto& f : problem.pareto_front_samples(50, rng)) {
    double s = 0.0;
    for (double v : f) s += v;
    EXPECT_NEAR(s, 0.5, 1e-9);
  }
}

TEST(Dtlz7, LastObjectiveUsesHFunction) {
  Dtlz7 problem(3);
  RealVector x(problem.num_variables(), 0.0);  // g = 1
  x[0] = 0.25;
  x[1] = 0.75;
  const auto f = problem.evaluate(x);
  EXPECT_DOUBLE_EQ(f[0], 0.25);
  EXPECT_DOUBLE_EQ(f[1], 0.75);
  EXPECT_GT(f[2], 0.0);
}

TEST(Zdt1, KnownFrontShape) {
  Zdt problem(ZdtVariant::kZdt1, 10);
  RealVector x(10, 0.0);  // g = 1 -> on the front
  x[0] = 0.49;
  const auto f = problem.evaluate(x);
  EXPECT_DOUBLE_EQ(f[0], 0.49);
  EXPECT_NEAR(f[1], 1.0 - std::sqrt(0.49), 1e-12);
}

TEST(Zdt2, ConcaveFront) {
  Zdt problem(ZdtVariant::kZdt2, 10);
  RealVector x(10, 0.0);
  x[0] = 0.5;
  const auto f = problem.evaluate(x);
  EXPECT_NEAR(f[1], 0.75, 1e-12);
}

TEST(Zdt3, FrontSamplesAreNonDominated) {
  Zdt problem(ZdtVariant::kZdt3, 10);
  const auto front = problem.pareto_front_samples(200);
  EXPECT_FALSE(front.empty());
  EXPECT_LT(front.size(), 200u);  // disconnected: parts filtered out
  const auto keep = moo::pareto_filter(front);
  EXPECT_EQ(keep.size(), front.size());
}

TEST(Zdt, OffFrontPointsDominatedByFrontPoints) {
  Zdt problem(ZdtVariant::kZdt1, 10);
  RealVector off(10, 0.5);  // g > 1
  off[0] = 0.3;
  const auto f_off = problem.evaluate(off);
  RealVector on(10, 0.0);
  on[0] = 0.3;
  const auto f_on = problem.evaluate(on);
  EXPECT_TRUE(moo::dominates(f_on, f_off));
}

TEST(Knapsack, GeneratedInstanceIsConsistent) {
  MultiObjectiveKnapsack ks(50, 3, 7);
  EXPECT_EQ(ks.num_items(), 50u);
  EXPECT_EQ(ks.num_objectives(), 3u);
  EXPECT_GT(ks.capacity(), 0.0);
}

TEST(Knapsack, RandomDesignsAreFeasible) {
  MultiObjectiveKnapsack ks(60, 2, 11);
  util::Rng rng(8);
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(ks.feasible(ks.random_design(rng)));
  }
}

TEST(Knapsack, OperatorsPreserveFeasibility) {
  MultiObjectiveKnapsack ks(40, 2, 13);
  util::Rng rng(9);
  auto a = ks.random_design(rng);
  auto b = ks.random_design(rng);
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(ks.feasible(ks.random_neighbor(a, rng)));
    EXPECT_TRUE(ks.feasible(ks.crossover(a, b, rng)));
    EXPECT_TRUE(ks.feasible(ks.mutate(a, rng)));
  }
}

TEST(Knapsack, ObjectivesAreNegatedProfits) {
  MultiObjectiveKnapsack ks(10, 2, 17);
  MultiObjectiveKnapsack::Design empty(10, 0);
  const auto f = ks.evaluate(empty);
  EXPECT_DOUBLE_EQ(f[0], 0.0);
  EXPECT_DOUBLE_EQ(f[1], 0.0);
  util::Rng rng(10);
  const auto d = ks.random_design(rng);
  bool any = false;
  for (auto bit : d) any = any || bit;
  if (any) {
    const auto fd = ks.evaluate(d);
    EXPECT_LT(fd[0], 0.0);  // selecting items reduces (negated) objective
  }
}

TEST(Knapsack, MoreItemsNeverWorseObjective) {
  // Adding an item (if feasible) can only decrease the negated profit.
  MultiObjectiveKnapsack ks(20, 2, 19);
  MultiObjectiveKnapsack::Design d(20, 0);
  d[3] = 1;
  auto d2 = d;
  d2[7] = 1;
  if (ks.feasible(d2)) {
    const auto f1 = ks.evaluate(d);
    const auto f2 = ks.evaluate(d2);
    EXPECT_LE(f2[0], f1[0]);
    EXPECT_LE(f2[1], f1[1]);
  }
}

TEST(Knapsack, DeterministicInstanceFromSeed) {
  MultiObjectiveKnapsack a(30, 2, 23);
  MultiObjectiveKnapsack b(30, 2, 23);
  MultiObjectiveKnapsack::Design d(30, 0);
  for (std::size_t i = 0; i < 30; i += 3) d[i] = 1;
  EXPECT_EQ(a.evaluate(d), b.evaluate(d));
  EXPECT_EQ(a.capacity(), b.capacity());
}

class ZdtSweep : public ::testing::TestWithParam<ZdtVariant> {};

TEST_P(ZdtSweep, EvaluationBoundsAndFeatureWidth) {
  Zdt problem(GetParam(), 12);
  util::Rng rng(20);
  for (int i = 0; i < 50; ++i) {
    const auto x = problem.random_design(rng);
    const auto f = problem.evaluate(x);
    ASSERT_EQ(f.size(), 2u);
    EXPECT_GE(f[0], 0.0);
    EXPECT_LE(f[0], 1.0);
    EXPECT_EQ(problem.features(x).size(), problem.num_features());
  }
}

INSTANTIATE_TEST_SUITE_P(Variants, ZdtSweep,
                         ::testing::Values(ZdtVariant::kZdt1,
                                           ZdtVariant::kZdt2,
                                           ZdtVariant::kZdt3));

}  // namespace
}  // namespace moela::problems
