// DEPRECATED SHIM over the runtime-composable API in src/api/.
//
// The enum-dispatched run_algorithm() below predates the type-erased
// Optimizer front-end (api/optimizer.hpp + api/registry.hpp) and is kept
// as a thin compatibility layer: it maps the Algorithm enum to a registry
// key, the typed RunConfig to RunOptions knobs, and the uniform RunReport
// back to the typed RunResult<P>. New code should use the registry
// directly:
//
//   api::registry().create("moela", api::AnyProblem(problem))->run(options)
//
// The shim and the registry path produce identical results for the same
// seed (tested in tests/test_api.cpp).
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "api/any_problem.hpp"
#include "api/optimizer.hpp"
#include "api/registry.hpp"
#include "baselines/moo_stage.hpp"
#include "baselines/moos.hpp"
#include "core/eval_context.hpp"
#include "core/moela.hpp"
#include "moo/problem.hpp"

namespace moela::exp {

enum class Algorithm {
  kMoela,
  kMoeaD,
  kMoos,
  kMooStage,
  kNsga2,
  // Ablation variants of MOELA:
  kMoelaNoMlGuide,     // local-search starts stay random
  kMoelaEaOnly,        // no local search at all
  kMoelaLocalOnly,     // no EA stage
};

/// Display name ("MOELA", "MOEA/D", ...). Matches Optimizer::name().
std::string algorithm_name(Algorithm a);

/// Registry key ("moela", "moead", ...) of the same algorithm in
/// api::registry().
std::string algorithm_key(Algorithm a);

/// Inverse of algorithm_name(); also accepts the registry key. Returns
/// nullopt for an unknown name (round-trip tested so the enum and the
/// names cannot drift silently).
std::optional<Algorithm> parse_algorithm(std::string_view name);

struct RunConfig {
  std::size_t max_evaluations = 20000;
  /// Wall-clock budget in seconds; 0 disables it. When set, a run stops at
  /// whichever budget binds first (the paper's T_stop is wall-clock).
  double max_seconds = 0.0;
  std::size_t snapshot_interval = 500;
  std::uint64_t seed = 1;
  /// Population / archive size shared by every algorithm (fairness).
  std::size_t population_size = 50;
  /// Local searches per iteration for the LS-based methods (n_local).
  std::size_t n_local = 5;
  core::MoelaConfig moela;          // further MOELA knobs
  baselines::MoosConfig moos;       // further MOOS knobs
  baselines::MooStageConfig stage;  // further MOO-STAGE knobs
};

/// Maps the typed RunConfig onto the string-keyed RunOptions the Optimizer
/// API consumes. The mapping is complete: every RunConfig field an
/// algorithm used under the old enum dispatch lands in a knob the matching
/// adapter reads.
api::RunOptions to_run_options(const RunConfig& config);

template <moo::MooProblem P>
struct RunResult {
  Algorithm algorithm{};
  std::vector<core::ArchiveSnapshot> snapshots;
  /// The all-time Pareto front of the run (objective vectors).
  std::vector<moo::ObjectiveVector> final_front;
  /// Final population/archive (designs + objectives), for design selection.
  std::vector<typename P::Design> final_designs;
  std::vector<moo::ObjectiveVector> final_objectives;
  std::size_t evaluations = 0;
  double seconds = 0.0;
};

/// Runs `algorithm` on `problem` through the optimizer registry. All
/// algorithms receive the same budget, population sizing, and a seed
/// derived from config.seed. DEPRECATED: use api::registry() directly.
template <moo::MooProblem P>
RunResult<P> run_algorithm(Algorithm algorithm, const P& problem,
                           const RunConfig& config) {
  api::RunReport report =
      api::registry()
          .create(algorithm_key(algorithm), api::AnyProblem(problem))
          ->run(to_run_options(config));

  RunResult<P> result;
  result.algorithm = algorithm;
  result.snapshots = std::move(report.snapshots);
  result.final_front = std::move(report.final_front);
  if constexpr (std::same_as<P, api::AnyProblem>) {
    result.final_designs = std::move(report.final_designs);
  } else {
    result.final_designs = report.designs_as<typename P::Design>();
  }
  result.final_objectives = std::move(report.final_objectives);
  result.evaluations = report.evaluations;
  result.seconds = report.seconds;
  return result;
}

}  // namespace moela::exp
