#include "noc/platform.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace moela::noc {

const char* to_string(PeType type) {
  switch (type) {
    case PeType::kCpu:
      return "CPU";
    case PeType::kGpu:
      return "GPU";
    case PeType::kLlc:
      return "LLC";
  }
  return "???";
}

PlatformSpec::PlatformSpec(int nx, int ny, int nz,
                           std::vector<PeType> core_types,
                           std::size_t num_planar_links,
                           std::size_t num_vertical_links,
                           int max_planar_length, int max_router_degree)
    : nx_(nx),
      ny_(ny),
      nz_(nz),
      core_types_(std::move(core_types)),
      num_planar_links_(num_planar_links),
      num_vertical_links_(num_vertical_links),
      max_planar_length_(max_planar_length),
      max_router_degree_(max_router_degree) {
  if (nx <= 0 || ny <= 0 || nz <= 0) {
    throw std::invalid_argument("PlatformSpec: non-positive dimensions");
  }
  const auto tiles = static_cast<std::size_t>(nx) * static_cast<std::size_t>(ny) *
                     static_cast<std::size_t>(nz);
  if (core_types_.size() != tiles) {
    throw std::invalid_argument(
        "PlatformSpec: core count must equal tile count");
  }

  for (TileId t = 0; t < tiles; ++t) {
    if (is_edge_tile(t)) edge_tiles_.push_back(t);
  }
  // Feasibility of the LLC-on-edge constraint per layer is checked by the
  // design generator; here we only require enough edge tiles overall.
  if (count_type(PeType::kLlc) > edge_tiles_.size()) {
    throw std::invalid_argument(
        "PlatformSpec: more LLCs than edge tiles available");
  }

  // Enumerate candidate links once; generators and repair operators draw
  // from these pools.
  for (TileId u = 0; u < tiles; ++u) {
    for (TileId v = u + 1; v < tiles; ++v) {
      if (z_of(u) == z_of(v)) {
        const int len = planar_length(u, v);
        if (len >= 1 && len <= max_planar_length_) {
          planar_candidates_.emplace_back(u, v);
        }
      } else if (x_of(u) == x_of(v) && y_of(u) == y_of(v) &&
                 std::abs(z_of(u) - z_of(v)) == 1) {
        vertical_candidates_.emplace_back(u, v);
      }
    }
  }
  if (num_planar_links_ > planar_candidates_.size()) {
    throw std::invalid_argument("PlatformSpec: planar budget > candidates");
  }
  if (num_vertical_links_ > vertical_candidates_.size()) {
    throw std::invalid_argument("PlatformSpec: vertical budget > candidates");
  }
}

std::size_t PlatformSpec::count_type(PeType type) const {
  return static_cast<std::size_t>(
      std::count(core_types_.begin(), core_types_.end(), type));
}

std::vector<CoreId> PlatformSpec::cores_of_type(PeType type) const {
  std::vector<CoreId> out;
  for (CoreId c = 0; c < core_types_.size(); ++c) {
    if (core_types_[c] == type) out.push_back(c);
  }
  return out;
}

int PlatformSpec::planar_length(TileId a, TileId b) const {
  return std::abs(x_of(a) - x_of(b)) + std::abs(y_of(a) - y_of(b));
}

bool PlatformSpec::is_edge_tile(TileId t) const {
  const int x = x_of(t);
  const int y = y_of(t);
  return x == 0 || x == nx_ - 1 || y == 0 || y == ny_ - 1;
}

bool PlatformSpec::link_is_legal(const Link& link) const {
  if (link.a == link.b || link.b >= num_tiles()) return false;
  if (z_of(link.a) == z_of(link.b)) {
    const int len = planar_length(link.a, link.b);
    return len >= 1 && len <= max_planar_length_;
  }
  return x_of(link.a) == x_of(link.b) && y_of(link.a) == y_of(link.b) &&
         std::abs(z_of(link.a) - z_of(link.b)) == 1;
}

std::string PlatformSpec::describe() const {
  std::ostringstream os;
  os << nx_ << "x" << ny_ << "x" << nz_ << " tiles ("
     << count_type(PeType::kCpu) << " CPU, " << count_type(PeType::kGpu)
     << " GPU, " << count_type(PeType::kLlc) << " LLC), "
     << num_planar_links_ << " planar + " << num_vertical_links_
     << " vertical links";
  return os.str();
}

PlatformSpec PlatformSpec::paper_4x4x4() {
  // 8 x86 CPUs, 40 Maxwell-class GPU cores, 16 LLC slices (Sec. V.A).
  std::vector<PeType> cores;
  cores.insert(cores.end(), 8, PeType::kCpu);
  cores.insert(cores.end(), 40, PeType::kGpu);
  cores.insert(cores.end(), 16, PeType::kLlc);
  // 96 planar links = 3D-mesh-equivalent planar count for 4x4x4
  // (4 layers x 2*4*3 = 24 mesh links per layer), 48 TSVs = every
  // adjacent-layer tile pair (16 x 3).
  return PlatformSpec(4, 4, 4, std::move(cores), 96, 48);
}

PlatformSpec PlatformSpec::small_3x3x3() {
  std::vector<PeType> cores;
  cores.insert(cores.end(), 4, PeType::kCpu);
  cores.insert(cores.end(), 15, PeType::kGpu);
  cores.insert(cores.end(), 8, PeType::kLlc);
  // 3 layers x 2*3*2 = 36 mesh-equivalent planar links, 9 x 2 = 18 TSVs.
  return PlatformSpec(3, 3, 3, std::move(cores), 36, 18);
}

}  // namespace moela::noc
