// Fixture: legal include edges — sideways within serve/ (same rank) and
// downward into api/ and util/ (lower ranks). The layer-order rule must
// accept all of them.
#include "serve/protocol.hpp"

#include "api/executor.hpp"
#include "util/thread_annotations.hpp"

namespace moela::serve {

int fixture() { return 0; }

}  // namespace moela::serve
