#include "api/registry.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace moela::api {

namespace detail {
// Defined in api/optimizers.cpp. Called from registry() so the linker can
// never drop the built-in registrations from a static-library build (the
// classic self-registration pitfall).
void register_builtin_optimizers(OptimizerRegistry& registry);
}  // namespace detail

void OptimizerRegistry::add(const std::string& name, Factory factory,
                            std::vector<std::string> knob_keys) {
  if (!factory) {
    throw std::invalid_argument("OptimizerRegistry: null factory for '" +
                                name + "'");
  }
  Entry entry{std::move(factory), std::move(knob_keys)};
  if (!factories_.emplace(name, std::move(entry)).second) {
    throw std::invalid_argument("OptimizerRegistry: duplicate key '" + name +
                                "'");
  }
}

std::vector<std::string> OptimizerRegistry::knob_keys(
    const std::string& name) const {
  auto it = factories_.find(name);
  return it == factories_.end() ? std::vector<std::string>{}
                                : it->second.knob_keys;
}

std::vector<std::string> OptimizerRegistry::unknown_knob_keys(
    const KnobBag& knobs, const std::vector<std::string>& algorithms) const {
  std::vector<const std::vector<std::string>*> declared;
  for (const auto& algorithm : algorithms) {
    auto it = factories_.find(algorithm);
    if (it == factories_.end() || it->second.knob_keys.empty()) {
      return {};  // an undeclared optimizer may accept anything
    }
    declared.push_back(&it->second.knob_keys);
  }
  std::vector<std::string> unknown;
  for (const auto& [key, _] : knobs.values()) {
    bool recognized = false;
    for (const auto* keys : declared) {
      if (std::find(keys->begin(), keys->end(), key) != keys->end()) {
        recognized = true;
        break;
      }
    }
    if (!recognized) unknown.push_back(key);
  }
  return unknown;
}

std::vector<std::string> OptimizerRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, _] : factories_) out.push_back(name);
  return out;  // std::map iterates in sorted key order
}

std::unique_ptr<Optimizer> OptimizerRegistry::create(
    const std::string& name, AnyProblem problem) const {
  auto it = factories_.find(name);
  if (it == factories_.end()) {
    std::string known;
    for (const auto& n : names()) {
      if (!known.empty()) known += ", ";
      known += n;
    }
    throw std::out_of_range("OptimizerRegistry: unknown optimizer '" + name +
                            "' (registered: " + known + ")");
  }
  return it->second.factory(std::move(problem));
}

OptimizerRegistry& registry() {
  static OptimizerRegistry* instance = [] {
    auto* r = new OptimizerRegistry();
    detail::register_builtin_optimizers(*r);
    return r;
  }();
  return *instance;
}

}  // namespace moela::api
