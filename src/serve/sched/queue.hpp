// The weighted-fair run queue underneath serve::sched::Scheduler.
//
// Two nested disciplines, both work-conserving:
//   * ACROSS classes — weighted round-robin with per-class credits: while
//     several classes hold work, class c wins weight(c) of every
//     sum-of-weights dispatches, and a class with no work forfeits its
//     share to the others. Because every weight is >= 1, a queued run of
//     ANY class is dispatched within one credit cycle of the backlog —
//     the bounded-starvation guarantee the scheduler tests pin down.
//   * WITHIN a class — plain round-robin across lanes (one lane per
//     client connection), so two connections at the same priority share
//     that class's slots evenly no matter how many runs either queued;
//     runs of one lane stay FIFO (determinism: admission order is
//     preserved where no fairness rule says otherwise).
//
// The queue is payload-agnostic and NOT internally synchronized: the
// Scheduler guards it with its own mutex — statically enforced by the
// `queue_ MOELA_GUARDED_BY(mutex_)` annotation in scheduler.hpp — and the
// unit tests drive it single-threaded to assert pop order exactly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>

#include "serve/sched/policy.hpp"

namespace moela::serve::sched {

/// One queued unit of work. `work` is what a scheduler worker runs; `tag`
/// is caller-defined identity (the unit tests queue bare tags).
struct QueueItem {
  std::uint64_t tag = 0;
  std::function<void()> work;
};

class FairQueue {
 public:
  explicit FairQueue(Weights weights = {});

  /// Enqueues onto `lane` of `priority`. Lanes are created on first use
  /// and forgotten when they drain (a closed connection leaves nothing
  /// behind).
  void push(Priority priority, std::uint64_t lane, QueueItem item);

  /// Dequeues the next item under the weighted-fair discipline. Returns
  /// false when the queue is empty.
  bool pop(Priority& priority_out, QueueItem& item_out);

  std::size_t size() const { return size_; }
  std::size_t size(Priority priority) const {
    return classes_[index(priority)].size;
  }
  bool empty() const { return size_ == 0; }

 private:
  struct ClassQueue {
    /// FIFO per lane; a lane id appears in `rotation` iff its deque is
    /// non-empty.
    std::map<std::uint64_t, std::deque<QueueItem>> lanes;
    std::deque<std::uint64_t> rotation;
    std::size_t size = 0;
    /// Remaining dispatches this credit cycle.
    std::uint32_t credit = 0;
  };

  static std::size_t index(Priority priority) {
    return static_cast<std::size_t>(priority);
  }
  /// Pops from `cls`'s front lane and rotates the lane to the back.
  QueueItem pop_from(ClassQueue& cls);

  Weights weights_;
  ClassQueue classes_[kNumClasses];
  std::size_t size_ = 0;
};

}  // namespace moela::serve::sched
