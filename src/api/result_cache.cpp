#include "api/result_cache.hpp"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <vector>

#include <unistd.h>

#include "api/request.hpp"
#include "util/numeric.hpp"
#include "noc/design.hpp"
#include "noc/io.hpp"

namespace moela::api {
namespace {

namespace fs = std::filesystem;

// The one canonical double rendering (hexfloat), shared with the cache-key
// builder so keys and serialized reports can never disagree on a value.
using detail::exact_double;

/// Parses a hexfloat (or decimal) token, locale-independently.
bool parse_double(const std::string& token, double& out) {
  return util::parse_double(token, out);
}

void write_rows(std::ostream& os,
                const std::vector<moo::ObjectiveVector>& rows) {
  for (const auto& row : rows) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      os << (i == 0 ? "" : " ") << exact_double(row[i]);
    }
    os << '\n';
  }
}

bool read_rows(std::istream& is, std::size_t count, std::size_t width,
               std::vector<moo::ObjectiveVector>& out) {
  out.reserve(count);
  for (std::size_t r = 0; r < count; ++r) {
    moo::ObjectiveVector row(width);
    for (std::size_t i = 0; i < width; ++i) {
      std::string token;
      if (!(is >> token) || !parse_double(token, row[i])) return false;
    }
    out.push_back(std::move(row));
  }
  return true;
}

/// Reads `tag <value>` and fails unless the tag matches.
bool read_tagged(std::istream& is, const char* tag, std::string& value) {
  std::string got;
  return (is >> got >> value) && got == tag;
}

bool read_tagged_size(std::istream& is, const char* tag, std::size_t& value) {
  std::string token;
  if (!read_tagged(is, tag, token)) return false;
  std::uint64_t parsed = 0;
  if (!util::parse_u64(token, parsed)) return false;
  value = static_cast<std::size_t>(parsed);
  return true;
}

// ---------------------------------------------------------------- designs
// Codec for the library's design types. Unknown types serialize as "none"
// (the report is still useful for fronts/traces; lookups that need designs
// reject it).

enum class DesignKind { kNone, kReal, kBinary, kNoc };

DesignKind design_kind(const std::vector<AnyDesign>& designs) {
  if (designs.empty()) return DesignKind::kNone;
  const std::type_info& t = designs.front().type();
  if (t == typeid(std::vector<double>)) return DesignKind::kReal;
  if (t == typeid(std::vector<std::uint8_t>)) return DesignKind::kBinary;
  if (t == typeid(noc::NocDesign)) return DesignKind::kNoc;
  return DesignKind::kNone;
}

void write_designs(std::ostream& os, const std::vector<AnyDesign>& designs) {
  switch (design_kind(designs)) {
    case DesignKind::kReal:
      os << "designs real " << designs.size() << '\n';
      for (const auto& d : designs) {
        const auto& v = d.as<std::vector<double>>();
        os << v.size();
        for (double x : v) os << ' ' << exact_double(x);
        os << '\n';
      }
      break;
    case DesignKind::kBinary:
      os << "designs binary " << designs.size() << '\n';
      for (const auto& d : designs) {
        const auto& v = d.as<std::vector<std::uint8_t>>();
        os << v.size();
        for (unsigned x : v) os << ' ' << x;
        os << '\n';
      }
      break;
    case DesignKind::kNoc:
      os << "designs noc " << designs.size() << '\n';
      for (const auto& d : designs) {
        noc::write_design(os, d.as<noc::NocDesign>());
      }
      break;
    case DesignKind::kNone:
      os << "designs none 0\n";
      break;
  }
}

bool read_designs(std::istream& is, std::vector<AnyDesign>& out) {
  std::string tag, kind;
  std::size_t count = 0;
  if (!(is >> tag >> kind >> count) || tag != "designs") return false;
  out.reserve(count);
  if (kind == "none") return true;
  if (kind == "real") {
    for (std::size_t k = 0; k < count; ++k) {
      std::size_t n = 0;
      if (!(is >> n)) return false;
      std::vector<double> v(n);
      for (std::size_t i = 0; i < n; ++i) {
        std::string token;
        if (!(is >> token) || !parse_double(token, v[i])) return false;
      }
      out.push_back(AnyDesign::wrap<std::vector<double>>(std::move(v)));
    }
    return true;
  }
  if (kind == "binary") {
    for (std::size_t k = 0; k < count; ++k) {
      std::size_t n = 0;
      if (!(is >> n)) return false;
      std::vector<std::uint8_t> v(n);
      for (std::size_t i = 0; i < n; ++i) {
        unsigned x = 0;
        if (!(is >> x)) return false;
        v[i] = static_cast<std::uint8_t>(x);
      }
      out.push_back(AnyDesign::wrap<std::vector<std::uint8_t>>(std::move(v)));
    }
    return true;
  }
  if (kind == "noc") {
    is.ignore();  // consume the newline before line-oriented parsing
    try {
      for (std::size_t k = 0; k < count; ++k) {
        out.push_back(AnyDesign::wrap<noc::NocDesign>(noc::read_design(is)));
      }
    } catch (const std::exception&) {
      return false;
    }
    return true;
  }
  return false;
}

}  // namespace

namespace detail {

void write_report(std::ostream& os, const std::string& key,
                  const RunReport& report) {
  os << "moela-report v1\n";
  os << "key " << key << '\n';
  os << "algorithm " << report.algorithm << '\n';
  const RunProvenance& p = report.provenance;
  os << "problem " << (p.problem.empty() ? "-" : p.problem) << '\n';
  os << "algorithm_key "
     << (p.algorithm_key.empty() ? "-" : p.algorithm_key) << '\n';
  os << "seed " << p.seed << '\n';
  os << "evaluations " << report.evaluations << '\n';
  os << "seconds " << exact_double(report.seconds) << '\n';
  os << "knobs " << p.knobs.size() << '\n';
  for (const auto& [name, value] : p.knobs) {
    os << name << ' ' << exact_double(value) << '\n';
  }
  os << "snapshots " << report.snapshots.size() << '\n';
  for (const auto& s : report.snapshots) {
    const std::size_t width = s.front.empty() ? 0 : s.front.front().size();
    os << "snapshot " << s.evaluations << ' ' << exact_double(s.seconds)
       << ' ' << s.front.size() << ' ' << width << '\n';
    write_rows(os, s.front);
  }
  const std::size_t front_width =
      report.final_front.empty() ? 0 : report.final_front.front().size();
  os << "front " << report.final_front.size() << ' ' << front_width << '\n';
  write_rows(os, report.final_front);
  const std::size_t obj_width = report.final_objectives.empty()
                                    ? 0
                                    : report.final_objectives.front().size();
  os << "objectives " << report.final_objectives.size() << ' ' << obj_width
     << '\n';
  write_rows(os, report.final_objectives);
  write_designs(os, report.final_designs);
}

std::optional<RunReport> read_report(std::istream& is,
                                     const std::string& key) {
  std::string line;
  if (!std::getline(is, line) || line != "moela-report v1") {
    return std::nullopt;
  }
  if (!std::getline(is, line) || line.rfind("key ", 0) != 0 ||
      line.substr(4) != key) {
    return std::nullopt;  // hash collision or truncated file: a miss
  }
  RunReport report;
  if (!std::getline(is, line) || line.rfind("algorithm ", 0) != 0) {
    return std::nullopt;
  }
  report.algorithm = line.substr(std::strlen("algorithm "));

  RunProvenance& p = report.provenance;
  std::string token;
  if (!read_tagged(is, "problem", token)) return std::nullopt;
  p.problem = token == "-" ? "" : token;
  if (!read_tagged(is, "algorithm_key", token)) return std::nullopt;
  p.algorithm_key = token == "-" ? "" : token;
  if (!read_tagged(is, "seed", token)) return std::nullopt;
  if (!util::parse_u64(token, p.seed)) p.seed = 0;
  if (!read_tagged_size(is, "evaluations", report.evaluations)) {
    return std::nullopt;
  }
  if (!read_tagged(is, "seconds", token) ||
      !parse_double(token, report.seconds)) {
    return std::nullopt;
  }
  std::size_t knob_count = 0;
  if (!read_tagged_size(is, "knobs", knob_count)) return std::nullopt;
  for (std::size_t k = 0; k < knob_count; ++k) {
    std::string name;
    double value = 0.0;
    if (!(is >> name >> token) || !parse_double(token, value)) {
      return std::nullopt;
    }
    p.knobs[name] = value;
  }
  std::size_t snapshot_count = 0;
  if (!read_tagged_size(is, "snapshots", snapshot_count)) return std::nullopt;
  report.snapshots.reserve(snapshot_count);
  for (std::size_t k = 0; k < snapshot_count; ++k) {
    core::ArchiveSnapshot s;
    std::size_t rows = 0, width = 0;
    std::string tag;
    if (!(is >> tag >> s.evaluations >> token) || tag != "snapshot" ||
        !parse_double(token, s.seconds) || !(is >> rows >> width) ||
        !read_rows(is, rows, width, s.front)) {
      return std::nullopt;
    }
    report.snapshots.push_back(std::move(s));
  }
  std::size_t rows = 0, width = 0;
  std::string tag;
  if (!(is >> tag >> rows >> width) || tag != "front" ||
      !read_rows(is, rows, width, report.final_front)) {
    return std::nullopt;
  }
  if (!(is >> tag >> rows >> width) || tag != "objectives" ||
      !read_rows(is, rows, width, report.final_objectives)) {
    return std::nullopt;
  }
  if (!read_designs(is, report.final_designs)) return std::nullopt;
  p.cache_key = key;
  return report;
}

}  // namespace detail

std::string ResultCache::default_disk_dir() {
  if (const char* dir = std::getenv("MOELA_CACHE_DIR");
      dir != nullptr && *dir != '\0') {
    return dir;
  }
  if (const char* xdg = std::getenv("XDG_CACHE_HOME");
      xdg != nullptr && *xdg != '\0') {
    return std::string(xdg) + "/moela";
  }
  if (const char* home = std::getenv("HOME");
      home != nullptr && *home != '\0') {
    return std::string(home) + "/.cache/moela";
  }
  return ".moela-cache";
}

std::uintmax_t ResultCache::default_max_disk_bytes() {
  if (const char* env = std::getenv("MOELA_CACHE_MAX_BYTES");
      env != nullptr && *env != '\0') {
    // "0" is a valid setting: it disables the cap entirely.
    std::uint64_t parsed = 0;
    if (util::parse_u64(env, parsed)) return parsed;
  }
  return 1ull << 30;  // 1 GiB
}

std::string ResultCache::hash_key(const std::string& key) {
  // FNV-1a 64-bit.
  std::uint64_t h = 1469598103934665603ull;
  for (unsigned char c : key) {
    h ^= c;
    h *= 1099511628211ull;
  }
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(h));
  return buffer;
}

std::optional<RunReport> ResultCache::lookup(const std::string& key,
                                             bool need_designs) {
  if (key.empty()) return std::nullopt;
  {
    util::MutexLock lock(mutex_);
    auto it = memory_.find(key);
    // The designs check also applies here: a disk entry stored without
    // designs gets promoted into the memory tier below, and must not
    // satisfy a need_designs lookup from memory either.
    if (it != memory_.end() &&
        (!need_designs || !it->second.final_designs.empty())) {
      ++stats_.memory_hits;
      if (metric_memory_hits_ != nullptr) metric_memory_hits_->add();
      RunReport hit = it->second;
      hit.provenance.cache_hit = true;
      return hit;
    }
  }
  if (!dir_.empty()) {
    const fs::path path = fs::path(dir_) / (hash_key(key) + ".moela");
    std::ifstream in(path);
    if (in) {
      auto report = detail::read_report(in, key);
      if (report.has_value() &&
          (!need_designs || !report->final_designs.empty())) {
        report->provenance.cache_hit = true;
        // Refresh the entry's file time so the size cap evicts
        // least-recently-USED, not least-recently-written.
        std::error_code ec;
        fs::last_write_time(path, fs::file_time_type::clock::now(), ec);
        util::MutexLock lock(mutex_);
        ++stats_.disk_hits;
        if (metric_disk_hits_ != nullptr) metric_disk_hits_->add();
        memory_.emplace(key, *report);
        return report;
      }
    }
  }
  util::MutexLock lock(mutex_);
  ++stats_.misses;
  if (metric_misses_ != nullptr) metric_misses_->add();
  return std::nullopt;
}

void ResultCache::store(const std::string& key, const RunReport& report) {
  if (key.empty() || report.provenance.cancelled) return;
  {
    util::MutexLock lock(mutex_);
    memory_.insert_or_assign(key, report);
    ++stats_.stores;
    if (metric_stores_ != nullptr) metric_stores_->add();
  }
  if (dir_.empty()) return;
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) return;  // cache is best-effort: an unwritable dir is not an error
  const std::string stem = hash_key(key);
  const fs::path final_path = fs::path(dir_) / (stem + ".moela");
  // Unique temp per process and per write so concurrent writers (threads
  // storing the same key, or separate processes) never interleave; rename()
  // makes the publish atomic on POSIX.
  static std::atomic<std::uint64_t> write_counter{0};
  std::ostringstream temp_name;
  temp_name << stem << ".tmp." << ::getpid() << "."
            << write_counter.fetch_add(1, std::memory_order_relaxed);
  const fs::path temp_path = fs::path(dir_) / temp_name.str();
  {
    std::ofstream out(temp_path);
    if (!out) return;
    detail::write_report(out, key, report);
    if (!out) {
      out.close();
      fs::remove(temp_path, ec);
      return;
    }
  }
  fs::rename(temp_path, final_path, ec);
  if (ec) {
    fs::remove(temp_path, ec);
    return;
  }
  if (max_disk_bytes() > 0) enforce_disk_cap(stem + ".moela");
}

void ResultCache::enforce_disk_cap(const std::string& keep) {
  // One cap snapshot for the whole pass, so a concurrent
  // set_max_disk_bytes() cannot make the two threshold checks disagree.
  const std::uintmax_t cap = max_disk_bytes();
  std::error_code ec;
  struct Entry {
    fs::path path;
    fs::file_time_type used;
    std::uintmax_t size;
  };
  std::vector<Entry> entries;
  std::uintmax_t total = 0;
  for (fs::directory_iterator it(dir_, ec), end; !ec && it != end;
       it.increment(ec)) {
    const fs::path& path = it->path();
    if (path.extension() != ".moela") continue;  // temp files age out fast
    Entry entry{path, it->last_write_time(ec), it->file_size(ec)};
    if (ec) return;  // racing another process; try again next store
    total += entry.size;
    entries.push_back(std::move(entry));
  }
  if (total <= cap) return;
  // Oldest-used first; the just-written entry sorts last so it only goes
  // when it alone exceeds the cap.
  std::sort(entries.begin(), entries.end(), [&](const Entry& a,
                                                const Entry& b) {
    const bool a_keep = a.path.filename() == keep;
    const bool b_keep = b.path.filename() == keep;
    if (a_keep != b_keep) return b_keep;
    return a.used < b.used;
  });
  std::size_t evicted = 0;
  for (const auto& entry : entries) {
    if (total <= cap) break;
    if (fs::remove(entry.path, ec) && !ec) {
      total -= entry.size;
      ++evicted;
    }
  }
  if (evicted > 0) {
    util::MutexLock lock(mutex_);
    stats_.evictions += evicted;
    if (metric_evictions_ != nullptr) metric_evictions_->add(evicted);
  }
}

void ResultCache::set_metrics(util::MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    metric_memory_hits_ = nullptr;
    metric_disk_hits_ = nullptr;
    metric_misses_ = nullptr;
    metric_stores_ = nullptr;
    metric_evictions_ = nullptr;
    return;
  }
  const std::string lookups = "moela_cache_lookups_total";
  const std::string lookups_help = "Result-cache lookups by outcome";
  metric_memory_hits_ =
      &metrics->counter(lookups, lookups_help, {{"result", "hit_memory"}});
  metric_disk_hits_ =
      &metrics->counter(lookups, lookups_help, {{"result", "hit_disk"}});
  metric_misses_ =
      &metrics->counter(lookups, lookups_help, {{"result", "miss"}});
  metric_stores_ = &metrics->counter("moela_cache_stores_total",
                                     "Reports stored into the result cache");
  metric_evictions_ =
      &metrics->counter("moela_cache_evictions_total",
                        "Disk-tier entry files evicted by the size cap");
}

ResultCache::Stats ResultCache::stats() const {
  util::MutexLock lock(mutex_);
  return stats_;
}

}  // namespace moela::api
