// Tests for the paper-scenario runner configuration and a reduced-scale
// smoke of the full scenario pipeline.
#include <gtest/gtest.h>

#include <cstdlib>

#include "exp/scenario.hpp"
#include "moo/metrics.hpp"

namespace moela::exp {
namespace {

struct EnvGuard {
  explicit EnvGuard(const char* name) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) saved_ = old;
  }
  ~EnvGuard() {
    if (saved_.empty()) {
      unsetenv(name_);
    } else {
      setenv(name_, saved_.c_str(), 1);
    }
  }
  const char* name_;
  std::string saved_;
};

TEST(PaperBenchConfig, DefaultsWithoutEnv) {
  EnvGuard g1("MOELA_BENCH_EVALS");
  EnvGuard g2("MOELA_BENCH_SMALL");
  EnvGuard g3("MOELA_BENCH_SECONDS");
  unsetenv("MOELA_BENCH_EVALS");
  unsetenv("MOELA_BENCH_SMALL");
  unsetenv("MOELA_BENCH_SECONDS");
  const auto config = paper_bench_config_from_env();
  EXPECT_EQ(config.max_evaluations, 40000u);
  EXPECT_FALSE(config.small_platform);
  EXPECT_DOUBLE_EQ(config.max_seconds, 6.0);
  ASSERT_EQ(config.algorithms.size(), 3u);
  EXPECT_EQ(config.algorithms[0], "moela");
}

TEST(PaperBenchConfig, EnvOverrides) {
  EnvGuard g1("MOELA_BENCH_EVALS");
  EnvGuard g2("MOELA_BENCH_SMALL");
  EnvGuard g3("MOELA_BENCH_SECONDS");
  setenv("MOELA_BENCH_EVALS", "1234", 1);
  setenv("MOELA_BENCH_SMALL", "1", 1);
  setenv("MOELA_BENCH_SECONDS", "2.5", 1);
  const auto config = paper_bench_config_from_env();
  EXPECT_EQ(config.max_evaluations, 1234u);
  EXPECT_TRUE(config.small_platform);
  EXPECT_DOUBLE_EQ(config.max_seconds, 2.5);
}

TEST(PaperBenchConfig, PlatformSelection) {
  PaperBenchConfig config;
  config.small_platform = false;
  EXPECT_EQ(bench_platform(config).num_tiles(), 64u);
  config.small_platform = true;
  EXPECT_EQ(bench_platform(config).num_tiles(), 27u);
}

TEST(TunedRunConfig, UsesPaperParameters) {
  PaperBenchConfig config;
  const auto run = tuned_run_config(config);
  EXPECT_EQ(run.population_size, 50u);  // N = 50 (Sec. V.B)
  EXPECT_EQ(run.n_local, 5u);
  EXPECT_DOUBLE_EQ(run.moela.delta, 0.9);
  EXPECT_EQ(run.moela.iter_early, 2u);
  EXPECT_EQ(run.max_evaluations, config.max_evaluations);
  EXPECT_DOUBLE_EQ(run.max_seconds, config.max_seconds);
}

TEST(Scenario, SmokeRunProducesComparableTraces) {
  PaperBenchConfig config;
  config.small_platform = true;
  config.max_evaluations = 900;
  config.max_seconds = 0.0;  // deterministic: evaluation budget only
  config.snapshot_interval = 150;
  const auto r = run_app_scenario(sim::RodiniaApp::kBfs, 3, config);
  ASSERT_EQ(r.runs.size(), 3u);
  ASSERT_EQ(r.algorithm_names.size(), 3u);
  EXPECT_EQ(r.algorithm_names[0], "MOELA");
  ASSERT_EQ(r.traces.size(), 3u);
  ASSERT_EQ(r.final_phv.size(), 3u);
  EXPECT_EQ(r.num_objectives, 3u);
  for (const auto& trace : r.traces) {
    EXPECT_FALSE(trace.empty());
    for (const auto& p : trace) {
      EXPECT_GE(p.phv, 0.0);
    }
  }
  for (double phv : r.final_phv) EXPECT_GE(phv, 0.0);
  EXPECT_GT(r.common_stop_seconds, 0.0);
}

TEST(Scenario, DeterministicWithoutWallBudget) {
  PaperBenchConfig config;
  config.small_platform = true;
  config.max_evaluations = 600;
  config.max_seconds = 0.0;
  config.snapshot_interval = 200;
  config.algorithms = {"moead"};
  const auto a = run_app_scenario(sim::RodiniaApp::kSrad, 3, config);
  const auto b = run_app_scenario(sim::RodiniaApp::kSrad, 3, config);
  ASSERT_EQ(a.traces.size(), b.traces.size());
  for (std::size_t i = 0; i < a.traces[0].size(); ++i) {
    EXPECT_DOUBLE_EQ(a.traces[0][i].phv, b.traces[0][i].phv);
  }
}

}  // namespace
}  // namespace moela::exp
