// Hand-computed verification of the five objective formulas (Eqs. 1-7) on a
// 2x2x2 platform where every path, degree, and temperature can be derived on
// paper.
#include "noc/objectives.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "noc/generator.hpp"
#include "noc/platform.hpp"
#include "util/rng.hpp"

namespace moela::noc {
namespace {

// 2x2x2 platform: 2 CPUs (cores 0-1), 4 GPUs (2-5), 2 LLCs (6-7); every
// tile is an edge tile. Mesh links: 4 planar per layer + 4 TSVs, L = 12.
PlatformSpec tiny_spec() {
  std::vector<PeType> cores{PeType::kCpu, PeType::kCpu, PeType::kGpu,
                            PeType::kGpu, PeType::kGpu, PeType::kGpu,
                            PeType::kLlc, PeType::kLlc};
  return PlatformSpec(2, 2, 2, std::move(cores), 8, 4);
}

NocDesign tiny_mesh(const PlatformSpec& spec) {
  NocDesign d;
  d.placement.resize(8);
  std::iota(d.placement.begin(), d.placement.end(), CoreId{0});
  for (TileId t = 0; t < 8; ++t) {
    const int x = spec.x_of(t), y = spec.y_of(t), z = spec.z_of(t);
    if (x + 1 < 2) d.links.emplace_back(t, spec.tile_at(x + 1, y, z));
    if (y + 1 < 2) d.links.emplace_back(t, spec.tile_at(x, y + 1, z));
    if (z + 1 < 2) d.links.emplace_back(t, spec.tile_at(x, y, z + 1));
  }
  d.canonicalize();
  return d;
}

NocObjectiveParams tiny_params() {
  NocObjectiveParams p;
  p.router_stages = 4.0;
  p.delay_per_unit = 1.0;
  p.vertical_delay = 1.0;
  p.vertical_length = 0.5;
  p.e_link = 1.0;
  p.e_router = 0.8;
  p.r_vertical = {0.1, 0.2};
  p.r_base = 2.0;
  return p;
}

Workload empty_workload(const PlatformSpec& spec) {
  Workload w;
  w.name = "test";
  w.traffic = TrafficMatrix(spec.num_cores());
  w.core_power.assign(spec.num_cores(), 0.0);
  return w;
}

TEST(Objectives, MeanAndVarianceSingleFlow) {
  const auto spec = tiny_spec();
  const auto design = tiny_mesh(spec);
  auto w = empty_workload(spec);
  w.traffic(0, 1) = 2.0;  // core 0 at tile 0 -> core 1 at tile 1: 1 hop

  const auto obj = evaluate_objectives(spec, design, w, tiny_params());
  // u = {2, 0 x 11}; Mean = 2/12.
  EXPECT_NEAR(obj.traffic_mean, 2.0 / 12.0, 1e-12);
  // Variance = [(2 - 1/6)^2 + 11 (1/6)^2] / 12 = 11/36.
  EXPECT_NEAR(obj.traffic_variance, 11.0 / 36.0, 1e-12);
}

TEST(Objectives, EnergySingleFlow) {
  const auto spec = tiny_spec();
  const auto design = tiny_mesh(spec);
  auto w = empty_workload(spec);
  w.traffic(0, 1) = 2.0;
  const auto obj = evaluate_objectives(spec, design, w, tiny_params());
  // Path 0->1 uses one planar link (d=1, E_link=1) and routers 0,1 with
  // degree 3 each (E_r=0.8 per port): E = 2 * (1 + 2*3*0.8) = 11.6.
  EXPECT_NEAR(obj.energy, 11.6, 1e-12);
}

TEST(Objectives, CpuLatencyOnlyCountsCpuToLlc) {
  const auto spec = tiny_spec();
  const auto design = tiny_mesh(spec);
  auto w = empty_workload(spec);
  w.traffic(0, 1) = 5.0;  // CPU->CPU: must NOT contribute to latency
  const auto obj1 = evaluate_objectives(spec, design, w, tiny_params());
  EXPECT_DOUBLE_EQ(obj1.cpu_latency, 0.0);

  auto w2 = empty_workload(spec);
  w2.traffic(0, 6) = 3.0;  // CPU core 0 (tile 0) -> LLC core 6 (tile 6)
  const auto obj2 = evaluate_objectives(spec, design, w2, tiny_params());
  // Deterministic BFS route 0 -> 2 -> 6: 2 hops, delay = 1 (planar) + 1
  // (TSV) = 2. Contribution = (4*2 + 2) * 3 = 30; / (C*M = 4) = 7.5.
  EXPECT_NEAR(obj2.cpu_latency, 7.5, 1e-12);
}

TEST(Objectives, EnergyMixedPlanarVerticalPath) {
  const auto spec = tiny_spec();
  const auto design = tiny_mesh(spec);
  auto w = empty_workload(spec);
  w.traffic(0, 6) = 3.0;  // route 0 -> 2 -> 6 (planar then TSV)
  const auto obj = evaluate_objectives(spec, design, w, tiny_params());
  // Links: planar d=1 -> 1.0; TSV length 0.5 -> 0.5. Routers 0,2,6 degree 3
  // each: 3 * 3 * 0.8 = 7.2. E = 3 * (1.5 + 7.2) = 26.1.
  EXPECT_NEAR(obj.energy, 26.1, 1e-12);
}

TEST(Objectives, ThermalHandComputed) {
  const auto spec = tiny_spec();
  const auto design = tiny_mesh(spec);
  auto w = empty_workload(spec);
  // Identity placement: stack (0,0) holds tile 0 (layer 1) and tile 4
  // (layer 2). Give them power 2 W and 1 W; everything else 0.
  w.core_power[0] = 2.0;
  w.core_power[4] = 1.0;
  const auto obj = evaluate_objectives(spec, design, w, tiny_params());
  // T_(0,0),1 = 2*0.1 + 2*2           = 4.2
  // T_(0,0),2 = 2*0.1 + 1*(0.1+0.2) + 2*(2+1) = 6.5
  // Other stacks are 0 => dT(1) = 4.2, dT(2) = 6.5.
  // Thermal = max T * max dT = 6.5 * 6.5 = 42.25.
  EXPECT_NEAR(obj.thermal, 42.25, 1e-9);

  EvaluationDetail detail;
  evaluate_objectives(spec, design, w, tiny_params(), &detail);
  EXPECT_NEAR(detail.peak_temperature, 6.5, 1e-9);
}

TEST(Objectives, ThermalIndependentOfLinks) {
  const auto spec = tiny_spec();
  auto w = empty_workload(spec);
  util::Rng rng(3);
  for (auto& p : w.core_power) p = rng.uniform(0.5, 3.0);
  DesignOps ops(spec);
  const NocDesign d1 = ops.random_design(rng);
  NocDesign d2 = d1;
  ops.move_planar_link(d2, rng);
  const auto o1 = evaluate_objectives(spec, d1, w, tiny_params());
  const auto o2 = evaluate_objectives(spec, d2, w, tiny_params());
  EXPECT_DOUBLE_EQ(o1.thermal, o2.thermal);
}

TEST(Objectives, ThermalDependsOnPlacement) {
  const auto spec = tiny_spec();
  const auto design = tiny_mesh(spec);
  auto w = empty_workload(spec);
  w.core_power = {3.0, 0.1, 0.1, 0.1, 3.0, 0.1, 0.1, 0.1};
  const auto hot_stacked = evaluate_objectives(spec, design, w, tiny_params());
  // Move the second hot core (core 4, tile 4) away from stack (0,0): swap
  // cores of tiles 4 and 5.
  NocDesign spread = design;
  std::swap(spread.placement[4], spread.placement[5]);
  const auto hot_spread = evaluate_objectives(spec, spread, w, tiny_params());
  EXPECT_GT(hot_stacked.thermal, hot_spread.thermal);
}

TEST(Objectives, TrafficScalesMeanLinearly) {
  const auto spec = tiny_spec();
  const auto design = tiny_mesh(spec);
  auto w = empty_workload(spec);
  util::Rng rng(5);
  for (CoreId i = 0; i < 8; ++i) {
    for (CoreId j = 0; j < 8; ++j) {
      if (i != j) w.traffic(i, j) = rng.uniform(0.0, 2.0);
    }
  }
  const auto base = evaluate_objectives(spec, design, w, tiny_params());
  auto w2 = w;
  w2.traffic.scale(3.0);
  const auto scaled = evaluate_objectives(spec, design, w2, tiny_params());
  EXPECT_NEAR(scaled.traffic_mean, 3.0 * base.traffic_mean, 1e-9);
  EXPECT_NEAR(scaled.traffic_variance, 9.0 * base.traffic_variance, 1e-6);
  EXPECT_NEAR(scaled.energy, 3.0 * base.energy, 1e-6);
  EXPECT_NEAR(scaled.cpu_latency, 3.0 * base.cpu_latency, 1e-9);
}

TEST(Objectives, FirstSelectsScenario) {
  NocObjectives o;
  o.traffic_mean = 1;
  o.traffic_variance = 2;
  o.cpu_latency = 3;
  o.energy = 4;
  o.thermal = 5;
  EXPECT_EQ(o.first(3), (moo::ObjectiveVector{1, 2, 3}));
  EXPECT_EQ(o.first(5), (moo::ObjectiveVector{1, 2, 3, 4, 5}));
  EXPECT_THROW(o.first(0), std::invalid_argument);
  EXPECT_THROW(o.first(6), std::invalid_argument);
}

TEST(Objectives, WorkloadSizeMismatchThrows) {
  const auto spec = tiny_spec();
  const auto design = tiny_mesh(spec);
  Workload w;
  w.traffic = TrafficMatrix(4);  // wrong core count
  w.core_power.assign(8, 1.0);
  EXPECT_THROW(evaluate_objectives(spec, design, w, tiny_params()),
               std::invalid_argument);
}

TEST(Objectives, DetailLinkUtilizationConsistent) {
  const auto spec = tiny_spec();
  const auto design = tiny_mesh(spec);
  auto w = empty_workload(spec);
  w.traffic(0, 1) = 2.0;
  w.traffic(2, 3) = 1.0;
  EvaluationDetail detail;
  const auto obj =
      evaluate_objectives(spec, design, w, tiny_params(), &detail);
  ASSERT_EQ(detail.link_utilization.size(), design.links.size());
  double total = 0.0;
  for (double u : detail.link_utilization) total += u;
  EXPECT_NEAR(total / 12.0, obj.traffic_mean, 1e-12);
  EXPECT_GT(detail.max_link_utilization, 0.0);
  EXPECT_GT(detail.mean_hops, 0.0);
}

TEST(Objectives, VerticalResistancePadding) {
  NocObjectiveParams p;
  p.r_vertical = {0.3};
  p.default_r_vertical = 0.11;
  const auto r = p.vertical_resistances(4);
  ASSERT_EQ(r.size(), 4u);
  EXPECT_DOUBLE_EQ(r[0], 0.3);
  EXPECT_DOUBLE_EQ(r[1], 0.11);
  EXPECT_DOUBLE_EQ(r[3], 0.11);
}

}  // namespace
}  // namespace moela::noc
