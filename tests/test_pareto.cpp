#include "moo/pareto.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "moo/objective.hpp"
#include "util/rng.hpp"

namespace moela::moo {
namespace {

TEST(Dominance, BasicRelations) {
  const ObjectiveVector a{1.0, 1.0};
  const ObjectiveVector b{2.0, 2.0};
  const ObjectiveVector c{0.5, 3.0};
  EXPECT_EQ(compare(a, b), Dominance::kDominates);
  EXPECT_EQ(compare(b, a), Dominance::kDominatedBy);
  EXPECT_EQ(compare(a, c), Dominance::kNonDominated);
  EXPECT_EQ(compare(a, a), Dominance::kEqual);
}

TEST(Dominance, WeakDominanceIncludesEqual) {
  const ObjectiveVector a{1.0, 2.0};
  EXPECT_TRUE(weakly_dominates(a, a));
  EXPECT_TRUE(weakly_dominates(a, ObjectiveVector{1.0, 3.0}));
  EXPECT_FALSE(weakly_dominates(a, ObjectiveVector{0.9, 3.0}));
}

TEST(Dominance, StrictRequiresOneStrictImprovement) {
  EXPECT_FALSE(dominates(ObjectiveVector{1.0, 2.0}, ObjectiveVector{1.0, 2.0}));
  EXPECT_TRUE(dominates(ObjectiveVector{1.0, 1.9}, ObjectiveVector{1.0, 2.0}));
}

TEST(ParetoFilter, KeepsOnlyNonDominated) {
  const std::vector<ObjectiveVector> points{
      {1.0, 4.0}, {2.0, 3.0}, {3.0, 3.5}, {4.0, 1.0}, {2.5, 2.5}};
  const auto keep = pareto_filter(points);
  // {3.0, 3.5} is dominated by {2.5, 2.5}; others are non-dominated.
  EXPECT_EQ(keep.size(), 4u);
  for (auto i : keep) EXPECT_NE(i, 2u);
}

TEST(ParetoFilter, DuplicatesKeepFirstOnly) {
  const std::vector<ObjectiveVector> points{{1.0, 1.0}, {1.0, 1.0}};
  const auto keep = pareto_filter(points);
  ASSERT_EQ(keep.size(), 1u);
  EXPECT_EQ(keep[0], 0u);
}

TEST(NonDominatedSort, FrontsAreOrderedLayers) {
  // Three clear layers along the diagonal.
  const std::vector<ObjectiveVector> points{
      {1.0, 1.0}, {2.0, 2.0}, {3.0, 3.0}, {1.5, 0.5}};
  const auto fronts = non_dominated_sort(points);
  ASSERT_EQ(fronts.size(), 3u);
  EXPECT_EQ(fronts[0].size(), 2u);  // {1,1} and {1.5,0.5}
  EXPECT_EQ(fronts[1].size(), 1u);
  EXPECT_EQ(fronts[2].size(), 1u);
}

TEST(NonDominatedSort, AllIncomparableIsOneFront) {
  const std::vector<ObjectiveVector> points{
      {1.0, 4.0}, {2.0, 3.0}, {3.0, 2.0}, {4.0, 1.0}};
  const auto fronts = non_dominated_sort(points);
  ASSERT_EQ(fronts.size(), 1u);
  EXPECT_EQ(fronts[0].size(), 4u);
}

TEST(NonDominatedSort, CoversEveryIndexExactlyOnce) {
  util::Rng rng(3);
  std::vector<ObjectiveVector> points;
  for (int i = 0; i < 60; ++i) {
    points.push_back({rng.uniform(), rng.uniform(), rng.uniform()});
  }
  const auto fronts = non_dominated_sort(points);
  std::vector<int> seen(points.size(), 0);
  for (const auto& f : fronts) {
    for (auto i : f) ++seen[i];
  }
  for (int s : seen) EXPECT_EQ(s, 1);
}

TEST(NonDominatedSort, NoMemberDominatedWithinItsFront) {
  util::Rng rng(5);
  std::vector<ObjectiveVector> points;
  for (int i = 0; i < 40; ++i) {
    points.push_back({rng.uniform(), rng.uniform()});
  }
  const auto fronts = non_dominated_sort(points);
  for (const auto& f : fronts) {
    for (auto i : f) {
      for (auto j : f) {
        EXPECT_FALSE(dominates(points[j], points[i]));
      }
    }
  }
}

TEST(CrowdingDistance, BoundaryPointsInfinite) {
  const std::vector<ObjectiveVector> points{
      {0.0, 4.0}, {1.0, 3.0}, {2.0, 2.0}, {4.0, 0.0}};
  std::vector<std::size_t> front{0, 1, 2, 3};
  const auto d = crowding_distance(points, front);
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(d[0], inf);
  EXPECT_EQ(d[3], inf);
  EXPECT_GT(d[1], 0.0);
  EXPECT_LT(d[1], inf);
}

TEST(CrowdingDistance, TwoOrFewerAllInfinite) {
  const std::vector<ObjectiveVector> points{{0.0, 1.0}, {1.0, 0.0}};
  const auto d = crowding_distance(points, {0, 1});
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(d[0], inf);
  EXPECT_EQ(d[1], inf);
}

TEST(CrowdingDistance, DenserRegionsScoreLower) {
  // Points 1 and 2 are close together; point 3 is isolated.
  const std::vector<ObjectiveVector> points{
      {0.0, 10.0}, {1.0, 9.0}, {1.2, 8.8}, {5.0, 5.0}, {10.0, 0.0}};
  const auto d = crowding_distance(points, {0, 1, 2, 3, 4});
  EXPECT_LT(d[1], d[3]);
  EXPECT_LT(d[2], d[3]);
}

TEST(IdealNadir, ComponentWiseExtremes) {
  const std::vector<ObjectiveVector> points{{1.0, 5.0}, {3.0, 2.0}};
  EXPECT_EQ(ideal_point(points), (ObjectiveVector{1.0, 2.0}));
  EXPECT_EQ(nadir_point(points), (ObjectiveVector{3.0, 5.0}));
}

TEST(IdealNadir, EmptyThrows) {
  EXPECT_THROW(ideal_point({}), std::invalid_argument);
  EXPECT_THROW(nadir_point({}), std::invalid_argument);
}

TEST(Normalize, MapsIntoUnitBox) {
  const std::vector<ObjectiveVector> points{{1.0, 10.0}, {3.0, 20.0},
                                            {2.0, 15.0}};
  const auto ideal = ideal_point(points);
  const auto nadir = nadir_point(points);
  const auto norm = normalize(points, ideal, nadir);
  EXPECT_DOUBLE_EQ(norm[0][0], 0.0);
  EXPECT_DOUBLE_EQ(norm[1][0], 1.0);
  EXPECT_DOUBLE_EQ(norm[2][0], 0.5);
  EXPECT_DOUBLE_EQ(norm[2][1], 0.5);
}

TEST(Normalize, DegenerateDimensionMapsToZero) {
  const std::vector<ObjectiveVector> points{{5.0, 1.0}, {5.0, 2.0}};
  const auto norm =
      normalize(points, ideal_point(points), nadir_point(points));
  EXPECT_DOUBLE_EQ(norm[0][0], 0.0);
  EXPECT_DOUBLE_EQ(norm[1][0], 0.0);
}

class ParetoFilterSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ParetoFilterSweep, FilterResultIsMutuallyNonDominated) {
  util::Rng rng(GetParam());
  std::vector<ObjectiveVector> points;
  for (int i = 0; i < 50; ++i) {
    ObjectiveVector p;
    for (std::size_t m = 0; m < 2 + GetParam() % 4; ++m) {
      p.push_back(rng.uniform());
    }
    points.push_back(p);
  }
  const auto keep = pareto_filter(points);
  EXPECT_FALSE(keep.empty());
  for (auto i : keep) {
    for (auto j : keep) {
      EXPECT_FALSE(dominates(points[i], points[j]) && i != j &&
                   dominates(points[j], points[i]));
      EXPECT_FALSE(dominates(points[j], points[i]));
    }
  }
  // Every dropped point is dominated by (or equal to) some kept point.
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (std::find(keep.begin(), keep.end(), i) != keep.end()) continue;
    bool covered = false;
    for (auto j : keep) {
      if (weakly_dominates(points[j], points[i])) {
        covered = true;
        break;
      }
    }
    EXPECT_TRUE(covered) << "dropped point " << i << " not covered";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParetoFilterSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace moela::moo
