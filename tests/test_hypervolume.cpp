#include "moo/hypervolume.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "moo/pareto.hpp"
#include "util/rng.hpp"

namespace moela::moo {
namespace {

TEST(Hypervolume, EmptySetIsZero) {
  EXPECT_EQ(hypervolume({}, {1.0, 1.0}), 0.0);
}

TEST(Hypervolume, SinglePointBoxVolume) {
  EXPECT_DOUBLE_EQ(hypervolume({{0.25, 0.5}}, {1.0, 1.0}), 0.75 * 0.5);
  EXPECT_DOUBLE_EQ(hypervolume({{0.0, 0.0, 0.0}}, {2.0, 2.0, 2.0}), 8.0);
}

TEST(Hypervolume, PointOutsideReferenceContributesNothing) {
  EXPECT_EQ(hypervolume({{1.5, 0.2}}, {1.0, 1.0}), 0.0);
  EXPECT_EQ(hypervolume({{1.0, 0.2}}, {1.0, 1.0}), 0.0);  // touching = zero
}

TEST(Hypervolume, TwoPointUnion2D) {
  // Boxes [0.2,1]x[0.6,1] and [0.6,1]x[0.2,1]:
  // 0.8*0.4 + 0.4*0.8 - 0.4*0.4 = 0.48
  const double hv = hypervolume({{0.2, 0.6}, {0.6, 0.2}}, {1.0, 1.0});
  EXPECT_NEAR(hv, 0.48, 1e-12);
}

TEST(Hypervolume, DominatedPointDoesNotChangeVolume) {
  const ObjectiveVector ref{1.0, 1.0, 1.0};
  const std::vector<ObjectiveVector> base{{0.2, 0.3, 0.4}, {0.5, 0.1, 0.6}};
  auto with_dominated = base;
  with_dominated.push_back({0.6, 0.4, 0.7});  // dominated by base[0]
  EXPECT_NEAR(hypervolume(base, ref), hypervolume(with_dominated, ref),
              1e-12);
}

TEST(Hypervolume, AddingNonDominatedPointIncreasesVolume) {
  const ObjectiveVector ref{1.0, 1.0};
  std::vector<ObjectiveVector> points{{0.5, 0.5}};
  const double before = hypervolume(points, ref);
  points.push_back({0.1, 0.9});
  EXPECT_GT(hypervolume(points, ref), before);
}

TEST(Hypervolume, PermutationInvariant) {
  util::Rng rng(11);
  std::vector<ObjectiveVector> points;
  for (int i = 0; i < 20; ++i) {
    points.push_back({rng.uniform(), rng.uniform(), rng.uniform()});
  }
  const ObjectiveVector ref{1.1, 1.1, 1.1};
  const double hv1 = hypervolume(points, ref);
  rng.shuffle(points);
  EXPECT_NEAR(hypervolume(points, ref), hv1, 1e-9);
}

TEST(Hypervolume, KnownValue3D) {
  // Three mutually non-dominated points with a hand-computable union.
  // p1=(0,0.5,0.5), p2=(0.5,0,0.5), p3=(0.5,0.5,0), ref=(1,1,1).
  // Each box has volume 1*0.5*0.5 = 0.25... computed by inclusion-exclusion:
  // pairwise intersections are (0.5,0.5,0.5)-boxes: vol 0.125 each (3 of
  // them); triple intersection also 0.125.
  // HV = 3*0.25 - 3*0.125 + 0.125 = 0.5.
  const std::vector<ObjectiveVector> points{
      {0.0, 0.5, 0.5}, {0.5, 0.0, 0.5}, {0.5, 0.5, 0.0}};
  EXPECT_NEAR(hypervolume(points, {1.0, 1.0, 1.0}), 0.5, 1e-12);
}

TEST(Hypervolume, LinearFront2DAnalytic) {
  // Dense points on f2 = 1 - f1 against ref (1,1): HV of the full region
  // above the line is 0.5; a 101-point staircase underestimates slightly.
  std::vector<ObjectiveVector> points;
  for (int i = 0; i <= 100; ++i) {
    const double f1 = i / 100.0;
    points.push_back({f1, 1.0 - f1});
  }
  const double hv = hypervolume(points, {1.0, 1.0});
  EXPECT_GT(hv, 0.49);
  EXPECT_LT(hv, 0.5 + 1e-9);
}

TEST(Hypervolume, MonotonicInReferencePoint) {
  const std::vector<ObjectiveVector> points{{0.2, 0.4}, {0.5, 0.1}};
  EXPECT_LT(hypervolume(points, {1.0, 1.0}),
            hypervolume(points, {1.2, 1.2}));
}

TEST(NormalizedHypervolume, UnitReference) {
  const std::vector<ObjectiveVector> points{{1.0, 10.0}, {3.0, 2.0}};
  const auto ideal = ideal_point(points);
  const auto nadir = nadir_point(points);
  // Normalized points: (0,1) and (1,0); ref 1.1 ->
  // HV = 1.1*0.1 + 0.1*1.1 - 0.1*0.1 = 0.21
  EXPECT_NEAR(normalized_hypervolume(points, ideal, nadir), 0.21, 1e-12);
}

TEST(Hypervolume, DimensionMismatchThrows) {
  EXPECT_THROW(hypervolume({{0.1, 0.2, 0.3}}, {1.0, 1.0}),
               std::invalid_argument);
}

// Property: for any dimension, the exact WFG result equals a Monte-Carlo
// estimate of the dominated volume.
class HvMonteCarlo : public ::testing::TestWithParam<std::size_t> {};

TEST_P(HvMonteCarlo, MatchesMonteCarloEstimate) {
  const std::size_t m = GetParam();
  util::Rng rng(100 + m);
  std::vector<ObjectiveVector> points;
  for (int i = 0; i < 12; ++i) {
    ObjectiveVector p(m);
    for (auto& v : p) v = rng.uniform();
    points.push_back(p);
  }
  const ObjectiveVector ref(m, 1.0);
  const double exact = hypervolume(points, ref);

  const int samples = 200000;
  int inside = 0;
  util::Rng mc(999 + m);
  for (int s = 0; s < samples; ++s) {
    ObjectiveVector x(m);
    for (auto& v : x) v = mc.uniform();
    for (const auto& p : points) {
      if (weakly_dominates(p, x)) {
        ++inside;
        break;
      }
    }
  }
  const double estimate = static_cast<double>(inside) / samples;
  EXPECT_NEAR(exact, estimate, 0.01) << "m=" << m;
}

INSTANTIATE_TEST_SUITE_P(Dims, HvMonteCarlo, ::testing::Values(2, 3, 4, 5));

}  // namespace
}  // namespace moela::moo
