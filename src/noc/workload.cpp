#include "noc/workload.hpp"

namespace moela::noc {

double TrafficMatrix::total() const {
  double s = 0.0;
  for (double v : data_) s += v;
  return s;
}

void TrafficMatrix::scale(double factor) {
  for (double& v : data_) v *= factor;
}

}  // namespace moela::noc
