#include "exp/edp_selection.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace moela::exp {

std::vector<ScoredDesign> score_population(
    const noc::PlatformSpec& spec,
    const std::vector<noc::NocDesign>& designs, const noc::Workload& workload,
    const sim::AppArchetype& arch, const noc::NocObjectiveParams& obj_params,
    const sim::EdpModelParams& model) {
  std::vector<ScoredDesign> out;
  out.reserve(designs.size());
  for (std::size_t i = 0; i < designs.size(); ++i) {
    ScoredDesign s;
    s.score =
        sim::estimate_edp(spec, designs[i], workload, arch, obj_params, model);
    s.index = i;
    out.push_back(s);
  }
  return out;
}

std::vector<EdpSelection> select_by_edp(
    const std::vector<std::vector<ScoredDesign>>& populations,
    double threshold_margin) {
  // Global lowest peak temperature over every candidate of every algorithm.
  double min_temp = std::numeric_limits<double>::infinity();
  for (const auto& pop : populations) {
    for (const auto& s : pop) {
      min_temp = std::min(min_temp, s.score.peak_temperature);
    }
  }
  if (!std::isfinite(min_temp)) {
    throw std::invalid_argument("select_by_edp: empty populations");
  }
  const double threshold = min_temp * (1.0 + threshold_margin);

  std::vector<EdpSelection> selections;
  selections.reserve(populations.size());
  for (const auto& pop : populations) {
    EdpSelection sel;
    double best_edp = std::numeric_limits<double>::infinity();
    double best_temp = std::numeric_limits<double>::infinity();
    ScoredDesign coolest;
    for (const auto& s : pop) {
      if (s.score.peak_temperature <= threshold && s.score.edp < best_edp) {
        best_edp = s.score.edp;
        sel.chosen = s;
        sel.within_threshold = true;
      }
      if (s.score.peak_temperature < best_temp) {
        best_temp = s.score.peak_temperature;
        coolest = s;
      }
    }
    if (!sel.within_threshold) sel.chosen = coolest;  // paper's fallback
    selections.push_back(sel);
  }
  return selections;
}

std::vector<double> edp_overheads(const std::vector<EdpSelection>& selections,
                                  std::size_t baseline_index) {
  const double base = selections.at(baseline_index).chosen.score.edp;
  std::vector<double> out;
  out.reserve(selections.size());
  for (const auto& sel : selections) {
    out.push_back(base > 0.0 ? sel.chosen.score.edp / base - 1.0 : 0.0);
  }
  return out;
}

}  // namespace moela::exp
