#include "serve/protocol.hpp"

#include <cerrno>

#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include "util/numeric.hpp"

namespace moela::serve {

LineReader::ReadResult LineReader::read_line_for(std::string& out,
                                                 int timeout_ms) {
  for (;;) {
    // Scan only bytes not inspected by a previous pass.
    const std::size_t newline = buffer_.find('\n', scanned_);
    if (newline != std::string::npos) {
      out.assign(buffer_, 0, newline);
      if (!out.empty() && out.back() == '\r') out.pop_back();
      buffer_.erase(0, newline + 1);
      scanned_ = 0;
      return ReadResult::kLine;
    }
    scanned_ = buffer_.size();
    if (buffer_.size() > max_line_bytes_) {
      return ReadResult::kClosed;  // oversized line
    }
    if (timeout_ms >= 0) {
      pollfd poller{};
      poller.fd = fd_;
      poller.events = POLLIN;
      int ready;
      do {
        ready = ::poll(&poller, 1, timeout_ms);
      } while (ready < 0 && errno == EINTR);
      if (ready == 0) return ReadResult::kTimeout;
      if (ready < 0) return ReadResult::kClosed;
    }
    char chunk[65536];
    ssize_t n;
    do {
      n = ::recv(fd_, chunk, sizeof(chunk), 0);
    } while (n < 0 && errno == EINTR);
    if (n <= 0) return ReadResult::kClosed;  // EOF/error ends the conversation
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

bool send_line(int fd, const std::string& line) {
  std::string framed = line;
  framed += '\n';
  std::size_t sent = 0;
  while (sent < framed.size()) {
    // MSG_NOSIGNAL: a vanished peer must surface as an error return, not
    // kill the daemon with SIGPIPE.
    const ssize_t n = ::send(fd, framed.data() + sent, framed.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

bool parse_host_port(const std::string& spec, std::string& host, int& port) {
  host = "127.0.0.1";
  port = kDefaultPort;
  if (spec.empty()) return true;
  const std::size_t colon = spec.rfind(':');
  std::string host_part, port_part;
  if (colon == std::string::npos) {
    // Bare token: all digits reads as a port, anything else as a host.
    if (spec.find_first_not_of("0123456789") == std::string::npos) {
      port_part = spec;
    } else {
      host_part = spec;
    }
  } else {
    host_part = spec.substr(0, colon);
    port_part = spec.substr(colon + 1);
  }
  if (!host_part.empty()) host = host_part;
  if (!port_part.empty()) {
    std::uint64_t parsed = 0;
    if (!util::parse_u64(port_part, parsed) || parsed > 65535) {
      return false;
    }
    port = static_cast<int>(parsed);
  }
  return true;
}

util::Json make_error(std::uint64_t id, const std::string& message) {
  util::Json out = util::Json::object();
  out.set("id", id).set("ok", false).set("error", message);
  return out;
}

util::Json make_ok(std::uint64_t id) {
  util::Json out = util::Json::object();
  out.set("id", id).set("ok", true);
  return out;
}

}  // namespace moela::serve
