// The daemon's run scheduler: admission control in front of a weighted-
// fair queue (serve/sched/queue.hpp), draining onto its own worker pool.
//
// The Scheduler replaces the Executor's FIFO on the serving path. A "run"
// batch is admitted whole or shed whole (admission is all-or-nothing so a
// batch can never half-execute); admitted runs queue individually under
// (priority class, connection lane) and start one at a time as workers
// free up — so a saturating batch sweep holds the queue, not the workers,
// and an interactive run admitted behind it still starts within one
// weighted-round-robin cycle. Each dispatched run executes through
// api::Executor::execute_one on the calling worker thread, so caching,
// run-log, provenance, and progress semantics are exactly the pool's —
// scheduling reorders START TIMES ONLY, and reports stay bit-identical to
// inline execution for fixed seeds.
//
// Shedding: when the queue already holds max_queued runs, submit()
// declines with the depth it saw and a retry-after hint; nothing is
// enqueued and no slot leaks. The per-class queued/running/completed/shed
// counters feed the health verb.
#pragma once

#include <cstddef>
#include <cstdint>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "api/executor.hpp"
#include "api/request.hpp"
#include "serve/sched/policy.hpp"
#include "serve/sched/queue.hpp"
#include "util/metrics.hpp"
#include "util/thread_annotations.hpp"

namespace moela::serve::sched {

struct SchedulerConfig {
  /// Worker threads; 0 = std::thread::hardware_concurrency().
  std::size_t workers = 0;
  /// Per-class dispatch weights of the fair queue.
  Weights weights;
  /// Admission bound: runs QUEUED (admitted, not yet started) across all
  /// classes. A batch that would push past it is shed whole. Running runs
  /// do not count — capacity in flight is not backlog.
  std::size_t max_queued = 1024;
  /// Optional telemetry registry (not owned; must outlive the Scheduler).
  /// Each dispatched run observes its admission-to-start queue wait into a
  /// per-class moela_sched_queue_wait_seconds histogram.
  util::MetricsRegistry* metrics = nullptr;
};

class Scheduler {
 public:
  /// Outcome of one submit(): either the batch's futures (index-aligned
  /// with the submitted requests) or a shed decision with the structured
  /// overload facts the protocol reports.
  struct Admission {
    bool admitted = false;
    /// Queued runs at decision time (before this batch, when shed; after
    /// enqueueing it, when admitted).
    std::size_t queue_depth = 0;
    /// Coarse back-off hint for a shed client, milliseconds.
    std::uint64_t retry_after_ms = 0;
    std::vector<std::future<api::RunReport>> futures;
  };

  /// `executor` is not owned and must outlive the Scheduler; it needs no
  /// pool of its own (ExecutorConfig::pool = false) — these workers call
  /// its execute_one directly.
  explicit Scheduler(api::Executor& executor, SchedulerConfig config = {});
  /// Drains the queue (a pending stop on the batches' controls makes that
  /// fast: remaining runs return cancelled reports), then joins.
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Admits the whole batch under `priority` on connection lane `lane`,
  /// or sheds it whole. `control` (nullable) is shared by the batch's
  /// runs, exactly as Executor::submit's is.
  Admission submit(std::vector<api::RunRequest> requests, Priority priority,
                   std::uint64_t lane, api::RunControl* control);

  /// Snapshot of one class's counters (health verb).
  ClassCounters counters(Priority priority) const;
  /// Runs queued across all classes right now.
  std::size_t queued_total() const;
  /// Runs executing right now.
  std::size_t running_total() const;

  std::size_t workers() const { return workers_.size(); }
  std::size_t max_queued() const { return config_.max_queued; }

  /// The shed response's back-off hint for a given backlog: scales with
  /// queue depth over worker count, clamped to [50ms, 5s]. Deterministic
  /// in its inputs so tests can pin it.
  std::uint64_t retry_after_hint(std::size_t queue_depth) const;

 private:
  /// Moves one run of class index `cls` from running to completed. Called
  /// by the job itself just before it fulfills its promise, so counter
  /// snapshots are never behind a report the caller already holds.
  void retire(std::size_t cls);
  void worker_loop();

  SchedulerConfig config_;
  api::Executor& executor_;
  /// Pre-resolved per-class queue-wait histograms; null without a registry.
  util::Histogram* queue_wait_[kNumClasses] = {};
  std::vector<std::thread> workers_;

  mutable util::Mutex mutex_;
  util::CondVar wake_;
  /// The FairQueue is deliberately not internally synchronized; this
  /// annotation IS its locking contract (see queue.hpp).
  FairQueue queue_ MOELA_GUARDED_BY(mutex_);
  /// queued is derived from queue_; running/completed/shed live here.
  ClassCounters counters_[kNumClasses] MOELA_GUARDED_BY(mutex_);
  bool shutting_down_ MOELA_GUARDED_BY(mutex_) = false;
};

}  // namespace moela::serve::sched
