#include "api/executor.hpp"

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <utility>

#include <unistd.h>

#include "api/registry.hpp"
#include "api/run_log.hpp"
#include "api/snapshot.hpp"
#include "util/timer.hpp"

namespace moela::api {
namespace {

namespace fs = std::filesystem;

/// The snapshot file for a fingerprint: hashed stem (fingerprints embed
/// whole cache keys — too long and too shell-hostile for a filename), own
/// extension so a snapshot directory pointed at the cache dir could never
/// collide with ".moela" entries.
std::string snapshot_file(const std::string& dir,
                          const std::string& fingerprint) {
  return (fs::path(dir) / (ResultCache::hash_key(fingerprint) + ".snap"))
      .string();
}

/// Best-effort read + strict validation. Anything wrong — unreadable file,
/// bad JSON, checksum mismatch, foreign fingerprint — returns null and the
/// run starts fresh: a stale snapshot must never poison a result.
std::shared_ptr<const RunSnapshot> load_snapshot_file(
    const std::string& path, const std::string& fingerprint) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return nullptr;
  const std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  try {
    RunSnapshot snapshot = snapshot_from_text(text);
    if (snapshot.fingerprint != fingerprint) return nullptr;
    return std::make_shared<const RunSnapshot>(std::move(snapshot));
  } catch (const std::exception&) {
    return nullptr;
  }
}

/// Atomic persistence, same discipline as the ResultCache disk tier:
/// write a uniquely named temp file, rename into place — a reader (or a
/// crash) never observes a half-written snapshot.
bool write_snapshot_file(const std::string& path,
                         const RunSnapshot& snapshot) {
  static std::atomic<std::uint64_t> write_counter{0};
  std::error_code ec;
  fs::create_directories(fs::path(path).parent_path(), ec);
  const std::string temp = path + ".tmp." + util::dec(::getpid()) + "." +
                           util::dec(write_counter.fetch_add(1));
  {
    std::ofstream out(temp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    const std::string text = snapshot_to_text(snapshot);
    out.write(text.data(), static_cast<std::streamsize>(text.size()));
    if (!out) {
      out.close();
      fs::remove(temp, ec);
      return false;
    }
  }
  fs::rename(temp, path, ec);
  if (ec) {
    fs::remove(temp, ec);
    return false;
  }
  return true;
}

}  // namespace

Executor::Executor(ExecutorConfig config) : config_(config) {
  if (config_.run_log == nullptr) config_.run_log = RunLogger::from_env();
  if (config_.metrics != nullptr) {
    snapshots_written_ = &config_.metrics->counter(
        "moela_snapshots_written_total",
        "RunSnapshots persisted to the snapshot directory");
    runs_resumed_ = &config_.metrics->counter(
        "moela_runs_resumed_total",
        "Runs resumed from a RunSnapshot instead of starting fresh");
  }
  jobs_ = config.jobs;
  if (jobs_ == 0) {
    jobs_ = std::max(1u, std::thread::hardware_concurrency());
  }
  if (!config_.pool) return;  // execute_one-only: the owner brings threads
  workers_.reserve(jobs_);
  for (std::size_t i = 0; i < jobs_; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

Executor::~Executor() {
  {
    util::MutexLock lock(mutex_);
    shutting_down_ = true;
  }
  wake_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void Executor::worker_loop() {
  for (;;) {
    std::packaged_task<RunReport()> task;
    {
      util::MutexLock lock(mutex_);
      while (!shutting_down_ && queue_.empty()) wake_.wait(lock);
      if (queue_.empty()) return;  // shutting down and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // exceptions land in the task's future
  }
}

std::vector<std::future<RunReport>> Executor::submit(
    std::vector<RunRequest> requests, RunControl* control) {
  if (!config_.pool) {
    throw std::logic_error(
        "Executor: pool disabled (ExecutorConfig::pool = false); drive "
        "execute_one from the owning scheduler instead");
  }
  auto batch = std::make_shared<BatchState>();
  batch->total = requests.size();
  std::vector<std::future<RunReport>> futures;
  futures.reserve(requests.size());
  {
    util::MutexLock lock(mutex_);
    for (std::size_t i = 0; i < requests.size(); ++i) {
      std::packaged_task<RunReport()> task(
          [this, request = std::move(requests[i]), control, i, batch] {
            return execute(request, control, i, batch);
          });
      futures.push_back(task.get_future());
      queue_.push_back(std::move(task));
    }
  }
  wake_.notify_all();
  return futures;
}

std::vector<RunReport> Executor::run_all(std::vector<RunRequest> requests,
                                         RunControl* control) {
  auto futures = submit(std::move(requests), control);
  std::vector<RunReport> reports;
  reports.reserve(futures.size());
  for (auto& future : futures) reports.push_back(future.get());
  return reports;
}

RunReport Executor::execute_one(const RunRequest& request,
                                RunControl* control, std::size_t index,
                                const std::shared_ptr<BatchState>& batch) {
  return execute(request, control, index, batch);
}

RunReport Executor::execute(const RunRequest& request, RunControl* control,
                            std::size_t index,
                            const std::shared_ptr<BatchState>& batch) {
  // The completed counter must advance on every exit path (including a
  // throwing make_problem / registry lookup), or batch progress displays
  // would stall short of `total`.
  auto finish = [&](const RunReport* report) {
    const std::size_t done =
        batch->completed.fetch_add(1, std::memory_order_relaxed) + 1;
    if (control == nullptr) return;
    RunProgress progress;
    progress.batch_index = index;
    progress.batch_size = batch->total;
    progress.completed = done;
    progress.max_evaluations = request.options.max_evaluations;
    progress.finished = true;
    if (report != nullptr) {
      progress.algorithm = report->algorithm;
      progress.evaluations = report->evaluations;
      progress.seconds = report->seconds;
      progress.cache_hit = report->provenance.cache_hit;
    }
    control->notify(progress);
  };

  util::Timer wall;
  try {
    const std::string key = request.cache_key();
    RunReport report;
    bool ran = false;
    if (config_.cache != nullptr) {
      if (auto hit = config_.cache->lookup(key, request.need_designs)) {
        report = std::move(*hit);
      }
    }
    std::string snap_path;
    if (!report.provenance.cache_hit) {
      if (control != nullptr && control->stop_requested()) {
        // Never started: an empty, well-formed cancelled report.
        report.algorithm = request.algorithm;
        report.provenance.seed = request.options.seed;
        report.provenance.knobs = request.options.knobs.values();
        report.provenance.cancelled = true;
      } else {
        AnyProblem problem =
            request.bound_problem.has_value()
                ? request.bound_problem
                : make_problem(request.problem, request.problem_options);
        auto optimizer =
            registry().create(request.algorithm, std::move(problem));
        RunCheckpoint ckpt;
        if (request.checkpoint) {
          // A bound problem has no fingerprint (cache_key is empty), which
          // makes it uncheckpointable: the request silently runs plain.
          ckpt.fingerprint = snapshot_fingerprint(request);
          ckpt.checkpoint = !ckpt.fingerprint.empty();
        }
        if (ckpt.checkpoint) {
          if (request.resume != nullptr &&
              request.resume->fingerprint == ckpt.fingerprint) {
            ckpt.resume = request.resume;
          }
          if (!config_.snapshot_dir.empty()) {
            snap_path = snapshot_file(config_.snapshot_dir, ckpt.fingerprint);
            if (ckpt.resume == nullptr) {
              // Auto-resume: a snapshot file left by a crashed/cancelled
              // earlier attempt at this exact request.
              ckpt.resume = load_snapshot_file(snap_path, ckpt.fingerprint);
            }
            ckpt.on_snapshot = [this, &snap_path](const RunSnapshot& s) {
              if (write_snapshot_file(snap_path, s) &&
                  snapshots_written_ != nullptr) {
                snapshots_written_->add();
              }
            };
          }
          if (ckpt.resume != nullptr && runs_resumed_ != nullptr) {
            runs_resumed_->add();
          }
        }
        report =
            optimizer->run(request.options, control, index, batch->total, ckpt);
        ran = true;
        if (!snap_path.empty() && !report.provenance.cancelled) {
          // The run completed; its snapshot has served its purpose. A
          // cancelled run keeps the file so the next attempt resumes.
          std::error_code ec;
          fs::remove(snap_path, ec);
        }
      }
    }
    report.provenance.problem = request.problem;
    report.provenance.algorithm_key = request.algorithm;
    report.provenance.cache_key = key;
    // Stamped on EVERY path (run, cache hit, cancelled) so a replayed
    // report always echoes THIS request's trace, not the filler's.
    report.provenance.trace_id = request.trace_id;
    if (ran && config_.cache != nullptr) {
      config_.cache->store(key, report);  // ignores cancelled partials
    }
    if (ran && config_.metrics != nullptr) {
      config_.metrics
          ->histogram("moela_run_seconds",
                      "Wall time of executed (non-cached) runs by algorithm",
                      util::exponential_bounds(0.001, 2.0, 16),
                      {{"algorithm", request.algorithm}})
          .observe(wall.elapsed_seconds());
    }
    if (config_.run_log != nullptr) {
      config_.run_log->append(request, report, wall.elapsed_seconds());
    }
    finish(&report);
    return report;
  } catch (const std::exception& e) {
    if (config_.run_log != nullptr) {
      config_.run_log->append_error(request, e.what(),
                                    wall.elapsed_seconds());
    }
    finish(nullptr);
    throw;  // delivered by this request's future
  } catch (...) {
    if (config_.run_log != nullptr) {
      config_.run_log->append_error(request, "unknown exception",
                                    wall.elapsed_seconds());
    }
    finish(nullptr);
    throw;
  }
}

}  // namespace moela::api
