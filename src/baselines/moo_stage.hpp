// MOO-STAGE baseline (Joardar et al., IEEE TC 2019, reference [8] of the
// paper), reimplemented from its published description: STAGE (Boyan &
// Moore 2001) lifted to multi-objective search. It alternates between
//  (a) a PHV-greedy local search over the Pareto archive, and
//  (b) a meta-search: a random-forest value function trained on past
//      trajectories predicts the PHV gain attainable from a given start,
//      and the next start is chosen by hill-climbing this learned function
//      (cheap model queries instead of real evaluations).
// The learned function here must consider the current archive implicitly
// (its targets are archive-PHV gains) — the "complex learned evaluation
// function" the MOELA paper contrasts with its decomposition-based Eval.
#pragma once

#include <cstddef>
#include <vector>

#include "baselines/archive_search.hpp"
#include "core/eval_context.hpp"
#include "ml/dataset.hpp"
#include "ml/random_forest.hpp"
#include "moo/problem.hpp"

namespace moela::baselines {

struct MooStageConfig {
  std::size_t archive_capacity = 50;
  std::size_t initial_designs = 50;
  std::size_t searches_per_iteration = 5;
  std::size_t max_iterations = 1000;
  /// Iterations with random starts before the value function kicks in.
  std::size_t iter_early = 2;
  /// Candidate starts scored by the learned model per guided selection
  /// (the STAGE meta-search width).
  std::size_t meta_candidates = 32;
  std::size_t train_capacity = 10000;
  ml::ForestConfig forest;
  PhvSearchConfig search;
};

template <moo::MooProblem P>
class MooStage {
 public:
  using Design = typename P::Design;

  explicit MooStage(MooStageConfig config = {}) : config_(config) {}

  DesignArchive<P> run(core::EvalContext<P>& ctx) {
    DesignArchive<P> archive(config_.archive_capacity);
    ctx.set_solution_set_provider(
        [&archive] { return archive.objective_set(); });
    for (std::size_t i = 0;
         i < config_.initial_designs && !ctx.exhausted(); ++i) {
      Design d = ctx.problem().random_design(ctx.rng());
      moo::ObjectiveVector obj = ctx.evaluate(d);
      archive.insert(std::move(d), std::move(obj));
    }

    ml::Dataset dataset(ctx.problem().num_features(), config_.train_capacity);
    ml::RandomForest value_function(config_.forest);
    bool trained = false;

    for (std::size_t iter = 0;
         iter < config_.max_iterations && !ctx.exhausted(); ++iter) {
      for (std::size_t s = 0;
           s < config_.searches_per_iteration && !ctx.exhausted(); ++s) {
        if (archive.empty()) break;
        const Design start = select_start(ctx, archive, value_function,
                                          trained && iter >= config_.iter_early);
        std::vector<std::vector<double>> trajectory;
        const double gain =
            phv_local_search(ctx, archive, start, config_.search, &trajectory);
        // STAGE labeling: every visited design maps to the search outcome.
        for (auto& features : trajectory) {
          dataset.add(std::move(features), -gain);  // minimize -gain
        }
      }
      if (!dataset.empty()) {
        value_function = ml::RandomForest(config_.forest);
        value_function.fit(dataset, ctx.rng());
        trained = true;
      }
    }
    ctx.set_solution_set_provider(nullptr);
    return archive;
  }

  const MooStageConfig& config() const { return config_; }

 private:
  /// STAGE meta-search: propose candidate starts (archive members and their
  /// mutations) and take the one the value function scores best. Falls back
  /// to a random archive member before the model is trained.
  Design select_start(core::EvalContext<P>& ctx,
                      const DesignArchive<P>& archive,
                      const ml::RandomForest& value_function,
                      bool guided) const {
    const auto& entries = archive.entries();
    if (!guided) {
      return entries[ctx.rng().below(entries.size())].design;
    }
    Design best = entries[ctx.rng().below(entries.size())].design;
    double best_score = value_function.predict(ctx.problem().features(best));
    for (std::size_t k = 1; k < config_.meta_candidates; ++k) {
      const auto& base =
          entries[ctx.rng().below(entries.size())].design;
      // Half the candidates are archive members, half one-step mutations —
      // a lightweight hill-climb in design space using only model queries.
      Design candidate = (k % 2 == 0)
                             ? base
                             : ctx.problem().random_neighbor(base, ctx.rng());
      const double score =
          value_function.predict(ctx.problem().features(candidate));
      if (score < best_score) {  // dataset targets are -gain: lower = better
        best_score = score;
        best = std::move(candidate);
      }
    }
    return best;
  }

  MooStageConfig config_;
};

}  // namespace moela::baselines
