// Shared machinery for the archive-based ML-guided local-search baselines
// (MOOS and MOO-STAGE).
//
// Both frameworks search over the entire Pareto archive "for all objectives"
// (Sec. IV.B of the MOELA paper) and accept moves by Pareto-hypervolume
// improvement — the repeated PHV computation whose cost MOELA's
// decomposition-based local search is designed to avoid. This header holds
// the design-carrying archive and the PHV-greedy descent they share.
#pragma once

#include <algorithm>
#include <cstddef>
#include <limits>
#include <vector>

#include "core/eval_context.hpp"
#include "moo/hypervolume.hpp"
#include "moo/objective.hpp"
#include "moo/pareto.hpp"
#include "moo/problem.hpp"

namespace moela::baselines {

/// A bounded Pareto archive that also stores designs (EvalContext's archive
/// only stores objectives).
template <moo::MooProblem P>
class DesignArchive {
 public:
  using Design = typename P::Design;

  struct Entry {
    Design design;
    moo::ObjectiveVector objectives;
  };

  explicit DesignArchive(std::size_t capacity) : capacity_(capacity) {}

  /// Pareto insertion; bounded by crowding-distance eviction.
  bool insert(Design design, moo::ObjectiveVector obj) {
    for (const auto& e : entries_) {
      const auto d = moo::compare(e.objectives, obj);
      if (d == moo::Dominance::kDominates || d == moo::Dominance::kEqual) {
        return false;
      }
    }
    std::erase_if(entries_, [&](const Entry& e) {
      return moo::compare(obj, e.objectives) == moo::Dominance::kDominates;
    });
    entries_.push_back({std::move(design), std::move(obj)});
    if (capacity_ > 0 && entries_.size() > capacity_) evict();
    return true;
  }

  const std::vector<Entry>& entries() const { return entries_; }
  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  std::vector<moo::ObjectiveVector> objective_set() const {
    std::vector<moo::ObjectiveVector> out;
    out.reserve(entries_.size());
    for (const auto& e : entries_) out.push_back(e.objectives);
    return out;
  }

  /// Normalized PHV of the archive content using its own ideal/nadir — the
  /// anytime quality signal MOOS/MOO-STAGE greedily climb.
  double normalized_phv() const {
    if (entries_.empty()) return 0.0;
    const auto points = objective_set();
    const auto ideal = moo::ideal_point(points);
    const auto nadir = moo::nadir_point(points);
    return moo::normalized_hypervolume(points, ideal, nadir);
  }

  /// PHV gain of hypothetically adding `obj` (without inserting). This is
  /// the per-step cost center of the PHV-driven searches.
  double phv_gain(const moo::ObjectiveVector& obj) const {
    if (entries_.empty()) return 1.0;
    auto points = objective_set();
    const double before_ideal_phv = [&] {
      const auto ideal = moo::ideal_point(points);
      const auto nadir = moo::nadir_point(points);
      return moo::normalized_hypervolume(points, ideal, nadir);
    }();
    points.push_back(obj);
    const auto ideal = moo::ideal_point(points);
    const auto nadir = moo::nadir_point(points);
    const double with_candidate =
        moo::normalized_hypervolume(points, ideal, nadir);
    std::vector<moo::ObjectiveVector> without(points.begin(),
                                              points.end() - 1);
    const double without_candidate =
        moo::normalized_hypervolume(without, ideal, nadir);
    (void)before_ideal_phv;
    return with_candidate - without_candidate;
  }

 private:
  void evict() {
    const auto points = objective_set();
    std::vector<std::size_t> front(points.size());
    for (std::size_t i = 0; i < front.size(); ++i) front[i] = i;
    const auto dist = moo::crowding_distance(points, front);
    std::size_t victim = 0;
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < dist.size(); ++i) {
      if (dist[i] < best) {
        best = dist[i];
        victim = i;
      }
    }
    entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(victim));
  }

  std::size_t capacity_;
  std::vector<Entry> entries_;
};

struct PhvSearchConfig {
  std::size_t neighbors_per_step = 6;
  std::size_t max_steps = 40;
};

/// Greedy PHV-improvement descent from `start`: per step, evaluates a batch
/// of neighbors, takes the one with the largest positive archive-PHV gain,
/// inserts every non-dominated visit into the archive. Returns the total
/// PHV gain realized and appends visited-feature rows for STAGE-style
/// training.
template <moo::MooProblem P>
double phv_local_search(core::EvalContext<P>& ctx,
                        DesignArchive<P>& archive,
                        const typename P::Design& start,
                        const PhvSearchConfig& config,
                        std::vector<std::vector<double>>* trajectory) {
  typename P::Design current = start;
  double total_gain = 0.0;
  if (trajectory != nullptr) {
    trajectory->push_back(ctx.problem().features(current));
  }
  for (std::size_t step = 0; step < config.max_steps; ++step) {
    if (ctx.exhausted()) break;
    double best_gain = 0.0;
    typename P::Design best_neighbor = current;
    moo::ObjectiveVector best_obj;
    bool improved = false;
    for (std::size_t k = 0; k < config.neighbors_per_step; ++k) {
      if (ctx.exhausted()) break;
      typename P::Design n = ctx.problem().random_neighbor(current, ctx.rng());
      moo::ObjectiveVector obj = ctx.evaluate(n);
      const double gain = archive.phv_gain(obj);  // costly PHV call
      if (gain > best_gain) {
        best_gain = gain;
        best_neighbor = std::move(n);
        best_obj = std::move(obj);
        improved = true;
      }
    }
    if (!improved) break;
    archive.insert(best_neighbor, best_obj);
    current = std::move(best_neighbor);
    total_gain += best_gain;
    if (trajectory != nullptr) {
      trajectory->push_back(ctx.problem().features(current));
    }
  }
  return total_gain;
}

}  // namespace moela::baselines
