#include "noc/constraints.hpp"

#include <algorithm>
#include <sstream>

namespace moela::noc {

ConstraintReport validate(const PlatformSpec& spec, const NocDesign& design) {
  ConstraintReport report;
  auto violation = [&report](const std::string& msg) {
    report.violations.push_back(msg);
  };

  // Placement must be a permutation of all cores.
  {
    report.placement_is_permutation =
        design.placement.size() == spec.num_tiles();
    std::vector<bool> seen(spec.num_cores(), false);
    for (CoreId c : design.placement) {
      if (c >= spec.num_cores() || seen[c]) {
        report.placement_is_permutation = false;
        break;
      }
      seen[c] = true;
    }
    if (!report.placement_is_permutation) {
      violation("placement is not a permutation of cores");
    }
  }

  // LLC tiles must lie on the die perimeter.
  report.llcs_on_edge = report.placement_is_permutation;
  if (report.placement_is_permutation) {
    for (TileId t = 0; t < design.placement.size(); ++t) {
      if (spec.core_type(design.placement[t]) == PeType::kLlc &&
          !spec.is_edge_tile(t)) {
        report.llcs_on_edge = false;
        std::ostringstream os;
        os << "LLC core " << design.placement[t] << " on interior tile "
           << t;
        violation(os.str());
      }
    }
  }

  // Exact link budgets per class; all links geometrically legal; unique.
  {
    auto canonical = design.links;
    std::sort(canonical.begin(), canonical.end());
    const bool unique_links =
        std::adjacent_find(canonical.begin(), canonical.end()) ==
        canonical.end();
    report.links_legal = unique_links;
    if (!unique_links) violation("duplicate links");
    std::size_t planar = 0, vertical = 0;
    for (const Link& l : design.links) {
      if (!spec.link_is_legal(l)) {
        report.links_legal = false;
        std::ostringstream os;
        os << "illegal link " << l.a << "-" << l.b;
        violation(os.str());
        continue;
      }
      if (spec.z_of(l.a) == spec.z_of(l.b)) {
        ++planar;
      } else {
        ++vertical;
      }
    }
    report.link_budget_respected = planar == spec.num_planar_links() &&
                                   vertical == spec.num_vertical_links();
    if (!report.link_budget_respected) {
      std::ostringstream os;
      os << "link budget: " << planar << "/" << spec.num_planar_links()
         << " planar, " << vertical << "/" << spec.num_vertical_links()
         << " vertical";
      violation(os.str());
    }
  }

  // Router degree and connectivity.
  {
    Adjacency adj(spec, design.links);
    report.degree_respected = true;
    for (TileId t = 0; t < spec.num_tiles(); ++t) {
      if (adj.degree(t) >
          static_cast<std::size_t>(spec.max_router_degree())) {
        report.degree_respected = false;
        std::ostringstream os;
        os << "router " << t << " degree " << adj.degree(t) << " > "
           << spec.max_router_degree();
        violation(os.str());
      }
    }
    report.connected = adj.connected();
    if (!report.connected) violation("network is disconnected");
  }

  return report;
}

bool is_feasible(const PlatformSpec& spec, const NocDesign& design) {
  return validate(spec, design).ok();
}

}  // namespace moela::noc
