// Runtime composition layer, part 2: the uniform optimizer front-end.
//
// Every algorithm in the library — MOELA, its three ablation variants, and
// the four baselines — is driven through one abstract interface:
//
//   auto opt = api::registry().create("moela", api::AnyProblem(problem));
//   api::RunReport report = opt->run(options);
//
// RunOptions carries the budgets every algorithm shares (the paper's
// fairness contract: same evaluation cap, same wall clock, same population
// sizing, same seed) plus a string-keyed knob bag for per-algorithm
// parameters, so new knobs never change this API. RunReport is the uniform
// result: archive snapshots for anytime-PHV traces, the all-time Pareto
// front, and the final population (type-erased designs + objectives) for
// the Fig. 3 design selection.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "api/any_problem.hpp"
#include "core/eval_context.hpp"
#include "moo/objective.hpp"
#include "util/thread_annotations.hpp"

namespace moela::api {

/// String-keyed per-algorithm parameters ("moela.delta", "moos.temperature",
/// ...). Doubles cover every knob in the library: counts, probabilities and
/// switches (0/1). Unknown keys are ignored by optimizers, so one bag can
/// configure several algorithms at once.
class KnobBag {
 public:
  KnobBag& set(std::string name, double value) {
    values_[std::move(name)] = value;
    return *this;
  }

  double get_or(const std::string& name, double fallback) const {
    auto it = values_.find(name);
    return it == values_.end() ? fallback : it->second;
  }
  std::size_t get_or(const std::string& name, std::size_t fallback) const {
    auto it = values_.find(name);
    if (it == values_.end()) return fallback;
    // A negative value cannot mean anything for a count knob, and casting
    // it to size_t would be undefined behavior — fall back instead.
    if (it->second < 0.0) return fallback;
    return static_cast<std::size_t>(it->second);
  }
  bool get_or(const std::string& name, bool fallback) const {
    auto it = values_.find(name);
    return it == values_.end() ? fallback : it->second != 0.0;
  }

  bool contains(const std::string& name) const {
    return values_.count(name) > 0;
  }
  const std::map<std::string, double>& values() const { return values_; }

  /// Parses "name=value" (the CLI --knob syntax). Returns false on a
  /// malformed assignment or a non-numeric value.
  bool parse_assignment(const std::string& assignment);

 private:
  std::map<std::string, double> values_;
};

/// Budgets and sizing shared by every algorithm, plus the knob bag.
struct RunOptions {
  /// Objective-evaluation budget — the experiment time axis.
  std::size_t max_evaluations = 20000;
  /// Wall-clock budget in seconds; 0 disables it. Whichever budget binds
  /// first stops the run (the paper's T_stop is wall-clock).
  double max_seconds = 0.0;
  /// Archive snapshot cadence in evaluations (0 disables the trace).
  std::size_t snapshot_interval = 500;
  std::uint64_t seed = 1;
  /// Population / archive size shared by every algorithm (fairness).
  std::size_t population_size = 50;
  /// Local searches per iteration for the LS-based methods (n_local).
  std::size_t n_local = 5;
  /// Per-algorithm parameters; see each adapter in api/optimizers.cpp for
  /// its recognized keys.
  KnobBag knobs;
};

/// Resumable state of an in-flight run: the evaluation journal (objective
/// vectors in evaluation order) plus counters. Every registered algorithm
/// is deterministic given (problem, options) when max_seconds is 0, so the
/// journal IS the run's state: resume re-executes the algorithm from its
/// seed with the prefix served from the journal instead of the problem —
/// same RNG draws, same proposals, same archive — and the resumed run's
/// report is bit-identical to the uninterrupted one. Serialized through
/// api/snapshot.hpp (hexfloat-exact, checksummed); snapshots never feed
/// cache_key() or report bytes.
struct RunSnapshot {
  /// Identity of the producing request: the snapshot-schema salt plus the
  /// request's cache_key(). A snapshot only resumes the exact same work —
  /// consumers reject any fingerprint mismatch and run fresh instead.
  std::string fingerprint;
  /// Evaluations covered (== journal.size()); resume replays exactly this
  /// prefix and the remaining budget re-runs live.
  std::size_t evaluations = 0;
  /// The evaluation journal: entry i is the objective vector of
  /// evaluation i+1.
  std::vector<moo::ObjectiveVector> journal;
};

/// One progress event from an in-flight run (emitted at the snapshot
/// cadence) or from the Executor when a batch entry finishes.
struct RunProgress {
  /// Display name of the algorithm reporting progress.
  std::string algorithm;
  /// Index of this run in its batch (0 for direct Optimizer::run calls).
  std::size_t batch_index = 0;
  /// Number of runs in the batch (1 for direct calls).
  std::size_t batch_size = 1;
  /// Finished runs in the batch so far; only filled on `finished` events.
  std::size_t completed = 0;
  std::size_t evaluations = 0;
  double seconds = 0.0;
  std::size_t max_evaluations = 0;
  /// True for the Executor's end-of-run event (in-run cadence events are
  /// false).
  bool finished = false;
  /// True when a finished run was served from the result cache.
  bool cache_hit = false;
  /// Latest checkpoint of the run, attached to cadence events when the run
  /// asked for checkpointing (RunCheckpoint::checkpoint); null otherwise.
  /// Shared and immutable: observers may stash the pointer past the event.
  std::shared_ptr<const RunSnapshot> snapshot;
};

/// Checkpoint/resume plumbing for Optimizer::run. Default-constructed it is
/// inert: no journaling, no snapshots, no replay — the uncheckpointed hot
/// path pays nothing.
struct RunCheckpoint {
  /// Record the evaluation journal and attach a RunSnapshot to every
  /// cadence progress event (RunProgress::snapshot).
  bool checkpoint = false;
  /// Snapshot to resume from (journal replay); null starts fresh. The
  /// caller is responsible for fingerprint validation — run() trusts it.
  std::shared_ptr<const RunSnapshot> resume;
  /// Identity stamped into emitted snapshots (api::snapshot_fingerprint of
  /// the originating request; empty for direct Optimizer::run callers).
  std::string fingerprint;
  /// Optional sink invoked with each freshly taken snapshot, from the
  /// run's own thread (the Executor persists them to disk through this).
  std::function<void(const RunSnapshot&)> on_snapshot;
};

/// Shared observability and cancellation handle for one run or a whole
/// batch. Thread-safe: many in-flight runs may carry the same control.
/// request_stop() is async-signal-safe (a single atomic store), so a SIGINT
/// handler may call it directly.
class RunControl {
 public:
  /// Asks every run carrying this control to stop at its next budget check.
  /// In-flight runs still return a well-formed (partial) report.
  void request_stop() { stop_.store(true, std::memory_order_relaxed); }
  bool stop_requested() const {
    return stop_.load(std::memory_order_relaxed);
  }
  /// The raw flag, for wiring into core::EvalContext::set_stop_flag.
  const std::atomic<bool>* stop_flag() const { return &stop_; }

  /// Installs the progress callback. Invoked from the run's own thread
  /// (serialized by an internal mutex); keep it cheap and do not call back
  /// into the Executor from it.
  void on_progress(std::function<void(const RunProgress&)> callback) {
    util::MutexLock lock(mutex_);
    callback_ = std::move(callback);
  }

  /// Delivers one progress event to the callback (no-op without one).
  void notify(const RunProgress& progress) {
    util::MutexLock lock(mutex_);
    if (callback_) callback_(progress);
  }

 private:
  /// Lock-free by design: request_stop() must stay async-signal-safe, so
  /// the stop flag is a relaxed atomic, never guarded by mutex_.
  std::atomic<bool> stop_{false};
  util::Mutex mutex_;
  std::function<void(const RunProgress&)> callback_ MOELA_GUARDED_BY(mutex_);
};

/// Where a report came from: enough to reproduce (or cache-key) the run.
/// Optimizer::run fills seed/knobs/cancelled; the Executor adds the problem
/// and algorithm registry keys and the cache fields.
struct RunProvenance {
  /// make_problem() key; empty for a custom problem bound directly.
  std::string problem;
  /// Registry key of the algorithm ("moela", ...); empty for direct
  /// Optimizer::run calls on a hand-built optimizer.
  std::string algorithm_key;
  std::uint64_t seed = 0;
  /// The knob values the run actually received.
  std::map<std::string, double> knobs;
  /// Canonical cache key of the request; empty when uncacheable.
  std::string cache_key;
  bool cache_hit = false;
  /// The scheduling class that carried the run on a daemon ("interactive"
  /// / "normal" / "batch"); "normal" for inline execution. Scheduling
  /// provenance only — like cache_hit it never affects the run's content,
  /// and it is deliberately absent from the cache key.
  std::string priority = "normal";
  /// Correlation id of the submitting CLI/coordinator sweep; empty when
  /// the caller minted none. Like `priority` this is transport provenance:
  /// the Executor stamps the CURRENT request's id even on a cache hit, it
  /// never affects run content, and it is absent from the cache key.
  std::string trace_id;
  /// True when a stop was requested while this run was in flight (the
  /// report then covers only the evaluations up to the stop).
  bool cancelled = false;
};

/// Uniform result of one optimizer run.
struct RunReport {
  /// Display name of the algorithm that produced this report ("MOELA",
  /// "NSGA-II", ...).
  std::string algorithm;
  std::vector<core::ArchiveSnapshot> snapshots;
  /// The all-time Pareto front of the run (objective vectors).
  std::vector<moo::ObjectiveVector> final_front;
  /// Final population/archive: type-erased designs + their objectives.
  std::vector<AnyDesign> final_designs;
  std::vector<moo::ObjectiveVector> final_objectives;
  std::size_t evaluations = 0;
  double seconds = 0.0;
  /// Traceability: the request that produced this report.
  RunProvenance provenance;

  /// Unwraps the final designs to their concrete type (throws when the
  /// report came from a different problem type).
  template <typename D>
  std::vector<D> designs_as() const {
    std::vector<D> out;
    out.reserve(final_designs.size());
    for (const auto& d : final_designs) out.push_back(d.as<D>());
    return out;
  }
};

/// Abstract optimizer: one problem bound at construction, one entry point.
/// Implementations live in api/optimizers.cpp and adapt the algorithm
/// templates (instantiated with P = AnyProblem) to this interface.
class Optimizer {
 public:
  explicit Optimizer(AnyProblem problem) : problem_(std::move(problem)) {}
  virtual ~Optimizer() = default;

  /// Display name ("MOELA", "MOEA/D", ...).
  virtual std::string name() const = 0;

  /// Runs the algorithm under `options` and returns the uniform report.
  /// Deterministic per (problem, options) when max_seconds is 0.
  RunReport run(const RunOptions& options) {
    return run(options, nullptr);
  }

  /// As above, but observable and cancellable through `control` (may be
  /// nullptr): progress events fire at the snapshot cadence, and a
  /// requested stop ends the run at its next budget check with a partial
  /// report (provenance.cancelled = true). `batch_index`/`batch_size` tag
  /// the progress events when the run is part of an Executor batch.
  RunReport run(const RunOptions& options, RunControl* control,
                std::size_t batch_index = 0, std::size_t batch_size = 1) {
    return run(options, control, batch_index, batch_size, RunCheckpoint{});
  }

  /// As above with the snapshot/restore contract: `checkpoint.checkpoint`
  /// journals the run and attaches a RunSnapshot to every cadence progress
  /// event; `checkpoint.resume` replays a prior snapshot's journal first,
  /// so for fixed seeds (max_seconds = 0) the resumed report is
  /// bit-identical to the uninterrupted run's — only wall-clock `seconds`
  /// fields differ, and those are never part of the identity contract.
  RunReport run(const RunOptions& options, RunControl* control,
                std::size_t batch_index, std::size_t batch_size,
                const RunCheckpoint& checkpoint);

  const AnyProblem& problem() const { return problem_; }

 protected:
  /// Algorithm body: runs against the prepared context and fills
  /// `report.final_designs` / `report.final_objectives`. Snapshots, the
  /// final front and the counters are collected by run().
  virtual void run_body(core::EvalContext<AnyProblem>& ctx,
                        const RunOptions& options, RunReport& report) = 0;

 private:
  AnyProblem problem_;
};

}  // namespace moela::api
