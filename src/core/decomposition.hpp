// Decomposition-based population (Sec. IV.C): N sub-problems defined by
// uniformly spread weight vectors, Tchebycheff scalarization, weight-space
// neighborhoods, and the MOEA/D population-update rule shared by MOELA's EA
// stage and the MOEA/D baseline.
#pragma once

#include <cstddef>
#include <vector>

#include "moo/objective.hpp"
#include "moo/problem.hpp"
#include "moo/scalarize.hpp"
#include "moo/weights.hpp"
#include "core/eval_context.hpp"

namespace moela::core {

/// A population where member i is the incumbent of sub-problem i (weight
/// w_i). Holds designs, their objective vectors, the shared reference point
/// z, and the T-nearest-weight neighborhoods.
template <moo::MooProblem P>
class DecompositionPopulation {
 public:
  using Design = typename P::Design;

  DecompositionPopulation(std::size_t population_size,
                          std::size_t num_objectives,
                          std::size_t neighborhood_size)
      : weights_(moo::uniform_weights(num_objectives, population_size)),
        neighborhoods_(moo::weight_neighborhoods(weights_, neighborhood_size)),
        z_(num_objectives) {}

  /// Fills the population with random evaluated designs.
  void initialize(EvalContext<P>& ctx) {
    designs_.clear();
    objectives_.clear();
    designs_.reserve(weights_.size());
    objectives_.reserve(weights_.size());
    for (std::size_t i = 0; i < weights_.size(); ++i) {
      Design d = ctx.problem().random_design(ctx.rng());
      moo::ObjectiveVector obj = ctx.evaluate(d);
      z_.update(obj);
      designs_.push_back(std::move(d));
      objectives_.push_back(std::move(obj));
    }
  }

  std::size_t size() const { return weights_.size(); }
  const Design& design(std::size_t i) const { return designs_[i]; }
  const moo::ObjectiveVector& objectives(std::size_t i) const {
    return objectives_[i];
  }
  const moo::WeightVector& weight(std::size_t i) const { return weights_[i]; }
  const std::vector<std::size_t>& neighborhood(std::size_t i) const {
    return neighborhoods_[i];
  }
  const moo::ObjectiveVector& reference_point() const { return z_.value(); }

  /// Per-objective normalization scale: the range between the reference
  /// point (all-time ideal) and the current population's nadir. Objectives
  /// on the paper's platform span several orders of magnitude, so all
  /// scalarizations are applied to range-normalized deviations.
  moo::ObjectiveVector objective_scale() const {
    const auto& z = z_.value();
    moo::ObjectiveVector scale(z.size(), 1.0);
    for (std::size_t k = 0; k < scale.size(); ++k) {
      double nadir = z[k];
      for (const auto& obj : objectives_) nadir = std::max(nadir, obj[k]);
      scale[k] = std::max(nadir - z[k], 1e-12);
    }
    return scale;
  }

  /// Scaled Tchebycheff value of sub-problem i's incumbent.
  double incumbent_value(std::size_t i) const {
    return moo::tchebycheff_scaled(objectives_[i], weights_[i], z_.value(),
                                   objective_scale());
  }

  void update_reference(const moo::ObjectiveVector& obj) { z_.update(obj); }

  /// MOEA/D population update: walks `pool` (a sub-problem index set, in the
  /// caller's order) and replaces incumbents whose Tchebycheff value for
  /// THEIR OWN weight is worse than the candidate's. At most
  /// `max_replacements` incumbents are replaced (MOEA/D-DE's n_r rule, which
  /// prevents a strong candidate from flooding the population). Returns the
  /// number of replacements.
  std::size_t update(const Design& candidate,
                     const moo::ObjectiveVector& candidate_obj,
                     const std::vector<std::size_t>& pool,
                     std::size_t max_replacements = 2) {
    z_.update(candidate_obj);
    const moo::ObjectiveVector scale = objective_scale();
    std::size_t replaced = 0;
    for (std::size_t idx : pool) {
      if (replaced >= max_replacements) break;
      const double incumbent = moo::tchebycheff_scaled(
          objectives_[idx], weights_[idx], z_.value(), scale);
      const double challenger = moo::tchebycheff_scaled(
          candidate_obj, weights_[idx], z_.value(), scale);
      if (challenger < incumbent) {
        designs_[idx] = candidate;
        objectives_[idx] = candidate_obj;
        ++replaced;
      }
    }
    return replaced;
  }

  /// Directly replaces sub-problem i's incumbent (used when a local search
  /// improves the sub-problem it was launched for).
  void replace(std::size_t i, Design d, moo::ObjectiveVector obj) {
    z_.update(obj);
    designs_[i] = std::move(d);
    objectives_[i] = std::move(obj);
  }

  /// Copies of all objective vectors (metrics / tests).
  std::vector<moo::ObjectiveVector> objective_set() const {
    return objectives_;
  }

 private:
  std::vector<moo::WeightVector> weights_;
  std::vector<std::vector<std::size_t>> neighborhoods_;
  moo::ReferencePoint z_;
  std::vector<Design> designs_;
  std::vector<moo::ObjectiveVector> objectives_;
};

/// One generation of the decomposition EA (Sec. IV.C), shared by MOELA's EA
/// stage and the MOEA/D baseline. For each sub-problem (random order): build
/// the parent pool Q from the weight neighborhood with probability `delta`
/// (else the whole population), produce one child by crossover + mutation,
/// and apply the Tchebycheff population update over Q.
template <moo::MooProblem P>
void decomposition_ea_generation(EvalContext<P>& ctx,
                                 DecompositionPopulation<P>& pop,
                                 double delta,
                                 std::size_t max_replacements = 2) {
  std::vector<std::size_t> order(pop.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  ctx.rng().shuffle(order);
  for (std::size_t i : order) {
    if (ctx.exhausted()) break;
    const bool use_hood = ctx.rng().chance(delta);
    const std::vector<std::size_t>& hood = pop.neighborhood(i);
    auto pick_parent = [&]() -> std::size_t {
      if (use_hood) return hood[ctx.rng().below(hood.size())];
      return ctx.rng().below(pop.size());
    };
    const std::size_t p1 = pick_parent();
    std::size_t p2 = pick_parent();
    if (p2 == p1) p2 = pick_parent();

    typename P::Design child = ctx.problem().crossover(
        pop.design(p1), pop.design(p2), ctx.rng());
    child = ctx.problem().mutate(child, ctx.rng());
    const moo::ObjectiveVector obj = ctx.evaluate(child);

    if (use_hood) {
      pop.update(child, obj, hood, max_replacements);
    } else {
      std::vector<std::size_t> pool(pop.size());
      std::iota(pool.begin(), pool.end(), std::size_t{0});
      ctx.rng().shuffle(pool);
      pop.update(child, obj, pool, max_replacements);
    }
  }
}

}  // namespace moela::core
