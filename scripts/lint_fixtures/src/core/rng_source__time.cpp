// Fixture: seeded violation — wall-clock seeding breaks reproducibility.
// A mention of time() in a comment must NOT trip the rule; the call below
// must. Nor should method calls like timer.time() or exp_time() trip it.
#include <ctime>
long wall_seed() { return std::time(nullptr); }
