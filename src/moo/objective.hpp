// Objective vectors and Pareto-dominance relations.
//
// Convention used throughout the library: ALL objectives are minimized.
// Problems that naturally maximize a quantity negate it at the problem
// boundary.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace moela::moo {

/// An objective vector; index i is the value of the i-th (minimized)
/// objective.
using ObjectiveVector = std::vector<double>;

/// Dominance relation between two equal-length objective vectors.
enum class Dominance {
  kDominates,     // a is <= b everywhere and < somewhere
  kDominatedBy,   // b dominates a
  kNonDominated,  // neither dominates (incomparable or equal)
  kEqual,         // identical vectors
};

/// Computes the Pareto-dominance relation between `a` and `b` (minimization).
inline Dominance compare(std::span<const double> a, std::span<const double> b) {
  bool a_better = false;
  bool b_better = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] < b[i]) {
      a_better = true;
    } else if (b[i] < a[i]) {
      b_better = true;
    }
    if (a_better && b_better) return Dominance::kNonDominated;
  }
  if (a_better) return Dominance::kDominates;
  if (b_better) return Dominance::kDominatedBy;
  return Dominance::kEqual;
}

/// True iff `a` Pareto-dominates `b` (minimization, strict).
inline bool dominates(std::span<const double> a, std::span<const double> b) {
  return compare(a, b) == Dominance::kDominates;
}

/// True iff `a` weakly dominates `b` (a <= b component-wise).
inline bool weakly_dominates(std::span<const double> a,
                             std::span<const double> b) {
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] > b[i]) return false;
  }
  return true;
}

}  // namespace moela::moo
