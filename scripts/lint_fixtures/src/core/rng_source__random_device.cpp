// Fixture: seeded violation — std::random_device is nondeterministic.
#include <random>
unsigned seed_from_hardware() { return std::random_device{}(); }
