#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>
#include <vector>

namespace moela::util {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDifferentStreams) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, ReseedRestartsStream) {
  Rng a(7);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 10; ++i) first.push_back(a());
  a.reseed(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a(), first[i]);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(42);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(42);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-3.0, 7.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 7.0);
  }
}

TEST(Rng, BelowStaysBelow) {
  Rng rng(9);
  for (std::uint64_t n : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(n), n);
  }
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng rng(11);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowCoversAllValues) {
  Rng rng(13);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(17);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const auto v = rng.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(23);
  const int n = 200000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(29);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // 50! permutations; identity is implausible
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, SampleIndicesDistinctAndInRange) {
  Rng rng(31);
  for (std::size_t n : {5ul, 20ul, 100ul}) {
    for (std::size_t k : {0ul, 1ul, 3ul, 5ul}) {
      const auto idx = rng.sample_indices(n, k);
      EXPECT_EQ(idx.size(), std::min(n, k));
      std::set<std::size_t> unique(idx.begin(), idx.end());
      EXPECT_EQ(unique.size(), idx.size());
      for (auto i : idx) EXPECT_LT(i, n);
    }
  }
}

TEST(Rng, SampleIndicesAllWhenKEqualsN) {
  Rng rng(37);
  const auto idx = rng.sample_indices(10, 10);
  std::set<std::size_t> unique(idx.begin(), idx.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(Rng, SampleIndicesKLargerThanNClamps) {
  Rng rng(41);
  EXPECT_EQ(rng.sample_indices(4, 100).size(), 4u);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(43);
  Rng child = parent.split();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent() == child()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, PickReturnsMember) {
  Rng rng(47);
  const std::vector<int> v{10, 20, 30};
  for (int i = 0; i < 100; ++i) {
    const int x = rng.pick(v);
    EXPECT_TRUE(x == 10 || x == 20 || x == 30);
  }
}

class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedSweep, BelowIsUnbiasedEnough) {
  Rng rng(GetParam());
  // Chi-square-ish sanity over 8 buckets.
  std::vector<int> counts(8, 0);
  const int n = 80000;
  for (int i = 0; i < n; ++i) ++counts[rng.below(8)];
  for (int c : counts) EXPECT_NEAR(c, n / 8, n / 8 * 0.05);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(1, 2, 3, 99, 12345, 0xdeadbeef));

}  // namespace
}  // namespace moela::util
