// Tests for the moela_serve daemon (src/serve/): an in-process Server on
// an ephemeral port driven by the real Client over a real socket. The
// heart is the acceptance property of the serving subsystem — a RunReport
// received through the daemon is bit-identical to the one a direct
// Executor call produces (modulo the cache provenance flags) — plus the
// auxiliary verbs, progress streaming, the per-connection in-flight bound,
// the scheduler's wire surface (priority classes, admission shedding,
// per-class health counters, starvation freedom), error answers, the
// checkpoint/resume surface (snapshot events, snapshot_dir persistence,
// severed connections — via tests/fault_injection.hpp), and the shutdown
// drain.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "api/executor.hpp"
#include "api/problems.hpp"
#include "api/registry.hpp"
#include "api/request.hpp"
#include "api/result_cache.hpp"
#include "api/serde.hpp"
#include "api/snapshot.hpp"
#include "fault_injection.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "util/json.hpp"

namespace moela::serve {
namespace {

using util::Json;

api::RunRequest zdt1_request(const std::string& algorithm,
                             std::uint64_t seed = 5) {
  api::RunRequest request;
  request.problem = "zdt1";
  request.problem_options.num_variables = 10;
  request.algorithm = algorithm;
  request.options.max_evaluations = 600;
  request.options.snapshot_interval = 200;
  request.options.seed = seed;
  request.options.population_size = 12;
  request.options.n_local = 3;
  return request;
}

/// A Server on 127.0.0.1:<ephemeral>, plus a connected Client.
struct ServerFixture {
  explicit ServerFixture(ServeConfig config = {}) {
    config.host = "127.0.0.1";
    config.port = 0;
    if (config.use_cache && config.cache_dir.empty()) {
      config.use_cache = false;  // tests opt into the cache explicitly
    }
    server = std::make_unique<Server>(config);
    server->start();
    client.connect("127.0.0.1", server->port());
  }

  std::unique_ptr<Server> server;
  Client client;
};

void expect_equal_modulo_cache(const api::RunReport& direct,
                               const api::RunReport& served) {
  EXPECT_EQ(served.algorithm, direct.algorithm);
  EXPECT_EQ(served.final_front, direct.final_front);
  EXPECT_EQ(served.final_objectives, direct.final_objectives);
  EXPECT_EQ(served.evaluations, direct.evaluations);
  ASSERT_EQ(served.snapshots.size(), direct.snapshots.size());
  for (std::size_t i = 0; i < served.snapshots.size(); ++i) {
    EXPECT_EQ(served.snapshots[i].evaluations,
              direct.snapshots[i].evaluations);
    EXPECT_EQ(served.snapshots[i].front, direct.snapshots[i].front);
  }
  // Wall-clock `seconds` fields are measurements of two separate
  // executions and are NOT compared; the serde layer's bit-exactness for
  // them is covered in test_serde.cpp.
  EXPECT_EQ(served.provenance.problem, direct.provenance.problem);
  EXPECT_EQ(served.provenance.algorithm_key,
            direct.provenance.algorithm_key);
  EXPECT_EQ(served.provenance.seed, direct.provenance.seed);
  EXPECT_EQ(served.provenance.knobs, direct.provenance.knobs);
  EXPECT_EQ(served.provenance.cache_key, direct.provenance.cache_key);
  EXPECT_EQ(served.provenance.cancelled, direct.provenance.cancelled);
  // cache_hit is intentionally NOT compared: it is transport provenance,
  // not run content.
}

// --- the acceptance property ---------------------------------------------

TEST(Serve, ReportsBitIdenticalToDirectExecutor) {
  const std::vector<api::RunRequest> requests = {
      zdt1_request("moela", 5), zdt1_request("nsga2", 5),
      zdt1_request("moead", 7)};

  api::Executor direct({.jobs = 2});
  const std::vector<api::RunReport> direct_reports =
      direct.run_all(requests);

  ServeConfig config;
  config.jobs = 2;
  ServerFixture fixture(config);
  const std::vector<api::RunReport> served_reports =
      fixture.client.run(requests);

  ASSERT_EQ(served_reports.size(), direct_reports.size());
  for (std::size_t i = 0; i < served_reports.size(); ++i) {
    expect_equal_modulo_cache(direct_reports[i], served_reports[i]);
    EXPECT_FALSE(served_reports[i].provenance.cache_hit);
  }
  EXPECT_EQ(fixture.server->runs_handled(), requests.size());
}

TEST(Serve, DesignsSurviveTheWire) {
  api::RunRequest request = zdt1_request("nsga2");
  request.need_designs = true;
  api::Executor direct({.jobs = 1});
  const api::RunReport direct_report = direct.run_all({request}).front();

  ServerFixture fixture;
  const api::RunReport served = fixture.client.run({request}).front();
  EXPECT_EQ(served.designs_as<std::vector<double>>(),
            direct_report.designs_as<std::vector<double>>());
}

TEST(Serve, RepeatedRequestIsServedFromCache) {
  const std::filesystem::path dir =
      std::filesystem::path(testing::TempDir()) / "moela-serve-cache";
  std::filesystem::remove_all(dir);
  ServeConfig config;
  config.use_cache = true;
  config.cache_dir = dir.string();
  ServerFixture fixture(config);

  const std::vector<api::RunRequest> requests = {zdt1_request("moela")};
  const api::RunReport cold = fixture.client.run(requests).front();
  EXPECT_FALSE(cold.provenance.cache_hit);
  const api::RunReport warm = fixture.client.run(requests).front();
  EXPECT_TRUE(warm.provenance.cache_hit);
  expect_equal_modulo_cache(cold, warm);

  // A second client shares the daemon's process-lifetime cache.
  Client other;
  other.connect("127.0.0.1", fixture.server->port());
  const api::RunReport shared = other.run(requests).front();
  EXPECT_TRUE(shared.provenance.cache_hit);
  expect_equal_modulo_cache(cold, shared);
}

// --- auxiliary verbs ------------------------------------------------------

TEST(Serve, PingAndListVerbs) {
  ServerFixture fixture;
  EXPECT_TRUE(fixture.client.ping());
  EXPECT_EQ(fixture.client.list_problems(), api::problem_names());

  const Json algorithms = fixture.client.list_algorithms();
  const auto names = api::registry().names();
  ASSERT_EQ(algorithms.as_array().size(), names.size());
  for (std::size_t i = 0; i < names.size(); ++i) {
    const Json& entry = algorithms.as_array()[i];
    EXPECT_EQ(entry.find("name")->as_string(), names[i]);
    const auto declared = api::registry().knob_keys(names[i]);
    ASSERT_EQ(entry.find("knobs")->as_array().size(), declared.size());
  }
}

TEST(Serve, CacheStatsVerb) {
  const std::filesystem::path dir =
      std::filesystem::path(testing::TempDir()) / "moela-serve-stats";
  std::filesystem::remove_all(dir);
  ServeConfig config;
  config.use_cache = true;
  config.cache_dir = dir.string();
  ServerFixture fixture(config);

  fixture.client.run({zdt1_request("moela")});
  fixture.client.run({zdt1_request("moela")});

  const Json response = fixture.client.cache_stats();
  const Json* cache = response.find("cache");
  ASSERT_NE(cache, nullptr);
  EXPECT_TRUE(cache->find("enabled")->as_bool());
  EXPECT_EQ(cache->find("stores")->as_u64(), 1u);
  EXPECT_EQ(cache->find("memory_hits")->as_u64(), 1u);
  EXPECT_EQ(response.find("runs_handled")->as_u64(), 2u);
}

TEST(Serve, HealthVerbReportsLoadAndCounters) {
  ServerFixture fixture;
  const Json cold = fixture.client.health();
  EXPECT_TRUE(cold.find("ok")->as_bool());
  EXPECT_TRUE(cold.find("accepting")->as_bool());
  EXPECT_EQ(cold.find("inflight")->as_u64(), 0u);
  EXPECT_EQ(cold.find("runs_handled")->as_u64(), 0u);
  EXPECT_GE(cold.find("jobs")->as_u64(), 1u);
  // Fleet operators tell builds and fresh (cold-cache) daemons apart by
  // these two fields.
  EXPECT_EQ(cold.find("version")->as_string(), kServerVersion);
  EXPECT_GE(cold.find("uptime_seconds")->as_double(), 0.0);
  ASSERT_NE(cold.find("cache"), nullptr);
  EXPECT_FALSE(cold.find("cache")->find("enabled")->as_bool());

  fixture.client.run({zdt1_request("moela")});
  const Json warm = fixture.client.health();
  EXPECT_EQ(warm.find("runs_handled")->as_u64(), 1u);
  EXPECT_EQ(warm.find("inflight")->as_u64(), 0u);
}

// --- progress streaming ---------------------------------------------------

TEST(Serve, StreamsProgressAndFinishedEvents) {
  ServerFixture fixture;
  std::vector<api::RunRequest> requests = {zdt1_request("moela"),
                                           zdt1_request("nsga2")};
  for (api::RunRequest& request : requests) {
    request.trace_id = "00deadbeef00cafe";
  }
  std::atomic<std::size_t> progress_events{0};
  std::atomic<std::size_t> finished_events{0};
  fixture.client.run(requests, /*stream_progress=*/true,
                     [&](const Json& event) {
                       const std::string kind =
                           event.find("event")->as_string();
                       // Every event carries the server-side monotonic
                       // elapsed_ms and the batch's trace id.
                       ASSERT_NE(event.find("elapsed_ms"), nullptr);
                       ASSERT_NE(event.find("trace"), nullptr);
                       EXPECT_EQ(event.find("trace")->as_string(),
                                 "00deadbeef00cafe");
                       if (kind == "finished") {
                         ++finished_events;
                         EXPECT_EQ(event.find("total")->as_u64(), 2u);
                       } else if (kind == "progress") {
                         ++progress_events;
                       }
                     });
  EXPECT_EQ(finished_events.load(), requests.size());
  // snapshot_interval 200 within 600 evals → at least one cadence event
  // per run.
  EXPECT_GT(progress_events.load(), 0u);
}

// --- cancellation ---------------------------------------------------------

TEST(Serve, CancelMidRunReturnsCancelledReportsAndFreesSlots) {
  ServeConfig config;
  config.jobs = 2;
  ServerFixture fixture(config);

  // Two effectively-endless runs with a tight snapshot cadence: the first
  // streamed progress event flips the control, the client interleaves the
  // cancel verb, and the daemon must stop BOTH in-flight runs at their
  // next budget check — long before their nominal budget. (moela, not
  // nsga2: the latter's internal generation cap would end the run
  // naturally and race the cancel on a slow machine.)
  std::vector<api::RunRequest> requests = {zdt1_request("moela", 1),
                                           zdt1_request("moela", 2)};
  for (auto& request : requests) {
    request.options.max_evaluations = 50000000;
    request.options.snapshot_interval = 200;
  }
  api::RunControl control;
  std::atomic<std::size_t> post_cancel_progress{0};
  const std::vector<api::RunReport> reports = fixture.client.run(
      requests, /*stream_progress=*/true,
      [&](const Json& event) {
        if (event.find("event")->as_string() != "progress") return;
        if (control.stop_requested()) {
          // The client promised to drop cadence events once the cancel
          // went out; anything that still reaches us is a bug.
          ++post_cancel_progress;
        }
        control.request_stop();
      },
      &control);

  ASSERT_EQ(reports.size(), 2u);
  for (const auto& report : reports) {
    EXPECT_TRUE(report.provenance.cancelled);
    EXPECT_LT(report.evaluations, 50000000u);
  }
  EXPECT_EQ(post_cancel_progress.load(), 0u);

  // Slots released, cancellations counted, and the daemon still serving.
  EXPECT_EQ(fixture.server->inflight_total(), 0u);
  EXPECT_EQ(fixture.server->runs_cancelled(), 2u);
  const Json health = fixture.client.health();
  EXPECT_TRUE(health.find("accepting")->as_bool());
  EXPECT_EQ(health.find("inflight")->as_u64(), 0u);
  EXPECT_EQ(health.find("runs_cancelled")->as_u64(), 2u);
  const api::RunReport after =
      fixture.client.run({zdt1_request("moela")}).front();
  EXPECT_FALSE(after.provenance.cancelled);
  EXPECT_EQ(after.evaluations, 600u);
}

TEST(Serve, CancelChasingItsRunDownThePipeStillLands) {
  // The adversarial ordering: the cancel line follows the run line with
  // no gap at all (raw socket, back-to-back sends). The server registers
  // the batch's control in handle_run — on the reader thread, before the
  // dispatcher can even be scheduled — so the chasing cancel MUST find
  // it; were registration left to the dispatcher, this cancel would be
  // lost and the batch would burn its full 50M-eval budget.
  ServerFixture fixture;
  fault::RawConnection raw(fixture.server->port());

  api::RunRequest request = zdt1_request("moela", 1);
  request.options.max_evaluations = 50000000;
  Json requests_json = Json::array();
  requests_json.append(api::request_to_json(request));
  Json run = Json::object();
  run.set("id", 1)
      .set("verb", "run")
      .set("requests", std::move(requests_json))
      .set("progress", false);
  Json cancel = Json::object();
  cancel.set("id", 2).set("verb", "cancel").set("target", 1);
  ASSERT_TRUE(raw.send(run.dump() + "\n" + cancel.dump()));

  bool saw_cancel_ack = false;
  std::optional<Json> final_response;
  std::string line;
  while (!final_response.has_value() && raw.read_line(line)) {
    if (line.empty()) continue;
    const auto message = Json::try_parse(line, nullptr);
    ASSERT_TRUE(message.has_value()) << line;
    const std::uint64_t id = message->find("id")->as_u64();
    if (id == 2) {
      EXPECT_TRUE(message->find("ok")->as_bool());
      EXPECT_TRUE(message->find("cancelled")->as_bool());
      saw_cancel_ack = true;
    } else if (id == 1 && message->find("event") == nullptr) {
      final_response = *message;
    }
  }

  EXPECT_TRUE(saw_cancel_ack);
  ASSERT_TRUE(final_response.has_value());
  ASSERT_TRUE(final_response->find("ok")->as_bool());
  const Json& reports = *final_response->find("reports");
  ASSERT_EQ(reports.as_array().size(), 1u);
  const api::RunReport report =
      api::report_from_json(reports.as_array()[0]);
  EXPECT_TRUE(report.provenance.cancelled);
  EXPECT_LT(report.evaluations, 50000000u);
  EXPECT_EQ(fixture.server->inflight_total(), 0u);
}

TEST(Serve, CancelAfterCompletionIsANoOp) {
  ServerFixture fixture;
  const api::RunReport report =
      fixture.client.run({zdt1_request("moela")}).front();
  EXPECT_FALSE(report.provenance.cancelled);
  const std::uint64_t run_id = fixture.client.last_run_id();
  EXPECT_GT(run_id, 0u);

  // The batch already answered: cancel finds nothing, reports the no-op,
  // and is idempotent — for the finished id and for ids never submitted.
  EXPECT_FALSE(fixture.client.cancel(run_id));
  EXPECT_FALSE(fixture.client.cancel(run_id));
  EXPECT_FALSE(fixture.client.cancel(424242));
  EXPECT_EQ(fixture.server->runs_cancelled(), 0u);

  // The connection survives and the daemon keeps serving.
  EXPECT_TRUE(fixture.client.ping());
  EXPECT_EQ(fixture.client.run({zdt1_request("nsga2")}).front().evaluations,
            600u);
}

// --- error answers --------------------------------------------------------

TEST(Serve, RejectsUnknownAlgorithmAndMalformedBatches) {
  ServerFixture fixture;
  api::RunRequest bad = zdt1_request("moela");
  bad.algorithm = "no-such-algorithm";
  EXPECT_THROW(fixture.client.run({bad}), RemoteError);
  EXPECT_THROW(fixture.client.run({}), RemoteError);
  // The connection survives an error answer.
  EXPECT_TRUE(fixture.client.ping());
  const api::RunReport ok = fixture.client.run({zdt1_request("moela")})
                                .front();
  EXPECT_EQ(ok.evaluations, 600u);
}

TEST(Serve, InflightBoundRejectsOversizedBatches) {
  ServeConfig config;
  config.max_inflight = 1;
  ServerFixture fixture(config);
  EXPECT_THROW(
      fixture.client.run({zdt1_request("moela"), zdt1_request("nsga2")}),
      RemoteError);
  // A batch within the bound still runs.
  EXPECT_EQ(fixture.client.run({zdt1_request("moela")}).size(), 1u);
}

// --- the scheduler through the wire ---------------------------------------

/// Polls the health verb until `predicate(health)` holds (the test timeout
/// is the backstop against a daemon that never gets there).
template <typename Predicate>
Json wait_for_health(Client& client, Predicate predicate) {
  for (;;) {
    Json health = client.health();
    if (predicate(health)) return health;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

TEST(Serve, PriorityIsEchoedInProvenanceEvenOnCacheReplay) {
  const std::filesystem::path dir =
      std::filesystem::path(testing::TempDir()) / "moela-serve-priority";
  std::filesystem::remove_all(dir);
  ServeConfig config;
  config.use_cache = true;
  config.cache_dir = dir.string();
  ServerFixture fixture(config);

  const std::vector<api::RunRequest> requests = {zdt1_request("moela")};
  const api::RunReport cold = fixture.client
                                  .run(requests, false, nullptr, nullptr,
                                       sched::Priority::kBatch)
                                  .front();
  EXPECT_FALSE(cold.provenance.cache_hit);
  EXPECT_EQ(cold.provenance.priority, "batch");

  // The replay answers from the cache, but the class echoed is THIS
  // request's — priority is scheduling provenance, never run content, and
  // it never entered the cache key.
  const api::RunReport warm = fixture.client
                                  .run(requests, false, nullptr, nullptr,
                                       sched::Priority::kInteractive)
                                  .front();
  EXPECT_TRUE(warm.provenance.cache_hit);
  EXPECT_EQ(warm.provenance.priority, "interactive");
  EXPECT_EQ(warm.provenance.cache_key, cold.provenance.cache_key);

  // The unlabeled verb defaults to normal.
  const api::RunReport unlabeled = fixture.client.run(requests).front();
  EXPECT_EQ(unlabeled.provenance.priority, "normal");
}

TEST(Serve, TraceIsEchoedInProvenanceEvenOnCacheReplay) {
  const std::filesystem::path dir =
      std::filesystem::path(testing::TempDir()) / "moela-serve-trace";
  std::filesystem::remove_all(dir);
  ServeConfig config;
  config.use_cache = true;
  config.cache_dir = dir.string();
  ServerFixture fixture(config);

  std::vector<api::RunRequest> requests = {zdt1_request("moela")};
  requests.front().trace_id = "1111111111111111";
  const api::RunReport cold = fixture.client.run(requests).front();
  EXPECT_FALSE(cold.provenance.cache_hit);
  EXPECT_EQ(cold.provenance.trace_id, "1111111111111111");

  // The replay answers from the cache, but the trace echoed is THIS
  // request's — like priority, trace is transport provenance: it never
  // entered the cache key and never alters run content.
  requests.front().trace_id = "2222222222222222";
  const api::RunReport warm = fixture.client.run(requests).front();
  EXPECT_TRUE(warm.provenance.cache_hit);
  EXPECT_EQ(warm.provenance.trace_id, "2222222222222222");
  EXPECT_EQ(warm.provenance.cache_key, cold.provenance.cache_key);
  // And the reports themselves are bit-identical: the differing trace
  // lives in provenance only.
  expect_equal_modulo_cache(cold, warm);

  // No trace minted -> no trace echoed (pre-telemetry clients see no new
  // fields).
  requests.front().trace_id.clear();
  const api::RunReport untraced = fixture.client.run(requests).front();
  EXPECT_TRUE(untraced.provenance.trace_id.empty());
}

TEST(Serve, MetricsVerbSnapshotsCountersAndLatency) {
  ServerFixture fixture;
  fixture.client.ping();
  fixture.client.run({zdt1_request("moela"), zdt1_request("nsga2")});

  const Json response = fixture.client.metrics();
  EXPECT_TRUE(response.find("ok")->as_bool());
  EXPECT_EQ(response.find("version")->as_string(), kServerVersion);
  EXPECT_GE(response.find("uptime_seconds")->as_double(), 0.0);

  const Json* metrics = response.find("metrics");
  ASSERT_NE(metrics, nullptr);

  // Per-verb request counters: exactly the traffic this test generated.
  const Json* requests_total = metrics->find("moela_requests_total");
  ASSERT_NE(requests_total, nullptr);
  std::uint64_t ping_count = 0, run_count = 0;
  for (const Json& series : requests_total->find("series")->as_array()) {
    const std::string verb =
        series.find("labels")->find("verb")->as_string();
    if (verb == "ping") ping_count = series.find("value")->as_u64();
    if (verb == "run") run_count = series.find("value")->as_u64();
  }
  EXPECT_EQ(ping_count, 1u);
  EXPECT_EQ(run_count, 1u);

  // Per-verb latency histograms ride alongside the counters. (Counts
  // observe at dispatch end, so this snapshot excludes the in-flight
  // metrics request itself.)
  const Json* latency = metrics->find("moela_request_seconds");
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->find("type")->as_string(), "histogram");

  // Per-algorithm wall-time histograms: one executed run per algorithm.
  const Json* run_seconds = metrics->find("moela_run_seconds");
  ASSERT_NE(run_seconds, nullptr);
  std::uint64_t observed_runs = 0;
  for (const Json& series : run_seconds->find("series")->as_array()) {
    observed_runs += series.find("count")->as_u64();
  }
  EXPECT_EQ(observed_runs, 2u);

  // Per-class queue-wait histograms exist for all three classes from
  // startup (pre-resolved handles), and the normal class saw this batch.
  const Json* queue_wait = metrics->find("moela_sched_queue_wait_seconds");
  ASSERT_NE(queue_wait, nullptr);
  std::uint64_t normal_waits = 0;
  for (const Json& series : queue_wait->find("series")->as_array()) {
    if (series.find("labels")->find("class")->as_string() == "normal") {
      normal_waits = series.find("count")->as_u64();
    }
  }
  EXPECT_EQ(normal_waits, 2u);
}

TEST(Serve, MetricsCountCacheTraffic) {
  const std::filesystem::path dir =
      std::filesystem::path(testing::TempDir()) / "moela-serve-metric-cache";
  std::filesystem::remove_all(dir);
  ServeConfig config;
  config.use_cache = true;
  config.cache_dir = dir.string();
  ServerFixture fixture(config);

  fixture.client.run({zdt1_request("moela")});  // miss + store
  fixture.client.run({zdt1_request("moela")});  // memory hit

  const Json response = fixture.client.metrics();
  const Json* lookups =
      response.find("metrics")->find("moela_cache_lookups_total");
  ASSERT_NE(lookups, nullptr);
  std::uint64_t misses = 0, memory_hits = 0;
  for (const Json& series : lookups->find("series")->as_array()) {
    const std::string result =
        series.find("labels")->find("result")->as_string();
    if (result == "miss") misses = series.find("value")->as_u64();
    if (result == "hit_memory") memory_hits = series.find("value")->as_u64();
  }
  EXPECT_EQ(misses, 1u);
  EXPECT_EQ(memory_hits, 1u);
  const Json* stores =
      response.find("metrics")->find("moela_cache_stores_total");
  ASSERT_NE(stores, nullptr);
  EXPECT_EQ(
      stores->find("series")->as_array().front().find("value")->as_u64(),
      1u);
}

TEST(Serve, MalformedPriorityIsRejected) {
  ServerFixture fixture;
  fault::RawConnection raw(fixture.server->port());

  Json requests_json = Json::array();
  requests_json.append(api::request_to_json(zdt1_request("moela")));
  Json run = Json::object();
  run.set("id", 1)
      .set("verb", "run")
      .set("requests", std::move(requests_json))
      .set("priority", "urgent");
  ASSERT_TRUE(raw.send(run.dump()));

  std::string line;
  ASSERT_TRUE(raw.read_line(line));
  const auto response = Json::try_parse(line, nullptr);
  ASSERT_TRUE(response.has_value()) << line;
  EXPECT_FALSE(response->find("ok")->as_bool());
  const std::string error = response->find("error")->as_string();
  EXPECT_NE(error.find("bad priority 'urgent'"), std::string::npos) << error;

  // The typo was rejected at the door: nothing ran, nothing leaked.
  EXPECT_EQ(fixture.server->inflight_total(), 0u);
  EXPECT_EQ(fixture.server->runs_handled(), 0u);
}

TEST(Serve, HealthReportsPerClassSchedulerCounters) {
  ServerFixture fixture;
  const Json cold = fixture.client.health();
  EXPECT_EQ(cold.find("queued")->as_u64(), 0u);
  EXPECT_EQ(cold.find("running")->as_u64(), 0u);
  EXPECT_GE(cold.find("max_queued")->as_u64(), 1u);
  const Json* classes = cold.find("classes");
  ASSERT_NE(classes, nullptr);
  for (const char* name : {"interactive", "normal", "batch"}) {
    const Json* cls = classes->find(name);
    ASSERT_NE(cls, nullptr) << name;
    EXPECT_EQ(cls->find("queued")->as_u64(), 0u) << name;
    EXPECT_EQ(cls->find("running")->as_u64(), 0u) << name;
    EXPECT_EQ(cls->find("completed")->as_u64(), 0u) << name;
    EXPECT_EQ(cls->find("shed")->as_u64(), 0u) << name;
  }

  fixture.client.run({zdt1_request("moela")}, false, nullptr, nullptr,
                     sched::Priority::kBatch);
  const Json warm = fixture.client.health();
  const Json* batch = warm.find("classes")->find("batch");
  EXPECT_EQ(batch->find("completed")->as_u64(), 1u);
  EXPECT_EQ(warm.find("classes")->find("normal")->find("completed")->as_u64(),
            0u);
}

TEST(Serve, InteractiveOvertakesSaturatingBatchSweep) {
  // One worker, a 12-run batch sweep of ~0.2 s runs: the sweep holds the
  // QUEUE, not the workers, so an interactive run admitted behind it
  // starts within one weighted-round-robin cycle — it must answer while
  // the sweep is still draining, not after.
  ServeConfig config;
  config.jobs = 1;
  ServerFixture fixture(config);

  std::vector<api::RunRequest> sweep;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    api::RunRequest request = zdt1_request("moela", seed);
    request.options.max_evaluations = 50000000;
    request.options.max_seconds = 0.2;  // wall-clock bounded, machine-proof
    request.options.snapshot_interval = 200;
    sweep.push_back(std::move(request));
  }

  std::vector<api::RunReport> sweep_reports;
  std::thread sweeper([&] {
    Client batch_client;
    batch_client.connect("127.0.0.1", fixture.server->port());
    sweep_reports = batch_client.run(sweep, false, nullptr, nullptr,
                                     sched::Priority::kBatch);
  });

  // The sweep is saturating: one run in flight, backlog queued.
  wait_for_health(fixture.client, [](const Json& health) {
    return util::u64_field_or(health, "queued", 0) > 0;
  });

  const api::RunReport interactive =
      fixture.client
          .run({zdt1_request("moela", 99)}, false, nullptr, nullptr,
               sched::Priority::kInteractive)
          .front();
  EXPECT_FALSE(interactive.provenance.cancelled);
  EXPECT_EQ(interactive.evaluations, 600u);
  EXPECT_EQ(interactive.provenance.priority, "interactive");

  // The witness: when the interactive answer arrived, the batch sweep had
  // NOT drained — only a bounded prefix of it had completed.
  const Json during = fixture.client.health();
  const Json* classes = during.find("classes");
  ASSERT_NE(classes, nullptr);
  EXPECT_EQ(classes->find("interactive")->find("completed")->as_u64(), 1u);
  EXPECT_LT(classes->find("batch")->find("completed")->as_u64(),
            sweep.size());

  sweeper.join();
  ASSERT_EQ(sweep_reports.size(), sweep.size());
  for (const api::RunReport& report : sweep_reports) {
    EXPECT_EQ(report.provenance.priority, "batch");
  }
  EXPECT_EQ(fixture.server->inflight_total(), 0u);
}

TEST(Serve, QueueFullShedsWithStructuredOverloadAndNoSlotLeak) {
  ServeConfig config;
  config.jobs = 1;
  config.max_queued = 2;
  ServerFixture fixture(config);

  api::RunRequest endless = zdt1_request("moela", 1);
  endless.options.max_evaluations = 50000000;
  endless.options.snapshot_interval = 200;

  // One endless run OCCUPIES the worker (running, not queued — capacity
  // in use is not backlog) . . .
  api::RunControl occupier_control;
  std::vector<api::RunReport> occupier_reports;
  std::thread occupier([&] {
    Client client;
    client.connect("127.0.0.1", fixture.server->port());
    occupier_reports =
        client.run({endless}, false, nullptr, &occupier_control);
  });
  wait_for_health(fixture.client, [](const Json& health) {
    return util::u64_field_or(health, "running", 0) == 1;
  });

  // . . . two more fill the queue to max_queued . . .
  api::RunControl backlog_control;
  std::vector<api::RunReport> backlog_reports;
  std::thread backlog([&] {
    api::RunRequest a = endless, b = endless;
    a.options.seed = 2;
    b.options.seed = 3;
    Client client;
    client.connect("127.0.0.1", fixture.server->port());
    backlog_reports =
        client.run({a, b}, false, nullptr, &backlog_control);
  });
  wait_for_health(fixture.client, [](const Json& health) {
    return util::u64_field_or(health, "queued", 0) == 2;
  });

  // . . . so the next batch is shed whole, with the structured facts a
  // client backs off on instead of string-matching.
  try {
    fixture.client.run({zdt1_request("moela", 9)});
    FAIL() << "expected the daemon to shed the batch";
  } catch (const OverloadedError& e) {
    EXPECT_EQ(e.queue_depth(), 2u);
    EXPECT_EQ(e.retry_after_ms(), 150u);  // 50 ms * (1 + depth 2 / worker 1)
    EXPECT_NE(std::string(e.what()).find("overloaded"), std::string::npos)
        << e.what();
  }
  const Json shed_health = fixture.client.health();
  EXPECT_EQ(
      shed_health.find("classes")->find("normal")->find("shed")->as_u64(),
      1u);
  EXPECT_EQ(shed_health.find("queued")->as_u64(), 2u);  // untouched backlog

  // Shedding leaked nothing: drain the saturating work, then the same
  // request is admitted and completes.
  occupier_control.request_stop();
  backlog_control.request_stop();
  occupier.join();
  backlog.join();
  ASSERT_EQ(occupier_reports.size(), 1u);
  EXPECT_TRUE(occupier_reports.front().provenance.cancelled);
  ASSERT_EQ(backlog_reports.size(), 2u);

  EXPECT_EQ(fixture.server->inflight_total(), 0u);
  const api::RunReport after =
      fixture.client.run({zdt1_request("moela", 9)}).front();
  EXPECT_FALSE(after.provenance.cancelled);
  EXPECT_EQ(after.evaluations, 600u);
  const Json settled = fixture.client.health();
  EXPECT_EQ(settled.find("queued")->as_u64(), 0u);
  EXPECT_EQ(settled.find("running")->as_u64(), 0u);
  EXPECT_EQ(settled.find("inflight")->as_u64(), 0u);
}

// --- checkpoint / resume --------------------------------------------------

TEST(Serve, StreamedSnapshotResumesBitIdentically) {
  ServerFixture fixture;

  // The uninterrupted reference: the same request with checkpointing off.
  api::RunRequest request = zdt1_request("moela");
  const api::RunReport reference = fixture.client.run({request}).front();

  // A checkpointing run streams snapshot-bearing events at the cadence —
  // even with progress streaming OFF, because the snapshot is the client's
  // only resume handle and must not depend on a human watching a spinner.
  request.checkpoint = true;
  std::shared_ptr<const api::RunSnapshot> harvested;
  std::atomic<std::size_t> snapshot_events{0};
  fixture.client.run({request}, /*stream_progress=*/false,
                     [&](const Json& event) {
                       const Json* snapshot = event.find("snapshot");
                       if (snapshot == nullptr) return;
                       ++snapshot_events;
                       if (harvested == nullptr) {
                         harvested =
                             std::make_shared<const api::RunSnapshot>(
                                 api::snapshot_from_json(*snapshot));
                       }
                     });
  // snapshot_interval 200 in a 600-eval budget: at least the first two
  // cadence points carry a snapshot (the final one rides the finish).
  EXPECT_GE(snapshot_events.load(), 2u);
  ASSERT_NE(harvested, nullptr);
  EXPECT_EQ(harvested->fingerprint, api::snapshot_fingerprint(request));
  EXPECT_GT(harvested->evaluations, 0u);
  EXPECT_LT(harvested->evaluations, 600u);

  // Resuming from the harvested mid-run snapshot — journal replay for the
  // prefix, live evaluation for the rest — lands on the bit-identical
  // report, and the daemon counts the resume.
  request.resume = harvested;
  const api::RunReport resumed = fixture.client.run({request}).front();
  EXPECT_FALSE(resumed.provenance.cancelled);
  expect_equal_modulo_cache(reference, resumed);
  const Json health = fixture.client.health();
  EXPECT_GE(health.find("runs_resumed")->as_u64(), 1u);
  // No snapshot_dir on this daemon: nothing was persisted.
  EXPECT_EQ(health.find("snapshots_written")->as_u64(), 0u);
}

TEST(Serve, SnapshotDirPersistsAndAutoResumes) {
  const std::filesystem::path dir =
      std::filesystem::path(testing::TempDir()) / "moela-serve-snapshots";
  std::filesystem::remove_all(dir);
  ServeConfig config;
  config.snapshot_dir = dir.string();
  ServerFixture fixture(config);

  api::RunRequest request = zdt1_request("moela");
  request.checkpoint = true;

  // A checkpointing run that completes cleans up after itself: snapshots
  // were written at the cadence, and the file is gone once the report is
  // final (a finished run must never be "resumed").
  std::shared_ptr<const api::RunSnapshot> harvested;
  const api::RunReport reference =
      fixture.client
          .run({request}, /*stream_progress=*/false,
               [&](const Json& event) {
                 if (const Json* snapshot = event.find("snapshot");
                     snapshot != nullptr && harvested == nullptr) {
                   harvested = std::make_shared<const api::RunSnapshot>(
                       api::snapshot_from_json(*snapshot));
                 }
               })
          .front();
  ASSERT_NE(harvested, nullptr);
  const Json after_complete = fixture.client.health();
  EXPECT_GE(after_complete.find("snapshots_written")->as_u64(), 1u);
  EXPECT_EQ(after_complete.find("runs_resumed")->as_u64(), 0u);
  const std::filesystem::path snap_file =
      dir / (api::ResultCache::hash_key(api::snapshot_fingerprint(request)) +
             ".snap");
  EXPECT_FALSE(std::filesystem::exists(snap_file));

  // A daemon SIGKILLed mid-run leaves exactly this state behind: the
  // latest cadence snapshot sitting in snapshot_dir under the
  // fingerprint-hashed name. Recreate it from the harvested mid-run
  // snapshot, resubmit the same request with no resume payload, and the
  // Executor must find the file, resume from it, finish bit-identically,
  // and delete it.
  std::filesystem::create_directories(dir);
  {
    std::ofstream out(snap_file, std::ios::binary);
    out << api::snapshot_to_text(*harvested);
  }
  const api::RunReport resumed = fixture.client.run({request}).front();
  expect_equal_modulo_cache(reference, resumed);
  const Json after_resume = fixture.client.health();
  EXPECT_GE(after_resume.find("runs_resumed")->as_u64(), 1u);
  EXPECT_FALSE(std::filesystem::exists(snap_file));

  // A stale snapshot — wrong fingerprint for this request — is ignored,
  // not replayed: a different seed runs fresh and still lands exactly on
  // its inline twin.
  api::RunRequest other = zdt1_request("moela", 11);
  other.checkpoint = true;
  const std::filesystem::path other_file =
      dir / (api::ResultCache::hash_key(api::snapshot_fingerprint(other)) +
             ".snap");
  {
    std::ofstream out(other_file, std::ios::binary);
    out << api::snapshot_to_text(*harvested);  // fingerprint mismatch
  }
  api::Executor inline_executor({.jobs = 1});
  api::RunRequest other_plain = zdt1_request("moela", 11);
  const api::RunReport other_direct =
      inline_executor.run_all({other_plain}).front();
  const api::RunReport other_served = fixture.client.run({other}).front();
  expect_equal_modulo_cache(other_direct, other_served);
}

TEST(Serve, SeveredConnectionMidBatchLeavesDaemonServing) {
  ServeConfig config;
  config.jobs = 2;
  ServerFixture fixture(config);

  // A raw client submits a bounded checkpointing run with progress on,
  // reads one cadence event to prove the batch is mid-flight, then severs
  // the connection with no goodbye — the crashed-coordinator case.
  {
    fault::RawConnection raw(fixture.server->port());
    api::RunRequest request = zdt1_request("moela", 3);
    request.checkpoint = true;
    Json requests_json = Json::array();
    requests_json.append(api::request_to_json(request));
    Json run = Json::object();
    run.set("id", 1)
        .set("verb", "run")
        .set("requests", std::move(requests_json))
        .set("progress", true);
    ASSERT_TRUE(raw.send(run.dump()));
    fault::FaultTrigger sever_trigger(1);
    std::string line;
    while (raw.read_line(line)) {
      if (line.empty()) continue;
      const auto message = Json::try_parse(line, nullptr);
      ASSERT_TRUE(message.has_value()) << line;
      if (message->find("event") != nullptr && sever_trigger.fire()) break;
    }
    ASSERT_TRUE(sever_trigger.fired()) << "no event before the connection "
                                          "would have closed";
    raw.sever();
  }

  // The daemon survives the abandonment: the orphaned batch runs to
  // completion server-side, slots drain to zero, and a fresh client gets
  // full service.
  const Json drained = wait_for_health(fixture.client, [](const Json& h) {
    return util::u64_field_or(h, "inflight", 0) == 0 &&
           util::u64_field_or(h, "runs_handled", 0) >= 1;
  });
  EXPECT_TRUE(drained.find("accepting")->as_bool());
  const api::RunReport after =
      fixture.client.run({zdt1_request("nsga2")}).front();
  EXPECT_EQ(after.evaluations, 600u);
}

// --- shutdown -------------------------------------------------------------

TEST(Serve, ShutdownVerbDrainsTheServer) {
  ServerFixture fixture;
  fixture.client.run({zdt1_request("moela")});
  fixture.client.shutdown_server();
  // wait() must return: accept loop closed, connections nudged, batches
  // done. (A hang here is the test failure, via the test timeout.)
  fixture.server->wait();
  EXPECT_TRUE(fixture.server->shutdown_requested());
  EXPECT_EQ(fixture.server->runs_handled(), 1u);
  // New connections are refused after the drain.
  Client late;
  EXPECT_THROW(late.connect("127.0.0.1", fixture.server->port()),
               std::runtime_error);
}

TEST(Serve, ProgrammaticShutdownUnblocksIdleConnections) {
  ServerFixture fixture;
  EXPECT_TRUE(fixture.client.ping());  // connection is established and idle
  fixture.server->request_shutdown();
  fixture.server->wait();  // must not hang on the idle reader
  EXPECT_THROW(fixture.client.run({zdt1_request("moela")}),
               std::runtime_error);
}

}  // namespace
}  // namespace moela::serve
