// Random-forest regression: bagged CART trees with per-node feature
// subsampling (Breiman 2001).
//
// This is the model behind MOELA's learned evaluation function Eval
// (Sec. IV.B: "we employ a random forest model, which is an ensemble model
// that uses the average output from a collection of decision trees").
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "ml/dataset.hpp"
#include "ml/decision_tree.hpp"
#include "util/rng.hpp"

namespace moela::ml {

struct ForestConfig {
  std::size_t num_trees = 24;
  /// Features per split; 0 = max(1, num_features / 3), the regression
  /// default.
  std::size_t max_features = 0;
  std::size_t max_depth = 16;
  std::size_t min_samples_leaf = 2;
  std::size_t min_samples_split = 4;
  /// Bootstrap-sample fraction of the training set per tree.
  double subsample = 1.0;
};

class RandomForest {
 public:
  explicit RandomForest(ForestConfig config = {}) : config_(config) {}

  /// Fits all trees on bootstrap samples of `data`.
  void fit(const Dataset& data, util::Rng& rng);

  /// Mean prediction across trees.
  double predict(std::span<const double> features) const;

  /// Batch prediction.
  std::vector<double> predict_all(
      const std::vector<std::vector<double>>& rows) const;

  bool trained() const { return !trees_.empty(); }
  std::size_t num_trees() const { return trees_.size(); }

  /// Training-set R^2 (coefficient of determination); a quick sanity signal
  /// used by tests and diagnostics.
  static double r_squared(const RandomForest& model, const Dataset& data);

 private:
  ForestConfig config_;
  std::vector<DecisionTree> trees_;
};

}  // namespace moela::ml
