// Fixture: raw std synchronization vocabulary outside the annotated
// wrapper header. Each token is invisible to Clang Thread Safety
// Analysis, so the naked-mutex rule must flag all of them.
#include <condition_variable>
#include <mutex>

namespace moela::api {

class Fixture {
 public:
  void poke() {
    std::lock_guard<std::mutex> lock(mutex_);
    ++value_;
    cv_.notify_one();
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  int value_ = 0;
};

}  // namespace moela::api
