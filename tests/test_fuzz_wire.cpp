// Deterministic fuzz smoke for the wire surface: mutated line-JSON frames
// are fed to util::Json parsing and the serve-protocol request decoders for
// a bounded iteration count. The contract under fuzz: no crash, no hang,
// no sanitizer report (CI runs this suite under ASan+UBSan and TSan), and
// malformed input is rejected with JsonError/false — never accepted
// half-parsed. Seeds are fixed, so a failure reproduces exactly.
#include <gtest/gtest.h>

#include <cstdint>
#include <iterator>
#include <string>
#include <vector>

#include "api/request.hpp"
#include "api/serde.hpp"
#include "api/snapshot.hpp"
#include "serve/protocol.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace moela {
namespace {

using util::Json;

// Valid frames drawn from docs/protocol.md — mutations start from realistic
// input so they explore deep parser states, not just the first bad byte.
const char* const kSeedFrames[] = {
    R"({"id":1,"verb":"ping"})",
    R"({"id":2,"verb":"list_algorithms"})",
    R"({"id":4,"verb":"cache_stats"})",
    R"({"id":6,"verb":"health"})",
    R"({"id":7,"verb":"cancel","target":5})",
    R"({"id":8,"verb":"shutdown"})",
    R"({"id":5,"verb":"run","progress":true,"requests":[{"problem":"zdt1",)"
    R"("algorithm":"moela","options":{"max_evaluations":2000,"seed":41,)"
    R"("max_seconds":"0x1.5555555555555p-2","knobs":{"moela.delta":)"
    R"("0x1.ccccccccccccdp-1"}},"problem_options":{"num_objectives":2,)"
    R"("num_variables":30,"seed":3,"app":"BFS","small_platform":false},)"
    R"("label":"fuzz","need_designs":true,"replicates":3}]})",
    R"({"id":5,"event":"progress","label":"fuzz","algorithm":"moela",)"
    R"("evaluations":100,"max_evaluations":2000,"seconds":"0x1p-3"})",
    R"({"id":5,"ok":true,"reports":[{"algorithm":"moela","evaluations":7,)"
    R"("seconds":"0x1.8p+1","front":[["0x1p+0","0x1p-1"]],"trace":[]}]})",
    R"([0.125,1e-3,123456789012345678,-0.0,"0x1.91eb851eb851fp+1",null])",
    R"({"nested":{"a":[{"b":[{"c":[1,2,3]}]}]},"u":"é😀"})",
};

std::string mutate(const std::string& input, util::Rng& rng) {
  std::string out = input;
  const int edits = 1 + static_cast<int>(rng.below(4));
  for (int e = 0; e < edits; ++e) {
    if (out.empty()) {
      out.push_back(static_cast<char>(rng.below(256)));
      continue;
    }
    switch (rng.below(5)) {
      case 0:  // flip one byte
        out[rng.below(out.size())] =
            static_cast<char>(rng.below(256));
        break;
      case 1:  // insert a structural byte where it hurts
        out.insert(out.begin() + static_cast<std::ptrdiff_t>(
                                     rng.below(out.size() + 1)),
                   "{}[]\",:\\0x"[rng.below(10)]);
        break;
      case 2:  // delete a short span
        {
          const std::size_t at = rng.below(out.size());
          out.erase(at, 1 + rng.below(4));
        }
        break;
      case 3:  // truncate
        out.resize(rng.below(out.size() + 1));
        break;
      case 4:  // splice a random seed frame's tail onto a prefix
        {
          const std::string& other =
              kSeedFrames[rng.below(std::size(kSeedFrames))];
          const std::size_t cut = rng.below(out.size() + 1);
          out = out.substr(0, cut) +
                std::string(other).substr(
                    rng.below(std::string(other).size() + 1));
        }
        break;
    }
  }
  return out;
}

TEST(FuzzWire, JsonParserSurvivesMutatedFrames) {
  util::Rng rng(0xF00DD00Dull);
  std::size_t accepted = 0;
  for (int i = 0; i < 20000; ++i) {
    const std::string& seed = kSeedFrames[rng.below(std::size(kSeedFrames))];
    const std::string frame = mutate(seed, rng);
    std::string error;
    const auto parsed = Json::try_parse(frame, &error);
    if (!parsed) {
      EXPECT_FALSE(error.empty()) << "rejection must carry a message";
      continue;
    }
    ++accepted;
    // Anything accepted must round-trip deterministically: dump is a fixed
    // point after one hop.
    const std::string once = parsed->dump();
    const std::string twice = Json::parse(once).dump();
    ASSERT_EQ(once, twice) << frame;
  }
  // Mutations keep many frames valid; make sure the deep-parse branch
  // actually ran instead of every input dying in the tokenizer.
  EXPECT_GT(accepted, 100u);
}

TEST(FuzzWire, RequestDecoderSurvivesMutatedFrames) {
  util::Rng rng(0xCAFEF00Dull);
  const std::string run_frame = kSeedFrames[6];
  std::size_t decoded = 0;
  for (int i = 0; i < 5000; ++i) {
    const std::string frame = mutate(run_frame, rng);
    const auto parsed = Json::try_parse(frame);
    if (!parsed) continue;
    const Json* requests = parsed->find("requests");
    if (requests == nullptr || !requests->is_array()) continue;
    for (const Json& entry : requests->as_array()) {
      try {
        const api::RunRequest request = api::request_from_json(entry);
        // A decoded request must survive keying and re-encoding.
        (void)request.cache_key();
        (void)api::request_to_json(request).dump();
        ++decoded;
      } catch (const util::JsonError&) {
        // Expected rejection path for malformed requests.
      }
    }
  }
  EXPECT_GT(decoded, 50u);
}

TEST(FuzzWire, SnapshotDecoderSurvivesMutatedBlobs) {
  // The checkpoint decoder guards the resume path: a truncated or mutated
  // snapshot file (crashed daemon, torn disk, hostile client) must be a
  // clean JsonError — never a crash, never a half-accepted journal that
  // would replay a run from garbage.
  api::RunRequest request;
  request.problem = "zdt1";
  request.problem_options.num_variables = 10;
  request.algorithm = "moela";
  request.options.max_evaluations = 16;
  request.options.seed = 7;
  api::RunSnapshot seed_snapshot;
  seed_snapshot.fingerprint = api::snapshot_fingerprint(request);
  seed_snapshot.journal = {{0.5, 2.25}, {0.125, 3.0}, {1.0 / 3.0, 0.75}};
  seed_snapshot.evaluations = seed_snapshot.journal.size();
  const std::string seed_text = api::snapshot_to_text(seed_snapshot);

  // The unmutated seed must decode — a broken happy path would make every
  // mutant's rejection vacuous.
  EXPECT_EQ(api::snapshot_from_text(seed_text).journal,
            seed_snapshot.journal);

  util::Rng rng(0xD15EA5E5ull);
  std::size_t rejected = 0;
  for (int i = 0; i < 30000; ++i) {
    const std::string blob = mutate(seed_text, rng);
    try {
      const api::RunSnapshot snapshot = api::snapshot_from_text(blob);
      // The FNV checksum over the canonical payload makes surviving a
      // content mutation astronomically unlikely: anything accepted must
      // be internally consistent and a byte-exact round-trip fixed point.
      ASSERT_EQ(snapshot.evaluations, snapshot.journal.size()) << blob;
      const std::string re = api::snapshot_to_text(snapshot);
      ASSERT_EQ(api::snapshot_from_text(re).journal, snapshot.journal)
          << blob;
    } catch (const util::JsonError&) {
      ++rejected;  // the only acceptable failure mode
    }
  }
  EXPECT_GT(rejected, 25000u);
}

TEST(FuzzWire, EndpointParserSurvivesMutatedSpecs) {
  util::Rng rng(0xBEEFCAFEull);
  const std::string seeds[] = {"127.0.0.1:7313", ":7313", "host",  "7313",
                               "[::1]:7313",     "a:b:c", ":::::", ""};
  for (int i = 0; i < 5000; ++i) {
    std::string spec = mutate(seeds[rng.below(std::size(seeds))], rng);
    std::string host;
    int port = 0;
    if (serve::parse_host_port(spec, host, port)) {
      EXPECT_GE(port, 0);
      EXPECT_LE(port, 65535);
    }
  }
}

}  // namespace
}  // namespace moela
