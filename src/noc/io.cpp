#include "noc/io.hpp"

#include <iomanip>
#include <istream>
#include <locale>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace moela::noc {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("noc::io: " + what);
}

/// Reads the next non-comment, non-empty line.
bool next_line(std::istream& is, std::string& line) {
  while (std::getline(is, line)) {
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    if (line[first] == '#') continue;
    return true;
  }
  return false;
}

std::istringstream expect_line(std::istream& is, const std::string& context) {
  std::string line;
  if (!next_line(is, line)) fail("unexpected end of input in " + context);
  return std::istringstream(line);
}

}  // namespace

void write_design(std::ostream& os, const NocDesign& design) {
  // Pin the classic locale: a std::locale::global change must not insert
  // digit grouping or swap the radix character in serialized designs.
  os.imbue(std::locale::classic());
  os << "noc-design v1\n";
  os << "placement";
  for (CoreId c : design.placement) os << ' ' << c;
  os << '\n';
  os << "links " << design.links.size() << '\n';
  for (const Link& l : design.links) os << l.a << ' ' << l.b << '\n';
}

NocDesign read_design(std::istream& is) {
  is.imbue(std::locale::classic());
  {
    auto header = expect_line(is, "design header");
    std::string magic, version;
    header >> magic >> version;
    if (magic != "noc-design" || version != "v1") {
      fail("bad design header");
    }
  }
  NocDesign design;
  {
    auto line = expect_line(is, "placement");
    std::string tag;
    line >> tag;
    if (tag != "placement") fail("expected 'placement'");
    unsigned value = 0;
    while (line >> value) {
      design.placement.push_back(static_cast<CoreId>(value));
    }
    if (design.placement.empty()) fail("empty placement");
  }
  std::size_t link_count = 0;
  {
    auto line = expect_line(is, "links");
    std::string tag;
    line >> tag >> link_count;
    if (tag != "links") fail("expected 'links'");
  }
  design.links.reserve(link_count);
  for (std::size_t k = 0; k < link_count; ++k) {
    auto line = expect_line(is, "link entry");
    unsigned a = 0, b = 0;
    if (!(line >> a >> b)) fail("malformed link entry");
    design.links.emplace_back(static_cast<TileId>(a),
                              static_cast<TileId>(b));
  }
  design.canonicalize();
  return design;
}

std::string design_to_string(const NocDesign& design) {
  std::ostringstream os;
  write_design(os, design);
  return os.str();
}

NocDesign design_from_string(const std::string& text) {
  std::istringstream is(text);
  return read_design(is);
}

void write_workload(std::ostream& os, const Workload& workload) {
  os.imbue(std::locale::classic());
  // Round-trip exact doubles.
  os << std::setprecision(17);
  os << "noc-workload v1 " << workload.name << '\n';
  os << "cores " << workload.core_power.size() << '\n';
  os << "power";
  for (double p : workload.core_power) os << ' ' << p;
  os << '\n';
  std::size_t nonzero = 0;
  const std::size_t n = workload.traffic.num_cores();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (workload.traffic(i, j) != 0.0) ++nonzero;
    }
  }
  os << "traffic " << nonzero << '\n';
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const double f = workload.traffic(i, j);
      if (f != 0.0) os << i << ' ' << j << ' ' << f << '\n';
    }
  }
}

Workload read_workload(std::istream& is) {
  is.imbue(std::locale::classic());
  Workload w;
  {
    auto header = expect_line(is, "workload header");
    std::string magic, version;
    header >> magic >> version >> w.name;
    if (magic != "noc-workload" || version != "v1") {
      fail("bad workload header");
    }
  }
  std::size_t cores = 0;
  {
    auto line = expect_line(is, "cores");
    std::string tag;
    line >> tag >> cores;
    if (tag != "cores" || cores == 0) fail("expected 'cores <n>'");
  }
  {
    auto line = expect_line(is, "power");
    std::string tag;
    line >> tag;
    if (tag != "power") fail("expected 'power'");
    double p = 0.0;
    while (line >> p) w.core_power.push_back(p);
    if (w.core_power.size() != cores) fail("power entry count mismatch");
  }
  std::size_t nonzero = 0;
  {
    auto line = expect_line(is, "traffic");
    std::string tag;
    line >> tag >> nonzero;
    if (tag != "traffic") fail("expected 'traffic'");
  }
  w.traffic = TrafficMatrix(cores);
  for (std::size_t k = 0; k < nonzero; ++k) {
    auto line = expect_line(is, "traffic entry");
    std::size_t i = 0, j = 0;
    double f = 0.0;
    if (!(line >> i >> j >> f) || i >= cores || j >= cores) {
      fail("malformed traffic entry");
    }
    w.traffic(i, j) = f;
  }
  return w;
}

std::string workload_to_string(const Workload& workload) {
  std::ostringstream os;
  write_workload(os, workload);
  return os.str();
}

Workload workload_from_string(const std::string& text) {
  std::istringstream is(text);
  return read_workload(is);
}

}  // namespace moela::noc
