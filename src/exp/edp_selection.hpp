// The Fig. 3 design-selection rule (Sec. V.D):
//  1. over all candidate designs of an application, find the lowest peak
//     temperature;
//  2. set the temperature threshold at 5% above it;
//  3. for each algorithm, pick the design with the lowest EDP among those
//     within the threshold (fall back to that algorithm's lowest-temperature
//     design if none qualifies).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "noc/design.hpp"
#include "noc/platform.hpp"
#include "noc/workload.hpp"
#include "sim/edp.hpp"
#include "sim/rodinia.hpp"

namespace moela::exp {

/// A scored candidate design from one algorithm's final population.
struct ScoredDesign {
  sim::EdpResult score;
  std::size_t index = 0;  // position in the algorithm's population
};

/// Per-algorithm selection outcome.
struct EdpSelection {
  ScoredDesign chosen;
  bool within_threshold = false;
};

/// Scores every design of one population with the EDP model.
std::vector<ScoredDesign> score_population(
    const noc::PlatformSpec& spec,
    const std::vector<noc::NocDesign>& designs, const noc::Workload& workload,
    const sim::AppArchetype& arch,
    const noc::NocObjectiveParams& obj_params = {},
    const sim::EdpModelParams& model = {});

/// Applies the Fig. 3 rule. `populations[a]` holds algorithm a's scored
/// designs; the temperature threshold is computed over ALL populations.
/// `threshold_margin` is the paper's 5%.
std::vector<EdpSelection> select_by_edp(
    const std::vector<std::vector<ScoredDesign>>& populations,
    double threshold_margin = 0.05);

/// EDP overhead of each selection relative to the baseline population
/// (Fig. 3 sets MOELA as the baseline): edp / edp_baseline - 1.
std::vector<double> edp_overheads(const std::vector<EdpSelection>& selections,
                                  std::size_t baseline_index);

}  // namespace moela::exp
