#include "moo/archive.hpp"

#include <gtest/gtest.h>

#include "moo/pareto.hpp"
#include "util/rng.hpp"

namespace moela::moo {
namespace {

TEST(ParetoArchive, AcceptsFirstPoint) {
  ParetoArchive a;
  EXPECT_TRUE(a.insert({1.0, 2.0}, 0));
  EXPECT_EQ(a.size(), 1u);
}

TEST(ParetoArchive, RejectsDominatedAndEqual) {
  ParetoArchive a;
  a.insert({1.0, 1.0}, 0);
  EXPECT_FALSE(a.insert({2.0, 2.0}, 1));  // dominated
  EXPECT_FALSE(a.insert({1.0, 1.0}, 2));  // duplicate
  EXPECT_EQ(a.size(), 1u);
}

TEST(ParetoArchive, RemovesNewlyDominated) {
  ParetoArchive a;
  a.insert({2.0, 2.0}, 0);
  a.insert({3.0, 1.0}, 1);
  EXPECT_TRUE(a.insert({1.0, 1.0}, 2));  // dominates both
  EXPECT_EQ(a.size(), 1u);
  EXPECT_EQ(a.entries()[0].id, 2u);
}

TEST(ParetoArchive, KeepsIncomparablePoints) {
  ParetoArchive a;
  EXPECT_TRUE(a.insert({1.0, 3.0}, 0));
  EXPECT_TRUE(a.insert({3.0, 1.0}, 1));
  EXPECT_TRUE(a.insert({2.0, 2.0}, 2));
  EXPECT_EQ(a.size(), 3u);
}

TEST(ParetoArchive, WouldAcceptMirrorsInsert) {
  ParetoArchive a;
  a.insert({1.0, 1.0}, 0);
  EXPECT_FALSE(a.would_accept({1.5, 1.5}));
  EXPECT_TRUE(a.would_accept({0.5, 2.0}));
  EXPECT_EQ(a.size(), 1u);  // would_accept must not mutate
}

TEST(ParetoArchive, CapacityEvictsMostCrowded) {
  ParetoArchive a(3);
  a.insert({0.0, 10.0}, 0);
  a.insert({10.0, 0.0}, 1);
  a.insert({5.0, 5.0}, 2);
  // 4th point lands close to (5,5): one of the crowded middles is evicted,
  // boundary points survive.
  a.insert({4.9, 5.2}, 3);
  EXPECT_EQ(a.size(), 3u);
  bool has0 = false, has1 = false;
  for (const auto& e : a.entries()) {
    if (e.id == 0) has0 = true;
    if (e.id == 1) has1 = true;
  }
  EXPECT_TRUE(has0);
  EXPECT_TRUE(has1);
}

TEST(ParetoArchive, ContentAlwaysMutuallyNonDominated) {
  util::Rng rng(3);
  ParetoArchive a(20);
  for (int i = 0; i < 500; ++i) {
    a.insert({rng.uniform(), rng.uniform(), rng.uniform()}, i);
  }
  const auto points = a.objective_set();
  for (std::size_t i = 0; i < points.size(); ++i) {
    for (std::size_t j = 0; j < points.size(); ++j) {
      if (i == j) continue;
      EXPECT_FALSE(dominates(points[i], points[j]));
    }
  }
  EXPECT_LE(a.size(), 20u);
}

TEST(ParetoArchive, ClearEmpties) {
  ParetoArchive a;
  a.insert({1.0}, 0);
  a.clear();
  EXPECT_TRUE(a.empty());
}

}  // namespace
}  // namespace moela::moo
