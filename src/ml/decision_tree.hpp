// CART regression tree: axis-aligned binary splits minimizing the sum of
// squared errors, grown depth-first with the usual stopping rules.
//
// The tree is the base learner of the random forest that implements MOELA's
// (and MOO-STAGE's) learned evaluation function. Exact split search over all
// candidate thresholds of a random feature subset per node.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "ml/dataset.hpp"
#include "util/rng.hpp"

namespace moela::ml {

struct TreeConfig {
  std::size_t max_depth = 16;
  std::size_t min_samples_leaf = 2;
  std::size_t min_samples_split = 4;
  /// Number of features examined per node; 0 means all features
  /// (set by the forest to ~f/3 for regression, the standard default).
  std::size_t max_features = 0;
};

class DecisionTree {
 public:
  /// Fits the tree to `data` restricted to `sample_indices` (the forest
  /// passes a bootstrap sample; pass all indices for a plain tree).
  void fit(const Dataset& data, std::span<const std::size_t> sample_indices,
           const TreeConfig& config, util::Rng& rng);

  /// Convenience overload over the full dataset.
  void fit(const Dataset& data, const TreeConfig& config, util::Rng& rng);

  double predict(std::span<const double> features) const;

  bool trained() const { return !nodes_.empty(); }
  std::size_t node_count() const { return nodes_.size(); }
  std::size_t depth() const;

 private:
  struct Node {
    // Leaf iff feature == kLeaf; then `value` is the prediction.
    static constexpr std::size_t kLeaf = static_cast<std::size_t>(-1);
    std::size_t feature = kLeaf;
    double threshold = 0.0;  // go left if x[feature] <= threshold
    double value = 0.0;
    std::size_t left = 0;
    std::size_t right = 0;
  };

  std::size_t build(const Dataset& data, std::vector<std::size_t>& indices,
                    std::size_t begin, std::size_t end,
                    const TreeConfig& config, std::size_t depth,
                    util::Rng& rng);

  std::vector<Node> nodes_;
};

}  // namespace moela::ml
