// Reproduces TABLE II of the paper: PHV gain of MOELA compared to MOEA/D
// and MOOS at the stop budget for the 3-, 4-, and 5-objective scenarios.
//
// Metric (Sec. V.C): PHV(MOELA at T_stop) / PHV(other at T_stop) - 1,
// under a shared normalization per (app, scenario).
//
// Environment knobs: MOELA_BENCH_EVALS, MOELA_BENCH_SMALL, MOELA_BENCH_SEED.
#include <cstdio>
#include <vector>

#include "exp/scenario.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace moela;

int main() {
  const auto config = exp::paper_bench_config_from_env();
  const std::vector<std::size_t> scenarios{3, 4, 5};
  const auto& apps = sim::all_rodinia_apps();

  // The whole grid as ONE Executor batch (MOELA_BENCH_JOBS workers); grid
  // index = si * apps.size() + ai.
  std::vector<exp::ScenarioCell> grid;
  for (std::size_t si = 0; si < scenarios.size(); ++si) {
    for (std::size_t ai = 0; ai < apps.size(); ++ai) {
      grid.push_back({apps[ai], scenarios[si]});
    }
  }
  const auto results = exp::run_app_scenarios(grid, config);

  std::vector<std::vector<std::vector<double>>> cells(
      apps.size(),
      std::vector<std::vector<double>>(2, std::vector<double>(3, 0.0)));

  for (std::size_t si = 0; si < scenarios.size(); ++si) {
    for (std::size_t ai = 0; ai < apps.size(); ++ai) {
      const auto& r = results[si * apps.size() + ai];
      for (std::size_t comp = 0; comp < 2; ++comp) {
        cells[ai][comp][si] =
            exp::phv_gain(r.final_phv[0], r.final_phv[comp + 1]);
      }
    }
  }

  util::Table table("TABLE II: PHV gain of MOELA compared to MOEA/D and MOOS");
  table.set_header({"App", "MOEA/D 3-obj", "MOEA/D 4-obj", "MOEA/D 5-obj",
                    "MOOS 3-obj", "MOOS 4-obj", "MOOS 5-obj"});
  std::vector<util::OnlineStats> column_stats(6);
  for (std::size_t ai = 0; ai < apps.size(); ++ai) {
    std::vector<std::string> row{sim::app_name(apps[ai])};
    for (std::size_t comp = 0; comp < 2; ++comp) {
      for (std::size_t si = 0; si < 3; ++si) {
        row.push_back(util::fmt_percent(cells[ai][comp][si], 1));
        column_stats[comp * 3 + si].add(cells[ai][comp][si]);
      }
    }
    table.add_row(std::move(row));
  }
  std::vector<std::string> avg{"Average"};
  for (const auto& s : column_stats) {
    avg.push_back(util::fmt_percent(s.mean(), 1));
  }
  table.add_row(std::move(avg));
  table.print();

  std::printf("\nExpected shape (paper): gains >= 0 nearly everywhere, "
              "largest in the 5-obj column (paper averages: 104%% vs MOEA/D, "
              "21%% vs MOOS).\n");
  return 0;
}
