// Batched execution layer, part 2: the content-keyed result cache.
//
// Key = RunRequest::cache_key() (problem instance + algorithm + canonical
// RunOptions incl. knobs and seed); value = the full RunReport. Two tiers:
//
//   * memory — always on; stores the report verbatim (designs included),
//     serves repeats within one process (e.g. the same (app, m) cell used
//     by several tables).
//   * disk   — optional; one text file per key under a cache directory,
//     doubles rendered as hexfloats so reports round-trip bit-exactly.
//     Serves repeats ACROSS processes (a re-invoked CLI or bench).
//
// Designs are type-erased (AnyDesign), so the disk tier serializes them
// through a small codec covering the library's design types — real vectors
// (ZDT/DTLZ/continuous), binary vectors (knapsack), and NocDesign (via
// noc/io). Reports whose design type has no codec are stored without
// designs; a lookup with need_designs = true then rejects such entries and
// the caller recomputes.
//
// Thread-safe: lookup/store may be called concurrently from Executor
// workers. Cross-process disk writes are atomic (write-temp + rename).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <optional>
#include <string>

#include "api/optimizer.hpp"
#include "util/metrics.hpp"
#include "util/thread_annotations.hpp"

namespace moela::api {

class ResultCache {
 public:
  /// Memory-only cache.
  ResultCache() = default;
  /// Memory + disk under `disk_dir` (created on first store; "" = memory
  /// only).
  explicit ResultCache(std::string disk_dir) : dir_(std::move(disk_dir)) {}

  /// The conventional disk location: $MOELA_CACHE_DIR if set, else
  /// $XDG_CACHE_HOME/moela, else $HOME/.cache/moela, else ./.moela-cache.
  static std::string default_disk_dir();

  /// The disk-tier size cap from $MOELA_CACHE_MAX_BYTES (bytes; "0"
  /// disables the cap; unset/malformed = the built-in 1 GiB default).
  static std::uintmax_t default_max_disk_bytes();

  /// Caps the total size of the disk tier. After every store, entry files
  /// are evicted least-recently-USED first (a lookup hit refreshes an
  /// entry's file time) until the tier fits. 0 disables the cap. The
  /// constructor seeds this from default_max_disk_bytes(). Atomic so a cap
  /// change may race concurrent store() calls safely: the cap is a fleet
  /// tuning knob, not part of any report, so relaxed ordering suffices —
  /// an in-flight store applies either the old or the new cap, and the
  /// next store applies the new one.
  void set_max_disk_bytes(std::uintmax_t bytes) {
    max_disk_bytes_.store(bytes, std::memory_order_relaxed);
  }
  std::uintmax_t max_disk_bytes() const {
    return max_disk_bytes_.load(std::memory_order_relaxed);
  }

  /// Returns the cached report for `key`, or nullopt. `need_designs`
  /// rejects disk entries stored without designs (see file comment).
  /// A hit is returned with provenance.cache_hit = true.
  std::optional<RunReport> lookup(const std::string& key,
                                  bool need_designs = false);

  /// Stores `report` under `key` in both tiers. Ignores empty keys and
  /// cancelled (partial) reports.
  void store(const std::string& key, const RunReport& report);

  struct Stats {
    std::size_t memory_hits = 0;
    std::size_t disk_hits = 0;
    std::size_t misses = 0;
    std::size_t stores = 0;
    /// Disk entries removed by the size cap (lifetime of this instance).
    std::size_t evictions = 0;
  };
  Stats stats() const;

  /// Attaches a telemetry registry (not owned; must outlive this cache).
  /// Lookup/store/eviction outcomes then mirror into labeled counters
  /// (moela_cache_*); handles resolve once here so the hot path stays an
  /// atomic add. Call before concurrent use.
  void set_metrics(util::MetricsRegistry* metrics);

  const std::string& disk_dir() const { return dir_; }

  /// FNV-1a 64-bit hex digest of `key` — the on-disk file stem.
  static std::string hash_key(const std::string& key);

 private:
  /// Removes least-recently-used entry files until the tier fits the cap,
  /// sparing the just-written `keep` (unless it alone busts the cap).
  void enforce_disk_cap(const std::string& keep);

  mutable util::Mutex mutex_;
  std::map<std::string, RunReport> memory_ MOELA_GUARDED_BY(mutex_);
  /// Immutable after construction — readable lock-free.
  std::string dir_;
  /// Lock-free by design (see set_max_disk_bytes above), so deliberately
  /// not MOELA_GUARDED_BY(mutex_).
  std::atomic<std::uintmax_t> max_disk_bytes_{default_max_disk_bytes()};
  Stats stats_ MOELA_GUARDED_BY(mutex_);
  /// Pre-resolved telemetry handles; null until set_metrics(), which the
  /// contract requires to run before concurrent use — after that the
  /// pointers are read-only and the Counters they point at are themselves
  /// relaxed atomics, so no capability is needed here.
  util::Counter* metric_memory_hits_ = nullptr;
  util::Counter* metric_disk_hits_ = nullptr;
  util::Counter* metric_misses_ = nullptr;
  util::Counter* metric_stores_ = nullptr;
  util::Counter* metric_evictions_ = nullptr;
};

namespace detail {
/// Text serialization used by the disk tier (exposed for tests). `key` is
/// embedded so a hash collision reads as a miss, never as a wrong hit.
void write_report(std::ostream& os, const std::string& key,
                  const RunReport& report);
/// Parses a serialized report; nullopt when malformed or when the embedded
/// key differs from `key`.
std::optional<RunReport> read_report(std::istream& is, const std::string& key);
}  // namespace detail

}  // namespace moela::api
