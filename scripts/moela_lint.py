#!/usr/bin/env python3
"""moela_lint: project-specific determinism linter.

Enforces the invariants the serving stack's bit-identical guarantee rests
on, which no off-the-shelf tool knows about (see docs/correctness.md):

  rng-source             All randomness flows through util::Rng. The raw
                         sources (rand, srand, time, std::random_device,
                         random_shuffle) are banned outside src/util/rng.*:
                         any of them makes a run irreproducible.
  hexfloat-wire          Wire files (serde, serve/, util/json, result_cache,
                         request) may not format or parse doubles through
                         locale-dependent primitives (std::to_string, the
                         strtod family, %f/%e/%g/%a printf conversions,
                         std::setprecision). They must use util/numeric.hpp
                         (to_chars/from_chars), or cache keys and the
                         hexfloat disk/wire format silently change under a
                         non-C locale.
  using-namespace-header `using namespace` in a header leaks into every
                         includer; banned at any scope.
  include-guard          Every header uses exactly one #pragma once, before
                         any code; legacy #ifndef guards are banned (two
                         styles drift apart).
  naked-mutex            Raw std synchronization vocabulary (std::mutex and
                         friends, std::condition_variable, std::lock_guard/
                         unique_lock/scoped_lock/shared_lock, std::call_once)
                         is banned outside util/thread_annotations.hpp: only
                         the annotated util::Mutex/MutexLock/CondVar wrappers
                         participate in Clang Thread Safety Analysis, so a
                         raw mutex (or a std lock over a util::Mutex) is a
                         hole in the compile-time concurrency proof.
  layer-order            The layer DAG of docs/architecture.md is normative:
                         quoted #include edges across src/ + tools/ may point
                         sideways or down, never up (e.g. serve/ must not
                         include exp/). The one sanctioned inversion —
                         api/sharded_executor acting as a serve/ client —
                         carries explicit waivers.

The linter runs two passes: pass 1 applies the per-file lexical rules
above; pass 2 parses every quoted #include edge across src/ + tools/ and
checks the edge list against the declared layer DAG.

Waivers: a finding is suppressed by an annotation on the same line or the
line directly above, with a mandatory reason:

    std::to_string(i)  // moela-lint: allow(hexfloat-wire) index label, int

Usage:
    moela_lint.py [--root DIR]      lint the tree (exit 1 on findings)
    moela_lint.py --self-test       run against scripts/lint_fixtures/
    moela_lint.py --list-waivers    lint, then list every active waiver
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

CXX_SUFFIXES = {".cpp", ".hpp", ".h", ".cc", ".cxx", ".hxx"}
SOURCE_DIRS = ("src", "tools", "bench", "examples", "tests")

# Files allowed to touch raw randomness sources.
RNG_EXEMPT = ("src/util/rng.hpp", "src/util/rng.cpp")

# The one file allowed to name raw std synchronization types: the
# annotated wrappers themselves.
THREAD_WRAPPER = "src/util/thread_annotations.hpp"

# Pass 2 (layer-order): the normative layer DAG from docs/architecture.md.
# Rank increases bottom-up; same-rank includes are allowed, upward edges
# are findings. src/<dir>/... maps through <dir>; tools/ is its own layer.
LAYER_RANK = {
    "util": 0,
    "moo": 1,
    "ml": 1,
    "noc": 1,
    "sim": 1,
    "problems": 1,
    "core": 2,
    "baselines": 2,
    "api": 3,
    "serve": 4,
    "exp": 5,
    "tools": 6,
}
# Directories whose files get layer-order checking (tests/bench/examples
# sit outside the DAG and may include anything).
LAYER_DIRS = ("src", "tools")

INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"')
INCLUDE_HEAD_RE = re.compile(r'^\s*#\s*include\s+"')

# Files whose double formatting defines the wire/cache format.
WIRE_FILE_PATTERNS = (
    "src/api/serde.",
    "src/api/result_cache.",
    "src/api/request.",
    "src/api/run_log.",
    "src/serve/",
    "src/util/json.",
)

WAIVER_RE = re.compile(r"moela-lint:\s*allow\(([a-z-]+)\)\s*(.*)")

RULES = {
    "rng-source": [
        (re.compile(r"\bstd::random_device\b"), "std::random_device"),
        (re.compile(r"\bstd::random_shuffle\b|\brandom_shuffle\s*\("),
         "random_shuffle"),
        (re.compile(r"\bstd::s?rand\s*\("), "std::rand()/std::srand()"),
        (re.compile(r"(?<![\w:])s?rand\s*\("), "rand()/srand()"),
        (re.compile(r"\bstd::time\s*\("), "std::time()"),
        (re.compile(r"(?<![\w:.>])time\s*\("), "time()"),
    ],
    "hexfloat-wire": [
        (re.compile(r"\bstd::to_string\s*\("), "std::to_string"),
        (re.compile(r"\bstd::(strtod|strtof|strtold|atof)\s*\("),
         "std::strtod family"),
        (re.compile(r"(?<![\w:])(strtod|strtof|strtold|atof)\s*\("),
         "strtod family"),
        (re.compile(r"\bstd::(stod|stof|stold)\s*\("), "std::stod family"),
        (re.compile(r"\bsetprecision\s*\("), "std::setprecision"),
    ],
    "using-namespace-header": [
        (re.compile(r"\busing\s+namespace\b"), "using namespace"),
    ],
    "naked-mutex": [
        (re.compile(r"\bstd::(?:\w+_)*mutex\b"), "raw std mutex type"),
        (re.compile(r"\bstd::condition_variable(?:_any)?\b"),
         "raw std::condition_variable"),
        (re.compile(r"\bstd::(?:lock_guard|unique_lock|scoped_lock|"
                    r"shared_lock)\b"),
         "raw std lock type"),
        (re.compile(r"\bstd::(?:call_once|once_flag)\b"),
         "std::call_once/once_flag"),
    ],
}

# printf-style floating conversions, matched inside string literals only.
FLOAT_FORMAT_RE = re.compile(r"%[-+ #0-9.*']*(?:[hlLqjzt]|ll|hh)?[aefgAEFG]")

HEADER_SUFFIXES = {".hpp", ".h", ".hxx"}


class Finding:
    def __init__(self, path: str, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text: str) -> tuple[str, str]:
    """Returns (code, strings): `code` is the source with comments and
    string/char literal *contents* blanked (newlines kept, so line numbers
    survive); `strings` keeps only string-literal contents (for format-
    string scanning) with everything else blanked."""
    code: list[str] = []
    strings: list[str] = []
    i, n = 0, len(text)
    mode = "code"  # code | line-comment | block-comment | string | char | raw
    raw_delim = ""
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if mode == "code":
            if c == "/" and nxt == "/":
                mode = "line-comment"
                code.append("  ")
                strings.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                mode = "block-comment"
                code.append("  ")
                strings.append("  ")
                i += 2
                continue
            if c == "R" and nxt == '"':
                end = text.find("(", i + 2)
                if end != -1:
                    raw_delim = ")" + text[i + 2:end] + '"'
                    mode = "raw"
                    pad = end + 1 - i
                    code.append(" " * pad)
                    strings.append(" " * pad)
                    i = end + 1
                    continue
            if c == '"':
                mode = "string"
                code.append('"')
                strings.append(" ")
                i += 1
                continue
            if c == "'":
                mode = "char"
                code.append("'")
                strings.append(" ")
                i += 1
                continue
            code.append(c)
            strings.append(c if c == "\n" else " ")
            i += 1
        elif mode == "line-comment":
            if c == "\n":
                mode = "code"
                code.append("\n")
                strings.append("\n")
            else:
                code.append(" ")
                strings.append(" ")
            i += 1
        elif mode == "block-comment":
            if c == "*" and nxt == "/":
                mode = "code"
                code.append("  ")
                strings.append("  ")
                i += 2
            else:
                code.append(c if c == "\n" else " ")
                strings.append(c if c == "\n" else " ")
                i += 1
        elif mode == "raw":
            if text.startswith(raw_delim, i):
                mode = "code"
                pad = len(raw_delim)
                code.append(" " * pad)
                strings.append(" " * pad)
                i += pad
            else:
                code.append(c if c == "\n" else " ")
                strings.append(c)
                i += 1
        elif mode in ("string", "char"):
            quote = '"' if mode == "string" else "'"
            if c == "\\":
                code.append("  ")
                strings.append("  " if mode == "char" else c + nxt)
                i += 2
            elif c == quote:
                mode = "code"
                code.append(quote)
                strings.append(" ")
                i += 1
            else:
                code.append(" ")
                strings.append(c if mode == "string" else " ")
                i += 1
    return "".join(code), "".join(strings)


def waivers_by_line(raw_lines: list[str]) -> dict[int, tuple[str, str, int]]:
    """Maps a 1-based line number to the (rule, reason, waiver_line) that
    covers it: a waiver annotation covers its own line and the next one."""
    out: dict[int, tuple[str, str, int]] = {}
    for idx, line in enumerate(raw_lines, start=1):
        m = WAIVER_RE.search(line)
        if m:
            rule, reason = m.group(1), m.group(2).strip()
            out[idx] = (rule, reason, idx)
            out[idx + 1] = (rule, reason, idx)
    return out


def is_wire_file(rel: str) -> bool:
    return any(rel.startswith(p) for p in WIRE_FILE_PATTERNS)


def check_pragma_once(rel: str, code_lines: list[str]) -> list[Finding]:
    findings: list[Finding] = []
    pragma_lines = [i for i, l in enumerate(code_lines, start=1)
                    if re.match(r"\s*#\s*pragma\s+once\b", l)]
    if Path(rel).suffix not in HEADER_SUFFIXES:
        for ln in pragma_lines:
            findings.append(Finding(rel, ln, "include-guard",
                                    "#pragma once in a non-header file"))
        return findings
    for i, line in enumerate(code_lines, start=1):
        if re.match(r"\s*#\s*ifndef\s+\w*_(H|HPP|H_|HPP_)\b", line):
            findings.append(Finding(rel, i, "include-guard",
                                    "legacy #ifndef include guard"))
    if not pragma_lines:
        findings.append(Finding(rel, 1, "include-guard",
                                "header lacks #pragma once"))
        return findings
    if len(pragma_lines) > 1:
        for ln in pragma_lines[1:]:
            findings.append(Finding(rel, ln, "include-guard",
                                    "duplicate #pragma once"))
    first = pragma_lines[0]
    for i, line in enumerate(code_lines[: first - 1], start=1):
        if line.strip():
            findings.append(Finding(
                rel, first, "include-guard",
                f"#pragma once must precede all code (line {i} comes first)"))
            break
    return findings


class FileAnalysis:
    """One parsed source file: everything both passes need."""

    def __init__(self, root: Path, path: Path):
        self.rel = path.relative_to(root).as_posix()
        text = path.read_text(encoding="utf-8", errors="replace")
        self.raw_lines = text.split("\n")
        code, strings = strip_comments_and_strings(text)
        self.code_lines = code.split("\n")
        self.string_lines = strings.split("\n")
        self.waivers = waivers_by_line(self.raw_lines)


def file_layer(rel: str) -> str | None:
    """The layer a file belongs to, or None when outside the DAG."""
    parts = rel.split("/")
    if parts[0] == "tools":
        return "tools"
    if parts[0] == "src" and len(parts) > 2 and parts[1] in LAYER_RANK:
        return parts[1]
    return None


def layer_findings(analysis: FileAnalysis) -> tuple[list[Finding], int]:
    """Pass 2 for one file: every quoted include is an edge; an edge whose
    target layer ranks above the including file's layer inverts the
    architecture. Returns (findings, edge_count)."""
    layer = file_layer(analysis.rel)
    if layer is None:
        return [], 0
    findings: list[Finding] = []
    edges = 0
    for i, (code_line, raw_line) in enumerate(
            zip(analysis.code_lines, analysis.raw_lines), start=1):
        # The stripper blanks string contents out of code lines (the path
        # is a string literal), so the directive is recognized on the
        # stripped line — proving it is not inside a comment — and the
        # path itself read from the raw line.
        if not INCLUDE_HEAD_RE.match(code_line):
            continue
        m = INCLUDE_RE.match(raw_line)
        if not m:
            continue
        target_top = m.group(1).split("/", 1)[0]
        if target_top not in LAYER_RANK:
            continue  # relative or third-party include: not a layer edge
        edges += 1
        if LAYER_RANK[target_top] > LAYER_RANK[layer]:
            findings.append(Finding(
                analysis.rel, i, "layer-order",
                f"{layer}/ (rank {LAYER_RANK[layer]}) includes "
                f'"{m.group(1)}" from {target_top}/ (rank '
                f"{LAYER_RANK[target_top]}): an upward edge inverts the "
                "layer DAG of docs/architecture.md"))
    return findings, edges


def lexical_findings(analysis: FileAnalysis) -> list[Finding]:
    """Pass 1 for one file: the per-file determinism + concurrency rules."""
    rel = analysis.rel
    code_lines = analysis.code_lines
    string_lines = analysis.string_lines
    raw_findings: list[Finding] = []

    if not any(rel == e for e in RNG_EXEMPT):
        for pattern, what in RULES["rng-source"]:
            for i, line in enumerate(code_lines, start=1):
                if pattern.search(line):
                    raw_findings.append(Finding(
                        rel, i, "rng-source",
                        f"{what}: all randomness must flow through "
                        "util::Rng (src/util/rng.hpp)"))

    if is_wire_file(rel):
        for pattern, what in RULES["hexfloat-wire"]:
            for i, line in enumerate(code_lines, start=1):
                if pattern.search(line):
                    raw_findings.append(Finding(
                        rel, i, "hexfloat-wire",
                        f"{what}: locale-dependent double formatting in a "
                        "wire file; use util/numeric.hpp"))
        for i, line in enumerate(string_lines, start=1):
            m = FLOAT_FORMAT_RE.search(line)
            if m:
                raw_findings.append(Finding(
                    rel, i, "hexfloat-wire",
                    f"printf float conversion '{m.group(0)}' in a wire "
                    "file; use util/numeric.hpp"))

    if Path(rel).suffix in HEADER_SUFFIXES:
        for pattern, what in RULES["using-namespace-header"]:
            for i, line in enumerate(code_lines, start=1):
                if pattern.search(line):
                    raw_findings.append(Finding(
                        rel, i, "using-namespace-header",
                        "using namespace in a header leaks into every "
                        "includer"))

    if rel != THREAD_WRAPPER:
        for pattern, what in RULES["naked-mutex"]:
            for i, line in enumerate(code_lines, start=1):
                if pattern.search(line):
                    raw_findings.append(Finding(
                        rel, i, "naked-mutex",
                        f"{what}: use util::Mutex/MutexLock/CondVar "
                        "(util/thread_annotations.hpp) so Clang Thread "
                        "Safety Analysis sees the lock"))

    raw_findings.extend(check_pragma_once(rel, code_lines))
    return raw_findings


def apply_waivers(raw_findings: list[Finding],
                  waivers: dict[int, tuple[str, str, int]],
                  ) -> tuple[list[Finding], list[str]]:
    findings: list[Finding] = []
    active_waivers: list[str] = []
    for f in raw_findings:
        waiver = waivers.get(f.line)
        if waiver and waiver[0] == f.rule:
            rule, reason, wline = waiver
            if not reason:
                findings.append(Finding(
                    f.path, wline, f.rule,
                    "waiver without a reason (write: moela-lint: "
                    f"allow({rule}) <why>)"))
            else:
                active_waivers.append(f"{f.path}:{f.line}: [{f.rule}] "
                                      f"waived: {reason}")
            continue
        findings.append(f)
    return findings, active_waivers


def lint_file(root: Path, path: Path) -> tuple[list[Finding], list[str]]:
    """Single-file entry point (fixtures/self-test): both passes, waived."""
    analysis = FileAnalysis(root, path)
    raw = lexical_findings(analysis)
    raw.extend(layer_findings(analysis)[0])
    return apply_waivers(raw, analysis.waivers)


def iter_sources(root: Path):
    for d in SOURCE_DIRS:
        base = root / d
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix in CXX_SUFFIXES and path.is_file():
                yield path


def lint_tree(root: Path, list_waivers: bool) -> int:
    # Pass 1 — per-file lexical rules (determinism, wire format, headers,
    # naked synchronization vocabulary).
    analyses: list[FileAnalysis] = []
    raw: dict[str, list[Finding]] = {}
    for path in iter_sources(root):
        analysis = FileAnalysis(root, path)
        analyses.append(analysis)
        raw[analysis.rel] = lexical_findings(analysis)
    # Pass 2 — architecture conformance: the quoted-include edge list of
    # src/ + tools/, checked against the declared layer DAG.
    edge_count = 0
    for analysis in analyses:
        findings, edges = layer_findings(analysis)
        raw[analysis.rel].extend(findings)
        edge_count += edges
    # Waiver resolution + report.
    all_findings: list[Finding] = []
    all_waivers: list[str] = []
    for analysis in analyses:
        findings, waivers = apply_waivers(raw[analysis.rel],
                                          analysis.waivers)
        all_findings.extend(findings)
        all_waivers.extend(waivers)
    for f in all_findings:
        print(f)
    if list_waivers and all_waivers:
        print("-- active waivers --")
        for w in all_waivers:
            print(w)
    summary = (f"moela_lint: {len(analyses)} file(s), {edge_count} "
               f"include edge(s), {len(all_findings)} finding(s), "
               f"{len(all_waivers)} waiver(s)")
    print(summary, file=sys.stderr)
    return 1 if all_findings else 0


def self_test(script_dir: Path) -> int:
    """Every fixture named <rule>__*.{cpp,hpp} must trip exactly that rule;
    clean__*.* and waived__*.* must pass. Run from scripts/lint_fixtures."""
    fixture_root = script_dir / "lint_fixtures"
    if not fixture_root.is_dir():
        print(f"self-test: missing {fixture_root}", file=sys.stderr)
        return 2
    failures: list[str] = []
    checked = 0
    for path in sorted(fixture_root.rglob("*")):
        if path.suffix not in CXX_SUFFIXES or not path.is_file():
            continue
        name = path.name
        expected = name.split("__", 1)[0].replace("_", "-")
        findings, waivers = lint_file(fixture_root, path)
        rules_hit = {f.rule for f in findings}
        checked += 1
        if expected == "clean":
            if findings:
                failures.append(f"{name}: expected clean, got "
                                f"{[str(f) for f in findings]}")
        elif expected == "waived":
            if findings:
                failures.append(f"{name}: waiver did not suppress: "
                                f"{[str(f) for f in findings]}")
            elif not waivers:
                failures.append(f"{name}: expected an active waiver")
        else:
            if expected not in rules_hit:
                failures.append(f"{name}: expected a {expected} finding, "
                                f"got {sorted(rules_hit) or 'none'}")
            if rules_hit - {expected}:
                failures.append(f"{name}: unexpected extra findings "
                                f"{sorted(rules_hit - {expected})}")
    if checked == 0:
        failures.append("no fixtures found")
    for f in failures:
        print(f"self-test FAIL: {f}")
    print(f"moela_lint self-test: {checked} fixture(s), "
          f"{len(failures)} failure(s)", file=sys.stderr)
    return 1 if failures else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", type=Path,
                        default=Path(__file__).resolve().parent.parent)
    parser.add_argument("--self-test", action="store_true")
    parser.add_argument("--list-waivers", action="store_true")
    args = parser.parse_args()
    if args.self_test:
        return self_test(Path(__file__).resolve().parent)
    return lint_tree(args.root.resolve(), args.list_waivers)


if __name__ == "__main__":
    sys.exit(main())
