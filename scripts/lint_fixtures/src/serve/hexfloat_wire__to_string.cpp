// Fixture: seeded violation — std::to_string in a wire file.
#include <string>
std::string render(double v) { return std::to_string(v); }
