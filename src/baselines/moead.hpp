// MOEA/D baseline (Zhang & Li 2007, reference [5] of the paper): the
// decomposition-based evolutionary algorithm MOELA is benchmarked against.
// Shares the sub-problem machinery of core/decomposition.hpp; contains no
// local search and no learning.
#pragma once

#include <cstddef>

#include "core/decomposition.hpp"
#include "core/eval_context.hpp"
#include "moo/problem.hpp"

namespace moela::baselines {

struct MoeaDConfig {
  std::size_t population_size = 50;
  /// Neighborhood mating probability.
  double delta = 0.9;
  std::size_t neighborhood_size = 10;
  std::size_t max_generations = 1000;
  std::size_t max_replacements = 2;
};

template <moo::MooProblem P>
class MoeaD {
 public:
  explicit MoeaD(MoeaDConfig config = {}) : config_(config) {}

  core::DecompositionPopulation<P> run(core::EvalContext<P>& ctx) {
    core::DecompositionPopulation<P> pop(config_.population_size,
                                         ctx.problem().num_objectives(),
                                         config_.neighborhood_size);
    ctx.set_solution_set_provider([&pop] { return pop.objective_set(); });
    pop.initialize(ctx);
    for (std::size_t gen = 0;
         gen < config_.max_generations && !ctx.exhausted(); ++gen) {
      core::decomposition_ea_generation(ctx, pop, config_.delta,
                                        config_.max_replacements);
    }
    ctx.set_solution_set_provider(nullptr);
    return pop;
  }

  const MoeaDConfig& config() const { return config_; }

 private:
  MoeaDConfig config_;
};

}  // namespace moela::baselines
