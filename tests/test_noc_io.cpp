#include "noc/io.hpp"

#include <gtest/gtest.h>

#include "noc/constraints.hpp"
#include "noc/generator.hpp"
#include "sim/rodinia.hpp"
#include "util/rng.hpp"

namespace moela::noc {
namespace {

TEST(DesignIo, RoundTripPreservesDesign) {
  const auto spec = PlatformSpec::small_3x3x3();
  DesignOps ops(spec);
  util::Rng rng(1);
  const NocDesign original = ops.random_design(rng);
  const NocDesign restored = design_from_string(design_to_string(original));
  EXPECT_EQ(original, restored);
  EXPECT_TRUE(is_feasible(spec, restored));
}

TEST(DesignIo, RoundTripOnPaperPlatform) {
  const auto spec = PlatformSpec::paper_4x4x4();
  DesignOps ops(spec);
  util::Rng rng(2);
  for (int i = 0; i < 5; ++i) {
    const NocDesign d = ops.random_design(rng);
    EXPECT_EQ(d, design_from_string(design_to_string(d)));
  }
}

TEST(DesignIo, CommentsAndBlankLinesIgnored) {
  const auto spec = PlatformSpec::small_3x3x3();
  DesignOps ops(spec);
  util::Rng rng(3);
  const NocDesign d = ops.random_design(rng);
  std::string text = design_to_string(d);
  text = "# checkpoint from run 42\n\n" + text;
  EXPECT_EQ(d, design_from_string(text));
}

TEST(DesignIo, MalformedInputsThrow) {
  EXPECT_THROW(design_from_string(""), std::runtime_error);
  EXPECT_THROW(design_from_string("wrong-magic v1\n"), std::runtime_error);
  EXPECT_THROW(design_from_string("noc-design v2\n"), std::runtime_error);
  EXPECT_THROW(design_from_string("noc-design v1\nplacement\n"),
               std::runtime_error);
  EXPECT_THROW(
      design_from_string("noc-design v1\nplacement 0 1\nlinks 2\n0 1\n"),
      std::runtime_error);  // missing link line
}

TEST(DesignIo, ParsedLinksAreCanonical) {
  const auto d = design_from_string(
      "noc-design v1\nplacement 0 1 2 3\nlinks 2\n3 1\n0 2\n");
  ASSERT_EQ(d.links.size(), 2u);
  EXPECT_EQ(d.links[0], Link(0, 2));
  EXPECT_EQ(d.links[1], Link(1, 3));
}

TEST(WorkloadIo, RoundTripPreservesWorkload) {
  const auto spec = PlatformSpec::small_3x3x3();
  const Workload original = sim::make_workload(spec, sim::RodiniaApp::kBfs, 7);
  const Workload restored =
      workload_from_string(workload_to_string(original));
  EXPECT_EQ(restored.name, original.name);
  ASSERT_EQ(restored.core_power.size(), original.core_power.size());
  for (std::size_t i = 0; i < original.core_power.size(); ++i) {
    EXPECT_NEAR(restored.core_power[i], original.core_power[i], 1e-9);
  }
  const std::size_t n = spec.num_cores();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      EXPECT_NEAR(restored.traffic(i, j), original.traffic(i, j), 1e-9)
          << i << "," << j;
    }
  }
}

TEST(WorkloadIo, SparseEntriesOnly) {
  Workload w;
  w.name = "tiny";
  w.traffic = TrafficMatrix(3);
  w.traffic(0, 1) = 2.5;
  w.core_power = {1.0, 2.0, 3.0};
  const std::string text = workload_to_string(w);
  // Exactly one traffic entry serialized.
  EXPECT_NE(text.find("traffic 1"), std::string::npos);
  const Workload restored = workload_from_string(text);
  EXPECT_DOUBLE_EQ(restored.traffic(0, 1), 2.5);
  EXPECT_DOUBLE_EQ(restored.traffic(1, 0), 0.0);
}

TEST(WorkloadIo, MalformedInputsThrow) {
  EXPECT_THROW(workload_from_string(""), std::runtime_error);
  EXPECT_THROW(workload_from_string("noc-workload v1 x\ncores 0\n"),
               std::runtime_error);
  EXPECT_THROW(
      workload_from_string(
          "noc-workload v1 x\ncores 2\npower 1.0\ntraffic 0\n"),
      std::runtime_error);  // power count mismatch
  EXPECT_THROW(
      workload_from_string(
          "noc-workload v1 x\ncores 2\npower 1 2\ntraffic 1\n5 0 1.0\n"),
      std::runtime_error);  // index out of range
}

}  // namespace
}  // namespace moela::noc
