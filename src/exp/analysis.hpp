// Cross-run analysis: converts the archive snapshots of several runs into
// PHV-vs-evaluations traces with a SHARED normalization (global ideal/nadir
// over all runs of the same scenario), then computes the Sec. V.C metrics —
// speed-up factor and PHV gain — between algorithms.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/eval_context.hpp"
#include "moo/metrics.hpp"
#include "moo/objective.hpp"

namespace moela::exp {

/// Snapshot sequences of all runs being compared (index = run).
using SnapshotSet = std::vector<std::vector<core::ArchiveSnapshot>>;

/// Global component-wise ideal/nadir over every front of every run; the
/// shared normalization frame that makes PHV comparable across algorithms.
struct ObjectiveBounds {
  moo::ObjectiveVector ideal;
  moo::ObjectiveVector nadir;
};
ObjectiveBounds global_bounds(const SnapshotSet& runs);

/// Anytime PHV trace of each run under the shared bounds
/// (reference point 1.1^M).
std::vector<moo::ConvergenceTrace> phv_traces(const SnapshotSet& runs,
                                              const ObjectiveBounds& bounds);

/// Final normalized PHV of a front under the given bounds.
double final_phv(const std::vector<moo::ObjectiveVector>& front,
                 const ObjectiveBounds& bounds);

/// PHV gain of `ours` over `other` per Sec. V.C metric 2:
/// PHV(ours)/PHV(other) - 1 (reported as a percentage in Table II).
double phv_gain(double ours, double other);

}  // namespace moela::exp
