// Deterministic fault injection for the serving-stack tests, shared by
// test_serve.cpp and test_sharded_executor.cpp (and the checkpoint/resume
// acceptance tests that PR 9 adds). Every failure mode here is triggered
// at an exact, repeatable point — an event count, a chunk boundary — never
// by sleeps or wall-clock racing:
//
//   * DaemonProcess        — the REAL moela_serve binary in a child
//                            process, killable with SIGKILL mid-run: the
//                            only honest stand-in for a crashed fleet
//                            daemon (an in-process Server cannot die
//                            without taking the test down with it).
//   * FaultTrigger         — an atomic fire-on-the-Nth-call latch, the
//                            deterministic "after N progress events"
//                            trigger.
//   * RawConnection        — a bare client socket for protocol-level
//                            misuse: back-to-back pipelined lines,
//                            malformed verbs, and abrupt mid-batch
//                            disconnects (sever()).
//   * closed_port()        — a loopback port with nothing listening:
//                            connect() fails deterministically.
//   * AcceptAndCloseEndpoint — accepts, then drops: connect() succeeds,
//                            the first wire batch fails at the transport
//                            level — a daemon dying right after joining
//                            the fleet.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "serve/protocol.hpp"

namespace moela::fault {

/// A loopback port with nothing listening on it: bound once to reserve a
/// number the kernel will then refuse connections to.
inline int closed_port() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  EXPECT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  socklen_t len = sizeof(addr);
  EXPECT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  const int port = ntohs(addr.sin_port);
  ::close(fd);
  return port;
}

/// A listener that accepts one connection and immediately closes it: the
/// coordinator's connect succeeds, but the first chunk submitted on the
/// connection fails at the transport level — the deterministic stand-in
/// for a daemon that dies mid-run after joining the fleet.
struct AcceptAndCloseEndpoint {
  AcceptAndCloseEndpoint() {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    EXPECT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0);
    EXPECT_EQ(::listen(fd, 4), 0);
    socklen_t len = sizeof(addr);
    EXPECT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len),
              0);
    port = ntohs(addr.sin_port);
    closer = std::thread([this] {
      for (;;) {
        const int conn = ::accept(fd, nullptr, nullptr);
        if (conn < 0) return;  // listener shut down
        ::close(conn);
      }
    });
  }
  ~AcceptAndCloseEndpoint() {
    ::shutdown(fd, SHUT_RDWR);  // wakes the blocked accept
    if (closer.joinable()) closer.join();
    ::close(fd);
  }

  int fd = -1;
  int port = 0;
  std::thread closer;
};

/// Fire-on-the-Nth-call latch: `fire()` returns true exactly once, on the
/// n-th invocation, from whichever thread gets there — the deterministic
/// "kill the daemon after N progress events" trigger.
class FaultTrigger {
 public:
  explicit FaultTrigger(std::size_t n) : remaining_(n) {}

  bool fire() {
    std::size_t current = remaining_.load(std::memory_order_relaxed);
    while (current > 0) {
      if (remaining_.compare_exchange_weak(current, current - 1,
                                           std::memory_order_relaxed)) {
        return current == 1;
      }
    }
    return false;
  }

  bool fired() const {
    return remaining_.load(std::memory_order_relaxed) == 0;
  }

 private:
  std::atomic<std::size_t> remaining_;
};

/// Absolute path of the moela_serve binary, resolved relative to the
/// running test executable (CMake puts tests in <build>/tests and the
/// daemon in <build>). MOELA_SERVE_BIN overrides for out-of-tree setups.
inline std::string serve_binary_path() {
  if (const char* env = ::getenv("MOELA_SERVE_BIN");
      env != nullptr && env[0] != '\0') {
    return env;
  }
  char self[4096];
  const ssize_t n = ::readlink("/proc/self/exe", self, sizeof(self) - 1);
  std::string dir;
  if (n > 0) {
    self[n] = '\0';
    dir.assign(self);
    const std::size_t slash = dir.rfind('/');
    dir = slash == std::string::npos ? std::string(".") : dir.substr(0, slash);
  } else {
    dir = ".";
  }
  return dir + "/../moela_serve";
}

/// The real moela_serve binary as a child process — the only daemon a test
/// can SIGKILL mid-run without dying itself. Binds an ephemeral port and
/// reports it via the daemon's own "listening on host:port" stderr line,
/// so there is no bind race and no sleep.
class DaemonProcess {
 public:
  /// Spawns `moela_serve --port 0 <extra_args...>`. Callers pass cache /
  /// snapshot / jobs flags explicitly (e.g. {"--no-cache", "--jobs", "2"}).
  explicit DaemonProcess(std::vector<std::string> extra_args = {
                             "--no-cache"}) {
    int pipe_fds[2] = {-1, -1};
    if (::pipe(pipe_fds) != 0) {
      ADD_FAILURE() << "pipe failed";
      return;
    }
    const std::string binary = serve_binary_path();
    std::vector<std::string> args = {binary, "--port", "0"};
    for (auto& arg : extra_args) args.push_back(std::move(arg));

    pid_ = ::fork();
    if (pid_ < 0) {
      ADD_FAILURE() << "fork failed";
      return;
    }
    if (pid_ == 0) {
      // Child: stderr (the "listening on" line) goes to the parent's pipe.
      ::close(pipe_fds[0]);
      ::dup2(pipe_fds[1], STDERR_FILENO);
      ::close(pipe_fds[1]);
      std::vector<char*> argv;
      argv.reserve(args.size() + 1);
      for (auto& arg : args) argv.push_back(arg.data());
      argv.push_back(nullptr);
      ::execv(binary.c_str(), argv.data());
      ::_exit(127);  // exec failed; the parent sees EOF without a port
    }
    ::close(pipe_fds[1]);
    stderr_fd_ = pipe_fds[0];

    // The daemon prints exactly one "listening on <host>:<port> (" line
    // once the socket is bound; parse the port out of it. Plain ::read —
    // serve::LineReader is socket-only (recv) and this is a pipe.
    std::string buffered;
    char chunk[512];
    while (port_ == 0) {
      const ssize_t n = ::read(stderr_fd_, chunk, sizeof(chunk));
      if (n <= 0) break;  // daemon exited before binding
      buffered.append(chunk, static_cast<std::size_t>(n));
      std::size_t eol;
      while (port_ == 0 && (eol = buffered.find('\n')) != std::string::npos) {
        const std::string line = buffered.substr(0, eol);
        buffered.erase(0, eol + 1);
        const std::size_t at = line.find("listening on ");
        if (at == std::string::npos) continue;
        const std::size_t colon = line.find(':', at);
        if (colon == std::string::npos) continue;
        int port = 0;
        for (std::size_t i = colon + 1;
             i < line.size() && line[i] >= '0' && line[i] <= '9'; ++i) {
          port = port * 10 + (line[i] - '0');
        }
        port_ = port;
      }
    }
    EXPECT_GT(port_, 0) << "daemon failed to start: " << binary;
    // Keep draining stderr so the child can never block on a full pipe.
    drain_ = std::thread([fd = stderr_fd_] {
      char sink[512];
      while (::read(fd, sink, sizeof(sink)) > 0) {
      }
    });
  }

  ~DaemonProcess() {
    kill();
    if (drain_.joinable()) drain_.join();
    if (stderr_fd_ >= 0) ::close(stderr_fd_);
  }

  DaemonProcess(const DaemonProcess&) = delete;
  DaemonProcess& operator=(const DaemonProcess&) = delete;

  int port() const { return port_; }
  pid_t pid() const { return pid_; }

  /// SIGKILL + reap: the crash. No drain, no flush, no goodbye — exactly
  /// what a powered-off fleet machine looks like to its peers. Idempotent.
  void kill() {
    if (pid_ <= 0) return;
    ::kill(pid_, SIGKILL);
    ::waitpid(pid_, nullptr, 0);
    pid_ = -1;
  }

  bool alive() const { return pid_ > 0; }

 private:
  pid_t pid_ = -1;
  int port_ = 0;
  int stderr_fd_ = -1;
  std::thread drain_;
};

/// A bare protocol connection for adversarial client behavior: pipelined
/// back-to-back lines, malformed payloads, and — the checkpoint tests'
/// staple — sever(): an abrupt RST-style close with a batch in flight.
class RawConnection {
 public:
  explicit RawConnection(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    EXPECT_EQ(
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
    reader_ = std::make_unique<serve::LineReader>(fd_);
  }

  ~RawConnection() { sever(); }

  RawConnection(const RawConnection&) = delete;
  RawConnection& operator=(const RawConnection&) = delete;

  int fd() const { return fd_; }

  bool send(const std::string& line) { return serve::send_line(fd_, line); }

  bool read_line(std::string& out) { return reader_->read_line(out); }

  /// Drops the connection mid-conversation — no shutdown handshake, no
  /// pending-read drain. The server's reader sees EOF/ECONNRESET with the
  /// batch still running. Idempotent.
  void sever() {
    if (fd_ < 0) return;
    ::close(fd_);
    fd_ = -1;
  }

 private:
  int fd_ = -1;
  std::unique_ptr<serve::LineReader> reader_;
};

}  // namespace moela::fault
