#include "ml/dataset.hpp"

#include <stdexcept>

namespace moela::ml {

void Dataset::add(std::vector<double> features, double target) {
  if (features.size() != num_features_) {
    throw std::invalid_argument("Dataset: feature width mismatch");
  }
  features_.push_back(std::move(features));
  targets_.push_back(target);
  while (capacity_ > 0 && features_.size() > capacity_) {
    features_.pop_front();
    targets_.pop_front();
  }
}

}  // namespace moela::ml
