#include "exp/experiment.hpp"

#include <array>

namespace moela::exp {

namespace {

constexpr std::array<Algorithm, 8> kAllAlgorithms = {
    Algorithm::kMoela,          Algorithm::kMoeaD,
    Algorithm::kMoos,           Algorithm::kMooStage,
    Algorithm::kNsga2,          Algorithm::kMoelaNoMlGuide,
    Algorithm::kMoelaEaOnly,    Algorithm::kMoelaLocalOnly};

}  // namespace

std::string algorithm_name(Algorithm a) {
  switch (a) {
    case Algorithm::kMoela:
      return "MOELA";
    case Algorithm::kMoeaD:
      return "MOEA/D";
    case Algorithm::kMoos:
      return "MOOS";
    case Algorithm::kMooStage:
      return "MOO-STAGE";
    case Algorithm::kNsga2:
      return "NSGA-II";
    case Algorithm::kMoelaNoMlGuide:
      return "MOELA-noguide";
    case Algorithm::kMoelaEaOnly:
      return "MOELA-EA-only";
    case Algorithm::kMoelaLocalOnly:
      return "MOELA-LS-only";
  }
  return "unknown";
}

std::string algorithm_key(Algorithm a) {
  switch (a) {
    case Algorithm::kMoela:
      return "moela";
    case Algorithm::kMoeaD:
      return "moead";
    case Algorithm::kMoos:
      return "moos";
    case Algorithm::kMooStage:
      return "moo-stage";
    case Algorithm::kNsga2:
      return "nsga2";
    case Algorithm::kMoelaNoMlGuide:
      return "moela-noguide";
    case Algorithm::kMoelaEaOnly:
      return "moela-ea-only";
    case Algorithm::kMoelaLocalOnly:
      return "moela-ls-only";
  }
  return "unknown";
}

std::optional<Algorithm> parse_algorithm(std::string_view name) {
  for (Algorithm a : kAllAlgorithms) {
    if (name == algorithm_name(a) || name == algorithm_key(a)) return a;
  }
  return std::nullopt;
}

api::RunOptions to_run_options(const RunConfig& config) {
  api::RunOptions options;
  options.max_evaluations = config.max_evaluations;
  options.max_seconds = config.max_seconds;
  options.snapshot_interval = config.snapshot_interval;
  options.seed = config.seed;
  options.population_size = config.population_size;
  options.n_local = config.n_local;

  auto forest_knobs = [&](const std::string& prefix,
                          const ml::ForestConfig& f) {
    options.knobs.set(prefix + ".trees", static_cast<double>(f.num_trees))
        .set(prefix + ".max_features", static_cast<double>(f.max_features))
        .set(prefix + ".max_depth", static_cast<double>(f.max_depth))
        .set(prefix + ".min_samples_leaf",
             static_cast<double>(f.min_samples_leaf))
        .set(prefix + ".min_samples_split",
             static_cast<double>(f.min_samples_split))
        .set(prefix + ".subsample", f.subsample);
  };
  auto search_knobs = [&](const std::string& prefix,
                          const core::LocalSearchConfig& s) {
    options.knobs.set(prefix + ".patience", static_cast<double>(s.patience))
        .set(prefix + ".max_steps", static_cast<double>(s.max_steps))
        .set(prefix + ".max_evals", static_cast<double>(s.max_evaluations));
  };

  const core::MoelaConfig& m = config.moela;
  options.knobs.set("moela.iter_early", static_cast<double>(m.iter_early))
      .set("moela.delta", m.delta)
      .set("moela.neighborhood_size",
           static_cast<double>(m.neighborhood_size))
      .set("moela.max_generations", static_cast<double>(m.max_generations))
      .set("moela.train_capacity", static_cast<double>(m.train_capacity))
      .set("moela.train_interval", static_cast<double>(m.train_interval))
      .set("moela.max_replacements", static_cast<double>(m.max_replacements))
      .set("moela.guide_mode",
           m.guide_mode == core::GuideMode::kImprovement ? 1.0 : 0.0)
      .set("moela.use_ml_guide", m.use_ml_guide ? 1.0 : 0.0)
      .set("moela.use_local_search", m.use_local_search ? 1.0 : 0.0)
      .set("moela.use_ea", m.use_ea ? 1.0 : 0.0);
  search_knobs("moela.ls", m.local_search);
  forest_knobs("moela.forest", m.forest);

  const baselines::MoosConfig& s = config.moos;
  options.knobs
      .set("moos.max_iterations", static_cast<double>(s.max_iterations))
      .set("moos.temperature", s.temperature)
      .set("moos.gain_ema", s.gain_ema);
  search_knobs("moos.ls", s.search);

  const baselines::MooStageConfig& st = config.stage;
  options.knobs
      .set("stage.max_iterations", static_cast<double>(st.max_iterations))
      .set("stage.iter_early", static_cast<double>(st.iter_early))
      .set("stage.meta_candidates", static_cast<double>(st.meta_candidates))
      .set("stage.train_capacity", static_cast<double>(st.train_capacity))
      .set("stage.ls.max_steps", static_cast<double>(st.search.max_steps))
      .set("stage.ls.neighbors_per_step",
           static_cast<double>(st.search.neighbors_per_step));
  forest_knobs("stage.forest", st.forest);

  return options;
}

}  // namespace moela::exp
