// Fixture: a raw std::mutex with an explicit, reasoned waiver — the
// escape hatch for code that must interoperate with an API that hands
// out std types. The waiver must suppress the finding and be listed.
#include <mutex>

namespace moela::api {

struct Fixture {
  // moela-lint: allow(naked-mutex) third-party callback API hands us this type
  std::mutex external_mutex;
};

}  // namespace moela::api
