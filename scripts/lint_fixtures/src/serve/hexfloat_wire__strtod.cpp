// Fixture: seeded violation — strtod honors LC_NUMERIC.
#include <cstdlib>
double parse(const char* s) { return std::strtod(s, nullptr); }
