#include "api/snapshot.hpp"

#include <utility>

#include "api/result_cache.hpp"
#include "util/numeric.hpp"

namespace moela::api {
namespace {

using util::Json;
using util::JsonError;

std::string salt() {
  return "moela-snap-v" + util::dec(kSnapshotSchemaVersion) + "|";
}

/// Canonical checksum payload: every field that decides what a replay does,
/// rendered exactly (hexfloat). The digest re-uses the cache's FNV-1a so
/// one hashing discipline covers every moela disk artifact.
std::string checksum_payload(const RunSnapshot& snapshot) {
  std::string payload = snapshot.fingerprint;
  payload += '\n';
  payload += util::dec(snapshot.evaluations);
  for (const auto& row : snapshot.journal) {
    payload += '\n';
    bool first = true;
    for (double v : row) {
      if (!first) payload += ',';
      first = false;
      payload += util::hexfloat(v);
    }
  }
  return payload;
}

std::string checksum_of(const RunSnapshot& snapshot) {
  return ResultCache::hash_key(checksum_payload(snapshot));
}

}  // namespace

std::string snapshot_fingerprint(const RunRequest& request) {
  const std::string key = request.cache_key();
  if (key.empty()) return {};  // bound problem: no identity, no checkpoint
  return salt() + key;
}

Json snapshot_to_json(const RunSnapshot& snapshot) {
  Json journal = Json::array();
  for (const auto& row : snapshot.journal) {
    Json json_row = Json::array();
    for (double v : row) json_row.append(util::exact_number(v));
    journal.append(std::move(json_row));
  }
  Json out = Json::object();
  out.set("fingerprint", snapshot.fingerprint)
      .set("evaluations", snapshot.evaluations)
      .set("journal", std::move(journal))
      .set("checksum", checksum_of(snapshot));
  return out;
}

RunSnapshot snapshot_from_json(const Json& json) {
  if (!json.is_object()) throw JsonError("snapshot: not a JSON object");
  RunSnapshot snapshot;

  const Json* fingerprint = json.find("fingerprint");
  if (fingerprint == nullptr || !fingerprint->is_string()) {
    throw JsonError("snapshot: missing 'fingerprint'");
  }
  snapshot.fingerprint = fingerprint->as_string();
  if (snapshot.fingerprint.rfind(salt(), 0) != 0) {
    throw JsonError("snapshot: fingerprint lacks the '" + salt() +
                    "' schema salt (stale or foreign snapshot)");
  }

  const Json* evaluations = json.find("evaluations");
  if (evaluations == nullptr) {
    throw JsonError("snapshot: missing 'evaluations'");
  }
  snapshot.evaluations = static_cast<std::size_t>(evaluations->as_u64());
  if (snapshot.evaluations == 0) {
    throw JsonError("snapshot: covers zero evaluations");
  }

  const Json* journal = json.find("journal");
  if (journal == nullptr || !journal->is_array()) {
    throw JsonError("snapshot: missing 'journal'");
  }
  snapshot.journal.reserve(journal->as_array().size());
  std::size_t width = 0;
  for (const auto& json_row : journal->as_array()) {
    if (!json_row.is_array() || json_row.as_array().empty()) {
      throw JsonError("snapshot: journal rows must be non-empty arrays");
    }
    moo::ObjectiveVector row;
    row.reserve(json_row.as_array().size());
    for (const auto& v : json_row.as_array()) {
      row.push_back(util::exact_to_double(v));
    }
    if (width == 0) {
      width = row.size();
    } else if (row.size() != width) {
      throw JsonError("snapshot: ragged journal (objective count changed "
                      "mid-run)");
    }
    snapshot.journal.push_back(std::move(row));
  }
  if (snapshot.evaluations != snapshot.journal.size()) {
    throw JsonError("snapshot: 'evaluations' (" +
                    util::dec(snapshot.evaluations) +
                    ") disagrees with the journal (" +
                    util::dec(snapshot.journal.size()) + " entries)");
  }

  const Json* checksum = json.find("checksum");
  if (checksum == nullptr || !checksum->is_string()) {
    throw JsonError("snapshot: missing 'checksum'");
  }
  if (checksum->as_string() != checksum_of(snapshot)) {
    throw JsonError("snapshot: checksum mismatch (corrupt or tampered)");
  }
  return snapshot;
}

std::string snapshot_to_text(const RunSnapshot& snapshot) {
  return snapshot_to_json(snapshot).dump() + "\n";
}

RunSnapshot snapshot_from_text(const std::string& text) {
  std::string trimmed = text;
  while (!trimmed.empty() &&
         (trimmed.back() == '\n' || trimmed.back() == '\r' ||
          trimmed.back() == ' ' || trimmed.back() == '\t')) {
    trimmed.pop_back();
  }
  std::string error;
  const auto parsed = Json::try_parse(trimmed, &error);
  if (!parsed) throw JsonError("snapshot: bad JSON: " + error);
  return snapshot_from_json(*parsed);
}

}  // namespace moela::api
