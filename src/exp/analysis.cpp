#include "exp/analysis.hpp"

#include <algorithm>
#include <stdexcept>

#include "moo/hypervolume.hpp"
#include "moo/pareto.hpp"

namespace moela::exp {

ObjectiveBounds global_bounds(const SnapshotSet& runs) {
  ObjectiveBounds bounds;
  bool first = true;
  for (const auto& run : runs) {
    for (const auto& snapshot : run) {
      for (const auto& p : snapshot.front) {
        if (first) {
          bounds.ideal = p;
          bounds.nadir = p;
          first = false;
          continue;
        }
        for (std::size_t i = 0; i < p.size(); ++i) {
          bounds.ideal[i] = std::min(bounds.ideal[i], p[i]);
          bounds.nadir[i] = std::max(bounds.nadir[i], p[i]);
        }
      }
    }
  }
  if (first) throw std::invalid_argument("global_bounds: no points");
  return bounds;
}

std::vector<moo::ConvergenceTrace> phv_traces(const SnapshotSet& runs,
                                              const ObjectiveBounds& bounds) {
  std::vector<moo::ConvergenceTrace> traces;
  traces.reserve(runs.size());
  for (const auto& run : runs) {
    moo::ConvergenceTrace trace;
    trace.reserve(run.size());
    for (const auto& snapshot : run) {
      moo::TracePoint point;
      point.evaluations = snapshot.evaluations;
      point.seconds = snapshot.seconds;
      point.phv = moo::normalized_hypervolume(snapshot.front, bounds.ideal,
                                              bounds.nadir);
      trace.push_back(point);
    }
    traces.push_back(std::move(trace));
  }
  return traces;
}

double final_phv(const std::vector<moo::ObjectiveVector>& front,
                 const ObjectiveBounds& bounds) {
  return moo::normalized_hypervolume(front, bounds.ideal, bounds.nadir);
}

double phv_gain(double ours, double other) {
  if (other <= 0.0) return 0.0;
  return ours / other - 1.0;
}

}  // namespace moela::exp
