#include <gtest/gtest.h>

#include <cmath>

#include "ml/dataset.hpp"
#include "ml/decision_tree.hpp"
#include "ml/random_forest.hpp"
#include "util/rng.hpp"

namespace moela::ml {
namespace {

TEST(Dataset, StoresAndRetrieves) {
  Dataset d(2);
  d.add({1.0, 2.0}, 3.0);
  EXPECT_EQ(d.size(), 1u);
  EXPECT_EQ(d.features(0)[0], 1.0);
  EXPECT_EQ(d.target(0), 3.0);
}

TEST(Dataset, WidthMismatchThrows) {
  Dataset d(3);
  EXPECT_THROW(d.add({1.0}, 0.0), std::invalid_argument);
}

TEST(Dataset, SlidingWindowEvictsOldest) {
  Dataset d(1, 3);
  for (int i = 0; i < 5; ++i) {
    d.add({static_cast<double>(i)}, static_cast<double>(i));
  }
  EXPECT_EQ(d.size(), 3u);
  EXPECT_EQ(d.target(0), 2.0);  // 0 and 1 evicted
  EXPECT_EQ(d.target(2), 4.0);
}

Dataset make_linear_dataset(std::size_t n, util::Rng& rng) {
  Dataset d(2);
  for (std::size_t i = 0; i < n; ++i) {
    const double x0 = rng.uniform();
    const double x1 = rng.uniform();
    d.add({x0, x1}, 2.0 * x0 - 3.0 * x1 + 1.0);
  }
  return d;
}

TEST(DecisionTree, FitsConstantTarget) {
  Dataset d(1);
  for (int i = 0; i < 20; ++i) d.add({static_cast<double>(i)}, 7.0);
  util::Rng rng(1);
  DecisionTree tree;
  tree.fit(d, {}, rng);
  EXPECT_DOUBLE_EQ(tree.predict(std::vector<double>{5.0}), 7.0);
  EXPECT_EQ(tree.node_count(), 1u);  // constant target -> single leaf
}

TEST(DecisionTree, FitsStepFunctionExactly) {
  Dataset d(1);
  for (int i = 0; i < 50; ++i) {
    const double x = i / 50.0;
    d.add({x}, x < 0.5 ? 0.0 : 1.0);
  }
  util::Rng rng(2);
  DecisionTree tree;
  tree.fit(d, {}, rng);
  EXPECT_NEAR(tree.predict(std::vector<double>{0.2}), 0.0, 1e-9);
  EXPECT_NEAR(tree.predict(std::vector<double>{0.8}), 1.0, 1e-9);
}

TEST(DecisionTree, RespectsMaxDepth) {
  util::Rng rng(3);
  Dataset d = make_linear_dataset(200, rng);
  TreeConfig config;
  config.max_depth = 3;
  DecisionTree tree;
  tree.fit(d, config, rng);
  EXPECT_LE(tree.depth(), 4u);  // depth counts nodes; root at depth 1
}

TEST(DecisionTree, PredictBeforeFitThrows) {
  DecisionTree tree;
  EXPECT_THROW(tree.predict(std::vector<double>{1.0}), std::logic_error);
}

TEST(DecisionTree, EmptyFitThrows) {
  Dataset d(1);
  util::Rng rng(4);
  DecisionTree tree;
  EXPECT_THROW(tree.fit(d, {}, rng), std::invalid_argument);
}

TEST(DecisionTree, ReducesErrorVsMeanPredictor) {
  util::Rng rng(5);
  Dataset d = make_linear_dataset(300, rng);
  DecisionTree tree;
  tree.fit(d, {}, rng);
  double mean = 0.0;
  for (std::size_t i = 0; i < d.size(); ++i) mean += d.target(i);
  mean /= static_cast<double>(d.size());
  double tree_err = 0.0, mean_err = 0.0;
  for (std::size_t i = 0; i < d.size(); ++i) {
    const double p = tree.predict(d.features(i));
    tree_err += (p - d.target(i)) * (p - d.target(i));
    mean_err += (mean - d.target(i)) * (mean - d.target(i));
  }
  EXPECT_LT(tree_err, 0.2 * mean_err);
}

TEST(RandomForest, FitsLinearFunctionWell) {
  util::Rng rng(6);
  Dataset d = make_linear_dataset(500, rng);
  ForestConfig config;
  config.num_trees = 20;
  RandomForest forest(config);
  forest.fit(d, rng);
  EXPECT_GT(RandomForest::r_squared(forest, d), 0.9);
}

TEST(RandomForest, GeneralizesOnHeldOut) {
  util::Rng rng(7);
  Dataset train = make_linear_dataset(800, rng);
  ForestConfig config;
  config.num_trees = 24;
  RandomForest forest(config);
  forest.fit(train, rng);
  // Held-out points from the same function.
  double err = 0.0;
  for (int i = 0; i < 100; ++i) {
    const double x0 = rng.uniform();
    const double x1 = rng.uniform();
    const double y = 2.0 * x0 - 3.0 * x1 + 1.0;
    const double p = forest.predict(std::vector<double>{x0, x1});
    err += (p - y) * (p - y);
  }
  EXPECT_LT(err / 100.0, 0.05);
}

TEST(RandomForest, DeterministicGivenSeed) {
  util::Rng rng1(8), rng2(8);
  Dataset d = make_linear_dataset(200, rng1);
  util::Rng fit1(99), fit2(99);
  RandomForest f1, f2;
  f1.fit(d, fit1);
  f2.fit(d, fit2);
  util::Rng probe(100);
  for (int i = 0; i < 20; ++i) {
    const std::vector<double> x{probe.uniform(), probe.uniform()};
    EXPECT_DOUBLE_EQ(f1.predict(x), f2.predict(x));
  }
}

TEST(RandomForest, EmptyDatasetThrows) {
  Dataset d(2);
  util::Rng rng(9);
  RandomForest f;
  EXPECT_THROW(f.fit(d, rng), std::invalid_argument);
}

TEST(RandomForest, PredictBeforeFitThrows) {
  RandomForest f;
  EXPECT_THROW(f.predict(std::vector<double>{1.0, 2.0}), std::logic_error);
}

TEST(RandomForest, RSquaredPerfectOnConstant) {
  Dataset d(1);
  for (int i = 0; i < 30; ++i) d.add({static_cast<double>(i)}, 5.0);
  util::Rng rng(10);
  RandomForest f;
  f.fit(d, rng);
  EXPECT_DOUBLE_EQ(RandomForest::r_squared(f, d), 1.0);
}

// Property sweep: the forest must beat the mean predictor on a variety of
// nonlinear targets (the Eval function's job is exactly this kind of
// regression).
class ForestTargetSweep : public ::testing::TestWithParam<int> {};

TEST_P(ForestTargetSweep, BeatsMeanPredictor) {
  const int kind = GetParam();
  util::Rng rng(50 + kind);
  Dataset d(3);
  for (int i = 0; i < 400; ++i) {
    const double x0 = rng.uniform(), x1 = rng.uniform(), x2 = rng.uniform();
    double y = 0.0;
    switch (kind) {
      case 0: y = x0 * x1; break;
      case 1: y = std::sin(6.28 * x0) + x2; break;
      case 2: y = (x0 > 0.5 ? 1.0 : 0.0) * (x1 > 0.5 ? 1.0 : 0.0); break;
      case 3: y = std::abs(x0 - x1) + 0.1 * x2; break;
    }
    d.add({x0, x1, x2}, y);
  }
  ForestConfig config;
  config.num_trees = 16;
  RandomForest forest(config);
  forest.fit(d, rng);
  EXPECT_GT(RandomForest::r_squared(forest, d), 0.5) << "kind=" << kind;
}

INSTANTIATE_TEST_SUITE_P(Targets, ForestTargetSweep,
                         ::testing::Values(0, 1, 2, 3));

}  // namespace
}  // namespace moela::ml
