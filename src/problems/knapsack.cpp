#include "problems/knapsack.hpp"

#include <algorithm>
#include <numeric>

namespace moela::problems {

MultiObjectiveKnapsack::MultiObjectiveKnapsack(std::size_t num_items,
                                               std::size_t num_objectives,
                                               std::uint64_t seed) {
  util::Rng rng(seed);
  weights_.resize(num_items);
  for (auto& w : weights_) w = rng.uniform(10.0, 100.0);
  profits_.assign(num_objectives, std::vector<double>(num_items));
  for (auto& dim : profits_) {
    for (auto& p : dim) p = rng.uniform(10.0, 100.0);
  }
  capacity_ =
      0.5 * std::accumulate(weights_.begin(), weights_.end(), 0.0);

  removal_order_.resize(num_items);
  std::iota(removal_order_.begin(), removal_order_.end(), std::size_t{0});
  std::vector<double> ratio(num_items, 0.0);
  for (std::size_t i = 0; i < num_items; ++i) {
    double best = 0.0;
    for (const auto& dim : profits_) best = std::max(best, dim[i]);
    ratio[i] = best / weights_[i];
  }
  std::sort(removal_order_.begin(), removal_order_.end(),
            [&](std::size_t a, std::size_t b) { return ratio[a] < ratio[b]; });
}

moo::ObjectiveVector MultiObjectiveKnapsack::evaluate(const Design& d) const {
  moo::ObjectiveVector f(num_objectives(), 0.0);
  for (std::size_t m = 0; m < profits_.size(); ++m) {
    double total = 0.0;
    for (std::size_t i = 0; i < d.size(); ++i) {
      if (d[i]) total += profits_[m][i];
    }
    f[m] = -total;  // minimize the negated profit
  }
  return f;
}

MultiObjectiveKnapsack::Design MultiObjectiveKnapsack::random_design(
    util::Rng& rng) const {
  Design d(num_items());
  for (auto& bit : d) bit = rng.chance(0.5) ? 1 : 0;
  repair(d);
  return d;
}

MultiObjectiveKnapsack::Design MultiObjectiveKnapsack::random_neighbor(
    const Design& d, util::Rng& rng) const {
  Design out = d;
  const std::size_t i = rng.below(out.size());
  out[i] ^= 1;
  repair(out);
  return out;
}

MultiObjectiveKnapsack::Design MultiObjectiveKnapsack::crossover(
    const Design& a, const Design& b, util::Rng& rng) const {
  Design child(a.size());
  for (std::size_t i = 0; i < child.size(); ++i) {
    child[i] = rng.chance(0.5) ? a[i] : b[i];
  }
  repair(child);
  return child;
}

MultiObjectiveKnapsack::Design MultiObjectiveKnapsack::mutate(
    const Design& d, util::Rng& rng) const {
  Design out = d;
  const double p = 1.0 / static_cast<double>(out.size());
  for (auto& bit : out) {
    if (rng.chance(p)) bit ^= 1;
  }
  repair(out);
  return out;
}

std::vector<double> MultiObjectiveKnapsack::features(const Design& d) const {
  std::vector<double> f(d.size());
  for (std::size_t i = 0; i < d.size(); ++i) {
    f[i] = static_cast<double>(d[i]);
  }
  return f;
}

bool MultiObjectiveKnapsack::feasible(const Design& d) const {
  return total_weight(d) <= capacity_;
}

double MultiObjectiveKnapsack::total_weight(const Design& d) const {
  double w = 0.0;
  for (std::size_t i = 0; i < d.size(); ++i) {
    if (d[i]) w += weights_[i];
  }
  return w;
}

void MultiObjectiveKnapsack::repair(Design& d) const {
  double w = total_weight(d);
  for (std::size_t i : removal_order_) {
    if (w <= capacity_) break;
    if (d[i]) {
      d[i] = 0;
      w -= weights_[i];
    }
  }
}

}  // namespace moela::problems
