// Scheduling policy vocabulary shared by every serving layer: the three
// priority classes a "run" batch can ride under, their wire names, and the
// per-class dispatch weights of the weighted-fair queue.
//
// A class is a *scheduling* attribute, never an execution attribute: it
// decides when a run starts (queue order, admission) and what the health
// verb reports, but a run produces the same bit-identical report whatever
// class carried it — determinism is why priority lives beside the wire
// protocol instead of inside RunOptions.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace moela::serve::sched {

/// Priority classes, most to least urgent. The enum values are the array
/// index used throughout the subsystem (queues, weights, counters).
enum class Priority : std::uint8_t {
  /// A user is waiting on the answer: favored heavily at dispatch.
  kInteractive = 0,
  /// The default for an unlabeled "run" verb.
  kNormal = 1,
  /// Bulk sweeps and benches: gets the leftover share, never starved
  /// (every class's weight is >= 1).
  kBatch = 2,
};

inline constexpr std::size_t kNumClasses = 3;

/// The wire spelling of each class ("interactive" / "normal" / "batch").
inline std::string priority_name(Priority priority) {
  switch (priority) {
    case Priority::kInteractive:
      return "interactive";
    case Priority::kBatch:
      return "batch";
    case Priority::kNormal:
      break;
  }
  return "normal";
}

/// Parses a wire spelling. Returns false (leaving `out` untouched) for
/// anything else, so callers can reject typos instead of misclassifying.
inline bool parse_priority(const std::string& text, Priority& out) {
  if (text == "interactive") {
    out = Priority::kInteractive;
    return true;
  }
  if (text == "normal") {
    out = Priority::kNormal;
    return true;
  }
  if (text == "batch") {
    out = Priority::kBatch;
    return true;
  }
  return false;
}

/// Per-class dispatch weights: while several classes have runnable work,
/// class c receives weight(c) dispatches per weighted round-robin cycle.
/// Every weight is clamped to >= 1 at use, so no class can be starved by
/// configuration — batch work always drains, just last.
struct Weights {
  std::uint32_t interactive = 8;
  std::uint32_t normal = 4;
  std::uint32_t batch = 1;

  std::uint32_t of(Priority priority) const {
    switch (priority) {
      case Priority::kInteractive:
        return interactive > 0 ? interactive : 1;
      case Priority::kBatch:
        return batch > 0 ? batch : 1;
      case Priority::kNormal:
        break;
    }
    return normal > 0 ? normal : 1;
  }
};

/// One class's scheduler counters, as reported per-class by the health
/// verb. `queued`/`running` are instantaneous; `completed`/`shed` are
/// lifetime totals. All counts are in runs (a shed batch of 8 adds 8).
struct ClassCounters {
  std::uint64_t queued = 0;
  std::uint64_t running = 0;
  std::uint64_t completed = 0;
  std::uint64_t shed = 0;
};

}  // namespace moela::serve::sched
