// Uniformly spread weight vectors for decomposition-based algorithms.
//
// MOELA/MOEA/D decompose an M-objective problem into N scalar sub-problems,
// each steered by a weight vector on the unit simplex. We use the Das–Dennis
// simplex-lattice construction and, when the lattice size does not equal the
// requested N, reduce it with a greedy max-min-distance selection that always
// retains the simplex corners (the paper's 2-objective example
// {[0,1],[0.1,0.9],...,[1,0]} is exactly the H=10 lattice).
#pragma once

#include <cstddef>
#include <vector>

namespace moela::moo {

using WeightVector = std::vector<double>;

/// Generates the full Das–Dennis simplex lattice with H divisions for
/// `num_objectives` dimensions: all vectors (i1/H, ..., iM/H) with
/// sum(i) == H. Lattice size is C(H + M - 1, M - 1).
std::vector<WeightVector> simplex_lattice(std::size_t num_objectives,
                                          std::size_t divisions);

/// Number of points in the simplex lattice, C(H + M - 1, M - 1).
std::size_t simplex_lattice_size(std::size_t num_objectives,
                                 std::size_t divisions);

/// Produces exactly `n` evenly spread weight vectors for `num_objectives`
/// dimensions: builds the smallest lattice with >= n points and selects an
/// n-subset by greedy farthest-point (max-min Euclidean distance) starting
/// from the corner vectors. Deterministic.
std::vector<WeightVector> uniform_weights(std::size_t num_objectives,
                                          std::size_t n);

/// For each weight vector, the indices of the `t` weight vectors closest in
/// Euclidean distance (including itself), sorted nearest-first. This is the
/// MOEA/D neighborhood structure.
std::vector<std::vector<std::size_t>> weight_neighborhoods(
    const std::vector<WeightVector>& weights, std::size_t t);

}  // namespace moela::moo
