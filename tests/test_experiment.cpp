#include <gtest/gtest.h>

#include <set>
#include <string>

#include "exp/analysis.hpp"
#include "exp/edp_selection.hpp"
#include "noc/generator.hpp"
#include "exp/experiment.hpp"
#include "problems/zdt.hpp"

namespace moela::exp {
namespace {

using problems::Zdt;
using problems::ZdtVariant;

RunConfig small_config() {
  RunConfig c;
  c.max_evaluations = 1500;
  c.snapshot_interval = 250;
  c.seed = 3;
  c.population_size = 16;
  c.n_local = 3;
  c.moela.neighborhood_size = 6;
  c.moela.forest.num_trees = 6;
  c.moela.forest.max_depth = 6;
  c.moela.local_search.max_steps = 10;
  c.moela.local_search.patience = 5;
  c.moela.local_search.max_evaluations = 40;
  c.moos.search.max_steps = 8;
  c.moos.search.patience = 4;
  c.moos.search.max_evaluations = 32;
  c.stage.search.max_steps = 8;
  c.stage.search.neighbors_per_step = 4;
  c.stage.forest.num_trees = 6;
  c.stage.forest.max_depth = 6;
  return c;
}

TEST(Runner, EveryAlgorithmProducesAWellFormedResult) {
  Zdt problem(ZdtVariant::kZdt1, 10);
  const auto config = small_config();
  for (Algorithm a :
       {Algorithm::kMoela, Algorithm::kMoeaD, Algorithm::kMoos,
        Algorithm::kMooStage, Algorithm::kNsga2, Algorithm::kMoelaNoMlGuide,
        Algorithm::kMoelaEaOnly, Algorithm::kMoelaLocalOnly}) {
    const auto result = run_algorithm(a, problem, config);
    EXPECT_EQ(result.algorithm, a);
    EXPECT_GE(result.evaluations, config.max_evaluations);
    EXPECT_FALSE(result.snapshots.empty());
    EXPECT_FALSE(result.final_front.empty());
    EXPECT_FALSE(result.final_designs.empty()) << algorithm_name(a);
    EXPECT_EQ(result.final_designs.size(), result.final_objectives.size());
    // Snapshot evaluations must be non-decreasing.
    for (std::size_t i = 1; i < result.snapshots.size(); ++i) {
      EXPECT_GE(result.snapshots[i].evaluations,
                result.snapshots[i - 1].evaluations);
    }
  }
}

TEST(Runner, AlgorithmNamesAreUnique) {
  std::set<std::string> names;
  for (Algorithm a :
       {Algorithm::kMoela, Algorithm::kMoeaD, Algorithm::kMoos,
        Algorithm::kMooStage, Algorithm::kNsga2, Algorithm::kMoelaNoMlGuide,
        Algorithm::kMoelaEaOnly, Algorithm::kMoelaLocalOnly}) {
    names.insert(algorithm_name(a));
  }
  EXPECT_EQ(names.size(), 8u);
}

TEST(Runner, ParseAlgorithmRoundTripsEveryEnumerator) {
  for (Algorithm a :
       {Algorithm::kMoela, Algorithm::kMoeaD, Algorithm::kMoos,
        Algorithm::kMooStage, Algorithm::kNsga2, Algorithm::kMoelaNoMlGuide,
        Algorithm::kMoelaEaOnly, Algorithm::kMoelaLocalOnly}) {
    // Display name and registry key both parse back to the enumerator, so
    // the enum and its names cannot drift silently.
    const auto from_name = parse_algorithm(algorithm_name(a));
    ASSERT_TRUE(from_name.has_value()) << algorithm_name(a);
    EXPECT_EQ(*from_name, a);
    const auto from_key = parse_algorithm(algorithm_key(a));
    ASSERT_TRUE(from_key.has_value()) << algorithm_key(a);
    EXPECT_EQ(*from_key, a);
  }
}

TEST(Runner, ParseAlgorithmRejectsUnknownNames) {
  EXPECT_FALSE(parse_algorithm("").has_value());
  EXPECT_FALSE(parse_algorithm("moela2").has_value());
  EXPECT_FALSE(parse_algorithm("MOELA ").has_value());
}

TEST(Runner, EveryAlgorithmKeyIsRegistered) {
  for (Algorithm a :
       {Algorithm::kMoela, Algorithm::kMoeaD, Algorithm::kMoos,
        Algorithm::kMooStage, Algorithm::kNsga2, Algorithm::kMoelaNoMlGuide,
        Algorithm::kMoelaEaOnly, Algorithm::kMoelaLocalOnly}) {
    EXPECT_TRUE(api::registry().contains(algorithm_key(a)))
        << algorithm_key(a);
  }
}

TEST(Analysis, GlobalBoundsCoverAllPoints) {
  SnapshotSet runs;
  runs.push_back({{100, 0.0, {{1.0, 5.0}, {2.0, 3.0}}}});
  runs.push_back({{100, 0.0, {{0.5, 8.0}}}});
  const auto bounds = global_bounds(runs);
  EXPECT_EQ(bounds.ideal, (moo::ObjectiveVector{0.5, 3.0}));
  EXPECT_EQ(bounds.nadir, (moo::ObjectiveVector{2.0, 8.0}));
}

TEST(Analysis, EmptySnapshotsThrow) {
  EXPECT_THROW(global_bounds({}), std::invalid_argument);
}

TEST(Analysis, TracesAreMonotoneForGrowingArchives) {
  Zdt problem(ZdtVariant::kZdt1, 10);
  const auto result = run_algorithm(Algorithm::kMoela, problem, small_config());
  SnapshotSet runs{result.snapshots};
  const auto bounds = global_bounds(runs);
  const auto traces = phv_traces(runs, bounds);
  ASSERT_EQ(traces.size(), 1u);
  for (std::size_t i = 1; i < traces[0].size(); ++i) {
    // The all-time archive only grows, so PHV never decreases.
    EXPECT_GE(traces[0][i].phv, traces[0][i - 1].phv - 1e-12);
  }
}

TEST(Analysis, PhvGainFormula) {
  EXPECT_NEAR(phv_gain(1.2, 1.0), 0.2, 1e-12);
  EXPECT_NEAR(phv_gain(1.0, 1.0), 0.0, 1e-12);
  EXPECT_EQ(phv_gain(1.0, 0.0), 0.0);  // guarded
}

// --- The Fig. 3 selection rule, with synthetic scored designs. -----------

ScoredDesign make_scored(double edp, double temp, std::size_t index) {
  ScoredDesign s;
  s.score.edp = edp;
  s.score.peak_temperature = temp;
  s.score.energy = edp;  // placeholder
  s.score.exec_time = 1.0;
  s.index = index;
  return s;
}

TEST(EdpSelection, PicksLowestEdpWithinThreshold) {
  // Global min temperature is 100 -> threshold 105.
  std::vector<std::vector<ScoredDesign>> pops{
      {make_scored(50.0, 104.0, 0), make_scored(10.0, 120.0, 1),
       make_scored(40.0, 100.0, 2)},
      {make_scored(30.0, 103.0, 0), make_scored(20.0, 105.0, 1)},
  };
  const auto sel = select_by_edp(pops);
  ASSERT_EQ(sel.size(), 2u);
  EXPECT_TRUE(sel[0].within_threshold);
  EXPECT_EQ(sel[0].chosen.index, 2u);  // 40 < 50, the 10-EDP one is too hot
  EXPECT_TRUE(sel[1].within_threshold);
  EXPECT_EQ(sel[1].chosen.index, 1u);  // 20 at exactly the threshold
}

TEST(EdpSelection, FallsBackToCoolestWhenNoneQualify) {
  std::vector<std::vector<ScoredDesign>> pops{
      {make_scored(5.0, 100.0, 0)},                       // sets threshold 105
      {make_scored(1.0, 200.0, 0), make_scored(2.0, 150.0, 1)},
  };
  const auto sel = select_by_edp(pops);
  EXPECT_TRUE(sel[0].within_threshold);
  EXPECT_FALSE(sel[1].within_threshold);
  EXPECT_EQ(sel[1].chosen.index, 1u);  // coolest, not lowest EDP
}

TEST(EdpSelection, EmptyThrows) {
  EXPECT_THROW(select_by_edp({}), std::invalid_argument);
}

TEST(EdpSelection, OverheadRelativeToBaseline) {
  std::vector<EdpSelection> sels(3);
  sels[0].chosen = make_scored(10.0, 0, 0);
  sels[1].chosen = make_scored(11.0, 0, 0);
  sels[2].chosen = make_scored(9.0, 0, 0);
  const auto over = edp_overheads(sels, 0);
  EXPECT_NEAR(over[0], 0.0, 1e-12);
  EXPECT_NEAR(over[1], 0.1, 1e-12);
  EXPECT_NEAR(over[2], -0.1, 1e-12);
}

TEST(EdpSelection, ScorePopulationScoresEveryDesign) {
  const auto spec = noc::PlatformSpec::small_3x3x3();
  const auto workload = sim::make_workload(spec, sim::RodiniaApp::kBfs, 1);
  noc::DesignOps ops(spec);
  util::Rng rng(5);
  std::vector<noc::NocDesign> designs;
  for (int i = 0; i < 4; ++i) designs.push_back(ops.random_design(rng));
  const auto scored = score_population(spec, designs, workload,
                                       sim::archetype(sim::RodiniaApp::kBfs));
  ASSERT_EQ(scored.size(), 4u);
  for (std::size_t i = 0; i < scored.size(); ++i) {
    EXPECT_EQ(scored[i].index, i);
    EXPECT_GT(scored[i].score.edp, 0.0);
    EXPECT_GT(scored[i].score.peak_temperature, 0.0);
  }
}

TEST(Metrics, SpeedupBetweenRealRuns) {
  // A fast run (MOELA) and a handicapped run (MOEA/D at the same budget) on
  // ZDT1: the speedup metric must be computable and positive.
  Zdt problem(ZdtVariant::kZdt1, 10);
  auto config = small_config();
  config.max_evaluations = 2500;
  const auto moela_run = run_algorithm(Algorithm::kMoela, problem, config);
  const auto moead_run = run_algorithm(Algorithm::kMoeaD, problem, config);
  SnapshotSet runs{moela_run.snapshots, moead_run.snapshots};
  const auto bounds = global_bounds(runs);
  const auto traces = phv_traces(runs, bounds);
  const auto s = moo::speedup_factor(traces[0], traces[1]);
  if (s.has_value()) {
    EXPECT_GT(*s, 0.0);
  }
}

}  // namespace
}  // namespace moela::exp
