// Synthetic Rodinia-like workload profiles — the substitution for the
// paper's gem5-gpu + GPGPU-Sim traffic profiling and McPAT/GPUWattch power
// profiling (see DESIGN.md, "Substitutions").
//
// Each of the seven applications used in Sec. V (BP, BFS, GAU, HOT, PF, SC,
// SRAD) is modeled as a deterministic traffic archetype over the platform's
// logical cores plus per-PE average power. The archetype parameters encode
// the published qualitative behaviour of each kernel (e.g. BFS is irregular
// and latency-bound with poor locality; Streamcluster/SRAD are streaming and
// bandwidth-bound; Gaussian has phase-skewed hotspots). The DSE algorithms
// only ever see the resulting (f_ij, power) pair, so these profiles exercise
// exactly the code paths the paper's profiles do.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "noc/platform.hpp"
#include "noc/workload.hpp"

namespace moela::sim {

enum class RodiniaApp {
  kBackprop,       // BP   - ML training, balanced CPU+GPU, moderate sharing
  kBfs,            // BFS  - graph traversal, irregular, latency-bound
  kGaussian,       // GAU  - dense LA, skewed hot rows (hotspot traffic)
  kHotspot3D,      // HOT  - stencil, neighbor sharing, high GPU activity
  kPathfinder,     // PF   - dynamic programming, wavefront sharing
  kStreamcluster,  // SC   - streaming clustering, bandwidth-bound
  kSrad,           // SRAD - image stencil, streaming + reductions
};

/// The seven applications in the order the paper's tables list them.
const std::vector<RodiniaApp>& all_rodinia_apps();

/// Short uppercase tag used in tables ("BP", "BFS", ...).
std::string app_name(RodiniaApp app);

/// Archetype knobs for traffic/power synthesis; exposed so tests and
/// ablations can build custom workloads.
struct AppArchetype {
  double cpu_llc = 1.0;       // CPU <-> LLC request/response intensity
  double gpu_llc = 1.0;       // GPU <-> LLC streaming intensity
  double gpu_gpu = 0.1;       // GPU <-> GPU sharing intensity
  double cpu_cpu = 0.05;      // CPU coherence chatter
  double llc_skew = 0.5;      // Zipf exponent of LLC popularity (hotspots)
  double gpu_locality = 0.5;  // 0 = uniform partner choice, 1 = clustered
  double cpu_activity = 1.0;  // power activity factors
  double gpu_activity = 1.0;
  double llc_activity = 1.0;
  double cpu_fraction = 0.5;  // fraction of runtime that is CPU-bound
                              // (consumed by the EDP model)
};

/// The calibrated archetype of each application.
AppArchetype archetype(RodiniaApp app);

/// Power constants (watts) per PE class at activity factor 1.0. Values are
/// McPAT/GPUWattch-scale for a 2.5 GHz x86 core, a 0.7 GHz Maxwell-class SM,
/// and a 256 KB LLC slice.
struct PowerModel {
  double cpu_watts = 2.8;
  double gpu_watts = 1.6;
  double llc_watts = 0.45;
};

/// Synthesizes the deterministic workload (traffic matrix + per-core power)
/// for `app` on `spec`. `seed` perturbs the per-pair weights so different
/// seeds model different input sets of the same kernel; the archetype's
/// structure dominates.
noc::Workload make_workload(const noc::PlatformSpec& spec, RodiniaApp app,
                            std::uint64_t seed = 1,
                            const PowerModel& power = {});

/// Workload with custom archetype (for ablations / property tests).
noc::Workload make_workload(const noc::PlatformSpec& spec,
                            const AppArchetype& arch, const std::string& name,
                            std::uint64_t seed, const PowerModel& power = {});

}  // namespace moela::sim
