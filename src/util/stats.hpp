// Small statistics helpers shared by objective evaluation, metrics reporting,
// and the experiment harness.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace moela::util {

/// Streaming mean/variance accumulator (Welford's algorithm). Numerically
/// stable for long accumulations; used for link-utilization statistics and
/// benchmark aggregation.
class OnlineStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (n_ == 1 || x < min_) min_ = x;
    if (n_ == 1 || x > max_) max_ = x;
  }

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Population variance (divide by n), matching Eq. (2) of the paper.
  double variance() const {
    return n_ ? m2_ / static_cast<double>(n_) : 0.0;
  }
  /// Sample variance (divide by n-1).
  double sample_variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

double mean(std::span<const double> xs);
/// Population variance (divide by n), matching Eq. (2).
double variance(std::span<const double> xs);
double stddev(std::span<const double> xs);
double median(std::vector<double> xs);  // by value: needs to sort
double min_of(std::span<const double> xs);
double max_of(std::span<const double> xs);
/// Geometric mean; all inputs must be > 0.
double geomean(std::span<const double> xs);
/// Linear-interpolated percentile, p in [0, 100].
double percentile(std::vector<double> xs, double p);

}  // namespace moela::util
