#include "util/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>

#include "util/numeric.hpp"

namespace moela::util {
namespace {

[[noreturn]] void kind_error(const char* wanted, Json::Kind got) {
  static const char* names[] = {"null",   "bool",  "number",
                                "string", "array", "object"};
  throw JsonError(std::string("Json: wanted ") + wanted + ", have " +
                  names[static_cast<int>(got)]);
}

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  out += '"';
}

void append_double(std::string& out, double d) {
  if (!std::isfinite(d)) {
    out += "null";  // JSON has no literal for inf/nan; see header comment
    return;
  }
  // Integral doubles print as integers (cleaner, still exact); everything
  // else gets the shortest round-trip rendering. Both via to_chars, so the
  // process locale can never change the bytes. The magnitude check must
  // come first: casting |d| >= 2^63 to long long is undefined behavior.
  if (std::fabs(d) < 1e15 &&
      d == static_cast<double>(static_cast<long long>(d))) {
    out += dec(static_cast<long long>(d));
  } else {
    out += shortest_double(d);
  }
}

void dump_value(std::string& out, const Json& v);

void dump_array(std::string& out, const JsonArray& a) {
  out += '[';
  bool first = true;
  for (const auto& item : a) {
    if (!first) out += ',';
    first = false;
    dump_value(out, item);
  }
  out += ']';
}

void dump_object(std::string& out, const JsonObject& o) {
  out += '{';
  bool first = true;
  for (const auto& [key, value] : o) {
    if (!first) out += ',';
    first = false;
    append_escaped(out, key);
    out += ':';
    dump_value(out, value);
  }
  out += '}';
}

void dump_value(std::string& out, const Json& v) {
  switch (v.kind()) {
    case Json::Kind::kNull: out += "null"; break;
    case Json::Kind::kBool: out += v.as_bool() ? "true" : "false"; break;
    case Json::Kind::kNumber:
      if (v.holds_u64()) {
        out += dec(v.as_u64());
      } else {
        append_double(out, v.as_double());
      }
      break;
    case Json::Kind::kString: append_escaped(out, v.as_string()); break;
    case Json::Kind::kArray: dump_array(out, v.as_array()); break;
    case Json::Kind::kObject: dump_object(out, v.as_object()); break;
  }
}

// ---------------------------------------------------------------- parser

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json value = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content after JSON value");
    return value;
  }

 private:
  static constexpr int kMaxDepth = 100;

  [[noreturn]] void fail(const std::string& what) const {
    throw JsonError("Json parse error at byte " + dec(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  bool consume(char expected) {
    if (pos_ < text_.size() && text_[pos_] == expected) {
      ++pos_;
      return true;
    }
    return false;
  }

  void expect(char expected) {
    if (!consume(expected)) {
      fail(std::string("expected '") + expected + "'");
    }
  }

  void expect_literal(const char* literal) {
    for (const char* p = literal; *p != '\0'; ++p) {
      if (pos_ >= text_.size() || text_[pos_] != *p) {
        fail(std::string("bad literal (wanted \"") + literal + "\")");
      }
      ++pos_;
    }
  }

  Json parse_value(int depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    skip_ws();
    switch (peek()) {
      case 'n': expect_literal("null"); return Json();
      case 't': expect_literal("true"); return Json(true);
      case 'f': expect_literal("false"); return Json(false);
      case '"': return Json(parse_string());
      case '[': return parse_array(depth);
      case '{': return parse_object(depth);
      default: return parse_number();
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const unsigned char c = text_[pos_++];
      if (c == '"') return out;
      if (c < 0x20) fail("raw control character in string");
      if (c != '\\') {
        out += static_cast<char>(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': append_codepoint(out, parse_hex4()); break;
        default: fail("bad escape");
      }
    }
  }

  unsigned parse_hex4() {
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      if (pos_ >= text_.size()) fail("unterminated \\u escape");
      const char c = text_[pos_++];
      value <<= 4;
      if (c >= '0' && c <= '9') value |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') value |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') value |= static_cast<unsigned>(c - 'A' + 10);
      else fail("bad \\u escape digit");
    }
    return value;
  }

  void append_codepoint(std::string& out, unsigned cp) {
    // Surrogate pair: \uD800-\uDBFF must be followed by \uDC00-\uDFFF.
    if (cp >= 0xD800 && cp <= 0xDBFF) {
      if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
          text_[pos_ + 1] != 'u') {
        fail("lone high surrogate");
      }
      pos_ += 2;
      const unsigned low = parse_hex4();
      if (low < 0xDC00 || low > 0xDFFF) fail("bad low surrogate");
      cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
    } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
      fail("lone low surrogate");
    }
    // UTF-8 encode.
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (consume('-')) {}
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    // A plain non-negative integer keeps u64 storage (exact seeds/budgets);
    // everything else parses as a double, locale-independently.
    if (token.find_first_not_of("0123456789") == std::string::npos) {
      std::uint64_t u = 0;
      if (parse_u64(token, u)) return Json(u);
    }
    double d = 0.0;
    if (!parse_double(token, d)) fail("bad number '" + token + "'");
    return Json(d);
  }

  Json parse_array(int depth) {
    expect('[');
    JsonArray out;
    skip_ws();
    if (consume(']')) return Json(std::move(out));
    for (;;) {
      out.push_back(parse_value(depth + 1));
      skip_ws();
      if (consume(']')) return Json(std::move(out));
      expect(',');
    }
  }

  Json parse_object(int depth) {
    expect('{');
    JsonObject out;
    skip_ws();
    if (consume('}')) return Json(std::move(out));
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      out[std::move(key)] = parse_value(depth + 1);
      skip_ws();
      if (consume('}')) return Json(std::move(out));
      expect(',');
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

bool Json::as_bool() const {
  if (const bool* b = std::get_if<bool>(&value_)) return *b;
  kind_error("bool", kind());
}

double Json::as_double() const {
  if (const double* d = std::get_if<double>(&value_)) return *d;
  if (const std::uint64_t* u = std::get_if<std::uint64_t>(&value_)) {
    return static_cast<double>(*u);
  }
  kind_error("number", kind());
}

std::uint64_t Json::as_u64() const {
  if (const std::uint64_t* u = std::get_if<std::uint64_t>(&value_)) return *u;
  if (const double* d = std::get_if<double>(&value_)) {
    if (*d >= 0.0 && *d < 18446744073709551616.0 &&
        *d == std::floor(*d)) {
      return static_cast<std::uint64_t>(*d);
    }
    throw JsonError("Json: number is not an unsigned integer");
  }
  kind_error("number", kind());
}

const std::string& Json::as_string() const {
  if (const std::string* s = std::get_if<std::string>(&value_)) return *s;
  kind_error("string", kind());
}

const JsonArray& Json::as_array() const {
  if (const JsonArray* a = std::get_if<JsonArray>(&value_)) return *a;
  kind_error("array", kind());
}

const JsonObject& Json::as_object() const {
  if (const JsonObject* o = std::get_if<JsonObject>(&value_)) return *o;
  kind_error("object", kind());
}

const Json* Json::find(const std::string& key) const {
  const JsonObject* o = std::get_if<JsonObject>(&value_);
  if (o == nullptr) return nullptr;
  auto it = o->find(key);
  return it == o->end() ? nullptr : &it->second;
}

Json& Json::set(const std::string& key, Json value) {
  JsonObject* o = std::get_if<JsonObject>(&value_);
  if (o == nullptr) kind_error("object", kind());
  (*o)[key] = std::move(value);
  return *this;
}

Json& Json::append(Json value) {
  JsonArray* a = std::get_if<JsonArray>(&value_);
  if (a == nullptr) kind_error("array", kind());
  a->push_back(std::move(value));
  return *this;
}

std::string Json::dump() const {
  std::string out;
  dump_value(out, *this);
  return out;
}

Json Json::parse(std::string_view text) {
  return Parser(text).parse_document();
}

std::optional<Json> Json::try_parse(std::string_view text,
                                    std::string* error) {
  try {
    return parse(text);
  } catch (const JsonError& e) {
    if (error != nullptr) *error = e.what();
    return std::nullopt;
  }
}

std::uint64_t u64_field_or(const Json& object, const std::string& key,
                           std::uint64_t fallback) {
  const Json* value = object.find(key);
  if (value == nullptr) return fallback;
  try {
    return value->as_u64();
  } catch (const JsonError&) {
    return fallback;
  }
}

double double_field_or(const Json& object, const std::string& key,
                       double fallback) {
  const Json* value = object.find(key);
  return value != nullptr && value->is_number() ? value->as_double()
                                                : fallback;
}

std::string string_field_or(const Json& object, const std::string& key,
                            std::string fallback) {
  const Json* value = object.find(key);
  return value != nullptr && value->is_string() ? value->as_string()
                                                : std::move(fallback);
}

Json exact_number(double value) { return Json(hexfloat(value)); }

double exact_to_double(const Json& value) {
  if (value.is_number()) return value.as_double();
  if (value.is_string()) {
    const std::string& s = value.as_string();
    double d = 0.0;
    if (parse_double(s, d)) return d;
    throw JsonError("Json: string '" + s + "' is not a number");
  }
  throw JsonError("Json: expected a number or numeric string");
}

}  // namespace moela::util
