// Reproduces TABLE I of the paper: speed-up of MOELA compared to MOEA/D and
// MOOS for the 3-, 4-, and 5-objective scenarios across the Rodinia-like
// applications.
//
// Metric (Sec. V.C): T_convergence / T_MOELA, where T_convergence is when
// the competitor reaches its converged PHV (< 0.5% improvement over 5 trace
// windows) and T_MOELA is when MOELA first reaches that same PHV. The time
// axis here is objective-evaluation count (see DESIGN.md substitutions).
//
// Environment knobs: MOELA_BENCH_EVALS, MOELA_BENCH_SMALL, MOELA_BENCH_SEED.
#include <cstdio>
#include <optional>
#include <vector>

#include "exp/scenario.hpp"
#include "moo/metrics.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace moela;

int main() {
  const auto config = exp::paper_bench_config_from_env();
  const std::vector<std::size_t> scenarios{3, 4, 5};
  const auto& apps = sim::all_rodinia_apps();

  // The whole grid as ONE Executor batch (MOELA_BENCH_JOBS workers); grid
  // index = si * apps.size() + ai.
  std::vector<exp::ScenarioCell> grid;
  for (std::size_t si = 0; si < scenarios.size(); ++si) {
    for (std::size_t ai = 0; ai < apps.size(); ++ai) {
      grid.push_back({apps[ai], scenarios[si]});
    }
  }
  const auto results = exp::run_app_scenarios(grid, config);

  // rows[app][competitor(0=MOEA/D,1=MOOS)][scenario] = speedup
  std::vector<std::vector<std::vector<double>>> cells(
      apps.size(),
      std::vector<std::vector<double>>(2, std::vector<double>(3, 0.0)));

  for (std::size_t si = 0; si < scenarios.size(); ++si) {
    for (std::size_t ai = 0; ai < apps.size(); ++ai) {
      const auto& r = results[si * apps.size() + ai];
      // traces[0] = MOELA, [1] = MOEA/D, [2] = MOOS (config order).
      for (std::size_t comp = 0; comp < 2; ++comp) {
        const auto s = moo::speedup_factor_time(r.traces[0], r.traces[comp + 1]);
        // If MOELA never matches the competitor's converged PHV within the
        // budget, report the conservative value 1.0 (no speedup observed).
        cells[ai][comp][si] = s.value_or(1.0);
      }
    }
  }

  util::Table table(
      "TABLE I: speed-up of MOELA compared to MOEA/D and MOOS");
  table.set_header({"App", "MOEA/D 3-obj", "MOEA/D 4-obj", "MOEA/D 5-obj",
                    "MOOS 3-obj", "MOOS 4-obj", "MOOS 5-obj"});
  std::vector<util::OnlineStats> column_stats(6);
  for (std::size_t ai = 0; ai < apps.size(); ++ai) {
    std::vector<std::string> row{sim::app_name(apps[ai])};
    for (std::size_t comp = 0; comp < 2; ++comp) {
      for (std::size_t si = 0; si < 3; ++si) {
        row.push_back(util::fmt(cells[ai][comp][si], 2));
        column_stats[comp * 3 + si].add(cells[ai][comp][si]);
      }
    }
    table.add_row(std::move(row));
  }
  std::vector<std::string> avg{"Average"};
  for (const auto& s : column_stats) avg.push_back(util::fmt(s.mean(), 2));
  table.add_row(std::move(avg));
  table.print();

  std::printf("\nExpected shape (paper): speed-up > 1 throughout; paper "
              "averages 8.91x (MOEA/D) and 38.83x (MOOS) for 5-obj.\n");
  return 0;
}
