// Run-quality metrics and convergence detection (Sec. V.C of the paper).
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "moo/objective.hpp"

namespace moela::moo {

/// Inverted generational distance: mean distance from each reference-front
/// point to its nearest point in `approx`. Lower is better. Used in tests
/// against problems with known Pareto fronts.
double igd(const std::vector<ObjectiveVector>& approx,
           const std::vector<ObjectiveVector>& reference_front);

/// A sampled point on an anytime-quality trace: PHV of the archive after
/// `evaluations` objective evaluations (and `seconds` of wall time).
struct TracePoint {
  std::size_t evaluations = 0;
  double seconds = 0.0;
  double phv = 0.0;
};

using ConvergenceTrace = std::vector<TracePoint>;

/// The paper's convergence rule: the first trace point after which PHV
/// improves by less than `rel_tol` (default 0.5%) over the following
/// `window` points (default 5). Returns nullopt if the trace never settles.
std::optional<std::size_t> convergence_index(const ConvergenceTrace& trace,
                                             double rel_tol = 0.005,
                                             std::size_t window = 5);

/// Evaluation count at which `trace` first reaches `phv_target`; nullopt if
/// it never does. Linear interpolation between surrounding samples.
std::optional<double> evaluations_to_reach(const ConvergenceTrace& trace,
                                           double phv_target);

/// Wall-clock seconds at which `trace` first reaches `phv_target`; nullopt
/// if it never does. Linear interpolation between surrounding samples.
std::optional<double> seconds_to_reach(const ConvergenceTrace& trace,
                                       double phv_target);

/// PHV of the trace at wall-clock time `t`: the last sample at or before t
/// (0 before the first sample).
double phv_at_time(const ConvergenceTrace& trace, double t);

/// Speed-up factor per Sec. V.C: evaluations for `other` to converge divided
/// by evaluations for `ours` to reach the same PHV. Returns nullopt when
/// `ours` never reaches the competitor's converged PHV.
std::optional<double> speedup_factor(const ConvergenceTrace& ours,
                                     const ConvergenceTrace& other,
                                     double rel_tol = 0.005,
                                     std::size_t window = 5);

/// Wall-clock variant of the speed-up factor — the paper's actual metric:
/// T_convergence(other) / T_ours-to-same-PHV, in seconds. Wall-clock is the
/// axis on which MOOS/MOO-STAGE pay their per-step hypervolume overhead and
/// MOELA pays its forest training.
std::optional<double> speedup_factor_time(const ConvergenceTrace& ours,
                                          const ConvergenceTrace& other,
                                          double rel_tol = 0.005,
                                          std::size_t window = 5);

}  // namespace moela::moo
