// Runtime composition layer, part 1: AnyProblem, a type-erased wrapper
// around anything satisfying the moo::MooProblem concept.
//
// The algorithm templates in core/ and baselines/ are compile-time generic:
// Moela<P>, Nsga2<P>, ... over a concrete problem P. AnyProblem closes the
// set — it satisfies MooProblem itself, so every algorithm in the library
// can be instantiated ONCE with P = AnyProblem and then composed with any
// problem chosen at runtime (a registry lookup, a CLI flag, an RPC field)
// without recompiling. This is the pivot from "a research harness of
// template instantiations" to "one front-end serving many scenarios".
//
// Designs are erased as AnyDesign: an immutable shared payload plus its
// type. Every MooProblem operation returns fresh designs by value and never
// mutates one in place, so sharing the payload between population slots is
// safe and copies stay O(1) regardless of the underlying design size.
#pragma once

#include <memory>
#include <stdexcept>
#include <string>
#include <typeinfo>
#include <utility>
#include <vector>

#include "moo/objective.hpp"
#include "moo/problem.hpp"
#include "util/rng.hpp"

namespace moela::api {

/// A type-erased, immutable design. Copying shares the payload (cheap); the
/// payload itself is never mutated after construction.
class AnyDesign {
 public:
  AnyDesign() = default;

  /// Wraps a concrete design value.
  template <typename D>
  static AnyDesign wrap(D value) {
    AnyDesign out;
    out.value_ = std::make_shared<const D>(std::move(value));
    out.type_ = &typeid(D);
    return out;
  }

  bool has_value() const { return value_ != nullptr; }
  const std::type_info& type() const {
    return type_ ? *type_ : typeid(void);
  }

  /// Checked access to the wrapped design. Throws std::runtime_error when
  /// the stored type is not `D` (e.g. a design from a different problem).
  template <typename D>
  const D& as() const {
    if (!value_ || *type_ != typeid(D)) {
      throw std::runtime_error(
          std::string("AnyDesign: stored type is ") +
          (type_ ? type_->name() : "<empty>") + ", requested " +
          typeid(D).name());
    }
    return *static_cast<const D*>(value_.get());
  }

 private:
  std::shared_ptr<const void> value_;
  const std::type_info* type_ = nullptr;
};

/// Type-erased problem: wraps any MooProblem behind a stable virtual
/// interface and satisfies MooProblem itself (Design = AnyDesign).
/// Copying shares the underlying problem (problems are immutable during a
/// run — every operation in the concept is const).
class AnyProblem {
 public:
  using Design = AnyDesign;

  AnyProblem() = default;

  template <typename P>
    requires moo::MooProblem<std::decay_t<P>> &&
             (!std::same_as<std::decay_t<P>, AnyProblem>)
  explicit AnyProblem(P problem)
      : model_(std::make_shared<const Model<std::decay_t<P>>>(
            std::move(problem))) {}

  bool has_value() const { return model_ != nullptr; }

  std::size_t num_objectives() const { return model().num_objectives(); }
  moo::ObjectiveVector evaluate(const Design& d) const {
    return model().evaluate(d);
  }
  Design random_design(util::Rng& rng) const {
    return model().random_design(rng);
  }
  Design random_neighbor(const Design& d, util::Rng& rng) const {
    return model().random_neighbor(d, rng);
  }
  Design crossover(const Design& a, const Design& b, util::Rng& rng) const {
    return model().crossover(a, b, rng);
  }
  Design mutate(const Design& d, util::Rng& rng) const {
    return model().mutate(d, rng);
  }
  std::vector<double> features(const Design& d) const {
    return model().features(d);
  }
  std::size_t num_features() const { return model().num_features(); }

  /// Access to the wrapped concrete problem; nullptr when the stored type
  /// is not `P`.
  template <typename P>
  const P* target() const {
    auto* m = dynamic_cast<const Model<P>*>(model_.get());
    return m ? &m->problem : nullptr;
  }

 private:
  struct Concept {
    virtual ~Concept() = default;
    virtual std::size_t num_objectives() const = 0;
    virtual moo::ObjectiveVector evaluate(const AnyDesign&) const = 0;
    virtual AnyDesign random_design(util::Rng&) const = 0;
    virtual AnyDesign random_neighbor(const AnyDesign&, util::Rng&) const = 0;
    virtual AnyDesign crossover(const AnyDesign&, const AnyDesign&,
                                util::Rng&) const = 0;
    virtual AnyDesign mutate(const AnyDesign&, util::Rng&) const = 0;
    virtual std::vector<double> features(const AnyDesign&) const = 0;
    virtual std::size_t num_features() const = 0;
  };

  template <moo::MooProblem P>
  struct Model final : Concept {
    explicit Model(P p) : problem(std::move(p)) {}
    using D = typename P::Design;

    std::size_t num_objectives() const override {
      return problem.num_objectives();
    }
    moo::ObjectiveVector evaluate(const AnyDesign& d) const override {
      return problem.evaluate(d.as<D>());
    }
    AnyDesign random_design(util::Rng& rng) const override {
      return AnyDesign::wrap<D>(problem.random_design(rng));
    }
    AnyDesign random_neighbor(const AnyDesign& d,
                              util::Rng& rng) const override {
      return AnyDesign::wrap<D>(problem.random_neighbor(d.as<D>(), rng));
    }
    AnyDesign crossover(const AnyDesign& a, const AnyDesign& b,
                        util::Rng& rng) const override {
      return AnyDesign::wrap<D>(problem.crossover(a.as<D>(), b.as<D>(), rng));
    }
    AnyDesign mutate(const AnyDesign& d, util::Rng& rng) const override {
      return AnyDesign::wrap<D>(problem.mutate(d.as<D>(), rng));
    }
    std::vector<double> features(const AnyDesign& d) const override {
      return problem.features(d.as<D>());
    }
    std::size_t num_features() const override {
      return problem.num_features();
    }

    P problem;
  };

  const Concept& model() const {
    if (!model_) throw std::runtime_error("AnyProblem: empty");
    return *model_;
  }

  std::shared_ptr<const Concept> model_;
};

static_assert(moo::MooProblem<AnyProblem>,
              "AnyProblem must satisfy the concept it erases");

}  // namespace moela::api
