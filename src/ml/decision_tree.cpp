#include "ml/decision_tree.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace moela::ml {

namespace {

double mean_target(const Dataset& data, std::span<const std::size_t> idx) {
  double s = 0.0;
  for (std::size_t i : idx) s += data.target(i);
  return idx.empty() ? 0.0 : s / static_cast<double>(idx.size());
}

/// Finds the best (threshold, SSE) split of `idx` on `feature`. Returns
/// infinity SSE when no valid split exists (all values equal or leaf bound).
struct SplitResult {
  double sse = std::numeric_limits<double>::infinity();
  double threshold = 0.0;
};

SplitResult best_split_on_feature(const Dataset& data,
                                  std::span<const std::size_t> idx,
                                  std::size_t feature,
                                  std::size_t min_samples_leaf,
                                  std::vector<std::size_t>& scratch) {
  scratch.assign(idx.begin(), idx.end());
  std::sort(scratch.begin(), scratch.end(), [&](std::size_t a, std::size_t b) {
    return data.features(a)[feature] < data.features(b)[feature];
  });

  const std::size_t n = scratch.size();
  // Prefix sums allow O(1) SSE of each side:
  //   SSE = sum(y^2) - (sum y)^2 / n.
  double left_sum = 0.0, left_sq = 0.0;
  double total_sum = 0.0, total_sq = 0.0;
  for (std::size_t i : scratch) {
    const double y = data.target(i);
    total_sum += y;
    total_sq += y * y;
  }

  SplitResult best;
  for (std::size_t k = 0; k + 1 < n; ++k) {
    const double y = data.target(scratch[k]);
    left_sum += y;
    left_sq += y * y;
    const double xk = data.features(scratch[k])[feature];
    const double xn = data.features(scratch[k + 1])[feature];
    if (xk == xn) continue;  // cannot split between equal values
    const std::size_t nl = k + 1;
    const std::size_t nr = n - nl;
    if (nl < min_samples_leaf || nr < min_samples_leaf) continue;
    const double right_sum = total_sum - left_sum;
    const double right_sq = total_sq - left_sq;
    const double sse_l = left_sq - left_sum * left_sum / static_cast<double>(nl);
    const double sse_r =
        right_sq - right_sum * right_sum / static_cast<double>(nr);
    const double sse = sse_l + sse_r;
    if (sse < best.sse) {
      best.sse = sse;
      best.threshold = 0.5 * (xk + xn);
    }
  }
  return best;
}

}  // namespace

void DecisionTree::fit(const Dataset& data,
                       std::span<const std::size_t> sample_indices,
                       const TreeConfig& config, util::Rng& rng) {
  if (sample_indices.empty()) {
    throw std::invalid_argument("DecisionTree::fit: no samples");
  }
  nodes_.clear();
  std::vector<std::size_t> idx(sample_indices.begin(), sample_indices.end());
  build(data, idx, 0, idx.size(), config, 0, rng);
}

void DecisionTree::fit(const Dataset& data, const TreeConfig& config,
                       util::Rng& rng) {
  std::vector<std::size_t> all(data.size());
  std::iota(all.begin(), all.end(), std::size_t{0});
  fit(data, all, config, rng);
}

std::size_t DecisionTree::build(const Dataset& data,
                                std::vector<std::size_t>& indices,
                                std::size_t begin, std::size_t end,
                                const TreeConfig& config, std::size_t depth,
                                util::Rng& rng) {
  const std::size_t node_id = nodes_.size();
  nodes_.emplace_back();
  std::span<const std::size_t> idx(indices.data() + begin, end - begin);
  const double value = mean_target(data, idx);
  nodes_[node_id].value = value;

  const std::size_t n = end - begin;
  bool make_leaf = depth >= config.max_depth || n < config.min_samples_split;
  if (!make_leaf) {
    // Leaf if targets are (numerically) constant.
    bool constant = true;
    for (std::size_t i : idx) {
      if (std::abs(data.target(i) - value) > 1e-12) {
        constant = false;
        break;
      }
    }
    make_leaf = constant;
  }
  if (make_leaf) return node_id;

  // Candidate features: a random subset of size max_features (forest mode)
  // or all features.
  const std::size_t f = data.num_features();
  std::vector<std::size_t> feats;
  if (config.max_features == 0 || config.max_features >= f) {
    feats.resize(f);
    std::iota(feats.begin(), feats.end(), std::size_t{0});
  } else {
    feats = rng.sample_indices(f, config.max_features);
  }

  SplitResult best;
  std::size_t best_feature = Node::kLeaf;
  std::vector<std::size_t> scratch;
  for (std::size_t feature : feats) {
    const SplitResult r = best_split_on_feature(
        data, idx, feature, config.min_samples_leaf, scratch);
    if (r.sse < best.sse) {
      best = r;
      best_feature = feature;
    }
  }
  if (best_feature == Node::kLeaf) return node_id;  // no valid split found

  // Partition [begin, end) in place around the chosen threshold.
  auto mid_it = std::partition(
      indices.begin() + static_cast<std::ptrdiff_t>(begin),
      indices.begin() + static_cast<std::ptrdiff_t>(end), [&](std::size_t i) {
        return data.features(i)[best_feature] <= best.threshold;
      });
  const auto mid =
      static_cast<std::size_t>(mid_it - indices.begin());
  if (mid == begin || mid == end) return node_id;  // degenerate partition

  nodes_[node_id].feature = best_feature;
  nodes_[node_id].threshold = best.threshold;
  const std::size_t left =
      build(data, indices, begin, mid, config, depth + 1, rng);
  const std::size_t right =
      build(data, indices, mid, end, config, depth + 1, rng);
  nodes_[node_id].left = left;
  nodes_[node_id].right = right;
  return node_id;
}

double DecisionTree::predict(std::span<const double> features) const {
  if (nodes_.empty()) {
    throw std::logic_error("DecisionTree::predict before fit");
  }
  std::size_t node = 0;
  while (nodes_[node].feature != Node::kLeaf) {
    node = features[nodes_[node].feature] <= nodes_[node].threshold
               ? nodes_[node].left
               : nodes_[node].right;
  }
  return nodes_[node].value;
}

std::size_t DecisionTree::depth() const {
  if (nodes_.empty()) return 0;
  // Iterative depth computation over the implicit tree structure.
  std::vector<std::pair<std::size_t, std::size_t>> stack{{0, 1}};
  std::size_t max_depth = 0;
  while (!stack.empty()) {
    auto [node, d] = stack.back();
    stack.pop_back();
    max_depth = std::max(max_depth, d);
    if (nodes_[node].feature != Node::kLeaf) {
      stack.push_back({nodes_[node].left, d + 1});
      stack.push_back({nodes_[node].right, d + 1});
    }
  }
  return max_depth;
}

}  // namespace moela::ml
