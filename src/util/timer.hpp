// Wall-clock timing for the experiment harness (speed-up factors are reported
// in evaluation counts, but traces also record wall time).
#pragma once

#include <chrono>

namespace moela::util {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double elapsed_ms() const { return elapsed_seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace moela::util
