#include "serve/client.hpp"

#include <cerrno>
#include <cstring>

#include <netdb.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include "api/serde.hpp"
#include "util/numeric.hpp"

namespace moela::serve {
namespace {

using util::Json;

}  // namespace

Client::~Client() { disconnect(); }

std::string Client::where() const {
  // Every thrown message carries the endpoint so a failure inside a
  // multi-shard batch is attributable to the daemon that caused it.
  return endpoint_.empty() ? std::string("moela_serve client")
                           : "moela_serve client[" + endpoint_ + "]";
}

void Client::connect(const std::string& host, int port) {
  disconnect();
  endpoint_ = host + ":" + util::dec(port);
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* resolved = nullptr;
  const std::string port_text = util::dec(port);
  if (::getaddrinfo(host.c_str(), port_text.c_str(), &hints, &resolved) !=
          0 ||
      resolved == nullptr) {
    throw std::runtime_error(where() + ": cannot resolve '" + host + "'");
  }
  int fd = -1;
  std::string error = "no addresses";
  for (const addrinfo* ai = resolved; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      error = std::strerror(errno);
      continue;
    }
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    error = std::strerror(errno);
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(resolved);
  if (fd < 0) {
    throw std::runtime_error(where() + ": cannot connect (" + error + ")");
  }
  fd_ = fd;
  reader_ = std::make_unique<LineReader>(fd_);
}

void Client::disconnect() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  reader_.reset();
}

Json Client::transact(Json message, const EventHandler& on_event,
                      api::RunControl* control) {
  if (!connected()) {
    throw std::runtime_error(where() + ": not connected");
  }
  std::uint64_t id = 0;
  if (const Json* preset = message.find("id")) {
    id = preset->as_u64();
  } else {
    id = next_id_++;
    message.set("id", id);
  }
  if (!send_json(fd_, message)) {
    throw std::runtime_error(where() + ": connection lost (send)");
  }
  // With a control, reads poll at a short cadence so a stop request can
  // interleave the cancel verb on this same conversation; without one the
  // read blocks as before. The cancel's own ack arrives under a different
  // id and is skipped by the correlation check like any stray line.
  const int timeout_ms = control != nullptr ? 50 : -1;
  bool cancel_sent = false;
  std::string line;
  for (;;) {
    if (control != nullptr && !cancel_sent && control->stop_requested()) {
      Json cancel_message = Json::object();
      cancel_message.set("id", next_id_++)
          .set("verb", "cancel")
          .set("target", id);
      if (!send_json(fd_, cancel_message)) {
        throw std::runtime_error(where() + ": connection lost (cancel)");
      }
      cancel_sent = true;
    }
    const LineReader::ReadResult result =
        reader_->read_line_for(line, timeout_ms);
    if (result == LineReader::ReadResult::kTimeout) continue;
    if (result == LineReader::ReadResult::kClosed) break;
    if (line.empty()) continue;
    std::string parse_error;
    const auto response = Json::try_parse(line, &parse_error);
    if (!response.has_value()) {
      throw std::runtime_error(where() + ": bad response line: " +
                               parse_error);
    }
    const Json* response_id = response->find("id");
    if (response_id == nullptr || response_id->as_u64() != id) {
      continue;  // a stray line for another (abandoned) request id
    }
    if (response->find("event") != nullptr) {
      // Progress events racing the cancel are dropped: once "cancelling"
      // has been decided, a counter that keeps climbing is noise. The
      // per-run `finished` events still flow — they carry the real
      // completion tally.
      if (cancel_sent &&
          util::string_field_or(*response, "event") == "progress") {
        continue;
      }
      if (on_event) on_event(*response);
      continue;
    }
    return *response;
  }
  throw std::runtime_error(where() + ": connection closed before the "
                           "response arrived");
}

std::vector<api::RunReport> Client::run(
    const std::vector<api::RunRequest>& requests, bool stream_progress,
    EventHandler on_event, api::RunControl* control,
    sched::Priority priority) {
  Json requests_json = Json::array();
  for (const auto& request : requests) {
    requests_json.append(api::request_to_json(request));
  }
  last_run_id_ = next_id_++;
  Json message = Json::object();
  message.set("id", last_run_id_)
      .set("verb", "run")
      .set("requests", std::move(requests_json))
      .set("progress", stream_progress)
      .set("priority", sched::priority_name(priority));
  const Json response = transact(std::move(message), on_event, control);
  if (const Json* ok = response.find("ok"); ok == nullptr || !ok->as_bool()) {
    const Json* error = response.find("error");
    const std::string what =
        where() + ": " +
        (error != nullptr && error->is_string() ? error->as_string()
                                                : "server rejected the batch");
    if (const Json* overloaded = response.find("overloaded");
        overloaded != nullptr && overloaded->is_bool() &&
        overloaded->as_bool()) {
      throw OverloadedError(
          what,
          static_cast<std::size_t>(util::u64_field_or(response, "queued", 0)),
          util::u64_field_or(response, "retry_after_ms", 0));
    }
    throw RemoteError(what);
  }
  const Json* reports_json = response.find("reports");
  if (reports_json == nullptr || !reports_json->is_array()) {
    throw RemoteError(where() + ": malformed response: missing 'reports'");
  }
  std::vector<api::RunReport> reports;
  reports.reserve(reports_json->as_array().size());
  for (std::size_t i = 0; i < reports_json->as_array().size(); ++i) {
    const Json& entry = reports_json->as_array()[i];
    if (const Json* error = entry.find("error")) {
      const std::string label =
          i < requests.size() ? requests[i].label_or_default()
                              : util::dec(i);
      throw RemoteError(where() + ": run '" + label +
                        "' failed: " + error->as_string());
    }
    reports.push_back(api::report_from_json(entry));
  }
  return reports;
}

bool Client::cancel(std::uint64_t run_id) {
  Json message = Json::object();
  message.set("verb", "cancel").set("target", run_id);
  const Json response = transact(std::move(message), nullptr);
  if (const Json* ok = response.find("ok"); ok == nullptr || !ok->as_bool()) {
    const Json* error = response.find("error");
    throw RemoteError(where() + ": " +
                      (error != nullptr && error->is_string()
                           ? error->as_string()
                           : "cancel rejected"));
  }
  const Json* cancelled = response.find("cancelled");
  return cancelled != nullptr && cancelled->is_bool() &&
         cancelled->as_bool();
}

bool Client::ping() {
  try {
    Json message = Json::object();
    message.set("verb", "ping");
    const Json response = transact(std::move(message), nullptr);
    const Json* ok = response.find("ok");
    return ok != nullptr && ok->as_bool();
  } catch (const std::exception&) {
    return false;
  }
}

Json Client::health() {
  Json message = Json::object();
  message.set("verb", "health");
  Json response = transact(std::move(message), nullptr);
  if (const Json* ok = response.find("ok"); ok == nullptr || !ok->as_bool()) {
    const Json* error = response.find("error");
    throw RemoteError(where() + ": " +
                      (error != nullptr && error->is_string()
                           ? error->as_string()
                           : "health probe rejected"));
  }
  return response;
}

Json Client::list_algorithms() {
  Json message = Json::object();
  message.set("verb", "list_algorithms");
  const Json response = transact(std::move(message), nullptr);
  const Json* algorithms = response.find("algorithms");
  if (algorithms == nullptr) {
    throw RemoteError(where() + ": malformed response: missing 'algorithms'");
  }
  return *algorithms;
}

std::vector<std::string> Client::list_problems() {
  Json message = Json::object();
  message.set("verb", "list_problems");
  const Json response = transact(std::move(message), nullptr);
  const Json* problems = response.find("problems");
  if (problems == nullptr || !problems->is_array()) {
    throw RemoteError(where() + ": malformed response: missing 'problems'");
  }
  std::vector<std::string> out;
  out.reserve(problems->as_array().size());
  for (const auto& name : problems->as_array()) {
    out.push_back(name.as_string());
  }
  return out;
}

Json Client::cache_stats() {
  Json message = Json::object();
  message.set("verb", "cache_stats");
  return transact(std::move(message), nullptr);
}

Json Client::metrics() {
  Json message = Json::object();
  message.set("verb", "metrics");
  Json response = transact(std::move(message), nullptr);
  if (const Json* ok = response.find("ok"); ok == nullptr || !ok->as_bool()) {
    const Json* error = response.find("error");
    throw RemoteError(where() + ": " +
                      (error != nullptr && error->is_string()
                           ? error->as_string()
                           : "metrics probe rejected"));
  }
  return response;
}

void Client::shutdown_server() {
  Json message = Json::object();
  message.set("verb", "shutdown");
  transact(std::move(message), nullptr);
}

}  // namespace moela::serve
