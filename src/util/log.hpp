// Minimal leveled logging. Benchmarks and examples use INFO; library code
// only logs at DEBUG so that default runs stay quiet.
#pragma once

#include <sstream>
#include <string>

namespace moela::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emits one line to stderr with a level tag. Thread-safe per call.
void log_line(LogLevel level, const std::string& msg);

namespace detail {
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log_line(level_, os_.str()); }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

inline detail::LogStream log_debug() {
  return detail::LogStream(LogLevel::kDebug);
}
inline detail::LogStream log_info() { return detail::LogStream(LogLevel::kInfo); }
inline detail::LogStream log_warn() { return detail::LogStream(LogLevel::kWarn); }
inline detail::LogStream log_error() {
  return detail::LogStream(LogLevel::kError);
}

}  // namespace moela::util
