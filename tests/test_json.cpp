// Tests for the dependency-free JSON reader/writer (util/json.hpp): kinds
// and accessors, compact deterministic dumping, strict parsing (errors,
// escapes, depth cap), round-trips, and the hexfloat exact-double carrier
// the serving protocol depends on.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string>

#include "util/json.hpp"

namespace moela::util {
namespace {

TEST(Json, KindsAndAccessors) {
  EXPECT_TRUE(Json().is_null());
  EXPECT_TRUE(Json(true).is_bool());
  EXPECT_TRUE(Json(2.5).is_number());
  EXPECT_TRUE(Json(std::uint64_t{7}).is_number());
  EXPECT_TRUE(Json("x").is_string());
  EXPECT_TRUE(Json::array().is_array());
  EXPECT_TRUE(Json::object().is_object());

  EXPECT_EQ(Json(true).as_bool(), true);
  EXPECT_EQ(Json(2.5).as_double(), 2.5);
  EXPECT_EQ(Json(std::uint64_t{7}).as_u64(), 7u);
  EXPECT_EQ(Json("x").as_string(), "x");

  // Cross-kind access throws, never silently coerces.
  EXPECT_THROW(Json("x").as_bool(), JsonError);
  EXPECT_THROW(Json(true).as_double(), JsonError);
  EXPECT_THROW(Json(2.5).as_string(), JsonError);
  EXPECT_THROW(Json(2.5).as_u64(), JsonError);  // not integral
}

TEST(Json, U64RoundTripsExactly) {
  // Above 2^53: a double detour would corrupt it.
  const std::uint64_t big = (1ull << 63) + 12345;
  const Json parsed = Json::parse(Json(big).dump());
  EXPECT_EQ(parsed.as_u64(), big);
  // Integral doubles are accepted by as_u64.
  EXPECT_EQ(Json(42.0).as_u64(), 42u);
}

TEST(Json, DumpIsCompactSortedAndSingleLine) {
  Json o = Json::object();
  o.set("zeta", 1).set("alpha", Json::array().append("a\nb"));
  // std::map ordering makes the output canonical; the embedded newline is
  // escaped so one value is always one line.
  EXPECT_EQ(o.dump(), "{\"alpha\":[\"a\\nb\"],\"zeta\":1}");
  EXPECT_EQ(o.dump().find('\n'), std::string::npos);
}

TEST(Json, ParsesNestedDocument) {
  const Json v = Json::parse(
      R"({"a": [1, -2.5, true, null], "b": {"c": "str"}, "d": false})");
  EXPECT_EQ(v.find("a")->as_array().size(), 4u);
  EXPECT_EQ(v.find("a")->as_array()[0].as_u64(), 1u);
  EXPECT_EQ(v.find("a")->as_array()[1].as_double(), -2.5);
  EXPECT_TRUE(v.find("a")->as_array()[3].is_null());
  EXPECT_EQ(v.find("b")->find("c")->as_string(), "str");
  EXPECT_EQ(v.find("b")->find("missing"), nullptr);
  EXPECT_EQ(v.find("d")->as_bool(), false);
}

TEST(Json, RoundTripsThroughDump) {
  const char* docs[] = {
      "null", "true", "[1,2,3]", "{\"a\":{\"b\":[[]]}}",
      "{\"s\":\"quote \\\" backslash \\\\ tab \\t\"}",
      "[0.125,1e-3,123456789012345678]",
  };
  for (const char* doc : docs) {
    const Json first = Json::parse(doc);
    const Json second = Json::parse(first.dump());
    EXPECT_EQ(first, second) << doc;
    EXPECT_EQ(first.dump(), second.dump()) << doc;
  }
}

TEST(Json, StringEscapes) {
  const Json v = Json::parse(R"("a\u0041\n\u00e9\u20ac")");
  EXPECT_EQ(v.as_string(), "aA\n\xc3\xa9\xe2\x82\xac");  // é and € in UTF-8
  // Surrogate pair → U+1F600.
  EXPECT_EQ(Json::parse(R"("\ud83d\ude00")").as_string(),
            "\xf0\x9f\x98\x80");
  EXPECT_THROW(Json::parse(R"("\ud83d")"), JsonError);  // lone surrogate
}

TEST(Json, RejectsMalformedInput) {
  const char* bad[] = {
      "",      "{",        "[1,",     "tru",        "1 2",
      "{a:1}", "[01x]",    "\"\x01\"", "{\"a\":}",  "nul",
  };
  for (const char* doc : bad) {
    EXPECT_THROW(Json::parse(doc), JsonError) << "'" << doc << "'";
    std::string error;
    EXPECT_FALSE(Json::try_parse(doc, &error).has_value());
    EXPECT_FALSE(error.empty());
  }
}

TEST(Json, DepthIsCapped) {
  std::string deep;
  for (int i = 0; i < 500; ++i) deep += '[';
  for (int i = 0; i < 500; ++i) deep += ']';
  EXPECT_THROW(Json::parse(deep), JsonError);
}

TEST(Json, ExactNumberRoundTripsDoublesBitForBit) {
  const double values[] = {0.0,
                           -0.0,
                           1.0 / 3.0,
                           0.1,
                           -2.5e-300,
                           std::numeric_limits<double>::max(),
                           std::numeric_limits<double>::denorm_min(),
                           std::numeric_limits<double>::infinity()};
  for (double v : values) {
    const Json carried = Json::parse(exact_number(v).dump());
    const double back = exact_to_double(carried);
    EXPECT_EQ(std::memcmp(&v, &back, sizeof v), 0) << v;
  }
  // NaN: payload comparison is overkill, but it must stay NaN.
  EXPECT_TRUE(std::isnan(exact_to_double(
      Json::parse(exact_number(std::nan("")).dump()))));
  // Plain numbers are accepted too (hand-written requests).
  EXPECT_EQ(exact_to_double(Json(2.5)), 2.5);
  EXPECT_THROW(exact_to_double(Json("not-a-number")), JsonError);
}

}  // namespace
}  // namespace moela::util
