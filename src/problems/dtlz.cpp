#include "problems/dtlz.hpp"

#include <cmath>
#include <numbers>

namespace moela::problems {

namespace {

/// g function of DTLZ1: 100 * (k + sum((xi-0.5)^2 - cos(20 pi (xi-0.5)))).
double g_dtlz1(const RealVector& x, std::size_t m) {
  double g = 0.0;
  const std::size_t k = x.size() - m + 1;
  for (std::size_t i = m - 1; i < x.size(); ++i) {
    const double t = x[i] - 0.5;
    g += t * t - std::cos(20.0 * std::numbers::pi * t);
  }
  return 100.0 * (static_cast<double>(k) + g);
}

/// g function of DTLZ2: sum((xi - 0.5)^2).
double g_dtlz2(const RealVector& x, std::size_t m) {
  double g = 0.0;
  for (std::size_t i = m - 1; i < x.size(); ++i) {
    const double t = x[i] - 0.5;
    g += t * t;
  }
  return g;
}

}  // namespace

moo::ObjectiveVector Dtlz1::evaluate(const Design& x) const {
  const double g = g_dtlz1(x, m_);
  moo::ObjectiveVector f(m_);
  for (std::size_t i = 0; i < m_; ++i) {
    double v = 0.5 * (1.0 + g);
    for (std::size_t j = 0; j < m_ - 1 - i; ++j) v *= x[j];
    if (i > 0) v *= 1.0 - x[m_ - 1 - i];
    f[i] = v;
  }
  return f;
}

std::vector<moo::ObjectiveVector> Dtlz1::pareto_front_samples(
    std::size_t n, util::Rng& rng) const {
  // Uniform samples on the simplex sum(f) = 0.5 via normalized exponentials.
  std::vector<moo::ObjectiveVector> out;
  out.reserve(n);
  for (std::size_t s = 0; s < n; ++s) {
    moo::ObjectiveVector f(m_);
    double total = 0.0;
    for (auto& v : f) {
      v = -std::log(1.0 - rng.uniform());
      total += v;
    }
    for (auto& v : f) v = 0.5 * v / total;
    out.push_back(std::move(f));
  }
  return out;
}

moo::ObjectiveVector Dtlz2::evaluate(const Design& x) const {
  const double g = g_dtlz2(x, m_);
  moo::ObjectiveVector f(m_);
  constexpr double half_pi = std::numbers::pi / 2.0;
  for (std::size_t i = 0; i < m_; ++i) {
    double v = 1.0 + g;
    for (std::size_t j = 0; j < m_ - 1 - i; ++j) v *= std::cos(x[j] * half_pi);
    if (i > 0) v *= std::sin(x[m_ - 1 - i] * half_pi);
    f[i] = v;
  }
  return f;
}

std::vector<moo::ObjectiveVector> Dtlz2::pareto_front_samples(
    std::size_t n, util::Rng& rng) const {
  // Uniform direction samples on the positive orthant of the unit sphere.
  std::vector<moo::ObjectiveVector> out;
  out.reserve(n);
  for (std::size_t s = 0; s < n; ++s) {
    moo::ObjectiveVector f(m_);
    double norm = 0.0;
    for (auto& v : f) {
      v = std::abs(rng.normal());
      norm += v * v;
    }
    norm = std::sqrt(norm);
    for (auto& v : f) v /= norm;
    out.push_back(std::move(f));
  }
  return out;
}

moo::ObjectiveVector Dtlz7::evaluate(const Design& x) const {
  double g = 0.0;
  for (std::size_t i = m_ - 1; i < x.size(); ++i) g += x[i];
  g = 1.0 + 9.0 * g / static_cast<double>(x.size() - m_ + 1);

  moo::ObjectiveVector f(m_);
  for (std::size_t i = 0; i + 1 < m_; ++i) f[i] = x[i];
  double h = static_cast<double>(m_);
  for (std::size_t i = 0; i + 1 < m_; ++i) {
    h -= f[i] / (1.0 + g) * (1.0 + std::sin(3.0 * std::numbers::pi * f[i]));
  }
  f[m_ - 1] = (1.0 + g) * h;
  return f;
}

}  // namespace moela::problems
