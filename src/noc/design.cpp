#include "noc/design.hpp"

#include <algorithm>

namespace moela::noc {

std::vector<TileId> NocDesign::tile_of_core() const {
  std::vector<TileId> tiles(placement.size());
  for (TileId t = 0; t < placement.size(); ++t) {
    tiles[placement[t]] = t;
  }
  return tiles;
}

void NocDesign::canonicalize() {
  std::sort(links.begin(), links.end());
  links.erase(std::unique(links.begin(), links.end()), links.end());
}

Adjacency::Adjacency(const PlatformSpec& spec, const std::vector<Link>& links)
    : adj_(spec.num_tiles()) {
  for (const Link& l : links) {
    adj_[l.a].push_back(l.b);
    adj_[l.b].push_back(l.a);
  }
  for (auto& n : adj_) std::sort(n.begin(), n.end());
}

bool Adjacency::connected() const {
  if (adj_.empty()) return true;
  std::vector<bool> seen(adj_.size(), false);
  std::vector<TileId> stack{0};
  seen[0] = true;
  std::size_t count = 1;
  while (!stack.empty()) {
    const TileId t = stack.back();
    stack.pop_back();
    for (TileId n : adj_[t]) {
      if (!seen[n]) {
        seen[n] = true;
        ++count;
        stack.push_back(n);
      }
    }
  }
  return count == adj_.size();
}

LinkSplit split_links(const PlatformSpec& spec,
                      const std::vector<Link>& links) {
  LinkSplit out;
  for (const Link& l : links) {
    if (spec.z_of(l.a) == spec.z_of(l.b)) {
      out.planar.push_back(l);
    } else {
      out.vertical.push_back(l);
    }
  }
  return out;
}

}  // namespace moela::noc
