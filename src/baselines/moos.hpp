// MOOS baseline (Deshwal, Belakaria, Doppa, Pande — ACM TECS 2019,
// reference [7] of the paper), reimplemented from the MOELA paper's
// description of it (our primary source):
//  * it performs greedy LOCAL SEARCHES over the entire archive of solutions
//    "for all objectives", each search descending a scalarized direction;
//  * it "uses learned information to adjust the local search direction" —
//    modeled as a bandit over scalarization directions whose reward is the
//    observed archive-PHV gain of each search;
//  * it performs "repeated calculations of PHV during local search" — the
//    computational overhead Sec. IV.B of the MOELA paper criticizes. Every
//    candidate step pays an archive-PHV-gain computation to produce the
//    direction-learning signal, and that cost grows steeply with the
//    number of objectives;
//  * being a pure local-search framework it has no recombination stage, so
//    its Pareto front diversity relies entirely on the direction bandit —
//    the diversity weakness the paper attributes to it.
#pragma once

#include <cmath>
#include <cstddef>
#include <numeric>
#include <vector>

#include "baselines/archive_search.hpp"
#include "core/eval_context.hpp"
#include "core/local_search.hpp"
#include "moo/pareto.hpp"
#include "moo/problem.hpp"
#include "moo/scalarize.hpp"
#include "moo/weights.hpp"

namespace moela::baselines {

struct MoosConfig {
  /// Archive capacity (kept comparable to the EAs' population size).
  std::size_t archive_capacity = 50;
  /// Random designs seeding the archive.
  std::size_t initial_designs = 50;
  /// Scalarization directions available to the bandit.
  std::size_t num_directions = 50;
  /// Local searches per iteration.
  std::size_t searches_per_iteration = 5;
  std::size_t max_iterations = 1000;
  /// Softmax temperature for direction selection (lower = greedier; MOOS is
  /// a greedy framework).
  double temperature = 0.15;
  /// Exponential-moving-average factor for the per-direction gain estimate.
  double gain_ema = 0.5;
  /// Descent budget per search (same knobs as MOELA's local search).
  core::LocalSearchConfig search;
};

template <moo::MooProblem P>
class Moos {
 public:
  using Design = typename P::Design;

  explicit Moos(MoosConfig config = {}) : config_(config) {}

  /// Runs until the evaluation budget or iteration cap binds; returns the
  /// final design archive.
  DesignArchive<P> run(core::EvalContext<P>& ctx) {
    const std::size_t m = ctx.problem().num_objectives();
    DesignArchive<P> archive(config_.archive_capacity);
    ctx.set_solution_set_provider(
        [&archive] { return archive.objective_set(); });
    moo::ReferencePoint z(m);

    // Seed the archive with random designs.
    for (std::size_t i = 0;
         i < config_.initial_designs && !ctx.exhausted(); ++i) {
      Design d = ctx.problem().random_design(ctx.rng());
      moo::ObjectiveVector obj = ctx.evaluate(d);
      z.update(obj);
      archive.insert(std::move(d), std::move(obj));
    }

    const auto directions =
        moo::uniform_weights(m, config_.num_directions);
    std::vector<double> gain_estimate(directions.size(), 1.0);

    for (std::size_t iter = 0;
         iter < config_.max_iterations && !ctx.exhausted(); ++iter) {
      for (std::size_t s = 0;
           s < config_.searches_per_iteration && !ctx.exhausted(); ++s) {
        if (archive.empty()) break;
        const std::size_t dir = pick_direction(ctx, gain_estimate);
        const double gain =
            directional_search(ctx, archive, directions[dir], z);
        // Learning signal: shift the direction's gain estimate toward the
        // observed outcome.
        gain_estimate[dir] = (1.0 - config_.gain_ema) * gain_estimate[dir] +
                             config_.gain_ema * gain;
      }
    }
    ctx.set_solution_set_provider(nullptr);
    return archive;
  }

  const MoosConfig& config() const { return config_; }

 private:
  /// One greedy first-improvement descent along direction `w`, starting
  /// from the archive's best member for that direction. Every candidate
  /// step computes the archive-PHV gain (the criticized overhead) to feed
  /// the direction bandit; accepted designs enter the archive.
  double directional_search(core::EvalContext<P>& ctx,
                            DesignArchive<P>& archive,
                            const moo::WeightVector& w,
                            moo::ReferencePoint& z) const {
    // Normalization scale from the archive's objective ranges.
    const auto points = archive.objective_set();
    const auto nadir = moo::nadir_point(points);
    moo::ObjectiveVector scale(z.size(), 1.0);
    for (std::size_t k = 0; k < scale.size(); ++k) {
      scale[k] = std::max(nadir[k] - z.value()[k], 1e-12);
    }

    const std::size_t start = best_start_for(archive, w, z.value(), scale);
    Design current = archive.entries()[start].design;
    double current_g = moo::weighted_distance_scaled(
        archive.entries()[start].objectives, w, z.value(), scale);

    double total_gain = 0.0;
    std::size_t steps = 0, stale = 0, spent = 0;
    while (steps < config_.search.max_steps &&
           stale < config_.search.patience &&
           spent < config_.search.max_evaluations && !ctx.exhausted()) {
      Design n = ctx.problem().random_neighbor(current, ctx.rng());
      moo::ObjectiveVector obj = ctx.evaluate(n);
      ++spent;
      z.update(obj);
      // The per-candidate PHV computation MOOS pays to learn direction
      // quality (Sec. IV.B: "repeated calculations of PHV during local
      // search can lead to large computational overhead").
      const double phv_gain = archive.phv_gain(obj);
      const double g = moo::weighted_distance_scaled(obj, w, z.value(), scale);
      if (g < current_g) {
        current = std::move(n);
        current_g = g;
        archive.insert(current, obj);
        total_gain += std::max(phv_gain, 0.0);
        ++steps;
        stale = 0;
      } else {
        ++stale;
      }
    }
    return total_gain;
  }

  std::size_t pick_direction(core::EvalContext<P>& ctx,
                             const std::vector<double>& gain_estimate) const {
    // Softmax over gain estimates (normalized by the max for stability).
    double max_gain = 0.0;
    for (double g : gain_estimate) max_gain = std::max(max_gain, g);
    const double scale = max_gain > 0.0 ? max_gain : 1.0;
    std::vector<double> weights(gain_estimate.size());
    double total = 0.0;
    for (std::size_t i = 0; i < weights.size(); ++i) {
      weights[i] =
          std::exp(gain_estimate[i] / scale / config_.temperature);
      total += weights[i];
    }
    double r = ctx.rng().uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
      r -= weights[i];
      if (r <= 0.0) return i;
    }
    return weights.size() - 1;
  }

  /// The archive member with the best scalarized value along `w`.
  std::size_t best_start_for(const DesignArchive<P>& archive,
                             const moo::WeightVector& w,
                             const moo::ObjectiveVector& z,
                             const moo::ObjectiveVector& scale) const {
    std::size_t best = 0;
    double best_g = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < archive.size(); ++i) {
      const double g = moo::weighted_distance_scaled(
          archive.entries()[i].objectives, w, z, scale);
      if (g < best_g) {
        best_g = g;
        best = i;
      }
    }
    return best;
  }

  MoosConfig config_;
};

}  // namespace moela::baselines
