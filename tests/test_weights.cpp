#include "moo/weights.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace moela::moo {
namespace {

double sum(const WeightVector& w) {
  double s = 0.0;
  for (double v : w) s += v;
  return s;
}

TEST(SimplexLattice, SizeFormulaMatchesEnumeration) {
  for (std::size_t m : {2ul, 3ul, 4ul, 5ul}) {
    for (std::size_t h : {1ul, 2ul, 4ul, 6ul}) {
      EXPECT_EQ(simplex_lattice(m, h).size(), simplex_lattice_size(m, h))
          << "m=" << m << " h=" << h;
    }
  }
}

TEST(SimplexLattice, TwoObjectivesTenDivisions) {
  // The paper's example: N=11, M=2 -> {[0,1],[0.1,0.9],...,[1,0]}.
  const auto lattice = simplex_lattice(2, 10);
  ASSERT_EQ(lattice.size(), 11u);
  EXPECT_DOUBLE_EQ(lattice.front()[0], 0.0);
  EXPECT_DOUBLE_EQ(lattice.front()[1], 1.0);
  EXPECT_DOUBLE_EQ(lattice.back()[0], 1.0);
  EXPECT_DOUBLE_EQ(lattice.back()[1], 0.0);
  for (const auto& w : lattice) EXPECT_NEAR(sum(w), 1.0, 1e-12);
}

TEST(SimplexLattice, AllVectorsOnSimplex) {
  const auto lattice = simplex_lattice(4, 5);
  for (const auto& w : lattice) {
    EXPECT_NEAR(sum(w), 1.0, 1e-12);
    for (double v : w) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
    }
  }
}

TEST(UniformWeights, ExactCountAnyN) {
  for (std::size_t m : {2ul, 3ul, 5ul}) {
    for (std::size_t n : {1ul, 7ul, 50ul, 101ul}) {
      const auto w = uniform_weights(m, n);
      EXPECT_EQ(w.size(), n) << "m=" << m << " n=" << n;
    }
  }
}

TEST(UniformWeights, CornersAlwaysIncluded) {
  // Every single-objective direction must be represented (so the
  // decomposition covers the objective-space extremes).
  for (std::size_t m : {2ul, 3ul, 4ul, 5ul}) {
    const auto ws = uniform_weights(m, 50);
    for (std::size_t i = 0; i < m; ++i) {
      bool found = false;
      for (const auto& w : ws) {
        if (std::abs(w[i] - 1.0) < 1e-12) {
          found = true;
          break;
        }
      }
      EXPECT_TRUE(found) << "corner " << i << " missing for m=" << m;
    }
  }
}

TEST(UniformWeights, VectorsAreDistinct) {
  const auto ws = uniform_weights(3, 50);
  std::set<std::vector<double>> unique(ws.begin(), ws.end());
  EXPECT_EQ(unique.size(), ws.size());
}

TEST(UniformWeights, OneObjectiveDegenerate) {
  const auto ws = uniform_weights(1, 5);
  ASSERT_EQ(ws.size(), 5u);
  for (const auto& w : ws) {
    ASSERT_EQ(w.size(), 1u);
    EXPECT_DOUBLE_EQ(w[0], 1.0);
  }
}

TEST(UniformWeights, ZeroReturnsEmpty) {
  EXPECT_TRUE(uniform_weights(3, 0).empty());
}

TEST(WeightNeighborhoods, SelfIsNearest) {
  const auto ws = uniform_weights(3, 20);
  const auto hoods = weight_neighborhoods(ws, 5);
  ASSERT_EQ(hoods.size(), ws.size());
  for (std::size_t i = 0; i < hoods.size(); ++i) {
    ASSERT_EQ(hoods[i].size(), 5u);
    EXPECT_EQ(hoods[i][0], i);  // distance 0 to itself
  }
}

TEST(WeightNeighborhoods, SortedByDistance) {
  const auto ws = uniform_weights(2, 11);
  const auto hoods = weight_neighborhoods(ws, 4);
  auto dist = [&](std::size_t a, std::size_t b) {
    double s = 0.0;
    for (std::size_t k = 0; k < ws[a].size(); ++k) {
      const double d = ws[a][k] - ws[b][k];
      s += d * d;
    }
    return s;
  };
  for (std::size_t i = 0; i < hoods.size(); ++i) {
    for (std::size_t k = 1; k < hoods[i].size(); ++k) {
      EXPECT_LE(dist(i, hoods[i][k - 1]), dist(i, hoods[i][k]) + 1e-15);
    }
  }
}

TEST(WeightNeighborhoods, TClampedToN) {
  const auto ws = uniform_weights(2, 5);
  const auto hoods = weight_neighborhoods(ws, 50);
  for (const auto& h : hoods) EXPECT_EQ(h.size(), 5u);
}

class WeightSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(WeightSweep, AllOnSimplex) {
  const auto [m, n] = GetParam();
  const auto ws = uniform_weights(m, n);
  ASSERT_EQ(ws.size(), n);
  for (const auto& w : ws) {
    ASSERT_EQ(w.size(), m);
    EXPECT_NEAR(sum(w), 1.0, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, WeightSweep,
    ::testing::Combine(::testing::Values(2, 3, 4, 5),
                       ::testing::Values(10, 50, 100)));

}  // namespace
}  // namespace moela::moo
