// Locale-independence regression tests: the serving stack's bit-identical
// guarantee must survive a hostile process locale. A daemon started under
// de_DE (radix character ',', digit grouping '.') must produce the exact
// same cache keys, hexfloat strings, JSON bytes, and parses as one started
// under C — otherwise a fleet with mixed locales silently misses its own
// cache and rejects its own wire frames. Skips when the locale is not
// installed (minimal CI images).
#include <gtest/gtest.h>

#include <clocale>
#include <locale>
#include <string>

#include "api/request.hpp"
#include "api/serde.hpp"
#include "util/json.hpp"
#include "util/numeric.hpp"

namespace moela {
namespace {

// Doubles with awkward renderings: fractional (radix character exposure),
// huge (digit grouping exposure), subnormal, negative zero.
const double kProbes[] = {0.1,     1.0 / 3.0, 1.5,    -2.75e9,
                          1234567.891, 5e-324, -0.0,   1e308};

/// Applies de_DE to BOTH locale systems for the test's scope: the C locale
/// (printf/strtod honor it) and, where the system provides it, the global
/// C++ locale (iostreams imbue it at construction). Restores on scope exit
/// so the surrounding test binary stays in "C".
class ScopedGermanLocale {
 public:
  ScopedGermanLocale() {
    c_applied_ = std::setlocale(LC_ALL, "de_DE.UTF-8") != nullptr ||
                 std::setlocale(LC_ALL, "de_DE.utf8") != nullptr;
    if (!c_applied_) return;
    try {
      previous_cxx_ = std::locale::global(std::locale("de_DE.UTF-8"));
      cxx_applied_ = true;
    } catch (const std::runtime_error&) {
      // C++ locale not installed; the C-locale half still tests
      // printf/strtod paths.
    }
  }
  ~ScopedGermanLocale() {
    if (cxx_applied_) std::locale::global(previous_cxx_);
    std::setlocale(LC_ALL, "C");
  }
  bool applied() const { return c_applied_; }

 private:
  bool c_applied_ = false;
  bool cxx_applied_ = false;
  std::locale previous_cxx_;
};

#define SKIP_WITHOUT_GERMAN_LOCALE(guard)                             \
  if (!(guard).applied()) {                                           \
    GTEST_SKIP() << "de_DE.UTF-8 locale not installed on this host";  \
  }

api::RunRequest sample_request() {
  api::RunRequest request;
  request.problem = "zdt1";
  request.algorithm = "moela";
  request.options.max_evaluations = 2000;
  request.options.max_seconds = 1.0 / 3.0;
  request.options.seed = 41;
  request.options.knobs.set("moela.delta", 0.9).set("probe", 1234567.891);
  return request;
}

TEST(Locale, HexfloatFormattingIsLocaleProof) {
  std::string c_hex[std::size(kProbes)];
  std::string c_shortest[std::size(kProbes)];
  for (std::size_t i = 0; i < std::size(kProbes); ++i) {
    c_hex[i] = util::hexfloat(kProbes[i]);
    c_shortest[i] = util::shortest_double(kProbes[i]);
  }
  ScopedGermanLocale german;
  SKIP_WITHOUT_GERMAN_LOCALE(german);
  for (std::size_t i = 0; i < std::size(kProbes); ++i) {
    EXPECT_EQ(util::hexfloat(kProbes[i]), c_hex[i]);
    EXPECT_EQ(util::shortest_double(kProbes[i]), c_shortest[i]);
    double parsed = 0.0;
    ASSERT_TRUE(util::parse_double(c_hex[i], parsed)) << c_hex[i];
    EXPECT_EQ(parsed, kProbes[i]);
  }
  EXPECT_EQ(util::fixed_double(1234567.891, 3), "1234567.891");
  EXPECT_EQ(util::dec(1234567), "1234567");  // no grouping separators
}

TEST(Locale, CacheKeyIsLocaleProof) {
  const api::RunRequest request = sample_request();
  const std::string reference_key = request.cache_key();
  ASSERT_NE(reference_key.find("seconds=0x"), std::string::npos)
      << "cache key no longer carries hexfloat seconds: " << reference_key;
  ScopedGermanLocale german;
  SKIP_WITHOUT_GERMAN_LOCALE(german);
  EXPECT_EQ(request.cache_key(), reference_key);
}

TEST(Locale, SerdeRoundTripIsLocaleProof) {
  const api::RunRequest request = sample_request();
  const std::string reference_wire = api::request_to_json(request).dump();
  ScopedGermanLocale german;
  SKIP_WITHOUT_GERMAN_LOCALE(german);
  // Same bytes out...
  EXPECT_EQ(api::request_to_json(request).dump(), reference_wire);
  // ...and the German-locale process parses the C-locale frame exactly.
  const api::RunRequest decoded =
      api::request_from_json(util::Json::parse(reference_wire));
  EXPECT_EQ(decoded.options.max_seconds, request.options.max_seconds);
  EXPECT_EQ(decoded.options.knobs.values(), request.options.knobs.values());
  EXPECT_EQ(decoded.cache_key(), request.cache_key());
}

TEST(Locale, JsonNumbersAreLocaleProof) {
  ScopedGermanLocale german;
  SKIP_WITHOUT_GERMAN_LOCALE(german);
  for (double probe : kProbes) {
    const std::string wire = util::exact_number(probe).dump();
    EXPECT_EQ(wire.find(','), std::string::npos) << wire;
    const double back =
        util::exact_to_double(util::Json::parse(wire));
    EXPECT_EQ(back, probe) << wire;
  }
  // Plain (non-exact) numbers too: dump must use '.', parse must accept it.
  const std::string dumped = util::Json(0.1).dump();
  EXPECT_EQ(dumped, "0.1");
  EXPECT_EQ(util::Json::parse("1.5").as_double(), 1.5);
  EXPECT_EQ(util::Json::parse("1e-3").as_double(), 1e-3);
}

}  // namespace
}  // namespace moela
