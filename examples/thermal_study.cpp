// Domain study: how placement shapes the thermal profile of a 3D stack.
//
// Uses the library's thermal model (Eqs. 5-7, Cong et al. fast 3D-IC
// approximation) to compare three placement policies on the paper's 4x4x4
// platform under a hot GPU workload:
//   1. random feasible placement,
//   2. "hot-near-sink": highest-power cores in the layer nearest the sink,
//   3. MOELA-optimized (5-objective) design.
#include <algorithm>
#include <cstdio>
#include <numeric>

#include "api/registry.hpp"
#include "noc/constraints.hpp"
#include "noc/problem.hpp"
#include "sim/rodinia.hpp"
#include "util/table.hpp"

using namespace moela;

namespace {

/// Greedy thermal heuristic: sort cores by power descending; fill layers
/// nearest the heat sink first, honoring the LLC-on-edge rule.
noc::NocDesign hot_near_sink(const noc::PlatformSpec& spec,
                             const noc::Workload& workload, util::Rng& rng) {
  noc::DesignOps ops(spec);
  noc::NocDesign d = ops.random_design(rng);  // feasible links + placement

  // Order cores by power (descending) and tiles by layer (ascending z).
  std::vector<noc::CoreId> cores(spec.num_cores());
  std::iota(cores.begin(), cores.end(), noc::CoreId{0});
  std::sort(cores.begin(), cores.end(), [&](noc::CoreId a, noc::CoreId b) {
    return workload.core_power[a] > workload.core_power[b];
  });
  std::vector<noc::TileId> tiles(spec.num_tiles());
  std::iota(tiles.begin(), tiles.end(), noc::TileId{0});
  std::stable_sort(tiles.begin(), tiles.end(),
                   [&](noc::TileId a, noc::TileId b) {
                     return spec.z_of(a) < spec.z_of(b);
                   });

  // Two passes: LLCs take the coolest *edge* tiles they can; then the rest.
  std::vector<bool> used(spec.num_tiles(), false);
  for (noc::CoreId c : cores) {
    if (spec.core_type(c) != noc::PeType::kLlc) continue;
    for (noc::TileId t : tiles) {
      if (!used[t] && spec.is_edge_tile(t)) {
        d.placement[t] = c;
        used[t] = true;
        break;
      }
    }
  }
  for (noc::CoreId c : cores) {
    if (spec.core_type(c) == noc::PeType::kLlc) continue;
    for (noc::TileId t : tiles) {
      if (!used[t]) {
        d.placement[t] = c;
        used[t] = true;
        break;
      }
    }
  }
  return d;
}

}  // namespace

int main() {
  const auto spec = noc::PlatformSpec::paper_4x4x4();
  const auto workload = sim::make_workload(spec, sim::RodiniaApp::kHotspot3D, 5);
  const noc::NocObjectiveParams params;
  util::Rng rng(11);

  util::Table table("Thermal comparison (HOT workload, Eqs. 5-7)");
  table.set_header({"policy", "thermal objective", "peak T_n,k", "feasible"});

  auto report = [&](const char* name, const noc::NocDesign& d) {
    noc::EvaluationDetail detail;
    const auto obj = noc::evaluate_objectives(spec, d, workload, params,
                                              &detail);
    table.add_row({name, util::fmt(obj.thermal, 2),
                   util::fmt(detail.peak_temperature, 2),
                   noc::is_feasible(spec, d) ? "yes" : "NO"});
  };

  noc::DesignOps ops(spec);
  report("random placement", ops.random_design(rng));
  report("hot-near-sink heuristic", hot_near_sink(spec, workload, rng));

  // MOELA with the thermal objective in scope (5-obj), composed through
  // the runtime API.
  api::RunOptions options;
  options.max_evaluations = 5000;
  options.seed = 7;
  options.population_size = 30;
  options.n_local = 4;
  options.knobs.set("moela.forest.trees", 6)
      .set("moela.forest.max_features", 16);
  const auto run = api::registry()
                       .create("moela", api::AnyProblem(noc::NocProblem(
                                            spec, workload, 5)))
                       ->run(options);
  // Coolest member of the final population.
  std::size_t best = 0;
  for (std::size_t i = 1; i < run.final_objectives.size(); ++i) {
    if (run.final_objectives[i][4] < run.final_objectives[best][4]) best = i;
  }
  report("MOELA (coolest of population)",
         run.final_designs[best].as<noc::NocDesign>());

  table.print();
  std::printf("\nExpected: the heuristic beats random; MOELA matches or "
              "beats the heuristic while also optimizing the other four "
              "objectives.\n");
  return 0;
}
