// util/thread_annotations.hpp: the annotated Mutex/MutexLock/CondVar
// wrappers every concurrent subsystem now builds on. The static half of
// the contract (clang -Wthread-safety) is checked by the CI thread-safety
// leg; these tests pin the dynamic half — the wrappers must behave exactly
// like the std types they wrap, on GCC and clang alike — and exercise them
// under real contention so the TSan leg covers the wrapper paths too.
//
// Also here: regression tests for the two lock-coverage gaps the
// annotation pass surfaced (see the PR that introduced this file):
//   * ResultCache::set_max_disk_bytes raced concurrent store()s — the cap
//     is now a relaxed atomic;
//   * RunLogger::ok()/write_line probed the guarded stream outside the
//     lock — openness is now a const-after-ctor flag.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "api/request.hpp"
#include "api/result_cache.hpp"
#include "api/run_log.hpp"
#include "util/thread_annotations.hpp"

namespace moela {
namespace {

namespace fs = std::filesystem;

// --- Mutex / MutexLock ----------------------------------------------------

TEST(ThreadAnnotations, MutexLockProvidesMutualExclusion) {
  util::Mutex mutex;
  long counter = 0;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) {
        util::MutexLock lock(mutex);
        ++counter;  // unsynchronized long: TSan would catch a lost lock
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter, static_cast<long>(kThreads) * kIncrements);
}

TEST(ThreadAnnotations, TryLockReportsHeldMutex) {
  util::Mutex mutex;
  ASSERT_TRUE(mutex.try_lock());
  // Contended try_lock must fail, from another thread (try_lock on a
  // mutex the SAME thread holds is UB for std::mutex).
  std::atomic<bool> contended_result{true};
  std::thread prober([&] { contended_result = mutex.try_lock(); });
  prober.join();
  EXPECT_FALSE(contended_result.load());
  mutex.unlock();
  ASSERT_TRUE(mutex.try_lock());
  mutex.unlock();
}

// --- CondVar --------------------------------------------------------------

TEST(ThreadAnnotations, CondVarWakesWaiterAndReacquiresLock) {
  util::Mutex mutex;
  util::CondVar cv;
  bool ready = false;
  bool observed = false;
  std::thread waiter([&] {
    util::MutexLock lock(mutex);
    // The canonical predicate loop the wrapper's wait() is shaped for.
    while (!ready) cv.wait(lock);
    observed = ready;  // must hold the lock again here
  });
  {
    util::MutexLock lock(mutex);
    ready = true;
  }
  cv.notify_one();
  waiter.join();
  EXPECT_TRUE(observed);
}

TEST(ThreadAnnotations, CondVarNotifyAllWakesEveryWaiter) {
  util::Mutex mutex;
  util::CondVar cv;
  bool go = false;
  int awake = 0;
  constexpr int kWaiters = 4;
  std::vector<std::thread> waiters;
  waiters.reserve(kWaiters);
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&] {
      util::MutexLock lock(mutex);
      while (!go) cv.wait(lock);
      ++awake;
    });
  }
  {
    util::MutexLock lock(mutex);
    go = true;
  }
  cv.notify_all();
  for (auto& waiter : waiters) waiter.join();
  EXPECT_EQ(awake, kWaiters);
}

// --- regression: ResultCache cap changes racing stores --------------------

api::RunRequest small_request(std::uint64_t seed) {
  api::RunRequest request;
  request.problem = "zdt1";
  request.problem_options.num_variables = 4;
  request.algorithm = "nsga2";
  request.options.max_evaluations = 10;
  request.options.seed = seed;
  return request;
}

api::RunReport tiny_report(std::uint64_t seed) {
  api::RunReport report;
  report.algorithm = "nsga2";
  report.provenance.seed = seed;
  report.evaluations = 10;
  report.final_front = {{1.0, 2.0}};
  return report;
}

TEST(ThreadAnnotations, ResultCacheCapChangesAreSafeUnderConcurrentStores) {
  // Before the fix, set_max_disk_bytes() wrote a plain uintmax_t that
  // store()/enforce_disk_cap() read concurrently — a data race TSan flags
  // on this exact schedule. Now the cap is a relaxed atomic: this test
  // hammers stores (each of which reads the cap, twice on the eviction
  // path) against a tuner thread flipping it.
  const fs::path dir =
      fs::temp_directory_path() /
      ("moela-test-cap-" + std::to_string(::getpid()));
  fs::remove_all(dir);
  api::ResultCache cache(dir.string());
  std::atomic<bool> done{false};
  std::thread tuner([&] {
    std::uintmax_t caps[] = {1ull << 30, 1ull << 10, 0, 1ull << 20};
    for (int i = 0; !done.load(std::memory_order_relaxed); ++i) {
      cache.set_max_disk_bytes(caps[i % 4]);
    }
  });
  constexpr int kWriters = 4;
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < 50; ++i) {
        const std::uint64_t seed = static_cast<std::uint64_t>(t) * 1000 + i;
        cache.store(small_request(seed).cache_key(), tiny_report(seed));
      }
    });
  }
  for (auto& writer : writers) writer.join();
  done = true;
  tuner.join();
  // Whatever cap won, the memory tier holds every stored report.
  EXPECT_EQ(cache.stats().stores, 200u);
  cache.set_max_disk_bytes(1ull << 30);
  EXPECT_EQ(cache.max_disk_bytes(), 1ull << 30);
  fs::remove_all(dir);
}

// --- regression: RunLogger openness probe ---------------------------------

TEST(ThreadAnnotations, RunLoggerOkIsLockFreeAndAppendIsSerialized) {
  // Before the fix, ok() and write_line()'s fast path called
  // out_.is_open() — reading the mutex-guarded stream without the lock,
  // racing concurrent appends' writes to the same object. ok_ is now an
  // immutable post-constructor flag; this test checks it from many
  // threads while appends are in flight, and asserts every record lands
  // intact (one valid JSON line each).
  const fs::path path =
      fs::temp_directory_path() /
      ("moela-test-runlog-" + std::to_string(::getpid()) + ".jsonl");
  fs::remove(path);
  {
    api::RunLogger logger(path.string());
    ASSERT_TRUE(logger.ok());
    constexpr int kThreads = 4;
    constexpr int kRecords = 25;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (int i = 0; i < kRecords; ++i) {
          EXPECT_TRUE(logger.ok());  // lock-free read racing the appends
          api::RunRequest request = small_request(
              static_cast<std::uint64_t>(t) * 100 + i);
          logger.append_error(request, "race-test", 0.0);
        }
      });
    }
    for (auto& thread : threads) thread.join();
    EXPECT_TRUE(logger.ok());
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::size_t lines = 0;
  std::string line;
  while (std::getline(in, line)) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');  // interleaved writes would corrupt this
    EXPECT_EQ(line.back(), '}');
    ++lines;
  }
  EXPECT_EQ(lines, 100u);
  fs::remove(path);
}

TEST(ThreadAnnotations, RunLoggerUnopenableIsNotOkAndAppendsAreNoOps) {
  api::RunLogger logger("/nonexistent-dir-for-moela-test/run.jsonl");
  EXPECT_FALSE(logger.ok());
  logger.append_error(small_request(1), "ignored", 0.0);  // must not crash
  EXPECT_FALSE(logger.ok());
}

}  // namespace
}  // namespace moela
