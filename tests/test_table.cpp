#include "util/table.hpp"

#include <gtest/gtest.h>

#include "util/csv.hpp"
#include "util/log.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace moela::util {
namespace {

TEST(Table, RendersHeaderAndRows) {
  Table t("Demo");
  t.set_header({"app", "value"});
  t.add_row({"BFS", "1.5"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("Demo"), std::string::npos);
  EXPECT_NE(out.find("app"), std::string::npos);
  EXPECT_NE(out.find("BFS"), std::string::npos);
  EXPECT_NE(out.find("1.5"), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  Table t;
  t.set_header({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, SetHeaderAfterRowsThrows) {
  Table t;
  t.add_row({"x"});
  EXPECT_THROW(t.set_header({"a"}), std::logic_error);
}

TEST(Table, NumericRowFormatting) {
  Table t;
  t.set_header({"label", "v1", "v2"});
  t.add_row_numeric("row", {1.2345, 2.0}, 2);
  const std::string out = t.to_string();
  EXPECT_NE(out.find("1.23"), std::string::npos);
  EXPECT_NE(out.find("2.00"), std::string::npos);
}

TEST(Table, CsvEscapesCommasAndQuotes) {
  Table t;
  t.set_header({"name", "note"});
  t.add_row({"a,b", "say \"hi\""});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, MarkdownColumnsAligned) {
  Table t;
  t.set_header({"x", "longer-header"});
  t.add_row({"val", "y"});
  std::istringstream is(t.to_string());
  std::string line1, line2, line3;
  std::getline(is, line1);
  std::getline(is, line2);
  std::getline(is, line3);
  EXPECT_EQ(line1.size(), line2.size());
  EXPECT_EQ(line1.size(), line3.size());
}

TEST(Fmt, FixedPrecision) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(3.0, 0), "3");
}

TEST(Fmt, FactorAndPercent) {
  EXPECT_EQ(fmt_factor(12.345, 1), "12.3x");
  EXPECT_EQ(fmt_percent(0.42), "42%");
  EXPECT_EQ(fmt_percent(1.234, 1), "123.4%");
}

TEST(Csv, WritesHeaderAndRows) {
  const std::string path = "/tmp/moela_test_csv.csv";
  {
    CsvWriter w(path, {"a", "b"});
    ASSERT_TRUE(w.ok());
    w.write_row(std::vector<double>{1.0, 2.0});
    w.write_row(std::vector<std::string>{"x", "y"});
    w.flush();
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2");
  std::getline(in, line);
  EXPECT_EQ(line, "x,y");
  std::filesystem::remove(path);
}

TEST(Csv, RowWidthMismatchThrows) {
  CsvWriter w("/tmp/moela_test_csv2.csv", {"a", "b"});
  EXPECT_THROW(w.write_row(std::vector<double>{1.0}), std::invalid_argument);
  std::filesystem::remove("/tmp/moela_test_csv2.csv");
}

TEST(Log, LevelFiltering) {
  set_log_level(LogLevel::kError);
  log_info() << "should not crash and should be filtered";
  set_log_level(LogLevel::kInfo);
}

}  // namespace
}  // namespace moela::util
