// Exact Pareto hypervolume (PHV) for minimization problems.
//
// The PHV of a point set S with respect to a reference point r is the
// Lebesgue measure of the region dominated by S and bounded above by r:
//     HV(S, r) = vol( U_{s in S, s <= r} [s, r] ).
// It is the quality metric the paper optimizes for and reports (Table II),
// and MOO-STAGE's local search objective.
//
// Implementation: WFG-style recursive exclusive-hypervolume algorithm
// (While et al., "A fast way of calculating exact hypervolumes", IEEE TEVC
// 2012) with dedicated O(n log n) paths for 1-D/2-D slices. Exact for any
// number of objectives; practical here for the paper's M <= 5 and the
// population sizes involved (N = 50).
#pragma once

#include <vector>

#include "moo/objective.hpp"

namespace moela::moo {

/// Computes the exact hypervolume of `points` w.r.t. `ref` (minimization).
/// Points not strictly better than `ref` in every dimension contribute only
/// their clipped region; fully dominated-by-ref-or-worse points contribute 0.
/// An empty set has hypervolume 0.
double hypervolume(const std::vector<ObjectiveVector>& points,
                   const ObjectiveVector& ref);

/// Convenience for algorithm-internal use: normalizes `points` with the given
/// ideal/nadir into [0,1]^M and evaluates the hypervolume against the
/// conventional reference point (1.1, ..., 1.1). This makes PHV values
/// comparable across algorithms when the harness supplies a shared
/// ideal/nadir.
double normalized_hypervolume(const std::vector<ObjectiveVector>& points,
                              const ObjectiveVector& ideal,
                              const ObjectiveVector& nadir,
                              double ref_coordinate = 1.1);

}  // namespace moela::moo
