#include "moo/pareto.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace moela::moo {

std::vector<std::size_t> pareto_filter(
    const std::vector<ObjectiveVector>& points) {
  std::vector<std::size_t> result;
  for (std::size_t i = 0; i < points.size(); ++i) {
    bool keep = true;
    for (std::size_t j = 0; j < points.size() && keep; ++j) {
      if (i == j) continue;
      const Dominance d = compare(points[j], points[i]);
      if (d == Dominance::kDominates) keep = false;
      // For exact duplicates keep only the first occurrence.
      if (d == Dominance::kEqual && j < i) keep = false;
    }
    if (keep) result.push_back(i);
  }
  return result;
}

std::vector<std::vector<std::size_t>> non_dominated_sort(
    const std::vector<ObjectiveVector>& points) {
  const std::size_t n = points.size();
  std::vector<std::vector<std::size_t>> dominated(n);  // i dominates these
  std::vector<int> dom_count(n, 0);                    // # dominating i

  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const Dominance d = compare(points[i], points[j]);
      if (d == Dominance::kDominates) {
        dominated[i].push_back(j);
        ++dom_count[j];
      } else if (d == Dominance::kDominatedBy) {
        dominated[j].push_back(i);
        ++dom_count[i];
      }
    }
  }

  std::vector<std::vector<std::size_t>> fronts;
  std::vector<std::size_t> current;
  for (std::size_t i = 0; i < n; ++i) {
    if (dom_count[i] == 0) current.push_back(i);
  }
  while (!current.empty()) {
    fronts.push_back(current);
    std::vector<std::size_t> next;
    for (std::size_t i : current) {
      for (std::size_t j : dominated[i]) {
        if (--dom_count[j] == 0) next.push_back(j);
      }
    }
    current = std::move(next);
  }
  return fronts;
}

std::vector<double> crowding_distance(
    const std::vector<ObjectiveVector>& points,
    const std::vector<std::size_t>& front) {
  const std::size_t n = front.size();
  std::vector<double> dist(n, 0.0);
  if (n == 0) return dist;
  if (n <= 2) {
    std::fill(dist.begin(), dist.end(),
              std::numeric_limits<double>::infinity());
    return dist;
  }
  const std::size_t m = points[front[0]].size();
  std::vector<std::size_t> order(n);
  for (std::size_t obj = 0; obj < m; ++obj) {
    for (std::size_t i = 0; i < n; ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return points[front[a]][obj] < points[front[b]][obj];
    });
    const double lo = points[front[order.front()]][obj];
    const double hi = points[front[order.back()]][obj];
    dist[order.front()] = std::numeric_limits<double>::infinity();
    dist[order.back()] = std::numeric_limits<double>::infinity();
    if (hi <= lo) continue;  // degenerate objective: no interior spread
    for (std::size_t k = 1; k + 1 < n; ++k) {
      dist[order[k]] += (points[front[order[k + 1]]][obj] -
                         points[front[order[k - 1]]][obj]) /
                        (hi - lo);
    }
  }
  return dist;
}

ObjectiveVector ideal_point(const std::vector<ObjectiveVector>& points) {
  if (points.empty()) throw std::invalid_argument("ideal_point: empty set");
  ObjectiveVector ideal = points.front();
  for (const auto& p : points) {
    for (std::size_t i = 0; i < ideal.size(); ++i) {
      ideal[i] = std::min(ideal[i], p[i]);
    }
  }
  return ideal;
}

ObjectiveVector nadir_point(const std::vector<ObjectiveVector>& points) {
  if (points.empty()) throw std::invalid_argument("nadir_point: empty set");
  ObjectiveVector nadir = points.front();
  for (const auto& p : points) {
    for (std::size_t i = 0; i < nadir.size(); ++i) {
      nadir[i] = std::max(nadir[i], p[i]);
    }
  }
  return nadir;
}

std::vector<ObjectiveVector> normalize(
    const std::vector<ObjectiveVector>& points, const ObjectiveVector& ideal,
    const ObjectiveVector& nadir) {
  std::vector<ObjectiveVector> out = points;
  for (auto& p : out) {
    for (std::size_t i = 0; i < p.size(); ++i) {
      const double range = nadir[i] - ideal[i];
      p[i] = range > 0.0 ? (p[i] - ideal[i]) / range : 0.0;
    }
  }
  return out;
}

}  // namespace moela::moo
