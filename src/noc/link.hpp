// Undirected communication link between two tiles (routers).
#pragma once

#include <compare>
#include <cstdint>

namespace moela::noc {

/// An undirected link; canonical form keeps a < b so links are directly
/// comparable and sets of links can be kept sorted/unique.
struct Link {
  std::uint16_t a = 0;
  std::uint16_t b = 0;

  Link() = default;
  Link(std::uint16_t u, std::uint16_t v) : a(u < v ? u : v), b(u < v ? v : u) {}

  friend auto operator<=>(const Link&, const Link&) = default;
};

}  // namespace moela::noc
