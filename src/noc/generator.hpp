// Feasible-design generation and variation operators for the NoC problem.
//
// Every operator returns a design satisfying ALL Sec. III constraints:
//  * placement is a permutation of cores, LLCs on edge tiles,
//  * exact planar/vertical link budgets, links geometrically legal,
//  * router degree <= max, network connected.
//
// Key operator choices (documented per DESIGN.md):
//  * random link placement builds a budgeted randomized spanning tree
//    (Kruskal over shuffled candidate pools) and fills the remaining budget
//    randomly — connectivity by construction;
//  * the placement crossover is cycle crossover (CX), which provably yields
//    a permutation whose every position is inherited from one feasible
//    parent, so the LLC-on-edge constraint is preserved for free;
//  * the link crossover runs the same budgeted Kruskal but draws first from
//    the parents' common links, then from either parent, then (only if
//    needed) from the global candidate pool.
#pragma once

#include <vector>

#include "noc/design.hpp"
#include "noc/platform.hpp"
#include "util/rng.hpp"

namespace moela::noc {

class DesignOps {
 public:
  explicit DesignOps(const PlatformSpec& spec) : spec_(&spec) {}

  /// Uniformly random feasible design.
  NocDesign random_design(util::Rng& rng) const;

  /// One local-search move: either a core swap or a single link relocation,
  /// chosen uniformly; always feasible.
  NocDesign random_neighbor(const NocDesign& d, util::Rng& rng) const;

  /// Feasible child of two feasible parents (CX placement + pooled link
  /// Kruskal).
  NocDesign crossover(const NocDesign& a, const NocDesign& b,
                      util::Rng& rng) const;

  /// 1-3 stacked neighbor moves (geometric, p = 0.3 continuation).
  NocDesign mutate(const NocDesign& d, util::Rng& rng) const;

  // Individual move kinds, exposed for tests and ablations. Each returns
  // true on success and mutates `d` in place; on failure `d` is unchanged.
  bool swap_cores(NocDesign& d, util::Rng& rng) const;
  bool move_planar_link(NocDesign& d, util::Rng& rng) const;
  bool move_vertical_link(NocDesign& d, util::Rng& rng) const;

 private:
  /// Random feasible placement (LLCs on shuffled edge tiles).
  std::vector<CoreId> random_placement(util::Rng& rng) const;

  /// Builds a feasible link set of exact budget drawing candidates from the
  /// given pools in order (earlier pools are preferred). Pools may overlap;
  /// the last pool must be (a superset of) the full candidate set, which
  /// guarantees success. Throws std::runtime_error if budgets cannot be met
  /// (cannot happen with sane platform specs; kept as a hard failure for
  /// defense).
  std::vector<Link> build_links(
      const std::vector<std::vector<Link>>& planar_pools,
      const std::vector<std::vector<Link>>& vertical_pools,
      util::Rng& rng) const;

  const PlatformSpec* spec_;
};

}  // namespace moela::noc
