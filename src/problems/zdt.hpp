// ZDT bi-objective test problems (Zitzler, Deb, Thiele 2000). Compact,
// cheap-to-evaluate 2-objective benchmarks with closed-form Pareto fronts —
// the workhorses of the unit/property tests.
#pragma once

#include <cstddef>
#include <vector>

#include "moo/objective.hpp"
#include "problems/continuous.hpp"

namespace moela::problems {

enum class ZdtVariant {
  kZdt1,  // convex front: f2 = 1 - sqrt(f1)
  kZdt2,  // concave front: f2 = 1 - f1^2
  kZdt3,  // disconnected front
};

class Zdt : public ContinuousProblemBase {
 public:
  explicit Zdt(ZdtVariant variant, std::size_t num_variables = 30)
      : ContinuousProblemBase(num_variables), variant_(variant) {}

  std::size_t num_objectives() const { return 2; }
  moo::ObjectiveVector evaluate(const Design& x) const;

  ZdtVariant variant() const { return variant_; }

  /// The true front value f2(f1) for points on the Pareto-optimal set
  /// (g == 1). For ZDT3 this is the lower envelope formula; only parts of it
  /// are actually Pareto-optimal.
  static double front_f2(ZdtVariant variant, double f1);

  /// `n` evenly spaced points on the true Pareto front.
  std::vector<moo::ObjectiveVector> pareto_front_samples(std::size_t n) const;

 private:
  ZdtVariant variant_;
};

}  // namespace moela::problems
