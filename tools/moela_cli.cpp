// moela_cli: compose problem x algorithm x budgets from the command line
// and emit CSV — the serving front-end of the runtime-composition API.
// Nothing here is algorithm- or problem-specific: problems come from
// api::make_problem(), algorithms from api::registry(), and per-algorithm
// parameters ride in --knob name=value pairs.
//
// Every invocation — single run or sweep — is a batch of api::RunRequests
// scheduled on the thread-pooled api::Executor: --jobs picks the worker
// count, --replicates fans each cell out across seeds, repeating
// --algo/--app sweeps the grid, and a disk-backed result cache (on by
// default; see --no-cache / --cache-dir / $MOELA_CACHE_DIR) makes repeated
// identical invocations near-free. Ctrl-C requests a graceful stop:
// in-flight runs wind down at their next budget check and still report —
// and with --connect the stop reaches the daemon(s) as the protocol's
// cancel verb, so remote work halts too instead of burning CPU to
// completion.
//
// With --connect host:port the same sweep flags submit to a remote
// moela_serve daemon instead of running in-process: requests travel as
// line-delimited JSON (api/serde.hpp), reports come back bit-identical to
// a local run, and the daemon's process-lifetime cache answers repeats.
// Repeating --connect fans the batch across a daemon FLEET through
// api::ShardedExecutor (--shard-policy picks the placement); merged
// reports are still bit-identical to an inline run.
//
//   moela_cli --problem zdt1 --algorithm moela --evals 2000 --seed 1
//   moela_cli --problem zdt1 --algo moela --algo nsga2 --replicates 3
//             --jobs 4 --evals 2000
//   moela_cli --problem noc --app BFS --app SRAD --objectives 5
//             --algo moela --algo moos --seconds 5 --jobs 2
//   moela_cli --connect localhost:7313 --problem zdt1 --algo moela
//             --replicates 3 --evals 2000
//   moela_cli --connect host1:7313 --connect host2:7313
//             --shard-policy work-steal --problem zdt1 --algo moela
//             --replicates 8 --evals 2000      # sharded sweep
//   moela_cli --connect :7313 --shutdown     # drain the daemon(s)
//   moela_cli --list
//
// stdout carries the final Pareto front(s) as CSV (one objective per
// column, '#' provenance comments per run); run metadata goes to stderr so
// pipelines stay clean.
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include <unistd.h>

#include "api/executor.hpp"
#include "api/optimizer.hpp"
#include "api/problems.hpp"
#include "api/registry.hpp"
#include "api/request.hpp"
#include "api/result_cache.hpp"
#include "api/run_log.hpp"
#include "api/sharded_executor.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/sched/policy.hpp"
#include "util/json.hpp"
#include "util/metrics.hpp"
#include "util/timer.hpp"

using namespace moela;

namespace {

struct CliOptions {
  std::string problem;
  std::vector<std::string> algorithms;
  std::vector<std::string> apps;  // NoC sweep; empty = ProblemOptions default
  api::ProblemOptions problem_options;
  api::RunOptions run_options;
  std::size_t jobs = 1;
  std::size_t replicates = 1;
  bool use_cache = true;
  std::string cache_dir;   // empty = ResultCache::default_disk_dir()
  bool progress = false;   // in-run progress lines at the snapshot cadence
  std::string out_path;    // empty = stdout
  std::string trace_path;  // empty = no trace dump
  std::string run_log_path;  // empty = $MOELA_RUN_LOG (via the Executor)
  /// moela_serve endpoints ("host:port", repeatable). One = plain remote
  /// submission; several = a sharded batch via api::ShardedExecutor.
  std::vector<std::string> connect;
  api::ShardPolicy shard_policy = api::ShardPolicy::kWorkStealing;
  bool shard_policy_set = false;  // explicit --shard-policy forces sharding
  /// Scheduling class for daemon-side admission (--connect only; the
  /// in-process Executor has no queue to be fair about).
  serve::sched::Priority priority = serve::sched::Priority::kNormal;
  bool priority_set = false;
  bool remote_shutdown = false;  // with --connect: drain the daemon(s)
  bool show_metrics = false;  // with --connect: print telemetry snapshots
  bool list = false;
  bool help = false;
};

void print_usage(std::FILE* to) {
  std::fprintf(to,
               "usage: moela_cli --problem NAME --algorithm NAME [options]\n"
               "\n"
               "  --problem NAME     problem to solve (see --list)\n"
               "  --algorithm NAME   optimizer registry key (see --list);\n"
               "  --algo NAME        repeatable — multiple keys sweep them "
               "all\n"
               "  --evals N          objective-evaluation budget "
               "(default 20000)\n"
               "  --seconds S        wall-clock budget, 0 = off (default 0)\n"
               "  --seed N           RNG seed (default 1)\n"
               "  --replicates K     run each cell K times with seeds "
               "seed..seed+K-1\n"
               "  --jobs N           Executor worker threads (default 1; "
               "0 = all cores)\n"
               "  --pop N            population / archive size (default 50)\n"
               "  --n-local N        local searches per iteration "
               "(default 5)\n"
               "  --snapshot N       snapshot cadence in evals (default "
               "500)\n"
               "  --objectives M     objective count (problem default if "
               "omitted)\n"
               "  --variables N      decision variables / items (problem "
               "default)\n"
               "  --app TAG          NoC workload app: BP BFS GAU HOT PF SC "
               "SRAD\n"
               "                     (repeatable — multiple apps sweep "
               "them)\n"
               "  --small            NoC: 3x3x3 platform instead of 4x4x4\n"
               "  --knob NAME=VALUE  per-algorithm knob (repeatable; see "
               "api/optimizers.cpp)\n"
               "  --no-cache         disable the result cache\n"
               "  --cache-dir PATH   cache directory (default "
               "$MOELA_CACHE_DIR,\n"
               "                     else ~/.cache/moela)\n"
               "  --run-log PATH     append one JSONL record per completed "
               "run\n"
               "                     (default $MOELA_RUN_LOG)\n"
               "  --connect H:P      submit to a moela_serve daemon instead "
               "of running\n"
               "                     in-process (cache/jobs are then "
               "server-side);\n"
               "                     repeatable — several endpoints shard "
               "the batch\n"
               "                     across the fleet (docs/operations.md)\n"
               "  --shard-policy P   shard placement: work-steal (default),\n"
               "                     round-robin, or weighted (load-aware)\n"
               "  --priority CLASS   daemon-side scheduling class: "
               "interactive,\n"
               "                     normal (default), or batch (needs "
               "--connect;\n"
               "                     see docs/scheduling.md)\n"
               "  --shutdown         with --connect: ask the daemon(s) to "
               "drain and exit\n"
               "  --metrics          with --connect: print each daemon's "
               "telemetry\n"
               "                     snapshot (metrics verb) as one JSON "
               "line, then exit\n"
               "  --progress         stream in-run progress at the snapshot "
               "cadence\n"
               "  --out PATH         write the front CSV(s) to PATH instead "
               "of stdout\n"
               "  --trace PATH       also dump the anytime snapshot trace "
               "CSV\n"
               "  --list             list problems and algorithms, then "
               "exit\n"
               "  --help             this text\n"
               "\n"
               "Ctrl-C stops the batch gracefully: in-flight runs return "
               "their partial\nfronts (marked cancelled=1). With --connect "
               "the stop crosses the wire\n(protocol cancel verb): "
               "daemon-side work halts, the daemons keep serving.\n");
}

std::optional<CliOptions> parse_args(int argc, char** argv) {
  CliOptions cli;
  auto need_value = [&](int& i, const char* flag) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "moela_cli: %s needs a value\n", flag);
      return nullptr;
    }
    return argv[++i];
  };
  // Checked numeric parsing: a typo like "--evals 20k" must be an error,
  // not a silent zero-budget run.
  auto integer_value = [&](int& i, const char* flag, auto& out) -> bool {
    const char* v = need_value(i, flag);
    if (v == nullptr) return false;
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(v, &end, 10);
    if (end == v || *end != '\0' || std::strchr(v, '-') != nullptr) {
      std::fprintf(stderr,
                   "moela_cli: %s wants a non-negative integer, got '%s'\n",
                   flag, v);
      return false;
    }
    out = parsed;
    return true;
  };
  auto double_value = [&](int& i, const char* flag, double& out) -> bool {
    const char* v = need_value(i, flag);
    if (v == nullptr) return false;
    char* end = nullptr;
    const double parsed = std::strtod(v, &end);
    if (end == v || *end != '\0') {
      std::fprintf(stderr, "moela_cli: %s wants a number, got '%s'\n", flag,
                   v);
      return false;
    }
    out = parsed;
    return true;
  };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* v = nullptr;
    if (arg == "--help" || arg == "-h") {
      cli.help = true;
    } else if (arg == "--list") {
      cli.list = true;
    } else if (arg == "--small") {
      cli.problem_options.small_platform = true;
    } else if (arg == "--no-cache") {
      cli.use_cache = false;
    } else if (arg == "--progress") {
      cli.progress = true;
    } else if (arg == "--problem") {
      if ((v = need_value(i, "--problem")) == nullptr) return std::nullopt;
      cli.problem = v;
    } else if (arg == "--algorithm" || arg == "--algo") {
      if ((v = need_value(i, arg.c_str())) == nullptr) return std::nullopt;
      cli.algorithms.push_back(v);
    } else if (arg == "--evals") {
      if (!integer_value(i, "--evals", cli.run_options.max_evaluations)) {
        return std::nullopt;
      }
    } else if (arg == "--seconds") {
      if (!double_value(i, "--seconds", cli.run_options.max_seconds)) {
        return std::nullopt;
      }
    } else if (arg == "--seed") {
      if (!integer_value(i, "--seed", cli.run_options.seed)) {
        return std::nullopt;
      }
      cli.problem_options.seed = cli.run_options.seed;
    } else if (arg == "--replicates") {
      if (!integer_value(i, "--replicates", cli.replicates)) {
        return std::nullopt;
      }
      if (cli.replicates == 0) {
        std::fprintf(stderr, "moela_cli: --replicates wants at least 1\n");
        return std::nullopt;
      }
    } else if (arg == "--jobs") {
      if (!integer_value(i, "--jobs", cli.jobs)) return std::nullopt;
    } else if (arg == "--pop") {
      if (!integer_value(i, "--pop", cli.run_options.population_size)) {
        return std::nullopt;
      }
    } else if (arg == "--n-local") {
      if (!integer_value(i, "--n-local", cli.run_options.n_local)) {
        return std::nullopt;
      }
    } else if (arg == "--snapshot") {
      if (!integer_value(i, "--snapshot",
                         cli.run_options.snapshot_interval)) {
        return std::nullopt;
      }
    } else if (arg == "--objectives") {
      if (!integer_value(i, "--objectives",
                         cli.problem_options.num_objectives)) {
        return std::nullopt;
      }
    } else if (arg == "--variables") {
      if (!integer_value(i, "--variables",
                         cli.problem_options.num_variables)) {
        return std::nullopt;
      }
    } else if (arg == "--app") {
      if ((v = need_value(i, "--app")) == nullptr) return std::nullopt;
      cli.apps.push_back(v);
    } else if (arg == "--knob") {
      if ((v = need_value(i, "--knob")) == nullptr) return std::nullopt;
      if (!cli.run_options.knobs.parse_assignment(v)) {
        std::fprintf(stderr, "moela_cli: bad --knob '%s' (want NAME=VALUE)\n",
                     v);
        return std::nullopt;
      }
    } else if (arg == "--cache-dir") {
      if ((v = need_value(i, "--cache-dir")) == nullptr) return std::nullopt;
      cli.cache_dir = v;
    } else if (arg == "--run-log") {
      if ((v = need_value(i, "--run-log")) == nullptr) return std::nullopt;
      cli.run_log_path = v;
    } else if (arg == "--connect") {
      if ((v = need_value(i, "--connect")) == nullptr) return std::nullopt;
      cli.connect.push_back(v);
    } else if (arg == "--shard-policy") {
      if ((v = need_value(i, "--shard-policy")) == nullptr) {
        return std::nullopt;
      }
      if (!api::parse_shard_policy(v, cli.shard_policy)) {
        std::fprintf(stderr,
                     "moela_cli: bad --shard-policy '%s' (want work-steal, "
                     "round-robin, or weighted)\n",
                     v);
        return std::nullopt;
      }
      cli.shard_policy_set = true;
    } else if (arg == "--priority") {
      if ((v = need_value(i, "--priority")) == nullptr) return std::nullopt;
      if (!serve::sched::parse_priority(v, cli.priority)) {
        std::fprintf(stderr,
                     "moela_cli: bad --priority '%s' (want interactive, "
                     "normal, or batch)\n",
                     v);
        return std::nullopt;
      }
      cli.priority_set = true;
    } else if (arg == "--shutdown") {
      cli.remote_shutdown = true;
    } else if (arg == "--metrics") {
      cli.show_metrics = true;
    } else if (arg == "--out") {
      if ((v = need_value(i, "--out")) == nullptr) return std::nullopt;
      cli.out_path = v;
    } else if (arg == "--trace") {
      if ((v = need_value(i, "--trace")) == nullptr) return std::nullopt;
      cli.trace_path = v;
    } else {
      std::fprintf(stderr, "moela_cli: unknown flag '%s'\n", arg.c_str());
      return std::nullopt;
    }
  }
  return cli;
}

/// Provenance header comments (satellite of the batch API: every CSV block
/// is traceable to the request that produced it).
void write_provenance(std::ostream& out, const api::RunReport& report) {
  const api::RunProvenance& p = report.provenance;
  out << "# problem=" << (p.problem.empty() ? "<custom>" : p.problem)
      << " algorithm=" << (p.algorithm_key.empty() ? "?" : p.algorithm_key)
      << " name=\"" << report.algorithm << "\""
      << " seed=" << p.seed << " evaluations=" << report.evaluations
      << " seconds=" << report.seconds
      << " cache=" << (p.cache_hit ? "hit" : "miss")
      << " cancelled=" << (p.cancelled ? 1 : 0);
  // Trace lives in the '#' comment only: CI diffs fronts with grep -v '^#',
  // so per-invocation ids never break bit-identity checks on the data rows.
  if (!p.trace_id.empty()) out << " trace=" << p.trace_id;
  out << "\n";
  if (!p.knobs.empty()) {
    out << "# knobs";
    for (const auto& [name, value] : p.knobs) {
      out << ' ' << name << '=' << value;
    }
    out << "\n";
  }
}

void write_front_csv(std::ostream& out,
                     const std::vector<moo::ObjectiveVector>& front) {
  if (front.empty()) return;
  for (std::size_t m = 0; m < front[0].size(); ++m) {
    out << (m == 0 ? "" : ",") << "objective_" << m;
  }
  out << "\n";
  for (const auto& point : front) {
    for (std::size_t m = 0; m < point.size(); ++m) {
      out << (m == 0 ? "" : ",") << point[m];
    }
    out << "\n";
  }
}

void print_algorithm(const std::string& name,
                     const std::vector<std::string>& knobs) {
  std::printf("  %s\n", name.c_str());
  if (knobs.empty()) {
    std::printf("      knobs: (none declared — accepts any)\n");
    return;
  }
  std::printf("      knobs:");
  for (const auto& knob : knobs) std::printf(" %s", knob.c_str());
  std::printf("\n");
}

/// --list: problem keys and algorithm keys with the knob keys each
/// algorithm's adapter declared at registration.
int list_registry() {
  std::printf("problems:\n");
  for (const auto& name : api::problem_names()) {
    std::printf("  %s\n", name.c_str());
  }
  std::printf("algorithms:\n");
  for (const auto& name : api::registry().names()) {
    print_algorithm(name, api::registry().knob_keys(name));
  }
  return 0;
}

/// --list --connect: the DAEMON's registry (which may have plugins this
/// binary lacks), via the list_problems / list_algorithms verbs.
int list_remote(serve::Client& client) {
  std::printf("problems:\n");
  for (const auto& name : client.list_problems()) {
    std::printf("  %s\n", name.c_str());
  }
  std::printf("algorithms:\n");
  const util::Json algorithms = client.list_algorithms();
  for (const auto& entry : algorithms.as_array()) {
    std::vector<std::string> knobs;
    if (const util::Json* k = entry.find("knobs")) {
      for (const auto& knob : k->as_array()) knobs.push_back(knob.as_string());
    }
    const util::Json* name = entry.find("name");
    print_algorithm(name != nullptr ? name->as_string() : "?", knobs);
  }
  return 0;
}

/// With --connect, execution settings live daemon-side; note the flags
/// this invocation set that will not travel.
void warn_daemon_side_flags(const CliOptions& cli) {
  if (!cli.use_cache || !cli.cache_dir.empty() || cli.jobs != 1 ||
      !cli.run_log_path.empty()) {
    std::fprintf(stderr,
                 "moela_cli: note: --jobs/--no-cache/--cache-dir/"
                 "--run-log are daemon-side settings; ignored with "
                 "--connect\n");
  }
}

/// Warns about --knob names no selected algorithm declares (they would be
/// silently ignored at run time — almost always a typo).
void warn_unknown_knobs(const CliOptions& cli) {
  const auto unknown = api::registry().unknown_knob_keys(
      cli.run_options.knobs, cli.algorithms);
  for (const auto& key : unknown) {
    std::fprintf(stderr,
                 "moela_cli: warning: knob '%s' is not recognized by any "
                 "selected algorithm and will be ignored\n",
                 key.c_str());
  }
}

/// Builds the batch: (app x algorithm x replicate), in output order. Every
/// request carries ONE freshly minted trace id for the whole invocation —
/// the correlation handle that the daemons echo into provenance, JSONL run
/// logs, and progress events (and that write_provenance prints), so a
/// fleet-wide sweep can be grepped end to end. Announced on stderr up
/// front, before any runs start.
std::vector<api::RunRequest> build_requests(const CliOptions& cli) {
  const std::string trace = util::mint_trace_id();
  std::fprintf(stderr, "moela_cli: trace %s\n", trace.c_str());
  std::vector<std::string> apps = cli.apps;
  if (apps.empty()) apps.push_back(cli.problem_options.app);
  std::vector<api::RunRequest> requests;
  for (const auto& app : apps) {
    for (const auto& algorithm : cli.algorithms) {
      api::RunRequest base;
      base.problem = cli.problem;
      base.problem_options = cli.problem_options;
      base.problem_options.app = app;
      base.algorithm = algorithm;
      base.options = cli.run_options;
      base.label = cli.problem +
                   (cli.problem == "noc" ? ":" + app : std::string()) + ":" +
                   algorithm;
      base.trace_id = trace;
      for (auto& request : api::expand_replicates(base, cli.replicates)) {
        request.label += ":seed" + std::to_string(request.options.seed);
        requests.push_back(std::move(request));
      }
    }
  }
  return requests;
}

// Ctrl-C: ask the batch to stop; a second Ctrl-C falls back to the default
// (hard kill). Signal handlers may only touch lock-free atomics and call
// async-signal-safe functions, so the pointer itself is atomic,
// request_stop is a single atomic store, and the notice goes out via a
// raw write(2). With --connect the stop crosses the wire: the in-flight
// batch's cancel verb is sent to every daemon holding work.
std::atomic<api::RunControl*> g_control{nullptr};

void handle_sigint(int) {
  if (auto* control = g_control.load()) {
    control->request_stop();
    constexpr char kNotice[] =
        "\nmoela_cli: stop requested — cancelling in-flight runs (Ctrl-C "
        "again to kill)\n";
    [[maybe_unused]] ssize_t ignored =
        write(STDERR_FILENO, kNotice, sizeof(kNotice) - 1);
  }
  std::signal(SIGINT, SIG_DFL);
}

/// Clears the signal handler's pointer on every exit path (including a
/// throwing run), so a late Ctrl-C can never touch a destroyed control.
struct ControlGuard {
  explicit ControlGuard(api::RunControl& control) { g_control = &control; }
  ~ControlGuard() { g_control = nullptr; }
};

/// The standard stderr progress printer, shared by the in-process and
/// sharded paths (both notify through api::RunControl with batch-order
/// indices; the single-daemon path prints from raw protocol events).
void install_progress_printer(api::RunControl& control,
                              const std::vector<api::RunRequest>& requests,
                              bool stream_progress) {
  control.on_progress([&control, &requests,
                       stream_progress](const api::RunProgress& p) {
    // After Ctrl-C the console said "cancelling"; cadence events still in
    // flight must not show progress climbing past that. Final `finished`
    // lines still print — they are the completion tally.
    if (!p.finished && control.stop_requested()) return;
    if (p.finished) {
      std::fprintf(stderr,
                   "moela_cli: [%zu/%zu] %s done (%zu evals, %.2f s%s)\n",
                   p.completed, p.batch_size,
                   p.batch_index < requests.size()
                       ? requests[p.batch_index].label.c_str()
                       : "?",
                   p.evaluations, p.seconds, p.cache_hit ? ", cached" : "");
    } else if (stream_progress) {
      std::fprintf(stderr,
                   "moela_cli: [run %zu] %s at %zu/%zu evals (%.2f s)\n",
                   p.batch_index + 1, p.algorithm.c_str(), p.evaluations,
                   p.max_evaluations, p.seconds);
    }
  });
}

/// Batch summary + front CSV(s) + optional trace CSV — shared by the
/// in-process and --connect paths (the reports are bit-identical either
/// way, so the output code cannot tell them apart). Returns the process
/// exit code.
int write_outputs(const CliOptions& cli,
                  const std::vector<api::RunRequest>& requests,
                  const std::vector<api::RunReport>& reports,
                  double wall_seconds) {
  std::size_t cache_hits = 0, cancelled = 0;
  for (const auto& report : reports) {
    cache_hits += report.provenance.cache_hit ? 1 : 0;
    cancelled += report.provenance.cancelled ? 1 : 0;
  }
  const std::string cancelled_note =
      cancelled > 0 ? ", " + std::to_string(cancelled) + " cancelled" : "";
  std::fprintf(stderr,
               "moela_cli: batch done in %.2f s (%zu run(s), %zu cache "
               "hit(s)%s)\n",
               wall_seconds, reports.size(), cache_hits,
               cancelled_note.c_str());
  if (cancelled > 0) {
    std::fprintf(stderr,
                 "moela_cli: cancelled %zu run(s), %zu completed (partial "
                 "fronts marked cancelled=1)\n",
                 cancelled, reports.size() - cancelled);
  }

  std::ofstream out_file;
  if (!cli.out_path.empty()) {
    out_file.open(cli.out_path);
    if (!out_file) {
      std::fprintf(stderr, "moela_cli: cannot open '%s'\n",
                   cli.out_path.c_str());
      return 1;
    }
  }
  std::ostream& out = cli.out_path.empty() ? std::cout : out_file;
  out.precision(12);
  for (std::size_t i = 0; i < reports.size(); ++i) {
    if (reports.size() > 1) {
      out << (i == 0 ? "" : "\n") << "# run " << (i + 1) << "/"
          << reports.size() << " " << requests[i].label << "\n";
    }
    write_provenance(out, reports[i]);
    write_front_csv(out, reports[i].final_front);
  }
  if (!cli.out_path.empty()) {
    std::fprintf(stderr, "moela_cli: front CSV written to %s\n",
                 cli.out_path.c_str());
  }

  if (!cli.trace_path.empty()) {
    std::ofstream trace(cli.trace_path);
    if (!trace) {
      std::fprintf(stderr, "moela_cli: cannot open '%s'\n",
                   cli.trace_path.c_str());
      return 1;
    }
    trace.precision(12);
    for (std::size_t i = 0; i < reports.size(); ++i) {
      if (reports.size() > 1) {
        trace << (i == 0 ? "" : "\n") << "# run " << (i + 1) << "/"
              << reports.size() << " " << requests[i].label << "\n";
      }
      write_provenance(trace, reports[i]);
      trace << "evaluations,seconds,front_size\n";
      for (const auto& s : reports[i].snapshots) {
        trace << s.evaluations << "," << s.seconds << "," << s.front.size()
              << "\n";
      }
    }
    std::fprintf(stderr, "moela_cli: trace CSV written to %s\n",
                 cli.trace_path.c_str());
  }
  return cancelled > 0 ? 130 : 0;
}

/// --metrics: scrape every --connect endpoint's telemetry snapshot (the
/// metrics verb) and print one JSON line per daemon to stdout, so a quick
/// fleet health check is `moela_cli --connect a --connect b --metrics | jq`.
/// Unreachable daemons are reported on stderr and make the exit non-zero,
/// but do not stop the remaining endpoints from being scraped.
int show_fleet_metrics(const CliOptions& cli) {
  int exit_code = 0;
  for (const std::string& spec : cli.connect) {
    std::string host;
    int port = 0;
    if (!serve::parse_host_port(spec, host, port)) {
      std::fprintf(stderr, "moela_cli: bad --connect '%s' (want host:port)\n",
                   spec.c_str());
      return 2;
    }
    try {
      serve::Client client;
      client.connect(host, port);
      util::Json snapshot = client.metrics();
      snapshot.set("endpoint", host + ":" + std::to_string(port));
      std::printf("%s\n", snapshot.dump().c_str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "moela_cli: %s\n", e.what());
      exit_code = 1;
    }
  }
  return exit_code;
}

/// The single --connect path: same flags, same outputs, but the batch
/// executes in one moela_serve daemon (whose process-lifetime cache
/// answers repeats) and the reports travel back as line-delimited JSON.
int run_remote(const CliOptions& cli) {
  std::string host;
  int port = 0;
  if (!serve::parse_host_port(cli.connect.front(), host, port)) {
    std::fprintf(stderr, "moela_cli: bad --connect '%s' (want host:port)\n",
                 cli.connect.front().c_str());
    return 2;
  }
  try {
    serve::Client client;
    client.connect(host, port);
    if (cli.list) return list_remote(client);
    if (cli.problem.empty() || cli.algorithms.empty()) {
      if (cli.remote_shutdown) {
        client.shutdown_server();
        std::fprintf(stderr, "moela_cli: daemon at %s:%d is draining\n",
                     host.c_str(), port);
        return 0;
      }
      std::fprintf(stderr, "moela_cli: --problem and --algorithm are "
                           "required (or --shutdown / --list)\n");
      return 2;
    }
    warn_daemon_side_flags(cli);
    warn_unknown_knobs(cli);

    const std::vector<api::RunRequest> requests = build_requests(cli);
    std::fprintf(stderr,
                 "moela_cli: submitting %zu run(s) to %s:%d (evals<=%zu, "
                 "seconds<=%.1f)\n",
                 requests.size(), host.c_str(), port,
                 cli.run_options.max_evaluations,
                 cli.run_options.max_seconds);

    // Ctrl-C mid-sweep must not abandon remote work silently: the control
    // rides into the Client, whose read loop sends the cancel verb for
    // this batch — the daemon stops our runs, keeps serving everyone
    // else, and the final response tells us what finished vs. what was
    // cancelled.
    api::RunControl control;
    const ControlGuard guard(control);
    std::signal(SIGINT, handle_sigint);

    // Missing/mistyped fields from a version-skewed daemon must degrade
    // the display, never crash the batch — hence the defaulted readers
    // (util::*_field_or).
    const bool stream_progress = cli.progress;
    util::Timer wall;
    const std::vector<api::RunReport> reports = client.run(
        requests, stream_progress, [&](const util::Json& event) {
          const util::Json* hit = event.find("cache_hit");
          const std::string kind = util::string_field_or(event, "event");
          if (kind == "finished") {
            std::fprintf(
                stderr,
                "moela_cli: [%llu/%llu] %s done (%llu evals, %.2f s%s)\n",
                static_cast<unsigned long long>(
                    util::u64_field_or(event, "completed", 0)),
                static_cast<unsigned long long>(
                    util::u64_field_or(event, "total", 0)),
                util::string_field_or(event, "label", "?").c_str(),
                static_cast<unsigned long long>(
                    util::u64_field_or(event, "evaluations", 0)),
                util::double_field_or(event, "seconds", 0.0),
                hit != nullptr && hit->is_bool() && hit->as_bool()
                    ? ", cached"
                    : "");
          } else if (kind == "progress" && stream_progress) {
            std::fprintf(
                stderr,
                "moela_cli: [run %llu] %s at %llu/%llu evals (%.2f s)\n",
                static_cast<unsigned long long>(
                    util::u64_field_or(event, "index", 0) + 1),
                util::string_field_or(event, "algorithm", "?").c_str(),
                static_cast<unsigned long long>(
                    util::u64_field_or(event, "evaluations", 0)),
                static_cast<unsigned long long>(
                    util::u64_field_or(event, "max_evaluations", 0)),
                util::double_field_or(event, "seconds", 0.0));
          }
        },
        &control, cli.priority);
    const double wall_seconds = wall.elapsed_seconds();
    const int exit_code = write_outputs(cli, requests, reports, wall_seconds);
    if (cli.remote_shutdown) {
      client.shutdown_server();
      std::fprintf(stderr, "moela_cli: daemon at %s:%d is draining\n",
                   host.c_str(), port);
    }
    return exit_code;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "moela_cli: %s\n", e.what());
    return 1;
  }
}

/// The multi --connect path: the batch is fanned across a moela_serve
/// fleet by api::ShardedExecutor and the reports merged back into request
/// order — bit-identical to an inline or single-daemon run.
int run_sharded(const CliOptions& cli) {
  api::ShardedExecutorConfig config;
  for (const std::string& spec : cli.connect) {
    api::ShardEndpoint endpoint;
    if (!api::parse_shard_endpoint(spec, endpoint)) {
      std::fprintf(stderr, "moela_cli: bad --connect '%s' (want host:port)\n",
                   spec.c_str());
      return 2;
    }
    config.endpoints.push_back(std::move(endpoint));
  }
  config.policy = cli.shard_policy;
  config.stream_progress = cli.progress;
  config.priority = cli.priority;

  auto drain_all = [&config]() {
    for (const api::ShardEndpoint& endpoint : config.endpoints) {
      try {
        serve::Client client;
        client.connect(endpoint.host, endpoint.port);
        client.shutdown_server();
        std::fprintf(stderr, "moela_cli: daemon at %s is draining\n",
                     endpoint.to_string().c_str());
      } catch (const std::exception& e) {
        std::fprintf(stderr, "moela_cli: %s\n", e.what());
      }
    }
  };

  try {
    if (cli.list) {
      // The fleet shares one registry by construction; ask the first
      // daemon.
      serve::Client client;
      client.connect(config.endpoints.front().host,
                     config.endpoints.front().port);
      return list_remote(client);
    }
    if (cli.problem.empty() || cli.algorithms.empty()) {
      if (cli.remote_shutdown) {
        drain_all();
        return 0;
      }
      std::fprintf(stderr, "moela_cli: --problem and --algorithm are "
                           "required (or --shutdown / --list)\n");
      return 2;
    }
    warn_daemon_side_flags(cli);
    warn_unknown_knobs(cli);

    const std::vector<api::RunRequest> requests = build_requests(cli);
    std::fprintf(stderr,
                 "moela_cli: sharding %zu run(s) across %zu daemon(s) "
                 "(%s placement, evals<=%zu, seconds<=%.1f)\n",
                 requests.size(), config.endpoints.size(),
                 api::shard_policy_name(cli.shard_policy).c_str(),
                 cli.run_options.max_evaluations,
                 cli.run_options.max_seconds);

    api::ShardedExecutor sharded(config);
    api::RunControl control;
    const ControlGuard guard(control);
    std::signal(SIGINT, handle_sigint);
    install_progress_printer(control, requests, cli.progress);

    util::Timer wall;
    const std::vector<api::RunReport> reports =
        sharded.run_all(requests, &control);
    const double wall_seconds = wall.elapsed_seconds();

    for (const api::ShardStats& shard : sharded.shard_stats()) {
      std::string note;
      if (!shard.healthy) note += " (unreachable)";
      if (shard.failures > 0) {
        note += ", " + std::to_string(shard.failures) + " failure(s)";
      }
      if (shard.resumed > 0) {
        note += ", " + std::to_string(shard.resumed) + " resumed";
      }
      if (!shard.error.empty()) note += ": " + shard.error;
      std::fprintf(stderr, "moela_cli: shard %s: %zu run(s)%s\n",
                   shard.endpoint.c_str(), shard.completed, note.c_str());
    }

    const int exit_code = write_outputs(cli, requests, reports, wall_seconds);
    if (cli.remote_shutdown) drain_all();
    return exit_code;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "moela_cli: %s\n", e.what());
    return 1;
  }
}

}  // namespace

int main(int argc, char** argv) {
  const auto parsed = parse_args(argc, argv);
  if (!parsed) {
    print_usage(stderr);
    return 2;
  }
  const CliOptions& cli = *parsed;
  if (cli.help) {
    print_usage(stdout);
    return 0;
  }
  if (cli.remote_shutdown && cli.connect.empty()) {
    std::fprintf(stderr, "moela_cli: --shutdown needs --connect\n");
    return 2;
  }
  if (cli.show_metrics) {
    if (cli.connect.empty()) {
      std::fprintf(stderr, "moela_cli: --metrics needs --connect (the "
                           "registry lives in the daemon)\n");
      return 2;
    }
    return show_fleet_metrics(cli);
  }
  if (cli.shard_policy_set && cli.connect.empty()) {
    std::fprintf(stderr, "moela_cli: --shard-policy needs --connect\n");
    return 2;
  }
  if (cli.priority_set && cli.connect.empty()) {
    std::fprintf(stderr, "moela_cli: --priority needs --connect (an "
                         "in-process batch has no admission queue)\n");
    return 2;
  }
  if (!cli.connect.empty()) {
    // One endpoint stays on the plain remote path; several (or an explicit
    // --shard-policy) go through the sharding coordinator.
    return cli.connect.size() == 1 && !cli.shard_policy_set
               ? run_remote(cli)
               : run_sharded(cli);
  }
  if (cli.list) return list_registry();
  if (cli.problem.empty() || cli.algorithms.empty()) {
    std::fprintf(stderr, "moela_cli: --problem and --algorithm are "
                         "required\n\n");
    print_usage(stderr);
    return 2;
  }
  for (const auto& algorithm : cli.algorithms) {
    if (!api::registry().contains(algorithm)) {
      std::fprintf(stderr,
                   "moela_cli: unknown algorithm '%s' (see --list)\n",
                   algorithm.c_str());
      return 2;
    }
  }
  if (!cli.apps.empty() && cli.apps.size() > 1 && cli.problem != "noc") {
    std::fprintf(stderr,
                 "moela_cli: multiple --app values only apply to the noc "
                 "problem\n");
    return 2;
  }
  warn_unknown_knobs(cli);

  try {
    const std::vector<api::RunRequest> requests = build_requests(cli);

    api::ResultCache cache(
        cli.use_cache
            ? (cli.cache_dir.empty() ? api::ResultCache::default_disk_dir()
                                     : cli.cache_dir)
            : std::string());
    std::optional<api::RunLogger> run_log;
    if (!cli.run_log_path.empty()) {
      run_log.emplace(cli.run_log_path);
      // Fail fast: an explicitly requested log that cannot be written must
      // not silently degrade (or fall back to $MOELA_RUN_LOG).
      if (!run_log->ok()) return 2;
    }

    api::ExecutorConfig executor_config;
    executor_config.jobs = cli.jobs;
    executor_config.cache = cli.use_cache ? &cache : nullptr;
    if (run_log.has_value()) executor_config.run_log = &*run_log;
    api::Executor executor(executor_config);

    std::fprintf(stderr,
                 "moela_cli: %zu run(s) on %zu worker(s) (evals<=%zu, "
                 "seconds<=%.1f, cache %s)\n",
                 requests.size(), executor.jobs(),
                 cli.run_options.max_evaluations, cli.run_options.max_seconds,
                 cli.use_cache ? cache.disk_dir().c_str() : "off");

    api::RunControl control;
    const ControlGuard guard(control);
    std::signal(SIGINT, handle_sigint);
    install_progress_printer(control, requests, cli.progress);

    util::Timer wall;
    std::vector<api::RunReport> reports =
        executor.run_all(requests, &control);
    const double wall_seconds = wall.elapsed_seconds();

    return write_outputs(cli, requests, reports, wall_seconds);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "moela_cli: %s\n", e.what());
    return 1;
  }
}
