#include "moo/weights.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace moela::moo {

namespace {

void lattice_recurse(std::size_t dims_left, std::size_t budget,
                     std::size_t divisions, WeightVector& current,
                     std::vector<WeightVector>& out) {
  if (dims_left == 1) {
    current.push_back(static_cast<double>(budget) /
                      static_cast<double>(divisions));
    out.push_back(current);
    current.pop_back();
    return;
  }
  for (std::size_t i = 0; i <= budget; ++i) {
    current.push_back(static_cast<double>(i) /
                      static_cast<double>(divisions));
    lattice_recurse(dims_left - 1, budget - i, divisions, current, out);
    current.pop_back();
  }
}

double sq_dist(const WeightVector& a, const WeightVector& b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

}  // namespace

std::vector<WeightVector> simplex_lattice(std::size_t num_objectives,
                                          std::size_t divisions) {
  if (num_objectives == 0) {
    throw std::invalid_argument("simplex_lattice: zero objectives");
  }
  std::vector<WeightVector> out;
  WeightVector current;
  current.reserve(num_objectives);
  if (divisions == 0) {
    // Degenerate lattice: the single centroid-like vector (all mass on a
    // well-defined point is impossible with H=0; use uniform weights).
    out.emplace_back(num_objectives,
                     1.0 / static_cast<double>(num_objectives));
    return out;
  }
  lattice_recurse(num_objectives, divisions, divisions, current, out);
  return out;
}

std::size_t simplex_lattice_size(std::size_t num_objectives,
                                 std::size_t divisions) {
  // C(H + M - 1, M - 1)
  const std::size_t n = divisions + num_objectives - 1;
  const std::size_t k = num_objectives - 1;
  std::size_t result = 1;
  for (std::size_t i = 1; i <= k; ++i) {
    result = result * (n - k + i) / i;
  }
  return result;
}

std::vector<WeightVector> uniform_weights(std::size_t num_objectives,
                                          std::size_t n) {
  if (n == 0) return {};
  if (num_objectives == 1) {
    return std::vector<WeightVector>(n, WeightVector{1.0});
  }
  std::size_t divisions = 1;
  while (simplex_lattice_size(num_objectives, divisions) < n) ++divisions;
  auto lattice = simplex_lattice(num_objectives, divisions);
  if (lattice.size() == n) return lattice;

  // Greedy farthest-point selection seeded with the simplex corners so that
  // every single-objective direction is always represented.
  std::vector<bool> chosen(lattice.size(), false);
  std::vector<WeightVector> out;
  out.reserve(n);
  for (std::size_t i = 0; i < lattice.size() && out.size() < n; ++i) {
    if (std::count(lattice[i].begin(), lattice[i].end(), 1.0) == 1) {
      chosen[i] = true;
      out.push_back(lattice[i]);
    }
  }
  std::vector<double> min_dist(lattice.size(),
                               std::numeric_limits<double>::infinity());
  for (std::size_t i = 0; i < lattice.size(); ++i) {
    for (const auto& c : out) {
      min_dist[i] = std::min(min_dist[i], sq_dist(lattice[i], c));
    }
  }
  while (out.size() < n) {
    std::size_t best = lattice.size();
    double best_dist = -1.0;
    for (std::size_t i = 0; i < lattice.size(); ++i) {
      if (chosen[i]) continue;
      if (min_dist[i] > best_dist) {
        best_dist = min_dist[i];
        best = i;
      }
    }
    if (best == lattice.size()) break;  // defensive: lattice exhausted
    chosen[best] = true;
    out.push_back(lattice[best]);
    for (std::size_t i = 0; i < lattice.size(); ++i) {
      if (!chosen[i]) {
        min_dist[i] = std::min(min_dist[i], sq_dist(lattice[i], lattice[best]));
      }
    }
  }
  return out;
}

std::vector<std::vector<std::size_t>> weight_neighborhoods(
    const std::vector<WeightVector>& weights, std::size_t t) {
  const std::size_t n = weights.size();
  t = std::min(t, n);
  std::vector<std::vector<std::size_t>> hoods(n);
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return sq_dist(weights[i], weights[a]) <
                              sq_dist(weights[i], weights[b]);
                     });
    hoods[i].assign(order.begin(),
                    order.begin() + static_cast<std::ptrdiff_t>(t));
  }
  return hoods;
}

}  // namespace moela::moo
