#include "api/optimizer.hpp"

#include <cstdlib>

namespace moela::api {

bool KnobBag::parse_assignment(const std::string& assignment) {
  const auto eq = assignment.find('=');
  if (eq == std::string::npos || eq == 0) return false;
  const std::string name = assignment.substr(0, eq);
  const std::string value = assignment.substr(eq + 1);
  if (value.empty()) return false;
  char* end = nullptr;
  const double parsed = std::strtod(value.c_str(), &end);
  if (end == nullptr || *end != '\0') return false;
  set(name, parsed);
  return true;
}

RunReport Optimizer::run(const RunOptions& options) {
  core::EvalContext<AnyProblem> ctx(problem_, options.seed,
                                    options.max_evaluations,
                                    options.snapshot_interval,
                                    options.max_seconds);
  RunReport report;
  report.algorithm = name();
  run_body(ctx, options, report);
  ctx.take_snapshot();  // final state
  report.snapshots = ctx.snapshots();
  report.final_front = ctx.archive().objective_set();
  report.evaluations = ctx.evaluations();
  report.seconds = ctx.elapsed_seconds();
  return report;
}

}  // namespace moela::api
