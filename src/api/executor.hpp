// Batched execution layer, part 3: the thread-pooled Executor.
//
// Schedules a vector of RunRequests onto a fixed pool of worker threads and
// hands back one std::future<RunReport> per request (index-aligned), so the
// paper's (application x objectives x algorithm x seed) grid runs as one
// batch instead of a serial loop:
//
//   api::Executor executor({.jobs = 4, .cache = &cache});
//   api::RunControl control;            // optional: progress + Ctrl-C stop
//   auto reports = executor.run_all(requests, &control);
//
// Guarantees:
//   * Determinism — each run owns its EvalContext and RNG (seeded from its
//     request), so reports are bit-identical to serial execution for the
//     same seeds, regardless of jobs or completion order.
//   * Observability — progress events flow through the shared RunControl
//     at the snapshot cadence, plus one `finished` event per run.
//   * Cancellation — RunControl::request_stop() stops queued requests
//     before they start and winds down in-flight runs at their next budget
//     check; every future still yields a well-formed report.
//   * Caching — with a ResultCache attached, a request whose cache_key()
//     hits is served without running (provenance.cache_hit = true).
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "api/optimizer.hpp"
#include "api/request.hpp"
#include "api/result_cache.hpp"
#include "util/metrics.hpp"
#include "util/thread_annotations.hpp"

namespace moela::api {

struct ExecutorConfig {
  /// Worker threads; 0 = std::thread::hardware_concurrency().
  std::size_t jobs = 0;
  /// Optional result cache consulted before and filled after each run
  /// (not owned; must outlive the Executor).
  ResultCache* cache = nullptr;
  /// Optional per-run JSONL logger (not owned; must outlive the Executor).
  /// Left null, the Executor falls back to RunLogger::from_env(), so
  /// MOELA_RUN_LOG=<path> enables structured logs in any Executor-based
  /// tool without code changes.
  class RunLogger* run_log = nullptr;
  /// Optional telemetry registry (not owned; must outlive the Executor).
  /// Each executed (not cached) run observes its wall time into a
  /// per-algorithm moela_run_seconds histogram, and checkpointing counts
  /// into moela_snapshots_written_total / moela_runs_resumed_total.
  /// Telemetry only: nothing here feeds back into reports or cache keys.
  util::MetricsRegistry* metrics = nullptr;
  /// Directory for persisted RunSnapshots (next to the run log, in
  /// deployments that keep both). Empty disables persistence: checkpointed
  /// runs still stream snapshots on progress events, they just leave no
  /// disk state. Files follow the ResultCache discipline — schema-salted
  /// fingerprint hashed to the file stem, atomic write-temp-then-rename —
  /// and a request that asks to checkpoint resumes from its snapshot file
  /// automatically when one exists. A completed (non-cancelled) run deletes
  /// its file: the snapshot's job is done.
  std::string snapshot_dir;
  /// When false, no worker pool is spawned and submit()/run_all() refuse:
  /// the owner drives execute_one() from its own worker threads instead
  /// (serve::sched::Scheduler does this, so queue policy lives in one
  /// place and threads are not doubled). jobs() still reports the
  /// configured parallelism either way.
  bool pool = true;
};

class Executor {
 public:
  explicit Executor(ExecutorConfig config = {});
  /// Joins the workers after draining the queue (a pending stop request
  /// makes the drain fast: remaining runs return cancelled reports).
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Configured parallelism (the resolved `jobs`), whether or not a pool
  /// was spawned.
  std::size_t jobs() const { return jobs_; }

  /// Shared per-batch bookkeeping for the `completed / total` progress
  /// fields. Public so an external scheduler dispatching a batch's runs
  /// one at a time (execute_one) can keep one shared tally per batch.
  struct BatchState {
    std::atomic<std::size_t> completed{0};
    std::size_t total = 0;
  };

  /// Schedules the batch; returns futures index-aligned with `requests`.
  /// A run that throws (unknown registry key, bad problem options, ...)
  /// surfaces the exception from that future's get(). `control` (optional)
  /// is shared by every run in the batch. Throws std::logic_error when the
  /// pool is disabled (ExecutorConfig::pool = false).
  std::vector<std::future<RunReport>> submit(std::vector<RunRequest> requests,
                                             RunControl* control = nullptr);

  /// submit() + get(): blocks until the whole batch is done and returns the
  /// reports index-aligned with `requests`.
  std::vector<RunReport> run_all(std::vector<RunRequest> requests,
                                 RunControl* control = nullptr);

  /// Executes one request synchronously ON THE CALLING THREAD — the entry
  /// point for external schedulers (serve::sched::Scheduler) that own
  /// their worker pools but must keep cache, run-log, provenance, and
  /// progress semantics identical to pool execution. `batch` is the
  /// logical batch's shared tally (never null; total set by the caller).
  /// Exceptions propagate to the caller.
  RunReport execute_one(const RunRequest& request, RunControl* control,
                        std::size_t index,
                        const std::shared_ptr<BatchState>& batch);

 private:
  RunReport execute(const RunRequest& request, RunControl* control,
                    std::size_t index, const std::shared_ptr<BatchState>& batch);
  void worker_loop();

  ExecutorConfig config_;
  /// Pre-resolved checkpoint counters (null when metrics is null) so the
  /// hot path never does a registry name lookup.
  util::Counter* snapshots_written_ = nullptr;
  util::Counter* runs_resumed_ = nullptr;
  std::size_t jobs_ = 0;
  std::vector<std::thread> workers_;
  util::Mutex mutex_;
  util::CondVar wake_;
  std::deque<std::packaged_task<RunReport()>> queue_ MOELA_GUARDED_BY(mutex_);
  bool shutting_down_ MOELA_GUARDED_BY(mutex_) = false;
};

}  // namespace moela::api
