// Fixture: seeded violation — %g float conversion in a wire-file format
// string. Integer conversions ("%d", "%04x") are fine and appear below.
#include <cstdio>
void render(char* out, unsigned n, double v) {
  std::snprintf(out, 64, "%04x", n);
  std::snprintf(out, 64, "%.17g", v);
}
