// Sharded batch execution: the coordinator that fans one RunRequest batch
// across several moela_serve daemons and merges the answers back into
// request order. A drop-in sibling of api::Executor for workloads too big
// for one machine:
//
//   api::ShardedExecutorConfig config;
//   config.endpoints = {{"10.0.0.1", 7313}, {"10.0.0.2", 7313}};
//   api::ShardedExecutor sharded(config);
//   std::vector<api::RunReport> reports = sharded.run_all(requests);
//
// Guarantees (mirroring the Executor's):
//   * Determinism — reports[i] always answers requests[i], and because a
//     daemon-served report is bit-identical to inline execution for fixed
//     seeds (the serde layer carries hexfloat doubles end to end), a
//     sharded sweep is bit-identical to an inline run regardless of the
//     shard count, policy, or which shard served which request.
//   * Fault tolerance — a shard that cannot be reached or fails mid-batch
//     is retired for the rest of the run and its outstanding requests are
//     requeued onto the surviving shards; each request is attempted at
//     most `max_attempts` times, so a poison request terminates instead of
//     ping-ponging. With `checkpoint` (the default), requests stream
//     RunSnapshots while they run, and a request requeued from a dead
//     shard ships its latest snapshot to the survivor — the continuation
//     replays to the same bit-identical report instead of starting over.
//     With `local_fallback`, requests no shard could serve run on an
//     in-process Executor instead of failing the batch.
//   * Observability — per-run `finished` events (and, with
//     `stream_progress`, the daemons' snapshot-cadence progress events)
//     are forwarded to the RunControl passed to run_all, index-tagged in
//     the merged batch order; shard_stats() reports placement afterwards.
//   * Cancellation — a RunControl stop crosses the wire: every shard with
//     an in-flight chunk sends the protocol's cancel verb, the daemons
//     stop those runs at their next budget check, and the merged batch
//     marks exactly the unfinished runs cancelled (runs completed before
//     the stop keep their bit-identical reports; unstarted requests
//     return cancelled reports, as the Executor's queued runs do). A
//     cancelled chunk answers normally, so cancellation never charges
//     attempts or retires a shard.
//
// Each shard is driven by one thread owning one serve::Client (the Client
// is single-connection, not thread-safe). Placement policies:
//   * kRoundRobin   — request i goes to healthy shard (i mod k), decided
//                     up front; shards only pick up requeued work from
//                     failed peers.
//   * kWorkStealing — shards pull `steal_chunk` requests from one shared
//                     queue as their previous replies arrive, so a fast
//                     (or cache-warm) daemon naturally serves more of the
//                     batch.
//   * kWeighted     — static like round-robin, but each request goes to
//                     the shard with the lowest projected utilization
//                     (health-reported inflight + queued load, plus what
//                     this placement already assigned, over the daemon's
//                     worker count) — so a big or idle daemon owns more of
//                     the batch and a busy one is not pile-driven. Needs
//                     the health probe; without it every shard looks
//                     identical and placement degrades to round-robin.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "api/optimizer.hpp"
#include "api/request.hpp"
#include "api/result_cache.hpp"
// moela-lint: allow(layer-order) coordinator-as-client exception, see docs/architecture.md
#include "serve/sched/policy.hpp"
#include "util/metrics.hpp"

namespace moela::api {

enum class ShardPolicy { kRoundRobin, kWorkStealing, kWeighted };

/// "round-robin" / "work-steal" (also accepts "work-stealing") /
/// "weighted".
bool parse_shard_policy(const std::string& text, ShardPolicy& out);
std::string shard_policy_name(ShardPolicy policy);

/// One moela_serve daemon address.
struct ShardEndpoint {
  std::string host = "127.0.0.1";
  /// TCP port; 0 means the moela_serve default (serve::kDefaultPort).
  int port = 0;

  std::string to_string() const;
};

/// Parses "host:port" / ":port" / "host" / "port" (the same rules as
/// moela_cli --connect). Returns false on a malformed port.
bool parse_shard_endpoint(const std::string& spec, ShardEndpoint& out);

struct ShardedExecutorConfig {
  /// The daemon fleet. At least one endpoint is required.
  std::vector<ShardEndpoint> endpoints;
  ShardPolicy policy = ShardPolicy::kWorkStealing;
  /// Per-request cap on executions attempted across shards before the
  /// request is declared failed (>= 1). Only a request that fails ALONE is
  /// charged: a failed multi-request chunk is requeued with its members
  /// forced to retry one at a time (the failure cannot be attributed to
  /// any one member), and transport failures that requeue never-started
  /// requests do not count either.
  std::size_t max_attempts = 3;
  /// Requests submitted per wire batch (both policies pull this many at a
  /// time). 0 (the default) sizes each shard's chunk to the daemon's
  /// health-probed worker count, so one chunk saturates the daemon's
  /// Executor pool; an explicit value >= 1 fixes it (a failed chunk is
  /// retried whole, so smaller = finer retry granularity). Auto sizing
  /// needs the probe: with probe_health off (or a daemon predating the
  /// health verb) it degrades to 1 — set an explicit value there.
  std::size_t steal_chunk = 0;
  /// Probe each endpoint's `health` verb before placement and leave
  /// endpoints that do not answer (or are draining) out of the initial
  /// partition. Disable to let connect failures surface through the
  /// requeue machinery instead.
  bool probe_health = true;
  /// Checkpoint every dispatched request (RunRequest::checkpoint): the
  /// daemons stream RunSnapshots at the snapshot cadence, the coordinator
  /// keeps the latest per request, and a request requeued after a shard
  /// death resumes from it on the next shard instead of re-running from
  /// scratch. Reports stay bit-identical either way (resume is replay);
  /// this only changes how much work a failure wastes. Off: failures
  /// re-run whole requests, as before PR 9.
  bool checkpoint = true;
  /// Run requests that no healthy shard could serve on an in-process
  /// Executor instead of failing the batch.
  bool local_fallback = false;
  /// Worker threads of the local-fallback Executor (0 = all cores).
  std::size_t local_jobs = 0;
  /// Cache for local-fallback runs only — remote runs hit the daemons'
  /// own caches (not owned; may be null).
  ResultCache* cache = nullptr;
  /// Ask the daemons for snapshot-cadence progress events and forward
  /// them (finished events are always forwarded).
  bool stream_progress = false;
  /// The batch's scheduling class, forwarded to every shard on every wire
  /// batch (including requeued chunks), so a fleet-wide sweep competes
  /// under one class everywhere. Scheduling only: reports stay
  /// bit-identical to inline execution whatever the class.
  serve::sched::Priority priority = serve::sched::Priority::kNormal;
  /// Optional telemetry registry (not owned; must outlive run_all).
  /// Requests dispatched to and requeued from each endpoint count into
  /// per-endpoint moela_shard_placed_total / moela_shard_requeued_total.
  util::MetricsRegistry* metrics = nullptr;
};

/// Per-shard outcome of the last run_all(), index-aligned with
/// config.endpoints.
struct ShardStats {
  std::string endpoint;
  /// Answered the health probe (with probe_health off: assumed healthy
  /// until its connect fails).
  bool healthy = false;
  /// Reports this shard contributed to the merged batch.
  std::size_t completed = 0;
  /// Chunks that failed on this shard (transport or server error).
  std::size_t failures = 0;
  /// Completed requests that resumed from a mid-run snapshot (i.e. work
  /// this shard continued for a failed peer rather than restarted).
  std::size_t resumed = 0;
  /// The shard's last error, empty when it never failed.
  std::string error;
};

class ShardedExecutor {
 public:
  /// Throws std::invalid_argument on an empty endpoint list or zero
  /// max_attempts.
  explicit ShardedExecutor(ShardedExecutorConfig config);

  ShardedExecutor(const ShardedExecutor&) = delete;
  ShardedExecutor& operator=(const ShardedExecutor&) = delete;

  /// Fans the batch across the fleet and blocks until every request has a
  /// report (or has exhausted its attempts). Reports are index-aligned
  /// with `requests`. Throws std::runtime_error when requests remain
  /// unserved — with local_fallback off, or when a fallback run itself
  /// fails (a request invalid locally too); the message names the failing
  /// endpoints and requests. Not thread-safe: one run_all at a time.
  std::vector<RunReport> run_all(const std::vector<RunRequest>& requests,
                                 RunControl* control = nullptr);

  /// Placement/fault outcome of the last run_all().
  const std::vector<ShardStats>& shard_stats() const { return stats_; }

 private:
  ShardedExecutorConfig config_;
  std::vector<ShardStats> stats_;
};

}  // namespace moela::api
