#include "noc/problem.hpp"

namespace moela::noc {

std::vector<double> NocProblem::features(const Design& d) const {
  const auto& spec = *spec_;
  const std::size_t tiles = spec.num_tiles();
  std::vector<double> f;
  f.reserve(num_features());

  // One-hot PE type per tile.
  for (TileId t = 0; t < tiles; ++t) {
    const PeType type = spec.core_type(d.placement[t]);
    f.push_back(type == PeType::kCpu ? 1.0 : 0.0);
    f.push_back(type == PeType::kGpu ? 1.0 : 0.0);
    f.push_back(type == PeType::kLlc ? 1.0 : 0.0);
  }

  // Router degree per tile.
  const Adjacency adj(spec, d.links);
  for (TileId t = 0; t < tiles; ++t) {
    f.push_back(static_cast<double>(adj.degree(t)));
  }

  // Planar links per layer; vertical links per layer boundary.
  std::vector<double> planar_per_layer(static_cast<std::size_t>(spec.nz()),
                                       0.0);
  std::vector<double> vertical_per_boundary(
      static_cast<std::size_t>(spec.nz()) - 1, 0.0);
  for (const Link& l : d.links) {
    const int za = spec.z_of(l.a);
    const int zb = spec.z_of(l.b);
    if (za == zb) {
      planar_per_layer[static_cast<std::size_t>(za)] += 1.0;
    } else {
      vertical_per_boundary[static_cast<std::size_t>(std::min(za, zb))] += 1.0;
    }
  }
  f.insert(f.end(), planar_per_layer.begin(), planar_per_layer.end());
  f.insert(f.end(), vertical_per_boundary.begin(),
           vertical_per_boundary.end());
  return f;
}

}  // namespace moela::noc
