// Client side of the moela_serve protocol: connects to a daemon, submits
// RunRequest batches, and yields RunReports that are bit-identical to the
// ones a local Executor would have produced (the wire carries hexfloat
// doubles end to end). Used by `moela_cli --connect` and the serve tests;
// the protocol itself is documented in serve/protocol.hpp.
//
// One Client is one connection and is NOT thread-safe: calls are issued
// and awaited sequentially (the daemon multiplexes many clients, not one
// client many threads). Cancellation rides the same thread: run() with an
// api::RunControl polls between response lines and interleaves the cancel
// verb itself, so no second thread ever touches the socket.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "api/optimizer.hpp"
#include "api/request.hpp"
#include "serve/protocol.hpp"
#include "serve/sched/policy.hpp"
#include "util/json.hpp"

namespace moela::serve {

/// A server-reported failure ({"ok":false} or a per-report error entry).
class RemoteError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// The daemon shed the batch at admission (its queue is full). Carries the
/// structured facts from the "overloaded" error so a caller can back off
/// instead of string-matching: the queue depth the daemon saw and its
/// retry-after hint.
class OverloadedError : public RemoteError {
 public:
  OverloadedError(const std::string& what, std::size_t queue_depth,
                  std::uint64_t retry_after_ms)
      : RemoteError(what),
        queue_depth_(queue_depth),
        retry_after_ms_(retry_after_ms) {}

  std::size_t queue_depth() const { return queue_depth_; }
  std::uint64_t retry_after_ms() const { return retry_after_ms_; }

 private:
  std::size_t queue_depth_ = 0;
  std::uint64_t retry_after_ms_ = 0;
};

class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects to host:port. Throws std::runtime_error when the daemon is
  /// unreachable.
  void connect(const std::string& host, int port);
  bool connected() const { return fd_ >= 0; }
  void disconnect();

  /// Called for each streamed event line ("progress" / "finished") while
  /// a run() is in flight.
  using EventHandler = std::function<void(const util::Json& event)>;

  /// Submits the batch and blocks until the final response. Reports come
  /// back index-aligned with `requests`. `stream_progress` additionally
  /// requests snapshot-cadence progress events. `control` (optional) makes
  /// the wait cancellable: once control->stop_requested() flips, a
  /// "cancel" verb is sent for this batch — the daemon stops its in-flight
  /// runs at their next budget check and the final response returns the
  /// unfinished entries as cancelled reports (identical in shape to an
  /// inline Executor stop). Progress events arriving after the cancel was
  /// sent are dropped (the run is winding down; a climbing counter would
  /// be a lie). `priority` is the batch's scheduling class (the wire's
  /// optional "priority" field; daemons predating it ignore the field).
  /// Throws OverloadedError when the daemon shed the batch at admission,
  /// RemoteError when it rejected the batch otherwise or any run failed,
  /// and std::runtime_error when the connection drops.
  std::vector<api::RunReport> run(
      const std::vector<api::RunRequest>& requests,
      bool stream_progress = false, EventHandler on_event = nullptr,
      api::RunControl* control = nullptr,
      sched::Priority priority = sched::Priority::kNormal);

  /// Sends a standalone cancel for an earlier run id on this connection
  /// (see last_run_id()). Returns true when an in-flight batch was found
  /// and stopped, false for the benign no-op (already finished, unknown
  /// id). Idempotent.
  bool cancel(std::uint64_t run_id);

  /// The request id assigned to the most recent run() call — the cancel
  /// verb's target handle. 0 before the first run().
  std::uint64_t last_run_id() const { return last_run_id_; }

  /// "host:port" of the daemon this client (last) connected to; empty
  /// before the first connect(). Error messages carry it so multi-shard
  /// failures stay attributable.
  const std::string& endpoint() const { return endpoint_; }

  /// True when the daemon answers a ping.
  bool ping();
  /// Load/health snapshot (health verb): jobs, inflight, max_inflight,
  /// runs_handled, accepting, cache counters. Throws RemoteError when the
  /// daemon predates the verb.
  util::Json health();
  /// {"name", "knobs": [...]} per registered algorithm.
  util::Json list_algorithms();
  std::vector<std::string> list_problems();
  /// The daemon's cache/runs counters (cache_stats verb).
  util::Json cache_stats();
  /// Full telemetry snapshot (metrics verb): the daemon's MetricsRegistry
  /// as JSON plus uptime_seconds/version. Throws RemoteError when the
  /// daemon predates the verb.
  util::Json metrics();
  /// Asks the daemon to drain and exit.
  void shutdown_server();

 private:
  /// Sends one verb object (assigning the id unless the caller already
  /// did) and reads lines until the matching final response; event lines
  /// go to `on_event`. With `control`, reads poll at a short cadence so a
  /// requested stop can interleave a cancel send mid-conversation.
  util::Json transact(util::Json message, const EventHandler& on_event,
                      api::RunControl* control = nullptr);
  /// "moela_serve client[host:port]" — the prefix of every error message.
  std::string where() const;

  int fd_ = -1;
  std::uint64_t next_id_ = 1;
  std::uint64_t last_run_id_ = 0;
  std::string endpoint_;
  std::unique_ptr<LineReader> reader_;
};

}  // namespace moela::serve
