// Fixture: seeded violation — #pragma once is meaningless in a .cpp file.
#pragma once
int forty_two() { return 42; }
