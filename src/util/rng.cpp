#include "util/rng.hpp"

#include <algorithm>
#include <numeric>

namespace moela::util {

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  if (k > n) k = n;
  if (k == 0) return {};
  // For small k relative to n, Floyd's algorithm avoids materializing [0, n).
  if (k * 4 <= n) {
    std::vector<std::size_t> out;
    out.reserve(k);
    for (std::size_t j = n - k; j < n; ++j) {
      const std::size_t t = below(j + 1);
      if (std::find(out.begin(), out.end(), t) == out.end()) {
        out.push_back(t);
      } else {
        out.push_back(j);
      }
    }
    shuffle(out);
    return out;
  }
  std::vector<std::size_t> all(n);
  std::iota(all.begin(), all.end(), std::size_t{0});
  shuffle(all);
  all.resize(k);
  return all;
}

}  // namespace moela::util
