// Golden-file tests for the RunSnapshot codec (api/snapshot.hpp): for a
// fixed tiny request, every registered algorithm's serialized snapshot must
// be BYTE-stable — across rebuilds, optimization levels, locales, and
// refactors. The checked-in goldens under tests/golden/snapshots/ are the
// contract: a diff here means on-disk snapshots (and the wire's "snapshot"
// event field) changed shape, which silently strands every fleet daemon's
// persisted checkpoints. If the change is intentional, bump
// api::kSnapshotSchemaVersion (so stale files read as fingerprint
// mismatches, not garbage replays) and regenerate with
//   MOELA_UPDATE_GOLDENS=1 ./tests/test_snapshot_golden
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "api/executor.hpp"
#include "api/registry.hpp"
#include "api/request.hpp"
#include "api/snapshot.hpp"

namespace moela::api {
namespace {

/// The fixed request behind every golden: tiny enough that each journal is
/// a handful of rows, rich enough (multi-generation, local search on) that
/// the journal covers real algorithm behavior, not just the initial
/// population.
RunRequest golden_request(const std::string& algorithm) {
  RunRequest request;
  request.problem = "zdt1";
  request.problem_options.num_variables = 10;
  request.algorithm = algorithm;
  request.checkpoint = true;
  request.options.max_evaluations = 16;
  request.options.snapshot_interval = 8;
  request.options.seed = 7;
  request.options.population_size = 8;
  request.options.n_local = 2;
  // Keep the ML-assisted variants cheap and fully pinned.
  request.options.knobs.set("moela.forest.trees", 4)
      .set("moela.forest.max_depth", 5)
      .set("moela.ls.max_evals", 6)
      .set("moos.ls.max_evals", 6)
      .set("stage.forest.trees", 4)
      .set("stage.forest.max_depth", 5)
      .set("stage.ls.max_steps", 3);
  return request;
}

std::filesystem::path golden_dir() {
  return std::filesystem::path(__FILE__).parent_path() / "golden" /
         "snapshots";
}

/// Runs the request on a single-threaded Executor and returns the LAST
/// snapshot streamed on the progress cadence — the same artifact a daemon
/// persists to snapshot_dir and ships in the "snapshot" event field.
std::shared_ptr<const RunSnapshot> last_streamed_snapshot(
    const RunRequest& request) {
  Executor executor({.jobs = 1});
  std::shared_ptr<const RunSnapshot> last;
  RunControl control;
  control.on_progress([&](const RunProgress& progress) {
    if (progress.snapshot != nullptr) last = progress.snapshot;
  });
  executor.run_all({request}, &control);
  return last;
}

TEST(SnapshotGolden, EveryAlgorithmsSnapshotMatchesItsCheckedInBytes) {
  const bool update = std::getenv("MOELA_UPDATE_GOLDENS") != nullptr;
  const std::vector<std::string> names = registry().names();
  ASSERT_GE(names.size(), 8u);
  if (update) std::filesystem::create_directories(golden_dir());

  for (const std::string& name : names) {
    SCOPED_TRACE(name);
    const RunRequest request = golden_request(name);
    const std::shared_ptr<const RunSnapshot> snapshot =
        last_streamed_snapshot(request);
    ASSERT_NE(snapshot, nullptr) << name << " streamed no snapshot";
    EXPECT_EQ(snapshot->fingerprint, snapshot_fingerprint(request));
    EXPECT_EQ(snapshot->evaluations, snapshot->journal.size());
    EXPECT_GT(snapshot->evaluations, 0u);

    const std::string text = snapshot_to_text(*snapshot);
    const std::filesystem::path file = golden_dir() / (name + ".snap.json");
    if (update) {
      std::ofstream out(file, std::ios::binary);
      out << text;
      continue;
    }
    ASSERT_TRUE(std::filesystem::exists(file))
        << file << " missing - regenerate with MOELA_UPDATE_GOLDENS=1";
    std::ifstream in(file, std::ios::binary);
    std::ostringstream golden;
    golden << in.rdbuf();
    EXPECT_EQ(text, golden.str())
        << name << ": snapshot bytes drifted from the checked-in golden; "
        << "if intentional, bump kSnapshotSchemaVersion and regenerate";

    // And the golden itself must replay: decode it and resume the run from
    // it — the report must be bit-identical to the uninterrupted one.
    const RunSnapshot decoded = snapshot_from_text(golden.str());
    EXPECT_EQ(decoded.fingerprint, snapshot->fingerprint);
    EXPECT_EQ(decoded.evaluations, snapshot->evaluations);
    EXPECT_EQ(decoded.journal, snapshot->journal);
  }
}

TEST(SnapshotGolden, ResumingFromTheGoldenIsBitIdenticalForEveryAlgorithm) {
  Executor executor({.jobs = 1});
  for (const std::string& name : registry().names()) {
    SCOPED_TRACE(name);
    RunRequest plain = golden_request(name);
    plain.checkpoint = false;
    const RunReport reference = executor.run_all({plain}).front();

    // Resume from a mid-run snapshot (the first cadence point, so a real
    // live tail remains after the replayed prefix).
    RunRequest request = golden_request(name);
    std::shared_ptr<const RunSnapshot> first;
    RunControl control;
    control.on_progress([&](const RunProgress& progress) {
      if (first == nullptr && progress.snapshot != nullptr) {
        first = progress.snapshot;
      }
    });
    executor.run_all({request}, &control);
    ASSERT_NE(first, nullptr);

    request.resume = first;
    const RunReport resumed = executor.run_all({request}).front();
    EXPECT_EQ(resumed.algorithm, reference.algorithm);
    EXPECT_EQ(resumed.final_front, reference.final_front);
    EXPECT_EQ(resumed.final_objectives, reference.final_objectives);
    EXPECT_EQ(resumed.evaluations, reference.evaluations);
    ASSERT_EQ(resumed.snapshots.size(), reference.snapshots.size());
    for (std::size_t i = 0; i < resumed.snapshots.size(); ++i) {
      EXPECT_EQ(resumed.snapshots[i].evaluations,
                reference.snapshots[i].evaluations);
      EXPECT_EQ(resumed.snapshots[i].front, reference.snapshots[i].front);
    }
    EXPECT_FALSE(resumed.provenance.cancelled);
  }
}

}  // namespace
}  // namespace moela::api
