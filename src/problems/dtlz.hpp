// DTLZ test problems (Deb, Thiele, Laumanns, Zitzler 2002): scalable-M
// analytic benchmarks with known Pareto fronts. Used to validate the MOO
// algorithms (including at the paper's M = 3, 4, 5) independently of the
// NoC substrate.
#pragma once

#include <cstddef>
#include <vector>

#include "moo/objective.hpp"
#include "problems/continuous.hpp"
#include "util/rng.hpp"

namespace moela::problems {

/// DTLZ1: linear Pareto front sum(f_i) = 0.5; multimodal g with many local
/// fronts.
class Dtlz1 : public ContinuousProblemBase {
 public:
  /// Default k = 5 distance variables (n = M + k - 1).
  explicit Dtlz1(std::size_t num_objectives, std::size_t k = 5)
      : ContinuousProblemBase(num_objectives + k - 1),
        m_(num_objectives),
        k_(k) {}

  std::size_t num_objectives() const { return m_; }
  moo::ObjectiveVector evaluate(const Design& x) const;

  /// Samples `n` points uniformly from the true Pareto front.
  std::vector<moo::ObjectiveVector> pareto_front_samples(std::size_t n,
                                                         util::Rng& rng) const;

 private:
  std::size_t m_;
  std::size_t k_;
};

/// DTLZ2: spherical Pareto front sum(f_i^2) = 1; unimodal g.
class Dtlz2 : public ContinuousProblemBase {
 public:
  explicit Dtlz2(std::size_t num_objectives, std::size_t k = 10)
      : ContinuousProblemBase(num_objectives + k - 1),
        m_(num_objectives),
        k_(k) {}

  std::size_t num_objectives() const { return m_; }
  moo::ObjectiveVector evaluate(const Design& x) const;

  std::vector<moo::ObjectiveVector> pareto_front_samples(std::size_t n,
                                                         util::Rng& rng) const;

 private:
  std::size_t m_;
  std::size_t k_;
};

/// DTLZ7: disconnected Pareto front (2^(M-1) regions); stresses diversity
/// preservation — the property MOELA's EA stage is responsible for.
class Dtlz7 : public ContinuousProblemBase {
 public:
  explicit Dtlz7(std::size_t num_objectives, std::size_t k = 20)
      : ContinuousProblemBase(num_objectives + k - 1),
        m_(num_objectives),
        k_(k) {}

  std::size_t num_objectives() const { return m_; }
  moo::ObjectiveVector evaluate(const Design& x) const;

 private:
  std::size_t m_;
  std::size_t k_;
};

}  // namespace moela::problems
