// Shared machinery for box-bounded continuous test problems ([0,1]^n genes):
// SBX crossover, polynomial mutation, and single-coordinate neighbor moves.
//
// These standard real-coded operators (Deb & Agrawal 1995) give the analytic
// DTLZ/ZDT problems the same operator structure the NoC problem has, so the
// algorithm templates are exercised identically in tests and benchmarks.
#pragma once

#include <cstddef>
#include <vector>

#include "moo/objective.hpp"
#include "util/rng.hpp"

namespace moela::problems {

using RealVector = std::vector<double>;

/// Simulated binary crossover (SBX); returns one child. `eta` is the
/// distribution index (larger = children closer to parents). Genes are
/// clamped to [0, 1].
RealVector sbx_crossover(const RealVector& a, const RealVector& b,
                         util::Rng& rng, double eta = 15.0,
                         double crossover_prob = 0.9);

/// Polynomial mutation with per-gene probability 1/n. Clamped to [0, 1].
RealVector polynomial_mutation(const RealVector& x, util::Rng& rng,
                               double eta = 20.0);

/// Perturbs one uniformly chosen coordinate by a step uniform in
/// [-step, step], clamped to [0, 1] — the local-search move.
RealVector coordinate_step(const RealVector& x, util::Rng& rng,
                           double step = 0.1);

/// Uniform random point in [0, 1]^n.
RealVector random_unit_vector(std::size_t n, util::Rng& rng);

/// CRTP-style base providing the operator plumbing of the MooProblem concept
/// for continuous problems; derived classes implement evaluate() and
/// num_objectives().
class ContinuousProblemBase {
 public:
  using Design = RealVector;

  explicit ContinuousProblemBase(std::size_t num_variables)
      : num_variables_(num_variables) {}

  std::size_t num_variables() const { return num_variables_; }

  Design random_design(util::Rng& rng) const {
    return random_unit_vector(num_variables_, rng);
  }
  Design random_neighbor(const Design& d, util::Rng& rng) const {
    return coordinate_step(d, rng);
  }
  Design crossover(const Design& a, const Design& b, util::Rng& rng) const {
    return sbx_crossover(a, b, rng);
  }
  Design mutate(const Design& d, util::Rng& rng) const {
    return polynomial_mutation(d, rng);
  }
  std::vector<double> features(const Design& d) const { return d; }
  std::size_t num_features() const { return num_variables_; }

 private:
  std::size_t num_variables_;
};

}  // namespace moela::problems
