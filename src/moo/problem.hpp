// The MooProblem concept: the contract every design-space-exploration
// problem exposes to the algorithms in this library.
//
// MOELA, MOEA/D, MOOS, MOO-STAGE and NSGA-II are class templates over any
// type satisfying this concept, so the same algorithm code runs on the 3D
// NoC platform-design problem (benchmarks) and on analytic test problems
// with known Pareto fronts (tests, examples).
#pragma once

#include <concepts>
#include <cstddef>
#include <vector>

#include "moo/objective.hpp"
#include "util/rng.hpp"

namespace moela::moo {

template <typename P>
concept MooProblem = requires(const P& p, const typename P::Design& d,
                              util::Rng& rng) {
  // The design (genotype) type. Must be copyable.
  typename P::Design;
  requires std::copyable<typename P::Design>;

  // Number of (minimized) objectives.
  { p.num_objectives() } -> std::convertible_to<std::size_t>;

  // Full objective evaluation — the expensive operation whose invocation
  // count is the time axis of every experiment.
  { p.evaluate(d) } -> std::convertible_to<ObjectiveVector>;

  // A uniformly random feasible design (population initialization).
  { p.random_design(rng) } -> std::convertible_to<typename P::Design>;

  // A feasible single-move perturbation of `d` (local-search step).
  { p.random_neighbor(d, rng) } -> std::convertible_to<typename P::Design>;

  // Genetic operators; both must return feasible designs.
  { p.crossover(d, d, rng) } -> std::convertible_to<typename P::Design>;
  { p.mutate(d, rng) } -> std::convertible_to<typename P::Design>;

  // Fixed-width numeric encoding of a design for the learned Eval model.
  { p.features(d) } -> std::convertible_to<std::vector<double>>;
  { p.num_features() } -> std::convertible_to<std::size_t>;
};

}  // namespace moela::moo
