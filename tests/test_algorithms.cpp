// Algorithm-level tests on analytic problems with known Pareto fronts
// (cheap evaluations, verifiable outcomes).
#include <gtest/gtest.h>

#include "baselines/moead.hpp"
#include "baselines/moo_stage.hpp"
#include "baselines/moos.hpp"
#include "baselines/nsga2.hpp"
#include "core/eval_context.hpp"
#include "core/local_search.hpp"
#include "core/moela.hpp"
#include "moo/hypervolume.hpp"
#include "moo/metrics.hpp"
#include "moo/pareto.hpp"
#include "problems/dtlz.hpp"
#include "problems/zdt.hpp"

namespace moela {
namespace {

using problems::Dtlz2;
using problems::Zdt;
using problems::ZdtVariant;

/// PHV of a front against a fixed box (ZDT objectives live in [0,1]x[0,10]).
double fixed_phv(const std::vector<moo::ObjectiveVector>& front) {
  return moo::hypervolume(front, moo::ObjectiveVector(front[0].size(), 11.0));
}

/// PHV reached by pure random sampling with the same budget — the floor any
/// real algorithm must beat.
template <typename P>
double random_search_phv(const P& problem, std::size_t budget,
                         std::uint64_t seed) {
  core::EvalContext<P> ctx(problem, seed, budget);
  while (!ctx.exhausted()) {
    ctx.evaluate(problem.random_design(ctx.rng()));
  }
  return fixed_phv(ctx.archive().objective_set());
}

core::MoelaConfig small_moela_config() {
  core::MoelaConfig c;
  c.population_size = 20;
  c.n_local = 3;
  c.neighborhood_size = 6;
  c.train_capacity = 1500;
  c.forest.num_trees = 8;
  c.forest.max_depth = 8;
  c.local_search.max_steps = 15;
  c.local_search.patience = 6;
  c.local_search.max_evaluations = 50;
  return c;
}

TEST(Moela, BeatsRandomSearchOnZdt1) {
  Zdt problem(ZdtVariant::kZdt1, 12);
  core::EvalContext<Zdt> ctx(problem, 1, 4000);
  core::Moela<Zdt> algo(small_moela_config());
  algo.run(ctx);
  const double moela_phv = fixed_phv(ctx.archive().objective_set());
  const double random_phv = random_search_phv(problem, 4000, 1);
  EXPECT_GT(moela_phv, random_phv);
}

TEST(Moela, RespectsEvaluationBudget) {
  Zdt problem(ZdtVariant::kZdt1, 8);
  core::EvalContext<Zdt> ctx(problem, 2, 500);
  core::Moela<Zdt> algo(small_moela_config());
  algo.run(ctx);
  // Budget may be exceeded only by the in-flight batch of one step.
  EXPECT_LE(ctx.evaluations(), 505u);
  EXPECT_GE(ctx.evaluations(), 500u);
}

TEST(Moela, DeterministicGivenSeed) {
  Zdt problem(ZdtVariant::kZdt2, 10);
  auto run_once = [&](std::uint64_t seed) {
    core::EvalContext<Zdt> ctx(problem, seed, 1200);
    core::Moela<Zdt> algo(small_moela_config());
    algo.run(ctx);
    return ctx.archive().objective_set();
  };
  EXPECT_EQ(run_once(7), run_once(7));
  EXPECT_NE(run_once(7), run_once(8));
}

TEST(Moela, PopulationConvergesTowardZdt1Front) {
  Zdt problem(ZdtVariant::kZdt1, 10);
  core::EvalContext<Zdt> ctx(problem, 3, 6000);
  core::Moela<Zdt> algo(small_moela_config());
  algo.run(ctx);
  const auto front = problem.pareto_front_samples(100);
  const double d = moo::igd(ctx.archive().objective_set(), front);
  EXPECT_LT(d, 0.6);  // random sampling alone gives IGD well above 1
}

TEST(Moela, AblationVariantsRun) {
  Zdt problem(ZdtVariant::kZdt1, 8);
  for (int variant = 0; variant < 3; ++variant) {
    core::MoelaConfig c = small_moela_config();
    if (variant == 0) c.use_ml_guide = false;
    if (variant == 1) c.use_local_search = false;
    if (variant == 2) c.use_ea = false;
    core::EvalContext<Zdt> ctx(problem, 4, 800);
    core::Moela<Zdt> algo(c);
    const auto pop = algo.run(ctx);
    EXPECT_EQ(pop.size(), c.population_size);
    EXPECT_GE(ctx.evaluations(), 700u);
  }
}

TEST(LocalSearch, ImprovesScalarizedValue) {
  Zdt problem(ZdtVariant::kZdt1, 10);
  core::EvalContext<Zdt> ctx(problem, 5, 2000);
  auto start = problem.random_design(ctx.rng());
  auto start_obj = ctx.evaluate(start);
  const moo::WeightVector w{0.5, 0.5};
  const moo::ObjectiveVector z{0.0, 0.0};
  const moo::ObjectiveVector scale{1.0, 1.0};
  const double g0 = moo::weighted_distance_scaled(start_obj, w, z, scale);
  const auto result = core::local_search(ctx, start, start_obj, w, z, scale);
  EXPECT_LE(result.best_g, g0);
  EXPECT_EQ(result.trajectory.size(), result.steps_taken + 1);
  // The result's objectives must be consistent with its reported g.
  EXPECT_NEAR(
      moo::weighted_distance_scaled(result.best_objectives, w, z, scale),
      result.best_g, 1e-12);
}

TEST(LocalSearch, StopsAtBudget) {
  Zdt problem(ZdtVariant::kZdt1, 10);
  core::EvalContext<Zdt> ctx(problem, 6, 20);
  auto start = problem.random_design(ctx.rng());
  auto start_obj = ctx.evaluate(start);
  core::local_search(ctx, start, start_obj, {0.5, 0.5}, {0.0, 0.0},
                     {1.0, 1.0});
  EXPECT_LE(ctx.evaluations(), 21u);
}

TEST(MoeaD, BeatsRandomSearchOnZdt1) {
  Zdt problem(ZdtVariant::kZdt1, 12);
  core::EvalContext<Zdt> ctx(problem, 7, 4000);
  baselines::MoeaDConfig c;
  c.population_size = 20;
  c.neighborhood_size = 6;
  baselines::MoeaD<Zdt> algo(c);
  const auto pop = algo.run(ctx);
  EXPECT_EQ(pop.size(), 20u);
  EXPECT_GT(fixed_phv(ctx.archive().objective_set()),
            random_search_phv(problem, 4000, 7));
}

TEST(MoeaD, ReferencePointIsComponentMinimum) {
  Zdt problem(ZdtVariant::kZdt1, 10);
  core::EvalContext<Zdt> ctx(problem, 8, 1000);
  baselines::MoeaDConfig c;
  c.population_size = 15;
  baselines::MoeaD<Zdt> algo(c);
  const auto pop = algo.run(ctx);
  const auto& z = pop.reference_point();
  for (std::size_t i = 0; i < pop.size(); ++i) {
    for (std::size_t k = 0; k < z.size(); ++k) {
      EXPECT_LE(z[k], pop.objectives(i)[k] + 1e-12);
    }
  }
}

TEST(Moos, RunsAndProducesNonDominatedArchive) {
  Zdt problem(ZdtVariant::kZdt1, 10);
  core::EvalContext<Zdt> ctx(problem, 9, 2500);
  baselines::MoosConfig c;
  c.archive_capacity = 20;
  c.initial_designs = 20;
  c.num_directions = 20;
  c.searches_per_iteration = 3;
  c.search.max_steps = 10;
  c.search.patience = 5;
  c.search.max_evaluations = 40;
  baselines::Moos<Zdt> algo(c);
  const auto archive = algo.run(ctx);
  EXPECT_FALSE(archive.empty());
  const auto points = archive.objective_set();
  for (std::size_t i = 0; i < points.size(); ++i) {
    for (std::size_t j = 0; j < points.size(); ++j) {
      if (i != j) {
        EXPECT_FALSE(moo::dominates(points[i], points[j]));
      }
    }
  }
  EXPECT_GT(fixed_phv(ctx.archive().objective_set()),
            random_search_phv(problem, 2500, 9) * 0.9);
}

TEST(MooStage, RunsAndLearns) {
  Zdt problem(ZdtVariant::kZdt1, 10);
  core::EvalContext<Zdt> ctx(problem, 10, 2500);
  baselines::MooStageConfig c;
  c.archive_capacity = 20;
  c.initial_designs = 20;
  c.searches_per_iteration = 3;
  c.search.max_steps = 10;
  c.search.neighbors_per_step = 4;
  c.forest.num_trees = 6;
  c.forest.max_depth = 6;
  baselines::MooStage<Zdt> algo(c);
  const auto archive = algo.run(ctx);
  EXPECT_FALSE(archive.empty());
  EXPECT_GE(ctx.evaluations(), 2000u);
}

TEST(Nsga2, BeatsRandomSearchOnZdt3) {
  Zdt problem(ZdtVariant::kZdt3, 12);
  core::EvalContext<Zdt> ctx(problem, 11, 4000);
  baselines::Nsga2Config c;
  c.population_size = 24;
  baselines::Nsga2<Zdt> algo(c);
  const auto pop = algo.run(ctx);
  EXPECT_EQ(pop.size(), 24u);
  EXPECT_GT(fixed_phv(ctx.archive().objective_set()),
            random_search_phv(problem, 4000, 11));
}

TEST(DesignArchive, PhvGainPositiveForImprovingPoint) {
  baselines::DesignArchive<Zdt> archive(10);
  archive.insert({0.5}, {0.5, 0.5});
  archive.insert({0.9}, {0.9, 0.1});
  EXPECT_GT(archive.phv_gain({0.1, 0.9}), 0.0);   // extends the front
  EXPECT_LE(archive.phv_gain({0.9, 0.9}), 1e-12);  // dominated: no gain
}

TEST(DesignArchive, CapacityBound) {
  baselines::DesignArchive<Zdt> archive(5);
  util::Rng rng(12);
  for (int i = 0; i < 100; ++i) {
    const double f1 = rng.uniform();
    archive.insert({f1}, {f1, 1.0 - f1});
  }
  EXPECT_LE(archive.size(), 5u);
}

// All five algorithms must handle 3, 4, and 5 objectives (DTLZ2 scales).
class ObjectiveCountSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ObjectiveCountSweep, MoelaHandlesManyObjectives) {
  const std::size_t m = GetParam();
  Dtlz2 problem(m, 6);
  core::EvalContext<Dtlz2> ctx(problem, 13, 1500);
  core::Moela<Dtlz2> algo(small_moela_config());
  const auto pop = algo.run(ctx);
  EXPECT_EQ(pop.objectives(0).size(), m);
  EXPECT_GE(ctx.evaluations(), 1400u);
}

TEST_P(ObjectiveCountSweep, MoeaDHandlesManyObjectives) {
  const std::size_t m = GetParam();
  Dtlz2 problem(m, 6);
  core::EvalContext<Dtlz2> ctx(problem, 14, 1500);
  baselines::MoeaDConfig c;
  c.population_size = 20;
  baselines::MoeaD<Dtlz2> algo(c);
  const auto pop = algo.run(ctx);
  EXPECT_EQ(pop.size(), 20u);
}

INSTANTIATE_TEST_SUITE_P(Objectives, ObjectiveCountSweep,
                         ::testing::Values(3, 4, 5));

}  // namespace
}  // namespace moela
