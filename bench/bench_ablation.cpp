// Ablation study (DESIGN.md experiment A1) for the design choices Sec. IV
// argues for: full MOELA vs
//   * MOELA without the ML guide (random local-search starts forever),
//   * EA-only (no local search at all — reduces to the decomposition EA),
//   * local-search-only (no EA stage — closest to a pure ML-guided search).
// Reported: final PHV (shared normalization) and evaluations to reach 90%
// of the best final PHV, on two contrasting apps (BFS: latency-bound /
// irregular; SRAD: streaming) in the 5-objective scenario.
//
// Environment knobs: MOELA_BENCH_EVALS, MOELA_BENCH_SMALL, MOELA_BENCH_SEED.
#include <cstdio>
#include <vector>

#include "exp/scenario.hpp"
#include "moo/metrics.hpp"
#include "util/table.hpp"

using namespace moela;

int main() {
  auto config = exp::paper_bench_config_from_env();
  config.algorithms = {"moela", "moela-noguide", "moela-ea-only",
                       "moela-ls-only"};

  util::Table table("Ablation: MOELA components (5-obj)");
  table.set_header({"App", "Variant", "final PHV", "evals to 90% best PHV"});

  // Both applications as ONE Executor batch (MOELA_BENCH_JOBS workers).
  const std::vector<exp::ScenarioCell> grid{{sim::RodiniaApp::kBfs, 5},
                                            {sim::RodiniaApp::kSrad, 5}};
  const auto results = exp::run_app_scenarios(grid, config);

  for (std::size_t gi = 0; gi < grid.size(); ++gi) {
    const auto app = grid[gi].app;
    const auto& r = results[gi];
    double best = 0.0;
    for (double phv : r.final_phv) best = std::max(best, phv);
    for (std::size_t i = 0; i < config.algorithms.size(); ++i) {
      const auto reach = moo::evaluations_to_reach(r.traces[i], 0.9 * best);
      table.add_row({sim::app_name(app), r.algorithm_names[i],
                     util::fmt(r.final_phv[i], 4),
                     reach ? util::fmt(*reach, 0) : "never"});
    }
  }
  table.print();

  std::printf("\nExpected shape: full MOELA reaches 90%%-PHV in the fewest "
              "evaluations; EA-only converges slowest; LS-only loses final "
              "PHV (diversity); no-ML-guide sits between.\n");
  return 0;
}
