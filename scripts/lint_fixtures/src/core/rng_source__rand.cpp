// Fixture: seeded violation — raw rand() outside src/util/rng.*.
int noisy() { return rand(); }
