// moela_serve: the long-lived optimization-serving daemon. Listens on a
// TCP socket, speaks the line-delimited JSON protocol of
// serve/protocol.hpp, and dispatches RunRequests onto one shared
// thread-pooled api::Executor backed by one process-lifetime
// api::ResultCache — so clients pay neither process startup nor repeated
// identical runs, and results stay bit-identical to inline execution for
// fixed seeds.
//
//   moela_serve                          # 127.0.0.1:7313, all cores
//   moela_serve --port 7400 --jobs 8 --cache-dir /var/cache/moela
//   moela_serve --host 0.0.0.0 --run-log runs.jsonl
//
// Submit with `moela_cli --connect host:port ...` or raw nc(1); see the
// README's "Serving" section for the protocol reference.
//
// Signals: the first SIGINT/SIGTERM drains gracefully (stop accepting,
// finish in-flight runs, answer, exit 0); a second cancels in-flight runs
// at their next budget check (they still answer, marked cancelled); a
// third falls back to the default disposition (hard kill). Clients cancel
// their own in-flight batches with the protocol's cancel verb — a
// client-side Ctrl-C never needs to touch the daemon's ladder.
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <thread>

#include "api/result_cache.hpp"
#include "api/run_log.hpp"
#include "serve/server.hpp"

using namespace moela;

namespace {

struct ServeCliOptions {
  serve::ServeConfig config;
  std::string run_log_path;
  std::string metrics_dump_path;  // empty = no exposition file at drain
  bool help = false;
};

void print_usage(std::FILE* to) {
  std::fprintf(to,
               "usage: moela_serve [options]\n"
               "\n"
               "  --host ADDR        bind address (default 127.0.0.1; use "
               "0.0.0.0 for\n"
               "                     non-local clients)\n"
               "  --port N           TCP port (default %d; 0 = ephemeral, "
               "printed on start)\n"
               "  --jobs N           Executor worker threads (default 0 = "
               "all cores)\n"
               "  --max-inflight N   per-connection cap on queued+running "
               "runs (default 256)\n"
               "  --max-queued N     daemon-wide admission bound on queued "
               "runs; a batch\n"
               "                     that would exceed it is shed with an "
               "'overloaded'\n"
               "                     error (default 1024)\n"
               "  --weights I,N,B    weighted-fair dispatch credits per "
               "scheduling class\n"
               "                     interactive,normal,batch (default "
               "8,4,1; each >= 1)\n"
               "  --no-cache         disable the result cache\n"
               "  --cache-dir PATH   cache directory (default "
               "$MOELA_CACHE_DIR, else\n"
               "                     ~/.cache/moela)\n"
               "  --cache-max-bytes N  disk-tier size cap with LRU "
               "eviction; 0 = no cap\n"
               "                     (default $MOELA_CACHE_MAX_BYTES, else "
               "1 GiB)\n"
               "  --run-log PATH     append one JSONL record per completed "
               "run\n"
               "                     (default $MOELA_RUN_LOG)\n"
               "  --snapshot-dir PATH  persist checkpointing runs' "
               "RunSnapshots under\n"
               "                     PATH (atomic, schema-salted files); "
               "an interrupted\n"
               "                     run resumes from its file "
               "bit-identically\n"
               "  --metrics-dump PATH  write the final telemetry snapshot "
               "as Prometheus\n"
               "                     text exposition to PATH at drain "
               "(live scraping\n"
               "                     uses the 'metrics' verb instead)\n"
               "  --help             this text\n"
               "\n"
               "Protocol: line-delimited JSON over TCP; verbs: ping, run,\n"
               "cancel, list_algorithms, list_problems, cache_stats, "
               "health,\nmetrics, shutdown. See docs/protocol.md.\n",
               serve::kDefaultPort);
}

std::optional<ServeCliOptions> parse_args(
    int argc, char** argv, std::optional<std::uintmax_t>& cache_max_bytes) {
  ServeCliOptions cli;
  cache_max_bytes.reset();  // absent flag = keep the ResultCache default
  auto need_value = [&](int& i, const char* flag) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "moela_serve: %s needs a value\n", flag);
      return nullptr;
    }
    return argv[++i];
  };
  auto integer_value = [&](int& i, const char* flag, auto& out) -> bool {
    const char* v = need_value(i, flag);
    if (v == nullptr) return false;
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(v, &end, 10);
    if (end == v || *end != '\0' || std::strchr(v, '-') != nullptr) {
      std::fprintf(stderr,
                   "moela_serve: %s wants a non-negative integer, got "
                   "'%s'\n",
                   flag, v);
      return false;
    }
    out = parsed;
    return true;
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* v = nullptr;
    if (arg == "--help" || arg == "-h") {
      cli.help = true;
    } else if (arg == "--host") {
      if ((v = need_value(i, "--host")) == nullptr) return std::nullopt;
      cli.config.host = v;
    } else if (arg == "--port") {
      std::size_t port = 0;
      if (!integer_value(i, "--port", port)) return std::nullopt;
      if (port > 65535) {
        std::fprintf(stderr, "moela_serve: --port out of range\n");
        return std::nullopt;
      }
      cli.config.port = static_cast<int>(port);
    } else if (arg == "--jobs") {
      if (!integer_value(i, "--jobs", cli.config.jobs)) return std::nullopt;
    } else if (arg == "--max-inflight") {
      if (!integer_value(i, "--max-inflight", cli.config.max_inflight)) {
        return std::nullopt;
      }
      if (cli.config.max_inflight == 0) {
        std::fprintf(stderr, "moela_serve: --max-inflight wants at least "
                             "1\n");
        return std::nullopt;
      }
    } else if (arg == "--max-queued") {
      if (!integer_value(i, "--max-queued", cli.config.max_queued)) {
        return std::nullopt;
      }
      if (cli.config.max_queued == 0) {
        std::fprintf(stderr, "moela_serve: --max-queued wants at least 1\n");
        return std::nullopt;
      }
    } else if (arg == "--weights") {
      if ((v = need_value(i, "--weights")) == nullptr) return std::nullopt;
      unsigned interactive = 0, normal = 0, batch = 0;
      char trailing = '\0';
      if (std::sscanf(v, "%u,%u,%u%c", &interactive, &normal, &batch,
                      &trailing) != 3 ||
          interactive == 0 || normal == 0 || batch == 0) {
        std::fprintf(stderr,
                     "moela_serve: --weights wants three positive integers "
                     "I,N,B, got '%s'\n",
                     v);
        return std::nullopt;
      }
      cli.config.weights.interactive = interactive;
      cli.config.weights.normal = normal;
      cli.config.weights.batch = batch;
    } else if (arg == "--no-cache") {
      cli.config.use_cache = false;
    } else if (arg == "--cache-dir") {
      if ((v = need_value(i, "--cache-dir")) == nullptr) return std::nullopt;
      cli.config.cache_dir = v;
    } else if (arg == "--cache-max-bytes") {
      std::uintmax_t bytes = 0;
      if (!integer_value(i, "--cache-max-bytes", bytes)) {
        return std::nullopt;
      }
      cache_max_bytes = bytes;  // 0 is meaningful: it disables the cap
    } else if (arg == "--run-log") {
      if ((v = need_value(i, "--run-log")) == nullptr) return std::nullopt;
      cli.run_log_path = v;
    } else if (arg == "--snapshot-dir") {
      if ((v = need_value(i, "--snapshot-dir")) == nullptr) {
        return std::nullopt;
      }
      cli.config.snapshot_dir = v;
    } else if (arg == "--metrics-dump") {
      if ((v = need_value(i, "--metrics-dump")) == nullptr) {
        return std::nullopt;
      }
      cli.metrics_dump_path = v;
    } else {
      std::fprintf(stderr, "moela_serve: unknown flag '%s'\n", arg.c_str());
      return std::nullopt;
    }
  }
  return cli;
}

// Signal escalation ladder; handlers may only touch lock-free atomics and
// call the Server's async-signal-safe entry points.
serve::Server* g_server = nullptr;
std::atomic<int> g_signal_count{0};

void handle_signal(int signum) {
  const int count = g_signal_count.fetch_add(1) + 1;
  if (g_server == nullptr) {
    std::signal(signum, SIG_DFL);
    std::raise(signum);
    return;
  }
  if (count == 1) {
    g_server->signal_shutdown();
  } else if (count == 2) {
    g_server->signal_hard_stop();
  } else {
    std::signal(signum, SIG_DFL);
    std::raise(signum);
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::optional<std::uintmax_t> cache_max_bytes;
  const auto parsed = parse_args(argc, argv, cache_max_bytes);
  if (!parsed) {
    print_usage(stderr);
    return 2;
  }
  if (parsed->help) {
    print_usage(stdout);
    return 0;
  }

  std::unique_ptr<api::RunLogger> run_log;
  serve::ServeConfig config = parsed->config;
  if (!parsed->run_log_path.empty()) {
    run_log = std::make_unique<api::RunLogger>(parsed->run_log_path);
    // An explicitly requested log that cannot be written is a startup
    // error, not something to limp on without.
    if (!run_log->ok()) return 2;
    config.run_log = run_log.get();
  }

  try {
    serve::Server server(config);
    if (config.use_cache && cache_max_bytes.has_value() && server.cache()) {
      server.cache()->set_max_disk_bytes(*cache_max_bytes);
    }
    server.start();

    g_server = &server;
    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);

    std::fprintf(stderr,
                 "moela_serve: listening on %s:%d (jobs=%zu, cache %s, "
                 "max-inflight %zu, max-queued %zu, weights %u,%u,%u)\n",
                 config.host.c_str(), server.port(),
                 config.jobs == 0
                     ? static_cast<std::size_t>(
                           std::thread::hardware_concurrency())
                     : config.jobs,
                 config.use_cache ? server.cache()->disk_dir().c_str()
                                  : "off",
                 config.max_inflight, config.max_queued,
                 config.weights.interactive, config.weights.normal,
                 config.weights.batch);

    server.wait();
    g_server = nullptr;
    // The drain-time exposition file: everything the daemon counted over
    // its whole life, in the same text format a live scrape of the
    // `metrics` verb would render. Written after wait() so the last
    // batch's observations are included.
    if (!parsed->metrics_dump_path.empty()) {
      std::FILE* dump = std::fopen(parsed->metrics_dump_path.c_str(), "w");
      if (dump == nullptr) {
        std::fprintf(stderr, "moela_serve: cannot write metrics dump '%s'\n",
                     parsed->metrics_dump_path.c_str());
      } else {
        const std::string text = server.metrics_text();
        std::fwrite(text.data(), 1, text.size(), dump);
        std::fclose(dump);
        std::fprintf(stderr, "moela_serve: metrics dumped to %s\n",
                     parsed->metrics_dump_path.c_str());
      }
    }
    std::fprintf(stderr, "moela_serve: drained, %llu run(s) handled; bye\n",
                 static_cast<unsigned long long>(server.runs_handled()));
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "moela_serve: %s\n", e.what());
    return 1;
  }
}
