// Serialization and identity of api::RunSnapshot — the checkpoint format
// behind crash/resume (docs/checkpointing.md).
//
// Exactness contract: like the result cache and the wire protocol, every
// objective value travels as a hexfloat string (util::exact_number), so a
// snapshot read back from disk or off the wire replays to a bit-identical
// report. The codec is strict in BOTH directions: encoding is
// byte-deterministic (sorted keys, locale-proof rendering — the golden
// snapshot tests pin the exact bytes), and decoding validates shape,
// fingerprint salt, counters, and an FNV-1a checksum before accepting —
// a truncated or mutated snapshot is a clean JsonError, never a resumed
// run from garbage.
#pragma once

#include <string>

#include "api/optimizer.hpp"
#include "api/request.hpp"
#include "util/json.hpp"

namespace moela::api {

/// Version salt of the snapshot schema, folded into every fingerprint.
/// Bump it whenever the snapshot format or replay semantics change so
/// snapshots written by older builds read as stale (fingerprint mismatch)
/// instead of replaying wrongly.
inline constexpr unsigned kSnapshotSchemaVersion = 1;

/// Canonical identity of a request's snapshots: the snapshot-schema salt
/// plus the request's cache_key(). Returns "" for an uncacheable request
/// (bound problem, no key) — such runs cannot be checkpointed. Deliberately
/// one-way: snapshots never feed cache_key() back.
std::string snapshot_fingerprint(const RunRequest& request);

/// Snapshot → JSON: {"fingerprint", "evaluations", "journal", "checksum"},
/// journal rows as hexfloat strings, checksum an FNV-1a digest over the
/// canonical payload. dump() of the result is byte-deterministic.
util::Json snapshot_to_json(const RunSnapshot& snapshot);

/// JSON → snapshot. Throws util::JsonError on any defect: missing or
/// mistyped fields, a fingerprint without the schema salt, an evaluation
/// count that disagrees with the journal, ragged journal rows, or a
/// checksum mismatch. A snapshot this returns is safe to replay.
RunSnapshot snapshot_from_json(const util::Json& json);

/// Convenience text forms (the on-disk snapshot file format: one JSON
/// object, newline-terminated).
std::string snapshot_to_text(const RunSnapshot& snapshot);
RunSnapshot snapshot_from_text(const std::string& text);

}  // namespace moela::api
