// Feasibility rules of Sec. III. The generator and the move/crossover
// operators only ever produce feasible designs; `validate` is the oracle the
// tests (and debug builds) use to prove it.
#pragma once

#include <string>
#include <vector>

#include "noc/design.hpp"
#include "noc/platform.hpp"

namespace moela::noc {

/// Result of checking a design against every Sec. III constraint.
struct ConstraintReport {
  bool placement_is_permutation = false;
  bool llcs_on_edge = false;       // memory-controller tiles on die perimeter
  bool link_budget_respected = false;  // exact planar & vertical counts
  bool links_legal = false;        // length <= 5 units, adjacency for TSVs
  bool degree_respected = false;   // <= 7 links per router
  bool connected = false;          // all-pairs reachability
  std::vector<std::string> violations;

  bool ok() const {
    return placement_is_permutation && llcs_on_edge &&
           link_budget_respected && links_legal && degree_respected &&
           connected;
  }
};

/// Checks every constraint and reports each violation textually.
ConstraintReport validate(const PlatformSpec& spec, const NocDesign& design);

/// Fast boolean check (used in assertions inside operators).
bool is_feasible(const PlatformSpec& spec, const NocDesign& design);

}  // namespace moela::noc
