#include "api/sharded_executor.hpp"

#include <algorithm>
#include <atomic>
#include <deque>
#include <future>
#include <memory>
#include <stdexcept>
#include <thread>
#include <utility>

#include "api/executor.hpp"
#include "api/snapshot.hpp"
// The documented exception to the layer DAG (docs/architecture.md): the
// sharding coordinator lives in api/ but acts as a serve/ protocol client.
// moela-lint: allow(layer-order) coordinator-as-client exception, see docs/architecture.md
#include "serve/client.hpp"
// moela-lint: allow(layer-order) coordinator-as-client exception, see docs/architecture.md
#include "serve/protocol.hpp"
#include "util/json.hpp"
#include "util/thread_annotations.hpp"

namespace moela::api {
namespace {

using util::Json;

/// The work pool shared by the shard threads. `owned[s]` holds shard s's
/// static round-robin slice; `pending` holds the work-stealing pool and
/// every requeued index. An index is always in exactly one place: some
/// owned queue, pending, in flight at a shard, or retired (done/failed).
struct SharedState {
  util::Mutex mutex;
  util::CondVar work_cv;
  std::deque<std::size_t> pending MOELA_GUARDED_BY(mutex);
  std::vector<std::deque<std::size_t>> owned MOELA_GUARDED_BY(mutex);
  std::size_t owned_total MOELA_GUARDED_BY(mutex) = 0;
  std::size_t inflight MOELA_GUARDED_BY(mutex) = 0;
  std::vector<std::size_t> attempts MOELA_GUARDED_BY(mutex);
  std::vector<std::string> request_error MOELA_GUARDED_BY(mutex);
  std::vector<char> done MOELA_GUARDED_BY(mutex);
  // attempts exhausted; never requeued again
  std::vector<char> failed MOELA_GUARDED_BY(mutex);
  /// Member of a failed multi-request chunk: must be retried ALONE so the
  /// failure is attributable to it (and charged to it) rather than to
  /// whatever shared its wire batch.
  std::vector<char> solo MOELA_GUARDED_BY(mutex);
  /// Requests that have fired a `finished` progress event, so retried
  /// chunks (which re-fire events for re-executed members) cannot inflate
  /// the forwarded `completed` count.
  std::vector<char> finish_reported MOELA_GUARDED_BY(mutex);
  std::size_t finish_count MOELA_GUARDED_BY(mutex) = 0;
  /// Requests for which any event has arrived — proof the daemon actually
  /// started executing them. A transport failure charges an attempt only
  /// for started requests: a request whose shard died before touching it
  /// has not consumed anything.
  std::vector<char> started MOELA_GUARDED_BY(mutex);
  /// Latest harvested RunSnapshot per request (null until one arrives).
  /// A requeued request ships this to its next shard so the continuation
  /// resumes instead of restarting.
  std::vector<std::shared_ptr<const RunSnapshot>> latest_snapshot
      MOELA_GUARDED_BY(mutex);
  /// Lock-free by design: shard threads poll it at chunk boundaries and a
  /// stop must be visible without waiting on whoever holds the mutex.
  std::atomic<bool> stopped{false};
};

/// Moves indices from `queue` into `chunk` until it holds `chunk_size`,
/// honoring the solo discipline (a `solo` request always rides alone — see
/// SharedState::solo). A named function rather than a lambda inside the
/// locked scope because the analyzer treats lambdas as separate, lock-free
/// functions; here the held capability is stated explicitly.
void pull_from(SharedState& shared, std::deque<std::size_t>& queue,
               bool owned, std::vector<std::size_t>& chunk,
               std::size_t chunk_size) MOELA_REQUIRES(shared.mutex) {
  while (!queue.empty() && chunk.size() < chunk_size) {
    const std::size_t next = queue.front();
    if (shared.solo[next] && !chunk.empty()) break;
    queue.pop_front();
    if (owned) --shared.owned_total;
    chunk.push_back(next);
    if (shared.solo[next]) break;
  }
}

/// One shard thread: owns one connection, pulls chunks (its static slice
/// first, then the shared pool), submits them, and merges replies into
/// `reports` by original index. On a transport failure the shard requeues
/// its chunk and retires; on a server error answer it requeues and keeps
/// serving (the connection survived).
void run_shard(const ShardedExecutorConfig& config,
               const ShardEndpoint& endpoint, ShardStats& stats,
               std::size_t shard, std::size_t chunk_size,
               std::size_t batch_size,
               const std::vector<RunRequest>& requests,
               std::vector<RunReport>& reports, SharedState& shared,
               RunControl* control) {
  // Per-endpoint dispatch/requeue tallies; resolved once per shard thread
  // so the loop below only touches atomics. Telemetry only.
  util::Counter* placed = nullptr;
  util::Counter* requeued = nullptr;
  if (config.metrics != nullptr) {
    placed = &config.metrics->counter(
        "moela_shard_placed_total",
        "Requests dispatched to each shard endpoint (retries included)",
        {{"endpoint", endpoint.to_string()}});
    requeued = &config.metrics->counter(
        "moela_shard_requeued_total",
        "Requests handed back to the pool after a shard failure",
        {{"endpoint", endpoint.to_string()}});
  }
  util::Counter* resumed_total = nullptr;
  if (config.metrics != nullptr && config.checkpoint) {
    resumed_total = &config.metrics->counter(
        "moela_shard_resumed_total",
        "Requests completed from a mid-run snapshot after a shard failure",
        {{"endpoint", endpoint.to_string()}});
  }

  serve::Client client;
  try {
    client.connect(endpoint.host, endpoint.port);
  } catch (const std::exception& e) {
    // Never reached a daemon, so this is not an attempt on any request:
    // hand the static slice to the surviving shards and retire.
    util::MutexLock lock(shared.mutex);
    stats.healthy = false;
    stats.failures += 1;
    stats.error = e.what();
    shared.owned_total -= shared.owned[shard].size();
    if (requeued != nullptr) requeued->add(shared.owned[shard].size());
    for (const std::size_t i : shared.owned[shard]) {
      shared.pending.push_back(i);
    }
    shared.owned[shard].clear();
    shared.work_cv.notify_all();
    return;
  }

  for (;;) {
    std::vector<std::size_t> chunk;
    {
      util::MutexLock lock(shared.mutex);
      for (;;) {
        if (control != nullptr && control->stop_requested()) {
          shared.stopped.store(true, std::memory_order_relaxed);
        }
        if (shared.stopped.load(std::memory_order_relaxed)) {
          shared.work_cv.notify_all();
          return;
        }
        pull_from(shared, shared.owned[shard], /*owned=*/true, chunk,
                  chunk_size);
        if (chunk.empty() || (chunk.size() < chunk_size &&
                              !shared.solo[chunk.front()])) {
          pull_from(shared, shared.pending, /*owned=*/false, chunk,
                    chunk_size);
        }
        if (!chunk.empty()) {
          shared.inflight += chunk.size();
          break;
        }
        if (shared.owned_total == 0 && shared.pending.empty() &&
            shared.inflight == 0) {
          return;  // batch drained (or every leftover exhausted its cap)
        }
        // Idle but the batch is not drained: a peer may still fail and
        // requeue its work here.
        shared.work_cv.wait(lock);
      }
    }

    if (placed != nullptr) placed->add(chunk.size());
    std::vector<RunRequest> batch;
    batch.reserve(chunk.size());
    for (const std::size_t i : chunk) batch.push_back(requests[i]);
    std::size_t resuming = 0;
    if (config.checkpoint) {
      // Attach the latest harvested snapshots (under the mutex: a peer's
      // handler may be storing new ones concurrently). A request seen
      // before resumes mid-run on this shard instead of starting over.
      util::MutexLock lock(shared.mutex);
      for (std::size_t k = 0; k < chunk.size(); ++k) {
        batch[k].checkpoint = true;
        batch[k].resume = shared.latest_snapshot[chunk[k]];
        if (batch[k].resume != nullptr) ++resuming;
      }
    }

    serve::Client::EventHandler handler;
    if (control != nullptr || config.checkpoint) {
      handler = [&config, &shared, &chunk, batch_size,
                 control](const Json& event) {
        // A version-skewed daemon with a missing/garbled index: drop the
        // event rather than misattribute it to another request (the
        // fallback is deliberately out of range).
        const std::size_t local =
            util::u64_field_or(event, "index", chunk.size());
        if (local >= chunk.size()) return;
        const bool finished =
            util::string_field_or(event, "event") == "finished";
        {
          // Any event proves the daemon started executing this request (a
          // later transport failure then charges its attempt), and a
          // snapshot payload becomes its resume point. A garbled snapshot
          // keeps the previous one: never resume from garbage.
          util::MutexLock lock(shared.mutex);
          shared.started[chunk[local]] = 1;
          if (config.checkpoint) {
            if (const Json* snap = event.find("snapshot")) {
              try {
                shared.latest_snapshot[chunk[local]] =
                    std::make_shared<const RunSnapshot>(
                        snapshot_from_json(*snap));
              } catch (const std::exception&) {
              }
            }
          }
        }
        if (control == nullptr) return;
        // Cadence events forward only when the caller asked for streaming
        // (checkpoint-only runs harvest them silently above).
        if (!finished && !config.stream_progress) return;
        // Stale cadence events racing a requested stop are dropped (the
        // Client already suppresses them once ITS cancel went out; this
        // covers the window before, and other shards' chunks): nobody
        // wants to watch progress climb after "cancelling".
        if (control->stop_requested() && !finished) return;
        RunProgress progress;
        progress.batch_size = batch_size;
        progress.batch_index = chunk[local];
        progress.algorithm = util::string_field_or(event, "algorithm");
        progress.evaluations = util::u64_field_or(event, "evaluations", 0);
        progress.max_evaluations =
            util::u64_field_or(event, "max_evaluations", 0);
        progress.seconds = util::double_field_or(event, "seconds", 0.0);
        if (finished) {
          progress.finished = true;
          {
            // First completion per request only: a retried chunk re-fires
            // events for re-executed members, which must not advance (or
            // overrun) the forwarded count.
            util::MutexLock lock(shared.mutex);
            if (!shared.finish_reported[progress.batch_index]) {
              shared.finish_reported[progress.batch_index] = 1;
              ++shared.finish_count;
            }
            progress.completed = shared.finish_count;
          }
          if (const Json* hit = event.find("cache_hit");
              hit != nullptr && hit->is_bool()) {
            progress.cache_hit = hit->as_bool();
          }
        }
        control->notify(progress);
      };
    }

    std::string error;
    bool transport = false;
    try {
      // `control` rides into the client so a stop requested while this
      // chunk is in flight sends the cancel verb to THIS daemon; the
      // chunk then answers normally with its unfinished members marked
      // cancelled — a successful response, so no attempt is charged and
      // the shard is not retired.
      std::vector<RunReport> served = client.run(
          batch, config.stream_progress, handler, control, config.priority);
      if (served.size() != chunk.size()) {
        throw std::runtime_error(client.endpoint() +
                                 ": response size mismatch");
      }
      util::MutexLock lock(shared.mutex);
      for (std::size_t k = 0; k < chunk.size(); ++k) {
        reports[chunk[k]] = std::move(served[k]);
        shared.done[chunk[k]] = 1;
      }
      shared.inflight -= chunk.size();
      stats.completed += chunk.size();
      stats.resumed += resuming;
      if (resumed_total != nullptr && resuming > 0) {
        resumed_total->add(resuming);
      }
      shared.work_cv.notify_all();
      continue;
    } catch (const serve::RemoteError& e) {
      error = e.what();  // server answered: the connection is still usable
    } catch (const std::exception& e) {
      error = e.what();
      transport = true;  // connection-level failure: retire this shard
    }

    {
      util::MutexLock lock(shared.mutex);
      stats.failures += 1;
      stats.error = error;
      std::uint64_t handed_back = 0;
      for (const std::size_t i : chunk) {
        shared.request_error[i] = error;
        if (chunk.size() > 1) {
          // A multi-request failure is not attributed to a single member
          // here (the client surfaces only the first per-entry error, and
          // a transport drop names none): retry each alone, attempt
          // uncharged — a chunk-mate that never executed must not burn
          // its cap for a neighbor's poison. Completed chunk-mates do get
          // re-executed (or served from the daemon's cache); the cost is
          // bounded by one solo round.
          shared.solo[i] = 1;
          shared.started[i] = 0;
          shared.pending.push_back(i);
          ++handed_back;
        } else if (transport && !shared.started[i]) {
          // The connection died before the daemon emitted a single event
          // for this request: it never started executing, so — like the
          // requeued static slice below — no attempt is charged. (A
          // RemoteError always charges: the server answered, so the
          // request genuinely ran and failed.)
          shared.pending.push_back(i);
          ++handed_back;
        } else if (++shared.attempts[i] >= config.max_attempts) {
          shared.failed[i] = 1;
        } else {
          // Reset the started mark so the NEXT shard's transport failure
          // is charged (or not) on its own evidence.
          shared.started[i] = 0;
          shared.pending.push_back(i);
          ++handed_back;
        }
      }
      if (transport) {
        // Retiring mid-run: the rest of this shard's static slice must go
        // to the survivors too, or they would wait on it forever. Never
        // attempted, so those requests' attempt counts do not advance.
        std::deque<std::size_t>& own = shared.owned[shard];
        shared.owned_total -= own.size();
        handed_back += own.size();
        for (const std::size_t i : own) shared.pending.push_back(i);
        own.clear();
      }
      if (requeued != nullptr && handed_back > 0) requeued->add(handed_back);
      shared.inflight -= chunk.size();
      shared.work_cv.notify_all();
    }
    if (transport) return;
  }
}

/// Mirrors the Executor's never-started cancelled report so a sharded stop
/// and an inline stop produce the same report shape.
RunReport cancelled_report(const RunRequest& request) {
  RunReport report;
  report.algorithm = request.algorithm;
  report.provenance.problem = request.problem;
  report.provenance.algorithm_key = request.algorithm;
  report.provenance.seed = request.options.seed;
  report.provenance.knobs = request.options.knobs.values();
  report.provenance.cache_key = request.cache_key();
  report.provenance.cancelled = true;
  return report;
}

}  // namespace

bool parse_shard_policy(const std::string& text, ShardPolicy& out) {
  if (text == "round-robin") {
    out = ShardPolicy::kRoundRobin;
    return true;
  }
  if (text == "work-steal" || text == "work-stealing") {
    out = ShardPolicy::kWorkStealing;
    return true;
  }
  if (text == "weighted") {
    out = ShardPolicy::kWeighted;
    return true;
  }
  return false;
}

std::string shard_policy_name(ShardPolicy policy) {
  switch (policy) {
    case ShardPolicy::kRoundRobin:
      return "round-robin";
    case ShardPolicy::kWeighted:
      return "weighted";
    case ShardPolicy::kWorkStealing:
      break;
  }
  return "work-steal";
}

std::string ShardEndpoint::to_string() const {
  return host + ":" +
         std::to_string(port == 0 ? serve::kDefaultPort : port);
}

bool parse_shard_endpoint(const std::string& spec, ShardEndpoint& out) {
  return serve::parse_host_port(spec, out.host, out.port);
}

ShardedExecutor::ShardedExecutor(ShardedExecutorConfig config)
    : config_(std::move(config)) {
  if (config_.endpoints.empty()) {
    throw std::invalid_argument("ShardedExecutor: no endpoints");
  }
  if (config_.max_attempts == 0) {
    throw std::invalid_argument("ShardedExecutor: max_attempts must be >= 1");
  }
  for (auto& endpoint : config_.endpoints) {
    if (endpoint.port == 0) endpoint.port = serve::kDefaultPort;
  }
}

std::vector<RunReport> ShardedExecutor::run_all(
    const std::vector<RunRequest>& requests, RunControl* control) {
  const std::size_t n = requests.size();
  std::vector<RunReport> reports(n);
  stats_.assign(config_.endpoints.size(), ShardStats{});
  for (std::size_t s = 0; s < config_.endpoints.size(); ++s) {
    stats_[s].endpoint = config_.endpoints[s].to_string();
  }
  if (n == 0) return reports;

  // Placement gate: probe each endpoint's `health` verb and leave dead or
  // draining daemons out of the initial partition. (A daemon predating the
  // verb still places if it answers a ping.) Probes run concurrently so
  // one blackholed endpoint cannot serialize the whole fleet's startup
  // behind its TCP connect timeout.
  std::vector<std::size_t> healthy;
  std::vector<std::size_t> probed_jobs(config_.endpoints.size(), 0);
  /// Reported load (runs in flight + scheduler queue depth), the
  /// kWeighted placement's second input. Zero when unprobed or the daemon
  /// predates the fields.
  std::vector<std::size_t> probed_load(config_.endpoints.size(), 0);
  if (config_.probe_health) {
    std::vector<std::thread> probes;
    probes.reserve(config_.endpoints.size());
    for (std::size_t s = 0; s < config_.endpoints.size(); ++s) {
      probes.emplace_back([this, s, &probed_jobs, &probed_load] {
        const ShardEndpoint& endpoint = config_.endpoints[s];
        try {
          serve::Client probe;
          probe.connect(endpoint.host, endpoint.port);
          bool accepting = true;
          try {
            const Json health = probe.health();
            if (const Json* a = health.find("accepting");
                a != nullptr && a->is_bool()) {
              accepting = a->as_bool();
            }
            probed_jobs[s] = util::u64_field_or(health, "jobs", 0);
            probed_load[s] = util::u64_field_or(health, "inflight", 0) +
                             util::u64_field_or(health, "queued", 0);
          } catch (const serve::RemoteError&) {
            accepting = probe.ping();  // daemon predates the health verb
          }
          if (accepting) {
            stats_[s].healthy = true;
          } else {
            stats_[s].error =
                endpoint.to_string() + ": draining, not accepting runs";
          }
        } catch (const std::exception& e) {
          stats_[s].failures += 1;
          stats_[s].error = e.what();
        }
      });
    }
    for (auto& probe : probes) probe.join();
  }
  for (std::size_t s = 0; s < config_.endpoints.size(); ++s) {
    if (!config_.probe_health) stats_[s].healthy = true;
    if (stats_[s].healthy) healthy.push_back(s);
  }

  SharedState shared;
  {
    // No shard thread exists yet, but the capability discipline is
    // uniform: SharedState is touched under its mutex, always.
    util::MutexLock lock(shared.mutex);
    shared.owned.resize(config_.endpoints.size());
    shared.attempts.assign(n, 0);
    shared.request_error.assign(n, std::string());
    shared.done.assign(n, 0);
    shared.failed.assign(n, 0);
    shared.solo.assign(n, 0);
    shared.finish_reported.assign(n, 0);
    shared.started.assign(n, 0);
    shared.latest_snapshot.assign(n, nullptr);
  }

  if (!healthy.empty()) {
    {
      // Placement happens under the mutex; released before the shard
      // threads spawn (they block on it immediately).
      util::MutexLock lock(shared.mutex);
      if (config_.policy == ShardPolicy::kRoundRobin) {
        for (std::size_t i = 0; i < n; ++i) {
          shared.owned[healthy[i % healthy.size()]].push_back(i);
        }
        shared.owned_total = n;
      } else if (config_.policy == ShardPolicy::kWeighted) {
        // Load-aware static placement: each request (in order, so the
        // partition is deterministic given the probe) goes to the shard
        // with the lowest projected utilization
        //     (reported load + assigned so far) / worker capacity,
        // compared exactly by cross-multiplication — a 4-worker idle daemon
        // owns 4x what a 1-worker one does, and a daemon already loaded by
        // OTHER clients starts with that handicap. Requeue/steal dynamics
        // on failure are identical to round-robin's.
        std::vector<std::uint64_t> assigned(config_.endpoints.size(), 0);
        for (std::size_t i = 0; i < n; ++i) {
          std::size_t best = healthy.front();
          for (const std::size_t s : healthy) {
            const std::uint64_t cap_s =
                std::max<std::uint64_t>(1, probed_jobs[s]);
            const std::uint64_t cap_best =
                std::max<std::uint64_t>(1, probed_jobs[best]);
            if ((probed_load[s] + assigned[s]) * cap_best <
                (probed_load[best] + assigned[best]) * cap_s) {
              best = s;
            }
          }
          shared.owned[best].push_back(i);
          ++assigned[best];
        }
        shared.owned_total = n;
      } else {
        for (std::size_t i = 0; i < n; ++i) shared.pending.push_back(i);
      }
    }

    std::vector<std::thread> workers;
    workers.reserve(healthy.size());
    for (const std::size_t s : healthy) {
      // Wire-batch size: an explicit steal_chunk wins; otherwise size each
      // shard's chunk to the daemon's probed worker count, so a chunk
      // saturates the daemon's Executor pool instead of serializing it
      // one run at a time.
      const std::size_t chunk_size =
          config_.steal_chunk > 0
              ? config_.steal_chunk
              : std::max<std::size_t>(std::size_t{1}, probed_jobs[s]);
      workers.emplace_back([this, s, chunk_size, n, &requests, &reports,
                            &shared, control] {
        run_shard(config_, config_.endpoints[s], stats_[s], s, chunk_size,
                  n, requests, reports, shared, control);
      });
    }
    for (auto& worker : workers) worker.join();
  }

  // Every shard thread has been joined: from here SharedState is
  // single-threaded again, but the lock discipline stays uniform (the
  // locks below are uncontended by construction).
  std::vector<std::size_t> undone;
  {
    util::MutexLock lock(shared.mutex);
    for (std::size_t i = 0; i < n; ++i) {
      if (!shared.done[i]) undone.push_back(i);
    }
  }
  if (undone.empty()) return reports;

  if (config_.local_fallback) {
    // Note: the fallback Executor tags its progress events with indices
    // into the fallback sub-batch, not the merged batch.
    std::vector<RunRequest> rest;
    rest.reserve(undone.size());
    for (const std::size_t i : undone) rest.push_back(requests[i]);
    std::vector<std::future<RunReport>> futures;
    {
      Executor local({.jobs = config_.local_jobs, .cache = config_.cache});
      futures = local.submit(std::move(rest), control);
      // Wait (without consuming) and join the pool before get(): a
      // rethrown exception shares state with the worker's task copy, and
      // consuming it while the worker tears down its copy is a race.
      for (auto& future : futures) future.wait();
    }
    // Collect per-future so one throwing fallback run (a request invalid
    // locally too) cannot abandon the sibling fallback runs mid-drain;
    // the aggregate throw below still names each failure.
    std::vector<std::size_t> fallback_failed;
    util::MutexLock lock(shared.mutex);
    for (std::size_t k = 0; k < futures.size(); ++k) {
      try {
        reports[undone[k]] = futures[k].get();
        shared.done[undone[k]] = 1;
      } catch (const std::exception& e) {
        shared.request_error[undone[k]] =
            std::string("local fallback: ") + e.what();
        fallback_failed.push_back(undone[k]);
      }
    }
    if (fallback_failed.empty()) return reports;
    undone = std::move(fallback_failed);
  } else if (control != nullptr && control->stop_requested()) {
    for (const std::size_t i : undone) {
      reports[i] = cancelled_report(requests[i]);
    }
    return reports;
  }

  // Not stopped, and any fallback has had its chance: the batch genuinely
  // failed. Name the
  // endpoints and the first few per-request errors so a fleet operator can
  // tell which daemon to look at.
  std::string what = "sharded run: " + std::to_string(undone.size()) + " of " +
                     std::to_string(n) + " request(s) unserved";
  for (const ShardStats& shard : stats_) {
    if (!shard.error.empty()) what += "; " + shard.error;
  }
  std::size_t listed = 0;
  {
    util::MutexLock lock(shared.mutex);
    for (const std::size_t i : undone) {
      if (shared.request_error[i].empty()) continue;
      if (listed == 3) {
        what += "; ...";
        break;
      }
      what += "; '" + requests[i].label_or_default() + "' after " +
              std::to_string(shared.attempts[i]) +
              " attempt(s): " + shared.request_error[i];
      ++listed;
    }
  }
  throw std::runtime_error(what);
}

}  // namespace moela::api
