#include "serve/sched/queue.hpp"

#include <utility>

namespace moela::serve::sched {

FairQueue::FairQueue(Weights weights) : weights_(weights) {
  for (std::size_t c = 0; c < kNumClasses; ++c) {
    classes_[c].credit = weights_.of(static_cast<Priority>(c));
  }
}

void FairQueue::push(Priority priority, std::uint64_t lane, QueueItem item) {
  ClassQueue& cls = classes_[index(priority)];
  std::deque<QueueItem>& queue = cls.lanes[lane];
  if (queue.empty()) cls.rotation.push_back(lane);
  queue.push_back(std::move(item));
  ++cls.size;
  ++size_;
}

QueueItem FairQueue::pop_from(ClassQueue& cls) {
  const std::uint64_t lane = cls.rotation.front();
  cls.rotation.pop_front();
  auto it = cls.lanes.find(lane);
  QueueItem item = std::move(it->second.front());
  it->second.pop_front();
  if (it->second.empty()) {
    cls.lanes.erase(it);
  } else {
    cls.rotation.push_back(lane);  // round-robin within the class
  }
  --cls.size;
  --size_;
  return item;
}

bool FairQueue::pop(Priority& priority_out, QueueItem& item_out) {
  if (size_ == 0) return false;
  // Weighted round-robin: the first non-empty class (most urgent first)
  // with credit left wins and pays one credit. When every non-empty class
  // is out of credit, a new cycle starts: refill ALL credits from the
  // weights. An empty class keeps (and wastes) its credit — forfeited
  // share, not banked: a class must not hoard credit while idle and then
  // monopolize the cycle it wakes in.
  for (int attempt = 0; attempt < 2; ++attempt) {
    for (std::size_t c = 0; c < kNumClasses; ++c) {
      ClassQueue& cls = classes_[c];
      if (cls.size == 0 || cls.credit == 0) continue;
      --cls.credit;
      priority_out = static_cast<Priority>(c);
      item_out = pop_from(cls);
      return true;
    }
    for (std::size_t c = 0; c < kNumClasses; ++c) {
      classes_[c].credit = weights_.of(static_cast<Priority>(c));
    }
  }
  return false;  // unreachable while size_ > 0; defensive
}

}  // namespace moela::serve::sched
