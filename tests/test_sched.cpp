// Tests for the serving scheduler (src/serve/sched/): the FairQueue's two
// nested disciplines driven single-threaded so pop order is asserted
// exactly — weighted round-robin across classes (credits, refill,
// forfeited shares) and lane round-robin within a class — plus the
// policy vocabulary (wire spellings, weight clamping) and the Scheduler
// itself: admission, all-or-nothing shedding with the structured overload
// facts, per-class counters, and the bit-identical-to-inline property of
// runs dispatched through the queue.
#include <gtest/gtest.h>

#include <cstdint>
#include <future>
#include <stdexcept>
#include <string>
#include <vector>

#include "api/executor.hpp"
#include "api/request.hpp"
#include "serve/sched/policy.hpp"
#include "serve/sched/queue.hpp"
#include "serve/sched/scheduler.hpp"

namespace moela::serve::sched {
namespace {

QueueItem tagged(std::uint64_t tag) {
  QueueItem item;
  item.tag = tag;
  return item;
}

/// Drains the queue, returning the popped tags in dispatch order.
std::vector<std::uint64_t> drain(FairQueue& queue) {
  std::vector<std::uint64_t> order;
  Priority priority = Priority::kNormal;
  QueueItem item;
  while (queue.pop(priority, item)) order.push_back(item.tag);
  return order;
}

// --- policy vocabulary ----------------------------------------------------

TEST(SchedPolicy, NamesAndParsingRoundTrip) {
  for (const Priority priority :
       {Priority::kInteractive, Priority::kNormal, Priority::kBatch}) {
    Priority back = Priority::kNormal;
    ASSERT_TRUE(parse_priority(priority_name(priority), back));
    EXPECT_EQ(back, priority);
  }
  EXPECT_EQ(priority_name(Priority::kInteractive), "interactive");
  EXPECT_EQ(priority_name(Priority::kNormal), "normal");
  EXPECT_EQ(priority_name(Priority::kBatch), "batch");
}

TEST(SchedPolicy, ParseRejectsTyposWithoutTouchingOut) {
  Priority out = Priority::kBatch;
  EXPECT_FALSE(parse_priority("urgent", out));
  EXPECT_FALSE(parse_priority("Interactive", out));
  EXPECT_FALSE(parse_priority("", out));
  EXPECT_EQ(out, Priority::kBatch);  // untouched on failure
}

TEST(SchedPolicy, WeightsClampToAtLeastOne) {
  Weights weights;
  weights.interactive = 0;
  weights.batch = 0;
  EXPECT_EQ(weights.of(Priority::kInteractive), 1u);
  EXPECT_EQ(weights.of(Priority::kBatch), 1u);
  EXPECT_EQ(weights.of(Priority::kNormal), 4u);  // the default, unclamped
}

// --- FairQueue: across classes --------------------------------------------

TEST(FairQueue, WeightedRoundRobinAcrossClasses) {
  Weights weights;
  weights.interactive = 2;
  weights.normal = 1;
  weights.batch = 1;
  FairQueue queue(weights);
  for (std::uint64_t tag : {1, 2, 3, 4}) {
    queue.push(Priority::kInteractive, 0, tagged(tag));
  }
  queue.push(Priority::kNormal, 0, tagged(11));
  queue.push(Priority::kNormal, 0, tagged(12));
  queue.push(Priority::kBatch, 0, tagged(21));
  queue.push(Priority::kBatch, 0, tagged(22));

  EXPECT_EQ(queue.size(), 8u);
  EXPECT_EQ(queue.size(Priority::kInteractive), 4u);
  // Per credit cycle: 2 interactive, 1 normal, 1 batch.
  EXPECT_EQ(drain(queue),
            (std::vector<std::uint64_t>{1, 2, 11, 21, 3, 4, 12, 22}));
  EXPECT_TRUE(queue.empty());
}

TEST(FairQueue, IdleClassForfeitsItsShare) {
  // Only batch work queued: batch drains at full speed (one dispatch per
  // one-credit cycle, but no other class is taking turns) . . .
  FairQueue queue;  // default weights 8, 4, 1
  for (std::uint64_t tag : {1, 2, 3}) {
    queue.push(Priority::kBatch, 0, tagged(tag));
  }
  Priority priority = Priority::kNormal;
  QueueItem item;
  ASSERT_TRUE(queue.pop(priority, item));
  EXPECT_EQ(item.tag, 1u);
  EXPECT_EQ(priority, Priority::kBatch);
  ASSERT_TRUE(queue.pop(priority, item));
  EXPECT_EQ(item.tag, 2u);

  // . . . and an interactive run arriving into the backlog is dispatched
  // on the very next pop — the idle cycles did not let batch bank credit.
  queue.push(Priority::kInteractive, 7, tagged(100));
  ASSERT_TRUE(queue.pop(priority, item));
  EXPECT_EQ(item.tag, 100u);
  EXPECT_EQ(priority, Priority::kInteractive);
  ASSERT_TRUE(queue.pop(priority, item));
  EXPECT_EQ(item.tag, 3u);
  EXPECT_TRUE(queue.empty());
}

TEST(FairQueue, EveryClassDispatchesWithinOneCycleOfBacklog) {
  // The bounded-starvation guarantee: with every weight >= 1, a batch run
  // behind saturating interactive traffic still dispatches within one
  // sum-of-weights cycle.
  Weights weights;
  weights.interactive = 3;
  weights.normal = 2;
  weights.batch = 1;
  FairQueue queue(weights);
  for (std::uint64_t tag = 0; tag < 12; ++tag) {
    queue.push(Priority::kInteractive, 0, tagged(tag));
  }
  queue.push(Priority::kBatch, 0, tagged(99));

  const std::vector<std::uint64_t> order = drain(queue);
  ASSERT_EQ(order.size(), 13u);
  std::size_t batch_position = order.size();
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (order[i] == 99) batch_position = i;
  }
  // 3 interactive dispatches may precede it, never a full second cycle.
  EXPECT_LE(batch_position, 3u);
}

// --- FairQueue: within a class --------------------------------------------

TEST(FairQueue, LanesShareAClassRoundRobinAndStayFifo) {
  FairQueue queue;
  for (std::uint64_t tag : {1, 2, 3}) {
    queue.push(Priority::kNormal, /*lane=*/1, tagged(tag));
  }
  queue.push(Priority::kNormal, /*lane=*/2, tagged(4));
  queue.push(Priority::kNormal, /*lane=*/2, tagged(5));

  // Lane 1 queued three runs, lane 2 two — they alternate anyway, and
  // each lane's own runs stay in admission order.
  EXPECT_EQ(drain(queue), (std::vector<std::uint64_t>{1, 4, 2, 5, 3}));
}

TEST(FairQueue, DrainedLaneIsForgotten) {
  FairQueue queue;
  queue.push(Priority::kNormal, 1, tagged(1));
  Priority priority = Priority::kNormal;
  QueueItem item;
  ASSERT_TRUE(queue.pop(priority, item));
  EXPECT_TRUE(queue.empty());

  // The lane left nothing behind: a fresh push dispatches immediately and
  // an empty queue reports pop failure, not a phantom lane.
  EXPECT_FALSE(queue.pop(priority, item));
  queue.push(Priority::kNormal, 1, tagged(2));
  ASSERT_TRUE(queue.pop(priority, item));
  EXPECT_EQ(item.tag, 2u);
}

// --- Scheduler ------------------------------------------------------------

api::RunRequest zdt1_request(std::uint64_t seed) {
  api::RunRequest request;
  request.problem = "zdt1";
  request.problem_options.num_variables = 10;
  request.algorithm = "nsga2";
  request.options.max_evaluations = 400;
  request.options.snapshot_interval = 200;
  request.options.seed = seed;
  request.options.population_size = 12;
  request.options.n_local = 3;
  return request;
}

/// An Executor in pool-less mode: the Scheduler under test owns the only
/// worker threads.
struct PoollessExecutor {
  PoollessExecutor() {
    api::ExecutorConfig config;
    config.jobs = 1;
    config.pool = false;
    executor = std::make_unique<api::Executor>(config);
  }
  std::unique_ptr<api::Executor> executor;
};

TEST(Scheduler, PoollessExecutorRefusesItsOwnSubmit) {
  PoollessExecutor fixture;
  EXPECT_THROW(fixture.executor->submit({zdt1_request(1)}, nullptr),
               std::logic_error);
}

TEST(Scheduler, RunsDispatchedThroughTheQueueMatchInlineExecution) {
  api::Executor direct({.jobs = 1});
  const api::RunReport reference =
      direct.run_all({zdt1_request(5)}).front();

  PoollessExecutor fixture;
  SchedulerConfig config;
  config.workers = 2;
  Scheduler scheduler(*fixture.executor, config);
  Scheduler::Admission admission = scheduler.submit(
      {zdt1_request(5)}, Priority::kInteractive, /*lane=*/0, nullptr);
  ASSERT_TRUE(admission.admitted);
  ASSERT_EQ(admission.futures.size(), 1u);
  const api::RunReport report = admission.futures.front().get();

  EXPECT_EQ(report.final_front, reference.final_front);
  EXPECT_EQ(report.evaluations, reference.evaluations);
  EXPECT_EQ(report.provenance.cache_key, reference.provenance.cache_key);

  const ClassCounters counters = scheduler.counters(Priority::kInteractive);
  EXPECT_EQ(counters.completed, 1u);
  EXPECT_EQ(counters.shed, 0u);
  EXPECT_EQ(scheduler.queued_total(), 0u);
}

TEST(Scheduler, BatchLargerThanMaxQueuedIsShedWholeWithStructuredFacts) {
  PoollessExecutor fixture;
  SchedulerConfig config;
  config.workers = 1;
  config.max_queued = 2;
  Scheduler scheduler(*fixture.executor, config);

  // 3 > 2 even against an empty queue: shed whole, nothing enqueued.
  Scheduler::Admission shed = scheduler.submit(
      {zdt1_request(1), zdt1_request(2), zdt1_request(3)}, Priority::kNormal,
      /*lane=*/0, nullptr);
  EXPECT_FALSE(shed.admitted);
  EXPECT_TRUE(shed.futures.empty());
  EXPECT_EQ(shed.queue_depth, 0u);
  EXPECT_EQ(shed.retry_after_ms, scheduler.retry_after_hint(0));
  EXPECT_EQ(scheduler.queued_total(), 0u);
  EXPECT_EQ(scheduler.counters(Priority::kNormal).shed, 3u);
  EXPECT_EQ(scheduler.counters(Priority::kNormal).completed, 0u);

  // The shed batch left no residue: a batch within the bound runs fine.
  Scheduler::Admission ok = scheduler.submit(
      {zdt1_request(1), zdt1_request(2)}, Priority::kNormal, 0, nullptr);
  ASSERT_TRUE(ok.admitted);
  for (auto& future : ok.futures) {
    EXPECT_EQ(future.get().evaluations, 400u);
  }
  EXPECT_EQ(scheduler.counters(Priority::kNormal).completed, 2u);
  EXPECT_EQ(scheduler.counters(Priority::kNormal).shed, 3u);  // lifetime
}

TEST(Scheduler, RetryAfterHintScalesWithBacklogAndClamps) {
  PoollessExecutor fixture;
  SchedulerConfig config;
  config.workers = 2;
  Scheduler scheduler(*fixture.executor, config);
  EXPECT_EQ(scheduler.retry_after_hint(0), 50u);
  EXPECT_EQ(scheduler.retry_after_hint(2), 100u);
  EXPECT_EQ(scheduler.retry_after_hint(4), 150u);
  EXPECT_EQ(scheduler.retry_after_hint(1000000), 5000u);  // the ceiling
}

TEST(Scheduler, StopRequestedBeforeDispatchYieldsCancelledReports) {
  PoollessExecutor fixture;
  SchedulerConfig config;
  config.workers = 1;
  Scheduler scheduler(*fixture.executor, config);

  api::RunControl control;
  control.request_stop();
  Scheduler::Admission admission = scheduler.submit(
      {zdt1_request(1), zdt1_request(2)}, Priority::kBatch, 0, &control);
  ASSERT_TRUE(admission.admitted);
  for (auto& future : admission.futures) {
    const api::RunReport report = future.get();
    EXPECT_TRUE(report.provenance.cancelled);
    EXPECT_EQ(report.evaluations, 0u);
  }
  // A cancelled run still completed, scheduler-wise.
  EXPECT_EQ(scheduler.counters(Priority::kBatch).completed, 2u);
}

}  // namespace
}  // namespace moela::serve::sched
