// Runtime composition layer, part 2: the uniform optimizer front-end.
//
// Every algorithm in the library — MOELA, its three ablation variants, and
// the four baselines — is driven through one abstract interface:
//
//   auto opt = api::registry().create("moela", api::AnyProblem(problem));
//   api::RunReport report = opt->run(options);
//
// RunOptions carries the budgets every algorithm shares (the paper's
// fairness contract: same evaluation cap, same wall clock, same population
// sizing, same seed) plus a string-keyed knob bag for per-algorithm
// parameters, so new knobs never change this API. RunReport is the uniform
// result: archive snapshots for anytime-PHV traces, the all-time Pareto
// front, and the final population (type-erased designs + objectives) for
// the Fig. 3 design selection.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "api/any_problem.hpp"
#include "core/eval_context.hpp"
#include "moo/objective.hpp"

namespace moela::api {

/// String-keyed per-algorithm parameters ("moela.delta", "moos.temperature",
/// ...). Doubles cover every knob in the library: counts, probabilities and
/// switches (0/1). Unknown keys are ignored by optimizers, so one bag can
/// configure several algorithms at once.
class KnobBag {
 public:
  KnobBag& set(std::string name, double value) {
    values_[std::move(name)] = value;
    return *this;
  }

  double get_or(const std::string& name, double fallback) const {
    auto it = values_.find(name);
    return it == values_.end() ? fallback : it->second;
  }
  std::size_t get_or(const std::string& name, std::size_t fallback) const {
    auto it = values_.find(name);
    if (it == values_.end()) return fallback;
    // A negative value cannot mean anything for a count knob, and casting
    // it to size_t would be undefined behavior — fall back instead.
    if (it->second < 0.0) return fallback;
    return static_cast<std::size_t>(it->second);
  }
  bool get_or(const std::string& name, bool fallback) const {
    auto it = values_.find(name);
    return it == values_.end() ? fallback : it->second != 0.0;
  }

  bool contains(const std::string& name) const {
    return values_.count(name) > 0;
  }
  const std::map<std::string, double>& values() const { return values_; }

  /// Parses "name=value" (the CLI --knob syntax). Returns false on a
  /// malformed assignment or a non-numeric value.
  bool parse_assignment(const std::string& assignment);

 private:
  std::map<std::string, double> values_;
};

/// Budgets and sizing shared by every algorithm, plus the knob bag.
struct RunOptions {
  /// Objective-evaluation budget — the experiment time axis.
  std::size_t max_evaluations = 20000;
  /// Wall-clock budget in seconds; 0 disables it. Whichever budget binds
  /// first stops the run (the paper's T_stop is wall-clock).
  double max_seconds = 0.0;
  /// Archive snapshot cadence in evaluations (0 disables the trace).
  std::size_t snapshot_interval = 500;
  std::uint64_t seed = 1;
  /// Population / archive size shared by every algorithm (fairness).
  std::size_t population_size = 50;
  /// Local searches per iteration for the LS-based methods (n_local).
  std::size_t n_local = 5;
  /// Per-algorithm parameters; see each adapter in api/optimizers.cpp for
  /// its recognized keys.
  KnobBag knobs;
};

/// Uniform result of one optimizer run.
struct RunReport {
  /// Display name of the algorithm that produced this report ("MOELA",
  /// "NSGA-II", ...).
  std::string algorithm;
  std::vector<core::ArchiveSnapshot> snapshots;
  /// The all-time Pareto front of the run (objective vectors).
  std::vector<moo::ObjectiveVector> final_front;
  /// Final population/archive: type-erased designs + their objectives.
  std::vector<AnyDesign> final_designs;
  std::vector<moo::ObjectiveVector> final_objectives;
  std::size_t evaluations = 0;
  double seconds = 0.0;

  /// Unwraps the final designs to their concrete type (throws when the
  /// report came from a different problem type).
  template <typename D>
  std::vector<D> designs_as() const {
    std::vector<D> out;
    out.reserve(final_designs.size());
    for (const auto& d : final_designs) out.push_back(d.as<D>());
    return out;
  }
};

/// Abstract optimizer: one problem bound at construction, one entry point.
/// Implementations live in api/optimizers.cpp and adapt the algorithm
/// templates (instantiated with P = AnyProblem) to this interface.
class Optimizer {
 public:
  explicit Optimizer(AnyProblem problem) : problem_(std::move(problem)) {}
  virtual ~Optimizer() = default;

  /// Display name ("MOELA", "MOEA/D", ...).
  virtual std::string name() const = 0;

  /// Runs the algorithm under `options` and returns the uniform report.
  /// Deterministic per (problem, options) when max_seconds is 0.
  RunReport run(const RunOptions& options);

  const AnyProblem& problem() const { return problem_; }

 protected:
  /// Algorithm body: runs against the prepared context and fills
  /// `report.final_designs` / `report.final_objectives`. Snapshots, the
  /// final front and the counters are collected by run().
  virtual void run_body(core::EvalContext<AnyProblem>& ctx,
                        const RunOptions& options, RunReport& report) = 0;

 private:
  AnyProblem problem_;
};

}  // namespace moela::api
