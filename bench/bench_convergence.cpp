// Anytime-PHV convergence curves (the traces behind Table I's speed-up
// definition and the behaviour sketched by Fig. 2's pipeline): PHV vs
// evaluations for MOELA, MOEA/D, MOOS, MOO-STAGE, and NSGA-II on one
// application, 5-objective scenario. Also dumps a CSV for plotting.
//
// Environment knobs: MOELA_BENCH_EVALS, MOELA_BENCH_SMALL, MOELA_BENCH_SEED,
// and MOELA_BENCH_CSV (output path, default convergence.csv).
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "exp/scenario.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

using namespace moela;

int main() {
  auto config = exp::paper_bench_config_from_env();
  config.algorithms = {"moela", "moead", "moos", "moo-stage", "nsga2"};

  const auto app = sim::RodiniaApp::kBfs;
  const auto r = exp::run_app_scenario(app, 5, config);

  util::Table table("Anytime PHV (BFS, 5-obj, shared normalization)");
  std::vector<std::string> header{"evaluations"};
  for (const auto& name : r.algorithm_names) header.push_back(name);
  table.set_header(header);

  // Sample each trace at the snapshot cadence of the first run.
  const auto& ref_trace = r.traces[0];
  for (std::size_t k = 0; k < ref_trace.size(); ++k) {
    std::vector<std::string> row{
        std::to_string(ref_trace[k].evaluations)};
    for (const auto& trace : r.traces) {
      row.push_back(k < trace.size() ? util::fmt(trace[k].phv, 4) : "-");
    }
    table.add_row(std::move(row));
  }
  table.print();

  const char* csv_env = std::getenv("MOELA_BENCH_CSV");
  const std::string csv_path = csv_env ? csv_env : "convergence.csv";
  util::CsvWriter csv(csv_path, header);
  if (csv.ok()) {
    for (std::size_t k = 0; k < ref_trace.size(); ++k) {
      std::vector<double> row{
          static_cast<double>(ref_trace[k].evaluations)};
      for (const auto& trace : r.traces) {
        row.push_back(k < trace.size() ? trace[k].phv : 0.0);
      }
      csv.write_row(row);
    }
    std::printf("\nTrace CSV written to %s\n", csv_path.c_str());
  }

  std::printf("Expected shape: MOELA's curve rises fastest and ends "
              "highest; MOEA/D rises slowest among the paper's trio.\n");
  return 0;
}
