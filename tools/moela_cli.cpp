// moela_cli: compose problem x algorithm x budgets from the command line
// and emit CSV — the serving front-end of the runtime-composition API.
// Nothing here is algorithm- or problem-specific: problems come from
// api::make_problem(), algorithms from api::registry(), and per-algorithm
// parameters ride in --knob name=value pairs.
//
//   moela_cli --problem zdt1 --algorithm moela --evals 2000 --seed 1
//   moela_cli --problem noc --app BFS --objectives 5 --algorithm moo-stage \
//             --seconds 5 --knob stage.ls.max_steps=10 --trace trace.csv
//   moela_cli --list
//
// stdout carries the final Pareto front as CSV (one objective per column);
// run metadata goes to stderr so pipelines stay clean.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "api/optimizer.hpp"
#include "api/problems.hpp"
#include "api/registry.hpp"

using namespace moela;

namespace {

struct CliOptions {
  std::string problem;
  std::string algorithm;
  api::ProblemOptions problem_options;
  api::RunOptions run_options;
  std::string out_path;    // empty = stdout
  std::string trace_path;  // empty = no trace dump
  bool list = false;
  bool help = false;
};

void print_usage(std::FILE* to) {
  std::fprintf(to,
               "usage: moela_cli --problem NAME --algorithm NAME [options]\n"
               "\n"
               "  --problem NAME     problem to solve (see --list)\n"
               "  --algorithm NAME   optimizer registry key (see --list)\n"
               "  --evals N          objective-evaluation budget "
               "(default 20000)\n"
               "  --seconds S        wall-clock budget, 0 = off (default 0)\n"
               "  --seed N           RNG seed (default 1)\n"
               "  --pop N            population / archive size (default 50)\n"
               "  --n-local N        local searches per iteration "
               "(default 5)\n"
               "  --snapshot N       snapshot cadence in evals (default "
               "500)\n"
               "  --objectives M     objective count (problem default if "
               "omitted)\n"
               "  --variables N      decision variables / items (problem "
               "default)\n"
               "  --app TAG          NoC workload app: BP BFS GAU HOT PF SC "
               "SRAD\n"
               "  --small            NoC: 3x3x3 platform instead of 4x4x4\n"
               "  --knob NAME=VALUE  per-algorithm knob (repeatable; see "
               "api/optimizers.cpp)\n"
               "  --out PATH         write the front CSV to PATH instead of "
               "stdout\n"
               "  --trace PATH       also dump the anytime snapshot trace "
               "CSV\n"
               "  --list             list problems and algorithms, then "
               "exit\n"
               "  --help             this text\n");
}

std::optional<CliOptions> parse_args(int argc, char** argv) {
  CliOptions cli;
  auto need_value = [&](int& i, const char* flag) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "moela_cli: %s needs a value\n", flag);
      return nullptr;
    }
    return argv[++i];
  };
  // Checked numeric parsing: a typo like "--evals 20k" must be an error,
  // not a silent zero-budget run.
  auto integer_value = [&](int& i, const char* flag, auto& out) -> bool {
    const char* v = need_value(i, flag);
    if (v == nullptr) return false;
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(v, &end, 10);
    if (end == v || *end != '\0' || std::strchr(v, '-') != nullptr) {
      std::fprintf(stderr,
                   "moela_cli: %s wants a non-negative integer, got '%s'\n",
                   flag, v);
      return false;
    }
    out = parsed;
    return true;
  };
  auto double_value = [&](int& i, const char* flag, double& out) -> bool {
    const char* v = need_value(i, flag);
    if (v == nullptr) return false;
    char* end = nullptr;
    const double parsed = std::strtod(v, &end);
    if (end == v || *end != '\0') {
      std::fprintf(stderr, "moela_cli: %s wants a number, got '%s'\n", flag,
                   v);
      return false;
    }
    out = parsed;
    return true;
  };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* v = nullptr;
    if (arg == "--help" || arg == "-h") {
      cli.help = true;
    } else if (arg == "--list") {
      cli.list = true;
    } else if (arg == "--small") {
      cli.problem_options.small_platform = true;
    } else if (arg == "--problem") {
      if ((v = need_value(i, "--problem")) == nullptr) return std::nullopt;
      cli.problem = v;
    } else if (arg == "--algorithm") {
      if ((v = need_value(i, "--algorithm")) == nullptr) return std::nullopt;
      cli.algorithm = v;
    } else if (arg == "--evals") {
      if (!integer_value(i, "--evals", cli.run_options.max_evaluations)) {
        return std::nullopt;
      }
    } else if (arg == "--seconds") {
      if (!double_value(i, "--seconds", cli.run_options.max_seconds)) {
        return std::nullopt;
      }
    } else if (arg == "--seed") {
      if (!integer_value(i, "--seed", cli.run_options.seed)) {
        return std::nullopt;
      }
      cli.problem_options.seed = cli.run_options.seed;
    } else if (arg == "--pop") {
      if (!integer_value(i, "--pop", cli.run_options.population_size)) {
        return std::nullopt;
      }
    } else if (arg == "--n-local") {
      if (!integer_value(i, "--n-local", cli.run_options.n_local)) {
        return std::nullopt;
      }
    } else if (arg == "--snapshot") {
      if (!integer_value(i, "--snapshot",
                         cli.run_options.snapshot_interval)) {
        return std::nullopt;
      }
    } else if (arg == "--objectives") {
      if (!integer_value(i, "--objectives",
                         cli.problem_options.num_objectives)) {
        return std::nullopt;
      }
    } else if (arg == "--variables") {
      if (!integer_value(i, "--variables",
                         cli.problem_options.num_variables)) {
        return std::nullopt;
      }
    } else if (arg == "--app") {
      if ((v = need_value(i, "--app")) == nullptr) return std::nullopt;
      cli.problem_options.app = v;
    } else if (arg == "--knob") {
      if ((v = need_value(i, "--knob")) == nullptr) return std::nullopt;
      if (!cli.run_options.knobs.parse_assignment(v)) {
        std::fprintf(stderr, "moela_cli: bad --knob '%s' (want NAME=VALUE)\n",
                     v);
        return std::nullopt;
      }
    } else if (arg == "--out") {
      if ((v = need_value(i, "--out")) == nullptr) return std::nullopt;
      cli.out_path = v;
    } else if (arg == "--trace") {
      if ((v = need_value(i, "--trace")) == nullptr) return std::nullopt;
      cli.trace_path = v;
    } else {
      std::fprintf(stderr, "moela_cli: unknown flag '%s'\n", arg.c_str());
      return std::nullopt;
    }
  }
  return cli;
}

void write_front_csv(std::ostream& out,
                     const std::vector<moo::ObjectiveVector>& front) {
  if (front.empty()) return;
  out.precision(12);
  for (std::size_t m = 0; m < front[0].size(); ++m) {
    out << (m == 0 ? "" : ",") << "objective_" << m;
  }
  out << "\n";
  for (const auto& point : front) {
    for (std::size_t m = 0; m < point.size(); ++m) {
      out << (m == 0 ? "" : ",") << point[m];
    }
    out << "\n";
  }
}

int list_registry() {
  std::printf("problems:\n");
  for (const auto& name : api::problem_names()) {
    std::printf("  %s\n", name.c_str());
  }
  std::printf("algorithms:\n");
  for (const auto& name : api::registry().names()) {
    std::printf("  %s\n", name.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto parsed = parse_args(argc, argv);
  if (!parsed) {
    print_usage(stderr);
    return 2;
  }
  const CliOptions& cli = *parsed;
  if (cli.help) {
    print_usage(stdout);
    return 0;
  }
  if (cli.list) return list_registry();
  if (cli.problem.empty() || cli.algorithm.empty()) {
    std::fprintf(stderr, "moela_cli: --problem and --algorithm are "
                         "required\n\n");
    print_usage(stderr);
    return 2;
  }

  try {
    const api::AnyProblem problem =
        api::make_problem(cli.problem, cli.problem_options);
    auto optimizer = api::registry().create(cli.algorithm, problem);

    std::fprintf(stderr,
                 "moela_cli: %s on %s (%zu objectives, evals<=%zu, "
                 "seconds<=%.1f, seed %llu)\n",
                 optimizer->name().c_str(), cli.problem.c_str(),
                 problem.num_objectives(), cli.run_options.max_evaluations,
                 cli.run_options.max_seconds,
                 static_cast<unsigned long long>(cli.run_options.seed));

    const api::RunReport report = optimizer->run(cli.run_options);

    std::fprintf(stderr,
                 "moela_cli: %zu evaluations in %.2f s, front size %zu, "
                 "final population %zu\n",
                 report.evaluations, report.seconds,
                 report.final_front.size(), report.final_designs.size());

    if (cli.out_path.empty()) {
      write_front_csv(std::cout, report.final_front);
    } else {
      std::ofstream out(cli.out_path);
      if (!out) {
        std::fprintf(stderr, "moela_cli: cannot open '%s'\n",
                     cli.out_path.c_str());
        return 1;
      }
      write_front_csv(out, report.final_front);
      std::fprintf(stderr, "moela_cli: front CSV written to %s\n",
                   cli.out_path.c_str());
    }

    if (!cli.trace_path.empty()) {
      std::ofstream trace(cli.trace_path);
      if (!trace) {
        std::fprintf(stderr, "moela_cli: cannot open '%s'\n",
                     cli.trace_path.c_str());
        return 1;
      }
      trace.precision(12);
      trace << "evaluations,seconds,front_size\n";
      for (const auto& s : report.snapshots) {
        trace << s.evaluations << "," << s.seconds << "," << s.front.size()
              << "\n";
      }
      std::fprintf(stderr, "moela_cli: trace CSV written to %s\n",
                   cli.trace_path.c_str());
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "moela_cli: %s\n", e.what());
    return 1;
  }
}
