// Deterministic shortest-path routing over an (irregular) link placement.
//
// The objective formulas of Sec. III need, for every communicating tile pair
// (i, j), the set of links (p_ijk) and routers (r_ijk) on the route. We use
// minimal-hop routing with a deterministic tie-break (BFS visiting neighbors
// in ascending tile order), which makes objective evaluation a pure function
// of the design.
#pragma once

#include <cstddef>
#include <vector>

#include "noc/design.hpp"
#include "noc/platform.hpp"

namespace moela::noc {

class RoutingTable {
 public:
  /// Builds single-source shortest-path trees from every tile. O(V(V+E)).
  RoutingTable(const PlatformSpec& spec, const NocDesign& design);

  /// Hop count between tiles (number of links traversed); 0 for s == t.
  /// Unreachable pairs (cannot occur for feasible designs) report a negative
  /// value.
  int hops(TileId s, TileId t) const {
    return dist_[index(s, t)];
  }

  /// The tile sequence s -> ... -> t along the deterministic minimal route.
  std::vector<TileId> path(TileId s, TileId t) const;

  /// Invokes fn(a, b) for each link (a, b) on the route s -> t, in order.
  template <typename Fn>
  void for_each_hop(TileId s, TileId t, Fn&& fn) const {
    // Walk the predecessor chain from t back to s (predecessors are with
    // respect to source s).
    TileId cur = t;
    while (cur != s) {
      const TileId prev = parent_[index(s, cur)];
      fn(prev, cur);
      cur = prev;
    }
  }

  std::size_t num_tiles() const { return n_; }

 private:
  std::size_t index(TileId s, TileId t) const {
    return static_cast<std::size_t>(s) * n_ + t;
  }

  std::size_t n_;
  std::vector<int> dist_;       // n x n
  std::vector<TileId> parent_;  // n x n, parent[s][t] on route from s
};

/// Maps each link of a canonical (sorted) link set to its index; used to
/// accumulate per-link utilization u_k.
class LinkIndex {
 public:
  explicit LinkIndex(const std::vector<Link>& links) : links_(&links) {}

  /// Index of the link {a, b}; the link must exist in the set.
  std::size_t of(TileId a, TileId b) const;

  std::size_t size() const { return links_->size(); }

 private:
  const std::vector<Link>* links_;
};

}  // namespace moela::noc
