#include "noc/objectives.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/stats.hpp"

namespace moela::noc {

std::vector<double> NocObjectiveParams::vertical_resistances(
    std::size_t layers) const {
  std::vector<double> r = r_vertical;
  r.resize(layers, default_r_vertical);
  return r;
}

moo::ObjectiveVector NocObjectives::first(std::size_t m) const {
  const double all[] = {traffic_mean, traffic_variance, cpu_latency, energy,
                        thermal};
  if (m == 0 || m > 5) {
    throw std::invalid_argument("NocObjectives::first: m must be 1..5");
  }
  return moo::ObjectiveVector(all, all + m);
}

NocObjectives evaluate_objectives(const PlatformSpec& spec,
                                  const NocDesign& design,
                                  const Workload& workload,
                                  const NocObjectiveParams& params,
                                  EvaluationDetail* detail) {
  const std::size_t num_cores = spec.num_cores();
  if (workload.traffic.num_cores() != num_cores ||
      workload.core_power.size() != num_cores) {
    throw std::invalid_argument("evaluate_objectives: workload size mismatch");
  }

  const RoutingTable routes(spec, design);
  const LinkIndex link_index(design.links);
  const auto tile_of = design.tile_of_core();
  const std::size_t num_links = design.links.size();

  // Per-link physical length d_k (units) and delay (cycles), precomputed.
  std::vector<double> link_length(num_links);
  std::vector<double> link_delay(num_links);
  for (std::size_t k = 0; k < num_links; ++k) {
    const Link& l = design.links[k];
    if (spec.z_of(l.a) == spec.z_of(l.b)) {
      const double len = spec.planar_length(l.a, l.b);
      link_length[k] = len;
      link_delay[k] = params.delay_per_unit * len;
    } else {
      link_length[k] = params.vertical_length;
      link_delay[k] = params.vertical_delay;
    }
  }

  // Router port counts P_k (degree of each router).
  const Adjacency adj(spec, design.links);

  // --- Single traffic sweep: accumulate link utilization u_k, energy,
  // and CPU-LLC latency terms.
  std::vector<double> util(num_links, 0.0);
  double energy = 0.0;
  double latency_sum = 0.0;
  double hop_weighted = 0.0;
  double traffic_total = 0.0;

  for (CoreId i = 0; i < num_cores; ++i) {
    const TileId src = tile_of[i];
    const bool src_is_cpu = spec.core_type(i) == PeType::kCpu;
    for (CoreId j = 0; j < num_cores; ++j) {
      const double f = workload.traffic(i, j);
      if (f <= 0.0 || i == j) continue;
      const TileId dst = tile_of[j];

      double path_delay = 0.0;
      double path_link_energy = 0.0;
      int hops = 0;
      routes.for_each_hop(src, dst, [&](TileId a, TileId b) {
        const std::size_t k = link_index.of(a, b);
        util[k] += f;
        path_delay += link_delay[k];
        path_link_energy += link_length[k] * params.e_link;
        ++hops;
      });

      // Router energy: every router on the path (hops + 1 of them,
      // including source and destination) spends E_r per port it has.
      double router_energy = 0.0;
      {
        TileId cur = dst;
        router_energy +=
            params.e_router * static_cast<double>(adj.degree(dst));
        routes.for_each_hop(src, dst, [&](TileId a, TileId b) {
          (void)b;
          router_energy +=
              params.e_router * static_cast<double>(adj.degree(a));
          cur = a;
        });
      }

      energy += f * (path_link_energy + router_energy);
      traffic_total += f;
      hop_weighted += f * hops;

      // Eq. (3) sums over CPU -> LLC pairs.
      if (src_is_cpu && spec.core_type(j) == PeType::kLlc) {
        latency_sum +=
            (params.router_stages * hops + path_delay) * f;
      }
    }
  }

  NocObjectives out;

  // Eq. (1): mean link utilization.
  out.traffic_mean = util::mean(util);
  // Eq. (2): population variance of link utilization.
  out.traffic_variance = util::variance(util);
  // Eq. (3): normalize by C*M (CPU count x LLC count).
  const double c = static_cast<double>(spec.count_type(PeType::kCpu));
  const double m = static_cast<double>(spec.count_type(PeType::kLlc));
  out.cpu_latency = c > 0 && m > 0 ? latency_sum / (c * m) : 0.0;
  // Eq. (4).
  out.energy = energy;

  // --- Thermal, Eqs. (5)-(7). The platform is N x N single-tile stacks of
  // Y layers; layer index 1 is nearest the heat sink (z == 0 here).
  const std::size_t layers = static_cast<std::size_t>(spec.nz());
  const auto r_vert = params.vertical_resistances(layers);
  // Prefix sums of R_j: sum_{j=1..i} R_j.
  std::vector<double> r_prefix(layers + 1, 0.0);
  for (std::size_t i = 0; i < layers; ++i) {
    r_prefix[i + 1] = r_prefix[i] + r_vert[i];
  }

  const std::size_t stacks =
      static_cast<std::size_t>(spec.nx()) * static_cast<std::size_t>(spec.ny());
  double peak_t = 0.0;
  double max_delta = 0.0;
  std::vector<double> layer_t(stacks, 0.0);
  for (std::size_t k = 1; k <= layers; ++k) {
    double layer_min = 0.0, layer_max = 0.0;
    for (std::size_t n = 0; n < stacks; ++n) {
      const int x = static_cast<int>(n) % spec.nx();
      const int y = static_cast<int>(n) / spec.nx();
      // T_n,k per Eq. (5).
      double conduction = 0.0;
      double total_power = 0.0;
      for (std::size_t i = 1; i <= k; ++i) {
        const TileId t = spec.tile_at(x, y, static_cast<int>(i) - 1);
        const double p = workload.core_power[design.placement[t]];
        conduction += p * r_prefix[i];
        total_power += p;
      }
      const double t_nk = conduction + params.r_base * total_power;
      layer_t[n] = t_nk;
      peak_t = std::max(peak_t, t_nk);
      if (n == 0) {
        layer_min = layer_max = t_nk;
      } else {
        layer_min = std::min(layer_min, t_nk);
        layer_max = std::max(layer_max, t_nk);
      }
    }
    max_delta = std::max(max_delta, layer_max - layer_min);  // Eq. (6)
  }
  out.thermal = peak_t * max_delta;  // Eq. (7)

  if (detail != nullptr) {
    detail->link_utilization = std::move(util);
    detail->max_link_utilization =
        detail->link_utilization.empty()
            ? 0.0
            : *std::max_element(detail->link_utilization.begin(),
                                detail->link_utilization.end());
    detail->mean_hops = traffic_total > 0.0 ? hop_weighted / traffic_total : 0.0;
    detail->peak_temperature = peak_t;
  }
  return out;
}

}  // namespace moela::noc
