// CSV writing for experiment traces (convergence curves, per-run metrics).
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace moela::util {

/// Appends rows of doubles to a CSV file with a fixed header. Used by the
/// experiment harness to dump PHV-vs-evaluations traces for plotting.
class CsvWriter {
 public:
  /// Opens (truncates) `path` and writes the header row.
  CsvWriter(const std::string& path, std::vector<std::string> header);

  /// True if the file opened successfully.
  bool ok() const { return static_cast<bool>(out_); }

  void write_row(const std::vector<double>& values);
  void write_row(const std::vector<std::string>& values);

  /// Flushes buffered rows to disk.
  void flush();

 private:
  std::ofstream out_;
  std::size_t width_;
};

}  // namespace moela::util
