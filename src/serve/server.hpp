// The moela_serve daemon core: a long-lived TCP server that multiplexes
// line-delimited JSON requests (serve/protocol.hpp) onto ONE shared
// scheduler (serve/sched/) driving ONE api::Executor backed by ONE
// process-lifetime api::ResultCache — so every connection benefits from
// every other connection's completed runs, and a repeated request is
// answered without re-running. Results are bit-identical to inline
// execution for fixed seeds: the daemon adds serialization (api/serde.hpp)
// and scheduling (start-time ordering), not arithmetic.
//
// Scheduling: each "run" batch carries a priority class (interactive /
// normal / batch). Admitted runs queue in the sched::Scheduler's
// weighted-fair queue — per-class weights, round-robin across connections
// within a class — and admission is bounded: when max_queued runs are
// already waiting, the batch is shed whole with a structured "overloaded"
// error (queue depth + retry-after hint) instead of queueing unboundedly.
//
// Threading model:
//   * one accept thread;
//   * one reader thread per connection (verbs other than "run" answer
//     inline);
//   * one collector thread per "run" batch, which awaits the batch's
//     futures from the scheduler and streams progress events back on the
//     submitting connection (writes serialized by a per-connection mutex);
//   * the scheduler's worker pool (ServeConfig::jobs threads) executing
//     dequeued runs through Executor::execute_one;
//   * one watcher thread parked on a self-pipe, the async-signal-safe
//     bridge from SIGINT/SIGTERM to an orderly drain.
//
// Cancellation: each in-flight "run" batch registers its RunControl under
// the request id, so a "cancel" verb read on the same connection can flip
// it mid-batch — the batch still answers, its unfinished runs marked
// cancelled, and its in-flight slots are released before the response.
//
// Shutdown ladder: request_shutdown()/signal_shutdown() stop the accept
// loop, reject new "run" verbs, nudge idle readers (SHUT_RD), and let
// in-flight batches finish and deliver their responses. signal_hard_stop()
// additionally flips every active batch's RunControl, so in-flight runs
// wind down at their next budget check with partial (cancelled) reports.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "api/executor.hpp"
#include "api/result_cache.hpp"
#include "api/run_log.hpp"
#include "serve/protocol.hpp"
#include "serve/sched/policy.hpp"
#include "serve/sched/scheduler.hpp"
#include "util/json.hpp"
#include "util/metrics.hpp"
#include "util/thread_annotations.hpp"
#include "util/timer.hpp"

namespace moela::serve {

struct ServeConfig {
  /// Bind address; "0.0.0.0" serves non-local clients.
  std::string host = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port (read it back with port()).
  int port = kDefaultPort;
  /// Executor worker threads; 0 = all cores.
  std::size_t jobs = 0;
  /// Result cache: on by default, disk tier under `cache_dir` (empty =
  /// ResultCache::default_disk_dir()).
  bool use_cache = true;
  std::string cache_dir;
  /// Per-connection bound on runs queued or running at once; a "run" verb
  /// that would exceed it is rejected with an error response. (The
  /// fairness bound for ONE client; `max_queued` below bounds ALL of
  /// them.)
  std::size_t max_inflight = 256;
  /// Admission bound: runs queued (admitted, not yet started) across all
  /// connections and classes. A batch that would push past it is shed
  /// whole with a structured "overloaded" error instead of queueing.
  std::size_t max_queued = 1024;
  /// Weighted-fair dispatch weights per priority class.
  sched::Weights weights;
  /// Optional per-run JSONL logger (not owned). Null falls back to
  /// $MOELA_RUN_LOG via the Executor.
  api::RunLogger* run_log = nullptr;
  /// Directory for persisted RunSnapshots (ExecutorConfig::snapshot_dir —
  /// typically next to the run log). Empty disables persistence; requests
  /// asking to checkpoint then only stream snapshots over the wire.
  std::string snapshot_dir;
};

class Server {
 public:
  explicit Server(ServeConfig config);
  /// Drains and joins everything (equivalent to request_shutdown() +
  /// wait()).
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and starts the accept/watcher threads. Throws
  /// std::runtime_error when the address cannot be bound.
  void start();

  /// The bound port (resolves config.port == 0 after start()).
  int port() const { return port_; }

  /// Blocks until the server has fully shut down (accept loop exited,
  /// connections drained, all threads joined). Idempotent.
  void wait();

  /// Graceful shutdown from normal (non-signal) context: stop accepting,
  /// reject new runs, drain in-flight work. Returns immediately.
  void request_shutdown();

  /// Async-signal-safe graceful shutdown (atomic store + self-pipe write);
  /// what a SIGINT/SIGTERM handler should call.
  void signal_shutdown();

  /// Async-signal-safe escalation: also cancel in-flight runs via their
  /// RunControls (performed by the watcher thread; runs stop at their next
  /// budget check and still report, marked cancelled).
  void signal_hard_stop();

  bool shutdown_requested() const {
    return stop_.load(std::memory_order_relaxed);
  }

  /// Shared cache (for stats); nullptr when the cache is disabled.
  api::ResultCache* cache() {
    return config_.use_cache ? &cache_ : nullptr;
  }

  /// Total runs executed or served from cache since start (for tests and
  /// the cache_stats verb).
  std::uint64_t runs_handled() const {
    return runs_handled_.load(std::memory_order_relaxed);
  }

  /// Runs that finished cancelled — via the cancel verb or the hard-stop
  /// drain rung (for tests and the health verb).
  std::uint64_t runs_cancelled() const {
    return runs_cancelled_.load(std::memory_order_relaxed);
  }

  /// Runs queued or running across all connections right now (for tests
  /// and the health verb).
  std::size_t inflight_total() const {
    return inflight_total_.load(std::memory_order_relaxed);
  }

  /// The weighted-fair scheduler (per-class counters, for tests; remote
  /// observers read the same numbers off the health verb).
  const sched::Scheduler& scheduler() const { return *scheduler_; }

  /// The daemon's telemetry registry. Every layer (verb dispatch, the
  /// scheduler, the cache, the Executor) feeds it; the `metrics` verb
  /// snapshots it as JSON and metrics_text() as Prometheus exposition
  /// (moela_serve --metrics-dump). Telemetry only — nothing here touches
  /// cache keys or report bytes.
  const util::MetricsRegistry& metrics() const { return metrics_; }
  std::string metrics_text() const { return metrics_.prometheus_text(); }

  /// Monotonic seconds since start() (0 before it): the health verb's
  /// uptime_seconds, so operators can tell a fresh (cold-cache) daemon
  /// from a long-lived one.
  double uptime_seconds() const {
    return started_ ? started_at_.elapsed_seconds() : 0.0;
  }

 private:
  struct Connection {
    Connection(int fd, std::uint64_t lane) : fd(fd), lane(lane) {}
    const int fd;
    /// This connection's lane in the weighted-fair queue: connections at
    /// the same priority share that class's slots round-robin by lane.
    const std::uint64_t lane;
    /// Serializes response/event lines from concurrent batch threads.
    /// Guards the fd's write side (a kernel resource, not a field), so
    /// there is nothing to MOELA_GUARDED_BY — holding it around every
    /// send_line is the whole protocol.
    util::Mutex write_mutex;
    /// Runs queued or running on this connection (the in-flight bound).
    std::atomic<std::size_t> inflight{0};
    /// Batch dispatcher threads, reaped as they finish and joined on
    /// connection close.
    util::Mutex batch_mutex;
    std::vector<std::pair<std::shared_ptr<std::atomic<bool>>, std::thread>>
        batches MOELA_GUARDED_BY(batch_mutex);
    /// In-flight "run" batches by request id, so a "cancel" verb on this
    /// connection can flip the batch's RunControl. Registered by
    /// handle_run BEFORE the dispatcher thread spawns — a cancel that
    /// chases its run down the same pipe must find the entry no matter
    /// how the reader and dispatcher threads interleave. A multimap
    /// because ids are client-chosen and nothing stops a client reusing
    /// one; cancel then stops every batch carrying the target id.
    util::Mutex run_mutex;
    std::multimap<std::uint64_t, std::shared_ptr<api::RunControl>>
        active_runs MOELA_GUARDED_BY(run_mutex);
    std::atomic<bool> done{false};
  };

  void accept_loop();
  void watcher_loop();
  void serve_connection(const std::shared_ptr<Connection>& connection);
  void handle_line(const std::shared_ptr<Connection>& connection,
                   const std::string& line);
  void handle_run(const std::shared_ptr<Connection>& connection,
                  std::uint64_t id, const util::Json& message);
  void handle_cancel(const std::shared_ptr<Connection>& connection,
                     std::uint64_t id, const util::Json& message);
  /// Awaits one admitted batch's futures (completion order decided by the
  /// scheduler), stamps the class into each report's provenance, and sends
  /// the final response.
  void run_batch(std::shared_ptr<Connection> connection, std::uint64_t id,
                 std::vector<std::future<api::RunReport>> futures,
                 sched::Priority priority,
                 std::shared_ptr<api::RunControl> control);
  /// The health verb's per-class counter block.
  util::Json sched_classes_json() const;
  /// Stops the listener and nudges idle connection readers; safe to call
  /// repeatedly, from the watcher or teardown.
  void begin_drain();
  void reap_connections();

  ServeConfig config_;
  /// Declared before cache_/executor_/scheduler_ (so it is destroyed
  /// after them): they hold handles into it.
  util::MetricsRegistry metrics_;
  /// Pre-resolved per-verb telemetry: handle_line looks the verb up here
  /// and touches only atomics, keeping the dispatch path lock-free. Verbs
  /// outside the protocol's fixed set share the "other" series so a
  /// misbehaving client cannot grow label cardinality.
  struct VerbMetrics {
    util::Counter* requests = nullptr;
    util::Histogram* seconds = nullptr;
  };
  std::map<std::string, VerbMetrics> verb_metrics_;
  VerbMetrics other_verb_metrics_;
  /// The Executor's checkpoint counters, pre-resolved (same name + help,
  /// so they alias the Executor's series) for the health verb's
  /// runs_resumed / snapshots_written fields.
  util::Counter* runs_resumed_counter_ = nullptr;
  util::Counter* snapshots_written_counter_ = nullptr;
  /// Monotonic clock started by start(): the health verb's uptime.
  util::Timer started_at_;
  api::ResultCache cache_;
  std::unique_ptr<api::Executor> executor_;
  /// Declared after executor_ (and destroyed before it): the scheduler's
  /// workers call into the executor.
  std::unique_ptr<sched::Scheduler> scheduler_;
  std::atomic<std::uint64_t> next_lane_{0};

  int listen_fd_ = -1;
  int port_ = 0;
  int signal_pipe_[2] = {-1, -1};

  std::thread accept_thread_;
  std::thread watcher_thread_;
  util::Mutex conn_mutex_;
  std::vector<std::pair<std::shared_ptr<Connection>, std::thread>>
      connections_ MOELA_GUARDED_BY(conn_mutex_);

  /// Active per-batch controls, so a hard stop can cancel in-flight runs.
  util::Mutex control_mutex_;
  std::set<api::RunControl*> active_controls_
      MOELA_GUARDED_BY(control_mutex_);

  std::atomic<bool> stop_{false};
  std::atomic<bool> hard_stop_{false};
  std::atomic<bool> watcher_exit_{false};
  std::atomic<std::uint64_t> runs_handled_{0};
  /// Runs whose reports came back provenance.cancelled (the health verb's
  /// cancellation counter).
  std::atomic<std::uint64_t> runs_cancelled_{0};
  /// Runs queued or running across ALL connections right now (the `health`
  /// verb's load signal for shard placement).
  std::atomic<std::size_t> inflight_total_{0};
  /// Written by start() before any server thread spawns, read-only after
  /// — so uptime_seconds() may read it lock-free.
  bool started_ = false;
  util::Mutex wait_mutex_;
  bool joined_ MOELA_GUARDED_BY(wait_mutex_) = false;
};

}  // namespace moela::serve
