#include "ml/random_forest.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace moela::ml {

void RandomForest::fit(const Dataset& data, util::Rng& rng) {
  if (data.empty()) {
    throw std::invalid_argument("RandomForest::fit: empty dataset");
  }
  trees_.clear();
  trees_.reserve(config_.num_trees);

  TreeConfig tree_config;
  tree_config.max_depth = config_.max_depth;
  tree_config.min_samples_leaf = config_.min_samples_leaf;
  tree_config.min_samples_split = config_.min_samples_split;
  tree_config.max_features =
      config_.max_features != 0
          ? config_.max_features
          : std::max<std::size_t>(1, data.num_features() / 3);

  const auto n = data.size();
  const auto sample_size = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::llround(
             config_.subsample * static_cast<double>(n))));

  std::vector<std::size_t> bootstrap(sample_size);
  for (std::size_t t = 0; t < config_.num_trees; ++t) {
    for (auto& b : bootstrap) b = rng.below(n);  // with replacement
    DecisionTree tree;
    tree.fit(data, bootstrap, tree_config, rng);
    trees_.push_back(std::move(tree));
  }
}

double RandomForest::predict(std::span<const double> features) const {
  if (trees_.empty()) {
    throw std::logic_error("RandomForest::predict before fit");
  }
  double s = 0.0;
  for (const auto& t : trees_) s += t.predict(features);
  return s / static_cast<double>(trees_.size());
}

std::vector<double> RandomForest::predict_all(
    const std::vector<std::vector<double>>& rows) const {
  std::vector<double> out;
  out.reserve(rows.size());
  for (const auto& row : rows) out.push_back(predict(row));
  return out;
}

double RandomForest::r_squared(const RandomForest& model,
                               const Dataset& data) {
  if (data.empty()) return 0.0;
  double mean = 0.0;
  for (std::size_t i = 0; i < data.size(); ++i) mean += data.target(i);
  mean /= static_cast<double>(data.size());
  double ss_res = 0.0, ss_tot = 0.0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    const double y = data.target(i);
    const double pred = model.predict(data.features(i));
    ss_res += (y - pred) * (y - pred);
    ss_tot += (y - mean) * (y - mean);
  }
  if (ss_tot <= 0.0) return ss_res <= 1e-12 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

}  // namespace moela::ml
