// Fixture: seeded violation — header without #pragma once.
inline int forty_two() { return 42; }
