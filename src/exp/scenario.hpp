// Paper-scenario runner shared by the bench binaries: executes a set of
// algorithms over (application, objective-count) cells of the Sec. V setup
// and derives the shared-normalization PHV traces. Algorithms are selected
// by registry key; every run is scheduled as an api::RunRequest through the
// thread-pooled api::Executor (src/api/executor.hpp), so a bench can batch
// its whole grid, run cells in parallel, and serve repeats from the result
// cache without recompiling.
//
// Wall-clock knobs come from the environment so CI and laptops can scale
// the experiments without recompiling:
//   MOELA_BENCH_SECONDS — wall-clock budget per run, seconds (default 6)
//   MOELA_BENCH_EVALS   — evaluation-cap backstop    (default 40000)
//   MOELA_BENCH_SMALL   — "1" = 3x3x3 platform instead of the paper's 4x4x4
//   MOELA_BENCH_SEED    — root seed                  (default 1)
//   MOELA_BENCH_JOBS    — Executor worker threads    (default 1; parallel
//                         runs share cores, so keep 1 when the wall-clock
//                         budget is the contract)
//   MOELA_BENCH_CACHE   — result-cache directory; "1" = the default dir
//                         (api::ResultCache::default_disk_dir), unset = off
//   MOELA_BENCH_SHARDS  — comma-separated moela_serve endpoints
//                         ("host:port,host:port"); when set, the whole grid
//                         is fanned across the daemon fleet through
//                         api::ShardedExecutor instead of running
//                         in-process (JOBS/CACHE are then daemon-side
//                         settings). Reports stay bit-identical for fixed
//                         seeds with MOELA_BENCH_SECONDS=0.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "api/optimizer.hpp"
#include "exp/analysis.hpp"
#include "exp/experiment.hpp"
#include "noc/problem.hpp"
#include "sim/rodinia.hpp"

namespace moela::exp {

struct PaperBenchConfig {
  /// Evaluation cap (a backstop; the wall-clock budget normally binds).
  std::size_t max_evaluations = 40000;
  /// Wall-clock budget per run, seconds — the T_stop of Sec. V.B scaled to
  /// bench scale. Identical for every algorithm.
  double max_seconds = 6.0;
  std::size_t snapshot_interval = 250;
  std::uint64_t seed = 1;
  bool small_platform = false;
  /// Registry keys of the algorithms to compare (api::registry()).
  std::vector<std::string> algorithms = {"moela", "moead", "moos"};
  /// Executor worker threads for the batch (1 = serial; runs are
  /// bit-identical either way for a fixed seed with no wall-clock budget).
  std::size_t jobs = 1;
  /// Result-cache directory; empty = no cache.
  std::string cache_dir;
  /// moela_serve endpoints ("host:port"); non-empty fans the grid across
  /// the fleet via api::ShardedExecutor ($MOELA_BENCH_SHARDS).
  std::vector<std::string> shard_endpoints;
};

/// Reads the MOELA_BENCH_* environment overrides.
PaperBenchConfig paper_bench_config_from_env();

/// The per-run configuration used by every paper bench (forest sizing etc.
/// tuned for the NoC feature width). Kept in the typed RunConfig form so
/// tests can assert the paper's parameters; to_run_options() turns it into
/// the knob bag the Optimizer API consumes.
RunConfig tuned_run_config(const PaperBenchConfig& config);

/// tuned_run_config() mapped onto the Optimizer API.
api::RunOptions tuned_run_options(const PaperBenchConfig& config);

/// The platform the benches run on (paper 4x4x4 or the reduced 3x3x3).
noc::PlatformSpec bench_platform(const PaperBenchConfig& config);

/// One (app, m) cell of the evaluation: per-algorithm reports plus the
/// shared-normalization anytime-PHV traces (index-aligned with
/// config.algorithms).
struct AppScenarioResult {
  sim::RodiniaApp app;
  std::size_t num_objectives = 0;
  /// Display names index-aligned with `runs` (RunReport::algorithm).
  std::vector<std::string> algorithm_names;
  std::vector<api::RunReport> runs;
  ObjectiveBounds bounds;
  std::vector<moo::ConvergenceTrace> traces;
  /// PHV per algorithm at the common wall-clock stop time (T_stop = the
  /// earliest finish among the runs; every algorithm had at least that much
  /// wall time, the axis the paper compares on).
  std::vector<double> final_phv;
  double common_stop_seconds = 0.0;
};

/// One (application, objective-count) cell of the Sec. V grid.
struct ScenarioCell {
  sim::RodiniaApp app;
  std::size_t num_objectives = 0;
};

/// Runs every configured algorithm on every cell as ONE Executor batch
/// (config.jobs workers, optional result cache), then derives each cell's
/// shared-normalization traces. Results are index-aligned with `cells`.
/// Deterministic per seed for any jobs value.
std::vector<AppScenarioResult> run_app_scenarios(
    const std::vector<ScenarioCell>& cells, const PaperBenchConfig& config);

/// Single-cell convenience over run_app_scenarios().
AppScenarioResult run_app_scenario(sim::RodiniaApp app,
                                   std::size_t num_objectives,
                                   const PaperBenchConfig& config);

}  // namespace moela::exp
