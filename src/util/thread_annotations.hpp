// Clang Thread Safety Analysis for the whole concurrent stack — the
// compile-time side of the bit-identical-serving guarantee (the runtime
// side is the MOELA_SANITIZE=thread CI leg).
//
// Every mutex in the tree is a util::Mutex, every scope-lock a
// util::MutexLock, every condition variable a util::CondVar, and every
// shared field carries MOELA_GUARDED_BY(its mutex). Under clang with
// -Wthread-safety (the MOELA_THREAD_SAFETY CMake knob), the compiler then
// *proves* on every build that no guarded field is touched without its
// lock and that no lock-assuming helper is called lock-free — on all
// paths, not just the interleavings a test happens to hit. Under GCC the
// macros expand to nothing and the wrappers compile down to the plain
// std types they hold: zero runtime cost, zero behavior change.
//
// The mutual-exclusion "capability" model follows the C/C++ Thread Safety
// Analysis paper (Hutchins, Ballman, Sutherland; CGO'14) as implemented
// by clang. Macro vocabulary (attach to declarations):
//
//   MOELA_GUARDED_BY(mu)      field: reads/writes require mu held
//   MOELA_PT_GUARDED_BY(mu)   pointer field: the pointee requires mu
//   MOELA_REQUIRES(mu)        function: caller must hold mu
//   MOELA_ACQUIRE(mu)         function: acquires mu, returns holding it
//   MOELA_RELEASE(mu)         function: releases mu
//   MOELA_TRY_ACQUIRE(b, mu)  function: acquires mu iff it returns b
//   MOELA_EXCLUDES(mu)        function: caller must NOT hold mu
//   MOELA_NO_THREAD_SAFETY_ANALYSIS  escape hatch; rationale mandatory
//
// Raw std::mutex / std::condition_variable / std::lock_guard /
// std::unique_lock anywhere else in the tree is a moela_lint finding
// (rule: naked-mutex) — use these wrappers, or waive with a reason.
#pragma once

#include <condition_variable>
#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define MOELA_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef MOELA_THREAD_ANNOTATION
#define MOELA_THREAD_ANNOTATION(x)  // not clang: annotations compile away
#endif

#define MOELA_CAPABILITY(name) MOELA_THREAD_ANNOTATION(capability(name))
#define MOELA_SCOPED_CAPABILITY MOELA_THREAD_ANNOTATION(scoped_lockable)
#define MOELA_GUARDED_BY(x) MOELA_THREAD_ANNOTATION(guarded_by(x))
#define MOELA_PT_GUARDED_BY(x) MOELA_THREAD_ANNOTATION(pt_guarded_by(x))
#define MOELA_ACQUIRED_BEFORE(...) \
  MOELA_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define MOELA_ACQUIRED_AFTER(...) \
  MOELA_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define MOELA_REQUIRES(...) \
  MOELA_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define MOELA_ACQUIRE(...) \
  MOELA_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define MOELA_RELEASE(...) \
  MOELA_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define MOELA_TRY_ACQUIRE(...) \
  MOELA_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define MOELA_EXCLUDES(...) \
  MOELA_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define MOELA_ASSERT_CAPABILITY(x) \
  MOELA_THREAD_ANNOTATION(assert_capability(x))
#define MOELA_RETURN_CAPABILITY(x) MOELA_THREAD_ANNOTATION(lock_returned(x))
#define MOELA_NO_THREAD_SAFETY_ANALYSIS \
  MOELA_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace moela::util {

/// std::mutex with the mutual-exclusion capability attribute, so fields
/// can be MOELA_GUARDED_BY an instance and the analyzer can check the
/// discipline. Same size, same cost: the wrapper holds exactly one
/// std::mutex and every method is a forwarded inline call.
class MOELA_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() MOELA_ACQUIRE() { mu_.lock(); }
  void unlock() MOELA_RELEASE() { mu_.unlock(); }
  bool try_lock() MOELA_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class MutexLock;
  friend class CondVar;
  std::mutex mu_;
};

/// Scoped lock over a util::Mutex — the project's std::lock_guard AND
/// std::unique_lock: RAII by default, CondVar::wait-compatible because it
/// holds a std::unique_lock underneath. The scoped-capability attribute
/// tells the analyzer the capability is held from construction to the end
/// of the enclosing scope.
class MOELA_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) MOELA_ACQUIRE(mu) : lock_(mu.mu_) {}
  ~MutexLock() MOELA_RELEASE() = default;

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// std::condition_variable over util::Mutex/MutexLock. wait() takes the
/// MutexLock (not the Mutex): from the analyzer's point of view the
/// capability stays held across the wait — which is exactly the guarantee
/// the caller observes, since wait() returns with the lock re-acquired.
/// The predicate-free form forces the canonical
/// `while (!condition) cv.wait(lock);` shape, which keeps the condition
/// check inside the annotated (lock-holding) scope — a predicate lambda
/// would be analyzed as a separate, lock-free function and mis-flag every
/// guarded field it reads.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(MutexLock& lock) { cv_.wait(lock.lock_); }
  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace moela::util
