// Plain-text (de)serialization for designs and workloads, so explorations
// can be checkpointed, diffed, and handed to downstream tooling.
//
// Format (line-oriented, '#' comments allowed):
//   noc-design v1
//   placement <core ids, one line, tile order>
//   links <count>
//   <a> <b>            (one line per link)
//
//   noc-workload v1 <name>
//   cores <count>
//   power <count doubles>
//   traffic <nonzero-entry count>
//   <i> <j> <f_ij>     (one line per nonzero entry)
#pragma once

#include <iosfwd>
#include <string>

#include "noc/design.hpp"
#include "noc/platform.hpp"
#include "noc/workload.hpp"

namespace moela::noc {

/// Writes `design` in the v1 text format.
void write_design(std::ostream& os, const NocDesign& design);

/// Parses a v1 design. Throws std::runtime_error on malformed input.
/// The result is syntactically well-formed but NOT constraint-checked;
/// call validate() for that.
NocDesign read_design(std::istream& is);

/// Round-trip helpers via std::string.
std::string design_to_string(const NocDesign& design);
NocDesign design_from_string(const std::string& text);

/// Writes `workload` in the v1 text format (sparse traffic entries).
void write_workload(std::ostream& os, const Workload& workload);

/// Parses a v1 workload. Throws std::runtime_error on malformed input.
Workload read_workload(std::istream& is);

std::string workload_to_string(const Workload& workload);
Workload workload_from_string(const std::string& text);

}  // namespace moela::noc
