#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace moela::util {

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double median(std::vector<double> xs) {
  if (xs.empty()) return 0.0;
  const std::size_t mid = xs.size() / 2;
  std::nth_element(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(mid),
                   xs.end());
  double hi = xs[mid];
  if (xs.size() % 2 == 1) return hi;
  double lo = *std::max_element(
      xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (lo + hi);
}

double min_of(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return *std::min_element(xs.begin(), xs.end());
}

double max_of(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return *std::max_element(xs.begin(), xs.end());
}

double geomean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) {
    if (x <= 0.0) throw std::invalid_argument("geomean requires positives");
    s += std::log(x);
  }
  return std::exp(s / static_cast<double>(xs.size()));
}

double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  if (p <= 0.0) return xs.front();
  if (p >= 100.0) return xs.back();
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= xs.size()) return xs.back();
  return xs[lo] * (1.0 - frac) + xs[lo + 1] * frac;
}

}  // namespace moela::util
