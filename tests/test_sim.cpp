#include <gtest/gtest.h>

#include <set>
#include <string>

#include "noc/generator.hpp"
#include "sim/edp.hpp"
#include "sim/rodinia.hpp"
#include "util/rng.hpp"

namespace moela::sim {
namespace {

TEST(Rodinia, SevenAppsNamedUniquely) {
  const auto& apps = all_rodinia_apps();
  EXPECT_EQ(apps.size(), 7u);
  std::set<std::string> names;
  for (auto app : apps) names.insert(app_name(app));
  EXPECT_EQ(names.size(), 7u);
  EXPECT_TRUE(names.count("BFS"));
  EXPECT_TRUE(names.count("SRAD"));
}

TEST(Rodinia, WorkloadShapesMatchPlatform) {
  const auto spec = noc::PlatformSpec::paper_4x4x4();
  for (auto app : all_rodinia_apps()) {
    const auto w = make_workload(spec, app, 1);
    EXPECT_EQ(w.traffic.num_cores(), spec.num_cores());
    EXPECT_EQ(w.core_power.size(), spec.num_cores());
    EXPECT_EQ(w.name, app_name(app));
  }
}

TEST(Rodinia, TrafficNonNegativeAndNonTrivial) {
  const auto spec = noc::PlatformSpec::paper_4x4x4();
  const auto w = make_workload(spec, RodiniaApp::kStreamcluster, 3);
  double total = 0.0;
  for (std::size_t i = 0; i < spec.num_cores(); ++i) {
    for (std::size_t j = 0; j < spec.num_cores(); ++j) {
      EXPECT_GE(w.traffic(i, j), 0.0);
      total += w.traffic(i, j);
    }
  }
  EXPECT_GT(total, 100.0);
  EXPECT_DOUBLE_EQ(total, w.traffic.total());
}

TEST(Rodinia, NoSelfTraffic) {
  const auto spec = noc::PlatformSpec::paper_4x4x4();
  const auto w = make_workload(spec, RodiniaApp::kBfs, 5);
  for (std::size_t i = 0; i < spec.num_cores(); ++i) {
    EXPECT_DOUBLE_EQ(w.traffic(i, i), 0.0);
  }
}

TEST(Rodinia, EveryCpuTalksToLlcs) {
  const auto spec = noc::PlatformSpec::paper_4x4x4();
  const auto w = make_workload(spec, RodiniaApp::kBackprop, 7);
  for (auto c : spec.cores_of_type(noc::PeType::kCpu)) {
    double traffic_to_llc = 0.0;
    for (auto l : spec.cores_of_type(noc::PeType::kLlc)) {
      traffic_to_llc += w.traffic(c, l) + w.traffic(l, c);
    }
    EXPECT_GT(traffic_to_llc, 0.0);
  }
}

TEST(Rodinia, PowerIsPositiveAndTypeOrdered) {
  const auto spec = noc::PlatformSpec::paper_4x4x4();
  const auto w = make_workload(spec, RodiniaApp::kHotspot3D, 9);
  double cpu_avg = 0.0, llc_avg = 0.0;
  for (auto c : spec.cores_of_type(noc::PeType::kCpu)) {
    EXPECT_GT(w.core_power[c], 0.0);
    cpu_avg += w.core_power[c];
  }
  for (auto c : spec.cores_of_type(noc::PeType::kLlc)) {
    llc_avg += w.core_power[c];
  }
  cpu_avg /= 8.0;
  llc_avg /= 16.0;
  EXPECT_GT(cpu_avg, llc_avg);  // CPUs burn more than LLC slices
}

TEST(Rodinia, DeterministicForSameSeed) {
  const auto spec = noc::PlatformSpec::paper_4x4x4();
  const auto w1 = make_workload(spec, RodiniaApp::kSrad, 42);
  const auto w2 = make_workload(spec, RodiniaApp::kSrad, 42);
  for (std::size_t i = 0; i < spec.num_cores(); ++i) {
    EXPECT_EQ(w1.core_power[i], w2.core_power[i]);
    for (std::size_t j = 0; j < spec.num_cores(); ++j) {
      EXPECT_EQ(w1.traffic(i, j), w2.traffic(i, j));
    }
  }
}

TEST(Rodinia, DifferentSeedsVaryButKeepStructure) {
  const auto spec = noc::PlatformSpec::paper_4x4x4();
  const auto w1 = make_workload(spec, RodiniaApp::kGaussian, 1);
  const auto w2 = make_workload(spec, RodiniaApp::kGaussian, 2);
  EXPECT_NE(w1.traffic.total(), w2.traffic.total());
  // Totals stay within the same order of magnitude (same archetype).
  EXPECT_NEAR(w1.traffic.total() / w2.traffic.total(), 1.0, 0.3);
}

TEST(Rodinia, ArchetypesAreDistinct) {
  // The apps must induce different optimization landscapes: compare the
  // GPU-LLC streaming share of BFS (latency-bound) vs SC (bandwidth-bound).
  const auto bfs = archetype(RodiniaApp::kBfs);
  const auto sc = archetype(RodiniaApp::kStreamcluster);
  EXPECT_LT(bfs.gpu_llc, sc.gpu_llc);
  EXPECT_GT(bfs.cpu_fraction, sc.cpu_fraction);
  const auto gau = archetype(RodiniaApp::kGaussian);
  EXPECT_GT(gau.llc_skew, bfs.llc_skew);  // GAU has hotspots, BFS uniform
}

TEST(Edp, ProducesPositiveResults) {
  const auto spec = noc::PlatformSpec::paper_4x4x4();
  const auto w = make_workload(spec, RodiniaApp::kBackprop, 11);
  noc::DesignOps ops(spec);
  util::Rng rng(13);
  const auto d = ops.random_design(rng);
  const auto r = estimate_edp(spec, d, w, archetype(RodiniaApp::kBackprop));
  EXPECT_GT(r.exec_time, 0.0);
  EXPECT_GT(r.energy, 0.0);
  EXPECT_NEAR(r.edp, r.energy * r.exec_time, 1e-9);
  EXPECT_GT(r.peak_temperature, 0.0);
}

TEST(Edp, MoreCongestionMeansMoreTime) {
  // Scaling all traffic up raises mean/variance utilization and must not
  // decrease execution time.
  const auto spec = noc::PlatformSpec::paper_4x4x4();
  auto w = make_workload(spec, RodiniaApp::kStreamcluster, 17);
  noc::DesignOps ops(spec);
  util::Rng rng(19);
  const auto d = ops.random_design(rng);
  const auto arch = archetype(RodiniaApp::kStreamcluster);
  const auto base = estimate_edp(spec, d, w, arch);
  w.traffic.scale(2.0);
  const auto heavy = estimate_edp(spec, d, w, arch);
  EXPECT_GT(heavy.exec_time, base.exec_time);
  EXPECT_GT(heavy.edp, base.edp);
}

TEST(Edp, DeterministicScoring) {
  const auto spec = noc::PlatformSpec::paper_4x4x4();
  const auto w = make_workload(spec, RodiniaApp::kPathfinder, 23);
  noc::DesignOps ops(spec);
  util::Rng rng(29);
  const auto d = ops.random_design(rng);
  const auto arch = archetype(RodiniaApp::kPathfinder);
  const auto r1 = estimate_edp(spec, d, w, arch);
  const auto r2 = estimate_edp(spec, d, w, arch);
  EXPECT_EQ(r1.edp, r2.edp);
}

class AppSweep : public ::testing::TestWithParam<RodiniaApp> {};

TEST_P(AppSweep, WorkloadAndEdpWellFormed) {
  const auto spec = noc::PlatformSpec::small_3x3x3();
  const auto w = make_workload(spec, GetParam(), 31);
  EXPECT_GT(w.traffic.total(), 0.0);
  noc::DesignOps ops(spec);
  util::Rng rng(37);
  const auto d = ops.random_design(rng);
  const auto r = estimate_edp(spec, d, w, archetype(GetParam()));
  EXPECT_GT(r.edp, 0.0);
  EXPECT_LT(r.exec_time, 100.0);  // stretch factors stay bounded
}

INSTANTIATE_TEST_SUITE_P(
    Apps, AppSweep,
    ::testing::Values(RodiniaApp::kBackprop, RodiniaApp::kBfs,
                      RodiniaApp::kGaussian, RodiniaApp::kHotspot3D,
                      RodiniaApp::kPathfinder, RodiniaApp::kStreamcluster,
                      RodiniaApp::kSrad));

}  // namespace
}  // namespace moela::sim
